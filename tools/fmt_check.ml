(* Source-style gate, wired into the default test alias. The container has
   no ocamlformat, so this enforces the invariants a formatter would:

     - no TAB characters
     - no trailing whitespace
     - no CR (Windows line endings)
     - every file ends in exactly one newline

   over every .ml/.mli under lib/ bin/ test/ bench/ examples/ tools/.
   Exits non-zero listing each offending file:line, so `dune runtest`
   fails on style regressions. *)

let roots = [ "lib"; "bin"; "test"; "bench"; "examples"; "tools" ]
let errors = ref 0

let report path line msg =
  incr errors;
  Printf.eprintf "%s:%d: %s\n" path line msg

let check_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if len = 0 then report path 1 "empty file"
  else begin
    if s.[len - 1] <> '\n' then report path 1 "missing final newline";
    if len >= 2 && s.[len - 1] = '\n' && s.[len - 2] = '\n' then
      report path 1 "trailing blank line at end of file";
    let line = ref 1 in
    String.iteri
      (fun i c ->
        (match c with
        | '\t' -> report path !line "TAB character"
        | '\r' -> report path !line "CR line ending"
        | ' ' when i + 1 < len && (s.[i + 1] = '\n' || s.[i + 1] = '\r') ->
            report path !line "trailing whitespace"
        | _ -> ());
        if c = '\n' then incr line)
      s
  end

let rec walk dir =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then (if entry <> "_build" then walk path)
      else if Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
      then check_file path)
    (Sys.readdir dir)

let () =
  (* dune runs actions in the build context; the project root is passed as
     the first argument (see tools/dune) *)
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  Sys.chdir root;
  List.iter (fun d -> if Sys.file_exists d then walk d) roots;
  if !errors > 0 then begin
    Printf.eprintf "fmt check: %d style error(s)\n" !errors;
    exit 1
  end;
  print_endline "fmt check: ok"
