(* Compare two BENCH_pr*.json reports and print per-case speedups.

   Usage:
     bench_diff [old.json new.json]

   With no arguments the tool looks for BENCH_pr4.json and BENCH_pr6.json,
   searching upward from the current directory (so it works both from the
   repo root and from dune's build directories). It is a report step, not
   a gate: missing files or unparsable input print a note and exit 0, so
   wiring it after `dune runtest` can never fail the build. *)

let find_up name =
  let rec search dir =
    let candidate = Filename.concat dir name in
    if Sys.file_exists candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else search parent
  in
  search (Sys.getcwd ())

let read_json path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Obs.Json.parse s

let field name = function
  | Obs.Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* [(name, ns_per_run)] rows of one report's "benchmarks" array. *)
let benchmarks json =
  match field "benchmarks" json with
  | Some (Obs.Json.Arr items) ->
      List.filter_map
        (fun item ->
          match (field "name" item, field "ns_per_run" item) with
          | Some (Obs.Json.String name), Some (Obs.Json.Num ns) -> Some (name, ns)
          | _ -> None)
        items
  | _ -> []

let pr_label json =
  match field "pr" json with
  | Some (Obs.Json.Num f) -> Printf.sprintf "pr%.0f" f
  | _ -> "?"

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
  else Printf.sprintf "%8.1f ns" ns

let () =
  let old_path, new_path =
    match Sys.argv with
    | [| _; o; n |] -> (Some o, Some n)
    | _ -> (find_up "BENCH_pr4.json", find_up "BENCH_pr6.json")
  in
  match (old_path, new_path) with
  | None, _ | _, None ->
      print_endline
        "bench_diff: baseline or current BENCH json not found; run `dune exec \
         bench/main.exe json` first (report skipped)"
  | Some old_path, Some new_path -> (
      match (read_json old_path, read_json new_path) with
      | exception (Sys_error msg | Obs.Json.Parse_error msg) ->
          Printf.printf "bench_diff: %s (report skipped)\n" msg
      | old_json, new_json ->
          let old_rows = benchmarks old_json and new_rows = benchmarks new_json in
          Printf.printf "bench_diff: %s (%s) vs %s (%s)\n" old_path (pr_label old_json)
            new_path (pr_label new_json);
          Printf.printf "%-42s %12s %12s %9s\n" "benchmark" "old" "new" "speedup";
          let seen = ref 0 in
          List.iter
            (fun (name, new_ns) ->
              match List.assoc_opt name old_rows with
              | Some old_ns when new_ns > 0. ->
                  incr seen;
                  Printf.printf "%-42s %12s %12s %8.2fx\n" name (pretty_ns old_ns)
                    (pretty_ns new_ns) (old_ns /. new_ns)
              | _ -> Printf.printf "%-42s %12s %12s %9s\n" name "-" (pretty_ns new_ns) "new")
            new_rows;
          List.iter
            (fun (name, old_ns) ->
              if not (List.mem_assoc name new_rows) then
                Printf.printf "%-42s %12s %12s %9s\n" name (pretty_ns old_ns) "-" "dropped")
            old_rows;
          if !seen = 0 then print_endline "bench_diff: no common benchmarks to compare")
