(* Compare two BENCH_pr*.json reports — bechamel runtimes by default,
   corpus metric snapshots with --corpus — and optionally gate on
   regressions.

   Usage:
     bench_diff [OLD.json NEW.json] [--corpus] [--fail-on-regression]
                [--threshold m=frac[,m=frac...]] [--only PREFIX] [--json FILE]

   With no paths the tool looks for BENCH_pr9.json and BENCH_pr10.json,
   searching upward from the current directory (so it works both from the
   repo root and from dune's build directories). Without
   --fail-on-regression it is a report step, not a gate: missing files or
   unparsable input print a note and exit 0, so wiring it after
   `dune runtest` can never fail the build. With --fail-on-regression a
   metric that worsens past its threshold exits 1.

   Thresholds are fractions of the old value: in corpus mode any metric
   name from Corpus.Diff.default_thresholds ("t_count=0.05,depth=0.1");
   in benchmarks mode the single metric is "runtime" (default 0.25 — a
   run must slow down by >25% to count as a regression). --only PREFIX
   restricts benchmarks mode to rows whose name starts with PREFIX, so
   `bench_diff --only sv_run_ --threshold runtime=0.1 --fail-on-regression`
   gates just the statevector kernel-plan runs.

   Reports with a "serve" section (PR 10+) also contribute synthetic
   rows named serve_load/<percentile> — the service's virtual-clock
   queue-wait and end-to-end latency percentiles — so
   `bench_diff --only serve_` tracks tail-latency drift across PRs the
   same way the runtime rows track kernel drift. *)

let find_up name =
  let rec search dir =
    let candidate = Filename.concat dir name in
    if Sys.file_exists candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else search parent
  in
  search (Sys.getcwd ())

let read_json path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Obs.Json.parse s

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  output_char oc '\n';
  close_out oc

let field name = function
  | Obs.Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Benchmarks (bechamel runtime) mode                                  *)
(* ------------------------------------------------------------------ *)

(* [(name, ns_per_run)] rows of one report's "benchmarks" array. *)
let benchmarks json =
  match field "benchmarks" json with
  | Some (Obs.Json.Arr items) ->
      List.filter_map
        (fun item ->
          match (field "name" item, field "ns_per_run" item) with
          | Some (Obs.Json.String name), Some (Obs.Json.Num ns) -> Some (name, ns)
          | _ -> None)
        items
  | _ -> []

(* Serve latency percentiles as synthetic benchmark rows. The section
   stores virtual microseconds; rows convert to ns so the shared pretty
   printer and the runtime-threshold semantics (bigger = worse) apply
   unchanged. Reports without a "serve" member contribute nothing. *)
let serve_rows json =
  match field "serve" json with
  | Some (Obs.Json.Obj kvs) ->
      List.filter_map
        (fun metric ->
          match List.assoc_opt (metric ^ "_us") kvs with
          | Some (Obs.Json.Num us) -> Some ("serve_load/" ^ metric, us *. 1e3)
          | _ -> None)
        [ "queue_wait_p50"; "queue_wait_p99"; "latency_p50"; "latency_p99" ]
  | _ -> []

let pr_label json =
  match field "pr" json with
  | Some (Obs.Json.Num f) -> Printf.sprintf "pr%.0f" f
  | _ -> "?"

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
  else Printf.sprintf "%8.1f ns" ns

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Bechamel rows are named "<suite>/<case>"; let --only match either the
   full name or the case component, so `--only sv_run_` works without
   spelling the suite. *)
let name_matches ~prefix name =
  starts_with ~prefix name
  || starts_with ~prefix
       (match String.rindex_opt name '/' with
       | Some i -> String.sub name (i + 1) (String.length name - i - 1)
       | None -> name)

(* Renders the runtime table, returns (regressed names, json rows). *)
let diff_benchmarks ~runtime_threshold ~only old_path new_path old_json new_json =
  let keep (name, _) =
    match only with None -> true | Some p -> name_matches ~prefix:p name
  in
  let old_rows = List.filter keep (benchmarks old_json @ serve_rows old_json)
  and new_rows = List.filter keep (benchmarks new_json @ serve_rows new_json) in
  Printf.printf "bench_diff: %s (%s) vs %s (%s)\n" old_path (pr_label old_json)
    new_path (pr_label new_json);
  Printf.printf "%-42s %12s %12s %9s\n" "benchmark" "old" "new" "speedup";
  let seen = ref 0 in
  let regressions = ref [] in
  let rows = ref [] in
  List.iter
    (fun (name, new_ns) ->
      match List.assoc_opt name old_rows with
      | Some old_ns when new_ns > 0. ->
          incr seen;
          let regressed = new_ns > old_ns *. (1. +. runtime_threshold) in
          if regressed then regressions := name :: !regressions;
          rows :=
            Obs.Json.Obj
              [ ("name", Obs.Json.String name); ("old_ns", Obs.Json.Num old_ns);
                ("new_ns", Obs.Json.Num new_ns);
                ("regressed", Obs.Json.Bool regressed) ]
            :: !rows;
          Printf.printf "%-42s %12s %12s %8.2fx%s\n" name (pretty_ns old_ns)
            (pretty_ns new_ns) (old_ns /. new_ns)
            (if regressed then "  REGRESSION" else "")
      | _ -> Printf.printf "%-42s %12s %12s %9s\n" name "-" (pretty_ns new_ns) "new")
    new_rows;
  List.iter
    (fun (name, old_ns) ->
      if not (List.mem_assoc name new_rows) then
        Printf.printf "%-42s %12s %12s %9s\n" name (pretty_ns old_ns) "-" "dropped")
    old_rows;
  if !seen = 0 then print_endline "bench_diff: no common benchmarks to compare";
  let regressions = List.rev !regressions in
  (match regressions with
  | [] -> Printf.printf "no runtime regressions (threshold %g)\n" runtime_threshold
  | rs ->
      Printf.printf "%d runtime regression(s) past threshold %g: %s\n"
        (List.length rs) runtime_threshold (String.concat ", " rs));
  let json =
    Obs.Json.Obj
      [ ("mode", Obs.Json.String "benchmarks");
        ("runtime_threshold", Obs.Json.Num runtime_threshold);
        ("benchmarks", Obs.Json.Arr (List.rev !rows));
        ("regressions",
         Obs.Json.Arr (List.map (fun n -> Obs.Json.String n) regressions)) ]
  in
  (regressions, json)

(* ------------------------------------------------------------------ *)
(* Argument parsing                                                    *)
(* ------------------------------------------------------------------ *)

type opts = {
  paths : string list; (* positional: [old; new] *)
  corpus : bool;
  fail_on_regression : bool;
  threshold : string option; (* raw "m=v,m=v" spec *)
  only : string option; (* benchmark-name prefix filter *)
  json_out : string option;
}

let usage =
  "usage: bench_diff [OLD.json NEW.json] [--corpus] [--fail-on-regression] \
   [--threshold m=frac[,m=frac...]] [--only PREFIX] [--json FILE]"

let parse_args argv =
  let rec go o = function
    | [] -> o
    | "--corpus" :: rest -> go { o with corpus = true } rest
    | "--fail-on-regression" :: rest -> go { o with fail_on_regression = true } rest
    | "--threshold" :: spec :: rest -> go { o with threshold = Some spec } rest
    | "--only" :: prefix :: rest -> go { o with only = Some prefix } rest
    | "--json" :: file :: rest -> go { o with json_out = Some file } rest
    | ("--threshold" | "--only" | "--json") :: [] ->
        prerr_endline usage;
        exit 2
    | flag :: _ when String.length flag > 1 && flag.[0] = '-' ->
        Printf.eprintf "bench_diff: unknown flag %s\n%s\n" flag usage;
        exit 2
    | path :: rest -> go { o with paths = o.paths @ [ path ] } rest
  in
  go
    { paths = []; corpus = false; fail_on_regression = false; threshold = None;
      only = None; json_out = None }
    (List.tl (Array.to_list argv))

(* In benchmarks mode the only metric is the runtime itself. *)
let runtime_threshold_of_spec = function
  | None -> 0.25
  | Some spec -> (
      match String.split_on_char '=' spec with
      | [ "runtime"; v ] -> (
          match float_of_string_opt v with
          | Some f when f >= 0. -> f
          | _ ->
              Printf.eprintf "bench_diff: bad runtime threshold %s\n" v;
              exit 2)
      | _ ->
          Printf.eprintf
            "bench_diff: benchmarks mode understands only runtime=FRAC \
             (got %s); use --corpus for per-metric thresholds\n"
            spec;
          exit 2)

let () =
  let o = parse_args Sys.argv in
  let explicit, old_path, new_path =
    match o.paths with
    | [ op; np ] -> (true, Some op, Some np)
    | [] -> (false, find_up "BENCH_pr9.json", find_up "BENCH_pr10.json")
    | _ ->
        prerr_endline usage;
        exit 2
  in
  match (old_path, new_path) with
  | None, _ | _, None ->
      print_endline
        "bench_diff: baseline or current BENCH json not found; run `dune exec \
         bench/main.exe json` first (report skipped)"
  | Some old_path, Some new_path -> (
      let soft_fail msg =
        (* default discovery stays a report step; explicit paths are a
           user request and failures should be loud *)
        if explicit || o.fail_on_regression then begin
          Printf.eprintf "bench_diff: %s\n" msg;
          exit 2
        end
        else Printf.printf "bench_diff: %s (report skipped)\n" msg
      in
      if o.corpus then begin
        match (Corpus.read_snapshot old_path, Corpus.read_snapshot new_path) with
        | exception (Sys_error msg | Obs.Json.Parse_error msg) -> soft_fail msg
        | exception Corpus.Bad_snapshot msg ->
            soft_fail (Printf.sprintf "bad corpus snapshot: %s" msg)
        | old_s, new_s ->
            let thresholds =
              match o.threshold with
              | None -> Corpus.Diff.default_thresholds
              | Some spec -> (
                  try Corpus.Diff.parse_thresholds spec
                  with Corpus.Diff.Bad_threshold msg ->
                    Printf.eprintf "bench_diff: %s\n" msg;
                    exit 2)
            in
            let report = Corpus.Diff.diff ~thresholds old_s new_s in
            Printf.printf "bench_diff: %s vs %s (corpus)\n" old_path new_path;
            print_string (Corpus.Diff.render report);
            Option.iter
              (fun file ->
                write_file file (Obs.Json.to_string (Corpus.Diff.to_json report)))
              o.json_out;
            if o.fail_on_regression && Corpus.Diff.has_regressions report then
              exit 1
      end
      else
        match (read_json old_path, read_json new_path) with
        | exception (Sys_error msg | Obs.Json.Parse_error msg) -> soft_fail msg
        | old_json, new_json ->
            let runtime_threshold = runtime_threshold_of_spec o.threshold in
            let regressions, json =
              diff_benchmarks ~runtime_threshold ~only:o.only old_path new_path
                old_json new_json
            in
            Option.iter
              (fun file -> write_file file (Obs.Json.to_string json))
              o.json_out;
            if o.fail_on_regression && regressions <> [] then exit 1)
