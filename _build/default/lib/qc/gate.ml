(** Quantum gates.

    The gate set mirrors what the paper's flows use: the Clifford+T basis
    {H, S, S†, T, T†, X, Y, Z, CNOT, CZ} that IBM-style hardware accepts,
    arbitrary Z-rotations, SWAP, plus {e high-level} multiple-controlled
    X/Z gates which {!Clifford_t} lowers. *)

type t =
  | X of int
  | Y of int
  | Z of int
  | H of int
  | S of int
  | Sdg of int
  | T of int
  | Tdg of int
  | Rz of float * int
  | Cnot of int * int (* control, target *)
  | Cz of int * int
  | Swap of int * int
  | Ccx of int * int * int (* control, control, target *)
  | Ccz of int * int * int
  | Mcx of int list * int (* controls (>= 3 of them when built), target *)
  | Mcz of int list (* symmetric: phase flip when all listed qubits are 1 *)

(** [adjoint g] is the inverse gate. All gates here are self-inverse except
    S/T/Rz. *)
let adjoint = function
  | S q -> Sdg q
  | Sdg q -> S q
  | T q -> Tdg q
  | Tdg q -> T q
  | Rz (a, q) -> Rz (-.a, q)
  | g -> g

(** [qubits g] lists the qubits the gate touches. *)
let qubits = function
  | X q | Y q | Z q | H q | S q | Sdg q | T q | Tdg q | Rz (_, q) -> [ q ]
  | Cnot (a, b) | Cz (a, b) | Swap (a, b) -> [ a; b ]
  | Ccx (a, b, c) | Ccz (a, b, c) -> [ a; b; c ]
  | Mcx (cs, t) -> cs @ [ t ]
  | Mcz qs -> qs

(** [is_t g] holds for T and T† — the costly gates under fault tolerance. *)
let is_t = function T _ | Tdg _ -> true | _ -> false

(** [is_clifford_t g] holds when the gate is already in the Clifford+T
    basis (Rz excluded). *)
let is_clifford_t = function
  | X _ | Y _ | Z _ | H _ | S _ | Sdg _ | T _ | Tdg _ | Cnot _ | Cz _ -> true
  | _ -> false

(** Canonical names, matching OpenQASM where a direct equivalent exists. *)
let name = function
  | X _ -> "x"
  | Y _ -> "y"
  | Z _ -> "z"
  | H _ -> "h"
  | S _ -> "s"
  | Sdg _ -> "sdg"
  | T _ -> "t"
  | Tdg _ -> "tdg"
  | Rz _ -> "rz"
  | Cnot _ -> "cx"
  | Cz _ -> "cz"
  | Swap _ -> "swap"
  | Ccx _ -> "ccx"
  | Ccz _ -> "ccz"
  | Mcx _ -> "mcx"
  | Mcz _ -> "mcz"

let pp ppf g =
  match g with
  | Rz (a, q) -> Fmt.pf ppf "rz(%g) q%d" a q
  | Mcx (cs, t) ->
      Fmt.pf ppf "mcx [%a] q%d" Fmt.(list ~sep:(any ",") (fmt "q%d")) cs t
  | Mcz qs -> Fmt.pf ppf "mcz [%a]" Fmt.(list ~sep:(any ",") (fmt "q%d")) qs
  | g ->
      Fmt.pf ppf "%s %a" (name g) Fmt.(list ~sep:(any ",") (fmt "q%d")) (qubits g)
