(** Quantum circuits: ordered gate cascades on a fixed qubit count. *)

type t = { n : int; rev_gates : Gate.t list }

(** [empty n] is the identity circuit on [n] qubits. The container itself
    scales to large registers (the stabilizer backend consumes wide
    Clifford circuits); the dense backends impose their own width caps. *)
let empty n =
  if n < 1 || n > 4096 then invalid_arg "Circuit.empty: bad qubit count";
  { n; rev_gates = [] }

let check c g =
  List.iter
    (fun q -> if q < 0 || q >= c.n then invalid_arg "Circuit: qubit out of range")
    (Gate.qubits g)

(** [add c g] appends [g]. *)
let add c g =
  check c g;
  { c with rev_gates = g :: c.rev_gates }

let add_list c gs = List.fold_left add c gs
let of_gates n gs = add_list (empty n) gs

(** [gates c] lists gates in application order. *)
let gates c = List.rev c.rev_gates

let num_qubits c = c.n
let num_gates c = List.length c.rev_gates

(** [append a b] runs [a] then [b]. *)
let append a b =
  if a.n <> b.n then invalid_arg "Circuit.append: qubit mismatch";
  { a with rev_gates = b.rev_gates @ a.rev_gates }

(** [dagger c] is the adjoint circuit: each gate inverted, order
    reversed. *)
let dagger c = { c with rev_gates = List.rev_map Gate.adjoint c.rev_gates }

(** [widen c n] reinterprets [c] on [n >= num_qubits c] qubits. *)
let widen c n =
  if n < c.n then invalid_arg "Circuit.widen: shrinking";
  { c with n }

(** [map_qubits ~n f c] relabels qubits through [f]. *)
let map_qubits ~n f c =
  let remap g =
    let open Gate in
    match g with
    | X q -> X (f q)
    | Y q -> Y (f q)
    | Z q -> Z (f q)
    | H q -> H (f q)
    | S q -> S (f q)
    | Sdg q -> Sdg (f q)
    | T q -> T (f q)
    | Tdg q -> Tdg (f q)
    | Rz (a, q) -> Rz (a, f q)
    | Cnot (a, b) -> Cnot (f a, f b)
    | Cz (a, b) -> Cz (f a, f b)
    | Swap (a, b) -> Swap (f a, f b)
    | Ccx (a, b, c) -> Ccx (f a, f b, f c)
    | Ccz (a, b, c) -> Ccz (f a, f b, f c)
    | Mcx (cs, t) -> Mcx (List.map f cs, f t)
    | Mcz qs -> Mcz (List.map f qs)
  in
  of_gates n (List.map remap (gates c))

(** [t_count c] counts T and T† gates. *)
let t_count c =
  List.fold_left (fun acc g -> if Gate.is_t g then acc + 1 else acc) 0 c.rev_gates

(** [count_matching p c] counts gates satisfying [p]. *)
let count_matching p c =
  List.fold_left (fun acc g -> if p g then acc + 1 else acc) 0 c.rev_gates

(* Greedy layering: a gate goes into the earliest layer after the busiest of
   its qubits. [weight] selects which gates advance the depth counter. *)
let depth_by weight c =
  let avail = Array.make c.n 0 in
  List.fold_left
    (fun acc g ->
      let qs = Gate.qubits g in
      let start = List.fold_left (fun m q -> max m avail.(q)) 0 qs in
      let d = start + weight g in
      List.iter (fun q -> avail.(q) <- d) qs;
      max acc d)
    0 (gates c)

(** [depth c] is the circuit depth under greedy ASAP layering. *)
let depth c = depth_by (fun _ -> 1) c

(** [t_depth c] is the number of T-layers (only T/T† advance the count) —
    the latency measure the T-par paper optimizes. *)
let t_depth c = depth_by (fun g -> if Gate.is_t g then 1 else 0) c

let pp ppf c =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Gate.pp) (gates c)
