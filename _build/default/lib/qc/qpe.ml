(** Quantum phase estimation for diagonal single-qubit unitaries.

    The classic consumer of the inverse QFT: estimate the eigenphase [φ] of
    [U = diag(1, e^{2πiφ})] on the eigenstate |1⟩, with [t] counting
    qubits. Exercises the full Rz/controlled-phase tool path (compare
    Sec. III's list of algorithm ingredients: HHL and quantum simulation
    both lean on phase estimation). *)

open Gate

(** [circuit ~t ~phi] builds the estimation circuit: qubits [0..t-1] are the
    counting register (qubit 0 = least significant output bit), qubit [t]
    is the eigenstate qubit, prepared in |1⟩. *)
let circuit ~t ~phi =
  if t < 1 then invalid_arg "Qpe.circuit";
  let gates = ref [] in
  let emit g = gates := g :: !gates in
  emit (X t);
  for q = 0 to t - 1 do
    emit (H q)
  done;
  (* counting qubit q controls U^(2^q) = controlled phase 2πφ·2^q *)
  for q = 0 to t - 1 do
    let theta = 2. *. Float.pi *. phi *. Float.of_int (1 lsl q) in
    List.iter emit (Qft.controlled_phase theta q t)
  done;
  let head = Circuit.of_gates (t + 1) (List.rev !gates) in
  let iqft = Circuit.map_qubits ~n:(t + 1) Fun.id (Qft.qft_dag t) in
  Circuit.append head iqft

(** [estimate ~t ~phi] runs the circuit and returns the most likely
    counting-register readout divided by 2^t — the phase estimate. *)
let estimate ~t ~phi =
  let sv = Statevector.run (circuit ~t ~phi) in
  (* marginalize the eigenstate qubit (it stays |1⟩, so just mask) *)
  let best = ref 0 and best_p = ref 0. in
  for x = 0 to (1 lsl t) - 1 do
    let p = Statevector.prob sv (x lor (1 lsl t)) in
    if p > !best_p then begin
      best := x;
      best_p := p
    end
  done;
  Float.of_int !best /. Float.of_int (1 lsl t)

(** [error ~t ~phi] is the circular distance between [phi] and its
    estimate. Exactly 0 for [phi = j/2^t]; at most [2^-t] in general (for
    the most likely outcome; the textbook bound holds with probability
    ≥ 4/π²). *)
let error ~t ~phi =
  let est = estimate ~t ~phi in
  let d = Float.abs (est -. (phi -. Float.of_int (int_of_float phi))) in
  min d (1. -. d)
