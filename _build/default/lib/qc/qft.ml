(** Quantum Fourier transform and Draper's QFT adder.

    A second, structurally different arithmetic style next to the MCT-based
    Cuccaro adder in {!Rev.Arith}: Draper's adder works entirely in Fourier
    space with controlled phase rotations — no ancillae at all. It
    exercises the Rz-rotation path of the whole toolchain (simulation,
    T-par's angle folding, QASM export). *)

open Gate

(* Controlled phase of angle θ between qubits a and b:
   diag(1,1,1,e^{iθ}) = Rz(θ/2) ⊗ I · CNOT · I ⊗ Rz(−θ/2) · CNOT ·
   I ⊗ Rz(θ/2), up to global phase. *)
let controlled_phase theta a b =
  [ Rz (theta /. 2., a); Rz (theta /. 2., b); Cnot (a, b); Rz (-.theta /. 2., b);
    Cnot (a, b) ]

(** [qft n] is the textbook QFT on [n] qubits (with the final qubit-order
    reversal done by SWAPs), mapping |x⟩ to the Fourier basis with qubit 0
    as the least significant bit. Realized {e up to a global phase} (the
    controlled-phase gadget built from Rz/CNOT carries e^{−iθ/4}). *)
let qft n =
  let gates = ref [] in
  let emit g = gates := g :: !gates in
  for j = n - 1 downto 0 do
    emit (H j);
    for k = j - 1 downto 0 do
      let theta = Float.pi /. Float.of_int (1 lsl (j - k)) in
      List.iter emit (controlled_phase theta k j)
    done
  done;
  for q = 0 to (n / 2) - 1 do
    emit (Swap (q, n - 1 - q))
  done;
  Circuit.of_gates n (List.rev !gates)

(** [qft_dag n] is the inverse transform. *)
let qft_dag n = Circuit.dagger (qft n)

(** [phase_add_const n k] adds the classical constant [k] in Fourier space:
    a layer of plain Rz rotations (no entangling gates at all). Sandwiched
    between {!qft} and {!qft_dag} it becomes [x ↦ x + k mod 2^n]. *)
let phase_add_const n k =
  let gates =
    List.filter_map
      (fun j ->
        (* after the (bit-reversing) QFT, qubit j carries the phase
           e^{2πi x / 2^(n-j)}; adding k multiplies by e^{2πi k / 2^(n-j)} *)
        let denom = 1 lsl (n - j) in
        let theta = 2. *. Float.pi *. Float.of_int (k land (denom - 1)) /. Float.of_int denom in
        if Float.abs theta < 1e-15 then None else Some (Rz (theta, j)))
      (List.init n Fun.id)
  in
  Circuit.of_gates n gates

(** [draper_add_const n k] is the full constant adder
    [|x⟩ ↦ |x + k mod 2^n⟩]: QFT, phase layer, inverse QFT. Zero
    ancillae — compare with the MCT incrementer staircase. *)
let draper_add_const n k =
  Circuit.append (Circuit.append (qft n) (phase_add_const n k)) (qft_dag n)

(** [draper_adder n] is the two-register in-place adder
    [|a⟩|b⟩ ↦ |a⟩|a + b mod 2^n⟩] ([a] on qubits [0..n-1], [b] above):
    QFT on [b], controlled phases from each bit of [a], inverse QFT. *)
let draper_adder n =
  let b_qubit i = n + i in
  let qft_b = Circuit.map_qubits ~n:(2 * n) b_qubit (qft n) in
  let phases = ref [] in
  for j = 0 to n - 1 do
    (* Fourier qubit j of b carries e^{2πi b / 2^(n-j)}; bit i of a adds
       2^i, i.e. phase 2π·2^i / 2^(n-j) — trivial once i ≥ n-j *)
    for i = 0 to n - 1 - j do
      let theta = 2. *. Float.pi /. Float.of_int (1 lsl (n - j - i)) in
      List.iter (fun g -> phases := g :: !phases) (controlled_phase theta i (b_qubit j))
    done
  done;
  let phase_circuit = Circuit.of_gates (2 * n) (List.rev !phases) in
  Circuit.append (Circuit.append qft_b phase_circuit) (Circuit.dagger qft_b)

(** [check_add_const circuit n k] verifies [x ↦ x + k mod 2^n] on every
    basis state (up to global phase). *)
let check_add_const circuit n k =
  match Unitary.is_permutation ~eps:1e-6 (Unitary.of_circuit circuit) with
  | Some p ->
      let ok = ref true in
      for x = 0 to (1 lsl n) - 1 do
        if p.(x) <> (x + k) land ((1 lsl n) - 1) then ok := false
      done;
      !ok
  | None -> false
