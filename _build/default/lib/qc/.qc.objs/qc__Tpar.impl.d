lib/qc/tpar.ml: Array Circuit Float Gate Hashtbl List
