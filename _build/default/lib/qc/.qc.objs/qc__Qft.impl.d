lib/qc/qft.ml: Array Circuit Float Fun Gate List Unitary
