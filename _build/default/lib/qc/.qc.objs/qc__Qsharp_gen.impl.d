lib/qc/qsharp_gen.ml: Buffer Circuit Gate List Printf String
