lib/qc/equiv.ml: Circuit Fmt Gate List Random Statevector Unitary
