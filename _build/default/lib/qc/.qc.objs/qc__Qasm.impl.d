lib/qc/qasm.ml: Buffer Circuit Gate List Printf Scanf String
