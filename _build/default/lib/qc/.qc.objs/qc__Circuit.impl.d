lib/qc/circuit.ml: Array Fmt Gate List
