lib/qc/unitary.ml: Array Circuit Complex Float Gate Logic Statevector
