lib/qc/draw.ml: Array Buffer Circuit Fmt Gate List Printf
