lib/qc/clifford_t.ml: Array Circuit Gate List Logic Rev
