lib/qc/qpe.ml: Circuit Float Fun Gate List Qft Statevector
