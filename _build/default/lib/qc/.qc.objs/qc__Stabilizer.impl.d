lib/qc/stabilizer.ml: Array Bytes Circuit Gate Int64 List Random
