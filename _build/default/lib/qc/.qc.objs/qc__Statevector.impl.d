lib/qc/statevector.ml: Array Circuit Complex Float Gate List Random
