lib/qc/opt.ml: Array Circuit Float Gate List Tpar
