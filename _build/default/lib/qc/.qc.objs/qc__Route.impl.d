lib/qc/route.ml: Array Circuit Fun Gate List Unitary
