lib/qc/gate.ml: Fmt
