lib/qc/resource.ml: Circuit Fmt Gate List
