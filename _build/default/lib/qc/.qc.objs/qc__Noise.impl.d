lib/qc/noise.ml: Array Circuit Float Gate List Random Statevector
