(** ASCII rendering of quantum circuits, one row per qubit, time flowing
    left to right — the textual analogue of the paper's circuit figures. *)

open Gate

(* Single-character labels keep every cell exactly three columns wide;
   lowercase marks the adjoint. *)
let box_label = function
  | X _ -> "X"
  | Y _ -> "Y"
  | Z _ -> "Z"
  | H _ -> "H"
  | S _ -> "S"
  | Sdg _ -> "s"
  | T _ -> "T"
  | Tdg _ -> "t"
  | Rz _ -> "R"
  | _ -> "?"

(* Column contents per qubit for a single gate. *)
type cell = Empty | Box of string | Ctrl | Targ | Wire | SwapX

let cells_of n g =
  let col = Array.make n Empty in
  (match g with
  | Cnot (c, t) ->
      col.(c) <- Ctrl;
      col.(t) <- Targ
  | Cz (a, b) ->
      col.(a) <- Ctrl;
      col.(b) <- Ctrl
  | Swap (a, b) ->
      col.(a) <- SwapX;
      col.(b) <- SwapX
  | Ccx (a, b, t) ->
      col.(a) <- Ctrl;
      col.(b) <- Ctrl;
      col.(t) <- Targ
  | Ccz (a, b, c) ->
      col.(a) <- Ctrl;
      col.(b) <- Ctrl;
      col.(c) <- Ctrl
  | Mcx (cs, t) ->
      List.iter (fun c -> col.(c) <- Ctrl) cs;
      col.(t) <- Targ
  | Mcz qs -> List.iter (fun q -> col.(q) <- Ctrl) qs
  | g ->
      let q = List.hd (qubits g) in
      col.(q) <- Box (box_label g));
  (* vertical connector on intermediate lines *)
  let touched = qubits g in
  let lo = List.fold_left min n touched and hi = List.fold_left max (-1) touched in
  for q = lo + 1 to hi - 1 do
    if col.(q) = Empty then col.(q) <- Wire
  done;
  col

let render_cell = function
  | Empty -> "---"
  | Box s -> Printf.sprintf "[%s]" s
  | Ctrl -> "-*-"
  | Targ -> "-@-"
  | Wire -> "-|-"
  | SwapX -> "-x-"

(* ASAP column packing that respects program order: a gate occupies the
   whole row interval it spans (controls, target and the vertical
   connector) and goes into the earliest column after every earlier gate
   touching that interval. *)
let pack_columns n gates =
  let frontier = Array.make n 0 in
  let placed =
    List.map
      (fun g ->
        let qs = Gate.qubits g in
        let lo = List.fold_left min (n - 1) qs and hi = List.fold_left max 0 qs in
        let col = ref 0 in
        for r = lo to hi do
          col := max !col frontier.(r)
        done;
        for r = lo to hi do
          frontier.(r) <- !col + 1
        done;
        (!col, g))
      gates
  in
  let ncols = Array.fold_left max 0 frontier in
  let grid = Array.init ncols (fun _ -> Array.make n Empty) in
  List.iter
    (fun (idx, g) ->
      let cells = cells_of n g in
      Array.iteri (fun r c -> if c <> Empty then grid.(idx).(r) <- c) cells)
    placed;
  grid

(** [to_string circuit] renders the circuit as [n] text rows, packing
    independent gates into shared columns. *)
let to_string circuit =
  let n = Circuit.num_qubits circuit in
  let grid = pack_columns n (Circuit.gates circuit) in
  let buf = Buffer.create 256 in
  for q = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "q%-2d:" q);
    Array.iter (fun col -> Buffer.add_string buf (render_cell col.(q))) grid;
    Buffer.add_string buf "---\n"
  done;
  Buffer.contents buf

let pp ppf c = Fmt.pf ppf "%s" (to_string c)
