lib/engine/engine.ml: Array List Qc
