lib/engine/oracles.ml: Array Engine List Logic Qc Rev
