(** Window-based resynthesis of reversible circuits.

    A peephole optimizer stronger than {!Rsimp}'s rewrite rules: grow
    windows of consecutive gates whose combined support fits in at most
    [max_lines] lines (default 3), extract the sub-permutation each window
    computes, re-synthesize it with the {e provably minimal} BFS engine
    ({!Exact_synth}), and splice the result back when strictly smaller.
    Iterates to a fixpoint. The function computed by the circuit is
    preserved exactly — each replacement is a local identity rewrite. *)

module Bitops = Logic.Bitops
module Perm = Logic.Perm

(* Extract the window's permutation on its own (relabeled) lines and
   resynthesize; returns the replacement gates (original labels) if
   strictly smaller. *)
let improve_window ~lines_mask gates =
  let lines = Bitops.bits_of lines_mask 62 in
  let width = List.length lines in
  let to_local = Hashtbl.create 8 and to_global = Array.make width 0 in
  List.iteri
    (fun i l ->
      Hashtbl.add to_local l i;
      to_global.(i) <- l)
    lines;
  let local_gates =
    List.map
      (fun (g : Mct.t) ->
        let remap m = Bitops.fold_bits (fun acc l -> acc lor (1 lsl Hashtbl.find to_local l)) 0 m in
        Mct.make ~target:(Hashtbl.find to_local g.Mct.target) ~pos:(remap g.Mct.pos)
          ~neg:(remap g.Mct.neg))
      gates
  in
  let sub = Rcircuit.of_gates width local_gates in
  let p = Rsim.to_perm sub in
  let optimal = Exact_synth.synth p in
  if Rcircuit.num_gates optimal < List.length gates then
    Some
      (List.map
         (fun (g : Mct.t) ->
           let remap m = Bitops.fold_bits (fun acc l -> acc lor (1 lsl to_global.(l))) 0 m in
           Mct.make ~target:to_global.(g.Mct.target) ~pos:(remap g.Mct.pos)
             ~neg:(remap g.Mct.neg))
         (Rcircuit.gates optimal))
  else None

(* One left-to-right sweep; returns (gates', improved). *)
let sweep ~max_lines gates =
  let arr = Array.of_list gates in
  let n = Array.length arr in
  let out = ref [] in
  let improved = ref false in
  let i = ref 0 in
  while !i < n do
    (* grow the window while the union of supports stays small *)
    let mask = ref (Mct.lines arr.(!i)) in
    let j = ref (!i + 1) in
    while
      !j < n
      && Bitops.popcount (!mask lor Mct.lines arr.(!j)) <= max_lines
    do
      mask := !mask lor Mct.lines arr.(!j);
      incr j
    done;
    let window = Array.to_list (Array.sub arr !i (!j - !i)) in
    if !j - !i >= 2 && Bitops.popcount !mask <= max_lines then begin
      match improve_window ~lines_mask:!mask window with
      | Some better ->
          improved := true;
          List.iter (fun g -> out := g :: !out) better;
          i := !j
      | None ->
          out := arr.(!i) :: !out;
          incr i
    end
    else begin
      out := arr.(!i) :: !out;
      incr i
    end
  done;
  (List.rev !out, !improved)

(** [optimize ?max_lines c] runs sweeps to a fixpoint. [max_lines] is
    capped at {!Exact_synth.max_vars} (3). *)
let optimize ?(max_lines = 3) c =
  let max_lines = min max_lines Exact_synth.max_vars in
  let gates = ref (Rcircuit.gates c) in
  let continue_ = ref true in
  let budget = ref 64 in
  while !continue_ && !budget > 0 do
    decr budget;
    let gates', improved = sweep ~max_lines !gates in
    gates := gates';
    continue_ := improved
  done;
  Rcircuit.of_gates (Rcircuit.num_lines c) !gates
