(** Hierarchical reversible synthesis from multi-level logic networks
    (paper Sec. V, refs [45, 55, 63, 65]).

    Internal XAG nodes are computed onto {e ancilla} lines with Toffoli /
    CNOT gates, outputs are copied out, and the ancillae are uncomputed so
    they return to |0⟩ (Eq. (4) with [k > 0]). Two scheduling modes expose
    the qubit/gate trade-off the paper discusses:

    - {!bennett}: compute every node once, copy outputs, uncompute — one
      ancilla per internal node, minimal gates;
    - {!output_batched}: process outputs in batches of [b], uncomputing each
      batch's cone before the next — ancillae bounded by the largest batch
      cone, at the price of recomputing shared nodes. *)

module Bitops = Logic.Bitops

(* Line layout: inputs on [0, n); outputs on [n, n+m); ancillae above. *)

type layout = {
  n : int;
  m : int;
  total_lines : int;
  ancillae : int;
}

(* Emit the gates computing node [id] onto line [line], given [line_of] for
   operand nodes. An And becomes one Toffoli (complemented operands =
   negative controls); an Xor becomes two CNOTs plus possibly a NOT. *)
let node_gates g line_of id line =
  match Xag.node g id with
  | Xag.And (a, b) ->
      let ctrl s = (line_of (Xag.node_of_signal s), not (Xag.is_complemented s)) in
      [ Mct.of_controls [ ctrl a; ctrl b ] line ]
  | Xag.Xor (a, b) ->
      let base =
        [ Mct.cnot (line_of (Xag.node_of_signal a)) line;
          Mct.cnot (line_of (Xag.node_of_signal b)) line ]
      in
      if Xag.is_complemented a <> Xag.is_complemented b then base @ [ Mct.not_ line ]
      else base
  | Xag.Const | Xag.Input _ -> invalid_arg "Hier_synth.node_gates: not internal"

let copy_output g line_of s out_line =
  let id = Xag.node_of_signal s in
  let gates =
    match Xag.node g id with
    | Xag.Const -> []
    | _ -> [ Mct.cnot (line_of id) out_line ]
  in
  if Xag.is_complemented s then gates @ [ Mct.not_ out_line ] else gates

(** [bennett g] is the keep-everything schedule: [k] = number of internal
    nodes ancillae; gate count [2·gates(nodes) + outputs]. Returns the
    circuit and its layout. *)
let bennett g =
  let n = Xag.num_inputs g in
  let outputs = Xag.outputs g in
  let m = List.length outputs in
  let nodes = Xag.internal_nodes_topological g in
  let line_of_tbl = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.add line_of_tbl id (n + m + i)) nodes;
  let line_of id =
    match Xag.node g id with
    | Xag.Input i -> i
    | _ -> Hashtbl.find line_of_tbl id
  in
  let compute = List.concat_map (fun id -> node_gates g line_of id (line_of id)) nodes in
  let copies = List.concat (List.mapi (fun j s -> copy_output g line_of s (n + j)) outputs) in
  let uncompute = List.rev compute in
  let total = n + m + List.length nodes in
  let circuit = Rcircuit.of_gates total (compute @ copies @ uncompute) in
  (circuit, { n; m; total_lines = total; ancillae = List.length nodes })

(** [output_batched ~batch g] processes outputs in groups of [batch]:
    each group's cone is computed, copied and immediately uncomputed, and
    its ancilla lines are reused by the next group. Smaller batches mean
    fewer ancillae but repeated recomputation of shared logic. *)
let output_batched ~batch g =
  if batch < 1 then invalid_arg "Hier_synth.output_batched";
  let n = Xag.num_inputs g in
  let outputs = Xag.outputs g in
  let m = List.length outputs in
  let rec chunks i = function
    | [] -> []
    | l ->
        let rec take k = function
          | x :: r when k > 0 ->
              let a, b = take (k - 1) r in
              (x :: a, b)
          | r -> ([], r)
        in
        let group, rest = take batch l in
        (i, group) :: chunks (i + List.length group) rest
  in
  let groups = chunks 0 outputs in
  let max_cone =
    List.fold_left (fun acc (_, group) -> max acc (List.length (Xag.cone g group))) 0 groups
  in
  let gates =
    List.concat_map
      (fun (j0, group) ->
        let cone = Xag.cone g group in
        let line_of_tbl = Hashtbl.create 64 in
        List.iteri (fun i id -> Hashtbl.add line_of_tbl id (n + m + i)) cone;
        let line_of id =
          match Xag.node g id with
          | Xag.Input i -> i
          | _ -> Hashtbl.find line_of_tbl id
        in
        let compute =
          List.concat_map (fun id -> node_gates g line_of id (line_of id)) cone
        in
        let copies =
          List.concat
            (List.mapi (fun dj s -> copy_output g line_of s (n + j0 + dj)) group)
        in
        compute @ copies @ List.rev compute)
      groups
  in
  let total = n + m + max_cone in
  let circuit = Rcircuit.of_gates total gates in
  (circuit, { n; m; total_lines = total; ancillae = max_cone })

(** [synth_tables ?batch fs] is the convenience front end: ESOP covers →
    XAG → hierarchical circuit ({!bennett} when [batch] is omitted). *)
let synth_tables ?batch (fs : Logic.Truth_table.t list) =
  let n = Logic.Truth_table.num_vars (List.hd fs) in
  let g = Xag.of_esops n (List.map Logic.Esop_opt.minimize fs) in
  match batch with None -> bennett g | Some b -> output_batched ~batch:b g

(** [check (circuit, layout) fs] verifies Eq. (4): inputs preserved, each
    output line [j] receives [fⱼ(x)], and every ancilla returns to 0. *)
let check (circuit, layout) (fs : Logic.Truth_table.t list) =
  let ok = ref true in
  for x = 0 to (1 lsl layout.n) - 1 do
    let out = Rsim.run circuit x in
    if out land Bitops.mask layout.n <> x then ok := false;
    List.iteri
      (fun j f ->
        if Bitops.bit out (layout.n + j) <> Logic.Truth_table.get f x then ok := false)
      fs;
    if out lsr (layout.n + layout.m) <> 0 then ok := false
  done;
  !ok
