lib/rev/resynth.ml: Array Exact_synth Hashtbl List Logic Mct Rcircuit Rsim
