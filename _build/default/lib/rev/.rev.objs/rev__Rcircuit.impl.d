lib/rev/rcircuit.ml: Fmt List Logic Mct
