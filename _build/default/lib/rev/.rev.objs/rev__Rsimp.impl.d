lib/rev/rsimp.ml: Array Logic Mct Rcircuit
