lib/rev/exact_synth.ml: Array Fun Hashtbl List Logic Mct Queue Rcircuit String
