lib/rev/embed.ml: Array Hashtbl List Logic Option
