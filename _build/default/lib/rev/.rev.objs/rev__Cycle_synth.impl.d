lib/rev/cycle_synth.ml: List Logic Mct Rcircuit
