lib/rev/rsim.ml: Array List Logic Mct Rcircuit
