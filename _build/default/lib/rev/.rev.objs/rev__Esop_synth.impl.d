lib/rev/esop_synth.ml: List Logic Mct Rcircuit
