lib/rev/mct.ml: Fmt List Logic Printf String
