lib/rev/tbs.ml: Array List Logic Mct Rcircuit
