lib/rev/pebble.ml: Array List Printf
