lib/rev/xag.ml: Array Hashtbl List Logic
