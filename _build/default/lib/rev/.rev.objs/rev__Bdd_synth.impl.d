lib/rev/bdd_synth.ml: Hashtbl List Logic Mct Rcircuit Rsim
