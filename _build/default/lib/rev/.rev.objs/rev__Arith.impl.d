lib/rev/arith.ml: Array List Logic Mct Rcircuit Rsim
