lib/rev/dbs.ml: Array List Logic Mct Rcircuit
