lib/rev/lut_synth.ml: Hashtbl List Logic Mct Rcircuit Rsim Xag
