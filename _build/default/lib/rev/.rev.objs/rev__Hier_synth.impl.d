lib/rev/hier_synth.ml: Hashtbl List Logic Mct Rcircuit Rsim Xag
