(** Reversible arithmetic circuits.

    The paper's Sec. III lists the combinational workloads quantum
    algorithms need — "factoring needs constant modular arithmetic [1],
    elliptic curve dlog needs generic modular arithmetic [4]". This module
    provides the standard building blocks, both {e structural} (the
    Cuccaro/CDKM ripple-carry adder, incrementers) and {e specification
    level} (modular add/multiply permutations to feed the automatic
    synthesis flow). *)

module Bitops = Logic.Bitops
module Perm = Logic.Perm

(** Line layout of the in-place adder [b := b + a]. *)
type adder_layout = {
  carry_in : int; (* ancilla, must be 0, returned to 0 *)
  a : int array; (* addend, preserved *)
  b : int array; (* accumulator, receives the sum *)
  carry_out : int option;
}

(* MAJ and UMA blocks of the Cuccaro-Draper-Kutin-Moulton adder. *)
let maj c b a = [ Mct.cnot a b; Mct.cnot a c; Mct.toffoli c b a ]
let uma c b a = [ Mct.toffoli c b a; Mct.cnot a c; Mct.cnot c b ]

(** [cuccaro_adder ?with_carry n] is the CDKM ripple-carry adder on [n]-bit
    operands: lines [1..n] hold [a] (preserved), lines [n+1..2n] hold [b]
    (replaced by [(a + b) mod 2^n]), line 0 is a clean carry ancilla, and
    with [with_carry] (default true) line [2n+1] receives the outgoing
    carry. One Toffoli per MAJ/UMA pair — 2n Toffolis total. *)
let cuccaro_adder ?(with_carry = true) n =
  if n < 1 then invalid_arg "Arith.cuccaro_adder";
  let carry_in = 0 in
  let a = Array.init n (fun i -> 1 + i) in
  let b = Array.init n (fun i -> 1 + n + i) in
  let carry_out = if with_carry then Some ((2 * n) + 1) else None in
  let lines = (2 * n) + 1 + if with_carry then 1 else 0 in
  let majs =
    List.concat
      (List.init n (fun i ->
           let c = if i = 0 then carry_in else a.(i - 1) in
           maj c b.(i) a.(i)))
  in
  let carry_gates =
    match carry_out with Some z -> [ Mct.cnot a.(n - 1) z ] | None -> []
  in
  let umas =
    List.concat
      (List.init n (fun j ->
           let i = n - 1 - j in
           let c = if i = 0 then carry_in else a.(i - 1) in
           uma c b.(i) a.(i)))
  in
  let circuit = Rcircuit.of_gates lines (majs @ carry_gates @ umas) in
  (circuit, { carry_in; a; b; carry_out })

(** [subtractor n] computes [b := b − a (mod 2^n)] — the reversed adder. *)
let subtractor n =
  let c, layout = cuccaro_adder ~with_carry:false n in
  (Rcircuit.reverse c, layout)

(** [incrementer n] maps [x ↦ x + 1 (mod 2^n)] in place on [n] lines,
    ancilla-free: an MCT staircase (bit [i] flips when all lower bits are
    1). [O(n)] gates but gates with up to [n−1] controls. *)
let incrementer n =
  if n < 1 then invalid_arg "Arith.incrementer";
  let gates =
    List.init n (fun j ->
        let i = n - 1 - j in
        Mct.make ~target:i ~pos:(Bitops.mask i) ~neg:0)
  in
  Rcircuit.of_gates n gates

(** [decrementer n] is the inverse staircase. *)
let decrementer n = Rcircuit.reverse (incrementer n)

(** [controlled_incrementer n] increments lines [1..n] when line 0 is 1. *)
let controlled_incrementer n =
  let gates =
    List.init n (fun j ->
        let i = n - 1 - j in
        Mct.make ~target:(i + 1) ~pos:((Bitops.mask i lsl 1) lor 1) ~neg:0)
  in
  Rcircuit.of_gates (n + 1) gates

(* --- specification-level modular arithmetic (for the synthesis flow) --- *)

(** [mod_add_const n ~m ~k] is the permutation of [B^n] computing
    [x ↦ (x + k) mod m] on the residues [x < m] and the identity above —
    the "constant modular adder" of Shor-style circuits, as a reversible
    specification ready for {!Tbs}/{!Dbs} or the {!Core.Flow} pipeline. *)
let mod_add_const n ~m ~k =
  if m < 1 || m > 1 lsl n then invalid_arg "Arith.mod_add_const";
  let k = ((k mod m) + m) mod m in
  Perm.of_array ~n
    (Array.init (1 lsl n) (fun x -> if x < m then (x + k) mod m else x))

(** [mod_mult_const n ~m ~c] is [x ↦ c·x mod m] on residues (identity
    above); requires [gcd(c, m) = 1] so the map is a bijection. *)
let mod_mult_const n ~m ~c =
  if m < 1 || m > 1 lsl n then invalid_arg "Arith.mod_mult_const";
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let c = ((c mod m) + m) mod m in
  if gcd c m <> 1 then invalid_arg "Arith.mod_mult_const: c not invertible";
  Perm.of_array ~n
    (Array.init (1 lsl n) (fun x -> if x < m then c * x mod m else x))

(** [mod_exp_step n ~m ~base] is one modular-exponentiation round
    [x ↦ base·x mod m] — composing [e] of these yields [base^e · x mod m],
    the core of Shor's order finding. *)
let mod_exp_step n ~m ~base = mod_mult_const n ~m ~c:base

(* --- verification helpers --- *)

(** [check_adder (circuit, layout) n] exhaustively verifies
    [b := a + b] (and the outgoing carry when present). *)
let check_adder (circuit, layout) n =
  let ok = ref true in
  for a = 0 to (1 lsl n) - 1 do
    for b = 0 to (1 lsl n) - 1 do
      let input = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit a i then input := !input lor (1 lsl l)) layout.a;
      Array.iteri (fun i l -> if Bitops.bit b i then input := !input lor (1 lsl l)) layout.b;
      let out = Rsim.run circuit !input in
      let a' = ref 0 and b' = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit out l then a' := !a' lor (1 lsl i)) layout.a;
      Array.iteri (fun i l -> if Bitops.bit out l then b' := !b' lor (1 lsl i)) layout.b;
      if !a' <> a then ok := false;
      if !b' <> (a + b) land Bitops.mask n then ok := false;
      if Bitops.bit out layout.carry_in then ok := false;
      (match layout.carry_out with
      | Some z -> if Bitops.bit out z <> (a + b >= 1 lsl n) then ok := false
      | None -> ())
    done
  done;
  !ok
