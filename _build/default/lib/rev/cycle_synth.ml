(** Cycle-based reversible synthesis (Saeedi et al., the paper's ref [48]).

    The permutation is decomposed into disjoint cycles, each cycle into
    adjacent transpositions, and each transposition [(u, v)] into MCT gates
    along a Gray path from [u] to [v]: an adjacent transposition (patterns
    differing in exactly one bit [j]) is a single fully controlled Toffoli
    with target [j] and controls fixing every other bit. *)

module Bitops = Logic.Bitops
module Perm = Logic.Perm

(* The fully controlled gate swapping u and (u lxor (1 lsl j)). *)
let adjacent_transposition ~n u j =
  let others = Bitops.mask n land lnot (1 lsl j) in
  Mct.make ~target:j ~pos:(u land others) ~neg:(lnot u land others)

(* Gates realizing the transposition (a, b), a <> b: walk a Gray path
   a = v0, v1, …, vk = b and expand into 2k−1 adjacent transpositions
   (conjugation along the path). *)
let transposition ~n a b =
  assert (a <> b);
  let diff_bits = Bitops.bits_of (a lxor b) n in
  (* path flips the differing bits one at a time *)
  let path =
    List.rev
      (List.fold_left (fun acc j -> (List.hd acc lxor (1 lsl j)) :: acc) [ a ] diff_bits)
  in
  (* adjacent transpositions t_i = (v_{i-1}, v_i); (a,b) = t1 t2 … tk … t2 t1
     (conjugation), where each t is self-inverse *)
  let steps =
    List.mapi
      (fun i v ->
        let prev = List.nth path i in
        let j = Bitops.trailing_zeros (prev lxor v) in
        adjacent_transposition ~n prev j)
      (List.tl path)
  in
  match List.rev steps with
  | [] -> assert false
  | last :: before_rev -> List.rev before_rev @ (last :: before_rev)

(** [synth p] decomposes [p] into cycles and transpositions. Correct for
    every permutation; gate counts are typically worse than {!Tbs}/{!Dbs}
    (the method's known weakness), which the E5 sweep makes visible. *)
let synth p =
  let n = Perm.num_vars p in
  let gates =
    List.concat_map
      (fun cycle ->
        (* (c1 c2 … ck): apply (c_{k-1} c_k) first, …, (c1 c2) last *)
        let rec pairs = function
          | a :: (b :: _ as rest) -> (a, b) :: pairs rest
          | _ -> []
        in
        List.concat_map (fun (a, b) -> transposition ~n a b) (List.rev (pairs cycle)))
      (Perm.cycles p)
  in
  Rcircuit.of_gates (max 1 n) gates
