(** Exact (minimal gate count) reversible synthesis by breadth-first search
    (in the spirit of Große et al., the paper's ref [49]).

    Optimal MCT cascades for up to 3 lines: BFS from the identity over the
    full mixed-polarity MCT gate library, with predecessor links to recover
    a shortest circuit. The n = 3 table has 8! = 40320 states and is built
    once on demand. *)

module Perm = Logic.Perm

let max_vars = 3

(* All mixed-polarity MCT gates on [n] lines. *)
let gate_library n =
  let rec control_choices target lines =
    match lines with
    | [] -> [ [] ]
    | l :: rest ->
        let tails = control_choices target rest in
        List.concat_map
          (fun tail -> [ tail; (l, true) :: tail; (l, false) :: tail ])
          tails
  in
  List.concat_map
    (fun target ->
      let others = List.filter (fun l -> l <> target) (List.init n Fun.id) in
      List.map (fun ctrls -> Mct.of_controls ctrls target) (control_choices target others))
    (List.init n Fun.id)

type table = {
  dist : (string, int) Hashtbl.t;
  pred : (string, string * Mct.t) Hashtbl.t; (* state -> (previous, gate applied) *)
  gates : Mct.t list;
  n : int;
}

let key arr = String.concat "," (List.map string_of_int (Array.to_list arr))

let build_table n =
  if n < 1 || n > max_vars then invalid_arg "Exact_synth: supports 1..3 lines";
  let size = 1 lsl n in
  let gates = gate_library n in
  let dist = Hashtbl.create 65536 and pred = Hashtbl.create 65536 in
  let idkey = key (Array.init size Fun.id) in
  Hashtbl.add dist idkey 0;
  let queue = Queue.create () in
  Queue.add (Array.init size Fun.id) queue;
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    let skey = key state in
    let d = Hashtbl.find dist skey in
    List.iter
      (fun g ->
        (* append gate at the output: new(x) = g(state(x)) *)
        let next = Array.map (Mct.apply g) state in
        let nkey = key next in
        if not (Hashtbl.mem dist nkey) then begin
          Hashtbl.add dist nkey (d + 1);
          Hashtbl.add pred nkey (skey, g);
          Queue.add next queue
        end)
      gates
  done;
  { dist; pred; gates; n }

let tables : (int, table) Hashtbl.t = Hashtbl.create 4

let table n =
  match Hashtbl.find_opt tables n with
  | Some t -> t
  | None ->
      let t = build_table n in
      Hashtbl.add tables n t;
      t

(** [min_gates p] is the provably minimal MCT gate count for [p]. *)
let min_gates p =
  let t = table (Perm.num_vars p) in
  Hashtbl.find t.dist (key (Perm.to_array p))

(** [synth p] is a minimal MCT cascade realizing [p] ([n <= 3] lines). *)
let synth p =
  let n = Perm.num_vars p in
  let t = table n in
  let idkey = key (Array.init (1 lsl n) Fun.id) in
  let rec walk k acc =
    if k = idkey then acc
    else
      let prev, g = Hashtbl.find t.pred k in
      walk prev (g :: acc)
  in
  (* BFS appends gates at the output side (state = g_k ∘ … ∘ g_1), so the
     first-applied gate is found last when walking back; the accumulator
     prepends, yielding application order directly. *)
  let gates = walk (key (Perm.to_array p)) [] in
  Rcircuit.of_gates (max 1 n) gates
