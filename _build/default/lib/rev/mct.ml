(** Multiple-controlled Toffoli (MCT) gates with mixed-polarity controls.

    An MCT gate flips its target line when all positive controls are 1 and
    all negative controls are 0. Controls are stored as bitmasks over the
    circuit lines, so simulation of one gate is two mask tests. *)

module Bitops = Logic.Bitops

type t = { target : int; pos : int; neg : int }

(** [make ~target ~pos ~neg] validates that the control sets are disjoint
    from each other and from the target. *)
let make ~target ~pos ~neg =
  if target < 0 then invalid_arg "Mct.make: negative target";
  let tbit = 1 lsl target in
  if pos land neg <> 0 then invalid_arg "Mct.make: overlapping control polarities";
  if (pos lor neg) land tbit <> 0 then invalid_arg "Mct.make: target used as control";
  { target; pos; neg }

(** [not_ target] is an uncontrolled NOT. *)
let not_ target = make ~target ~pos:0 ~neg:0

(** [cnot control target] is a positively controlled NOT. *)
let cnot control target = make ~target ~pos:(1 lsl control) ~neg:0

(** [toffoli c1 c2 target] is the doubly controlled NOT. *)
let toffoli c1 c2 target = make ~target ~pos:((1 lsl c1) lor (1 lsl c2)) ~neg:0

(** [of_controls controls target] builds a gate from
    [(line, polarity)] control pairs. *)
let of_controls controls target =
  List.fold_left
    (fun g (line, polarity) ->
      let b = 1 lsl line in
      if (g.pos lor g.neg) land b <> 0 then invalid_arg "Mct.of_controls: duplicate control";
      if line = target then invalid_arg "Mct.of_controls: target used as control";
      if polarity then { g with pos = g.pos lor b } else { g with neg = g.neg lor b })
    (not_ target) controls

(** [num_controls g] counts controls of both polarities. *)
let num_controls g = Bitops.popcount (g.pos lor g.neg)

(** [controls n g] lists [(line, polarity)] pairs among the first [n]
    lines. *)
let controls n g =
  List.map (fun l -> (l, true)) (Bitops.bits_of g.pos n)
  @ List.map (fun l -> (l, false)) (Bitops.bits_of g.neg n)
  |> List.sort compare

(** [apply g x] is the gate's action on the basis state (bit pattern) [x]. *)
let apply g x =
  if x land g.pos = g.pos && x land g.neg = 0 then x lxor (1 lsl g.target) else x

let equal a b = a.target = b.target && a.pos = b.pos && a.neg = b.neg

(** [lines g] is the mask of all lines the gate touches. *)
let lines g = g.pos lor g.neg lor (1 lsl g.target)

(** [quantum_cost n g] is the standard NCV quantum-cost estimate of a
    [c]-control Toffoli on an [n]-line circuit (Maslov's tables): 1 for
    NOT/CNOT, 5 for Toffoli, and for [c ≥ 3] controls
    [2^(c+1) − 3] without free lines, improved to a linear cost when at
    least one unused line is available. Negative controls are costed like
    positive ones (the NOT pair is absorbed). *)
let quantum_cost n g =
  let c = num_controls g in
  match c with
  | 0 | 1 -> 1
  | 2 -> 5
  | _ ->
      let free_lines = n - c - 1 in
      if free_lines >= c - 2 then (12 * c) - 22 (* Barenco-style linear decomposition *)
      else if free_lines >= 1 then (24 * c) - 88 |> max ((2 lsl c) - 3)
      else (2 lsl c) - 3

let pp ppf g =
  let n = 1 + List.fold_left max g.target (Bitops.bits_of (g.pos lor g.neg) 62) in
  let ctrls =
    List.map
      (fun (l, pol) -> Printf.sprintf "%s%d" (if pol then "" else "!") l)
      (controls n g)
  in
  Fmt.pf ppf "T(%s ; %d)" (String.concat "," ctrls) g.target
