(** XOR-AND graphs (XAGs): multi-level logic networks with structural
    hashing, the representation behind hierarchical reversible synthesis
    (paper refs [55, 63]).

    Signals are node ids with an optional complement bit, encoded as
    [2*id + c]. Node 0 is the constant false, so signal 1 is constant
    true. *)

type node =
  | Const (* node 0 only *)
  | Input of int
  | And of int * int (* operand signals *)
  | Xor of int * int

type t = {
  mutable nodes : node array;
  mutable next : int;
  strash : (node, int) Hashtbl.t;
  num_inputs : int;
  mutable outputs : int list; (* output signals, in reverse insertion order *)
}

(* --- signals --- *)

let signal_of_node id = 2 * id
let node_of_signal s = s / 2
let is_complemented s = s land 1 = 1
let complement s = s lxor 1
let const_false = 0
let const_true = 1

let create num_inputs =
  let nodes = Array.make (max 16 (2 * num_inputs)) Const in
  for i = 0 to num_inputs - 1 do
    nodes.(i + 1) <- Input i
  done;
  { nodes; next = num_inputs + 1; strash = Hashtbl.create 256; num_inputs;
    outputs = [] }

(** [input g i] is the signal of primary input [i]. *)
let input g i =
  if i < 0 || i >= g.num_inputs then invalid_arg "Xag.input";
  signal_of_node (i + 1)

let alloc g n =
  match Hashtbl.find_opt g.strash n with
  | Some id -> signal_of_node id
  | None ->
      if g.next >= Array.length g.nodes then begin
        let bigger = Array.make (2 * Array.length g.nodes) Const in
        Array.blit g.nodes 0 bigger 0 g.next;
        g.nodes <- bigger
      end;
      let id = g.next in
      g.nodes.(id) <- n;
      g.next <- id + 1;
      Hashtbl.add g.strash n id;
      signal_of_node id

(** [and_ g a b] builds (or reuses) an AND node, with constant propagation
    and normalization of operand order. *)
let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = complement b then const_false
  else alloc g (And (a, b))

(** [xor g a b] builds (or reuses) an XOR node; complements are pulled out
    so stored operands are always uncomplemented. *)
let xor g a b =
  let c = (a land 1) lxor (b land 1) in
  let a = a land lnot 1 and b = b land lnot 1 in
  let a, b = if a <= b then (a, b) else (b, a) in
  let s =
    if a = const_false then b
    else if a = b then const_false
    else alloc g (Xor (a, b))
  in
  s lxor c

let not_ s = complement s
let or_ g a b = complement (and_ g (complement a) (complement b))

(** [add_output g s] registers [s] as the next primary output. *)
let add_output g s = g.outputs <- s :: g.outputs

(** [outputs g] lists output signals in registration order. *)
let outputs g = List.rev g.outputs

let num_inputs g = g.num_inputs

(** [num_nodes g] counts internal (And/Xor) nodes. *)
let num_nodes g =
  let c = ref 0 in
  for id = 0 to g.next - 1 do
    match g.nodes.(id) with And _ | Xor _ -> incr c | _ -> ()
  done;
  !c

(** [num_ands g] counts AND nodes (the multiplicative complexity proxy). *)
let num_ands g =
  let c = ref 0 in
  for id = 0 to g.next - 1 do
    match g.nodes.(id) with And _ -> incr c | _ -> ()
  done;
  !c

(** [of_bexpr n e] builds a single-output XAG from an expression on [n]
    inputs. *)
let of_bexpr n e =
  let g = create n in
  let rec go = function
    | Logic.Bexpr.Const b -> if b then const_true else const_false
    | Logic.Bexpr.Var i -> input g i
    | Logic.Bexpr.Not a -> complement (go a)
    | Logic.Bexpr.And (a, b) -> and_ g (go a) (go b)
    | Logic.Bexpr.Or (a, b) -> or_ g (go a) (go b)
    | Logic.Bexpr.Xor (a, b) -> xor g (go a) (go b)
  in
  add_output g (go e);
  g

(** [of_esops n esops] builds a multi-output XAG from ESOP covers: each
    cube is an AND tree, each cover an XOR chain. *)
let of_esops n (esops : Logic.Esop.t list) =
  let g = create n in
  List.iter
    (fun esop ->
      let cube_signal c =
        List.fold_left
          (fun acc (v, pol) ->
            let lit = if pol then input g v else complement (input g v) in
            and_ g acc lit)
          const_true
          (Logic.Cube.literals n c)
      in
      let s = List.fold_left (fun acc c -> xor g acc (cube_signal c)) const_false esop in
      add_output g s)
    esops;
  g

(** [ripple_adder n] builds the structural ripple-carry adder
    [(a, b) ↦ a + b] on two [n]-bit operands ([a] on inputs [0..n-1], [b]
    on [n..2n-1]; [n+1] sum outputs, LSB first). Unlike the ESOP route this
    is a genuinely multi-level network (≈ 5 nodes per bit), the natural
    workload for hierarchical synthesis and pebbling experiments. *)
let ripple_adder n =
  let g = create (2 * n) in
  let carry = ref const_false in
  for i = 0 to n - 1 do
    let a = input g i and b = input g (n + i) in
    let axb = xor g a b in
    let sum = xor g axb !carry in
    (* carry' = (a ∧ b) ⊕ (carry ∧ (a ⊕ b)) — the standard full adder *)
    carry := xor g (and_ g a b) (and_ g !carry axb);
    add_output g sum
  done;
  add_output g !carry;
  g

(** [eval g x] evaluates all outputs on assignment [x], packed as an
    integer (output [j] = bit [j]). *)
let eval g x =
  let values = Array.make g.next false in
  for id = 1 to g.next - 1 do
    values.(id) <-
      (match g.nodes.(id) with
      | Const -> false
      | Input i -> Logic.Bitops.bit x i
      | And (a, b) ->
          (values.(node_of_signal a) <> is_complemented a)
          && (values.(node_of_signal b) <> is_complemented b)
      | Xor (a, b) ->
          (values.(node_of_signal a) <> is_complemented a)
          <> (values.(node_of_signal b) <> is_complemented b))
  done;
  List.fold_left
    (fun (acc, j) s ->
      let v = values.(node_of_signal s) <> is_complemented s in
      ((if v then acc lor (1 lsl j) else acc), j + 1))
    (0, 0) (outputs g)
  |> fst

(** [to_truth_tables g] tabulates every output. *)
let to_truth_tables g =
  List.mapi
    (fun j _ -> Logic.Truth_table.of_fun g.num_inputs (fun x -> Logic.Bitops.bit (eval g x) j))
    (outputs g)

(** [internal_nodes_topological g] lists internal node ids in dependency
    order (operands before users — node ids are already topological by
    construction). *)
let internal_nodes_topological g =
  let out = ref [] in
  for id = g.next - 1 downto 1 do
    match g.nodes.(id) with And _ | Xor _ -> out := id :: !out | _ -> ()
  done;
  !out

(** [node g id] exposes the node for synthesis back ends. *)
let node g id = g.nodes.(id)

(** [cone g signals] is the set of internal node ids feeding the given
    signals, as a sorted list. *)
let cone g signals =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if id > 0 && not (Hashtbl.mem seen id) then
      match g.nodes.(id) with
      | And (a, b) | Xor (a, b) ->
          Hashtbl.add seen id ();
          go (node_of_signal a);
          go (node_of_signal b)
      | _ -> ()
  in
  List.iter (fun s -> go (node_of_signal s)) signals;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])
