(** Embedding irreversible functions into reversible ones (Eq. (2) of the
    paper, refs [53, 54]).

    Given [f : B^n -> B^m], find a reversible [g : B^r -> B^r] with
    [g(x, 0) = (f(x), garbage)]. The minimum [r] is governed by the
    {e output multiplicity} [μ] — the largest number of inputs mapping to
    the same output pattern: [r ≥ max(n, m + ⌈log₂ μ⌉)]. Finding the
    minimum is coNP-hard in general; this module computes the bound exactly
    (by counting) and constructs an embedding achieving it. *)

module Bitops = Logic.Bitops
module Perm = Logic.Perm
module Truth_table = Logic.Truth_table

(** [output_multiplicity fs] is [μ]: the maximal preimage size over output
    patterns, for the multi-output function given as per-output tables. *)
let output_multiplicity (fs : Truth_table.t list) =
  match fs with
  | [] -> invalid_arg "Embed.output_multiplicity: no outputs"
  | f0 :: _ ->
      let n = Truth_table.num_vars f0 in
      let counts = Hashtbl.create 64 in
      for x = 0 to (1 lsl n) - 1 do
        let y =
          List.fold_left
            (fun (acc, j) f -> ((if Truth_table.get f x then acc lor (1 lsl j) else acc), j + 1))
            (0, 0) fs
          |> fst
        in
        Hashtbl.replace counts y (1 + Option.value ~default:0 (Hashtbl.find_opt counts y))
      done;
      Hashtbl.fold (fun _ c acc -> max c acc) counts 0

(** [min_lines fs] is the provably minimal reversible line count
    [r = max(n, m + ⌈log₂ μ⌉)]. *)
let min_lines (fs : Truth_table.t list) =
  let n = Truth_table.num_vars (List.hd fs) in
  let m = List.length fs in
  max n (m + Bitops.log2_ceil (output_multiplicity fs))

(** The result of an embedding: the permutation [g] on [2^r] points, with
    inputs of [f] on the low [n] bits (remaining input bits must be 0) and
    outputs of [f] on the low [m] bits of the result. *)
type t = { r : int; n : int; m : int; perm : Perm.t }

(** [embed fs] constructs a minimal-line embedding of the multi-output
    function [fs] by assigning distinct garbage values within each preimage
    class and completing the map to a bijection greedily. *)
let embed (fs : Truth_table.t list) =
  let n = Truth_table.num_vars (List.hd fs) in
  let m = List.length fs in
  let r = min_lines fs in
  let size = 1 lsl r in
  let image = Array.make size (-1) in
  let used = Array.make size false in
  (* Garbage counter per output pattern gives injectivity on the domain. *)
  let next_garbage = Hashtbl.create 64 in
  for x = 0 to (1 lsl n) - 1 do
    let y =
      List.fold_left
        (fun (acc, j) f -> ((if Truth_table.get f x then acc lor (1 lsl j) else acc), j + 1))
        (0, 0) fs
      |> fst
    in
    let garbage = Option.value ~default:0 (Hashtbl.find_opt next_garbage y) in
    Hashtbl.replace next_garbage y (garbage + 1);
    let target = y lor (garbage lsl m) in
    assert (target < size && not used.(target));
    image.(x) <- target;
    used.(target) <- true
  done;
  (* Complete to a bijection: remaining domain points (those with nonzero
     constant bits) take the unused codomain points in order. *)
  let free = ref [] in
  for y = size - 1 downto 0 do
    if not used.(y) then free := y :: !free
  done;
  for x = 0 to size - 1 do
    if image.(x) < 0 then begin
      match !free with
      | y :: rest ->
          image.(x) <- y;
          free := rest
      | [] -> assert false
    end
  done;
  { r; n; m; perm = Perm.of_array ~n:r image }

(** [check e fs] verifies the embedding contract [g(x, 0) = (f(x), ·)]. *)
let check e (fs : Truth_table.t list) =
  let ok = ref true in
  for x = 0 to (1 lsl e.n) - 1 do
    let y = Perm.apply e.perm x in
    List.iteri
      (fun j f ->
        if Bitops.bit y j <> Truth_table.get f x then ok := false)
      fs
  done;
  !ok
