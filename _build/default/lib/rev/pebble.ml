(** Reversible pebbling strategies (paper refs [66, 67]).

    Abstract model: a chain of [s] segments where computing segment [i]
    requires segment [i−1] to be pebbled (present on ancilla qubits).
    Bennett's recursive strategy with fan-out [f] trades pebbles (qubits)
    for segment executions (gates): [f = s] is compute-everything
    (s pebbles, s moves); [f = 2] uses [O(log s)] pebbles and
    [O(s^{log₂ 3})] moves.

    The schedules produced here are used both for the E6 cost tables and to
    validate the strategy against the chain dependency rule. *)

type action = Compute of int | Uncompute of int

(* Reverse a schedule (compute <-> uncompute, reversed order). *)
let invert actions =
  List.rev_map (function Compute i -> Uncompute i | Uncompute i -> Compute i) actions

(** [bennett ~segments ~fanout] is the recursive Bennett schedule that
    leaves all of [0 .. segments-1]'s {e final} segment pebbled and all
    intermediate segments clean, assuming segment 0's input (the circuit
    inputs) is always available. All segments are left pebbled at the top
    level of each recursion frame except those explicitly uncomputed. The
    returned schedule leaves exactly the last segment pebbled. *)
let bennett ~segments ~fanout =
  if segments < 1 then invalid_arg "Pebble.bennett: segments";
  if fanout < 2 then invalid_arg "Pebble.bennett: fanout";
  (* compute_range lo hi: starting with segment lo-1 pebbled (or nothing if
     lo = 0), leave exactly segment hi-1 pebbled among [lo, hi). *)
  let rec compute_range lo hi =
    let len = hi - lo in
    if len = 1 then [ Compute lo ]
    else begin
      (* split into at most [fanout] nearly equal parts *)
      let parts = min fanout len in
      let bounds =
        List.init (parts + 1) (fun i -> lo + (len * i / parts))
      in
      let ranges =
        List.filteri (fun i _ -> i < parts) bounds
        |> List.mapi (fun i b -> (b, List.nth bounds (i + 1)))
      in
      let forward = List.concat_map (fun (a, b) -> compute_range a b) ranges in
      let backward =
        List.concat_map
          (fun (a, b) -> invert (compute_range a b))
          (List.rev (List.filteri (fun i _ -> i < parts - 1) ranges))
      in
      forward @ backward
    end
  in
  compute_range 0 segments

(** Cost summary of a schedule. *)
type cost = { pebbles : int; moves : int }

(** [simulate ~segments actions] validates [actions] against the chain
    rule — [Compute i] / [Uncompute i] require segment [i−1] pebbled and
    segment [i] in the complementary state — and returns the peak pebble
    count and total move count. Raises [Invalid_argument] on an illegal
    schedule. *)
let simulate ~segments actions =
  let pebbled = Array.make segments false in
  let peak = ref 0 and live = ref 0 and moves = ref 0 in
  List.iter
    (fun act ->
      incr moves;
      let need_prev i =
        if i > 0 && not pebbled.(i - 1) then
          invalid_arg (Printf.sprintf "Pebble.simulate: segment %d not ready" i)
      in
      match act with
      | Compute i ->
          need_prev i;
          if pebbled.(i) then invalid_arg "Pebble.simulate: double compute";
          pebbled.(i) <- true;
          incr live;
          peak := max !peak !live
      | Uncompute i ->
          need_prev i;
          if not pebbled.(i) then invalid_arg "Pebble.simulate: uncompute clean";
          pebbled.(i) <- false;
          decr live)
    actions;
  { pebbles = !peak; moves = !moves }

(** [strategy_cost ~segments ~fanout] is {!simulate} of {!bennett} — the
    row generator of the E6 trade-off table. *)
let strategy_cost ~segments ~fanout =
  simulate ~segments (bennett ~segments ~fanout)
