(** Reversible-circuit simplification — the paper's [revsimp] command.

    Function-preserving peephole rewriting on MCT cascades:

    - {e cancellation}: two equal gates compose to the identity;
    - {e merging}: two gates with the same target whose control cubes are at
      EXORLINK-distance 1 fuse into one gate
      ([C_{S,b}X · C_{S,¬b}X = C_S X] and [C_{S·l}X · C_S X = C_{S·¬l}X]);
    - gates may move across {e commuting} gates to meet a partner.

    All rules are applied to a fixpoint (with a pass bound as a safety
    net). *)

module Bitops = Logic.Bitops

(* Two MCT gates commute when neither target is a control line of the other
   (equal targets always commute: both XOR into the same line and neither
   control function reads it). *)
let commute (a : Mct.t) (b : Mct.t) =
  let actrl = a.Mct.pos lor a.Mct.neg and bctrl = b.Mct.pos lor b.Mct.neg in
  (a.Mct.target = b.Mct.target)
  || (bctrl land (1 lsl a.Mct.target) = 0 && actrl land (1 lsl b.Mct.target) = 0)

(* Merge two same-target gates at control-cube distance <= 1.
   Returns [Some None] for cancellation, [Some (Some g)] for a fused gate,
   [None] when not mergeable. *)
let merge (a : Mct.t) (b : Mct.t) =
  if a.Mct.target <> b.Mct.target then None
  else
    let amask = a.Mct.pos lor a.Mct.neg and bmask = b.Mct.pos lor b.Mct.neg in
    let presence = amask lxor bmask in
    let poldiff = (a.Mct.pos lxor b.Mct.pos) land amask land bmask in
    let diff = presence lor poldiff in
    if diff = 0 then Some None (* identical: cancel *)
    else if Bitops.popcount diff <> 1 then None
    else if presence = 0 then
      (* polarity clash on one line: drop that control *)
      Some
        (Some
           (Mct.make ~target:a.Mct.target ~pos:(a.Mct.pos land lnot diff)
              ~neg:(a.Mct.neg land lnot diff)))
    else
      (* one gate has an extra literal: flip its polarity *)
      let wide = if amask land presence <> 0 then a else b in
      Some
        (Some
           (Mct.make ~target:wide.Mct.target
              ~pos:(wide.Mct.pos lxor presence)
              ~neg:(wide.Mct.neg lxor presence)))

(* One scan over the gate array; returns [Some gates'] on the first applied
   rewrite, [None] at a local fixpoint. *)
let rewrite_once gates =
  let n = Array.length gates in
  let result = ref None in
  (try
     for i = 0 to n - 2 do
       let rec probe j =
         if j >= n then ()
         else
           match merge gates.(i) gates.(j) with
           | Some fused ->
               (* Gate i commutes past everything up to j, so
                  g_j ∘ C ∘ g_i = (g_j ∘ g_i) ∘ C: the fused gate replaces
                  g_j in place and g_i is dropped. *)
               let out = ref [] in
               for k = n - 1 downto 0 do
                 if k = j then (
                   match fused with
                   | Some g -> out := g :: !out
                   | None -> ())
                 else if k <> i then out := gates.(k) :: !out
               done;
               result := Some (Array.of_list !out);
               raise Exit
           | None -> if commute gates.(i) gates.(j) then probe (j + 1) else ()
       in
       probe (i + 1)
     done
   with Exit -> ());
  !result

(** [simplify c] rewrites [c] to a fixpoint of the rules above. The result
    computes the same permutation. *)
let simplify c =
  let gates = ref (Array.of_list (Rcircuit.gates c)) in
  let budget = ref (Array.length !gates * Array.length !gates * 4 + 64) in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    decr budget;
    match rewrite_once !gates with
    | Some g -> gates := g
    | None -> continue_ := false
  done;
  Rcircuit.of_gates (Rcircuit.num_lines c) (Array.to_list !gates)
