(** Bit-level simulation of reversible circuits.

    A reversible circuit on [n] lines computes a permutation of [B^n]; this
    module evaluates it on single patterns and extracts the full
    permutation — the ground truth every synthesis test checks against. *)

module Perm = Logic.Perm

(** [run c x] propagates the basis pattern [x] through [c]. *)
let run c x =
  List.fold_left (fun x g -> Mct.apply g x) x (Rcircuit.gates c)

(** [to_perm c] is the permutation of [{0, …, 2^lines − 1}] computed by
    [c]. Exponential in the line count; intended for [lines ≤ ~20]. *)
let to_perm c =
  let n = Rcircuit.num_lines c in
  Perm.of_array ~n (Array.init (1 lsl n) (fun x -> run c x))

(** [realizes c p] holds when [c] computes exactly the permutation [p]. *)
let realizes c p = Perm.equal (to_perm c) p

(** [realizes_function c ~inputs ~outputs fs] checks the Bennett convention
    of Eq. (4) with [k = 0]: on input [x] on lines [inputs] and [0] on lines
    [outputs], the circuit must leave [x] intact and produce [fᵢ(x)] on the
    [i]-th output line. [fs] are single-output truth tables on
    [List.length inputs] variables. *)
let realizes_function c ~inputs ~outputs fs =
  let n_in = List.length inputs in
  let ok = ref true in
  for x = 0 to (1 lsl n_in) - 1 do
    let word =
      List.fold_left
        (fun (w, i) line -> ((if Logic.Bitops.bit x i then w lor (1 lsl line) else w), i + 1))
        (0, 0) inputs
      |> fst
    in
    let out = run c word in
    (* inputs preserved *)
    List.iteri
      (fun i line -> if Logic.Bitops.bit out line <> Logic.Bitops.bit x i then ok := false)
      inputs;
    List.iteri
      (fun j line ->
        let expect = Logic.Truth_table.get (List.nth fs j) x in
        if Logic.Bitops.bit out line <> expect then ok := false)
      outputs
  done;
  !ok
