(** LUT-based hierarchical reversible synthesis (Soeken–Roetteler–Wiebe–
    De Micheli DAC'17, the paper's ref [65]).

    The XAG is first mapped into a network of [k]-input lookup tables
    (greedy k-feasible cuts), then each LUT — rather than each gate — is
    computed onto one ancilla line as an ESOP cascade over its cut leaves.
    Larger [k] means {e fewer ancillae} but {e wider gates}: exactly the
    qubit/quality dial the paper's Sec. IX says synthesis needs to expose. *)

module Truth_table = Logic.Truth_table
module Bitops = Logic.Bitops

type lut = {
  root : int; (* XAG node id this LUT computes *)
  leaves : int list; (* XAG node ids (inputs or other LUT roots) *)
  table : Truth_table.t; (* local function over the leaves, in list order *)
}

type layout = { n : int; m : int; total_lines : int; ancillae : int; k : int }

(* Greedy k-feasible cut per node: merge the children's cuts when small
   enough, else cut at the children. *)
let compute_cuts g ~k =
  let cuts = Hashtbl.create 64 in
  let cut_of id =
    match Xag.node g id with
    | Xag.Input _ -> [ id ]
    | _ -> Hashtbl.find cuts id
  in
  List.iter
    (fun id ->
      match Xag.node g id with
      | Xag.And (a, b) | Xag.Xor (a, b) ->
          let ca = cut_of (Xag.node_of_signal a) and cb = cut_of (Xag.node_of_signal b) in
          let merged = List.sort_uniq compare (ca @ cb) in
          let cut =
            if List.length merged <= k then merged
            else
              List.sort_uniq compare
                [ Xag.node_of_signal a; Xag.node_of_signal b ]
          in
          Hashtbl.add cuts id cut
      | _ -> ())
    (Xag.internal_nodes_topological g);
  cut_of

(* Tabulate the cone of [root] over the ordered [leaves]. *)
let local_table g ~root ~leaves =
  let k = List.length leaves in
  Truth_table.of_fun k (fun assignment ->
      let values = Hashtbl.create 16 in
      List.iteri (fun i leaf -> Hashtbl.add values leaf (Bitops.bit assignment i)) leaves;
      let rec eval id =
        match Hashtbl.find_opt values id with
        | Some v -> v
        | None ->
            let v =
              match Xag.node g id with
              | Xag.Const -> false
              | Xag.Input _ ->
                  invalid_arg "Lut_synth: cut does not cover an input"
              | Xag.And (a, b) -> eval_signal a && eval_signal b
              | Xag.Xor (a, b) -> eval_signal a <> eval_signal b
            in
            Hashtbl.add values id v;
            v
      and eval_signal s =
        let v = eval (Xag.node_of_signal s) in
        if Xag.is_complemented s then not v else v
      in
      eval root)

(** [map_luts ~k g] covers the XAG with k-input LUTs: returns the selected
    LUTs in dependency order (leaves' LUTs before users'). *)
let map_luts ~k g =
  if k < 2 then invalid_arg "Lut_synth.map_luts: k >= 2";
  let cut_of = compute_cuts g ~k in
  (* covering: walk back from the outputs *)
  let selected = Hashtbl.create 64 in
  let order = ref [] in
  let rec need id =
    match Xag.node g id with
    | Xag.Input _ | Xag.Const -> ()
    | _ ->
        if not (Hashtbl.mem selected id) then begin
          Hashtbl.add selected id ();
          let leaves = cut_of id in
          List.iter need leaves;
          order := { root = id; leaves; table = local_table g ~root:id ~leaves } :: !order
        end
  in
  List.iter (fun s -> need (Xag.node_of_signal s)) (Xag.outputs g);
  List.rev !order

(** [synth ~k g] is the full flow: LUT mapping, one ancilla per LUT
    computed as an ESOP cascade, outputs copied off, Bennett uncompute.
    Line layout: inputs, outputs, LUT ancillae. *)
let synth ~k g =
  let n = Xag.num_inputs g in
  let outputs = Xag.outputs g in
  let m = List.length outputs in
  let luts = map_luts ~k g in
  let line_tbl = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.add line_tbl l.root (n + m + i)) luts;
  let line_of id =
    match Xag.node g id with
    | Xag.Input i -> i
    | _ -> Hashtbl.find line_tbl id
  in
  let lut_gates l =
    let target = line_of l.root in
    List.map
      (fun cube ->
        let controls =
          List.map
            (fun (v, pol) -> (line_of (List.nth l.leaves v), pol))
            (Logic.Cube.literals (List.length l.leaves) cube)
        in
        Mct.of_controls controls target)
      (Logic.Esop_opt.minimize l.table)
  in
  let compute = List.concat_map lut_gates luts in
  let copies =
    List.concat
      (List.mapi
         (fun j s ->
           let id = Xag.node_of_signal s in
           let base =
             match Xag.node g id with
             | Xag.Const -> []
             | _ -> [ Mct.cnot (line_of id) (n + j) ]
           in
           if Xag.is_complemented s then base @ [ Mct.not_ (n + j) ] else base)
         outputs)
  in
  let total = n + m + List.length luts in
  if total > 62 then invalid_arg "Lut_synth.synth: too many lines";
  let circuit = Rcircuit.of_gates total (compute @ copies @ List.rev compute) in
  (circuit, { n; m; total_lines = total; ancillae = List.length luts; k })

(** [synth_tables ~k fs] is the truth-table front end (via ESOP → XAG). *)
let synth_tables ~k (fs : Truth_table.t list) =
  let n = Truth_table.num_vars (List.hd fs) in
  synth ~k (Xag.of_esops n (List.map Logic.Esop_opt.minimize fs))

(** [check (circuit, layout) fs] verifies the Eq. (4) contract. *)
let check (circuit, layout) (fs : Truth_table.t list) =
  let ok = ref true in
  for x = 0 to (1 lsl layout.n) - 1 do
    let out = Rsim.run circuit x in
    if out land Bitops.mask layout.n <> x then ok := false;
    List.iteri
      (fun j f -> if Bitops.bit out (layout.n + j) <> Truth_table.get f x then ok := false)
      fs;
    if out lsr (layout.n + layout.m) <> 0 then ok := false
  done;
  !ok
