(** Decomposition-based reversible synthesis via Young subgroups
    (De Vos–Van Rentergem, the paper's reference [47] and its [dbs]
    command).

    For each variable [v] the permutation is factored as
    [p = R ∘ p' ∘ L] where [L] and [R] are {e single-target gates} on [v]
    (they flip line [v] controlled by a Boolean function of the other
    lines) and [p'] preserves line [v]. Recursing over all variables leaves
    the identity in the middle, i.e. at most [2n − 1] single-target gates.
    Each single-target gate is realized as an ESOP cascade of MCT gates. *)

module Bitops = Logic.Bitops
module Perm = Logic.Perm
module Truth_table = Logic.Truth_table
module Esop_opt = Logic.Esop_opt
module Cube = Logic.Cube

(* Factor [p] w.r.t. variable [v]: returns [(fl, fr, p')] where [fl]/[fr]
   are the control functions of the left/right single-target gates as
   truth tables over the (n-1)-bit column index (variable [v] deleted), and
   [p'] preserves bit [v]. Uses 2-coloring of the 2-regular bipartite
   edge graph between input and output columns. *)
let factor_var p v =
  let n = Perm.num_vars p in
  let sz = 1 lsl n in
  let table = Perm.to_array p in
  let inv = Array.make sz 0 in
  Array.iteri (fun x y -> inv.(y) <- x) table;
  let color = Array.make sz (-1) in
  let vbit = 1 lsl v in
  for x0 = 0 to sz - 1 do
    if color.(x0) < 0 then begin
      (* Walk the cycle through alternating out-column / in-column
         siblings, alternating colors. *)
      let x = ref x0 and c = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        color.(!x) <- !c;
        (* sibling edge at the same output column *)
        let x' = inv.(table.(!x) lxor vbit) in
        color.(x') <- 1 - !c;
        (* sibling edge at x''s input column *)
        let x'' = x' lxor vbit in
        if color.(x'') >= 0 then continue_ := false
        else x := x''
        (* color stays: x'' shares its input column with x', so it gets the
           complement of x''s color, i.e. !c again *)
      done
    end
  done;
  let fl =
    Truth_table.of_fun (n - 1) (fun col -> color.(Bitops.insert_bit col v false) = 1)
  in
  let fr =
    Truth_table.of_fun (n - 1) (fun col ->
        color.(inv.(Bitops.insert_bit col v false)) = 1)
  in
  (* p' = R ∘ p ∘ L (single-target gates are involutions) *)
  let stg f x =
    if Truth_table.get f (Bitops.remove_bit x v) then x lxor vbit else x
  in
  let p' =
    Perm.of_array ~n (Array.init sz (fun x -> stg fr table.(stg fl x)))
  in
  (fl, fr, p')

(* Realize a single-target gate on line [v] with control function [f] over
   the column index, as an ESOP cascade of MCT gates. *)
let stg_gates ~n ~v f =
  let esop = Esop_opt.minimize f in
  List.map
    (fun cube ->
      let controls =
        List.map
          (fun (col_var, pol) ->
            let line = if col_var < v then col_var else col_var + 1 in
            (line, pol))
          (Cube.literals (n - 1) cube)
      in
      Mct.of_controls controls v)
    esop

(** [synth p] synthesizes [p] into at most [2n − 1] single-target gates,
    each expanded into an ESOP MCT cascade. *)
let synth p =
  let n = Perm.num_vars p in
  let rec go p v =
    if v >= n || Perm.is_identity p then []
    else
      let fl, fr, p' = factor_var p v in
      let left = stg_gates ~n ~v fl and right = stg_gates ~n ~v fr in
      (* p = R ∘ p' ∘ L, so the circuit applies L first and R last. *)
      left @ go p' (v + 1) @ right
  in
  Rcircuit.of_gates n (go p 0)
