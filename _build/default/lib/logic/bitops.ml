(** Low-level bit utilities shared across the Boolean-function substrate.

    Throughout the library, assignments to [n] Boolean variables are encoded
    as the low [n] bits of a non-negative [int]; variable [i] is bit [i]. *)

(** [popcount x] is the number of set bits in [x]. [x] must be
    non-negative. *)
let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

(** [parity x] is the XOR of all bits of [x]: [1] if the population count is
    odd, [0] otherwise. *)
let parity x = popcount x land 1

(** [bit x i] is bit [i] of [x] as a [bool]. *)
let bit x i = (x lsr i) land 1 = 1

(** [set_bit x i b] returns [x] with bit [i] forced to [b]. *)
let set_bit x i b = if b then x lor (1 lsl i) else x land lnot (1 lsl i)

(** [flip_bit x i] returns [x] with bit [i] toggled. *)
let flip_bit x i = x lxor (1 lsl i)

(** [mask n] is the integer with the low [n] bits set. Valid for
    [0 <= n <= 62]. *)
let mask n = (1 lsl n) - 1

(** [gray i] is the [i]-th Gray code, [i lxor (i lsr 1)]. Successive Gray
    codes differ in exactly one bit. *)
let gray i = i lxor (i lsr 1)

(** [trailing_zeros x] is the index of the least-significant set bit of [x].
    Raises [Invalid_argument] if [x = 0]. *)
let trailing_zeros x =
  if x = 0 then invalid_arg "Bitops.trailing_zeros: zero";
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  go 0 x

(** [bits_of x n] lists the indices of set bits of [x] below position [n],
    in increasing order. *)
let bits_of x n =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (if bit x i then i :: acc else acc)
  in
  go (n - 1) []

(** [fold_bits f acc x] folds [f] over the indices of the set bits of [x],
    from least to most significant. *)
let fold_bits f acc x =
  let rec go acc x =
    if x = 0 then acc
    else
      let i = trailing_zeros x in
      go (f acc i) (x land (x - 1))
  in
  go acc x

(** [insert_bit x i b] widens [x] by inserting bit value [b] at position [i]:
    bits at positions [>= i] shift up by one. Used to re-expand cofactor
    indices. *)
let insert_bit x i b =
  let low = x land mask i in
  let high = (x lsr i) lsl (i + 1) in
  let b = if b then 1 lsl i else 0 in
  high lor b lor low

(** [remove_bit x i] narrows [x] by deleting bit position [i]: bits above [i]
    shift down by one. Inverse of {!insert_bit} (for either inserted value). *)
let remove_bit x i =
  let low = x land mask i in
  let high = (x lsr (i + 1)) lsl i in
  high lor low

(** [log2_ceil x] is the smallest [k] with [2^k >= x]; [0] for [x <= 1]. *)
let log2_ceil x =
  let rec go k p = if p >= x then k else go (k + 1) (p * 2) in
  if x <= 1 then 0 else go 0 1

(** [int64_popcount w] is the number of set bits in the 64-bit word [w]. *)
let int64_popcount w =
  let open Int64 in
  let w = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
  let w =
    add
      (logand w 0x3333333333333333L)
      (logand (shift_right_logical w 2) 0x3333333333333333L)
  in
  let w = logand (add w (shift_right_logical w 4)) 0x0f0f0f0f0f0f0f0fL in
  to_int (shift_right_logical (mul w 0x0101010101010101L) 56)
