(** NPN canonization of Boolean functions.

    Two functions are NPN-equivalent when one maps onto the other by
    Negating inputs, Permuting inputs, and/or Negating the output — the
    standard equivalence under which logic-synthesis caches (including
    reversible-synthesis result caches) are indexed. This module computes
    the exhaustive canonical representative, practical up to 5–6
    variables. *)

type transform = {
  perm : int array; (* input j of the transformed function reads input perm.(j) *)
  input_neg : int; (* bitmask: input j is complemented *)
  output_neg : bool;
}

let identity n = { perm = Array.init n Fun.id; input_neg = 0; output_neg = false }

(** [apply t f] is the transformed function
    [g(x) = f(y) ⊕ output_neg] with [y.(perm.(j)) = x.(j) ⊕ neg.(j)]. *)
let apply t f =
  let n = Truth_table.num_vars f in
  if Array.length t.perm <> n then invalid_arg "Npn.apply: arity mismatch";
  Truth_table.of_fun n (fun x ->
      let y = ref 0 in
      for j = 0 to n - 1 do
        if Bitops.bit x j <> Bitops.bit t.input_neg j then y := !y lor (1 lsl t.perm.(j))
      done;
      Truth_table.get f !y <> t.output_neg)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun r -> x :: r) (permutations (List.filter (( <> ) x) l)))
        l

let all_transforms n =
  let perms = permutations (List.init n Fun.id) in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun input_neg ->
          [ { perm = Array.of_list perm; input_neg; output_neg = false };
            { perm = Array.of_list perm; input_neg; output_neg = true } ])
        (List.init (1 lsl n) Fun.id))
    perms

(** [canonical f] is the lexicographically-smallest truth table in [f]'s
    NPN class, together with a transform producing it from [f].
    Exhaustive: [n! · 2^(n+1)] candidates; intended for [n <= 6]. *)
let canonical f =
  let n = Truth_table.num_vars f in
  if n > 6 then invalid_arg "Npn.canonical: exhaustive canonization supports n <= 6";
  List.fold_left
    (fun (best, best_t) t ->
      let candidate = apply t f in
      if Truth_table.to_string candidate < Truth_table.to_string best then (candidate, t)
      else (best, best_t))
    (f, identity n) (all_transforms n)

(** [equivalent a b] holds when the functions share an NPN class. *)
let equivalent a b =
  Truth_table.num_vars a = Truth_table.num_vars b
  && Truth_table.equal (fst (canonical a)) (fst (canonical b))

(** [classes n] enumerates the canonical representative of every NPN class
    on [n] variables (exhaustive over all [2^2^n] functions; [n <= 4]).
    |classes 2| = 4, |classes 3| = 14, |classes 4| = 222 — the classic
    counts. *)
let classes n =
  if n > 4 then invalid_arg "Npn.classes: n <= 4";
  let seen = Hashtbl.create 256 in
  for code = 0 to (1 lsl (1 lsl n)) - 1 do
    let f = Truth_table.of_fun n (fun x -> Bitops.bit code x) in
    let rep, _ = canonical f in
    Hashtbl.replace seen (Truth_table.to_string rep) rep
  done;
  Hashtbl.fold (fun _ rep acc -> rep :: acc) seen []
