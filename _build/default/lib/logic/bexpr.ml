(** Boolean expression AST, combinators, parser and evaluation.

    This is the front end of the automatic flow: the paper's
    [PhaseOracle(f)] converts a Python predicate into a Boolean expression
    which is handed to RevKit. Here, oracles accept either a [Bexpr.t] built
    with the combinators below or a concrete syntax string parsed by
    {!parse}. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

(* Combinators — deliberately tiny so example code reads like the paper's
   Python predicates. *)

let tru = Const true
let fls = Const false
let var i = if i < 0 then invalid_arg "Bexpr.var: negative index" else Var i
let ( ~! ) a = Not a
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ^^^ ) a b = Xor (a, b)

(** [eval e x] evaluates [e] on the assignment encoded in [x]
    (variable [i] = bit [i]). *)
let rec eval e x =
  match e with
  | Const b -> b
  | Var i -> Bitops.bit x i
  | Not a -> not (eval a x)
  | And (a, b) -> eval a x && eval b x
  | Or (a, b) -> eval a x || eval b x
  | Xor (a, b) -> eval a x <> eval b x

(** [max_var e] is one plus the largest variable index in [e] ([0] if
    variable-free) — a usable default arity. *)
let rec max_var = function
  | Const _ -> 0
  | Var i -> i + 1
  | Not a -> max_var a
  | And (a, b) | Or (a, b) | Xor (a, b) -> max (max_var a) (max_var b)

(** [to_truth_table ?n e] tabulates [e] over [n] variables (default
    {!max_var}). *)
let to_truth_table ?n e =
  let n = match n with Some n -> n | None -> max_var e in
  Truth_table.of_fun n (eval e)

let rec pp ppf = function
  | Const b -> Fmt.pf ppf "%d" (if b then 1 else 0)
  | Var i -> Fmt.pf ppf "x%d" (i + 1)
  | Not a -> Fmt.pf ppf "!%a" pp_atom a
  | And (a, b) -> Fmt.pf ppf "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Fmt.pf ppf "%a | %a" pp_atom a pp_atom b
  | Xor (a, b) -> Fmt.pf ppf "%a ^ %a" pp_atom a pp_atom b

and pp_atom ppf e =
  match e with
  | Const _ | Var _ | Not _ -> pp ppf e
  | _ -> Fmt.pf ppf "(%a)" pp e

let to_string e = Fmt.str "%a" pp e

(** Number of binary connectives — a rough size measure used by tests. *)
let rec num_ops = function
  | Const _ | Var _ -> 0
  | Not a -> num_ops a
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + num_ops a + num_ops b

exception Parse_error of string

(* Recursive-descent parser for the concrete syntax

     expr   ::= xor
     xor    ::= or  { '^' or }
     or     ::= and { '|' and }         (also accepts "or")
     and    ::= unary { '&' unary }     (also accepts "and", juxtaposition
                                         is NOT supported)
     unary  ::= '!' unary | 'not' unary | atom
     atom   ::= '(' expr ')' | '0' | '1' | ident

   Identifiers: single letters a..z map to variables 0..25 in alphabetical
   order; the forms x1, x2, ... map to variables 0, 1, ....

   Note the precedence makes '^' bind loosest, so "a & b ^ c & d" parses as
   (a & b) ^ (c & d) — matching the paper's predicates. *)

type token = TLpar | TRpar | TNot | TAnd | TOr | TXor | TConst of bool | TId of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' -> push TLpar; incr i
    | ')' -> push TRpar; incr i
    | '!' | '~' -> push TNot; incr i
    | '&' ->
        incr i;
        if !i < n && s.[!i] = '&' then incr i;
        push TAnd
    | '|' ->
        incr i;
        if !i < n && s.[!i] = '|' then incr i;
        push TOr
    | '^' -> push TXor; incr i
    | '0' -> push (TConst false); incr i
    | '1' -> push (TConst true); incr i
    | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
        let start = !i in
        while
          !i < n
          &&
          let c = s.[!i] in
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
        do
          incr i
        done;
        let id = String.lowercase_ascii (String.sub s start (!i - start)) in
        (match id with
        | "and" -> push TAnd
        | "or" -> push TOr
        | "xor" -> push TXor
        | "not" -> push TNot
        | "true" -> push (TConst true)
        | "false" -> push (TConst false)
        | _ -> push (TId id))
    | c -> raise (Parse_error (Printf.sprintf "unexpected character %c" c)));
  done;
  List.rev !toks

let var_of_ident id =
  let len = String.length id in
  if len = 1 && id.[0] >= 'a' && id.[0] <= 'z' then Var (Char.code id.[0] - Char.code 'a')
  else if len >= 2 && id.[0] = 'x' then
    match int_of_string_opt (String.sub id 1 (len - 1)) with
    | Some k when k >= 1 -> Var (k - 1)
    | _ -> raise (Parse_error (Printf.sprintf "bad identifier %s" id))
  else raise (Parse_error (Printf.sprintf "bad identifier %s" id))

(** [parse s] parses the concrete syntax above.
    Raises {!Parse_error} on malformed input. *)
let parse s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let expect t msg =
    match peek () with
    | Some t' when t' = t -> advance ()
    | _ -> raise (Parse_error msg)
  in
  let rec p_xor () =
    let a = ref (p_or ()) in
    let rec loop () =
      match peek () with
      | Some TXor ->
          advance ();
          a := Xor (!a, p_or ());
          loop ()
      | _ -> ()
    in
    loop ();
    !a
  and p_or () =
    let a = ref (p_and ()) in
    let rec loop () =
      match peek () with
      | Some TOr ->
          advance ();
          a := Or (!a, p_and ());
          loop ()
      | _ -> ()
    in
    loop ();
    !a
  and p_and () =
    let a = ref (p_unary ()) in
    let rec loop () =
      match peek () with
      | Some TAnd ->
          advance ();
          a := And (!a, p_unary ());
          loop ()
      | _ -> ()
    in
    loop ();
    !a
  and p_unary () =
    match peek () with
    | Some TNot ->
        advance ();
        Not (p_unary ())
    | _ -> p_atom ()
  and p_atom () =
    match peek () with
    | Some TLpar ->
        advance ();
        let e = p_xor () in
        expect TRpar "expected ')'";
        e
    | Some (TConst b) ->
        advance ();
        Const b
    | Some (TId id) ->
        advance ();
        var_of_ident id
    | _ -> raise (Parse_error "expected atom")
  in
  let e = p_xor () in
  if !toks <> [] then raise (Parse_error "trailing tokens");
  e

(** [random st ~vars ~depth] draws a random expression for property tests. *)
let rec random st ~vars ~depth =
  if depth = 0 || (depth > 0 && Random.State.int st 6 = 0) then
    if Random.State.int st 8 = 0 then Const (Random.State.bool st)
    else Var (Random.State.int st vars)
  else
    let sub () = random st ~vars ~depth:(depth - 1) in
    match Random.State.int st 4 with
    | 0 -> Not (sub ())
    | 1 -> And (sub (), sub ())
    | 2 -> Or (sub (), sub ())
    | _ -> Xor (sub (), sub ())
