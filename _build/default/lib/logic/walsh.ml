(** Walsh–Hadamard spectra of Boolean functions.

    The Walsh transform is the analytical backbone of the hidden-shift
    algorithm: a function [f : B^n -> B] is {e bent} iff its spectrum is
    perfectly flat, and the {e dual} bent function is read off the signs of
    the spectrum. *)

(** [transform tt] is the Walsh spectrum
    [W(w) = Σ_x (−1)^(f(x) ⊕ ⟨w,x⟩)], computed with the fast (in-place
    butterfly) Walsh–Hadamard transform in [O(n·2^n)]. *)
let transform tt =
  let n = Truth_table.num_vars tt in
  let sz = 1 lsl n in
  let a = Array.init sz (fun x -> if Truth_table.get tt x then -1 else 1) in
  let len = ref 1 in
  while !len < sz do
    let l = !len in
    let i = ref 0 in
    while !i < sz do
      for j = !i to !i + l - 1 do
        let u = a.(j) and v = a.(j + l) in
        a.(j) <- u + v;
        a.(j + l) <- u - v
      done;
      i := !i + (2 * l)
    done;
    len := 2 * l
  done;
  a

(** [is_bent tt] holds iff every spectral coefficient has absolute value
    [2^(n/2)]. Only possible for even [n]. *)
let is_bent tt =
  let n = Truth_table.num_vars tt in
  if n land 1 = 1 then false
  else
    let flat = 1 lsl (n / 2) in
    Array.for_all (fun w -> abs w = flat) (transform tt)

(** [dual tt] is the dual bent function [f~], defined by
    [W(w) = (−1)^(f~(w)) · 2^(n/2)]. Raises [Invalid_argument] if [tt] is
    not bent. *)
let dual tt =
  let n = Truth_table.num_vars tt in
  if not (is_bent tt) then invalid_arg "Walsh.dual: function is not bent";
  let flat = 1 lsl (n / 2) in
  let spectrum = transform tt in
  Truth_table.of_fun n (fun w -> spectrum.(w) = -flat)

(** [correlation f g] is the normalized correlation
    [2^(−n) Σ_x (−1)^(f(x) ⊕ g(x))] — [1.] iff equal, [−1.] iff
    complementary. Used by the classical hidden-shift baseline. *)
let correlation f g =
  let n = Truth_table.num_vars f in
  if n <> Truth_table.num_vars g then invalid_arg "Walsh.correlation";
  let sz = 1 lsl n in
  let acc = ref 0 in
  for x = 0 to sz - 1 do
    if Truth_table.get f x = Truth_table.get g x then incr acc else decr acc
  done;
  Float.of_int !acc /. Float.of_int sz
