lib/logic/bent.ml: Bitops Perm Truth_table
