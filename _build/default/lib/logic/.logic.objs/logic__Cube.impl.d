lib/logic/cube.ml: Bitops Fmt List Printf
