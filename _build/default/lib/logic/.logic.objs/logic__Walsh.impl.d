lib/logic/walsh.ml: Array Float Truth_table
