lib/logic/bdd.ml: Array Bexpr Bitops Float Hashtbl List Truth_table
