lib/logic/funcgen.ml: Array Bitops List Perm Truth_table
