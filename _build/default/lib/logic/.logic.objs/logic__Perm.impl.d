lib/logic/perm.ml: Array Bitops Fmt List Random Truth_table
