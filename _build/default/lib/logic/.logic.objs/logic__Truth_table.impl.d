lib/logic/truth_table.ml: Array Bitops Fmt Int64 Printf Random String
