lib/logic/npn.ml: Array Bitops Fun Hashtbl List Truth_table
