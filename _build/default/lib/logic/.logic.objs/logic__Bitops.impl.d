lib/logic/bitops.ml: Int64
