lib/logic/esop.ml: Array Bitops Cube Fmt Hashtbl List Truth_table
