lib/logic/bexpr.ml: Bitops Char Fmt List Printf Random String Truth_table
