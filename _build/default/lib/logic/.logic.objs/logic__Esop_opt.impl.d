lib/logic/esop_opt.ml: Array Bexpr Bitops Cube Esop Hashtbl List Truth_table
