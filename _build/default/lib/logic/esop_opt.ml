(** ESOP minimization.

    Two cooperating engines, following the classic two-level AND-XOR
    minimization literature the paper cites (pseudo-Kronecker expressions
    [59] and fast heuristic ESOP minimization [60]):

    - {!pkrm} computes an optimal {e pseudo-Kronecker} Reed–Muller
      expression by dynamic programming: at every node of the expansion
      tree, the best of the Shannon, positive-Davio and negative-Davio
      decompositions is chosen, with memoization on subfunctions.
    - {!exorcise} is an exorcism-style cube-pairing pass that repeatedly
      merges distance-1 cube pairs and cancels duplicated cubes.

    {!minimize} runs both and is the entry point used by ESOP-based
    synthesis and by phase oracles. *)

(* Merge two cubes at EXORLINK-distance 1 into a single equivalent cube. *)
let merge1 (a : Cube.t) (b : Cube.t) : Cube.t option =
  let presence = a.Cube.mask lxor b.Cube.mask in
  let poldiff = (a.Cube.bits lxor b.Cube.bits) land (a.Cube.mask land b.Cube.mask) in
  let diff = presence lor poldiff in
  if diff = 0 || Bitops.popcount diff <> 1 then None
  else if presence = 0 then
    (* x·c (+) !x·c  =  c *)
    Some (Cube.make ~mask:(a.Cube.mask land lnot diff) ~bits:(a.Cube.bits land lnot diff))
  else
    (* l·c (+) c  =  !l·c ; [wide] is whichever cube contains the literal. *)
    let wide = if a.Cube.mask land presence <> 0 then a else b in
    Some (Cube.make ~mask:wide.Cube.mask ~bits:(wide.Cube.bits lxor presence))

(** [exorcise e] greedily merges distance-1 pairs and removes duplicate
    pairs until a fixpoint. The result is functionally equivalent to [e]
    and never larger. *)
let exorcise (e : Esop.t) : Esop.t =
  let changed = ref true in
  let cur = ref (Esop.dedup e) in
  while !changed do
    changed := false;
    let arr = Array.of_list !cur in
    let alive = Array.make (Array.length arr) true in
    let n = Array.length arr in
    (try
       for i = 0 to n - 1 do
         if alive.(i) then
           for j = i + 1 to n - 1 do
             if alive.(i) && alive.(j) then
               match merge1 arr.(i) arr.(j) with
               | Some c ->
                   arr.(i) <- c;
                   alive.(j) <- false;
                   changed := true
               | None -> ()
           done
       done
     with Exit -> ());
    let out = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then out := arr.(i) :: !out
    done;
    cur := Esop.dedup !out
  done;
  !cur

(* ------------------------------------------------------------------ *)
(* Pseudo-Kronecker Reed-Muller by dynamic programming.                *)
(* ------------------------------------------------------------------ *)

(* Above this arity the memo table of subfunctions gets too large; callers
   fall back to PPRM + exorcism. *)
let pkrm_max_vars = 12

type memo = (string, Esop.t) Hashtbl.t

let rec pkrm_rec (memo : memo) (tt : Truth_table.t) : Esop.t =
  let n = Truth_table.num_vars tt in
  if Truth_table.is_const tt false then []
  else if n = 0 then [ Cube.tautology ]
  else
    let key = Truth_table.to_string tt in
    match Hashtbl.find_opt memo key with
    | Some e -> e
    | None ->
        let v = n - 1 in
        let f0 = Truth_table.cofactor tt v false in
        let f1 = Truth_table.cofactor tt v true in
        let f2 = Truth_table.xor f0 f1 in
        let e0 = pkrm_rec memo f0 in
        let e1 = pkrm_rec memo f1 in
        let e2 = pkrm_rec memo f2 in
        let with_lit pos = List.map (fun c -> Cube.lift c v pos) in
        (* Shannon: !x·f0 + x·f1 ; pDavio: f0 + x·f2 ; nDavio: f1 + !x·f2 *)
        let shannon = with_lit false e0 @ with_lit true e1 in
        let pdavio = e0 @ with_lit true e2 in
        let ndavio = e1 @ with_lit false e2 in
        let cost e = (Esop.num_cubes e * 64) + Esop.num_literals e in
        let best =
          List.fold_left
            (fun acc e -> if cost e < cost acc then e else acc)
            shannon [ pdavio; ndavio ]
        in
        Hashtbl.add memo key best;
        best

(** [pkrm tt] is an optimal pseudo-Kronecker expression of [tt] (optimal
    within the PKRM class w.r.t. cube count, ties broken by literal count).
    Raises [Invalid_argument] above {!pkrm_max_vars} variables. *)
let pkrm tt =
  if Truth_table.num_vars tt > pkrm_max_vars then
    invalid_arg "Esop_opt.pkrm: too many variables (use minimize)";
  pkrm_rec (Hashtbl.create 512) tt

(** [minimize tt] is the library's default ESOP for [tt]: PKRM when the
    arity permits, otherwise PPRM; either way followed by {!exorcise}. *)
let minimize tt =
  let base =
    if Truth_table.num_vars tt <= pkrm_max_vars then pkrm tt else Esop.of_pprm tt
  in
  exorcise base

(** [minimize_expr ?n e] tabulates a {!Bexpr.t} and minimizes it. *)
let minimize_expr ?n e = minimize (Bexpr.to_truth_table ?n e)
