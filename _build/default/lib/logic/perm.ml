(** Permutations of the set [{0, …, 2^n − 1}].

    Reversible Boolean functions [B^n -> B^n] are exactly the permutations of
    the [2^n] input assignments; this module is the input format of
    reversible synthesis ({!Tbs}, {!Dbs}) and of the paper's
    [PermutationOracle]. *)

type t = { n : int; map : int array }

(** [of_array ?n map] validates [map] as a bijection on [{0, …, 2^n−1}].
    When [n] is omitted it is derived from the array length, which must be a
    power of two. Raises [Invalid_argument] when not a permutation. *)
let of_array ?n map =
  let len = Array.length map in
  let n = match n with Some n -> n | None -> Bitops.log2_ceil len in
  if 1 lsl n <> len then invalid_arg "Perm.of_array: length not a power of 2";
  let seen = Array.make len false in
  Array.iter
    (fun y ->
      if y < 0 || y >= len then invalid_arg "Perm.of_array: value out of range";
      if seen.(y) then invalid_arg "Perm.of_array: not injective";
      seen.(y) <- true)
    map;
  { n; map = Array.copy map }

(** [of_list l] is {!of_array} on a list, convenient for paper-style
    notation like [[0;2;3;5;7;1;4;6]]. *)
let of_list l = of_array (Array.of_list l)

(** [identity n] is the identity on [2^n] points. *)
let identity n = { n; map = Array.init (1 lsl n) (fun i -> i) }

(** [num_vars p] is [n]; [size p] is [2^n]. *)
let num_vars p = p.n

let size p = Array.length p.map

(** [apply p x] is [p(x)]. *)
let apply p x = p.map.(x)

(** [to_array p] is a fresh copy of the point map. *)
let to_array p = Array.copy p.map

(** [inverse p] is the permutation with [p⁻¹(p(x)) = x]. *)
let inverse p =
  let inv = Array.make (size p) 0 in
  Array.iteri (fun x y -> inv.(y) <- x) p.map;
  { n = p.n; map = inv }

(** [compose p q] applies [q] first: [(compose p q) x = p (q x)]. *)
let compose p q =
  if p.n <> q.n then invalid_arg "Perm.compose: arity mismatch";
  { n = p.n; map = Array.map (fun y -> p.map.(y)) q.map }

let equal p q = p.n = q.n && p.map = q.map

let is_identity p =
  let ok = ref true in
  Array.iteri (fun x y -> if x <> y then ok := false) p.map;
  !ok

(** [xor_shift n s] is the linear shift [x ↦ x lxor s] — the reversible
    implementation of the hidden-shift offset. *)
let xor_shift n s =
  if s < 0 || s >= 1 lsl n then invalid_arg "Perm.xor_shift";
  { n; map = Array.init (1 lsl n) (fun x -> x lxor s) }

(** [random st n] draws a uniform permutation (Fisher–Yates) from PRNG state
    [st]. *)
let random st n =
  let map = Array.init (1 lsl n) (fun i -> i) in
  for i = Array.length map - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = map.(i) in
    map.(i) <- map.(j);
    map.(j) <- t
  done;
  { n; map }

(** [cycles p] is the cycle decomposition, each cycle starting at its
    smallest element, fixpoints omitted, cycles sorted by first element. *)
let cycles p =
  let seen = Array.make (size p) false in
  let out = ref [] in
  for s = 0 to size p - 1 do
    if (not seen.(s)) && p.map.(s) <> s then begin
      let cyc = ref [ s ] in
      seen.(s) <- true;
      let x = ref p.map.(s) in
      while !x <> s do
        seen.(!x) <- true;
        cyc := !x :: !cyc;
        x := p.map.(!x)
      done;
      out := List.rev !cyc :: !out
    end
  done;
  List.rev !out

(** [parity p] is [0] for even permutations, [1] for odd. *)
let parity p =
  let transpositions =
    List.fold_left (fun acc cyc -> acc + List.length cyc - 1) 0 (cycles p)
  in
  transpositions land 1

(** [output_bit p j] is the truth table of output bit [j] of the reversible
    function. *)
let output_bit p j = Truth_table.of_fun p.n (fun x -> Bitops.bit p.map.(x) j)

let pp ppf p =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ", ") int) p.map
