(** Bit-packed truth tables for single-output Boolean functions
    [f : B^n -> B].

    The table stores [2^n] output bits packed into 64-bit words; the output
    for input assignment [x] (encoded as in {!Bitops}) is bit [x]. Supports
    [0 <= n <= 24] comfortably (a 24-variable table is 2 MiB). *)

type t = { n : int; words : int64 array }

let max_vars = 24

let num_words n = ((1 lsl n) + 63) / 64

(* Mask selecting the valid bits of the last word. *)
let last_mask n =
  let bits = 1 lsl n in
  let rem = bits land 63 in
  if rem = 0 then -1L else Int64.sub (Int64.shift_left 1L rem) 1L

let check_n n =
  if n < 0 || n > max_vars then
    invalid_arg (Printf.sprintf "Truth_table: n = %d out of range [0,%d]" n max_vars)

(** [create n] is the constant-false table on [n] variables. *)
let create n =
  check_n n;
  { n; words = Array.make (num_words n) 0L }

(** [num_vars t] is the number of input variables. *)
let num_vars t = t.n

(** [size t] is the number of input assignments, [2^n]. *)
let size t = 1 lsl t.n

(** [get t x] is the output bit for assignment [x]. *)
let get t x =
  Int64.logand (Int64.shift_right_logical t.words.(x lsr 6) (x land 63)) 1L
  = 1L

(** [set t x b] destructively sets the output for assignment [x] to [b]. *)
let set t x b =
  let w = x lsr 6 and i = x land 63 in
  if b then t.words.(w) <- Int64.logor t.words.(w) (Int64.shift_left 1L i)
  else t.words.(w) <- Int64.logand t.words.(w) (Int64.lognot (Int64.shift_left 1L i))

(** [of_fun n f] tabulates the predicate [f] over all [2^n] assignments. *)
let of_fun n f =
  let t = create n in
  for x = 0 to size t - 1 do
    if f x then set t x true
  done;
  t

(** [copy t] is an independent copy of [t]. *)
let copy t = { n = t.n; words = Array.copy t.words }

let map2 op a b =
  if a.n <> b.n then invalid_arg "Truth_table: arity mismatch";
  { n = a.n; words = Array.init (Array.length a.words) (fun i -> op a.words.(i) b.words.(i)) }

(** Bitwise combinations of equal-arity tables. *)
let xor a b = map2 Int64.logxor a b

let and_ a b = map2 Int64.logand a b
let or_ a b = map2 Int64.logor a b

(** [not_ t] is the complement of [t]. *)
let not_ t =
  let words = Array.map Int64.lognot t.words in
  let last = Array.length words - 1 in
  words.(last) <- Int64.logand words.(last) (last_mask t.n);
  { n = t.n; words }

(** [equal a b] holds when the tables have the same arity and outputs. *)
let equal a b = a.n = b.n && Array.for_all2 Int64.equal a.words b.words

(** [is_const t b] holds when [t] outputs [b] everywhere. *)
let is_const t b =
  let expect_last = if b then last_mask t.n else 0L in
  let expect = if b then -1L else 0L in
  let last = Array.length t.words - 1 in
  Array.for_all2 Int64.equal t.words
    (Array.init (Array.length t.words) (fun i -> if i = last then expect_last else expect))

(** [const n b] is the constant-[b] table on [n] variables. *)
let const n b =
  let t = create n in
  if b then (
    Array.fill t.words 0 (Array.length t.words) (-1L);
    let last = Array.length t.words - 1 in
    t.words.(last) <- last_mask n);
  t

(** [var n i] projects variable [i]: the table of [fun x -> bit i of x]. *)
let var n i =
  check_n n;
  if i < 0 || i >= n then invalid_arg "Truth_table.var: index out of range";
  of_fun n (fun x -> Bitops.bit x i)

(** [count_ones t] is the number of satisfying assignments of [t]. *)
let count_ones t =
  Array.fold_left (fun acc w -> acc + Bitops.int64_popcount w) 0 t.words

(** [cofactor t i b] is the (n-1)-variable cofactor of [t] with variable [i]
    fixed to [b]. Remaining variables keep their relative order. *)
let cofactor t i b =
  if i < 0 || i >= t.n then invalid_arg "Truth_table.cofactor";
  of_fun (t.n - 1) (fun y -> get t (Bitops.insert_bit y i b))

(** [depends_on t i] holds when the two cofactors w.r.t. variable [i]
    differ. *)
let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

(** [shift_inputs t s] is the table of [fun x -> t (x lxor s)] — the paper's
    shifted function [g(x) = f(x + s)]. *)
let shift_inputs t s = of_fun t.n (fun x -> get t (x lxor s))

(** [permute_inputs t pi] is the table of [fun x -> t (pi x)] where [pi] is
    given pointwise as an array over assignments. *)
let permute_inputs t pi = of_fun t.n (fun x -> get t pi.(x))

(** [extend t n'] reinterprets [t] over [n' >= n] variables; the new
    variables are don't-cares (the function ignores them). *)
let extend t n' =
  if n' < t.n then invalid_arg "Truth_table.extend: shrinking";
  of_fun n' (fun x -> get t (x land Bitops.mask t.n))

(** [to_string t] renders the output column, most-significant assignment
    first (the conventional truth-table string, e.g. "0110" for XOR2-as-n=2
    read from x=3 down to x=0). *)
let to_string t =
  String.init (size t) (fun i -> if get t (size t - 1 - i) then '1' else '0')

(** [of_string s] parses the {!to_string} format; the arity is [log2
    (String.length s)], which must be a power of two. *)
let of_string s =
  let len = String.length s in
  let n = Bitops.log2_ceil len in
  if 1 lsl n <> len then invalid_arg "Truth_table.of_string: length not a power of 2";
  of_fun n (fun x ->
      match s.[len - 1 - x] with
      | '1' -> true
      | '0' -> false
      | c -> invalid_arg (Printf.sprintf "Truth_table.of_string: bad char %c" c))

let pp ppf t = Fmt.pf ppf "%s" (to_string t)

(** [hash t] is a structural hash usable for memo tables. *)
let hash t =
  Array.fold_left
    (fun acc w -> (acc * 1000003) lxor Int64.to_int w lxor (Int64.to_int (Int64.shift_right_logical w 32)))
    t.n t.words

(** [random st n] draws a uniformly random [n]-variable table using the
    PRNG state [st]. *)
let random st n =
  let t = create n in
  for x = 0 to size t - 1 do
    if Random.State.bool st then set t x true
  done;
  t
