(** Exclusive sums-of-products (ESOP) covers.

    An ESOP is a list of {!Cube.t} whose values are combined by XOR. ESOPs
    are the workhorse representation for both ESOP-based reversible synthesis
    (each cube becomes one multiple-controlled Toffoli, Sec. V of the paper)
    and phase oracles (each cube becomes one multiple-controlled Z). *)

type t = Cube.t list

(** [eval e x] is the XOR over all cubes of [e] evaluated on [x]. *)
let eval (e : t) x =
  List.fold_left (fun acc c -> acc <> Cube.eval c x) false e

(** [to_truth_table n e] tabulates [e] over [n] variables. *)
let to_truth_table n e = Truth_table.of_fun n (eval e)

(** [of_minterms tt] is the trivial (canonical, exponential) ESOP listing one
    full cube per satisfying assignment. *)
let of_minterms tt : t =
  let n = Truth_table.num_vars tt in
  let acc = ref [] in
  for x = Truth_table.size tt - 1 downto 0 do
    if Truth_table.get tt x then
      acc := Cube.make ~mask:(Bitops.mask n) ~bits:x :: !acc
  done;
  !acc

(** [of_pprm tt] is the positive-polarity Reed–Muller (PPRM) expansion,
    computed with the fast Moebius (butterfly) transform. The PPRM is the
    unique ESOP using only positive literals. *)
let of_pprm tt : t =
  let n = Truth_table.num_vars tt in
  let sz = Truth_table.size tt in
  let a = Array.init sz (fun x -> if Truth_table.get tt x then 1 else 0) in
  (* Moebius transform: coefficient of monomial m is XOR of f over subsets. *)
  let step = ref 1 in
  while !step < sz do
    let s = !step in
    for x = 0 to sz - 1 do
      if x land s <> 0 then a.(x) <- a.(x) lxor a.(x lxor s)
    done;
    step := s * 2
  done;
  let acc = ref [] in
  for m = sz - 1 downto 0 do
    if a.(m) = 1 then acc := Cube.positive_of_mask m :: !acc
  done;
  ignore n;
  !acc

(** [num_cubes e] and [num_literals e] are the standard cost measures. *)
let num_cubes (e : t) = List.length e

let num_literals (e : t) = List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 e

(** [dedup e] removes cube pairs (a cube XORed with itself vanishes). *)
let dedup (e : t) : t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = (c.Cube.mask, c.Cube.bits) in
      match Hashtbl.find_opt tbl key with
      | Some k -> Hashtbl.replace tbl key (k + 1)
      | None -> Hashtbl.add tbl key 1)
    e;
  List.filter
    (fun c ->
      let key = (c.Cube.mask, c.Cube.bits) in
      match Hashtbl.find_opt tbl key with
      | Some k when k land 1 = 1 ->
          Hashtbl.replace tbl key 0;
          (* keep only the first odd representative *)
          true
      | _ -> false)
    e

let pp ppf (e : t) =
  match e with
  | [] -> Fmt.pf ppf "0"
  | _ -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any " + ") (Cube.pp ?n:None)) e

(** [equal_function n a b] checks functional equivalence over [n]
    variables. *)
let equal_function n (a : t) (b : t) =
  Truth_table.equal (to_truth_table n a) (to_truth_table n b)
