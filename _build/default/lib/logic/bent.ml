(** Bent Boolean functions and the Maiorana–McFarland family.

    Conventions: a function on [2n] variables takes the pair [(x, y)] packed
    into one assignment with [x] in the {e low} [n] bits and [y] in the
    {e high} [n] bits. The paper's circuits interleave the two registers on
    the qubit lines; {!interleave} converts between the two layouts. *)

(** [inner_product n] is the prototype bent function
    [f(x, y) = ⟨x, y⟩ = ⊕ᵢ xᵢyᵢ] on [2n] variables (split layout). It is
    its own dual. *)
let inner_product n =
  Truth_table.of_fun (2 * n) (fun z ->
      let x = z land Bitops.mask n and y = z lsr n in
      Bitops.parity (x land y) = 1)

(** [inner_product_adjacent n] pairs adjacent variables instead:
    [f = x₁x₂ ⊕ x₃x₄ ⊕ …] on [2n] variables — the layout of the paper's
    Fig. 4 predicate [(a and b) ^ (c and d)]. *)
let inner_product_adjacent n =
  Truth_table.of_fun (2 * n) (fun z ->
      let rec go i acc =
        if i >= n then acc
        else go (i + 1) (acc <> (Bitops.bit z (2 * i) && Bitops.bit z ((2 * i) + 1)))
      in
      go 0 false)

(** A Maiorana–McFarland instance [f(x, y) = ⟨x, π(y)⟩ ⊕ h(y)]:
    [pi] is a permutation of [B^n] and [h : B^n -> B]. *)
type mm = { n : int; pi : Perm.t; h : Truth_table.t }

(** [mm ?h pi] builds an instance; [h] defaults to the constant-zero
    function. *)
let mm ?h pi =
  let n = Perm.num_vars pi in
  let h = match h with Some h -> h | None -> Truth_table.create n in
  if Truth_table.num_vars h <> n then invalid_arg "Bent.mm: h arity mismatch";
  { n; pi; h }

(** [mm_function i] tabulates the instance over [2n] variables (split
    layout). Maiorana–McFarland functions are always bent. *)
let mm_function i =
  Truth_table.of_fun (2 * i.n) (fun z ->
      let x = z land Bitops.mask i.n and y = z lsr i.n in
      Bitops.parity (x land Perm.apply i.pi y) = 1 <> Truth_table.get i.h y)

(** [mm_dual i] is the dual instance: by the paper's Sec. VI-B,
    [f~(x, y) = ⟨π⁻¹(x), y⟩ ⊕ h(π⁻¹(x))]. The result is returned as a
    truth table (it is Maiorana–McFarland only up to swapping registers). *)
let mm_dual i =
  let inv = Perm.inverse i.pi in
  Truth_table.of_fun (2 * i.n) (fun z ->
      let x = z land Bitops.mask i.n and y = z lsr i.n in
      let px = Perm.apply inv x in
      Bitops.parity (px land y) = 1 <> Truth_table.get i.h px)

(** [shifted f s] is [g(x) = f(x ⊕ s)] — the hidden-shift instance. *)
let shifted f s = Truth_table.shift_inputs f s

(** [interleave n z_split] converts a split-layout assignment ([x] low,
    [y] high) into the interleaved qubit layout of Fig. 7 ([xᵢ] on line
    [2i], [yᵢ] on line [2i+1]). *)
let interleave n z =
  let x = z land Bitops.mask n and y = z lsr n in
  let out = ref 0 in
  for i = 0 to n - 1 do
    if Bitops.bit x i then out := !out lor (1 lsl (2 * i));
    if Bitops.bit y i then out := !out lor (1 lsl ((2 * i) + 1))
  done;
  !out

(** [deinterleave n z_inter] is the inverse of {!interleave}. *)
let deinterleave n z =
  let x = ref 0 and y = ref 0 in
  for i = 0 to n - 1 do
    if Bitops.bit z (2 * i) then x := !x lor (1 lsl i);
    if Bitops.bit z ((2 * i) + 1) then y := !y lor (1 lsl i)
  done;
  !x lor (!y lsl n)

(** [interleave_table n tt] re-expresses a split-layout function in the
    interleaved layout: [(interleave_table tt) z = tt (deinterleave z)]. *)
let interleave_table n tt =
  Truth_table.of_fun (2 * n) (fun z -> Truth_table.get tt (deinterleave n z))

(** [random_mm st n] draws a random Maiorana–McFarland instance (uniform
    [π], uniform [h]). *)
let random_mm st n =
  { n; pi = Perm.random st n; h = Truth_table.random st n }
