(** Benchmark function generators — the paper's [revgen] command.

    Provides the reversible and irreversible benchmark functions exercised
    by the RevKit flow of Eq. (5) and by the synthesis sweeps. *)

(** [hwb n] is the {e hidden weighted bit} reversible benchmark: the input
    word rotated left by its own population count,
    [hwb(x) = rotl(x, popcount x)]. It is a permutation of [B^n] and the
    classic hard case for reversible synthesis ([revgen hwb=4] in the
    paper's Eq. (5)). *)
let hwb n =
  let m = Bitops.mask n in
  Perm.of_array ~n
    (Array.init (1 lsl n) (fun x ->
         let r = Bitops.popcount x mod n in
         ((x lsl r) lor (x lsr (n - r))) land m))

(** [cycle_shift n] is the modular increment [x ↦ x + 1 mod 2^n] — a single
    [2^n]-cycle, used as an easy synthesis baseline. *)
let cycle_shift n =
  Perm.of_array ~n (Array.init (1 lsl n) (fun x -> (x + 1) land Bitops.mask n))

(** [bit_reverse n] reverses the bit order of the input word. *)
let bit_reverse n =
  Perm.of_array ~n
    (Array.init (1 lsl n) (fun x ->
         let r = ref 0 in
         for i = 0 to n - 1 do
           if Bitops.bit x i then r := !r lor (1 lsl (n - 1 - i))
         done;
         !r))

(** [gray_code n] maps [x ↦ x lxor (x lsr 1)] — linear, cheap, reversible. *)
let gray_code n =
  Perm.of_array ~n (Array.init (1 lsl n) Bitops.gray)

(** [majority n] is the single-output majority function (ties, possible only
    for even [n], resolve to false). *)
let majority n =
  Truth_table.of_fun n (fun x -> 2 * Bitops.popcount x > n)

(** [parity n] is the XOR of all inputs — linear, ESOP size [n]. *)
let parity n = Truth_table.of_fun n (fun x -> Bitops.parity x = 1)

(** [threshold n k] outputs 1 when at least [k] inputs are set. *)
let threshold n k = Truth_table.of_fun n (fun x -> Bitops.popcount x >= k)

(** [adder_outputs n] is the multi-output unsigned adder
    [(a, b) ↦ a + b] on two [n]-bit operands: [n+1] output truth tables on
    [2n] variables, least-significant sum bit first. Used by the
    hierarchical-synthesis experiments. *)
let adder_outputs n =
  let f j =
    Truth_table.of_fun (2 * n) (fun z ->
        let a = z land Bitops.mask n and b = z lsr n in
        Bitops.bit (a + b) j)
  in
  List.init (n + 1) f

(** [multiplier_outputs n] is the [2n]-output unsigned multiplier on two
    [n]-bit operands. *)
let multiplier_outputs n =
  let f j =
    Truth_table.of_fun (2 * n) (fun z ->
        let a = z land Bitops.mask n and b = z lsr n in
        Bitops.bit (a * b) j)
  in
  List.init (2 * n) f

(** [reciprocal_outputs n] approximates the paper's reciprocal benchmark
    (ref [55]): for an [n]-bit input [x ≥ 1] it outputs the [n]-bit value
    [⌊(2^n − 1) / x⌋] (and all-ones for [x = 0]). *)
let reciprocal_outputs n =
  let top = (1 lsl n) - 1 in
  let f j =
    Truth_table.of_fun n (fun x ->
        let v = if x = 0 then top else min top (top / x) in
        Bitops.bit v j)
  in
  List.init n f

(** [named_reversible] resolves a [revgen]-style name to a permutation
    generator, for the command shell. *)
let named_reversible = function
  | "hwb" -> Some hwb
  | "cycle" -> Some cycle_shift
  | "bitrev" -> Some bit_reverse
  | "gray" -> Some gray_code
  | _ -> None

(** [named_function] resolves single-output benchmark names. *)
let named_function = function
  | "maj" -> Some majority
  | "parity" -> Some parity
  | _ -> None
