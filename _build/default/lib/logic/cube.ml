(** Product cubes over Boolean variables.

    A cube is a conjunction of literals. [mask] has a bit set for every
    variable that appears; [bits] gives the polarity of each appearing
    variable ([1] = positive literal, [0] = negated). Bits of [bits] outside
    [mask] are kept at zero so that cubes compare structurally. *)

type t = { mask : int; bits : int }

let tautology = { mask = 0; bits = 0 }

(** [make ~mask ~bits] normalizes [bits] against [mask]. *)
let make ~mask ~bits = { mask; bits = bits land mask }

(** [of_literals lits] builds a cube from [(var, polarity)] pairs.
    Raises [Invalid_argument] on a contradictory pair (same variable with
    both polarities). *)
let of_literals lits =
  List.fold_left
    (fun c (v, pos) ->
      let b = 1 lsl v in
      if c.mask land b <> 0 && Bitops.bit c.bits v <> pos then
        invalid_arg "Cube.of_literals: contradictory literals";
      { mask = c.mask lor b; bits = (if pos then c.bits lor b else c.bits) })
    tautology lits

(** [literals n c] lists the [(var, polarity)] pairs of [c] among the first
    [n] variables, in increasing variable order. *)
let literals n c =
  List.map (fun v -> (v, Bitops.bit c.bits v)) (Bitops.bits_of c.mask n)

(** [num_literals c] is the number of variables in the cube. *)
let num_literals c = Bitops.popcount c.mask

(** [eval c x] is the value of the conjunction on assignment [x]. *)
let eval c x = x land c.mask = c.bits

let equal a b = a.mask = b.mask && a.bits = b.bits
let compare a b = compare (a.mask, a.bits) (b.mask, b.bits)

(** [distance a b] is the number of variable positions where the cubes
    differ — either in polarity or in presence. This is the classic
    EXORLINK distance used by ESOP minimizers. *)
let distance a b =
  let presence = a.mask lxor b.mask in
  let polarity = (a.bits lxor b.bits) land (a.mask land b.mask) in
  Bitops.popcount (presence lor polarity)

(** [positive_of_mask m] is the cube with positive literals exactly on the
    set bits of [m]. *)
let positive_of_mask m = { mask = m; bits = m }

(** [restrict c v b] is [Some c'] where [c'] is the cube with variable [v]
    removed when [c] is consistent with [v = b]; [None] when the literal on
    [v] contradicts [b]. Variable indices of [c'] are unchanged. *)
let restrict c v b =
  let m = 1 lsl v in
  if c.mask land m = 0 then Some c
  else if Bitops.bit c.bits v = b then
    Some { mask = c.mask land lnot m; bits = c.bits land lnot m }
  else None

(** [lift c v b] adds the literal [v = b] to [c]. Raises if present with the
    other polarity. *)
let lift c v b = of_literals ((v, b) :: literals 63 c)

let pp ?(n = 0) ppf c =
  let n = max n (Bitops.log2_ceil (c.mask + 1) + 1) in
  if c.mask = 0 then Fmt.pf ppf "1"
  else
    Fmt.pf ppf "%a"
      Fmt.(list ~sep:nop string)
      (List.map
         (fun (v, pos) -> Printf.sprintf "%sx%d" (if pos then "" else "!") (v + 1))
         (literals n c))
