lib/core/flow.ml: Array Fmt Logic Qc Rev
