lib/core/hidden_shift.ml: Array Fun Hashtbl List Logic Pq Qc Random
