lib/core/experiments.ml: Array Buffer Float Flow Hidden_shift List Logic Pq Printf Qc Random Rev Shell String Sys
