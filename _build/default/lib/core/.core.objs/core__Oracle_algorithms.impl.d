lib/core/oracle_algorithms.ml: Logic Pq Qc
