lib/core/shell.ml: Array Buffer Flow Fmt List Logic Option Printf Qc Random Rev String
