lib/core/grover.ml: Array Float Logic Pq Qc Random
