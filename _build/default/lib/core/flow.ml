(** The paper's headline contribution: the fully automatic compilation flow
    of Fig. 2 / Eq. (5).

    A classical combinational specification (permutation, truth tables, or
    Boolean expression) is taken through

      reversible synthesis → [revsimp] → Clifford+T mapping → T-par

    and handed to a target (state-vector simulation, noisy backend, QASM,
    Q# source, ASCII drawing). Every stage is a library call; this module
    wires them together and collects the statistics the RevKit shell prints
    along the way. *)

module Perm = Logic.Perm
module Truth_table = Logic.Truth_table

(** Reversible-synthesis method selection (the [tbs] / [dbs] / [esop] /
    hierarchical commands). *)
type synth_method =
  | Tbs
  | Tbs_basic
  | Dbs
  | Cycle (* cycle-based synthesis, ref [48] *)
  | Exact (* provably minimal MCT cascade; <= 3 variables *)
  | Esop (* irreversible specs only: Bennett-embedded ESOP synthesis *)
  | Hier of int option (* hierarchical with optional output batch size *)
  | Bdd_hier (* irreversible specs: BDD-based hierarchical synthesis [45] *)
  | Lut of int (* irreversible specs: LUT-based hierarchical synthesis [65] *)

type options = {
  synth : synth_method;
  simplify_rev : bool; (* run [revsimp] on the MCT cascade *)
  rccx_ladder : bool; (* use relative-phase Toffolis when lowering *)
  tpar : bool; (* run the T-par phase folding *)
  peephole : bool; (* final adjacent-gate cleanup *)
}

let default = { synth = Tbs; simplify_rev = true; rccx_ladder = true; tpar = true;
                peephole = true }

(** Per-stage statistics of one run of the flow. *)
type report = {
  rev_stats : Rev.Rcircuit.stats; (* after synthesis *)
  rev_stats_simplified : Rev.Rcircuit.stats; (* after revsimp *)
  ancillae : int; (* added by Clifford+T lowering *)
  resources_mapped : Qc.Resource.t; (* after Clifford+T mapping *)
  resources_final : Qc.Resource.t; (* after T-par + peephole *)
  tpar : Qc.Tpar.report option;
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>reversible:  %a@ simplified:  %a@ ancillae:    %d@ Clifford+T:  %a@ final:       %a%a@]"
    Rev.Rcircuit.pp_stats r.rev_stats Rev.Rcircuit.pp_stats r.rev_stats_simplified
    r.ancillae
    Fmt.(hbox Qc.Resource.pp) r.resources_mapped
    Fmt.(hbox Qc.Resource.pp) r.resources_final
    Fmt.(option (fun ppf (t : Qc.Tpar.report) ->
        Fmt.pf ppf "@ T-par:       T %d -> %d, T-depth %d -> %d" t.Qc.Tpar.t_before
          t.Qc.Tpar.t_after t.Qc.Tpar.t_depth_before t.Qc.Tpar.t_depth_after))
    r.tpar

let finish options rc =
  let rc' = if options.simplify_rev then Rev.Rsimp.simplify rc else rc in
  let copts = { Qc.Clifford_t.default_options with rccx_ladder = options.rccx_ladder } in
  let mapped, ancillae = Qc.Clifford_t.compile_rcircuit ~options:copts rc' in
  let tpar_report = ref None in
  let after_tpar =
    if options.tpar then begin
      let c, rep = Qc.Tpar.optimize_report mapped in
      tpar_report := Some rep;
      c
    end
    else mapped
  in
  let final = if options.peephole then Qc.Opt.simplify after_tpar else after_tpar in
  let report =
    { rev_stats = Rev.Rcircuit.stats rc;
      rev_stats_simplified = Rev.Rcircuit.stats rc';
      ancillae;
      resources_mapped = Qc.Resource.count mapped;
      resources_final = Qc.Resource.count final;
      tpar = !tpar_report }
  in
  (final, report)

(** [compile_perm ?options p] runs the full flow on a reversible
    specification. The result acts on [num_vars p] qubits plus the reported
    ancillae (all returned clean). *)
let compile_perm ?(options = default) p =
  let rc =
    match options.synth with
    | Tbs -> Rev.Tbs.synth p
    | Tbs_basic -> Rev.Tbs.basic p
    | Dbs -> Rev.Dbs.synth p
    | Cycle -> Rev.Cycle_synth.synth p
    | Exact -> Rev.Exact_synth.synth p
    | Esop | Hier _ | Bdd_hier | Lut _ ->
        invalid_arg "Flow.compile_perm: pick a reversible method (Tbs/Dbs/Cycle/Exact)"
  in
  finish options rc

(** [compile_function ?options fs] runs the flow on an irreversible
    multi-output specification (Bennett convention of Eq. (4): inputs on the
    low lines, outputs above, ancillae above that). *)
let compile_function ?(options = { default with synth = Esop }) fs =
  let rc =
    match options.synth with
    | Esop -> Rev.Esop_synth.synth fs
    | Hier batch -> fst (Rev.Hier_synth.synth_tables ?batch fs)
    | Bdd_hier -> fst (Rev.Bdd_synth.synth fs)
    | Lut k -> fst (Rev.Lut_synth.synth_tables ~k fs)
    | Tbs | Tbs_basic | Dbs | Cycle | Exact ->
        (* explicit embedding first (Eq. (2)), then reversible synthesis *)
        let e = Rev.Embed.embed fs in
        let synth =
          match options.synth with
          | Tbs -> Rev.Tbs.synth
          | Tbs_basic -> Rev.Tbs.basic
          | Cycle -> Rev.Cycle_synth.synth
          | Exact -> Rev.Exact_synth.synth
          | _ -> Rev.Dbs.synth
        in
        synth e.Rev.Embed.perm
  in
  finish options rc

(** [compile_expr ?options ?n e] compiles a Boolean expression (single
    output). *)
let compile_expr ?options ?n e =
  compile_function ?options [ Logic.Bexpr.to_truth_table ?n e ]

(** [verify_perm p circuit] checks that the compiled circuit implements
    [|x⟩|0…0⟩ ↦ |p(x)⟩|0…0⟩] exactly (full unitary extraction; small
    [n] only). Post-optimization verification is the Sec. IX obligation. *)
let verify_perm p circuit =
  let n = Perm.num_vars p in
  match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
  | None -> false
  | Some table ->
      let ok = ref true in
      for x = 0 to (1 lsl n) - 1 do
        if table.(x) <> Perm.apply p x then ok := false
      done;
      !ok
