(** Grover search on automatically compiled predicate oracles.

    The paper's Sec. I lists Grover's algorithm [5] as a key consumer of
    automatic oracle compilation — "the overhead due to implementing the
    defining predicate in a reversible way can be quite substantial" [6].
    This module closes that loop with our flow: the predicate goes through
    the ESOP phase-oracle compiler, the diffusion operator is a lowered
    multiple-controlled Z, and the whole circuit runs on the state-vector
    backend. *)

module Engine = Pq.Engine
module Oracles = Pq.Oracles
module Truth_table = Logic.Truth_table

(** [optimal_iterations ~n ~marked] maximizes the success probability
    [sin²((2k+1)θ)] with [θ = asin(sqrt(marked / 2^n))]: the exact
    [k = round(π/(4θ) − 1/2)] (0 when half or more of the space is
    marked — measuring the uniform superposition already succeeds). *)
let optimal_iterations ~n ~marked =
  if marked <= 0 then invalid_arg "Grover.optimal_iterations";
  let theta = asin (sqrt (Float.of_int marked /. Float.of_int (1 lsl n))) in
  max 0 (int_of_float (Float.round ((Float.pi /. (4. *. theta)) -. 0.5)))

(* The diffusion operator 2|+..+><+..+| - 1, up to global phase:
   H^n X^n (controlled-Z on all) X^n H^n. *)
let diffusion eng qs =
  Engine.all Engine.h eng qs;
  Engine.all Engine.x eng qs;
  (match Array.to_list qs with
  | [] -> invalid_arg "Grover.diffusion"
  | [ q ] -> Engine.z eng q
  | [ a; b ] -> Engine.cz eng a b
  | qlist -> Engine.emit eng (Qc.Gate.Mcz qlist));
  Engine.all Engine.x eng qs;
  Engine.all Engine.h eng qs

(** [circuit ?iterations tt] builds the Grover circuit for the predicate
    [tt]; [iterations] defaults to {!optimal_iterations} for the
    predicate's actual number of solutions. Raises [Invalid_argument] on an
    unsatisfiable predicate. *)
let circuit ?iterations tt =
  let n = Truth_table.num_vars tt in
  let marked = Truth_table.count_ones tt in
  if marked = 0 then invalid_arg "Grover.circuit: unsatisfiable predicate";
  let iterations =
    match iterations with Some k -> k | None -> optimal_iterations ~n ~marked
  in
  let eng = Engine.create () in
  let qs = Engine.allocate_qureg eng n in
  Engine.all Engine.h eng qs;
  for _ = 1 to iterations do
    Oracles.phase_oracle_tt eng tt qs;
    diffusion eng qs
  done;
  Engine.flush eng

(** [success_probability ?iterations tt] simulates the search and returns
    the total probability mass on the marked assignments. *)
let success_probability ?iterations tt =
  let c = circuit ?iterations tt in
  let sv = Qc.Statevector.run c in
  let p = ref 0. in
  for x = 0 to Truth_table.size tt - 1 do
    if Truth_table.get tt x then p := !p +. Qc.Statevector.prob sv x
  done;
  !p

(** [search ?iterations ?seed tt] runs the search and samples one
    measurement outcome. *)
let search ?iterations ?(seed = 0xACE) tt =
  let c = circuit ?iterations tt in
  let sv = Qc.Statevector.run c in
  Qc.Statevector.sample (Random.State.make [| seed |]) sv

(** [search_expr ?n e] is {!search} on a parsed/combinator predicate —
    the one-liner a paper reader would expect. *)
let search_expr ?n ?iterations ?seed e =
  search ?iterations ?seed (Logic.Bexpr.to_truth_table ?n e)
