open Qc

let test_adjoint () =
  Alcotest.(check bool) "S adjoint" true (Gate.adjoint (Gate.S 0) = Gate.Sdg 0);
  Alcotest.(check bool) "T adjoint" true (Gate.adjoint (Gate.T 1) = Gate.Tdg 1);
  Alcotest.(check bool) "H self-adjoint" true (Gate.adjoint (Gate.H 0) = Gate.H 0);
  Alcotest.(check bool) "Rz negates" true (Gate.adjoint (Gate.Rz (0.5, 0)) = Gate.Rz (-0.5, 0));
  Alcotest.(check bool) "CNOT self-adjoint" true
    (Gate.adjoint (Gate.Cnot (0, 1)) = Gate.Cnot (0, 1))

let test_qubits () =
  Alcotest.(check (list int)) "1q" [ 2 ] (Gate.qubits (Gate.H 2));
  Alcotest.(check (list int)) "cnot" [ 0; 1 ] (Gate.qubits (Gate.Cnot (0, 1)));
  Alcotest.(check (list int)) "mcx" [ 0; 2; 4 ] (Gate.qubits (Gate.Mcx ([ 0; 2 ], 4)))

let test_build_and_stats () =
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.T 1; Gate.Tdg 1; Gate.Cnot (0, 2) ] in
  Alcotest.(check int) "gates" 4 (Circuit.num_gates c);
  Alcotest.(check int) "t count" 2 (Circuit.t_count c);
  Alcotest.(check int) "qubits" 3 (Circuit.num_qubits c)

let test_out_of_range () =
  match Circuit.add (Circuit.empty 2) (Gate.H 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range accepted"

let test_dagger () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.S 0; Gate.Cnot (0, 1); Gate.T 1 ] in
  let d = Circuit.dagger c in
  Alcotest.(check bool) "dagger order and adjoints" true
    (Circuit.gates d = [ Gate.Tdg 1; Gate.Cnot (0, 1); Gate.Sdg 0; Gate.H 0 ]);
  (* U followed by U† is the identity *)
  Alcotest.(check bool) "identity unitary" true
    (Helpers.same_unitary (Circuit.append c d) (Circuit.empty 2))

let test_depth () =
  (* parallel gates share a layer *)
  let c = Circuit.of_gates 4 [ Gate.H 0; Gate.H 1; Gate.H 2; Gate.H 3 ] in
  Alcotest.(check int) "parallel depth 1" 1 (Circuit.depth c);
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.H 1 ] in
  Alcotest.(check int) "serial depth 3" 3 (Circuit.depth c)

let test_t_depth () =
  (* two parallel Ts share one T-layer; sequential Ts on one qubit do not *)
  let c = Circuit.of_gates 2 [ Gate.T 0; Gate.T 1 ] in
  Alcotest.(check int) "parallel T depth" 1 (Circuit.t_depth c);
  let c = Circuit.of_gates 2 [ Gate.T 0; Gate.H 0; Gate.T 0 ] in
  Alcotest.(check int) "serial T depth" 2 (Circuit.t_depth c);
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  Alcotest.(check int) "clifford only" 0 (Circuit.t_depth c)

let test_map_qubits () =
  let c = Circuit.of_gates 2 [ Gate.Cnot (0, 1) ] in
  let c' = Circuit.map_qubits ~n:4 (fun q -> q + 2) c in
  let s = Statevector.init 4 in
  Statevector.apply s (Gate.X 2);
  Statevector.run_on s c';
  Alcotest.(check bool) "remapped cnot" true (Statevector.is_basis_state s 0b1100)

(* ---- resource counter ---- *)

let test_resources () =
  let c =
    Circuit.of_gates 3
      [ Gate.H 0; Gate.X 1; Gate.Cnot (0, 1); Gate.T 2; Gate.Tdg 2; Gate.S 0; Gate.Z 1;
        Gate.Cz (0, 2) ]
  in
  let r = Resource.count c in
  Alcotest.(check int) "h" 1 r.Resource.h_count;
  Alcotest.(check int) "x" 1 r.Resource.x_count;
  Alcotest.(check int) "cnot" 1 r.Resource.cnot_count;
  Alcotest.(check int) "t" 2 r.Resource.t_count;
  Alcotest.(check int) "s" 1 r.Resource.s_count;
  Alcotest.(check int) "z" 1 r.Resource.z_count;
  Alcotest.(check int) "other (cz)" 1 r.Resource.other_count;
  Alcotest.(check int) "total" 8 r.Resource.total_gates

(* ---- drawing ---- *)

let test_draw_bell () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let text = Draw.to_string c in
  Alcotest.(check bool) "has two rows" true (List.length (String.split_on_char '\n' (String.trim text)) = 2);
  Alcotest.(check bool) "control marker" true (String.length text > 0 && String.contains text '*');
  Alcotest.(check bool) "target marker" true (String.contains text '@');
  Alcotest.(check bool) "H box" true (String.contains text 'H')

let test_draw_packs_parallel_gates () =
  (* 4 independent H gates share one column *)
  let c = Circuit.of_gates 4 (List.init 4 (fun q -> Gate.H q)) in
  let rows = String.split_on_char '\n' (String.trim (Draw.to_string c)) in
  List.iter
    (fun row ->
      Alcotest.(check bool) "one box per row" true
        (String.length row < 14 && Helpers.contains ~needle:"[H]" row))
    rows;
  (* but order-dependent gates stay in separate columns *)
  let c = Circuit.of_gates 2 [ Gate.Cnot (0, 1); Gate.H 0 ] in
  let rows = String.split_on_char '\n' (String.trim (Draw.to_string c)) in
  let top = List.hd rows in
  Alcotest.(check bool) "H after the CNOT" true
    (Helpers.contains ~needle:"-*-[H]" top)

let test_draw_vertical_wire () =
  (* a CNOT spanning lines 0 and 2 draws a connector on line 1 *)
  let c = Circuit.of_gates 3 [ Gate.Cnot (0, 2) ] in
  let rows = String.split_on_char '\n' (String.trim (Draw.to_string c)) in
  Alcotest.(check bool) "wire on middle row" true (String.contains (List.nth rows 1) '|')

let prop_dagger_involutive =
  Helpers.prop "dagger twice is the original" (Helpers.qcircuit_gen 3 15) (fun c ->
      Circuit.gates (Circuit.dagger (Circuit.dagger c)) = Circuit.gates c)

let prop_depth_bounds =
  Helpers.prop "t_depth <= depth <= gate count" (Helpers.qcircuit_gen 3 15) (fun c ->
      Circuit.t_depth c <= Circuit.depth c && Circuit.depth c <= Circuit.num_gates c)

let () =
  Alcotest.run "circuit"
    [ ( "gate",
        [ Alcotest.test_case "adjoint" `Quick test_adjoint;
          Alcotest.test_case "qubits" `Quick test_qubits ] );
      ( "circuit",
        [ Alcotest.test_case "build/stats" `Quick test_build_and_stats;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "dagger" `Quick test_dagger;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "t-depth" `Quick test_t_depth;
          Alcotest.test_case "map_qubits" `Quick test_map_qubits;
          prop_dagger_involutive;
          prop_depth_bounds ] );
      ( "resource",
        [ Alcotest.test_case "counts" `Quick test_resources ] );
      ( "draw",
        [ Alcotest.test_case "bell" `Quick test_draw_bell;
          Alcotest.test_case "parallel packing" `Quick test_draw_packs_parallel_gates;
          Alcotest.test_case "vertical wire" `Quick test_draw_vertical_wire ] ) ]
