open Rev
module Perm = Logic.Perm

let exhaustive_n2 () =
  (* all 24 permutations of B^2 synthesize correctly, both variants *)
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun r -> x :: r) (perms (List.filter (( <> ) x) l))) l
  in
  List.iter
    (fun pts ->
      let p = Perm.of_list pts in
      Alcotest.(check bool) "basic" true (Rsim.realizes (Tbs.basic p) p);
      Alcotest.(check bool) "bidirectional" true (Rsim.realizes (Tbs.bidirectional p) p))
    (perms [ 0; 1; 2; 3 ])

let test_identity_is_empty () =
  let c = Tbs.synth (Perm.identity 4) in
  Alcotest.(check int) "no gates for identity" 0 (Rcircuit.num_gates c)

let test_single_not () =
  (* x -> x ^ 1 should synthesize to one NOT gate *)
  let p = Perm.xor_shift 3 0b001 in
  let c = Tbs.synth p in
  Alcotest.(check bool) "realizes" true (Rsim.realizes c p);
  Alcotest.(check int) "one gate" 1 (Rcircuit.num_gates c)

let test_hwb4_matches_paper_flow () =
  (* the Eq. (5) benchmark *)
  let p = Logic.Funcgen.hwb 4 in
  let c = Tbs.synth p in
  Alcotest.(check bool) "realizes hwb4" true (Rsim.realizes c p);
  let s = Rcircuit.stats c in
  (* RevKit's TBS lands in the same ballpark (paper-era: ~17-23 gates) *)
  Alcotest.(check bool) "reasonable gate count" true
    (s.Rcircuit.gate_count >= 10 && s.Rcircuit.gate_count <= 30)

let test_bidirectional_never_worse_avg () =
  (* aggregate over a deterministic family: the bidirectional variant should
     win on average (its whole point) *)
  let st = Helpers.rng 5 in
  let total_basic = ref 0 and total_bidi = ref 0 in
  for _ = 1 to 30 do
    let p = Perm.random st 5 in
    total_basic := !total_basic + Rcircuit.num_gates (Tbs.basic p);
    total_bidi := !total_bidi + Rcircuit.num_gates (Tbs.bidirectional p)
  done;
  Alcotest.(check bool) "bidirectional <= basic on average" true (!total_bidi <= !total_basic)

let prop_basic_roundtrip n =
  Helpers.prop
    (Printf.sprintf "basic TBS round-trips on %d variables" n)
    ~count:(if n >= 6 then 20 else 80)
    (Helpers.perm_gen n)
    (fun p -> Rsim.realizes (Tbs.basic p) p)

let prop_bidi_roundtrip n =
  Helpers.prop
    (Printf.sprintf "bidirectional TBS round-trips on %d variables" n)
    ~count:(if n >= 6 then 20 else 80)
    (Helpers.perm_gen n)
    (fun p -> Rsim.realizes (Tbs.bidirectional p) p)

let prop_inverse_composition =
  Helpers.prop "circuit of p followed by circuit of p⁻¹ is the identity"
    (Helpers.perm_gen 4)
    (fun p ->
      let c = Rcircuit.append (Tbs.synth p) (Tbs.synth (Perm.inverse p)) in
      Perm.is_identity (Rsim.to_perm c))

let () =
  Alcotest.run "tbs"
    [ ( "tbs",
        [ Alcotest.test_case "exhaustive n=2" `Quick exhaustive_n2;
          Alcotest.test_case "identity" `Quick test_identity_is_empty;
          Alcotest.test_case "single NOT" `Quick test_single_not;
          Alcotest.test_case "hwb4 (Eq. 5)" `Quick test_hwb4_matches_paper_flow;
          Alcotest.test_case "bidirectional is better on average" `Quick
            test_bidirectional_never_worse_avg;
          prop_basic_roundtrip 3;
          prop_basic_roundtrip 5;
          prop_basic_roundtrip 6;
          prop_bidi_roundtrip 3;
          prop_bidi_roundtrip 5;
          prop_bidi_roundtrip 6;
          prop_inverse_composition ] ) ]
