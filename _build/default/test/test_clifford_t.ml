open Qc
module Mct = Rev.Mct
module Rcircuit = Rev.Rcircuit

let toffoli_ref = Circuit.of_gates 3 [ Gate.Ccx (0, 1, 2) ]

let test_toffoli_7t () =
  let c = Circuit.of_gates 3 (Clifford_t.toffoli_7t 0 1 2) in
  Alcotest.(check bool) "exact unitary" true (Helpers.same_unitary toffoli_ref c);
  Alcotest.(check int) "7 T gates" 7 (Circuit.t_count c)

let test_ccz_7t () =
  let c = Circuit.of_gates 3 (Clifford_t.ccz_7t 0 1 2) in
  let r = Circuit.of_gates 3 [ Gate.Ccz (0, 1, 2) ] in
  Alcotest.(check bool) "exact unitary" true (Helpers.same_unitary r c);
  (* pure {CNOT, T}: no Hadamards, so T-par can see through it *)
  Alcotest.(check bool) "no H" true
    (List.for_all (function Gate.H _ -> false | _ -> true) (Circuit.gates c))

let test_rccx_relative_phase () =
  let c = Circuit.of_gates 3 (Clifford_t.rccx 0 1 2) in
  Alcotest.(check int) "4 T gates" 4 (Circuit.t_count c);
  match Unitary.is_permutation (Unitary.of_circuit c) with
  | Some p ->
      for x = 0 to 7 do
        let expect = if x land 3 = 3 then x lxor 4 else x in
        Alcotest.(check int) "toffoli action up to phase" expect p.(x)
      done
  | None -> Alcotest.fail "rccx is not classical-up-to-phase"

let test_rccx_pair_cancels_phases () =
  (* rccx ; CNOT(t -> other) ; rccx† must be exactly unitary-equal to the
     Toffoli-conjugated version *)
  let with_rccx =
    Circuit.of_gates 4
      (Clifford_t.rccx 0 1 2 @ [ Gate.Cnot (2, 3) ] @ Clifford_t.rccx_dag 0 1 2)
  in
  let with_toffoli =
    Circuit.of_gates 4 [ Gate.Ccx (0, 1, 2); Gate.Cnot (2, 3); Gate.Ccx (0, 1, 2) ]
  in
  Alcotest.(check bool) "phases cancel exactly" true
    (Helpers.same_unitary with_rccx with_toffoli)

let check_mcx k rccx_ladder =
  let n = k + 1 in
  let c = Circuit.of_gates n [ Gate.Mcx (List.init k Fun.id, k) ] in
  let options = { Clifford_t.default_options with rccx_ladder } in
  let lowered, anc = Clifford_t.compile ~options c in
  Alcotest.(check int) "ancilla count" (k - 2) anc;
  match Unitary.is_permutation (Unitary.of_circuit lowered) with
  | Some p ->
      (* the contract covers clean ancillae only (they start and end |0>) *)
      for x = 0 to (1 lsl n) - 1 do
        let all = (1 lsl k) - 1 in
        let expect = if x land all = all then x lxor (1 lsl k) else x in
        Alcotest.(check int) "mcx semantics with clean ancillae" expect p.(x)
      done
  | None -> Alcotest.fail "lowered mcx not classical"

let test_mcx_lowering () =
  List.iter (fun k -> check_mcx k true) [ 3; 4; 5 ];
  check_mcx 3 false;
  check_mcx 4 false

let test_rccx_ladder_saves_t () =
  let c = Circuit.of_gates 5 [ Gate.Mcx ([ 0; 1; 2; 3 ], 4) ] in
  let with_rccx, _ = Clifford_t.compile c in
  let without, _ =
    Clifford_t.compile ~options:{ Clifford_t.default_options with rccx_ladder = false } c
  in
  Alcotest.(check bool) "Maslov's trick saves T gates" true
    (Circuit.t_count with_rccx < Circuit.t_count without)

let test_mcz_lowering () =
  (* Mcz of 1, 2, 3, 4 qubits; compared on clean-ancilla columns *)
  List.iter
    (fun k ->
      let c = Circuit.of_gates k [ Gate.Mcz (List.init k Fun.id) ] in
      let lowered, _ = Clifford_t.compile c in
      let m = Circuit.num_qubits lowered in
      (* apply to the uniform superposition of the k data qubits (ancillae
         clean): one up-to-global-phase comparison checks all relative
         phases at once *)
      let prep = List.init k (fun q -> Gate.H q) in
      let a = Statevector.run (Circuit.of_gates m (prep @ Circuit.gates lowered)) in
      let b =
        Statevector.run (Circuit.of_gates m (prep @ [ Gate.Mcz (List.init k Fun.id) ]))
      in
      Alcotest.(check bool) (Printf.sprintf "mcz %d" k) true
        (Statevector.equal_up_to_phase a b))
    [ 1; 2; 3; 4 ]

let test_swap_cz_lowering () =
  let c = Circuit.of_gates 2 [ Gate.Swap (0, 1) ] in
  let lowered, _ = Clifford_t.compile c in
  Alcotest.(check bool) "swap" true (Helpers.same_unitary c lowered);
  let c = Circuit.of_gates 2 [ Gate.Cz (0, 1) ] in
  let lowered, _ = Clifford_t.compile c in
  Alcotest.(check bool) "cz kept native" true (Circuit.gates lowered = [ Gate.Cz (0, 1) ])

let test_of_rcircuit_negative_controls () =
  let rc =
    Rcircuit.of_gates 3 [ Mct.of_controls [ (0, false); (1, true) ] 2; Mct.not_ 0 ]
  in
  let qc = Clifford_t.of_rcircuit rc in
  (* semantics match the reversible simulation on every basis state *)
  match Unitary.is_permutation (Unitary.of_circuit qc) with
  | Some p ->
      for x = 0 to 7 do
        Alcotest.(check int) "matches Rsim" (Rev.Rsim.run rc x) p.(x)
      done
  | None -> Alcotest.fail "of_rcircuit produced a non-classical circuit"

let test_output_basis () =
  (* compiled circuits contain only basis gates (+ CZ + Rz) *)
  let rc = Rev.Tbs.synth (Logic.Funcgen.hwb 4) in
  let qc, _ = Clifford_t.compile_rcircuit rc in
  List.iter
    (fun g ->
      let ok =
        match g with
        | Gate.X _ | Gate.Y _ | Gate.Z _ | Gate.H _ | Gate.S _ | Gate.Sdg _ | Gate.T _
        | Gate.Tdg _ | Gate.Cnot _ | Gate.Cz _ | Gate.Rz _ -> true
        | _ -> false
      in
      Alcotest.(check bool) "basis gate" true ok)
    (Circuit.gates qc)

let prop_compile_preserves_permutation =
  Helpers.prop "compiled reversible circuits realize the same permutation" ~count:40
    (Helpers.rcircuit_gen 4 6)
    (fun rc ->
      let p = Rev.Rsim.to_perm rc in
      let qc, _ = Clifford_t.compile_rcircuit rc in
      if Circuit.num_qubits qc > 9 then true
      else
        match Unitary.is_permutation (Unitary.of_circuit qc) with
        | Some table ->
            let ok = ref true in
            for x = 0 to 15 do
              if table.(x) land 15 <> Logic.Perm.apply p x then ok := false
            done;
            !ok
        | None -> false)

let prop_tbs_flow_preserves =
  Helpers.prop "synthesize + compile preserves random permutations" ~count:25
    (Helpers.perm_gen 3)
    (fun p ->
      let qc, _ = Clifford_t.compile_rcircuit (Rev.Tbs.synth p) in
      match Unitary.is_permutation (Unitary.of_circuit qc) with
      | Some table ->
          let ok = ref true in
          for x = 0 to 7 do
            if table.(x) land 7 <> Logic.Perm.apply p x then ok := false
          done;
          !ok
      | None -> false)

let () =
  Alcotest.run "clifford_t"
    [ ( "decompositions",
        [ Alcotest.test_case "toffoli 7T" `Quick test_toffoli_7t;
          Alcotest.test_case "ccz 7T" `Quick test_ccz_7t;
          Alcotest.test_case "rccx relative phase" `Quick test_rccx_relative_phase;
          Alcotest.test_case "rccx pair exact" `Quick test_rccx_pair_cancels_phases ] );
      ( "lowering",
        [ Alcotest.test_case "mcx with ancillae" `Quick test_mcx_lowering;
          Alcotest.test_case "rccx ladder saves T" `Quick test_rccx_ladder_saves_t;
          Alcotest.test_case "mcz" `Quick test_mcz_lowering;
          Alcotest.test_case "swap and cz" `Quick test_swap_cz_lowering;
          Alcotest.test_case "negative controls" `Quick test_of_rcircuit_negative_controls;
          Alcotest.test_case "output basis" `Quick test_output_basis;
          prop_compile_preserves_permutation;
          prop_tbs_flow_preserves ] ) ]
