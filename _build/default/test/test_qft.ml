open Qc

let dft_matrix n =
  let sz = 1 lsl n in
  Array.init sz (fun r ->
      Array.init sz (fun c ->
          Complex.polar (1. /. sqrt (Float.of_int sz))
            (2. *. Float.pi *. Float.of_int (r * c) /. Float.of_int sz)))

let test_qft_matrix () =
  for n = 1 to 4 do
    let u = Unitary.of_circuit (Qft.qft n) in
    Alcotest.(check bool)
      (Printf.sprintf "qft %d = DFT up to phase" n)
      true
      (Unitary.equal_up_to_phase u (dft_matrix n))
  done

let test_qft_inverse () =
  for n = 1 to 4 do
    let c = Circuit.append (Qft.qft n) (Qft.qft_dag n) in
    let sv = Statevector.run c in
    Alcotest.(check bool) "qft then inverse is identity" true
      (Statevector.is_basis_state ~eps:1e-9 sv 0)
  done

let test_qft_of_basis_state_is_uniform () =
  let sv = Statevector.init 3 in
  Statevector.apply sv (Gate.X 1);
  Statevector.run_on sv (Qft.qft 3);
  for x = 0 to 7 do
    Alcotest.(check (float 1e-9)) "uniform magnitudes" 0.125 (Statevector.prob sv x)
  done

let test_controlled_phase () =
  (* the gadget equals diag(1,1,1,e^{iθ}) up to global phase *)
  let theta = 1.234 in
  let c = Circuit.of_gates 2 (Qft.controlled_phase theta 0 1) in
  let expect =
    [| [| Complex.one; Complex.zero; Complex.zero; Complex.zero |];
       [| Complex.zero; Complex.one; Complex.zero; Complex.zero |];
       [| Complex.zero; Complex.zero; Complex.one; Complex.zero |];
       [| Complex.zero; Complex.zero; Complex.zero; Complex.polar 1. theta |] |]
  in
  Alcotest.(check bool) "cp gadget" true
    (Unitary.equal_up_to_phase (Unitary.of_circuit c) expect)

let test_draper_add_const () =
  List.iter
    (fun (n, k) ->
      Alcotest.(check bool)
        (Printf.sprintf "x+%d mod 2^%d" k n)
        true
        (Qft.check_add_const (Qft.draper_add_const n k) n k))
    [ (2, 1); (3, 3); (4, 7); (4, 15); (3, 0) ]

let test_draper_adder () =
  let n = 3 in
  match Unitary.is_permutation ~eps:1e-6 (Unitary.of_circuit (Qft.draper_adder n)) with
  | Some p ->
      for a = 0 to 7 do
        for b = 0 to 7 do
          let x = a lor (b lsl n) in
          Alcotest.(check int) "a, b -> a, a+b" (a lor (((a + b) land 7) lsl n)) p.(x)
        done
      done
  | None -> Alcotest.fail "draper adder is not a permutation"

let test_draper_matches_cuccaro () =
  (* two completely different adder constructions compute the same
     function (on the shared registers) *)
  let n = 2 in
  let draper = Qft.draper_adder n in
  let cuccaro, lay = Rev.Arith.cuccaro_adder ~with_carry:false n in
  match Unitary.is_permutation ~eps:1e-6 (Unitary.of_circuit draper) with
  | None -> Alcotest.fail "not classical"
  | Some p ->
      for a = 0 to 3 do
        for b = 0 to 3 do
          let dx = a lor (b lsl n) in
          (* map into the cuccaro layout (carry line 0) *)
          let cin = ref 0 in
          Array.iteri (fun i l -> if Logic.Bitops.bit a i then cin := !cin lor (1 lsl l)) lay.Rev.Arith.a;
          Array.iteri (fun i l -> if Logic.Bitops.bit b i then cin := !cin lor (1 lsl l)) lay.Rev.Arith.b;
          let cout = Rev.Rsim.run cuccaro !cin in
          let cb = ref 0 in
          Array.iteri (fun i l -> if Logic.Bitops.bit cout l then cb := !cb lor (1 lsl i)) lay.Rev.Arith.b;
          Alcotest.(check int) "same sum" !cb (p.(dx) lsr n)
        done
      done

let test_tpar_folds_rz () =
  (* two consecutive constant adders fold their Rz layers *)
  let c =
    Circuit.append (Qft.phase_add_const 4 3) (Qft.phase_add_const 4 5)
  in
  let c' = Tpar.optimize c in
  Alcotest.(check bool) "rz count reduced" true
    (Circuit.num_gates c' < Circuit.num_gates c);
  Alcotest.(check bool) "still equivalent" true (Helpers.same_unitary_phase c c')

(* ---- phase estimation ---- *)

let test_qpe_exact_dyadic () =
  for j = 0 to 7 do
    let phi = Float.of_int j /. 8. in
    Alcotest.(check (float 1e-9)) (Printf.sprintf "phi = %d/8" j) phi
      (Qpe.estimate ~t:3 ~phi)
  done

let test_qpe_resolution () =
  List.iter
    (fun phi ->
      Alcotest.(check bool)
        (Printf.sprintf "error bound at phi=%.3f" phi)
        true
        (Qpe.error ~t:6 ~phi <= 1. /. 64.))
    [ 0.1; 0.333; 0.77; 0.912 ]

let test_qpe_more_bits_more_accuracy () =
  let phi = 0.3141 in
  Alcotest.(check bool) "t=7 beats t=3" true
    (Qpe.error ~t:7 ~phi <= Qpe.error ~t:3 ~phi)

let () =
  Alcotest.run "qft"
    [ ( "qft",
        [ Alcotest.test_case "matches the DFT matrix" `Quick test_qft_matrix;
          Alcotest.test_case "inverse" `Quick test_qft_inverse;
          Alcotest.test_case "uniform magnitudes" `Quick test_qft_of_basis_state_is_uniform;
          Alcotest.test_case "controlled phase gadget" `Quick test_controlled_phase ] );
      ( "draper",
        [ Alcotest.test_case "constant adder" `Quick test_draper_add_const;
          Alcotest.test_case "two-register adder" `Quick test_draper_adder;
          Alcotest.test_case "agrees with Cuccaro" `Quick test_draper_matches_cuccaro;
          Alcotest.test_case "T-par folds Rz layers" `Quick test_tpar_folds_rz ] );
      ( "qpe",
        [ Alcotest.test_case "exact dyadic phases" `Quick test_qpe_exact_dyadic;
          Alcotest.test_case "resolution bound" `Quick test_qpe_resolution;
          Alcotest.test_case "more bits, more accuracy" `Quick test_qpe_more_bits_more_accuracy ] ) ]
