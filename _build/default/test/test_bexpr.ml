open Logic

let ev e x = Bexpr.eval e x

let test_combinators () =
  let open Bexpr in
  let e = var 0 &&& var 1 ^^^ (var 2 ||| ~!(var 3)) in
  (* ^^^ binds per OCaml operator precedence: check a concrete point *)
  ignore e;
  let f = var 0 &&& var 1 in
  Alcotest.(check bool) "and true" true (ev f 0b11);
  Alcotest.(check bool) "and false" false (ev f 0b01);
  Alcotest.(check bool) "not" true (ev ~!(var 0) 0b10)

let test_parse_paper_predicate () =
  (* the paper's Fig. 4 predicate: (a and b) ^ (c and d) *)
  let e = Bexpr.parse "(a and b) ^ (c and d)" in
  let tt = Bexpr.to_truth_table ~n:4 e in
  Helpers.check_tt_eq "matches inner_product_adjacent" (Bent.inner_product_adjacent 2) tt

let test_parse_precedence () =
  (* '^' binds loosest: a & b ^ c & d = (a&b) ^ (c&d) *)
  let a = Bexpr.parse "a & b ^ c & d" in
  let b = Bexpr.parse "(a & b) ^ (c & d)" in
  Helpers.check_tt_eq "precedence" (Bexpr.to_truth_table ~n:4 a) (Bexpr.to_truth_table ~n:4 b);
  (* '|' binds tighter than '^' *)
  let c = Bexpr.parse "a | b ^ c" in
  let d = Bexpr.parse "(a | b) ^ c" in
  Helpers.check_tt_eq "or precedence" (Bexpr.to_truth_table ~n:3 c) (Bexpr.to_truth_table ~n:3 d)

let test_parse_identifiers () =
  let e = Bexpr.parse "x1 ^ x3" in
  Alcotest.(check bool) "x1 is var 0" true (ev e 0b001);
  Alcotest.(check bool) "x3 is var 2" true (ev e 0b100);
  Alcotest.(check bool) "both cancel" false (ev e 0b101)

let test_parse_constants_and_not () =
  Alcotest.(check bool) "1" true (ev (Bexpr.parse "1") 0);
  Alcotest.(check bool) "0" false (ev (Bexpr.parse "0") 0);
  Alcotest.(check bool) "!!a" true (ev (Bexpr.parse "!!a") 1);
  Alcotest.(check bool) "not a" false (ev (Bexpr.parse "not a") 1);
  Alcotest.(check bool) "true keyword" true (ev (Bexpr.parse "true") 0)

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Bexpr.parse bad with
      | exception Bexpr.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" bad)
    [ ""; "a &"; "(a"; "a )"; "a ? b"; "x0"; "a b" ]

let test_max_var () =
  Alcotest.(check int) "max_var" 4 (Bexpr.max_var (Bexpr.parse "a ^ x4"));
  Alcotest.(check int) "max_var const" 0 (Bexpr.max_var (Bexpr.parse "1"))

let test_pp_roundtrip () =
  let e = Bexpr.parse "(a & !b) ^ (c | d)" in
  let printed = Bexpr.to_string e in
  let e2 = Bexpr.parse printed in
  Helpers.check_tt_eq "pp/parse roundtrip" (Bexpr.to_truth_table ~n:4 e)
    (Bexpr.to_truth_table ~n:4 e2)

let prop_pp_roundtrip =
  Helpers.prop "printing then parsing preserves the function"
    (Helpers.bexpr_gen ~vars:5 ())
    (fun e ->
      let e2 = Bexpr.parse (Bexpr.to_string e) in
      Truth_table.equal (Bexpr.to_truth_table ~n:5 e) (Bexpr.to_truth_table ~n:5 e2))

let prop_eval_matches_tt =
  Helpers.prop "eval agrees with the tabulated function"
    QCheck2.Gen.(pair (Helpers.bexpr_gen ~vars:4 ()) (int_bound 15))
    (fun (e, x) -> Bexpr.eval e x = Truth_table.get (Bexpr.to_truth_table ~n:4 e) x)

let () =
  Alcotest.run "bexpr"
    [ ( "bexpr",
        [ Alcotest.test_case "combinators" `Quick test_combinators;
          Alcotest.test_case "paper predicate" `Quick test_parse_paper_predicate;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "identifiers" `Quick test_parse_identifiers;
          Alcotest.test_case "constants and not" `Quick test_parse_constants_and_not;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "max_var" `Quick test_max_var;
          Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
          prop_pp_roundtrip;
          prop_eval_matches_tt ] ) ]
