open Logic

let test_cube_eval () =
  let c = Cube.of_literals [ (0, true); (2, false) ] in
  Alcotest.(check bool) "x0=1 x2=0" true (Cube.eval c 0b001);
  Alcotest.(check bool) "x0=1 x2=1" false (Cube.eval c 0b101);
  Alcotest.(check bool) "x0=0" false (Cube.eval c 0b000);
  Alcotest.(check bool) "tautology" true (Cube.eval Cube.tautology 0b111);
  Alcotest.(check int) "literal count" 2 (Cube.num_literals c)

let test_cube_contradiction () =
  match Cube.of_literals [ (1, true); (1, false) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected contradiction error"

let test_cube_distance () =
  let c1 = Cube.of_literals [ (0, true); (1, true) ] in
  let c2 = Cube.of_literals [ (0, true); (1, false) ] in
  let c3 = Cube.of_literals [ (0, true) ] in
  let c4 = Cube.of_literals [ (2, true); (3, false) ] in
  Alcotest.(check int) "polarity distance" 1 (Cube.distance c1 c2);
  Alcotest.(check int) "presence distance" 1 (Cube.distance c1 c3);
  Alcotest.(check int) "self distance" 0 (Cube.distance c1 c1);
  Alcotest.(check int) "far distance" 4 (Cube.distance c1 c4)

let test_cube_restrict () =
  let c = Cube.of_literals [ (0, true); (1, false) ] in
  (match Cube.restrict c 0 true with
  | Some c' -> Alcotest.(check int) "literal removed" 1 (Cube.num_literals c')
  | None -> Alcotest.fail "restrict should succeed");
  (match Cube.restrict c 0 false with
  | None -> ()
  | Some _ -> Alcotest.fail "restrict should contradict");
  match Cube.restrict c 3 true with
  | Some c' -> Alcotest.(check bool) "unconstrained var" true (Cube.equal c c')
  | None -> Alcotest.fail "unconstrained restrict"

let test_esop_eval () =
  (* x0 ^ x1x2 *)
  let e = [ Cube.of_literals [ (0, true) ]; Cube.of_literals [ (1, true); (2, true) ] ] in
  Alcotest.(check bool) "just x0" true (Esop.eval e 0b001);
  Alcotest.(check bool) "both terms cancel" false (Esop.eval e 0b111);
  Alcotest.(check bool) "product term" true (Esop.eval e 0b110)

let test_pprm_known () =
  (* PPRM of x0 XOR x1 is exactly the two monomials x0, x1 *)
  let f = Truth_table.of_fun 2 (fun x -> Bitops.parity x = 1) in
  let e = Esop.of_pprm f in
  Alcotest.(check int) "two cubes" 2 (Esop.num_cubes e);
  Alcotest.(check bool) "function preserved" true
    (Truth_table.equal f (Esop.to_truth_table 2 e));
  (* PPRM of AND is one monomial *)
  let g = Truth_table.of_fun 2 (fun x -> x = 3) in
  Alcotest.(check int) "and is one cube" 1 (Esop.num_cubes (Esop.of_pprm g))

let test_minterms () =
  let f = Truth_table.of_fun 3 (fun x -> x = 2 || x = 5) in
  let e = Esop.of_minterms f in
  Alcotest.(check int) "one cube per minterm" 2 (Esop.num_cubes e);
  Alcotest.(check bool) "function preserved" true (Truth_table.equal f (Esop.to_truth_table 3 e))

let test_dedup () =
  let c = Cube.of_literals [ (0, true) ] in
  let d = Cube.of_literals [ (1, true) ] in
  Alcotest.(check int) "pair cancels" 1 (Esop.num_cubes (Esop.dedup [ c; d; c ]));
  Alcotest.(check int) "triple leaves one" 2 (Esop.num_cubes (Esop.dedup [ c; d; c; c ]))

let test_pkrm_majority () =
  (* PKRM never exceeds PPRM in cube count *)
  let f = Funcgen.majority 5 in
  let pkrm = Esop_opt.pkrm f and pprm = Esop.of_pprm f in
  Alcotest.(check bool) "pkrm <= pprm" true (Esop.num_cubes pkrm <= Esop.num_cubes pprm);
  Alcotest.(check bool) "pkrm correct" true (Truth_table.equal f (Esop.to_truth_table 5 pkrm))

let test_exorcise_merges () =
  (* x0x1 + x0!x1 should merge to x0 *)
  let e = [ Cube.of_literals [ (0, true); (1, true) ]; Cube.of_literals [ (0, true); (1, false) ] ] in
  let e' = Esop_opt.exorcise e in
  Alcotest.(check int) "merged" 1 (Esop.num_cubes e');
  Alcotest.(check bool) "same function" true (Esop.equal_function 2 e e')

let test_minimize_constants () =
  Alcotest.(check int) "zero" 0 (Esop.num_cubes (Esop_opt.minimize (Truth_table.create 4)));
  Alcotest.(check int) "one" 1 (Esop.num_cubes (Esop_opt.minimize (Truth_table.const 4 true)))

let prop_pprm_correct =
  Helpers.prop "PPRM represents the function" (Helpers.tt_gen 6) (fun f ->
      Truth_table.equal f (Esop.to_truth_table 6 (Esop.of_pprm f)))

let prop_pkrm_correct =
  Helpers.prop "PKRM represents the function" (Helpers.tt_gen 6) (fun f ->
      Truth_table.equal f (Esop.to_truth_table 6 (Esop_opt.pkrm f)))

let prop_minimize_correct_and_smaller =
  Helpers.prop "minimize preserves function and never beats PPRM in size"
    (Helpers.tt_gen 6) (fun f ->
      let e = Esop_opt.minimize f in
      Truth_table.equal f (Esop.to_truth_table 6 e)
      && Esop.num_cubes e <= Esop.num_cubes (Esop.of_pprm f))

let prop_exorcise_never_grows =
  Helpers.prop "exorcise preserves function and never grows" (Helpers.tt_gen 5) (fun f ->
      let e = Esop.of_minterms f in
      let e' = Esop_opt.exorcise e in
      Esop.num_cubes e' <= Esop.num_cubes e && Esop.equal_function 5 e e')

let () =
  Alcotest.run "esop"
    [ ( "cube",
        [ Alcotest.test_case "eval" `Quick test_cube_eval;
          Alcotest.test_case "contradiction" `Quick test_cube_contradiction;
          Alcotest.test_case "distance" `Quick test_cube_distance;
          Alcotest.test_case "restrict" `Quick test_cube_restrict ] );
      ( "esop",
        [ Alcotest.test_case "eval" `Quick test_esop_eval;
          Alcotest.test_case "pprm known cases" `Quick test_pprm_known;
          Alcotest.test_case "minterms" `Quick test_minterms;
          Alcotest.test_case "dedup" `Quick test_dedup;
          prop_pprm_correct ] );
      ( "esop_opt",
        [ Alcotest.test_case "pkrm majority" `Quick test_pkrm_majority;
          Alcotest.test_case "exorcise merges" `Quick test_exorcise_merges;
          Alcotest.test_case "minimize constants" `Quick test_minimize_constants;
          prop_pkrm_correct;
          prop_minimize_correct_and_smaller;
          prop_exorcise_never_grows ] ) ]
