open Rev

let test_mct_constructors () =
  let g = Mct.cnot 0 2 in
  Alcotest.(check int) "cnot controls" 1 (Mct.num_controls g);
  Alcotest.(check int) "cnot fires" 0b101 (Mct.apply g 0b001);
  Alcotest.(check int) "cnot idle" 0b100 (Mct.apply g 0b100);
  let t = Mct.toffoli 0 1 2 in
  Alcotest.(check int) "toffoli fires" 0b111 (Mct.apply t 0b011);
  Alcotest.(check int) "toffoli idle" 0b001 (Mct.apply t 0b001);
  let n = Mct.not_ 1 in
  Alcotest.(check int) "not" 0b010 (Mct.apply n 0)

let test_negative_controls () =
  let g = Mct.of_controls [ (0, true); (1, false) ] 2 in
  Alcotest.(check int) "fires on x0=1,x1=0" 0b101 (Mct.apply g 0b001);
  Alcotest.(check int) "blocked by x1=1" 0b011 (Mct.apply g 0b011);
  Alcotest.(check (list (pair int bool))) "controls listing"
    [ (0, true); (1, false) ]
    (Mct.controls 3 g)

let test_mct_validation () =
  (match Mct.make ~target:1 ~pos:0b010 ~neg:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "target-as-control accepted");
  (match Mct.make ~target:2 ~pos:0b001 ~neg:0b001 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping polarities accepted");
  match Mct.of_controls [ (0, true); (0, false) ] 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate control accepted"

let test_self_inverse () =
  let st = Helpers.rng 3 in
  for _ = 1 to 50 do
    let g = QCheck2.Gen.generate1 ~rand:st (Helpers.mct_gen 5) in
    for x = 0 to 31 do
      Alcotest.(check int) "involution" x (Mct.apply g (Mct.apply g x))
    done
  done

let test_circuit_basics () =
  let c = Rcircuit.of_gates 3 [ Mct.not_ 0; Mct.cnot 0 1; Mct.toffoli 0 1 2 ] in
  Alcotest.(check int) "gates" 3 (Rcircuit.num_gates c);
  Alcotest.(check int) "lines" 3 (Rcircuit.num_lines c);
  Alcotest.(check int) "run" 0b111 (Rsim.run c 0);
  let r = Rcircuit.reverse c in
  Alcotest.(check int) "reverse undoes" 0 (Rsim.run r 0b111)

let test_append () =
  let a = Rcircuit.of_gates 2 [ Mct.not_ 0 ] in
  let b = Rcircuit.of_gates 2 [ Mct.cnot 0 1 ] in
  let c = Rcircuit.append a b in
  Alcotest.(check int) "appended order" 0b11 (Rsim.run c 0)

let test_map_lines () =
  let c = Rcircuit.of_gates 2 [ Mct.cnot 0 1 ] in
  let c' = Rcircuit.map_lines ~new_lines:4 (fun l -> l + 2) c in
  Alcotest.(check int) "remapped" 0b1100 (Rsim.run c' 0b0100)

let test_stats () =
  let c =
    Rcircuit.of_gates 5
      [ Mct.not_ 0; Mct.cnot 0 1; Mct.toffoli 0 1 2;
        Mct.of_controls [ (0, true); (1, true); (2, true) ] 3 ]
  in
  let s = Rcircuit.stats c in
  Alcotest.(check int) "gate count" 4 s.Rcircuit.gate_count;
  Alcotest.(check int) "not count" 1 s.Rcircuit.not_count;
  Alcotest.(check int) "cnot count" 1 s.Rcircuit.cnot_count;
  Alcotest.(check int) "toffoli count" 1 s.Rcircuit.toffoli_count;
  Alcotest.(check int) "larger count" 1 s.Rcircuit.larger_count;
  Alcotest.(check bool) "cost positive" true (s.Rcircuit.quantum_cost > 7)

let test_gate_exceeding_lines () =
  let c = Rcircuit.empty 2 in
  match Rcircuit.add c (Mct.cnot 0 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range gate accepted"

let prop_to_perm_bijective =
  Helpers.prop "every MCT cascade computes a permutation" (Helpers.rcircuit_gen 5 12)
    (fun c ->
      (* Perm.of_array validates bijectivity *)
      ignore (Rsim.to_perm c);
      true)

let prop_reverse_inverts =
  Helpers.prop "reverse computes the inverse permutation" (Helpers.rcircuit_gen 5 10)
    (fun c ->
      let p = Rsim.to_perm c and q = Rsim.to_perm (Rcircuit.reverse c) in
      Logic.Perm.is_identity (Logic.Perm.compose p q))

let prop_run_matches_perm =
  Helpers.prop "run agrees with to_perm"
    QCheck2.Gen.(pair (Helpers.rcircuit_gen 4 8) (int_bound 15))
    (fun (c, x) -> Rsim.run c x = Logic.Perm.apply (Rsim.to_perm c) x)

let () =
  Alcotest.run "rcircuit"
    [ ( "mct",
        [ Alcotest.test_case "constructors" `Quick test_mct_constructors;
          Alcotest.test_case "negative controls" `Quick test_negative_controls;
          Alcotest.test_case "validation" `Quick test_mct_validation;
          Alcotest.test_case "self inverse" `Quick test_self_inverse ] );
      ( "rcircuit",
        [ Alcotest.test_case "basics" `Quick test_circuit_basics;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "map_lines" `Quick test_map_lines;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "line bound" `Quick test_gate_exceeding_lines;
          prop_to_perm_bijective;
          prop_reverse_inverts;
          prop_run_matches_perm ] ) ]
