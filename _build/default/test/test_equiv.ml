open Qc

let bell = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ]
let bell_padded = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.T 1; Gate.Tdg 1 ]
let not_bell = Circuit.of_gates 2 [ Gate.H 0 ]

let test_exact () =
  Alcotest.(check bool) "equal" true (Equiv.exact bell bell_padded = Equiv.Equivalent);
  Alcotest.(check bool) "unequal" true (Equiv.exact bell not_bell = Equiv.Not_equivalent);
  Alcotest.(check bool) "width mismatch" true
    (Equiv.exact bell (Circuit.empty 3) = Equiv.Not_equivalent)

let test_up_to_phase () =
  (* Z X Z X = -I *)
  let minus_id = Circuit.of_gates 1 [ Gate.Z 0; Gate.X 0; Gate.Z 0; Gate.X 0 ] in
  Alcotest.(check bool) "exact says no" true
    (Equiv.exact minus_id (Circuit.empty 1) = Equiv.Not_equivalent);
  Alcotest.(check bool) "phase says yes" true
    (Equiv.up_to_phase minus_id (Circuit.empty 1) = Equiv.Equivalent)

let test_classical () =
  let a = Circuit.of_gates 3 [ Gate.Ccx (0, 1, 2) ] in
  let b = Circuit.of_gates 3 (Clifford_t.toffoli_7t 0 1 2) in
  Alcotest.(check bool) "toffoli vs 7T" true (Equiv.classical a b = Equiv.Equivalent);
  Alcotest.(check bool) "H is not classical" true
    (Equiv.classical a (Circuit.of_gates 3 [ Gate.H 0 ]) = Equiv.Not_equivalent)

let test_randomized_accepts () =
  match Equiv.randomized bell bell_padded with
  | Equiv.Probably_equivalent t -> Alcotest.(check bool) "trials recorded" true (t > 0)
  | _ -> Alcotest.fail "should pass"

let test_randomized_rejects () =
  Alcotest.(check bool) "rejects" true (Equiv.randomized bell not_bell = Equiv.Not_equivalent)

let test_randomized_catches_relative_phase () =
  (* identical magnitudes everywhere, wrong relative phase: T on one arm *)
  let tweaked = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.T 1 ] in
  Alcotest.(check bool) "relative phase caught" true
    (Equiv.randomized bell tweaked = Equiv.Not_equivalent)

let test_check_dispatch () =
  Alcotest.(check bool) "small goes exact" true (Equiv.check bell bell_padded = Equiv.Equivalent);
  (* wide circuits dispatch to the randomized check *)
  let wide_a = Circuit.of_gates 11 [ Gate.H 0; Gate.Cnot (0, 10) ] in
  let wide_b = Circuit.of_gates 11 [ Gate.H 0; Gate.Cnot (0, 10); Gate.Z 5; Gate.Z 5 ] in
  (match Equiv.check wide_a wide_b with
  | Equiv.Probably_equivalent _ -> ()
  | v -> Alcotest.failf "expected probabilistic verdict, got %s" (Fmt.str "%a" Equiv.pp_verdict v));
  let wide_c = Circuit.of_gates 11 [ Gate.H 0; Gate.Cnot (0, 10); Gate.T 3 ] in
  Alcotest.(check bool) "wide rejection" true (Equiv.check wide_a wide_c = Equiv.Not_equivalent)

let test_flow_optimizations_verified () =
  (* the Sec. IX obligation: every optimizer pass is equivalence-checked *)
  let p = Logic.Funcgen.hwb 4 in
  let rc = Rev.Tbs.synth p in
  let mapped, _ = Clifford_t.compile_rcircuit rc in
  let tpared = Tpar.optimize mapped in
  let peeped = Opt.simplify tpared in
  Alcotest.(check bool) "tpar verified" true (Equiv.up_to_phase mapped tpared = Equiv.Equivalent);
  Alcotest.(check bool) "peephole verified" true (Equiv.exact tpared peeped = Equiv.Equivalent)

let prop_optimizers_equivalent =
  Helpers.prop "Tpar and Opt always pass the randomized miter" ~count:50
    (Helpers.qcircuit_gen 4 18)
    (fun c ->
      let t = Tpar.optimize c and o = Opt.simplify c in
      (match Equiv.randomized c t with Equiv.Not_equivalent -> false | _ -> true)
      && match Equiv.randomized c o with Equiv.Not_equivalent -> false | _ -> true)

let prop_randomized_one_sided =
  Helpers.prop "randomized never rejects a padded-identity variant" ~count:40
    (Helpers.qcircuit_gen 3 12)
    (fun c ->
      let padded = Circuit.add_list c [ Gate.S 0; Gate.Sdg 0 ] in
      match Equiv.randomized c padded with Equiv.Not_equivalent -> false | _ -> true)

let () =
  Alcotest.run "equiv"
    [ ( "equiv",
        [ Alcotest.test_case "exact" `Quick test_exact;
          Alcotest.test_case "up to phase" `Quick test_up_to_phase;
          Alcotest.test_case "classical" `Quick test_classical;
          Alcotest.test_case "randomized accepts" `Quick test_randomized_accepts;
          Alcotest.test_case "randomized rejects" `Quick test_randomized_rejects;
          Alcotest.test_case "relative phase caught" `Quick test_randomized_catches_relative_phase;
          Alcotest.test_case "check dispatch" `Quick test_check_dispatch;
          Alcotest.test_case "flow optimizations verified" `Quick test_flow_optimizations_verified;
          prop_optimizers_equivalent;
          prop_randomized_one_sided ] ) ]
