module Oa = Core.Oracle_algorithms
module Truth_table = Logic.Truth_table

let test_bv_exhaustive_small () =
  for n = 1 to 4 do
    for a = 0 to (1 lsl n) - 1 do
      Alcotest.(check int) "recovers a (b=0)" a (Oa.bernstein_vazirani ~n ~a ~b:false);
      Alcotest.(check int) "recovers a (b=1)" a (Oa.bernstein_vazirani ~n ~a ~b:true)
    done
  done

let test_bv_oracle_is_z_layer () =
  (* the compiled affine oracle must be a layer of Z gates on the bits of a
     (possibly after exorcism) — confirming the ESOP compiler finds the
     linear structure *)
  let c = Oa.bv_circuit ~n:4 ~a:0b1010 ~b:false in
  let non_h = List.filter (function Qc.Gate.H _ -> false | _ -> true) (Qc.Circuit.gates c) in
  Alcotest.(check bool) "only Z gates" true
    (List.for_all (function Qc.Gate.Z _ -> true | _ -> false) non_h);
  Alcotest.(check int) "two Z gates" 2 (List.length non_h)

let test_bv_wider_register () =
  Alcotest.(check int) "8 qubits" 0b10110101
    (Oa.bernstein_vazirani ~n:8 ~a:0b10110101 ~b:false)

let test_dj_constant () =
  Alcotest.(check bool) "const 0" true (Oa.deutsch_jozsa (Truth_table.create 4) = Oa.Constant);
  Alcotest.(check bool) "const 1" true
    (Oa.deutsch_jozsa (Truth_table.const 4 true) = Oa.Constant)

let test_dj_balanced () =
  Alcotest.(check bool) "parity" true
    (Oa.deutsch_jozsa (Logic.Funcgen.parity 4) = Oa.Balanced);
  Alcotest.(check bool) "projection" true
    (Oa.deutsch_jozsa (Truth_table.var 4 2) = Oa.Balanced);
  (* a nonlinear balanced function: x1x2 ⊕ x3 (weight 8 of 16) *)
  let f = Logic.Bexpr.to_truth_table ~n:4 (Logic.Bexpr.parse "(a & b) ^ c") in
  Alcotest.(check bool) "nonlinear balanced" true (Oa.deutsch_jozsa f = Oa.Balanced)

let test_dj_promise_enforced () =
  (* majority of 4 has 5 ones: neither constant nor balanced *)
  match Oa.deutsch_jozsa (Logic.Funcgen.majority 4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "promise violation accepted"

let prop_bv_random =
  Helpers.prop "BV recovers random hidden strings" ~count:50
    QCheck2.Gen.(pair (int_bound 63) QCheck2.Gen.bool)
    (fun (a, b) -> Oa.bernstein_vazirani ~n:6 ~a ~b = a)

let prop_dj_balanced_random =
  Helpers.prop "DJ answers Balanced on random balanced functions" ~count:30
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      (* build a random balanced function by shuffling half ones *)
      let st = Helpers.rng seed in
      let perm = Logic.Perm.random st 4 in
      let f = Truth_table.of_fun 4 (fun x -> Logic.Perm.apply perm x < 8) in
      Oa.deutsch_jozsa f = Oa.Balanced)

let () =
  Alcotest.run "oracle_algorithms"
    [ ( "bernstein_vazirani",
        [ Alcotest.test_case "exhaustive small" `Quick test_bv_exhaustive_small;
          Alcotest.test_case "oracle is a Z layer" `Quick test_bv_oracle_is_z_layer;
          Alcotest.test_case "wide register" `Quick test_bv_wider_register;
          prop_bv_random ] );
      ( "deutsch_jozsa",
        [ Alcotest.test_case "constant" `Quick test_dj_constant;
          Alcotest.test_case "balanced" `Quick test_dj_balanced;
          Alcotest.test_case "promise enforced" `Quick test_dj_promise_enforced;
          prop_dj_balanced_random ] ) ]
