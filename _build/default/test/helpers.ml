(** Shared test utilities: deterministic PRNG streams, QCheck generators
    for the domain types, and comparison helpers. *)

let rng seed = Random.State.make [| seed; 0xBEEF |]

(* --- QCheck generators --- *)

(** Random permutation on [n] variables. *)
let perm_gen n =
  QCheck2.Gen.map
    (fun seed -> Logic.Perm.random (rng seed) n)
    QCheck2.Gen.(int_bound 1_000_000)

(** Random truth table on [n] variables. *)
let tt_gen n =
  QCheck2.Gen.map
    (fun seed -> Logic.Truth_table.random (rng seed) n)
    QCheck2.Gen.(int_bound 1_000_000)

(** Random Boolean expression on [vars] variables. *)
let bexpr_gen ?(vars = 4) ?(depth = 4) () =
  QCheck2.Gen.map
    (fun seed -> Logic.Bexpr.random (rng seed) ~vars ~depth)
    QCheck2.Gen.(int_bound 1_000_000)

(** Random MCT gate on [n] lines. *)
let mct_gen n =
  let open QCheck2.Gen in
  let* target = int_bound (n - 1) in
  let* pos = int_bound ((1 lsl n) - 1) in
  let* neg = int_bound ((1 lsl n) - 1) in
  let tmask = lnot (1 lsl target) in
  let pos = pos land tmask in
  let neg = neg land tmask land lnot pos in
  return (Rev.Mct.make ~target ~pos ~neg)

(** Random reversible circuit on [n] lines with [gates] gates. *)
let rcircuit_gen n gates =
  QCheck2.Gen.map (Rev.Rcircuit.of_gates n) (QCheck2.Gen.list_size (QCheck2.Gen.return gates) (mct_gen n))

(** Random Clifford+T(+X, CZ, CCZ) circuit on [n] qubits, [len] gates. *)
let qcircuit_gen ?(diagonals = true) n len =
  let open QCheck2.Gen in
  let gate =
    let* k = int_bound (if diagonals then 9 else 7) in
    let* q = int_bound (n - 1) in
    let* q2 = int_bound (n - 1) in
    let q2 = if q2 = q then (q + 1) mod n else q2 in
    match k with
    | 0 -> return (Qc.Gate.H q)
    | 1 -> return (Qc.Gate.T q)
    | 2 -> return (Qc.Gate.Tdg q)
    | 3 -> return (Qc.Gate.S q)
    | 4 -> return (Qc.Gate.Sdg q)
    | 5 -> return (Qc.Gate.X q)
    | 6 -> return (Qc.Gate.Z q)
    | 7 -> return (Qc.Gate.Cnot (q, q2))
    | 8 -> return (Qc.Gate.Cz (q, q2))
    | _ ->
        if n >= 3 then
          let a = q and b = q2 in
          let c = (max a b + 1) mod n in
          let c = if c = a || c = b then (c + 1) mod n else c in
          if c = a || c = b then return (Qc.Gate.Cz (a, b))
          else return (Qc.Gate.Ccz (a, b, c))
        else return (Qc.Gate.Cz (q, q2))
  in
  QCheck2.Gen.map (Qc.Circuit.of_gates n) (list_size (return len) gate)

(** [contains ~needle haystack] is plain substring search. *)
let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- assertions --- *)

let check_perm_eq msg expected actual =
  Alcotest.(check bool) msg true (Logic.Perm.equal expected actual)

let check_tt_eq msg expected actual =
  Alcotest.(check bool) msg true (Logic.Truth_table.equal expected actual)

(** Register a QCheck2 property as an alcotest case. *)
let prop name ?(count = 100) gen law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen law)

(** Unitary equivalence of two circuits (exact). *)
let same_unitary a b =
  Qc.Unitary.equal (Qc.Unitary.of_circuit a) (Qc.Unitary.of_circuit b)

(** Unitary equivalence up to global phase. *)
let same_unitary_phase a b =
  Qc.Unitary.equal_up_to_phase (Qc.Unitary.of_circuit a) (Qc.Unitary.of_circuit b)
