test/test_oracle_algorithms.mli:
