test/test_experiments.ml: Alcotest Core Helpers List Printf String
