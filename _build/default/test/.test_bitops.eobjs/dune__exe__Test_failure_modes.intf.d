test/test_failure_modes.mli:
