test/test_circuit.ml: Alcotest Circuit Draw Gate Helpers List Qc Resource Statevector String
