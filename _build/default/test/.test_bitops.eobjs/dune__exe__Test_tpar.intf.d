test/test_tpar.mli:
