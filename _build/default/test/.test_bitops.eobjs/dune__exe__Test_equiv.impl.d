test/test_equiv.ml: Alcotest Circuit Clifford_t Equiv Fmt Gate Helpers Logic Opt Qc Rev Tpar
