test/test_dbs.ml: Alcotest Dbs Helpers List Logic Mct Printf Rcircuit Rev Rsim Tbs
