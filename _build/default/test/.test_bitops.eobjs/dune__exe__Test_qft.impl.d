test/test_qft.ml: Alcotest Array Circuit Complex Float Gate Helpers List Logic Printf Qc Qft Qpe Rev Statevector Tpar Unitary
