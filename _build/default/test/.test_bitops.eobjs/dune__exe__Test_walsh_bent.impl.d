test/test_walsh_bent.ml: Alcotest Array Bent Bitops Funcgen Helpers Logic Perm QCheck2 Truth_table Walsh
