test/test_route.ml: Alcotest Array Circuit Core Gate Helpers List Logic Qc Route
