test/test_esop_synth.ml: Alcotest Embed Esop_synth Helpers List Logic QCheck2 Rcircuit Rev Rsim Tbs
