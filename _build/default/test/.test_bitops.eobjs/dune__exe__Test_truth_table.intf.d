test/test_truth_table.mli:
