test/test_grover.ml: Alcotest Core Helpers Logic Printf QCheck2 Random
