test/test_dbs.mli:
