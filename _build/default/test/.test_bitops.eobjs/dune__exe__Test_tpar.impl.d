test/test_tpar.ml: Alcotest Circuit Clifford_t Gate Helpers List Opt Qc Tpar
