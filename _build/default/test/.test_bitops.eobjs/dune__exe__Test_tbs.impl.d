test/test_tbs.ml: Alcotest Helpers List Logic Printf Rcircuit Rev Rsim Tbs
