test/test_xag.mli:
