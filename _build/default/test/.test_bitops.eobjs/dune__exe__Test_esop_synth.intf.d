test/test_esop_synth.mli:
