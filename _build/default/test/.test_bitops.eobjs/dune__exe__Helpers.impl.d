test/helpers.ml: Alcotest Logic QCheck2 QCheck_alcotest Qc Random Rev String
