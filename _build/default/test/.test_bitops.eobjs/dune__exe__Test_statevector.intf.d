test/test_statevector.mli:
