test/test_bitops.mli:
