test/test_resynth.mli:
