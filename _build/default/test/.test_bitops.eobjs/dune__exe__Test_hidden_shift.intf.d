test/test_hidden_shift.mli:
