test/test_noise.ml: Alcotest Array Circuit Core Float Gate Helpers List Noise Qc Random Statevector
