test/test_qasm.ml: Alcotest Circuit Clifford_t Float Gate Helpers List Logic Qasm Qc Qsharp_gen Rev String
