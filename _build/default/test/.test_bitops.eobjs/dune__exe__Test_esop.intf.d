test/test_esop.mli:
