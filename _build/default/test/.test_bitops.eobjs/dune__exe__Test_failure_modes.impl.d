test/test_failure_modes.ml: Alcotest Core List Logic Pq Printexc Qc Rev
