test/test_npn.mli:
