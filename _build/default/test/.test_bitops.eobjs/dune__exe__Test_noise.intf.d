test/test_noise.mli:
