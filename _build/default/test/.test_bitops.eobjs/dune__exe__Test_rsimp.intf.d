test/test_rsimp.mli:
