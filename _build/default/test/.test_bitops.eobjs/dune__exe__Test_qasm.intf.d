test/test_qasm.mli:
