test/test_resynth.ml: Alcotest Core Cycle_synth Exact_synth Helpers Logic Mct Rcircuit Resynth Rev Rsim Rsimp
