test/test_bexpr.ml: Alcotest Bent Bexpr Helpers List Logic QCheck2 Truth_table
