test/test_arith.ml: Alcotest Arith Array Core Helpers Logic Printf QCheck2 Rcircuit Rev Rsim Tbs
