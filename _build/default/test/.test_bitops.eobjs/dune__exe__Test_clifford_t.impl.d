test/test_clifford_t.ml: Alcotest Array Circuit Clifford_t Fun Gate Helpers List Logic Printf Qc Rev Statevector Unitary
