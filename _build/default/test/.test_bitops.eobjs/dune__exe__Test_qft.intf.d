test/test_qft.mli:
