test/test_bdd.ml: Alcotest Bdd Bexpr Bitops Float Funcgen Hashtbl Helpers List Logic QCheck2 Truth_table
