test/test_engine.ml: Alcotest Array Circuit Complex Gate Helpers List Logic Pq Qc Statevector Unitary
