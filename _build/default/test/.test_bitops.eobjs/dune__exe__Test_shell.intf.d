test/test_shell.mli:
