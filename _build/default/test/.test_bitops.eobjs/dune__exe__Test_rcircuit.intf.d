test/test_rcircuit.mli:
