test/test_arith.mli:
