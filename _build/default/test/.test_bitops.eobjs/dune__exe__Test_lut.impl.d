test/test_lut.ml: Alcotest Hashtbl Helpers Hier_synth List Logic Lut_synth Printf QCheck2 Rev Xag
