test/test_hidden_shift.ml: Alcotest Array Core Helpers Logic Pq QCheck2 Qc Random
