test/test_clifford_t.mli:
