test/test_rcircuit.ml: Alcotest Helpers Logic Mct QCheck2 Rcircuit Rev Rsim
