test/test_grover.mli:
