test/test_funcgen.ml: Alcotest Bitops Fun Funcgen Helpers List Logic Perm Truth_table
