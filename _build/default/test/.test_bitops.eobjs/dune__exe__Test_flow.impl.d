test/test_flow.ml: Alcotest Array Core Helpers List Logic Qc Rev
