test/test_xag.ml: Alcotest Helpers Hier_synth List Logic Pebble Printf QCheck2 Rcircuit Rev Xag
