test/test_stabilizer.mli:
