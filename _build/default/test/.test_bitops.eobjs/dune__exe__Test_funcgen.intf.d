test/test_funcgen.mli:
