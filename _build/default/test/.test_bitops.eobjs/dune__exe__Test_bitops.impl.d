test/test_bitops.ml: Alcotest Bitops Helpers Logic QCheck2
