test/test_bexpr.mli:
