test/test_oracle_algorithms.ml: Alcotest Core Helpers List Logic QCheck2 Qc
