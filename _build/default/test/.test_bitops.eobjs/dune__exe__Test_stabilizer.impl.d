test/test_stabilizer.ml: Alcotest Array Circuit Core Gate Helpers List Logic Pq Qc Random Stabilizer Statevector
