test/test_rsimp.ml: Alcotest Helpers Logic Mct Rcircuit Rev Rsim Rsimp Tbs
