test/test_perm.ml: Alcotest Bitops Fun Funcgen Helpers List Logic Perm QCheck2 Truth_table
