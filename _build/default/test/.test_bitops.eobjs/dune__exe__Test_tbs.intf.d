test/test_tbs.mli:
