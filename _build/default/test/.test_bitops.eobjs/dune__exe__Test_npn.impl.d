test/test_npn.ml: Alcotest Array Bent Funcgen Helpers List Logic Npn QCheck2 Random Truth_table Walsh
