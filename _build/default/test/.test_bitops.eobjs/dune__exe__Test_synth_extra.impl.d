test/test_synth_extra.ml: Alcotest Array Bdd_synth Core Cycle_synth Dbs Exact_synth Helpers List Logic Printf QCheck2 Qc Rcircuit Rev Rsim Tbs
