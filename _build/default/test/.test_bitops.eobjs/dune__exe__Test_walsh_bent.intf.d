test/test_walsh_bent.mli:
