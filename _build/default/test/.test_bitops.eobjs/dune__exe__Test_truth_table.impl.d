test/test_truth_table.ml: Alcotest Bitops Helpers Logic QCheck2 Truth_table
