test/test_perm.mli:
