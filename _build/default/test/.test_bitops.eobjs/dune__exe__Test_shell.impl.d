test/test_shell.ml: Alcotest Core Helpers List Printf String
