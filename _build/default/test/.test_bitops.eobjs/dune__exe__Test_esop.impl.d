test/test_esop.ml: Alcotest Bitops Cube Esop Esop_opt Funcgen Helpers Logic Truth_table
