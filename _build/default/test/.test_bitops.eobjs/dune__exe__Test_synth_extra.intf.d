test/test_synth_extra.mli:
