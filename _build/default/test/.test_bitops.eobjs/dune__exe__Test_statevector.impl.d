test/test_statevector.ml: Alcotest Array Circuit Complex Float Gate Helpers List QCheck2 Qc Random Statevector Unitary
