open Rev
module Truth_table = Logic.Truth_table
module Funcgen = Logic.Funcgen

let test_single_output_and () =
  (* f = x0 AND x1 should be a single Toffoli onto line 2 *)
  let f = Truth_table.of_fun 2 (fun x -> x = 3) in
  let c = Esop_synth.synth1 f in
  Alcotest.(check int) "lines" 3 (Rcircuit.num_lines c);
  Alcotest.(check int) "one gate" 1 (Rcircuit.num_gates c);
  Alcotest.(check bool) "bennett semantics" true
    (Rsim.realizes_function c ~inputs:[ 0; 1 ] ~outputs:[ 2 ] [ f ])

let test_constant_outputs () =
  let t = Truth_table.const 3 true and z = Truth_table.create 3 in
  let c = Esop_synth.synth [ t; z ] in
  Alcotest.(check bool) "constants" true
    (Rsim.realizes_function c ~inputs:[ 0; 1; 2 ] ~outputs:[ 3; 4 ] [ t; z ]);
  (* constant true = one uncontrolled NOT; constant false = nothing *)
  Alcotest.(check int) "one NOT gate" 1 (Rcircuit.num_gates c)

let test_multi_output_adder () =
  let fs = Funcgen.adder_outputs 2 in
  let c = Esop_synth.synth fs in
  Alcotest.(check int) "lines = 2n + (n+1)" 7 (Rcircuit.num_lines c);
  Alcotest.(check bool) "adder semantics" true
    (Rsim.realizes_function c ~inputs:[ 0; 1; 2; 3 ] ~outputs:[ 4; 5; 6 ] fs)

let test_xor_semantics () =
  (* Eq. (4): output line starts at y, ends at y XOR f(x) *)
  let f = Funcgen.parity 3 in
  let c = Esop_synth.synth1 f in
  for x = 0 to 7 do
    for y = 0 to 1 do
      let input = x lor (y lsl 3) in
      let out = Rsim.run c input in
      let fy = if Truth_table.get f x then 1 - y else y in
      Alcotest.(check int) "y xor f(x)" (x lor (fy lsl 3)) out
    done
  done

let test_synth_expr () =
  let c = Esop_synth.synth_expr ~n:4 (Logic.Bexpr.parse "(a and b) ^ (c and d)") in
  let f = Logic.Bent.inner_product_adjacent 2 in
  Alcotest.(check bool) "paper predicate" true
    (Rsim.realizes_function c ~inputs:[ 0; 1; 2; 3 ] ~outputs:[ 4 ] [ f ])

let test_arity_mismatch () =
  match Esop_synth.synth [ Funcgen.parity 3; Funcgen.parity 4 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

let prop_single_roundtrip =
  Helpers.prop "ESOP synthesis realizes random single-output functions"
    (Helpers.tt_gen 5)
    (fun f ->
      Rsim.realizes_function (Esop_synth.synth1 f) ~inputs:[ 0; 1; 2; 3; 4 ] ~outputs:[ 5 ]
        [ f ])

let prop_multi_roundtrip =
  Helpers.prop "ESOP synthesis realizes random 3-output functions" ~count:40
    QCheck2.Gen.(triple (Helpers.tt_gen 4) (Helpers.tt_gen 4) (Helpers.tt_gen 4))
    (fun (f, g, h) ->
      Rsim.realizes_function (Esop_synth.synth [ f; g; h ]) ~inputs:[ 0; 1; 2; 3 ]
        ~outputs:[ 4; 5; 6 ] [ f; g; h ])

(* ---- embedding ---- *)

let test_multiplicity () =
  Alcotest.(check int) "parity multiplicity" 8 (Embed.output_multiplicity [ Funcgen.parity 4 ]);
  Alcotest.(check int) "id multiplicity" 1
    (Embed.output_multiplicity
       (List.init 3 (fun j -> Logic.Perm.output_bit (Logic.Perm.identity 3) j)))

let test_min_lines_known () =
  (* single-output on n inputs with balanced outputs: mu = 2^(n-1),
     r = max(n, 1 + (n-1)) = n *)
  Alcotest.(check int) "balanced single output" 4 (Embed.min_lines [ Funcgen.parity 4 ]);
  (* constant output: mu = 2^n, r = 1 + n *)
  Alcotest.(check int) "constant needs n+1" 4
    (Embed.min_lines [ Truth_table.const 3 true ])

let test_embed_check () =
  let fs = [ Funcgen.majority 3; Funcgen.parity 3 ] in
  let e = Embed.embed fs in
  Alcotest.(check bool) "embedding contract" true (Embed.check e fs);
  Alcotest.(check int) "r is the bound" (Embed.min_lines fs) e.Embed.r

let test_embed_then_synthesize () =
  (* the Flow path: embed an irreversible function, then TBS the result *)
  let fs = [ Funcgen.majority 3 ] in
  let e = Embed.embed fs in
  let c = Tbs.synth e.Embed.perm in
  Alcotest.(check bool) "tbs realizes embedding" true (Rsim.realizes c e.Embed.perm);
  (* low output bit equals majority on inputs with zeroed constants *)
  for x = 0 to 7 do
    let out = Rsim.run c x in
    Alcotest.(check bool) "maj via circuit" (Truth_table.get (List.hd fs) x)
      (Logic.Bitops.bit out 0)
  done

let prop_embed_random =
  Helpers.prop "random multi-output embeddings satisfy the contract" ~count:40
    QCheck2.Gen.(pair (Helpers.tt_gen 4) (Helpers.tt_gen 4))
    (fun (f, g) ->
      let e = Embed.embed [ f; g ] in
      Embed.check e [ f; g ])

let () =
  Alcotest.run "esop_synth"
    [ ( "esop_synth",
        [ Alcotest.test_case "single AND" `Quick test_single_output_and;
          Alcotest.test_case "constants" `Quick test_constant_outputs;
          Alcotest.test_case "multi-output adder" `Quick test_multi_output_adder;
          Alcotest.test_case "XOR accumulate semantics" `Quick test_xor_semantics;
          Alcotest.test_case "expression front end" `Quick test_synth_expr;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          prop_single_roundtrip;
          prop_multi_roundtrip ] );
      ( "embed",
        [ Alcotest.test_case "output multiplicity" `Quick test_multiplicity;
          Alcotest.test_case "min_lines known values" `Quick test_min_lines_known;
          Alcotest.test_case "contract" `Quick test_embed_check;
          Alcotest.test_case "embed + TBS" `Quick test_embed_then_synthesize;
          prop_embed_random ] ) ]
