open Rev
module Perm = Logic.Perm

let test_adjacent_cancellation () =
  let g = Mct.toffoli 0 1 2 in
  let c = Rcircuit.of_gates 3 [ g; g ] in
  Alcotest.(check int) "pair cancels" 0 (Rcircuit.num_gates (Rsimp.simplify c))

let test_polarity_merge () =
  (* C(a, b)X ; C(a, !b)X == C(a)X *)
  let g1 = Mct.of_controls [ (0, true); (1, true) ] 2 in
  let g2 = Mct.of_controls [ (0, true); (1, false) ] 2 in
  let c = Rcircuit.of_gates 3 [ g1; g2 ] in
  let c' = Rsimp.simplify c in
  Alcotest.(check int) "merged to one" 1 (Rcircuit.num_gates c');
  Alcotest.(check bool) "same function" true
    (Perm.equal (Rsim.to_perm c) (Rsim.to_perm c'));
  match Rcircuit.gates c' with
  | [ g ] -> Alcotest.(check int) "single control" 1 (Mct.num_controls g)
  | _ -> Alcotest.fail "expected one gate"

let test_presence_merge () =
  (* C(a,b)X ; C(a)X == C(a,!b)X *)
  let g1 = Mct.of_controls [ (0, true); (1, true) ] 2 in
  let g2 = Mct.of_controls [ (0, true) ] 2 in
  let c = Rcircuit.of_gates 3 [ g1; g2 ] in
  let c' = Rsimp.simplify c in
  Alcotest.(check int) "merged" 1 (Rcircuit.num_gates c');
  Alcotest.(check bool) "same function" true (Perm.equal (Rsim.to_perm c) (Rsim.to_perm c'))

let test_cancellation_across_commuting () =
  (* X(0) ; CNOT(1->2) ; X(0): the NOTs meet across the commuting CNOT *)
  let c = Rcircuit.of_gates 3 [ Mct.not_ 0; Mct.cnot 1 2; Mct.not_ 0 ] in
  let c' = Rsimp.simplify c in
  Alcotest.(check int) "one gate left" 1 (Rcircuit.num_gates c');
  Alcotest.(check bool) "same function" true (Perm.equal (Rsim.to_perm c) (Rsim.to_perm c'))

let test_blocked_by_noncommuting () =
  (* X(0) ; CNOT(0->1) ; X(0) must NOT cancel blindly *)
  let c = Rcircuit.of_gates 2 [ Mct.not_ 0; Mct.cnot 0 1; Mct.not_ 0 ] in
  let c' = Rsimp.simplify c in
  Alcotest.(check bool) "function preserved" true (Perm.equal (Rsim.to_perm c) (Rsim.to_perm c'))

let test_eq5_shrinks_hwb4 () =
  (* the revsimp step of Eq. (5) should not grow the circuit *)
  let p = Logic.Funcgen.hwb 4 in
  let c = Tbs.synth p in
  let c' = Rsimp.simplify c in
  Alcotest.(check bool) "no growth" true (Rcircuit.num_gates c' <= Rcircuit.num_gates c);
  Alcotest.(check bool) "still realizes hwb4" true (Rsim.realizes c' p)

let prop_preserves_function =
  Helpers.prop "simplify preserves the permutation" ~count:150 (Helpers.rcircuit_gen 4 14)
    (fun c -> Perm.equal (Rsim.to_perm c) (Rsim.to_perm (Rsimp.simplify c)))

let prop_never_grows =
  Helpers.prop "simplify never grows the gate count" (Helpers.rcircuit_gen 4 12) (fun c ->
      Rcircuit.num_gates (Rsimp.simplify c) <= Rcircuit.num_gates c)

let prop_idempotent =
  Helpers.prop "simplify is idempotent" ~count:60 (Helpers.rcircuit_gen 4 10) (fun c ->
      let once = Rsimp.simplify c in
      Rcircuit.num_gates (Rsimp.simplify once) = Rcircuit.num_gates once)

let prop_doubled_circuit_cancels =
  Helpers.prop "circuit followed by its reverse simplifies to identity" ~count:40
    (Helpers.rcircuit_gen 4 6)
    (fun c ->
      let cc = Rcircuit.append c (Rcircuit.reverse c) in
      Perm.is_identity (Rsim.to_perm (Rsimp.simplify cc)))

let () =
  Alcotest.run "rsimp"
    [ ( "rsimp",
        [ Alcotest.test_case "adjacent cancellation" `Quick test_adjacent_cancellation;
          Alcotest.test_case "polarity merge" `Quick test_polarity_merge;
          Alcotest.test_case "presence merge" `Quick test_presence_merge;
          Alcotest.test_case "cancel across commuting" `Quick test_cancellation_across_commuting;
          Alcotest.test_case "non-commuting blocked" `Quick test_blocked_by_noncommuting;
          Alcotest.test_case "Eq. 5 revsimp on hwb4" `Quick test_eq5_shrinks_hwb4;
          prop_preserves_function;
          prop_never_grows;
          prop_idempotent;
          prop_doubled_circuit_cancels ] ) ]
