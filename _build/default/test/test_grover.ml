module Grover = Core.Grover
module Truth_table = Logic.Truth_table

let test_optimal_iterations () =
  Alcotest.(check int) "n=4 single" 3 (Grover.optimal_iterations ~n:4 ~marked:1);
  Alcotest.(check int) "n=2 single" 1 (Grover.optimal_iterations ~n:2 ~marked:1);
  Alcotest.(check bool) "more marked, fewer iterations" true
    (Grover.optimal_iterations ~n:6 ~marked:4 < Grover.optimal_iterations ~n:6 ~marked:1)

let test_single_marked_item () =
  (* the canonical case: 1 solution among 16 *)
  let tt = Truth_table.of_fun 4 (fun x -> x = 11) in
  let p = Grover.success_probability tt in
  Alcotest.(check bool) "amplified above 0.9" true (p > 0.9);
  Alcotest.(check int) "search finds it" 11 (Grover.search tt)

let test_compiled_predicate () =
  (* predicate through the parser, as a user would write it *)
  let found = Grover.search_expr ~n:4 (Logic.Bexpr.parse "a & b & !c & d") in
  Alcotest.(check int) "a & b & !c & d" 0b1011 found

let test_multiple_solutions () =
  let tt = Truth_table.of_fun 4 (fun x -> x land 3 = 3) in
  (* 4 solutions among 16 *)
  let p = Grover.success_probability tt in
  Alcotest.(check bool) "mass on solutions" true (p > 0.9);
  let found = Grover.search tt in
  Alcotest.(check bool) "found a solution" true (Truth_table.get tt found)

let test_zero_iterations_is_uniform () =
  let tt = Truth_table.of_fun 4 (fun x -> x = 5) in
  let p = Grover.success_probability ~iterations:0 tt in
  Alcotest.(check (float 1e-9)) "uniform baseline" (1. /. 16.) p

let test_one_iteration_amplifies () =
  let tt = Truth_table.of_fun 4 (fun x -> x = 5) in
  let p0 = Grover.success_probability ~iterations:0 tt in
  let p1 = Grover.success_probability ~iterations:1 tt in
  Alcotest.(check bool) "one iteration helps" true (p1 > (2. *. p0))

let test_overrotation () =
  (* going far past the optimum loses probability again — the Grover
     signature *)
  let tt = Truth_table.of_fun 3 (fun x -> x = 6) in
  let opt = Grover.optimal_iterations ~n:3 ~marked:1 in
  let p_opt = Grover.success_probability ~iterations:opt tt in
  let p_over = Grover.success_probability ~iterations:(2 * opt) tt in
  Alcotest.(check bool) "overrotation hurts" true (p_over < p_opt)

let test_unsatisfiable_rejected () =
  match Grover.circuit (Truth_table.create 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsatisfiable predicate accepted"

let test_all_marked_positions () =
  (* every position can be amplified: exhaustive over n = 3 *)
  for target = 0 to 7 do
    let tt = Truth_table.of_fun 3 (fun x -> x = target) in
    Alcotest.(check bool)
      (Printf.sprintf "target %d" target)
      true
      (Grover.success_probability tt > 0.8)
  done

let prop_search_returns_solutions =
  Helpers.prop "search returns a satisfying assignment" ~count:30
    (QCheck2.Gen.map
       (fun seed ->
         let st = Helpers.rng seed in
         (* random predicate with 1-3 solutions *)
         let tt = Truth_table.create 4 in
         let k = 1 + Random.State.int st 3 in
         for _ = 1 to k do
           Truth_table.set tt (Random.State.int st 16) true
         done;
         tt)
       QCheck2.Gen.(int_bound 100000))
    (fun tt -> Truth_table.get tt (Grover.search tt))

let () =
  Alcotest.run "grover"
    [ ( "grover",
        [ Alcotest.test_case "optimal iterations" `Quick test_optimal_iterations;
          Alcotest.test_case "single marked item" `Quick test_single_marked_item;
          Alcotest.test_case "compiled predicate" `Quick test_compiled_predicate;
          Alcotest.test_case "multiple solutions" `Quick test_multiple_solutions;
          Alcotest.test_case "zero iterations" `Quick test_zero_iterations_is_uniform;
          Alcotest.test_case "one iteration amplifies" `Quick test_one_iteration_amplifies;
          Alcotest.test_case "overrotation" `Quick test_overrotation;
          Alcotest.test_case "unsatisfiable rejected" `Quick test_unsatisfiable_rejected;
          Alcotest.test_case "all marked positions" `Quick test_all_marked_positions;
          prop_search_returns_solutions ] ) ]
