(* Integration smoke tests: every experiment generator must run and its
   output must contain the markers EXPERIMENTS.md quotes. These catch
   regressions in the glue that the unit tests cannot see. *)

let contains = Helpers.contains

let case name gen markers =
  Alcotest.test_case name `Slow (fun () ->
      let out = gen () in
      Alcotest.(check bool) (name ^ " non-empty") true (String.length out > 40);
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "%s mentions %S" name needle)
            true (contains ~needle out))
        markers)

let () =
  Alcotest.run "experiments"
    [ ( "experiments",
        [ case "e1" Core.Experiments.e1
            [ "measured shift: 1 (planted 1) -> OK"; "all 16 shifts recovered" ];
          case "e2"
            (fun () -> Core.Experiments.e2 ~shots:256 ~runs:2 ())
            [ "planted shift"; "success probability"; "T1 relaxation" ];
          case "e3" Core.Experiments.e3
            [ "measured shift 5 (planted 5)"; "transformation-based"; "decomposition-based";
              "Clifford+T" ];
          case "e4" Core.Experiments.e4
            [ "loaded hwb(4)"; "tbs:"; "revsimp:"; "cliffordt:"; "tpar:";
              "verify: quantum circuit OK" ];
          case "e5"
            (fun () -> Core.Experiments.e5 ~max_n:5 ())
            [ "hwb/tbs"; "hwb/dbs"; "hwb/cycle"; "hwb/exact"; "esop"; "bdd" ];
          case "e6" Core.Experiments.e6
            [ "fanout"; "pebbles"; "ripple-carry adder"; "batch" ];
          case "e7"
            (fun () -> Core.Experiments.e7 ~trials:2 ())
            [ "2/2"; "quantum oracle queries are always exactly 2" ];
          case "e8" Core.Experiments.e8
            [ "operation PermutationOracle"; "adjoint auto"; "verified to realize pi: true" ];
          case "e9"
            (fun () -> Core.Experiments.e9 ~max_n:12 ())
            [ "qubits"; "exponential state growth" ];
          case "e10"
            (fun () -> Core.Experiments.e10 ~max_2n:32 ())
            [ "stabilizer backend"; "true" ];
          case "e11" Core.Experiments.e11
            [ "full flow"; "no rccx ladder"; "no tpar"; "with tpar:    T = 8" ] ] ) ]
