(* Tests for the additional synthesis methods: cycle-based, exact (BFS),
   and BDD-based hierarchical synthesis. *)

open Rev
module Perm = Logic.Perm
module Funcgen = Logic.Funcgen

(* ---- cycle-based ---- *)

let test_cycle_transposition () =
  (* a single swap of two adjacent codes is one fully controlled gate *)
  let p = Perm.of_list [ 0; 1; 3; 2 ] in
  let c = Cycle_synth.synth p in
  Alcotest.(check bool) "realizes" true (Rsim.realizes c p);
  Alcotest.(check int) "single gate" 1 (Rcircuit.num_gates c)

let test_cycle_identity () =
  Alcotest.(check int) "identity empty" 0 (Rcircuit.num_gates (Cycle_synth.synth (Perm.identity 4)))

let test_cycle_long_cycle () =
  let p = Funcgen.cycle_shift 4 in
  let c = Cycle_synth.synth p in
  Alcotest.(check bool) "full 16-cycle" true (Rsim.realizes c p)

let test_cycle_exhaustive_n2 () =
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun r -> x :: r) (perms (List.filter (( <> ) x) l))) l
  in
  List.iter
    (fun pts ->
      let p = Perm.of_list pts in
      Alcotest.(check bool) "n=2" true (Rsim.realizes (Cycle_synth.synth p) p))
    (perms [ 0; 1; 2; 3 ])

let prop_cycle_roundtrip n =
  Helpers.prop
    (Printf.sprintf "cycle synthesis round-trips on %d variables" n)
    ~count:(if n >= 5 then 25 else 60)
    (Helpers.perm_gen n)
    (fun p -> Rsim.realizes (Cycle_synth.synth p) p)

(* ---- exact ---- *)

let test_exact_known_minima () =
  (* NOT is 1 gate; CNOT is 1 gate; SWAP needs 3 *)
  Alcotest.(check int) "not" 1 (Exact_synth.min_gates (Perm.xor_shift 2 1));
  let cnot = Perm.of_array ~n:2 [| 0; 3; 2; 1 |] in
  (* x1 ^= x0: 0->0 1->3 2->2 3->1 *)
  Alcotest.(check int) "cnot" 1 (Exact_synth.min_gates cnot);
  let swap = Perm.of_array ~n:2 [| 0; 2; 1; 3 |] in
  Alcotest.(check int) "swap needs 3" 3 (Exact_synth.min_gates swap)

let test_exact_identity () =
  Alcotest.(check int) "identity is 0 gates" 0 (Exact_synth.min_gates (Perm.identity 3));
  Alcotest.(check int) "empty circuit" 0 (Rcircuit.num_gates (Exact_synth.synth (Perm.identity 3)))

let test_exact_never_worse_than_heuristics () =
  let st = Helpers.rng 41 in
  for _ = 1 to 25 do
    let p = Perm.random st 3 in
    let exact = Exact_synth.min_gates p in
    Alcotest.(check bool) "<= tbs" true (exact <= Rcircuit.num_gates (Tbs.synth p));
    Alcotest.(check bool) "<= dbs" true (exact <= Rcircuit.num_gates (Dbs.synth p));
    Alcotest.(check bool) "<= cycle" true (exact <= Rcircuit.num_gates (Cycle_synth.synth p))
  done

let test_exact_rejects_large () =
  match Exact_synth.synth (Perm.identity 4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=4 accepted"

let prop_exact_roundtrip =
  Helpers.prop "exact synthesis realizes the permutation with min_gates gates"
    ~count:40 (Helpers.perm_gen 3)
    (fun p ->
      let c = Exact_synth.synth p in
      Rsim.realizes c p && Rcircuit.num_gates c = Exact_synth.min_gates p)

(* ---- BDD-based ---- *)

let test_bdd_single_outputs () =
  List.iter
    (fun (name, tt) ->
      let c, lay = Bdd_synth.synth [ tt ] in
      Alcotest.(check bool) name true (Bdd_synth.check (c, lay) [ tt ]))
    [ ("maj5", Funcgen.majority 5);
      ("parity6", Funcgen.parity 6);
      ("thresh5_2", Funcgen.threshold 5 2);
      ("const0", Logic.Truth_table.create 3);
      ("const1", Logic.Truth_table.const 3 true) ]

let test_bdd_multi_output_sharing () =
  (* shared BDD nodes are synthesized once: the adder's outputs share
     carry logic, so ancillae < sum of single-output ancillae *)
  let fs = Funcgen.adder_outputs 2 in
  let _, lay_shared = Bdd_synth.synth fs in
  let separate =
    List.fold_left (fun acc f -> acc + (snd (Bdd_synth.synth [ f ])).Bdd_synth.ancillae) 0 fs
  in
  Alcotest.(check bool) "sharing helps" true (lay_shared.Bdd_synth.ancillae < separate);
  let c, lay = Bdd_synth.synth fs in
  Alcotest.(check bool) "adder correct" true (Bdd_synth.check (c, lay) fs)

let test_bdd_parity_is_linear_size () =
  (* the parity ROBDD is linear: 2 nodes per level below the root (the
     function and its complement — we have no complement edges), 2n-1
     total. Linear, where the minterm/ESOP view is exponential. *)
  let _, lay = Bdd_synth.synth [ Funcgen.parity 8 ] in
  Alcotest.(check int) "2n-1 ancillae" 15 lay.Bdd_synth.ancillae

let prop_bdd_roundtrip =
  Helpers.prop "BDD synthesis realizes random functions" ~count:40 (Helpers.tt_gen 4)
    (fun f ->
      let c, lay = Bdd_synth.synth [ f ] in
      Bdd_synth.check (c, lay) [ f ])

let prop_bdd_two_outputs =
  Helpers.prop "BDD synthesis on 2-output functions" ~count:25
    QCheck2.Gen.(pair (Helpers.tt_gen 4) (Helpers.tt_gen 4))
    (fun (f, g) ->
      let c, lay = Bdd_synth.synth [ f; g ] in
      Bdd_synth.check (c, lay) [ f; g ])

(* ---- flow integration ---- *)

let test_flow_new_methods () =
  let p = Perm.random (Helpers.rng 77) 3 in
  List.iter
    (fun synth ->
      let circuit, _ = Core.Flow.compile_perm ~options:{ Core.Flow.default with synth } p in
      Alcotest.(check bool) "flow verifies" true (Core.Flow.verify_perm p circuit))
    [ Core.Flow.Cycle; Core.Flow.Exact ];
  let f = Funcgen.majority 3 in
  let circuit, _ =
    Core.Flow.compile_function ~options:{ Core.Flow.default with synth = Core.Flow.Bdd_hier }
      [ f ]
  in
  match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
  | Some table ->
      for x = 0 to 7 do
        Alcotest.(check bool) "bdd flow output" (Logic.Truth_table.get f x)
          (Logic.Bitops.bit table.(x) 3)
      done
  | None -> Alcotest.fail "not classical"

let () =
  Alcotest.run "synth_extra"
    [ ( "cycle",
        [ Alcotest.test_case "transposition" `Quick test_cycle_transposition;
          Alcotest.test_case "identity" `Quick test_cycle_identity;
          Alcotest.test_case "long cycle" `Quick test_cycle_long_cycle;
          Alcotest.test_case "exhaustive n=2" `Quick test_cycle_exhaustive_n2;
          prop_cycle_roundtrip 3;
          prop_cycle_roundtrip 5 ] );
      ( "exact",
        [ Alcotest.test_case "known minima" `Quick test_exact_known_minima;
          Alcotest.test_case "identity" `Quick test_exact_identity;
          Alcotest.test_case "never worse" `Quick test_exact_never_worse_than_heuristics;
          Alcotest.test_case "large rejected" `Quick test_exact_rejects_large;
          prop_exact_roundtrip ] );
      ( "bdd_synth",
        [ Alcotest.test_case "single outputs" `Quick test_bdd_single_outputs;
          Alcotest.test_case "multi-output sharing" `Quick test_bdd_multi_output_sharing;
          Alcotest.test_case "parity linear" `Quick test_bdd_parity_is_linear_size;
          prop_bdd_roundtrip;
          prop_bdd_two_outputs ] );
      ( "flow",
        [ Alcotest.test_case "new methods in the flow" `Quick test_flow_new_methods ] ) ]
