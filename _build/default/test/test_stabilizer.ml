open Qc

let test_initial_state () =
  let t = Stabilizer.create 3 in
  let out, det = Stabilizer.measure_all t in
  Alcotest.(check int) "measures 0" 0 out;
  Alcotest.(check bool) "deterministic" true det

let test_x_and_cnot () =
  let t = Stabilizer.create 3 in
  Stabilizer.apply t (Gate.X 0);
  Stabilizer.apply t (Gate.Cnot (0, 2));
  let out, det = Stabilizer.measure_all t in
  Alcotest.(check int) "|101>" 0b101 out;
  Alcotest.(check bool) "deterministic" true det

let test_hh_identity () =
  let t = Stabilizer.create 1 in
  Stabilizer.apply t (Gate.H 0);
  Stabilizer.apply t (Gate.H 0);
  let out, det = Stabilizer.measure_all t in
  Alcotest.(check (pair int bool)) "HH=I" (0, true) (out, det)

let test_s_gates () =
  (* HS²H = HZH = X *)
  let t = Stabilizer.create 1 in
  List.iter (Stabilizer.apply t) [ Gate.H 0; Gate.S 0; Gate.S 0; Gate.H 0 ];
  Alcotest.(check (pair int bool)) "HZH=X" (1, true) (Stabilizer.measure_all t);
  (* S S† = I on a superposition *)
  let t = Stabilizer.create 1 in
  List.iter (Stabilizer.apply t) [ Gate.H 0; Gate.S 0; Gate.Sdg 0; Gate.H 0 ];
  Alcotest.(check (pair int bool)) "S Sdg cancels" (0, true) (Stabilizer.measure_all t)

let test_y_gate () =
  (* Y|0> = i|1>: measurement gives 1 deterministically *)
  let t = Stabilizer.create 1 in
  Stabilizer.apply t (Gate.Y 0);
  Alcotest.(check (pair int bool)) "Y flips" (1, true) (Stabilizer.measure_all t)

let test_bell_correlations () =
  let st = Helpers.rng 12 in
  let zeros = ref 0 and threes = ref 0 in
  for _ = 1 to 500 do
    let t = Stabilizer.create 2 in
    Stabilizer.apply t (Gate.H 0);
    Stabilizer.apply t (Gate.Cnot (0, 1));
    let out, det = Stabilizer.measure_all ~st t in
    Alcotest.(check bool) "random branch" false det;
    (match out with
    | 0 -> incr zeros
    | 3 -> incr threes
    | _ -> Alcotest.failf "anticorrelated outcome %d" out);
  done;
  Alcotest.(check bool) "both branches seen" true (!zeros > 150 && !threes > 150)

let test_measurement_collapse () =
  (* measuring the same qubit twice gives the same answer *)
  let st = Helpers.rng 3 in
  for _ = 1 to 50 do
    let t = Stabilizer.create 2 in
    Stabilizer.apply t (Gate.H 0);
    Stabilizer.apply t (Gate.Cnot (0, 1));
    let b1, _ = Stabilizer.measure ~st t 0 in
    let b2, det2 = Stabilizer.measure ~st t 0 in
    Alcotest.(check bool) "collapsed" true (b1 = b2 && det2);
    (* and the partner is perfectly correlated *)
    let b3, det3 = Stabilizer.measure ~st t 1 in
    Alcotest.(check bool) "correlated partner" true (b3 = b1 && det3)
  done

let test_ghz () =
  let st = Helpers.rng 5 in
  for _ = 1 to 100 do
    let t = Stabilizer.create 5 in
    Stabilizer.apply t (Gate.H 0);
    for q = 1 to 4 do
      Stabilizer.apply t (Gate.Cnot (0, q))
    done;
    let out, _ = Stabilizer.measure_all ~st t in
    Alcotest.(check bool) "GHZ: all zeros or all ones" true (out = 0 || out = 31)
  done

let test_not_clifford_rejected () =
  let t = Stabilizer.create 1 in
  (match Stabilizer.apply t (Gate.T 0) with
  | exception Stabilizer.Not_clifford _ -> ()
  | _ -> Alcotest.fail "T accepted");
  Alcotest.(check bool) "detector" false
    (Stabilizer.is_clifford_circuit (Circuit.of_gates 1 [ Gate.T 0 ]));
  Alcotest.(check bool) "detector ok" true
    (Stabilizer.is_clifford_circuit (Circuit.of_gates 2 [ Gate.H 0; Gate.Cz (0, 1) ]))

let test_agreement_with_statevector () =
  (* deterministic-outcome circuits must agree with the dense simulator *)
  let st = Helpers.rng 17 in
  for _ = 1 to 100 do
    let n = 1 + Random.State.int st 4 in
    let gates =
      List.init (5 + Random.State.int st 20) (fun _ ->
          let q = Random.State.int st n in
          let q2 = if n = 1 then q else (q + 1 + Random.State.int st (n - 1)) mod n in
          match Random.State.int st 8 with
          | 0 -> Gate.H q
          | 1 -> Gate.S q
          | 2 -> Gate.Sdg q
          | 3 -> Gate.X q
          | 4 -> Gate.Z q
          | 5 -> Gate.Y q
          | 6 when n > 1 -> Gate.Cnot (q, q2)
          | _ when n > 1 -> Gate.Cz (q, q2)
          | _ -> Gate.H q)
    in
    let c = Circuit.of_gates n gates in
    let probs = Statevector.probabilities (Statevector.run c) in
    let out, det = Stabilizer.measure_all ~st (Stabilizer.run c) in
    if det then
      Alcotest.(check bool) "deterministic outcome matches" true (probs.(out) > 0.999)
    else Alcotest.(check bool) "sampled outcome in support" true (probs.(out) > 1e-9)
  done

let test_wide_hidden_shift () =
  (* E10: 48-qubit inner-product hidden shift, far beyond state vectors *)
  let s = 0b101100111000 in
  let inst = Core.Hidden_shift.Inner_product { n = 24; s } in
  Alcotest.(check int) "48-qubit shift" s (Core.Hidden_shift.solve_clifford inst)

let test_solve_clifford_rejects () =
  (* a nonlinear permutation (the Toffoli permutation itself) forces
     Toffoli gates into the oracle, which the stabilizer backend rejects.
     (n = 2 instances are always affine, hence always Clifford.) *)
  let pi = Logic.Perm.of_list [ 0; 1; 2; 3; 4; 5; 7; 6 ] in
  let mm = Logic.Bent.mm pi in
  let inst = Core.Hidden_shift.Mm { mm; s = 3; synth = Pq.Oracles.Tbs } in
  Alcotest.(check bool) "instance is not Clifford" false
    (Stabilizer.is_clifford_circuit (Core.Hidden_shift.build inst));
  match Core.Hidden_shift.solve_clifford inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-Clifford instance accepted"

let prop_clifford_sampling_consistency =
  Helpers.prop "stabilizer never samples outside the state-vector support" ~count:60
    (Helpers.qcircuit_gen ~diagonals:true 3 15)
    (fun c ->
      let clifford =
        Circuit.of_gates 3
          (List.filter
             (function Gate.T _ | Gate.Tdg _ | Gate.Ccz _ -> false | _ -> true)
             (Circuit.gates c))
      in
      let probs = Statevector.probabilities (Statevector.run clifford) in
      let st = Helpers.rng 1 in
      let out, _ = Stabilizer.measure_all ~st (Stabilizer.run clifford) in
      probs.(out) > 1e-9)

let () =
  Alcotest.run "stabilizer"
    [ ( "stabilizer",
        [ Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "X and CNOT" `Quick test_x_and_cnot;
          Alcotest.test_case "HH identity" `Quick test_hh_identity;
          Alcotest.test_case "S gates" `Quick test_s_gates;
          Alcotest.test_case "Y" `Quick test_y_gate;
          Alcotest.test_case "Bell correlations" `Quick test_bell_correlations;
          Alcotest.test_case "collapse" `Quick test_measurement_collapse;
          Alcotest.test_case "GHZ" `Quick test_ghz;
          Alcotest.test_case "non-Clifford rejected" `Quick test_not_clifford_rejected;
          Alcotest.test_case "agreement with statevector" `Quick test_agreement_with_statevector;
          Alcotest.test_case "48-qubit hidden shift (E10)" `Quick test_wide_hidden_shift;
          Alcotest.test_case "solve_clifford rejects" `Quick test_solve_clifford_rejects;
          prop_clifford_sampling_consistency ] ) ]
