open Logic

let test_terminals () =
  let m = Bdd.create 3 in
  Alcotest.(check bool) "zero evals false" false (Bdd.eval m Bdd.zero 5);
  Alcotest.(check bool) "one evals true" true (Bdd.eval m Bdd.one 5);
  Alcotest.(check int) "const" Bdd.one (Bdd.const true)

let test_var_and_ops () =
  let m = Bdd.create 3 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let ab = Bdd.and_ m a b in
  for x = 0 to 7 do
    Alcotest.(check bool) "and" (Bitops.bit x 0 && Bitops.bit x 1) (Bdd.eval m ab x)
  done;
  let aob = Bdd.or_ m a b in
  Alcotest.(check bool) "or" true (Bdd.eval m aob 0b001);
  let axb = Bdd.xor m a b in
  Alcotest.(check bool) "xor" false (Bdd.eval m axb 0b011)

let test_hash_consing () =
  let m = Bdd.create 4 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let x1 = Bdd.and_ m a b and x2 = Bdd.and_ m b a in
  Alcotest.(check int) "commutative ANDs share a node" x1 x2;
  Alcotest.(check int) "a AND a = a" a (Bdd.and_ m a a);
  Alcotest.(check int) "a XOR a = 0" Bdd.zero (Bdd.xor m a a);
  Alcotest.(check int) "a AND !a = 0" Bdd.zero (Bdd.and_ m a (Bdd.not_ m a))

let test_restrict_quantify () =
  let m = Bdd.create 3 in
  let f = Bdd.of_bexpr m (Bexpr.parse "(a & b) | c") in
  let f_a1 = Bdd.restrict m f 0 true in
  for x = 0 to 7 do
    Alcotest.(check bool) "restrict a=1" (Bdd.eval m f (x lor 1)) (Bdd.eval m f_a1 x)
  done;
  let ex = Bdd.exists m f 2 in
  Alcotest.(check bool) "exists c" true (Bdd.eval m ex 0);
  let fa = Bdd.forall m f 2 in
  Alcotest.(check bool) "forall c, ab=0" false (Bdd.eval m fa 0);
  Alcotest.(check bool) "forall c, ab=1" true (Bdd.eval m fa 0b011)

let test_truth_table_roundtrip () =
  let m = Bdd.create 6 in
  let tt = Funcgen.majority 6 in
  let f = Bdd.of_truth_table m tt in
  Helpers.check_tt_eq "roundtrip" tt (Bdd.to_truth_table m f 6)

let test_sat_count () =
  let m = Bdd.create 4 in
  let tt = Funcgen.threshold 4 2 in
  let f = Bdd.of_truth_table m tt in
  Alcotest.(check (float 1e-9)) "sat count matches popcount"
    (Float.of_int (Truth_table.count_ones tt)) (Bdd.sat_count m f);
  Alcotest.(check (float 1e-9)) "sat count one" 16. (Bdd.sat_count m Bdd.one);
  Alcotest.(check (float 1e-9)) "sat count zero" 0. (Bdd.sat_count m Bdd.zero)

let test_support_size () =
  let m = Bdd.create 5 in
  let f = Bdd.of_bexpr m (Bexpr.parse "a ^ d") in
  Alcotest.(check (list int)) "support" [ 0; 3 ] (Bdd.support m f);
  Alcotest.(check int) "xor of 2 vars has 3 nodes" 3 (Bdd.size m f)

let test_topological () =
  let m = Bdd.create 4 in
  let f = Bdd.of_truth_table m (Funcgen.majority 4) in
  let order = Bdd.nodes_topological m f in
  Alcotest.(check int) "covers all reachable nodes" (Bdd.size m f) (List.length order);
  (* children precede parents *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let n = Bdd.node m id in
      let ok child = Bdd.is_terminal child || Hashtbl.mem seen child in
      Alcotest.(check bool) "child before parent" true (ok n.Bdd.lo && ok n.Bdd.hi);
      Hashtbl.add seen id ())
    order

let test_ite () =
  let m = Bdd.create 3 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let f = Bdd.ite m a b c in
  for x = 0 to 7 do
    let expect = if Bitops.bit x 0 then Bitops.bit x 1 else Bitops.bit x 2 in
    Alcotest.(check bool) "ite" expect (Bdd.eval m f x)
  done

let prop_bdd_matches_expr =
  Helpers.prop "BDD of expression computes the expression"
    (Helpers.bexpr_gen ~vars:6 ~depth:5 ())
    (fun e ->
      let m = Bdd.create 6 in
      let f = Bdd.of_bexpr m e in
      Truth_table.equal (Bexpr.to_truth_table ~n:6 e) (Bdd.to_truth_table m f 6))

let prop_bdd_ops_match_tt =
  Helpers.prop "apply ops agree with truth-table ops"
    QCheck2.Gen.(pair (Helpers.tt_gen 5) (Helpers.tt_gen 5))
    (fun (a, b) ->
      let m = Bdd.create 5 in
      let fa = Bdd.of_truth_table m a and fb = Bdd.of_truth_table m b in
      Truth_table.equal (Truth_table.and_ a b) (Bdd.to_truth_table m (Bdd.and_ m fa fb) 5)
      && Truth_table.equal (Truth_table.xor a b) (Bdd.to_truth_table m (Bdd.xor m fa fb) 5)
      && Truth_table.equal (Truth_table.or_ a b) (Bdd.to_truth_table m (Bdd.or_ m fa fb) 5))

let prop_canonical =
  Helpers.prop "equal functions get the same node id" (Helpers.tt_gen 5) (fun a ->
      let m = Bdd.create 5 in
      let f1 = Bdd.of_truth_table m a in
      let f2 = Bdd.of_bexpr m (Bexpr.parse "0") in
      let f2 = Bdd.or_ m f2 f1 in
      f1 = f2)

let prop_sat_count =
  Helpers.prop "sat_count equals count_ones" (Helpers.tt_gen 6) (fun tt ->
      let m = Bdd.create 6 in
      let f = Bdd.of_truth_table m tt in
      Float.abs (Bdd.sat_count m f -. Float.of_int (Truth_table.count_ones tt)) < 1e-9)

let () =
  Alcotest.run "bdd"
    [ ( "bdd",
        [ Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "var and ops" `Quick test_var_and_ops;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "restrict/quantify" `Quick test_restrict_quantify;
          Alcotest.test_case "truth-table roundtrip" `Quick test_truth_table_roundtrip;
          Alcotest.test_case "sat count" `Quick test_sat_count;
          Alcotest.test_case "support/size" `Quick test_support_size;
          Alcotest.test_case "topological order" `Quick test_topological;
          Alcotest.test_case "ite" `Quick test_ite;
          prop_bdd_matches_expr;
          prop_bdd_ops_match_tt;
          prop_canonical;
          prop_sat_count ] ) ]
