open Qc

let test_tt_merges_to_s () =
  let c = Circuit.of_gates 1 [ Gate.T 0; Gate.T 0 ] in
  let c' = Tpar.optimize c in
  Alcotest.(check int) "T count 0" 0 (Circuit.t_count c');
  Alcotest.(check bool) "equals S" true (Helpers.same_unitary_phase c c')

let test_t_tdg_cancels () =
  let c = Circuit.of_gates 1 [ Gate.T 0; Gate.Tdg 0 ] in
  Alcotest.(check int) "cancels" 0 (Circuit.num_gates (Tpar.optimize c))

let test_merge_through_cnot () =
  (* T(0); CNOT(0,1); T(0): qubit 0's parity is unchanged by the CNOT, so
     the two Ts merge into S *)
  let c = Circuit.of_gates 2 [ Gate.T 0; Gate.Cnot (0, 1); Gate.T 0 ] in
  let c' = Tpar.optimize c in
  Alcotest.(check int) "merged" 0 (Circuit.t_count c');
  Alcotest.(check bool) "unitary preserved" true (Helpers.same_unitary_phase c c')

let test_parity_matching_across_wires () =
  (* CNOT(0,1) puts x0^x1 on wire 1; T there, then CNOT(1,0)? craft a case
     where the same parity appears on different wires and phases merge *)
  let c =
    Circuit.of_gates 2
      [ Gate.Cnot (0, 1); Gate.T 1; Gate.Cnot (0, 1); Gate.Cnot (1, 0); Gate.T 0;
        Gate.Cnot (1, 0) ]
  in
  (* the parity x0^x1 appears on wire 1 (first T) and later on wire 0
     (second T): the rotations must merge *)
  let c' = Tpar.optimize c in
  Alcotest.(check int) "merged to S" 0 (Circuit.t_count c');
  Alcotest.(check bool) "unitary preserved" true (Helpers.same_unitary_phase c c')

let test_h_is_barrier () =
  (* T; H; T must NOT merge *)
  let c = Circuit.of_gates 1 [ Gate.T 0; Gate.H 0; Gate.T 0 ] in
  let c' = Tpar.optimize c in
  Alcotest.(check int) "two Ts remain" 2 (Circuit.t_count c');
  Alcotest.(check bool) "unitary preserved" true (Helpers.same_unitary_phase c c')

let test_x_conjugation () =
  (* X; T; X equals T† up to global phase — the negated-parity bookkeeping *)
  let c = Circuit.of_gates 1 [ Gate.X 0; Gate.T 0; Gate.X 0; Gate.T 0 ] in
  let c' = Tpar.optimize c in
  Alcotest.(check int) "phases cancel" 0 (Circuit.t_count c');
  Alcotest.(check bool) "unitary preserved" true (Helpers.same_unitary_phase c c')

let test_rz_angles_fold () =
  let c = Circuit.of_gates 1 [ Gate.Rz (0.3, 0); Gate.Rz (0.4, 0) ] in
  let c' = Tpar.optimize c in
  (match Circuit.gates c' with
  | [ Gate.Rz (a, 0) ] -> Alcotest.(check (float 1e-12)) "summed" 0.7 a
  | gs -> Alcotest.failf "expected one Rz, got %d gates" (List.length gs));
  let c = Circuit.of_gates 1 [ Gate.Rz (0.3, 0); Gate.Rz (-0.3, 0) ] in
  Alcotest.(check int) "cancel to nothing" 0 (Circuit.num_gates (Tpar.optimize c))

let test_ccz_overlap_folding () =
  (* the motivating case: two CCZs sharing two controls fold 14 T -> 8 T *)
  let c = Circuit.of_gates 4 (Clifford_t.ccz_7t 0 1 2 @ Clifford_t.ccz_7t 0 1 3) in
  let c', rep = Tpar.optimize_report c in
  Alcotest.(check int) "before" 14 rep.Tpar.t_before;
  Alcotest.(check int) "after" 8 rep.Tpar.t_after;
  Alcotest.(check bool) "unitary preserved" true (Helpers.same_unitary_phase c c')

let test_diagonal_passthrough () =
  (* CZ between two Ts on the same parity must not block merging *)
  let c = Circuit.of_gates 2 [ Gate.T 0; Gate.Cz (0, 1); Gate.T 0 ] in
  let c' = Tpar.optimize c in
  Alcotest.(check int) "merged through CZ" 0 (Circuit.t_count c');
  Alcotest.(check bool) "unitary preserved" true (Helpers.same_unitary_phase c c')

let test_report_counts () =
  let c = Circuit.of_gates 2 [ Gate.T 0; Gate.T 0; Gate.H 1 ] in
  let _, rep = Tpar.optimize_report c in
  Alcotest.(check int) "t before" 2 rep.Tpar.t_before;
  Alcotest.(check int) "t after" 0 rep.Tpar.t_after

let prop_preserves_unitary =
  Helpers.prop "tpar preserves the unitary up to global phase" ~count:200
    (Helpers.qcircuit_gen 3 25)
    (fun c -> Helpers.same_unitary_phase c (Tpar.optimize c))

let prop_never_increases_t =
  Helpers.prop "tpar never increases the T-count" (Helpers.qcircuit_gen 4 25) (fun c ->
      Circuit.t_count (Tpar.optimize c) <= Circuit.t_count c)

let prop_idempotent_t_count =
  Helpers.prop "tpar is idempotent on the T-count" (Helpers.qcircuit_gen 3 20) (fun c ->
      let once = Tpar.optimize c in
      Circuit.t_count (Tpar.optimize once) = Circuit.t_count once)

(* ---- peephole Opt ---- *)

let test_opt_cancellation () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.H 0; Gate.Cnot (0, 1); Gate.Cnot (0, 1) ] in
  Alcotest.(check int) "all cancel" 0 (Circuit.num_gates (Opt.simplify c))

let test_opt_fusion () =
  let c = Circuit.of_gates 1 [ Gate.T 0; Gate.T 0 ] in
  (match Circuit.gates (Opt.simplify c) with
  | [ Gate.S 0 ] -> ()
  | _ -> Alcotest.fail "TT should fuse to S");
  let c = Circuit.of_gates 1 [ Gate.S 0; Gate.S 0 ] in
  match Circuit.gates (Opt.simplify c) with
  | [ Gate.Z 0 ] -> ()
  | _ -> Alcotest.fail "SS should fuse to Z"

let test_opt_across_disjoint () =
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (1, 2); Gate.H 0 ] in
  let c' = Opt.simplify c in
  Alcotest.(check int) "H pair cancels across disjoint CNOT" 1 (Circuit.num_gates c')

let prop_opt_preserves_unitary =
  Helpers.prop "peephole preserves the unitary exactly" ~count:150
    (Helpers.qcircuit_gen 3 20)
    (fun c -> Helpers.same_unitary c (Opt.simplify c))

let prop_opt_never_grows =
  Helpers.prop "peephole never grows" (Helpers.qcircuit_gen 3 20) (fun c ->
      Circuit.num_gates (Opt.simplify c) <= Circuit.num_gates c)

let () =
  Alcotest.run "tpar"
    [ ( "tpar",
        [ Alcotest.test_case "TT -> S" `Quick test_tt_merges_to_s;
          Alcotest.test_case "T T-dagger cancels" `Quick test_t_tdg_cancels;
          Alcotest.test_case "merge through CNOT" `Quick test_merge_through_cnot;
          Alcotest.test_case "cross-wire parity" `Quick test_parity_matching_across_wires;
          Alcotest.test_case "H is a barrier" `Quick test_h_is_barrier;
          Alcotest.test_case "X conjugation" `Quick test_x_conjugation;
          Alcotest.test_case "Rz folding" `Quick test_rz_angles_fold;
          Alcotest.test_case "CCZ overlap folds 14->8" `Quick test_ccz_overlap_folding;
          Alcotest.test_case "diagonal pass-through" `Quick test_diagonal_passthrough;
          Alcotest.test_case "report" `Quick test_report_counts;
          prop_preserves_unitary;
          prop_never_increases_t;
          prop_idempotent_t_count ] );
      ( "opt",
        [ Alcotest.test_case "cancellation" `Quick test_opt_cancellation;
          Alcotest.test_case "fusion" `Quick test_opt_fusion;
          Alcotest.test_case "across disjoint" `Quick test_opt_across_disjoint;
          prop_opt_preserves_unitary;
          prop_opt_never_grows ] ) ]
