module Hs = Core.Hidden_shift
module Bent = Logic.Bent
module Perm = Logic.Perm

let test_fig4_instance () =
  (* E1: f = x1x2 + x3x4, s = 1 -> the program prints 'Shift is 1' *)
  Alcotest.(check int) "Shift is 1" 1 (Hs.solve (Hs.Inner_product { n = 2; s = 1 }))

let test_all_shifts_ip () =
  for s = 0 to 15 do
    Alcotest.(check int) "deterministic" s (Hs.solve (Hs.Inner_product { n = 2; s }))
  done

let test_ip_larger_register () =
  Alcotest.(check int) "6 qubits" 0b101101 (Hs.solve (Hs.Inner_product { n = 3; s = 0b101101 }))

let test_fig7_instance () =
  (* E3: pi = [0,2,3,5,7,1,4,6], s = 5 -> 'Shift is 5' *)
  let mm = Bent.mm (Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ]) in
  Alcotest.(check int) "tbs" 5 (Hs.solve (Hs.Mm { mm; s = 5; synth = Pq.Oracles.Tbs }));
  Alcotest.(check int) "dbs" 5 (Hs.solve (Hs.Mm { mm; s = 5; synth = Pq.Oracles.Dbs }))

let test_mm_with_h () =
  (* nonzero h exercises the h-phase paths of both oracles *)
  let st = Helpers.rng 55 in
  for _ = 1 to 5 do
    let mm = { (Bent.random_mm st 2) with Bent.h = Logic.Truth_table.random st 2 } in
    let s = Random.State.int st 16 in
    Alcotest.(check int) "with h" s (Hs.solve (Hs.Mm { mm; s; synth = Pq.Oracles.Tbs }))
  done

let test_generic_instance () =
  let f = Bent.inner_product 2 in
  Alcotest.(check int) "generic" 9 (Hs.solve (Hs.Generic { f; s = 9 }));
  (* also on a random MM function through the generic ESOP path *)
  let st = Helpers.rng 4 in
  let f = Bent.mm_function (Bent.random_mm st 2) in
  Alcotest.(check int) "generic mm" 3 (Hs.solve (Hs.Generic { f; s = 3 }))

let test_generic_rejects_non_bent () =
  match Hs.build (Hs.Generic { f = Logic.Funcgen.parity 4; s = 1 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-bent function accepted"

let test_function_table_consistency () =
  let mm = Bent.mm (Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ]) in
  let inst = Hs.Mm { mm; s = 5; synth = Pq.Oracles.Tbs } in
  let tt = Hs.function_table inst in
  Alcotest.(check int) "qubit-indexed arity" 6 (Logic.Truth_table.num_vars tt);
  Alcotest.(check bool) "bent in qubit indexing" true (Logic.Walsh.is_bent tt)

let test_build_compiled_still_solves () =
  let inst = Hs.Inner_product { n = 2; s = 6 } in
  let compiled, anc = Hs.build_compiled inst in
  let sv = Qc.Statevector.run compiled in
  Alcotest.(check int) "compiled circuit still yields s"
    6 (Qc.Statevector.most_likely sv);
  Alcotest.(check int) "ip oracle needs no ancillae" 0 anc

let test_compiled_mm_solves () =
  let mm = Bent.mm (Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ]) in
  let compiled, _ = Hs.build_compiled (Hs.Mm { mm; s = 5; synth = Pq.Oracles.Tbs }) in
  let sv = Qc.Statevector.run compiled in
  Alcotest.(check int) "compiled MM yields s" 5 (Qc.Statevector.most_likely sv)

let test_num_qubits () =
  Alcotest.(check int) "ip" 4 (Hs.num_qubits (Hs.Inner_product { n = 2; s = 0 }));
  let mm = Bent.mm (Perm.identity 3) in
  Alcotest.(check int) "mm" 6 (Hs.num_qubits (Hs.Mm { mm; s = 0; synth = Pq.Oracles.Tbs }))

let test_classical_baseline () =
  let st = Helpers.rng 31 in
  let inst = Hs.random_mm_instance st 2 in
  let found, queries = Hs.classical_queries inst in
  Alcotest.(check int) "classical finds the shift" (Hs.shift inst) found;
  Alcotest.(check bool) "needs many queries" true (queries > 2)

let test_classical_scaling_shape () =
  (* E7 shape: queries grow with n *)
  let st = Helpers.rng 32 in
  let q_at n =
    let inst = Hs.random_mm_instance st n in
    snd (Hs.classical_queries inst)
  in
  Alcotest.(check bool) "exponential growth" true (q_at 4 > 4 * q_at 2)

let test_noisy_mode_is_planted_shift () =
  let inst = Hs.Inner_product { n = 2; s = 2 } in
  let mean, _ = Hs.run_noisy ~seed:9 Qc.Noise.ibm_qx2017 inst ~shots:512 ~runs:2 in
  let best = ref 0 in
  Array.iteri (fun x m -> if m > mean.(!best) then best := x) mean;
  Alcotest.(check int) "mode" 2 !best

let prop_random_mm_deterministic =
  Helpers.prop "random MM instances recover the planted shift" ~count:15
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let inst = Hs.random_mm_instance (Helpers.rng seed) 2 in
      Hs.solve inst = Hs.shift inst)

let prop_generic_random_shift =
  Helpers.prop "generic instances recover every shift" ~count:15
    QCheck2.Gen.(int_bound 15)
    (fun s -> Hs.solve (Hs.Generic { f = Bent.inner_product 2; s }) = s)

let () =
  Alcotest.run "hidden_shift"
    [ ( "hidden_shift",
        [ Alcotest.test_case "Fig. 4 instance (E1)" `Quick test_fig4_instance;
          Alcotest.test_case "all 16 shifts" `Quick test_all_shifts_ip;
          Alcotest.test_case "6-qubit register" `Quick test_ip_larger_register;
          Alcotest.test_case "Fig. 7 instance (E3)" `Quick test_fig7_instance;
          Alcotest.test_case "nonzero h" `Quick test_mm_with_h;
          Alcotest.test_case "generic bent functions" `Quick test_generic_instance;
          Alcotest.test_case "non-bent rejected" `Quick test_generic_rejects_non_bent;
          Alcotest.test_case "function table" `Quick test_function_table_consistency;
          Alcotest.test_case "compiled circuit solves" `Quick test_build_compiled_still_solves;
          Alcotest.test_case "compiled MM solves" `Quick test_compiled_mm_solves;
          Alcotest.test_case "qubit counts" `Quick test_num_qubits;
          Alcotest.test_case "classical baseline" `Quick test_classical_baseline;
          Alcotest.test_case "classical scaling" `Quick test_classical_scaling_shape;
          Alcotest.test_case "noisy mode" `Quick test_noisy_mode_is_planted_shift;
          prop_random_mm_deterministic;
          prop_generic_random_shift ] ) ]
