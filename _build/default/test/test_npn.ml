open Logic

let test_identity_transform () =
  let f = Funcgen.majority 3 in
  Helpers.check_tt_eq "identity transform" f (Npn.apply (Npn.identity 3) f)

let test_output_negation () =
  let f = Funcgen.majority 3 in
  let t = { (Npn.identity 3) with Npn.output_neg = true } in
  Helpers.check_tt_eq "output negation" (Truth_table.not_ f) (Npn.apply t f)

let test_input_negation () =
  (* negating every input of majority gives its complement (self-duality) *)
  let f = Funcgen.majority 3 in
  let t = { (Npn.identity 3) with Npn.input_neg = 0b111 } in
  Helpers.check_tt_eq "majority is self-dual" (Truth_table.not_ f) (Npn.apply t f)

let test_permutation_symmetric () =
  (* symmetric functions are invariant under every input permutation *)
  let f = Funcgen.threshold 4 2 in
  List.iter
    (fun perm ->
      let t = { (Npn.identity 4) with Npn.perm = Array.of_list perm } in
      Helpers.check_tt_eq "symmetric invariance" f (Npn.apply t f))
    [ [ 1; 0; 2; 3 ]; [ 3; 2; 1; 0 ]; [ 2; 3; 0; 1 ] ]

let test_and_or_same_class () =
  (* AND and OR are NPN equivalent (De Morgan) but XOR is not with AND *)
  let and2 = Truth_table.of_fun 2 (fun x -> x = 3) in
  let or2 = Truth_table.of_fun 2 (fun x -> x <> 0) in
  let xor2 = Funcgen.parity 2 in
  Alcotest.(check bool) "AND ~ OR" true (Npn.equivalent and2 or2);
  Alcotest.(check bool) "AND !~ XOR" false (Npn.equivalent and2 xor2)

let test_class_counts () =
  (* the textbook NPN class counts *)
  Alcotest.(check int) "n=1" 2 (List.length (Npn.classes 1));
  Alcotest.(check int) "n=2" 4 (List.length (Npn.classes 2));
  Alcotest.(check int) "n=3" 14 (List.length (Npn.classes 3))

let test_canonical_is_class_invariant () =
  let st = Helpers.rng 7 in
  for _ = 1 to 20 do
    let f = Truth_table.random st 3 in
    (* apply assorted transforms; the canonical form must not move *)
    let transforms =
      [ { (Npn.identity 3) with Npn.input_neg = Random.State.int st 8 };
        { (Npn.identity 3) with Npn.output_neg = true };
        { Npn.perm = [| 2; 0; 1 |]; input_neg = Random.State.int st 8; output_neg = Random.State.bool st } ]
    in
    List.iter
      (fun t ->
        let g = Npn.apply t f in
        Helpers.check_tt_eq "canonical invariant" (fst (Npn.canonical f)) (fst (Npn.canonical g)))
      transforms
  done

let test_canonical_transform_is_witness () =
  (* the returned transform actually produces the canonical function *)
  let st = Helpers.rng 13 in
  for _ = 1 to 20 do
    let f = Truth_table.random st 4 in
    let rep, t = Npn.canonical f in
    Helpers.check_tt_eq "witness" rep (Npn.apply t f)
  done

let test_bent_class_invariance () =
  (* NPN transforms preserve bentness: flat spectra survive affine input
     changes and output complement *)
  let f = Bent.inner_product 2 in
  let t = { Npn.perm = [| 3; 1; 0; 2 |]; input_neg = 0b0110; output_neg = true } in
  Alcotest.(check bool) "bent after transform" true (Walsh.is_bent (Npn.apply t f))

let prop_equivalence_reflexive_symmetric =
  Helpers.prop "NPN equivalence is reflexive and symmetric"
    QCheck2.Gen.(pair (Helpers.tt_gen 3) (Helpers.tt_gen 3))
    (fun (a, b) -> Npn.equivalent a a && Npn.equivalent a b = Npn.equivalent b a)

let prop_canonical_idempotent =
  Helpers.prop "canonical is idempotent" (Helpers.tt_gen 4) (fun f ->
      let rep, _ = Npn.canonical f in
      Truth_table.equal rep (fst (Npn.canonical rep)))

let () =
  Alcotest.run "npn"
    [ ( "npn",
        [ Alcotest.test_case "identity" `Quick test_identity_transform;
          Alcotest.test_case "output negation" `Quick test_output_negation;
          Alcotest.test_case "input negation" `Quick test_input_negation;
          Alcotest.test_case "symmetric invariance" `Quick test_permutation_symmetric;
          Alcotest.test_case "AND/OR/XOR classes" `Quick test_and_or_same_class;
          Alcotest.test_case "class counts" `Quick test_class_counts;
          Alcotest.test_case "class invariance" `Quick test_canonical_is_class_invariant;
          Alcotest.test_case "transform witness" `Quick test_canonical_transform_is_witness;
          Alcotest.test_case "bentness preserved" `Quick test_bent_class_invariance;
          prop_equivalence_reflexive_symmetric;
          prop_canonical_idempotent ] ) ]
