open Rev
module Truth_table = Logic.Truth_table
module Funcgen = Logic.Funcgen

let test_constant_folding () =
  let g = Xag.create 2 in
  let a = Xag.input g 0 in
  Alcotest.(check int) "a AND 0" Xag.const_false (Xag.and_ g a Xag.const_false);
  Alcotest.(check int) "a AND 1" a (Xag.and_ g a Xag.const_true);
  Alcotest.(check int) "a AND a" a (Xag.and_ g a a);
  Alcotest.(check int) "a AND !a" Xag.const_false (Xag.and_ g a (Xag.complement a));
  Alcotest.(check int) "a XOR a" Xag.const_false (Xag.xor g a a);
  Alcotest.(check int) "a XOR 0" a (Xag.xor g a Xag.const_false);
  Alcotest.(check int) "a XOR 1" (Xag.complement a) (Xag.xor g a Xag.const_true)

let test_structural_hashing () =
  let g = Xag.create 2 in
  let a = Xag.input g 0 and b = Xag.input g 1 in
  let x1 = Xag.and_ g a b and x2 = Xag.and_ g b a in
  Alcotest.(check int) "shared node" x1 x2;
  Alcotest.(check int) "one internal node" 1 (Xag.num_nodes g)

let test_of_bexpr_eval () =
  let e = Logic.Bexpr.parse "(a & b) ^ (c | !d)" in
  let g = Xag.of_bexpr 4 e in
  let tt = Logic.Bexpr.to_truth_table ~n:4 e in
  List.iteri
    (fun _ out -> Helpers.check_tt_eq "xag evaluates the expression" tt out)
    (Xag.to_truth_tables g)

let test_of_esops () =
  let f = Funcgen.majority 5 in
  let g = Xag.of_esops 5 [ Logic.Esop_opt.minimize f ] in
  Helpers.check_tt_eq "xag of esop" f (List.hd (Xag.to_truth_tables g))

let test_ripple_adder () =
  for n = 1 to 4 do
    let g = Xag.ripple_adder n in
    for a = 0 to (1 lsl n) - 1 do
      for b = 0 to (1 lsl n) - 1 do
        let z = a lor (b lsl n) in
        Alcotest.(check int) "ripple adder" (a + b) (Xag.eval g z)
      done
    done;
    (* structural adder is small: ~5 nodes per bit *)
    Alcotest.(check bool) "compact" true (Xag.num_nodes g <= (5 * n) + 1)
  done

let test_cone () =
  let g = Xag.ripple_adder 3 in
  let outs = Xag.outputs g in
  (* cone of the LSB sum is much smaller than the full network *)
  let c0 = Xag.cone g [ List.hd outs ] in
  let call = Xag.cone g outs in
  Alcotest.(check bool) "lsb cone smaller" true (List.length c0 < List.length call);
  Alcotest.(check int) "full cone covers all nodes" (Xag.num_nodes g) (List.length call)

(* ---- hierarchical synthesis ---- *)

let test_bennett_adder () =
  let g = Xag.ripple_adder 3 in
  let c, layout = Hier_synth.bennett g in
  Alcotest.(check bool) "Eq. (4) contract" true
    (Hier_synth.check (c, layout) (Xag.to_truth_tables g));
  Alcotest.(check int) "ancillae = nodes" (Xag.num_nodes g) layout.Hier_synth.ancillae

let test_batched_tradeoff () =
  let g = Xag.ripple_adder 4 in
  let fs = Xag.to_truth_tables g in
  let _, lay_all = Hier_synth.bennett g in
  let prev_gates = ref 0 in
  List.iter
    (fun batch ->
      let c, lay = Hier_synth.output_batched ~batch g in
      Alcotest.(check bool) (Printf.sprintf "batch %d correct" batch) true
        (Hier_synth.check (c, lay) fs);
      Alcotest.(check bool) "fewer or equal ancillae than keep-all" true
        (lay.Hier_synth.ancillae <= lay_all.Hier_synth.ancillae);
      (* smaller batches cost at least as many gates *)
      if !prev_gates > 0 then
        Alcotest.(check bool) "monotone gate cost" true
          (Rcircuit.num_gates c >= !prev_gates);
      prev_gates := Rcircuit.num_gates c)
    [ 5; 2; 1 ]

let test_synth_tables_front_end () =
  let fs = [ Funcgen.majority 3; Funcgen.parity 3 ] in
  let c, lay = Hier_synth.synth_tables fs in
  Alcotest.(check bool) "table front end" true (Hier_synth.check (c, lay) fs)

let prop_hier_random =
  Helpers.prop "hierarchical synthesis realizes random functions" ~count:40
    (Helpers.tt_gen 4)
    (fun f ->
      let c, lay = Hier_synth.synth_tables [ f ] in
      Hier_synth.check (c, lay) [ f ])

let prop_hier_batched_random =
  Helpers.prop "batched hierarchical synthesis is correct" ~count:30
    QCheck2.Gen.(pair (Helpers.tt_gen 4) (Helpers.tt_gen 4))
    (fun (f, g) ->
      let c, lay = Hier_synth.synth_tables ~batch:1 [ f; g ] in
      Hier_synth.check (c, lay) [ f; g ])

(* ---- pebbling ---- *)

let test_bennett_full_fanout () =
  (* fanout = segments: one forward sweep keeping everything (peak = s
     pebbles), then the s-1 intermediate segments are uncomputed *)
  let c = Pebble.strategy_cost ~segments:8 ~fanout:8 in
  Alcotest.(check int) "pebbles" 8 c.Pebble.pebbles;
  Alcotest.(check int) "moves" 15 c.Pebble.moves

let test_bennett_binary () =
  (* fanout 2 on a chain of 2^k: pebbles ~ k+1, moves = 3^k *)
  let c = Pebble.strategy_cost ~segments:16 ~fanout:2 in
  Alcotest.(check bool) "few pebbles" true (c.Pebble.pebbles <= 5);
  Alcotest.(check int) "3^4 moves" 81 c.Pebble.moves

let test_schedule_validity () =
  List.iter
    (fun (segments, fanout) ->
      (* simulate raises on invalid schedules *)
      ignore (Pebble.simulate ~segments (Pebble.bennett ~segments ~fanout)))
    [ (1, 2); (2, 2); (7, 2); (13, 3); (16, 4); (33, 5); (40, 2) ]

let test_invalid_schedule_rejected () =
  (match Pebble.simulate ~segments:3 [ Pebble.Compute 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dependency violation accepted");
  (match Pebble.simulate ~segments:2 [ Pebble.Compute 0; Pebble.Compute 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double compute accepted");
  match Pebble.simulate ~segments:2 [ Pebble.Uncompute 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uncompute of clean segment accepted"

let test_tradeoff_monotone () =
  (* larger fanout: more pebbles, fewer moves (the E6 shape) *)
  let costs =
    List.map (fun f -> Pebble.strategy_cost ~segments:32 ~fanout:f) [ 2; 4; 8; 16; 32 ]
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "pebbles nondecreasing" true (a.Pebble.pebbles <= b.Pebble.pebbles);
        Alcotest.(check bool) "moves nonincreasing" true (a.Pebble.moves >= b.Pebble.moves);
        check rest
    | _ -> ()
  in
  check costs

let () =
  Alcotest.run "xag"
    [ ( "xag",
        [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
          Alcotest.test_case "of_bexpr" `Quick test_of_bexpr_eval;
          Alcotest.test_case "of_esops" `Quick test_of_esops;
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
          Alcotest.test_case "cones" `Quick test_cone ] );
      ( "hier_synth",
        [ Alcotest.test_case "bennett adder" `Quick test_bennett_adder;
          Alcotest.test_case "batched trade-off" `Quick test_batched_tradeoff;
          Alcotest.test_case "table front end" `Quick test_synth_tables_front_end;
          prop_hier_random;
          prop_hier_batched_random ] );
      ( "pebble",
        [ Alcotest.test_case "full fanout" `Quick test_bennett_full_fanout;
          Alcotest.test_case "binary recursion" `Quick test_bennett_binary;
          Alcotest.test_case "schedule validity" `Quick test_schedule_validity;
          Alcotest.test_case "invalid schedules rejected" `Quick test_invalid_schedule_rejected;
          Alcotest.test_case "trade-off monotone" `Quick test_tradeoff_monotone ] ) ]
