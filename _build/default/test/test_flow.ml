module Flow = Core.Flow
module Funcgen = Logic.Funcgen
module Perm = Logic.Perm

let test_eq5_flow () =
  (* the paper's Eq. (5) pipeline on hwb4 *)
  let p = Funcgen.hwb 4 in
  let circuit, report = Flow.compile_perm p in
  Alcotest.(check bool) "verified" true (Flow.verify_perm p circuit);
  Alcotest.(check bool) "revsimp did not grow" true
    (report.Flow.rev_stats_simplified.Rev.Rcircuit.gate_count
    <= report.Flow.rev_stats.Rev.Rcircuit.gate_count);
  Alcotest.(check bool) "tpar ran" true (report.Flow.tpar <> None);
  Alcotest.(check bool) "T-count positive" true
    (report.Flow.resources_final.Qc.Resource.t_count > 0)

let test_flow_methods_agree () =
  let p = Perm.random (Helpers.rng 4) 4 in
  List.iter
    (fun synth ->
      let circuit, _ = Flow.compile_perm ~options:{ Flow.default with synth } p in
      Alcotest.(check bool) "method verified" true (Flow.verify_perm p circuit))
    [ Flow.Tbs; Flow.Tbs_basic; Flow.Dbs ]

let test_flow_option_toggles () =
  let p = Funcgen.hwb 4 in
  List.iter
    (fun options ->
      let circuit, _ = Flow.compile_perm ~options p in
      Alcotest.(check bool) "toggled option verified" true (Flow.verify_perm p circuit))
    [ { Flow.default with simplify_rev = false };
      { Flow.default with tpar = false };
      { Flow.default with peephole = false };
      { Flow.default with rccx_ladder = false } ]

let test_compile_function_esop () =
  let f = Funcgen.majority 3 in
  let circuit, _ = Flow.compile_function [ f ] in
  (* Bennett layout: inputs 0..2, output on line 3 *)
  match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
  | Some table ->
      for x = 0 to 7 do
        let out = table.(x) in
        Alcotest.(check int) "inputs preserved" x (out land 7);
        Alcotest.(check bool) "output bit" (Logic.Truth_table.get f x)
          (Logic.Bitops.bit out 3)
      done
  | None -> Alcotest.fail "not classical"

let test_compile_function_embedding_path () =
  (* synth = Tbs on an irreversible function goes through explicit embedding *)
  let f = Funcgen.majority 3 in
  let circuit, _ =
    Flow.compile_function ~options:{ Flow.default with synth = Flow.Tbs } [ f ]
  in
  match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
  | Some table ->
      for x = 0 to 7 do
        Alcotest.(check bool) "embedded output bit" (Logic.Truth_table.get f x)
          (Logic.Bitops.bit table.(x) 0)
      done
  | None -> Alcotest.fail "not classical"

let test_compile_function_hier () =
  let f = Funcgen.parity 4 in
  let circuit, _ =
    Flow.compile_function ~options:{ Flow.default with synth = Flow.Hier None } [ f ]
  in
  match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
  | Some table ->
      for x = 0 to 15 do
        Alcotest.(check bool) "hier output bit" (Logic.Truth_table.get f x)
          (Logic.Bitops.bit table.(x) 4)
      done
  | None -> Alcotest.fail "not classical"

let test_compile_expr () =
  let circuit, _ = Flow.compile_expr ~n:4 (Logic.Bexpr.parse "(a & b) ^ (c & d)") in
  let f = Logic.Bent.inner_product_adjacent 2 in
  match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
  | Some table ->
      for x = 0 to 15 do
        Alcotest.(check bool) "expression compiled" (Logic.Truth_table.get f x)
          (Logic.Bitops.bit table.(x) 4)
      done
  | None -> Alcotest.fail "not classical"

let test_verify_catches_bugs () =
  (* verify_perm must reject a circuit computing a different permutation *)
  let p = Funcgen.hwb 3 in
  let wrong, _ = Flow.compile_perm (Funcgen.cycle_shift 3) in
  Alcotest.(check bool) "wrong circuit rejected" false (Flow.verify_perm p wrong)

let test_reject_wrong_method () =
  match Flow.compile_perm ~options:{ Flow.default with synth = Flow.Esop } (Funcgen.hwb 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Esop on a permutation should be rejected"

let prop_flow_roundtrip =
  Helpers.prop "full flow preserves random permutations" ~count:25 (Helpers.perm_gen 3)
    (fun p ->
      let circuit, _ = Flow.compile_perm p in
      Flow.verify_perm p circuit)

let prop_flow_function_roundtrip =
  Helpers.prop "full flow preserves random functions" ~count:20 (Helpers.tt_gen 4)
    (fun f ->
      let circuit, _ = Flow.compile_function [ f ] in
      match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
      | Some table ->
          let ok = ref true in
          for x = 0 to 15 do
            if Logic.Bitops.bit table.(x) 4 <> Logic.Truth_table.get f x then ok := false
          done;
          !ok
      | None -> false)

let () =
  Alcotest.run "flow"
    [ ( "flow",
        [ Alcotest.test_case "Eq. 5 pipeline" `Quick test_eq5_flow;
          Alcotest.test_case "all methods verify" `Quick test_flow_methods_agree;
          Alcotest.test_case "option toggles" `Quick test_flow_option_toggles;
          Alcotest.test_case "function via ESOP" `Quick test_compile_function_esop;
          Alcotest.test_case "function via embedding" `Quick test_compile_function_embedding_path;
          Alcotest.test_case "function via hierarchical" `Quick test_compile_function_hier;
          Alcotest.test_case "expression front end" `Quick test_compile_expr;
          Alcotest.test_case "verification catches bugs" `Quick test_verify_catches_bugs;
          Alcotest.test_case "method validation" `Quick test_reject_wrong_method;
          prop_flow_roundtrip;
          prop_flow_function_roundtrip ] ) ]
