open Logic

let test_hwb_values () =
  (* hwb rotates by the population count: hwb(0b0011) on 4 bits, wt=2 -> 0b1100 *)
  let p = Funcgen.hwb 4 in
  Alcotest.(check int) "hwb 0" 0 (Perm.apply p 0);
  Alcotest.(check int) "hwb 0b0011" 0b1100 (Perm.apply p 0b0011);
  Alcotest.(check int) "hwb 0b0001" 0b0010 (Perm.apply p 0b0001);
  Alcotest.(check int) "hwb all ones fixed" 0b1111 (Perm.apply p 0b1111)

let test_hwb_is_permutation () =
  for n = 1 to 8 do
    (* of_array validates bijectivity; just construct *)
    ignore (Funcgen.hwb n)
  done

let test_cycle_shift () =
  let p = Funcgen.cycle_shift 3 in
  Alcotest.(check int) "inc" 1 (Perm.apply p 0);
  Alcotest.(check int) "wraps" 0 (Perm.apply p 7);
  Alcotest.(check (list (list int))) "single full cycle" [ List.init 8 Fun.id ] (Perm.cycles p)

let test_bit_reverse () =
  let p = Funcgen.bit_reverse 4 in
  Alcotest.(check int) "reverse 0b0001" 0b1000 (Perm.apply p 0b0001);
  Alcotest.(check int) "reverse palindrome" 0b1001 (Perm.apply p 0b1001);
  Alcotest.(check bool) "involutive" true (Perm.is_identity (Perm.compose p p))

let test_gray_code () =
  let p = Funcgen.gray_code 5 in
  for x = 0 to 30 do
    let d = Perm.apply p x lxor Perm.apply p (x + 1) in
    Alcotest.(check int) "gray neighbours" 1 (Bitops.popcount d)
  done

let test_majority_threshold () =
  let m = Funcgen.majority 5 in
  Alcotest.(check bool) "maj 0b00111" true (Truth_table.get m 0b00111);
  Alcotest.(check bool) "maj 0b00011" false (Truth_table.get m 0b00011);
  Helpers.check_tt_eq "majority is threshold (n+1)/2" m (Funcgen.threshold 5 3);
  let t = Funcgen.threshold 4 0 in
  Alcotest.(check bool) "threshold 0 is const true" true (Truth_table.is_const t true)

let test_parity () =
  let p = Funcgen.parity 6 in
  Alcotest.(check int) "balanced" 32 (Truth_table.count_ones p)

let test_adder () =
  let fs = Funcgen.adder_outputs 3 in
  Alcotest.(check int) "n+1 outputs" 4 (List.length fs);
  for a = 0 to 7 do
    for b = 0 to 7 do
      let z = a lor (b lsl 3) in
      let sum =
        List.fold_left
          (fun (acc, j) f -> ((if Truth_table.get f z then acc lor (1 lsl j) else acc), j + 1))
          (0, 0) fs
        |> fst
      in
      Alcotest.(check int) "adder" (a + b) sum
    done
  done

let test_multiplier () =
  let fs = Funcgen.multiplier_outputs 2 in
  for a = 0 to 3 do
    for b = 0 to 3 do
      let z = a lor (b lsl 2) in
      let prod =
        List.fold_left
          (fun (acc, j) f -> ((if Truth_table.get f z then acc lor (1 lsl j) else acc), j + 1))
          (0, 0) fs
        |> fst
      in
      Alcotest.(check int) "multiplier" (a * b) prod
    done
  done

let test_reciprocal () =
  let fs = Funcgen.reciprocal_outputs 4 in
  let value z =
    List.fold_left
      (fun (acc, j) f -> ((if Truth_table.get f z then acc lor (1 lsl j) else acc), j + 1))
      (0, 0) fs
    |> fst
  in
  Alcotest.(check int) "1/1 saturates" 15 (value 1);
  Alcotest.(check int) "1/0 is all ones" 15 (value 0);
  Alcotest.(check int) "15/15 = 1" 1 (value 15);
  Alcotest.(check int) "15/5 = 3" 3 (value 5)

let test_named () =
  Alcotest.(check bool) "hwb known" true (Funcgen.named_reversible "hwb" <> None);
  Alcotest.(check bool) "unknown" true (Funcgen.named_reversible "nope" = None);
  Alcotest.(check bool) "maj known" true (Funcgen.named_function "maj" <> None)

let () =
  Alcotest.run "funcgen"
    [ ( "funcgen",
        [ Alcotest.test_case "hwb values" `Quick test_hwb_values;
          Alcotest.test_case "hwb bijective" `Quick test_hwb_is_permutation;
          Alcotest.test_case "cycle shift" `Quick test_cycle_shift;
          Alcotest.test_case "bit reverse" `Quick test_bit_reverse;
          Alcotest.test_case "gray code" `Quick test_gray_code;
          Alcotest.test_case "majority/threshold" `Quick test_majority_threshold;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "reciprocal" `Quick test_reciprocal;
          Alcotest.test_case "named lookup" `Quick test_named ] ) ]
