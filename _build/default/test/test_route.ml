open Qc

let test_already_lnn () =
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1); Gate.Cnot (1, 2) ] in
  let r = Route.lnn c in
  Alcotest.(check int) "no swaps" 0 r.Route.swaps_inserted;
  Alcotest.(check bool) "unchanged" true (Circuit.gates r.Route.circuit = Circuit.gates c);
  Alcotest.(check (array int)) "identity placement" [| 0; 1; 2 |] r.Route.final_placement

let test_distant_cnot () =
  let c = Circuit.of_gates 4 [ Gate.Cnot (0, 3) ] in
  let r = Route.lnn c in
  Alcotest.(check int) "two swaps" 2 r.Route.swaps_inserted;
  Alcotest.(check bool) "now lnn" true (Route.is_lnn r.Route.circuit);
  Alcotest.(check bool) "verified" true (Route.verify ~original:c r)

let test_is_lnn_detector () =
  Alcotest.(check bool) "adjacent ok" true
    (Route.is_lnn (Circuit.of_gates 3 [ Gate.Cz (1, 2) ]));
  Alcotest.(check bool) "distant not ok" false
    (Route.is_lnn (Circuit.of_gates 3 [ Gate.Cz (0, 2) ]))

let test_three_qubit_rejected () =
  match Route.lnn (Circuit.of_gates 3 [ Gate.Ccx (0, 1, 2) ]) with
  | exception Route.Not_two_qubit _ -> ()
  | _ -> Alcotest.fail "3-qubit gate accepted (compile first)"

let test_placement_tracked () =
  (* after routing, 1-qubit gates land on the moved positions *)
  let c = Circuit.of_gates 3 [ Gate.Cnot (0, 2); Gate.T 0; Gate.T 2 ] in
  let r = Route.lnn c in
  Alcotest.(check bool) "verified" true (Route.verify ~original:c r);
  (* every logical qubit has a unique physical slot *)
  let sorted = List.sort compare (Array.to_list r.Route.final_placement) in
  Alcotest.(check (list int)) "placement is a permutation" [ 0; 1; 2 ] sorted

let test_compiled_flow_routes () =
  (* full pipeline: synthesize, compile, route, verify *)
  let p = Logic.Funcgen.hwb 4 in
  let circuit, _ = Core.Flow.compile_perm p in
  let r = Route.lnn circuit in
  Alcotest.(check bool) "lnn after routing" true (Route.is_lnn r.Route.circuit);
  Alcotest.(check bool) "still correct" true (Route.verify ~original:circuit r);
  Alcotest.(check bool) "swap overhead positive" true (r.Route.swaps_inserted > 0)

let prop_routing_preserves_semantics =
  Helpers.prop "routing preserves the unitary up to final placement" ~count:60
    (Helpers.qcircuit_gen ~diagonals:false 5 15)
    (fun c ->
      let two_qubit_only =
        List.for_all (fun g -> List.length (Gate.qubits g) <= 2) (Circuit.gates c)
      in
      if not two_qubit_only then true
      else
        let r = Route.lnn c in
        Route.is_lnn r.Route.circuit && Route.verify ~original:c r)

let prop_swap_overhead_bounded =
  Helpers.prop "swap overhead is at most (n-1) per 2-qubit gate" ~count:40
    (Helpers.qcircuit_gen ~diagonals:false 5 20)
    (fun c ->
      let two_q =
        Circuit.count_matching (fun g -> List.length (Gate.qubits g) = 2) c
      in
      let r = Route.lnn c in
      r.Route.swaps_inserted <= two_q * (Circuit.num_qubits c - 1))

let () =
  Alcotest.run "route"
    [ ( "route",
        [ Alcotest.test_case "already LNN" `Quick test_already_lnn;
          Alcotest.test_case "distant CNOT" `Quick test_distant_cnot;
          Alcotest.test_case "LNN detector" `Quick test_is_lnn_detector;
          Alcotest.test_case "3-qubit rejected" `Quick test_three_qubit_rejected;
          Alcotest.test_case "placement tracked" `Quick test_placement_tracked;
          Alcotest.test_case "compiled flow routes" `Quick test_compiled_flow_routes;
          prop_routing_preserves_semantics;
          prop_swap_overhead_bounded ] ) ]
