open Logic

let test_popcount () =
  Alcotest.(check int) "popcount 0" 0 (Bitops.popcount 0);
  Alcotest.(check int) "popcount 0b1011" 3 (Bitops.popcount 0b1011);
  Alcotest.(check int) "popcount max" 16 (Bitops.popcount 0xFFFF)

let test_parity () =
  Alcotest.(check int) "parity 0" 0 (Bitops.parity 0);
  Alcotest.(check int) "parity 0b111" 1 (Bitops.parity 0b111);
  Alcotest.(check int) "parity 0b1111" 0 (Bitops.parity 0b1111)

let test_bit_ops () =
  Alcotest.(check bool) "bit set" true (Bitops.bit 0b100 2);
  Alcotest.(check bool) "bit clear" false (Bitops.bit 0b100 1);
  Alcotest.(check int) "set_bit on" 0b110 (Bitops.set_bit 0b100 1 true);
  Alcotest.(check int) "set_bit off" 0b100 (Bitops.set_bit 0b110 1 false);
  Alcotest.(check int) "flip" 0b101 (Bitops.flip_bit 0b100 0)

let test_mask () =
  Alcotest.(check int) "mask 0" 0 (Bitops.mask 0);
  Alcotest.(check int) "mask 4" 15 (Bitops.mask 4)

let test_gray () =
  (* successive Gray codes differ in exactly one bit *)
  for i = 0 to 254 do
    let d = Bitops.gray i lxor Bitops.gray (i + 1) in
    Alcotest.(check int) "gray adjacency" 1 (Bitops.popcount d)
  done

let test_trailing_zeros () =
  Alcotest.(check int) "tz 1" 0 (Bitops.trailing_zeros 1);
  Alcotest.(check int) "tz 8" 3 (Bitops.trailing_zeros 8);
  Alcotest.(check int) "tz 12" 2 (Bitops.trailing_zeros 12);
  Alcotest.check_raises "tz 0" (Invalid_argument "Bitops.trailing_zeros: zero") (fun () ->
      ignore (Bitops.trailing_zeros 0))

let test_bits_of () =
  Alcotest.(check (list int)) "bits_of" [ 0; 2; 3 ] (Bitops.bits_of 0b1101 4);
  Alcotest.(check (list int)) "bits_of truncated" [ 0; 2 ] (Bitops.bits_of 0b1101 3);
  Alcotest.(check (list int)) "bits_of empty" [] (Bitops.bits_of 0 8)

let test_fold_bits () =
  let collected = Bitops.fold_bits (fun acc i -> i :: acc) [] 0b10110 in
  Alcotest.(check (list int)) "fold order lsb-first" [ 4; 2; 1 ] collected

let test_insert_remove () =
  (* remove_bit inverts insert_bit at every position and value *)
  for x = 0 to 63 do
    for i = 0 to 5 do
      Alcotest.(check int) "remove/insert false" x (Bitops.remove_bit (Bitops.insert_bit x i false) i);
      Alcotest.(check int) "remove/insert true" x (Bitops.remove_bit (Bitops.insert_bit x i true) i);
      Alcotest.(check bool) "inserted bit value" true
        (Bitops.bit (Bitops.insert_bit x i true) i)
    done
  done

let test_log2_ceil () =
  Alcotest.(check int) "log2 1" 0 (Bitops.log2_ceil 1);
  Alcotest.(check int) "log2 2" 1 (Bitops.log2_ceil 2);
  Alcotest.(check int) "log2 3" 2 (Bitops.log2_ceil 3);
  Alcotest.(check int) "log2 1024" 10 (Bitops.log2_ceil 1024);
  Alcotest.(check int) "log2 1025" 11 (Bitops.log2_ceil 1025)

let test_int64_popcount () =
  Alcotest.(check int) "i64 popcount 0" 0 (Bitops.int64_popcount 0L);
  Alcotest.(check int) "i64 popcount -1" 64 (Bitops.int64_popcount (-1L));
  Alcotest.(check int) "i64 popcount pattern" 32 (Bitops.int64_popcount 0x5555555555555555L)

let prop_popcount_split =
  Helpers.prop "popcount(a|b) + popcount(a&b) = popcount a + popcount b"
    QCheck2.Gen.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (a, b) ->
      Bitops.popcount (a lor b) + Bitops.popcount (a land b)
      = Bitops.popcount a + Bitops.popcount b)

let prop_insert_bit_order =
  Helpers.prop "insert_bit preserves relative bit order"
    QCheck2.Gen.(pair (int_bound 255) (int_bound 7))
    (fun (x, i) ->
      let y = Bitops.insert_bit x i false in
      Bitops.remove_bit y i = x && not (Bitops.bit y i))

let () =
  Alcotest.run "bitops"
    [ ( "bitops",
        [ Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "bit set/clear/flip" `Quick test_bit_ops;
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "gray codes" `Quick test_gray;
          Alcotest.test_case "trailing zeros" `Quick test_trailing_zeros;
          Alcotest.test_case "bits_of" `Quick test_bits_of;
          Alcotest.test_case "fold_bits" `Quick test_fold_bits;
          Alcotest.test_case "insert/remove bit" `Quick test_insert_remove;
          Alcotest.test_case "log2_ceil" `Quick test_log2_ceil;
          Alcotest.test_case "int64 popcount" `Quick test_int64_popcount;
          prop_popcount_split;
          prop_insert_bit_order ] ) ]
