open Rev
module Perm = Logic.Perm

let test_swap_pattern_minimized () =
  (* three CNOTs + a redundant one on two lines: the window engine finds
     the 2-gate minimum for the combined permutation *)
  let c = Rcircuit.of_gates 4 [ Mct.cnot 0 1; Mct.cnot 1 0; Mct.cnot 0 1; Mct.cnot 0 1 ] in
  let p = Rsim.to_perm c in
  let c' = Resynth.optimize c in
  Alcotest.(check bool) "function preserved" true (Rsim.realizes c' p);
  Alcotest.(check int) "minimal window" 2 (Rcircuit.num_gates c')

let test_identity_window_vanishes () =
  (* a gate followed by itself across a commuting neighbour *)
  let g = Mct.toffoli 0 1 2 in
  let c = Rcircuit.of_gates 3 [ g; g ] in
  Alcotest.(check int) "cancelled" 0 (Rcircuit.num_gates (Resynth.optimize c))

let test_wide_gates_untouched () =
  (* windows never cover gates whose support exceeds max_lines *)
  let g = Mct.of_controls [ (0, true); (1, true); (2, true) ] 3 in
  let c = Rcircuit.of_gates 4 [ g; g ] in
  (* support is 4 lines: the window engine skips, so both gates remain
     (Rsimp would cancel them — the passes are complementary) *)
  let c' = Resynth.optimize c in
  Alcotest.(check bool) "function preserved" true
    (Perm.equal (Rsim.to_perm c) (Rsim.to_perm c'))

let test_improves_cycle_synthesis () =
  (* cycle-based synthesis is gate-hungry; resynthesis recovers some *)
  let p = Logic.Funcgen.hwb 4 in
  let c = Cycle_synth.synth p in
  let c' = Resynth.optimize (Rsimp.simplify c) in
  Alcotest.(check bool) "still realizes hwb4" true (Rsim.realizes c' p);
  Alcotest.(check bool) "strictly smaller than raw cycle output" true
    (Rcircuit.num_gates c' < Rcircuit.num_gates c)

let test_exact_output_is_fixpoint () =
  (* a minimal circuit cannot be improved *)
  let p = Perm.random (Helpers.rng 3) 3 in
  let c = Exact_synth.synth p in
  Alcotest.(check int) "fixpoint" (Rcircuit.num_gates c)
    (Rcircuit.num_gates (Resynth.optimize c))

let prop_preserves_function =
  Helpers.prop "resynthesis preserves the permutation" ~count:80
    (Helpers.rcircuit_gen 5 12)
    (fun c -> Perm.equal (Rsim.to_perm c) (Rsim.to_perm (Resynth.optimize c)))

let prop_never_grows =
  Helpers.prop "resynthesis never grows" (Helpers.rcircuit_gen 5 12) (fun c ->
      Rcircuit.num_gates (Resynth.optimize c) <= Rcircuit.num_gates c)

let prop_composes_with_rsimp =
  Helpers.prop "rsimp then resynth preserves and never grows" ~count:50
    (Helpers.rcircuit_gen 4 12)
    (fun c ->
      let c' = Resynth.optimize (Rsimp.simplify c) in
      Perm.equal (Rsim.to_perm c) (Rsim.to_perm c')
      && Rcircuit.num_gates c' <= Rcircuit.num_gates c)

let test_shell_command () =
  let out = Core.Shell.run_script "revgen hwb 4; cycle; revsimp; resynth; verify" in
  Alcotest.(check bool) "shell resynth verifies" true
    (Helpers.contains ~needle:"verify: reversible circuit OK" out);
  Alcotest.(check bool) "resynth line present" true (Helpers.contains ~needle:"resynth:" out)

let () =
  Alcotest.run "resynth"
    [ ( "resynth",
        [ Alcotest.test_case "swap pattern" `Quick test_swap_pattern_minimized;
          Alcotest.test_case "identity window" `Quick test_identity_window_vanishes;
          Alcotest.test_case "wide gates untouched" `Quick test_wide_gates_untouched;
          Alcotest.test_case "improves cycle synthesis" `Quick test_improves_cycle_synthesis;
          Alcotest.test_case "exact output is a fixpoint" `Quick test_exact_output_is_fixpoint;
          Alcotest.test_case "shell command" `Quick test_shell_command;
          prop_preserves_function;
          prop_never_grows;
          prop_composes_with_rsimp ] ) ]
