open Rev
module Perm = Logic.Perm

let exhaustive_n2 () =
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun r -> x :: r) (perms (List.filter (( <> ) x) l))) l
  in
  List.iter
    (fun pts ->
      let p = Perm.of_list pts in
      Alcotest.(check bool) "dbs" true (Rsim.realizes (Dbs.synth p) p))
    (perms [ 0; 1; 2; 3 ])

let test_identity () =
  Alcotest.(check int) "identity has no gates" 0 (Rcircuit.num_gates (Dbs.synth (Perm.identity 4)))

let test_paper_permutation () =
  (* Fig. 7's pi, synthesized as in the paper's line 29 (synth=revkit.dbs) *)
  let p = Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ] in
  let c = Dbs.synth p in
  Alcotest.(check bool) "realizes paper pi" true (Rsim.realizes c p)

let test_all_gates_single_target_structure () =
  (* every gate produced for variable-v processing targets some line; a
     target's control mask never includes the target *)
  let p = Perm.random (Helpers.rng 5) 5 in
  let c = Dbs.synth p in
  List.iter
    (fun (g : Mct.t) ->
      Alcotest.(check bool) "no self control" true
        ((g.Mct.pos lor g.Mct.neg) land (1 lsl g.Mct.target) = 0))
    (Rcircuit.gates c)

let test_linear_perm_cheap () =
  (* the Gray-code permutation is linear; DBS should find a CNOT-only
     realization (all gates with at most 1 control) *)
  let p = Logic.Funcgen.gray_code 4 in
  let c = Dbs.synth p in
  Alcotest.(check bool) "realizes" true (Rsim.realizes c p);
  List.iter
    (fun (g : Mct.t) ->
      Alcotest.(check bool) "at most 1 control" true (Mct.num_controls g <= 1))
    (Rcircuit.gates c)

let prop_roundtrip n =
  Helpers.prop
    (Printf.sprintf "DBS round-trips on %d variables" n)
    ~count:(if n >= 6 then 15 else 60)
    (Helpers.perm_gen n)
    (fun p -> Rsim.realizes (Dbs.synth p) p)

let prop_hwb_family () =
  for n = 2 to 7 do
    let p = Logic.Funcgen.hwb n in
    Alcotest.(check bool) (Printf.sprintf "hwb%d" n) true (Rsim.realizes (Dbs.synth p) p)
  done

let test_smaller_than_tbs_at_scale () =
  (* the E5 shape: DBS beats TBS in quantum cost for larger n, on average *)
  let st = Helpers.rng 11 in
  let dbs_cost = ref 0 and tbs_cost = ref 0 in
  for _ = 1 to 10 do
    let p = Perm.random st 6 in
    let cost c = (Rcircuit.stats c).Rcircuit.quantum_cost in
    dbs_cost := !dbs_cost + cost (Dbs.synth p);
    tbs_cost := !tbs_cost + cost (Tbs.synth p)
  done;
  Alcotest.(check bool) "dbs cheaper on average at n=6" true (!dbs_cost < !tbs_cost)

let () =
  Alcotest.run "dbs"
    [ ( "dbs",
        [ Alcotest.test_case "exhaustive n=2" `Quick exhaustive_n2;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "paper permutation" `Quick test_paper_permutation;
          Alcotest.test_case "gate structure" `Quick test_all_gates_single_target_structure;
          Alcotest.test_case "linear permutations stay linear" `Quick test_linear_perm_cheap;
          Alcotest.test_case "hwb family" `Quick prop_hwb_family;
          prop_roundtrip 3;
          prop_roundtrip 4;
          prop_roundtrip 6;
          Alcotest.test_case "cheaper than TBS at scale" `Quick
            test_smaller_than_tbs_at_scale ] ) ]
