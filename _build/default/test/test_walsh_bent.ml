open Logic

let test_transform_constant () =
  (* W of constant 0 is (2^n, 0, 0, …) *)
  let w = Walsh.transform (Truth_table.create 3) in
  Alcotest.(check int) "dc term" 8 w.(0);
  for i = 1 to 7 do
    Alcotest.(check int) "off terms" 0 w.(i)
  done

let test_transform_linear () =
  (* W of the linear function <a,x> is concentrated at a, with weight +2^n
     (f(x) and <a,x> cancel there) *)
  let a = 0b101 in
  let f = Truth_table.of_fun 3 (fun x -> Bitops.parity (x land a) = 1) in
  let w = Walsh.transform f in
  Array.iteri
    (fun i wi -> Alcotest.(check int) "linear spectrum" (if i = a then 8 else 0) wi)
    w

let test_parseval () =
  let st = Helpers.rng 17 in
  for _ = 1 to 20 do
    let f = Truth_table.random st 4 in
    let w = Walsh.transform f in
    let sum = Array.fold_left (fun acc x -> acc + (x * x)) 0 w in
    Alcotest.(check int) "Parseval" (16 * 16) sum
  done

let test_inner_product_bent () =
  for n = 1 to 4 do
    let f = Bent.inner_product n in
    Alcotest.(check bool) "ip bent" true (Walsh.is_bent f);
    Helpers.check_tt_eq "ip self-dual" f (Walsh.dual f);
    let fa = Bent.inner_product_adjacent n in
    Alcotest.(check bool) "adjacent ip bent" true (Walsh.is_bent fa);
    Helpers.check_tt_eq "adjacent ip self-dual" fa (Walsh.dual fa)
  done

let test_not_bent () =
  Alcotest.(check bool) "odd arity never bent" false (Walsh.is_bent (Funcgen.majority 3));
  Alcotest.(check bool) "linear not bent" false (Walsh.is_bent (Funcgen.parity 4));
  Alcotest.(check bool) "constant not bent" false (Walsh.is_bent (Truth_table.create 4));
  match Walsh.dual (Funcgen.parity 4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dual of non-bent accepted"

let test_dual_involution () =
  let st = Helpers.rng 23 in
  for _ = 1 to 10 do
    let i = Bent.random_mm st 2 in
    let f = Bent.mm_function i in
    Helpers.check_tt_eq "dual of dual" f (Walsh.dual (Walsh.dual f))
  done

let test_mm_dual_formula () =
  let st = Helpers.rng 31 in
  for _ = 1 to 10 do
    let i = Bent.random_mm st 3 in
    let f = Bent.mm_function i in
    Alcotest.(check bool) "mm bent" true (Walsh.is_bent f);
    Helpers.check_tt_eq "closed-form dual matches Walsh dual" (Walsh.dual f) (Bent.mm_dual i)
  done

let test_paper_instance () =
  (* pi = [0,2,3,5,7,1,4,6], h = 0 (paper Fig. 7) *)
  let i = Bent.mm (Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ]) in
  let f = Bent.mm_function i in
  Alcotest.(check bool) "paper mm bent" true (Walsh.is_bent f);
  Helpers.check_tt_eq "paper dual" (Walsh.dual f) (Bent.mm_dual i)

let test_interleave () =
  for z = 0 to 63 do
    Alcotest.(check int) "deinterleave inverts interleave" z
      (Bent.deinterleave 3 (Bent.interleave 3 z))
  done;
  (* interleave maps (x,y) = (1, 0) to qubit line 0 *)
  Alcotest.(check int) "x0 to line 0" 1 (Bent.interleave 3 1);
  Alcotest.(check int) "y0 to line 1" 2 (Bent.interleave 3 (1 lsl 3))

let test_interleave_table_bent () =
  let st = Helpers.rng 7 in
  let i = Bent.random_mm st 2 in
  let f = Bent.mm_function i in
  let fi = Bent.interleave_table 2 f in
  Alcotest.(check bool) "interleaving preserves bentness" true (Walsh.is_bent fi)

let test_correlation () =
  let f = Funcgen.parity 4 in
  Alcotest.(check (float 1e-12)) "self correlation" 1. (Walsh.correlation f f);
  Alcotest.(check (float 1e-12)) "anti correlation" (-1.)
    (Walsh.correlation f (Truth_table.not_ f))

let prop_shift_preserves_bent =
  Helpers.prop "shifting preserves bentness"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 15))
    (fun (seed, s) ->
      let i = Bent.random_mm (Helpers.rng seed) 2 in
      let f = Bent.mm_function i in
      Walsh.is_bent (Bent.shifted f s))

let prop_mm_always_bent =
  Helpers.prop "Maiorana-McFarland functions are bent"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed -> Walsh.is_bent (Bent.mm_function (Bent.random_mm (Helpers.rng seed) 2)))

let () =
  Alcotest.run "walsh_bent"
    [ ( "walsh",
        [ Alcotest.test_case "constant spectrum" `Quick test_transform_constant;
          Alcotest.test_case "linear spectrum" `Quick test_transform_linear;
          Alcotest.test_case "Parseval" `Quick test_parseval;
          Alcotest.test_case "correlation" `Quick test_correlation ] );
      ( "bent",
        [ Alcotest.test_case "inner product" `Quick test_inner_product_bent;
          Alcotest.test_case "non-bent rejections" `Quick test_not_bent;
          Alcotest.test_case "dual involution" `Quick test_dual_involution;
          Alcotest.test_case "MM dual closed form" `Quick test_mm_dual_formula;
          Alcotest.test_case "paper instance" `Quick test_paper_instance;
          Alcotest.test_case "interleave" `Quick test_interleave;
          Alcotest.test_case "interleaved stays bent" `Quick test_interleave_table_bent;
          prop_shift_preserves_bent;
          prop_mm_always_bent ] ) ]
