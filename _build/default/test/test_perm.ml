open Logic

let test_of_list_validation () =
  let p = Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ] in
  Alcotest.(check int) "n" 3 (Perm.num_vars p);
  Alcotest.(check int) "apply" 5 (Perm.apply p 3);
  (match Perm.of_list [ 0; 1; 1; 3 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "not injective accepted");
  (match Perm.of_list [ 0; 1; 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad length accepted");
  match Perm.of_list [ 0; 4 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range accepted"

let test_identity () =
  let p = Perm.identity 3 in
  Alcotest.(check bool) "is identity" true (Perm.is_identity p);
  Alcotest.(check bool) "xor_shift 0 is identity" true (Perm.is_identity (Perm.xor_shift 3 0))

let test_inverse_compose () =
  let p = Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ] in
  let q = Perm.inverse p in
  Alcotest.(check bool) "p ∘ p⁻¹ = id" true (Perm.is_identity (Perm.compose p q));
  Alcotest.(check bool) "p⁻¹ ∘ p = id" true (Perm.is_identity (Perm.compose q p))

let test_xor_shift () =
  let p = Perm.xor_shift 4 0b1010 in
  Alcotest.(check int) "shift" 0b1010 (Perm.apply p 0);
  Alcotest.(check bool) "involutive" true (Perm.is_identity (Perm.compose p p))

let test_cycles () =
  let p = Perm.of_list [ 1; 0; 3; 2 ] in
  Alcotest.(check (list (list int))) "two transpositions" [ [ 0; 1 ]; [ 2; 3 ] ] (Perm.cycles p);
  Alcotest.(check int) "even parity" 0 (Perm.parity p);
  let q = Perm.of_list [ 1; 2; 0; 3 ] in
  Alcotest.(check (list (list int))) "3-cycle" [ [ 0; 1; 2 ] ] (Perm.cycles q);
  Alcotest.(check int) "3-cycle even" 0 (Perm.parity q);
  Alcotest.(check (list (list int))) "identity has no cycles" [] (Perm.cycles (Perm.identity 2))

let test_output_bit () =
  let p = Funcgen.gray_code 4 in
  for j = 0 to 3 do
    let tt = Perm.output_bit p j in
    for x = 0 to 15 do
      Alcotest.(check bool) "output bit" (Bitops.bit (Perm.apply p x) j) (Truth_table.get tt x)
    done
  done

let prop_random_is_perm =
  Helpers.prop "random permutations are valid and invertible" (Helpers.perm_gen 6) (fun p ->
      Perm.is_identity (Perm.compose p (Perm.inverse p)))

let prop_compose_assoc =
  Helpers.prop "composition is associative"
    QCheck2.Gen.(triple (Helpers.perm_gen 4) (Helpers.perm_gen 4) (Helpers.perm_gen 4))
    (fun (a, b, c) ->
      Perm.equal (Perm.compose (Perm.compose a b) c) (Perm.compose a (Perm.compose b c)))

let prop_parity_multiplicative =
  Helpers.prop "parity of a product is the sum of parities"
    QCheck2.Gen.(pair (Helpers.perm_gen 4) (Helpers.perm_gen 4))
    (fun (a, b) -> Perm.parity (Perm.compose a b) = (Perm.parity a + Perm.parity b) land 1)

let prop_cycles_partition =
  Helpers.prop "cycles partition the non-fixed points" (Helpers.perm_gen 5) (fun p ->
      let moved = List.concat (Perm.cycles p) in
      let sorted = List.sort compare moved in
      let expected =
        List.filter (fun x -> Perm.apply p x <> x) (List.init (Perm.size p) Fun.id)
      in
      sorted = expected && List.length moved = List.length (List.sort_uniq compare moved))

let () =
  Alcotest.run "perm"
    [ ( "perm",
        [ Alcotest.test_case "of_list validation" `Quick test_of_list_validation;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "inverse/compose" `Quick test_inverse_compose;
          Alcotest.test_case "xor shift" `Quick test_xor_shift;
          Alcotest.test_case "cycles/parity" `Quick test_cycles;
          Alcotest.test_case "output bits" `Quick test_output_bit;
          prop_random_is_perm;
          prop_compose_assoc;
          prop_parity_multiplicative;
          prop_cycles_partition ] ) ]
