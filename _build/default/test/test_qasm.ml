open Qc

let sample =
  Circuit.of_gates 3
    [ Gate.H 0; Gate.Cnot (0, 1); Gate.T 2; Gate.Tdg 0; Gate.S 1; Gate.Sdg 2;
      Gate.X 0; Gate.Y 1; Gate.Z 2; Gate.Cz (0, 2); Gate.Swap (1, 2);
      Gate.Rz (0.125, 1); Gate.Ccx (0, 1, 2) ]

let test_header () =
  let text = Qasm.to_string sample in
  Alcotest.(check bool) "version line" true
    (String.length text > 12 && String.sub text 0 12 = "OPENQASM 2.0");
  Alcotest.(check bool) "qelib include" true
    (Helpers.contains ~needle:"qelib1.inc" text)

let test_measure_flag () =
  let with_m = Qasm.to_string ~measure:true sample in
  let without = Qasm.to_string ~measure:false sample in
  Alcotest.(check bool) "measures present" true (Helpers.contains ~needle:"measure" with_m);
  Alcotest.(check bool) "no measures" false (Helpers.contains ~needle:"measure" without)

let test_roundtrip () =
  let parsed = Qasm.parse (Qasm.to_string sample) in
  Alcotest.(check int) "qubits" 3 (Circuit.num_qubits parsed);
  Alcotest.(check bool) "gates identical" true (Circuit.gates parsed = Circuit.gates sample)

let test_roundtrip_rz_precision () =
  let c = Circuit.of_gates 1 [ Gate.Rz (Float.pi /. 3., 0) ] in
  match Circuit.gates (Qasm.parse (Qasm.to_string c)) with
  | [ Gate.Rz (a, 0) ] -> Alcotest.(check (float 1e-15)) "angle survives" (Float.pi /. 3.) a
  | _ -> Alcotest.fail "rz lost"

let test_unsupported () =
  let c = Circuit.of_gates 4 [ Gate.Mcx ([ 0; 1; 2 ], 3) ] in
  match Qasm.to_string c with
  | exception Qasm.Unsupported _ -> ()
  | _ -> Alcotest.fail "mcx should be rejected before lowering"

let test_parse_comments_and_blanks () =
  let text = "OPENQASM 2.0;\nqreg q[2];\n// a comment\n\nh q[0]; \ncx q[0],q[1];\n" in
  let c = Qasm.parse text in
  Alcotest.(check bool) "parsed" true
    (Circuit.gates c = [ Gate.H 0; Gate.Cnot (0, 1) ])

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Qasm.parse bad with
      | exception Qasm.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" bad)
    [ "qreg q[2];\nfrobnicate q[0];\n"; "qreg q[2];\nh nonsense;\n" ]

let test_compiled_flow_exports () =
  (* the full pipeline output is always exportable *)
  let qc, _ = Clifford_t.compile_rcircuit (Rev.Tbs.synth (Logic.Funcgen.hwb 4)) in
  let parsed = Qasm.parse (Qasm.to_string qc) in
  Alcotest.(check int) "same gate count" (Circuit.num_gates qc) (Circuit.num_gates parsed)

let prop_roundtrip =
  Helpers.prop "qasm roundtrips random Clifford+T circuits"
    (Helpers.qcircuit_gen ~diagonals:false 4 20)
    (fun c -> Circuit.gates (Qasm.parse (Qasm.to_string c)) = Circuit.gates c)

(* ---- Q# generation ---- *)

let test_qsharp_structure () =
  let c = Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1); Gate.Tdg 2 ] in
  let text = Qsharp_gen.operation ~name:"MyOracle" c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Helpers.contains ~needle text))
    [ "namespace"; "operation MyOracle (qubits : Qubit[]) : ()"; "body {";
      "H(qubits[0]);"; "CNOT(qubits[0], qubits[1]);"; "(Adjoint T)(qubits[2]);";
      "adjoint auto"; "controlled auto"; "controlled adjoint auto" ]

let test_qsharp_paper_fig10 () =
  (* the Fig. 10 flow: synthesize the paper's pi and emit Q# *)
  let pi = Logic.Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ] in
  let qc, _ = Clifford_t.compile_rcircuit (Rev.Tbs.synth pi) in
  let text = Qsharp_gen.operation ~name:"PermutationOracle" qc in
  Alcotest.(check bool) "has T gates like Fig. 10" true
    (Helpers.contains ~needle:"T(qubits[" text);
  Alcotest.(check bool) "has CNOTs" true (Helpers.contains ~needle:"CNOT(" text)

let () =
  Alcotest.run "qasm"
    [ ( "qasm",
        [ Alcotest.test_case "header" `Quick test_header;
          Alcotest.test_case "measure flag" `Quick test_measure_flag;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "rz precision" `Quick test_roundtrip_rz_precision;
          Alcotest.test_case "unsupported gates" `Quick test_unsupported;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "compiled flow exports" `Quick test_compiled_flow_exports;
          prop_roundtrip ] );
      ( "qsharp",
        [ Alcotest.test_case "operation structure" `Quick test_qsharp_structure;
          Alcotest.test_case "paper Fig. 10 flow" `Quick test_qsharp_paper_fig10 ] ) ]
