open Qc

let complex_eq ?(eps = 1e-12) (a : Complex.t) (b : Complex.t) =
  Float.abs (a.re -. b.re) < eps && Float.abs (a.im -. b.im) < eps

let test_init () =
  let s = Statevector.init 3 in
  Alcotest.(check (float 1e-12)) "all weight on |000>" 1. (Statevector.prob s 0);
  Alcotest.(check (float 1e-12)) "norm" 1. (Statevector.norm2 s)

let test_x_z () =
  let s = Statevector.init 2 in
  Statevector.apply s (Gate.X 1);
  Alcotest.(check bool) "|10>" true (Statevector.is_basis_state s 0b10);
  Statevector.apply s (Gate.Z 1);
  Alcotest.(check bool) "Z phase on |1>" true
    (complex_eq (Statevector.amplitude s 0b10) Complex.{ re = -1.; im = 0. })

let test_hadamard () =
  let s = Statevector.init 1 in
  Statevector.apply s (Gate.H 0);
  Alcotest.(check (float 1e-12)) "p0" 0.5 (Statevector.prob s 0);
  Alcotest.(check (float 1e-12)) "p1" 0.5 (Statevector.prob s 1);
  Statevector.apply s (Gate.H 0);
  Alcotest.(check bool) "HH = I" true (Statevector.is_basis_state s 0)

let test_bell () =
  let s = Statevector.run (Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ]) in
  Alcotest.(check (float 1e-12)) "p(00)" 0.5 (Statevector.prob s 0);
  Alcotest.(check (float 1e-12)) "p(11)" 0.5 (Statevector.prob s 3);
  Alcotest.(check (float 1e-12)) "p(01)" 0. (Statevector.prob s 1)

let test_phase_gates () =
  (* T|+> then T†|+> returns to |+>; S = T^2; Z = S^2 *)
  let s = Statevector.init 1 in
  Statevector.apply s (Gate.H 0);
  Statevector.apply s (Gate.T 0);
  Statevector.apply s (Gate.T 0);
  let s2 = Statevector.init 1 in
  Statevector.apply s2 (Gate.H 0);
  Statevector.apply s2 (Gate.S 0);
  Alcotest.(check bool) "TT = S" true (Statevector.equal_up_to_phase s s2);
  Statevector.apply s (Gate.Sdg 0);
  Statevector.apply s (Gate.H 0);
  Alcotest.(check bool) "returns to |0>" true (Statevector.is_basis_state s 0)

let test_rz_matches_t () =
  (* Rz(pi/4) equals T up to global phase *)
  let a = Statevector.init 1 in
  Statevector.apply a (Gate.H 0);
  Statevector.apply a (Gate.Rz (Float.pi /. 4., 0));
  let b = Statevector.init 1 in
  Statevector.apply b (Gate.H 0);
  Statevector.apply b (Gate.T 0);
  Alcotest.(check bool) "rz(pi/4) ~ T" true (Statevector.equal_up_to_phase a b)

let test_y_gate () =
  let s = Statevector.init 1 in
  Statevector.apply s (Gate.Y 0);
  Alcotest.(check bool) "Y|0> = i|1>" true
    (complex_eq (Statevector.amplitude s 1) Complex.{ re = 0.; im = 1. })

let test_swap () =
  let s = Statevector.init 3 in
  Statevector.apply s (Gate.X 0);
  Statevector.apply s (Gate.Swap (0, 2));
  Alcotest.(check bool) "swapped" true (Statevector.is_basis_state s 0b100)

let test_toffoli_mcx () =
  let s = Statevector.init 4 in
  Statevector.apply s (Gate.X 0);
  Statevector.apply s (Gate.X 1);
  Statevector.apply s (Gate.X 2);
  Statevector.apply s (Gate.Mcx ([ 0; 1; 2 ], 3));
  Alcotest.(check bool) "mcx fires" true (Statevector.is_basis_state s 0b1111);
  Statevector.apply s (Gate.X 1);
  Statevector.apply s (Gate.Mcx ([ 0; 1; 2 ], 3));
  Alcotest.(check bool) "mcx blocked" true (Statevector.is_basis_state s 0b1101)

let test_cz_ccz () =
  let s = Statevector.init 2 in
  Statevector.apply s (Gate.X 0);
  Statevector.apply s (Gate.X 1);
  Statevector.apply s (Gate.Cz (0, 1));
  Alcotest.(check bool) "cz phase" true
    (complex_eq (Statevector.amplitude s 3) Complex.{ re = -1.; im = 0. });
  (* CZ is symmetric *)
  let a = Statevector.run (Circuit.of_gates 2 [ Gate.H 0; Gate.H 1; Gate.Cz (0, 1) ]) in
  let b = Statevector.run (Circuit.of_gates 2 [ Gate.H 0; Gate.H 1; Gate.Cz (1, 0) ]) in
  Alcotest.(check bool) "cz symmetric" true (Statevector.equal_up_to_phase a b)

let test_sample_deterministic () =
  let s = Statevector.init 3 in
  Statevector.apply s (Gate.X 1);
  let st = Helpers.rng 1 in
  for _ = 1 to 20 do
    Alcotest.(check int) "deterministic sample" 0b010 (Statevector.sample st s)
  done

let test_sample_distribution () =
  let s = Statevector.run (Circuit.of_gates 1 [ Gate.H 0 ]) in
  let st = Helpers.rng 2 in
  let ones = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Statevector.sample st s = 1 then incr ones
  done;
  let f = Float.of_int !ones /. Float.of_int n in
  Alcotest.(check bool) "roughly balanced" true (f > 0.4 && f < 0.6)

let test_most_likely () =
  let s = Statevector.run (Circuit.of_gates 2 [ Gate.X 1 ]) in
  Alcotest.(check int) "most likely" 0b10 (Statevector.most_likely s)

(* ---- unitary extraction ---- *)

let test_unitary_identity () =
  let u = Unitary.of_circuit (Circuit.of_gates 2 [ Gate.H 0; Gate.H 0 ]) in
  let id = Unitary.of_circuit (Circuit.empty 2) in
  Alcotest.(check bool) "HH = I" true (Unitary.equal u id)

let test_unitary_global_phase () =
  (* Z X Z X = -I: equal to identity only up to phase *)
  let c = Circuit.of_gates 1 [ Gate.Z 0; Gate.X 0; Gate.Z 0; Gate.X 0 ] in
  let u = Unitary.of_circuit c and id = Unitary.of_circuit (Circuit.empty 1) in
  Alcotest.(check bool) "not exactly I" false (Unitary.equal u id);
  Alcotest.(check bool) "I up to phase" true (Unitary.equal_up_to_phase u id)

let test_is_permutation () =
  let c = Circuit.of_gates 2 [ Gate.X 0; Gate.Cnot (0, 1) ] in
  (match Unitary.is_permutation (Unitary.of_circuit c) with
  | Some p -> Alcotest.(check bool) "classical circuit" true (p.(0) = 3)
  | None -> Alcotest.fail "permutation not detected");
  match Unitary.is_permutation (Unitary.of_circuit (Circuit.of_gates 1 [ Gate.H 0 ])) with
  | None -> ()
  | Some _ -> Alcotest.fail "H is not a permutation"

let prop_norm_preserved =
  Helpers.prop "circuits preserve the norm" (Helpers.qcircuit_gen 4 20) (fun c ->
      Float.abs (Statevector.norm2 (Statevector.run c) -. 1.) < 1e-9)

let prop_dagger_cancels =
  Helpers.prop "running U then U-dagger returns to |0…0>" (Helpers.qcircuit_gen 3 12)
    (fun c ->
      let s = Statevector.run (Circuit.append c (Circuit.dagger c)) in
      Statevector.is_basis_state ~eps:1e-9 s 0)

let prop_classical_circuits_are_permutations =
  Helpers.prop "X/CNOT/Toffoli circuits act classically"
    (QCheck2.Gen.map
       (fun seed ->
         let st = Helpers.rng seed in
         Circuit.of_gates 3
           (List.init 10 (fun _ ->
                match Random.State.int st 3 with
                | 0 -> Gate.X (Random.State.int st 3)
                | 1 ->
                    let a = Random.State.int st 3 in
                    Gate.Cnot (a, (a + 1) mod 3)
                | _ -> Gate.Ccx (0, 1, 2))))
       QCheck2.Gen.(int_bound 100000))
    (fun c -> Unitary.is_permutation (Unitary.of_circuit c) <> None)

let () =
  Alcotest.run "statevector"
    [ ( "statevector",
        [ Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "X/Z" `Quick test_x_z;
          Alcotest.test_case "hadamard" `Quick test_hadamard;
          Alcotest.test_case "bell state" `Quick test_bell;
          Alcotest.test_case "phase gates" `Quick test_phase_gates;
          Alcotest.test_case "rz vs T" `Quick test_rz_matches_t;
          Alcotest.test_case "Y" `Quick test_y_gate;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "toffoli/mcx" `Quick test_toffoli_mcx;
          Alcotest.test_case "cz/ccz" `Quick test_cz_ccz;
          Alcotest.test_case "sampling determinism" `Quick test_sample_deterministic;
          Alcotest.test_case "sampling distribution" `Quick test_sample_distribution;
          Alcotest.test_case "most likely" `Quick test_most_likely;
          prop_norm_preserved;
          prop_dagger_cancels ] );
      ( "unitary",
        [ Alcotest.test_case "identity" `Quick test_unitary_identity;
          Alcotest.test_case "global phase" `Quick test_unitary_global_phase;
          Alcotest.test_case "permutation detection" `Quick test_is_permutation;
          prop_classical_circuits_are_permutations ] ) ]
