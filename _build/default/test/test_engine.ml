module Engine = Pq.Engine
module Oracles = Pq.Oracles
open Qc

let test_allocate () =
  let eng = Engine.create () in
  let a = Engine.allocate_qureg eng 3 in
  let b = Engine.allocate_qureg eng 2 in
  Alcotest.(check (array int)) "first block" [| 0; 1; 2 |] a;
  Alcotest.(check (array int)) "second block" [| 3; 4 |] b;
  Engine.h eng a.(0);
  Alcotest.(check int) "width" 5 (Circuit.num_qubits (Engine.flush eng))

let test_gate_recording_order () =
  let eng = Engine.create () in
  let q = Engine.allocate_qureg eng 2 in
  Engine.h eng q.(0);
  Engine.cnot eng q.(0) q.(1);
  Alcotest.(check bool) "order" true
    (Circuit.gates (Engine.flush eng) = [ Gate.H 0; Gate.Cnot (0, 1) ])

let test_compute_uncompute () =
  (* the Fig. 4 pattern: Compute(H, X); body; Uncompute *)
  let eng = Engine.create () in
  let q = Engine.allocate_qureg eng 2 in
  let blk =
    Engine.compute eng (fun () ->
        Engine.h eng q.(0);
        Engine.x eng q.(1))
  in
  Engine.z eng q.(0);
  Engine.uncompute eng blk;
  Alcotest.(check bool) "sandwich structure" true
    (Circuit.gates (Engine.flush eng)
    = [ Gate.H 0; Gate.X 1; Gate.Z 0; Gate.X 1; Gate.H 0 ])

let test_uncompute_adjoints () =
  let eng = Engine.create () in
  let q = Engine.allocate_qureg eng 1 in
  let blk = Engine.compute eng (fun () -> Engine.t eng q.(0)) in
  Engine.uncompute eng blk;
  Alcotest.(check bool) "T then Tdg" true
    (Circuit.gates (Engine.flush eng) = [ Gate.T 0; Gate.Tdg 0 ])

let test_uncompute_twice_rejected () =
  let eng = Engine.create () in
  let q = Engine.allocate_qureg eng 1 in
  let blk = Engine.compute eng (fun () -> Engine.h eng q.(0)) in
  Engine.uncompute eng blk;
  match Engine.uncompute eng blk with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double uncompute accepted"

let test_dagger () =
  (* Dagger applies the adjoint of the block instead of the block *)
  let eng = Engine.create () in
  let q = Engine.allocate_qureg eng 2 in
  Engine.dagger eng (fun () ->
      Engine.h eng q.(0);
      Engine.s eng q.(0);
      Engine.cnot eng q.(0) q.(1));
  Alcotest.(check bool) "reversed adjoints" true
    (Circuit.gates (Engine.flush eng) = [ Gate.Cnot (0, 1); Gate.Sdg 0; Gate.H 0 ])

let test_dagger_of_dagger () =
  let eng = Engine.create () in
  let q = Engine.allocate_qureg eng 1 in
  Engine.dagger eng (fun () -> Engine.dagger eng (fun () -> Engine.t eng q.(0)));
  Alcotest.(check bool) "double dagger" true (Circuit.gates (Engine.flush eng) = [ Gate.T 0 ])

let test_apply_circuit_mapping () =
  let sub = Circuit.of_gates 2 [ Gate.Cnot (0, 1) ] in
  let eng = Engine.create () in
  let q = Engine.allocate_qureg eng 4 in
  Engine.apply_circuit eng sub [| q.(3); q.(1) |];
  Alcotest.(check bool) "remapped" true
    (Circuit.gates (Engine.flush eng) = [ Gate.Cnot (3, 1) ])

(* ---- oracles ---- *)

let phase_of_oracle tt =
  (* apply the phase oracle to the uniform superposition and read the signs *)
  let n = Logic.Truth_table.num_vars tt in
  let eng = Engine.create () in
  let qs = Engine.allocate_qureg eng n in
  Engine.all Engine.h eng qs;
  Oracles.phase_oracle_tt eng tt qs;
  let sv = Statevector.run (Engine.flush eng) in
  let amp0 = Statevector.amplitude sv 0 in
  (* normalize by the sign convention of x = 0 *)
  let sign_flip = amp0.Complex.re < 0. in
  fun x ->
    let a = Statevector.amplitude sv x in
    (a.Complex.re < 0.) <> sign_flip <> Logic.Truth_table.get tt 0

let test_phase_oracle_semantics () =
  let st = Helpers.rng 77 in
  for _ = 1 to 15 do
    let tt = Logic.Truth_table.random st 4 in
    let phase = phase_of_oracle tt in
    for x = 0 to 15 do
      Alcotest.(check bool) "(-1)^f(x) phase" (Logic.Truth_table.get tt x) (phase x)
    done
  done

let test_phase_oracle_expr () =
  let eng = Engine.create () in
  let qs = Engine.allocate_qureg eng 4 in
  Oracles.phase_oracle eng (Logic.Bexpr.parse "(a and b) ^ (c and d)") qs;
  let c = Engine.flush eng in
  (* the inner-product phase oracle is two CZ gates (order immaterial) *)
  Alcotest.(check bool) "two CZs" true
    (List.sort compare (Circuit.gates c)
    = [ Gate.Cz (0, 1); Gate.Cz (2, 3) ])

let test_permutation_oracle () =
  let st = Helpers.rng 13 in
  List.iter
    (fun synth ->
      for _ = 1 to 5 do
        let pi = Logic.Perm.random st 3 in
        let eng = Engine.create () in
        let qs = Engine.allocate_qureg eng 3 in
        Oracles.permutation_oracle ~synth eng pi qs;
        let c = Engine.flush eng in
        match Unitary.is_permutation (Unitary.of_circuit c) with
        | Some p ->
            for x = 0 to 7 do
              Alcotest.(check int) "permutation realized" (Logic.Perm.apply pi x) p.(x)
            done
        | None -> Alcotest.fail "oracle is not classical"
      done)
    [ Oracles.Tbs; Oracles.Tbs_basic; Oracles.Dbs ]

let test_mm_phase_oracle () =
  (* U_f from the MM construction equals the generic ESOP phase oracle *)
  let st = Helpers.rng 21 in
  for _ = 1 to 5 do
    let mm = Logic.Bent.random_mm st 2 in
    let f_inter = Logic.Bent.interleave_table 2 (Logic.Bent.mm_function mm) in
    let build_mm () =
      let eng = Engine.create () in
      let qs = Engine.allocate_qureg eng 4 in
      let xs = [| qs.(0); qs.(2) |] and ys = [| qs.(1); qs.(3) |] in
      Oracles.mm_phase_oracle eng mm ~xs ~ys;
      Engine.flush eng
    in
    let build_generic () =
      let eng = Engine.create () in
      let qs = Engine.allocate_qureg eng 4 in
      Oracles.phase_oracle_tt eng f_inter qs;
      Engine.flush eng
    in
    Alcotest.(check bool) "mm oracle == generic phase oracle" true
      (Helpers.same_unitary_phase (build_mm ()) (build_generic ()))
  done

let test_mm_dual_phase_oracle () =
  let st = Helpers.rng 22 in
  for _ = 1 to 5 do
    let mm = Logic.Bent.random_mm st 2 in
    let dual_inter = Logic.Bent.interleave_table 2 (Logic.Bent.mm_dual mm) in
    let build_mm () =
      let eng = Engine.create () in
      let qs = Engine.allocate_qureg eng 4 in
      let xs = [| qs.(0); qs.(2) |] and ys = [| qs.(1); qs.(3) |] in
      Oracles.mm_dual_phase_oracle eng mm ~xs ~ys;
      Engine.flush eng
    in
    let build_generic () =
      let eng = Engine.create () in
      let qs = Engine.allocate_qureg eng 4 in
      Oracles.phase_oracle_tt eng dual_inter qs;
      Engine.flush eng
    in
    Alcotest.(check bool) "mm dual oracle == generic dual oracle" true
      (Helpers.same_unitary_phase (build_mm ()) (build_generic ()))
  done

let () =
  Alcotest.run "engine"
    [ ( "engine",
        [ Alcotest.test_case "allocate" `Quick test_allocate;
          Alcotest.test_case "recording order" `Quick test_gate_recording_order;
          Alcotest.test_case "compute/uncompute" `Quick test_compute_uncompute;
          Alcotest.test_case "uncompute adjoints" `Quick test_uncompute_adjoints;
          Alcotest.test_case "double uncompute" `Quick test_uncompute_twice_rejected;
          Alcotest.test_case "dagger" `Quick test_dagger;
          Alcotest.test_case "nested dagger" `Quick test_dagger_of_dagger;
          Alcotest.test_case "apply_circuit" `Quick test_apply_circuit_mapping ] );
      ( "oracles",
        [ Alcotest.test_case "phase oracle semantics" `Quick test_phase_oracle_semantics;
          Alcotest.test_case "paper predicate oracle" `Quick test_phase_oracle_expr;
          Alcotest.test_case "permutation oracle" `Quick test_permutation_oracle;
          Alcotest.test_case "MM phase oracle" `Quick test_mm_phase_oracle;
          Alcotest.test_case "MM dual phase oracle" `Quick test_mm_dual_phase_oracle ] ) ]
