(* Bernstein-Vazirani and Deutsch-Jozsa on the automatic oracle compiler.

   Run with:  dune exec examples/oracle_algorithms_demo.exe

   Both algorithms consume a compiled phase oracle and answer with a single
   query — like the hidden shift, they showcase what the paper's automatic
   flow buys: the user states f, the toolchain builds the circuit. *)

let () =
  (* --- Bernstein-Vazirani: recover a hidden dot-product mask ---------- *)
  print_endline "Bernstein-Vazirani: f(x) = <a, x> + b, one query recovers a";
  List.iter
    (fun (a, b) ->
      let found = Core.Oracle_algorithms.bernstein_vazirani ~n:8 ~a ~b in
      Printf.printf "  hidden a = %3d (b = %b)  ->  measured %3d  %s\n" a b found
        (if found = a then "OK" else "MISMATCH"))
    [ (0b10110101, false); (0b00000001, true); (0b11111111, false); (0, false) ];

  (* the oracle of an affine function compiles to a layer of Z gates *)
  let c = Core.Oracle_algorithms.bv_circuit ~n:8 ~a:0b10110101 ~b:false in
  Printf.printf "  (oracle circuit: %d gates on %d qubits — Z layer inside H sandwich)\n\n"
    (Qc.Circuit.num_gates c) (Qc.Circuit.num_qubits c);

  (* --- Deutsch-Jozsa: constant vs balanced in one query --------------- *)
  print_endline "Deutsch-Jozsa: constant or balanced, one query";
  let show name f =
    let answer =
      match Core.Oracle_algorithms.deutsch_jozsa f with
      | Core.Oracle_algorithms.Constant -> "constant"
      | Core.Oracle_algorithms.Balanced -> "balanced"
    in
    Printf.printf "  %-24s -> %s\n" name answer
  in
  show "f = 0" (Logic.Truth_table.create 4);
  show "f = 1" (Logic.Truth_table.const 4 true);
  show "f = x3" (Logic.Truth_table.var 4 2);
  show "f = parity(x)" (Logic.Funcgen.parity 4);
  show "f = (a & b) ^ c"
    (Logic.Bexpr.to_truth_table ~n:4 (Logic.Bexpr.parse "(a & b) ^ c"))
