(* Grover search on automatically compiled predicate oracles.

   Run with:  dune exec examples/grover_search.exe

   The paper's introduction lists Grover's algorithm as a key consumer of
   automatic oracle compilation (refs [5, 6]): the search predicate must be
   turned into a reversible/phase circuit, and doing that by hand is
   exactly the "design gap" the paper warns about. Here the predicate goes
   through the same ESOP flow as the hidden-shift oracles. *)

let () =
  (* search for the unique assignment satisfying a parsed predicate *)
  let predicate = "a & !b & c & d" in
  let e = Logic.Bexpr.parse predicate in
  let tt = Logic.Bexpr.to_truth_table ~n:4 e in
  let marked = Logic.Truth_table.count_ones tt in
  let iters = Core.Grover.optimal_iterations ~n:4 ~marked in
  Printf.printf "predicate: %s  (%d solution%s among 16)\n" predicate marked
    (if marked = 1 then "" else "s");
  Printf.printf "optimal Grover iterations: %d\n" iters;
  let circuit = Core.Grover.circuit tt in
  Printf.printf "compiled circuit: %d qubits, %d gates\n"
    (Qc.Circuit.num_qubits circuit) (Qc.Circuit.num_gates circuit);
  let p = Core.Grover.success_probability tt in
  Printf.printf "success probability after amplification: %.3f\n" p;
  let found = Core.Grover.search tt in
  Printf.printf "measured: %d -> %s\n\n" found
    (if Logic.Truth_table.get tt found then "satisfies the predicate" else "MISS");

  (* the amplification curve: probability vs iteration count *)
  print_endline "iterations  success probability   (note the overrotation)";
  for k = 0 to 2 * iters + 2 do
    let p = Core.Grover.success_probability ~iterations:k tt in
    let bar = String.make (int_of_float (p *. 40.)) '#' in
    Printf.printf "%6d      %.3f  %s\n" k p bar
  done;

  (* a harder predicate: 3-of-5 threshold, multiple solutions *)
  print_newline ();
  let tt = Logic.Funcgen.threshold 5 5 in
  Printf.printf "threshold predicate (all 5 inputs set): found %d, p = %.3f\n"
    (Core.Grover.search tt)
    (Core.Grover.success_probability tt)
