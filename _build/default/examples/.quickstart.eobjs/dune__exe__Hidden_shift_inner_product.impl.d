examples/hidden_shift_inner_product.ml: Array Logic Pq Printf Qc
