examples/grover_search.mli:
