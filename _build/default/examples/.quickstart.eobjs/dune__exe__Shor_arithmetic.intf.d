examples/shor_arithmetic.mli:
