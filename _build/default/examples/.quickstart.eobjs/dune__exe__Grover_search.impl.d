examples/grover_search.ml: Core Logic Printf Qc String
