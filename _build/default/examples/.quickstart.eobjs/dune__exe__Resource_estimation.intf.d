examples/resource_estimation.mli:
