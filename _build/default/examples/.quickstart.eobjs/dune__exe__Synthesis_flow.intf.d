examples/synthesis_flow.mli:
