examples/phase_estimation.mli:
