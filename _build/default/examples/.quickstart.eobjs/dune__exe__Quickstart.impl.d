examples/quickstart.ml: Array Core Format List Logic Pq Printf Qc String
