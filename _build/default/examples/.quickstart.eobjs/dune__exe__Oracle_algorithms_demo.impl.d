examples/oracle_algorithms_demo.ml: Core List Logic Printf Qc
