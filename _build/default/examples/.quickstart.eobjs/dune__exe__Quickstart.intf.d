examples/quickstart.mli:
