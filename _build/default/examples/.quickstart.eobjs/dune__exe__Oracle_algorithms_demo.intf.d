examples/oracle_algorithms_demo.mli:
