examples/resource_estimation.ml: Core Logic Pq Printf Qc Random
