examples/phase_estimation.ml: Float List Printf Qc
