examples/hidden_shift_mm.mli:
