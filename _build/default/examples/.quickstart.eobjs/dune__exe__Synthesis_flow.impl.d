examples/synthesis_flow.ml: Core Format List Logic Printf Rev
