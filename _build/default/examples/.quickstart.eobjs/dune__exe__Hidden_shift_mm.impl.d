examples/hidden_shift_mm.ml: Array Fmt Logic Pq Printf Qc
