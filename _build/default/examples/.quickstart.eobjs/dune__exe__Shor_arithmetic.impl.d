examples/shor_arithmetic.ml: Core List Logic Printf Qc Rev
