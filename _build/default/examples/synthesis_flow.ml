(* The RevKit command flow of the paper's Eq. (5), three ways:

     revgen hwb 4 ; tbs ; revsimp ; cliffordt ; tpar ; ps

   Run with:  dune exec examples/synthesis_flow.exe

   (a) through the command shell (string in, report out),
   (b) through the library API, with verification,
   (c) as a sweep over benchmark functions and synthesis methods. *)

let () =
  (* --- (a) the shell ------------------------------------------------- *)
  print_endline "=== shell script: revgen hwb 4; tbs; revsimp; cliffordt; tpar; ps";
  print_string (Core.Shell.run_script "revgen hwb 4; tbs; revsimp; cliffordt; tpar; ps; verify");

  (* --- (b) the library API ------------------------------------------- *)
  print_endline "\n=== library API on the same benchmark";
  let p = Logic.Funcgen.hwb 4 in
  let circuit, report = Core.Flow.compile_perm p in
  Format.printf "%a@." Core.Flow.pp_report report;
  Printf.printf "post-optimization verification (Sec. IX): %b\n"
    (Core.Flow.verify_perm p circuit);

  (* --- (c) a sweep ---------------------------------------------------- *)
  print_endline "\n=== synthesis sweep (gates / quantum cost)";
  Printf.printf "%-10s %14s %14s\n" "benchmark" "tbs" "dbs";
  List.iter
    (fun (name, p) ->
      let cost synth =
        let c = synth p in
        let s = Rev.Rcircuit.stats c in
        Printf.sprintf "%5d / %6d" s.Rev.Rcircuit.gate_count s.Rev.Rcircuit.quantum_cost
      in
      Printf.printf "%-10s %14s %14s\n" name (cost Rev.Tbs.synth) (cost Rev.Dbs.synth))
    [ ("hwb4", Logic.Funcgen.hwb 4);
      ("hwb6", Logic.Funcgen.hwb 6);
      ("hwb8", Logic.Funcgen.hwb 8);
      ("cycle6", Logic.Funcgen.cycle_shift 6);
      ("bitrev6", Logic.Funcgen.bit_reverse 6);
      ("gray8", Logic.Funcgen.gray_code 8) ]
