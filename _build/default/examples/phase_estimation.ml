(* Quantum phase estimation on top of the library's QFT.

   Run with:  dune exec examples/phase_estimation.exe

   Estimates the eigenphase of U = diag(1, e^{2pi i phi}) with a t-qubit
   counting register — the workhorse inside Shor's order finding and the
   HHL algorithm the paper's Sec. I discusses. Dyadic phases are recovered
   exactly; generic phases to t bits of precision. *)

let () =
  print_endline "exact recovery of dyadic phases (t = 4):";
  Printf.printf "%10s %10s\n" "phi" "estimate";
  List.iter
    (fun j ->
      let phi = Float.of_int j /. 16. in
      Printf.printf "%10.4f %10.4f\n" phi (Qc.Qpe.estimate ~t:4 ~phi))
    [ 1; 5; 11; 15 ];

  print_endline "\nprecision scaling on phi = 0.31415...:";
  Printf.printf "%3s %12s %12s %14s\n" "t" "estimate" "error" "qubits/gates";
  List.iter
    (fun t ->
      let phi = 0.31415 in
      let est = Qc.Qpe.estimate ~t ~phi in
      let c = Qc.Qpe.circuit ~t ~phi in
      Printf.printf "%3d %12.5f %12.5f %7d/%d\n" t est
        (Float.abs (est -. phi))
        (Qc.Circuit.num_qubits c) (Qc.Circuit.num_gates c))
    [ 2; 4; 6; 8; 10 ];

  (* the error halves per extra counting qubit — t bits of phase *)
  print_endline "\n(each extra counting qubit adds one bit of precision)";

  (* QFT adders as a bonus: the same Fourier machinery does arithmetic *)
  print_endline "\nDraper constant adder |x> -> |x + 11 mod 16> (no ancillae):";
  let c = Qc.Qft.draper_add_const 4 11 in
  Printf.printf "verified: %b  (%d gates, all 1- and 2-qubit)\n"
    (Qc.Qft.check_add_const c 4 11)
    (Qc.Circuit.num_gates c)
