(* The combinational workloads of Shor-style algorithms, through the
   automatic flow (paper Sec. III: "factoring needs constant modular
   arithmetic [1]").

   Run with:  dune exec examples/shor_arithmetic.exe

   Three levels of the same story:
   1. structural: the Cuccaro ripple-carry adder (hand-designed circuit),
   2. specification: constant modular adders/multipliers synthesized fully
      automatically from their permutation specification,
   3. composition: modular exponentiation steps chained and verified. *)

let () =
  (* --- 1. structural adders -------------------------------------------- *)
  print_endline "Cuccaro ripple-carry adders (b := a + b):";
  Printf.printf "%4s %7s %9s %9s %8s\n" "bits" "lines" "gates" "T-count" "T-depth";
  List.iter
    (fun n ->
      let c, _ = Rev.Arith.cuccaro_adder n in
      let qc, _ = Qc.Clifford_t.compile_rcircuit c in
      let qc = Qc.Tpar.optimize qc in
      Printf.printf "%4d %7d %9d %9d %8d\n" n (Rev.Rcircuit.num_lines c)
        (Rev.Rcircuit.num_gates c) (Qc.Circuit.t_count qc) (Qc.Circuit.t_depth qc))
    [ 2; 4; 8; 16 ];
  print_endline "(T-count grows linearly: ~7 T per Toffoli, 2 Toffolis per bit)\n";

  (* --- 2. modular arithmetic from specification ------------------------ *)
  print_endline "constant modular arithmetic, synthesized automatically:";
  Printf.printf "%-28s %6s %8s %8s  %s\n" "specification" "gates" "qcost" "T" "verified";
  List.iter
    (fun (name, p) ->
      let circuit, report = Core.Flow.compile_perm p in
      let ok = Core.Flow.verify_perm p circuit in
      Printf.printf "%-28s %6d %8d %8d  %b\n" name
        report.Core.Flow.rev_stats_simplified.Rev.Rcircuit.gate_count
        report.Core.Flow.rev_stats_simplified.Rev.Rcircuit.quantum_cost
        report.Core.Flow.resources_final.Qc.Resource.t_count ok)
    [ ("x + 5 mod 13  (4 bits)", Rev.Arith.mod_add_const 4 ~m:13 ~k:5);
      ("x + 7 mod 16  (4 bits)", Rev.Arith.mod_add_const 4 ~m:16 ~k:7);
      ("7x mod 15     (4 bits)", Rev.Arith.mod_mult_const 4 ~m:15 ~c:7);
      ("3x mod 7      (3 bits)", Rev.Arith.mod_mult_const 3 ~m:7 ~c:3) ];
  print_newline ();

  (* --- 3. modular exponentiation steps --------------------------------- *)
  print_endline "order finding ingredient: x -> 2^e x mod 13 by composing steps";
  let step = Rev.Arith.mod_exp_step 4 ~m:13 ~base:2 in
  let circuit_of p = fst (Core.Flow.compile_perm p) in
  let rec pow p e = if e = 1 then p else Logic.Perm.compose step (pow p (e - 1)) in
  List.iter
    (fun e ->
      let p = pow step e in
      let c = circuit_of p in
      Printf.printf "  e = %d: 2^%d mod 13 = %2d; compiled %4d gates, verified %b\n" e e
        (Logic.Perm.apply p 1) (Qc.Circuit.num_gates c) (Core.Flow.verify_perm p c))
    [ 1; 2; 3; 6 ];
  (* the order of 2 mod 13 is 12: 2^12 = 1 *)
  let p12 = pow step 12 in
  Printf.printf "  e = 12: 2^12 mod 13 = %d -> the step has order 12, as Shor would find\n"
    (Logic.Perm.apply p12 1)
