(* The paper's Fig. 4 program, line for line (Sec. VII).

   Run with:  dune exec examples/hidden_shift_inner_product.exe

   ProjectQ (paper)                          This library
   -----------------------------------      ----------------------------------
   eng = MainEngine()                        let eng = Pq.Engine.create ()
   x1,..,x4 = eng.allocate_qureg(4)          let qubits = allocate_qureg eng 4
   with Compute(eng):                        let blk = compute eng (fun () ->
     All(H) | qubits                           all h eng qubits;
     X | x1                                    x eng qubits.(0))
   PhaseOracle(f) | qubits                   phase_oracle eng f qubits
   Uncompute(eng)                            uncompute eng blk
   PhaseOracle(f) | qubits                   phase_oracle eng f qubits
   All(H) | qubits                           all h eng qubits
   Measure | qubits                          (simulate and read the outcome)

   The predicate is f(a,b,c,d) = (a and b) ^ (c and d); the shift is s = 1.
   On perfect gates the measurement is deterministic: 'Shift is 1'. *)

let f = Logic.Bexpr.parse "(a and b) ^ (c and d)"

let () =
  let eng = Pq.Engine.create () in
  let qubits = Pq.Engine.allocate_qureg eng 4 in

  (* circuit *)
  let blk =
    Pq.Engine.compute eng (fun () ->
        Pq.Engine.all Pq.Engine.h eng qubits;
        Pq.Engine.x eng qubits.(0))
  in
  Pq.Oracles.phase_oracle eng f qubits;
  Pq.Engine.uncompute eng blk;

  Pq.Oracles.phase_oracle eng f qubits;
  Pq.Engine.all Pq.Engine.h eng qubits;

  let circuit = Pq.Engine.flush eng in
  print_endline "Circuit (the paper's Fig. 5):";
  print_string (Qc.Draw.to_string circuit);

  (* measurement result, noiseless backend *)
  let sv = Qc.Statevector.run circuit in
  let outcome = Qc.Statevector.most_likely sv in
  Printf.printf "\nShift is %d\n" outcome;

  (* the same circuit on the noisy IBM-substitute backend: Fig. 6 *)
  print_endline "\nSwitching backend to the noisy (IBM QX-like) simulator:";
  let mean, std =
    Qc.Noise.runs_statistics Qc.Noise.ibm_qx2017 circuit ~shots:1024 ~runs:3
  in
  Printf.printf "3 runs x 1024 shots; outcomes with mean frequency > 0.5%%:\n";
  Array.iteri
    (fun x m ->
      if m > 0.005 then
        Printf.printf "  %2d  %5.3f +- %.3f %s\n" x m std.(x)
          (if x = outcome then "<- correct shift" else ""))
    mean;
  Printf.printf "success probability %.2f (paper: ~0.63 on the IBM chip)\n" mean.(outcome)
