(* The paper's Fig. 7 program: hidden shift for a Maiorana-McFarland bent
   function, with the permutation oracle synthesized automatically by the
   RevKit-style engine (Sec. VII).

   Run with:  dune exec examples/hidden_shift_mm.exe

   Instance: f(x, y) = x . pi(y)^t with pi = [0,2,3,5,7,1,4,6] and shift
   s = 5. Qubits are interleaved exactly as in the paper: x_i on even
   lines, y_i on odd lines. The first oracle uses transformation-based
   synthesis; the dual oracle synthesizes pi again and inverts the circuit
   with Dagger — and we also show the decomposition-based variant
   (the paper's 'synth=revkit.dbs' option). *)

let pi = Logic.Perm.of_list [ 0; 2; 3; 5; 7; 1; 4; 6 ]
let shift = 5

let build synth =
  let mm = Logic.Bent.mm pi in
  let eng = Pq.Engine.create () in
  let qubits = Pq.Engine.allocate_qureg eng 6 in
  let xs = [| qubits.(0); qubits.(2); qubits.(4) |] in
  let ys = [| qubits.(1); qubits.(3); qubits.(5) |] in

  (* with Compute(eng): All(H); All(X) | shifted qubits *)
  let blk =
    Pq.Engine.compute eng (fun () ->
        Pq.Engine.all Pq.Engine.h eng qubits;
        Array.iteri
          (fun i q -> if Logic.Bitops.bit shift i then Pq.Engine.x eng q)
          qubits)
  in
  (* PermutationOracle(pi) | y;  PhaseOracle(inner product) *)
  Pq.Oracles.mm_phase_oracle ~synth eng mm ~xs ~ys;
  Pq.Engine.uncompute eng blk;

  (* the dual: Dagger(PermutationOracle(pi)) on x, CZ pairs *)
  Pq.Oracles.mm_dual_phase_oracle ~synth eng mm ~xs ~ys;
  Pq.Engine.all Pq.Engine.h eng qubits;
  Pq.Engine.flush eng

let run name synth =
  let circuit = build synth in
  let sv = Qc.Statevector.run circuit in
  let outcome = Qc.Statevector.most_likely sv in
  Printf.printf "%-28s %d qubits, %3d gates -> Shift is %d\n" name
    (Qc.Circuit.num_qubits circuit) (Qc.Circuit.num_gates circuit) outcome;
  circuit

let () =
  Printf.printf "Maiorana-McFarland hidden shift, pi = %s, planted s = %d\n\n"
    (Fmt.str "%a" Logic.Perm.pp pi) shift;
  let circuit = run "transformation-based (tbs):" Pq.Oracles.Tbs in
  ignore (run "decomposition-based (dbs):" Pq.Oracles.Dbs);

  print_endline "\nCircuit with TBS oracles (the paper's Fig. 8):";
  print_string (Qc.Draw.to_string circuit);

  (* Clifford+T resource report after the full compilation pipeline *)
  let compiled, _ = Qc.Tpar.optimize (fst (Qc.Clifford_t.compile circuit)), () in
  Printf.printf "\nafter Clifford+T mapping and T-par: %s\n"
    (Qc.Resource.to_string (Qc.Resource.count compiled))
