(* Quickstart: the whole toolflow in one page.

   Run with:  dune exec examples/quickstart.exe

   1. Build a quantum circuit with the ProjectQ-style engine and simulate it.
   2. Compile a classical predicate into a phase oracle automatically.
   3. Run the full EDA flow (synthesis -> simplification -> Clifford+T ->
      T-par) on a reversible benchmark and verify the result. *)

let () =
  (* --- 1. entangle two qubits (the paper's Fig. 1a) ------------------- *)
  let eng = Pq.Engine.create () in
  let q = Pq.Engine.allocate_qureg eng 2 in
  Pq.Engine.h eng q.(0);
  Pq.Engine.cnot eng q.(0) q.(1);
  let bell = Pq.Engine.flush eng in
  print_endline "Bell circuit:";
  print_string (Qc.Draw.to_string bell);
  let sv = Qc.Statevector.run bell in
  Printf.printf "p(|00>) = %.2f   p(|11>) = %.2f\n\n"
    (Qc.Statevector.prob sv 0) (Qc.Statevector.prob sv 3);

  (* --- 2. compile a Boolean predicate into a phase oracle ------------- *)
  let eng = Pq.Engine.create () in
  let q = Pq.Engine.allocate_qureg eng 4 in
  Pq.Engine.all Pq.Engine.h eng q;
  Pq.Oracles.phase_oracle eng (Logic.Bexpr.parse "(a and b) ^ (c and d)") q;
  let oracle = Pq.Engine.flush eng in
  print_endline "Automatically compiled phase oracle for (a and b) ^ (c and d):";
  print_string (Qc.Draw.to_string oracle);
  print_newline ();

  (* --- 3. the full design-automation flow on hwb(4) ------------------- *)
  let p = Logic.Funcgen.hwb 4 in
  let circuit, report = Core.Flow.compile_perm p in
  print_endline "Eq. (5) flow on the hidden-weighted-bit function hwb(4):";
  Format.printf "%a@." Core.Flow.pp_report report;
  Printf.printf "verified against the specification: %b\n"
    (Core.Flow.verify_perm p circuit);

  (* export for an IBM-style backend *)
  print_endline "\nFirst lines of the OpenQASM export:";
  let qasm = Qc.Qasm.to_string circuit in
  String.split_on_char '\n' qasm
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter print_endline;
  print_endline "..."
