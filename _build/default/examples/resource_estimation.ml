(* Resource estimation across oracle families — the "resource counter"
   backend of the paper's Sec. VI, applied to whole hidden-shift instances.

   Run with:  dune exec examples/resource_estimation.exe

   For growing problem sizes, report the Clifford+T resources of the fully
   compiled hidden-shift circuit (qubits, gate counts, T-count, T-depth)
   plus the ancillae introduced by the multiple-control lowering. This is
   the kind of table one produces before deciding whether an instance fits
   a target device. *)

let report name instance =
  let high = Core.Hidden_shift.build instance in
  let compiled, anc = Core.Hidden_shift.build_compiled instance in
  let r = Qc.Resource.count compiled in
  Printf.printf "%-24s %2d+%d qubits  %5d gates  T %4d  T-depth %4d  depth %5d\n"
    name
    (Qc.Circuit.num_qubits high)
    anc r.Qc.Resource.total_gates r.Qc.Resource.t_count r.Qc.Resource.t_depth
    r.Qc.Resource.depth

let () =
  print_endline "Hidden-shift instances, fully compiled to Clifford+T (+ T-par):\n";
  Printf.printf "%-24s %s\n" "instance" "resources";
  for n = 2 to 5 do
    report
      (Printf.sprintf "inner-product 2n=%d" (2 * n))
      (Core.Hidden_shift.Inner_product { n; s = 1 })
  done;
  print_newline ();
  let st = Random.State.make [| 2018 |] in
  for n = 2 to 4 do
    let mm = Logic.Bent.random_mm st n in
    let s = Random.State.int st (1 lsl (2 * n)) in
    report
      (Printf.sprintf "random MM 2n=%d (tbs)" (2 * n))
      (Core.Hidden_shift.Mm { mm; s; synth = Pq.Oracles.Tbs });
    report
      (Printf.sprintf "random MM 2n=%d (dbs)" (2 * n))
      (Core.Hidden_shift.Mm { mm; s; synth = Pq.Oracles.Dbs })
  done;
  print_newline ();
  print_endline "Note: inner-product instances compile to Clifford-only circuits";
  print_endline "(T-count 0) — consistent with Bravyi-Gosset [72]: these hidden-";
  print_endline "shift circuits are classically simulable, while Maiorana-McFarland";
  print_endline "instances with nonlinear pi genuinely need T gates."
