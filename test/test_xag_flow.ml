(* The XAG front end of the flow: spec parsing, end-to-end compilation,
   determinism across cache state and batch width, and the wide-cover
   bypass telemetry. *)

open Core
module Xag = Rev.Xag
module Truth_table = Logic.Truth_table
module Statevector = Qc.Statevector
module Gate = Qc.Gate

let test_spec_parsing () =
  List.iter
    (fun (spec, inputs, outputs) ->
      let g = Flow.xag_of_spec spec in
      Alcotest.(check int) (spec ^ " inputs") inputs (Xag.num_inputs g);
      Alcotest.(check int) (spec ^ " outputs") outputs (List.length (Xag.outputs g)))
    [ ("adder:4", 8, 5);
      ("sub:4", 8, 5);
      ("lt:3", 6, 1);
      ("ltconst:8:100", 8, 1);
      ("eqconst:6:17", 6, 1);
      ("addeq:2", 6, 1);
      ("mult:3", 6, 6);
      (" ltconst:4:0x7 ", 4, 1) ]

let test_spec_rejects_garbage () =
  List.iter
    (fun spec ->
      match Flow.xag_of_spec spec with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail ("accepted bad spec " ^ spec))
    [ ""; "adder"; "adder:x"; "ltconst:8"; "frob:3"; "adder:4:5" ]

(* ---- end-to-end: compile and execute on basis states ---- *)

let test_compile_xag_statevector () =
  let n = 4 and k = 11 in
  let g = Rev.Arith.xag_less_than_const n ~k in
  let circuit, report = Flow.compile_xag ~lut_k:4 g in
  Alcotest.(check bool) "no residual LUT ancillae" true
    (Flow.xag_ancillae g report >= 0);
  for x = 0 to (1 lsl n) - 1 do
    let s = Statevector.init circuit.Qc.Circuit.n in
    for i = 0 to n - 1 do
      if Logic.Bitops.bit x i then Statevector.apply s (Gate.X i)
    done;
    Statevector.run_on s circuit;
    let expect = x lor (if x < k then 1 lsl n else 0) in
    Alcotest.(check bool)
      (Printf.sprintf "basis state %d" x)
      true
      (Statevector.prob s expect > 0.999)
  done

let test_pipelines_equivalent () =
  (* tpar on and off give different circuits for the same unitary *)
  let g = Rev.Arith.xag_less_than_const 3 ~k:5 in
  let c1, _ = Flow.compile_xag ~options:{ Flow.default with tpar = true } g in
  let c2, _ = Flow.compile_xag ~options:{ Flow.default with tpar = false } g in
  match Qc.Equiv.check c1 c2 with
  | Qc.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "pipelines disagree on the compiled oracle"

(* ---- determinism ---- *)

let specs () =
  [ Flow.Xag_spec (Flow.xag_of_spec "ltconst:8:100");
    Flow.Xag_spec (Flow.xag_of_spec "adder:3");
    Flow.Xag_spec (Flow.xag_of_spec "lt:3");
    Flow.Xag_spec (Flow.xag_of_spec "mult:2") ]

let test_batch_jobs_deterministic () =
  let r1 = Flow.compile_batch ~lut_k:4 ~ancilla_budget:4 ~jobs:1 (specs ()) in
  let r4 = Flow.compile_batch ~lut_k:4 ~ancilla_budget:4 ~jobs:4 (specs ()) in
  List.iter2
    (fun (c1, _) (c4, _) ->
      Alcotest.(check bool) "jobs 1 = jobs 4" true (c1 = c4))
    r1 r4

let test_cache_on_off_identical () =
  let compile () = List.map fst (Flow.compile_batch ~lut_k:4 ~jobs:1 (specs ())) in
  Cache.set_enabled false;
  let off = compile () in
  Cache.set_enabled true;
  Cache.clear_memory ();
  let cold = compile () in
  let warm = compile () in
  Cache.set_enabled false;
  List.iter2
    (fun a b -> Alcotest.(check bool) "cache off = cold" true (a = b))
    off cold;
  List.iter2
    (fun a b -> Alcotest.(check bool) "cold = warm replay" true (a = b))
    cold warm

(* ---- wide-cover bypass telemetry ---- *)

let test_bypass_counter () =
  let m = Obs.Memory.create () in
  Obs.set_sink (Some (Obs.Memory.sink m));
  ignore (Cache.Cover.minimize (Logic.Funcgen.parity 13));
  Obs.set_sink None;
  let totals = Obs.Summary.counter_totals (Obs.Memory.events m) in
  match List.assoc_opt "cache.npn.bypass" totals with
  | Some v -> Alcotest.(check bool) "bypass counted" true (v >= 1)
  | None -> Alcotest.fail "cache.npn.bypass not emitted for a 13-var cover"

let () =
  Alcotest.run "xag_flow"
    [ ( "spec",
        [ Alcotest.test_case "parses oracle specs" `Quick test_spec_parsing;
          Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage ] );
      ( "end_to_end",
        [ Alcotest.test_case "statevector execution" `Quick test_compile_xag_statevector;
          Alcotest.test_case "pipelines equivalent" `Quick test_pipelines_equivalent ] );
      ( "determinism",
        [ Alcotest.test_case "batch jobs" `Quick test_batch_jobs_deterministic;
          Alcotest.test_case "cache on/off" `Quick test_cache_on_off_identical ] );
      ( "telemetry",
        [ Alcotest.test_case "npn bypass counter" `Quick test_bypass_counter ] ) ]
