(* Sharded statevector layer: sharded replay equals the single-slab
   reference on every plan family, amplitudes / sampler draws / telemetry
   totals are bit-identical across jobs × shard-bits configurations, the
   commuting-block peephole preserves the circuit unitary, the memory
   guard refuses over-cap allocations, and the LRU plan cache evicts
   least-recently-used entries. *)

open Qc

let with_shard sb f =
  Statevector.set_shard_bits sb;
  Fun.protect ~finally:(fun () -> Statevector.set_shard_bits None) f

let with_jobs jobs f =
  Par.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Par.set_default_jobs 1) f

let run_planned c =
  let s = Statevector.init (Circuit.num_qubits c) in
  Statevector.Plan.execute (Statevector.Plan.build c) s;
  s

let amp_close (a : Complex.t) (b : Complex.t) =
  Float.abs (a.re -. b.re) < 1e-9 && Float.abs (a.im -. b.im) < 1e-9

let same_amplitudes s1 s2 =
  Statevector.size s1 = Statevector.size s2
  && (let ok = ref true in
      for x = 0 to Statevector.size s1 - 1 do
        if not (amp_close (Statevector.amplitude s1 x) (Statevector.amplitude s2 x))
        then ok := false
      done;
      !ok)

(* Sharded replay (2-amplitude slabs: the most adversarial layout, every
   multi-qubit kernel crosses slabs) equals the flat replay. *)
let shard_equiv c =
  let flat = run_planned c in
  let ok = ref true in
  for sb = 1 to 3 do
    let sharded = with_shard (Some sb) (fun () -> run_planned c) in
    if not (same_amplitudes flat sharded) then ok := false
  done;
  !ok

let seeded_circuit_gen mk =
  QCheck2.Gen.map
    (fun seed -> mk (Helpers.rng seed))
    QCheck2.Gen.(int_bound 1_000_000)

(* The same three circuit families test_plan checks against the unfused
   reference — here flat-planned vs sharded-planned. *)
let diag_heavy st n len =
  let gates = ref [] in
  for _ = 1 to len do
    let q = Random.State.int st n in
    let g =
      match Random.State.int st 7 with
      | 0 -> Gate.T q
      | 1 -> Gate.Tdg q
      | 2 -> Gate.S q
      | 3 -> Gate.Sdg q
      | 4 -> Gate.Z q
      | 5 -> Gate.Rz (Random.State.float st 6.28 -. 3.14, q)
      | _ ->
          let q2 = (q + 1 + Random.State.int st (n - 1)) mod n in
          Gate.Cz (q, q2)
    in
    gates := g :: !gates
  done;
  Circuit.of_gates n (List.init n (fun q -> Gate.H q) @ List.rev !gates)

let perm_heavy st n len =
  let gates = ref [] in
  for _ = 1 to len do
    let q = Random.State.int st n in
    let q2 = (q + 1 + Random.State.int st (n - 1)) mod n in
    let g =
      match Random.State.int st 4 with
      | 0 -> Gate.X q
      | 1 -> Gate.Cnot (q, q2)
      | 2 -> Gate.Swap (q, q2)
      | _ ->
          let q3 = (max q q2 + 1) mod n in
          if q3 = q || q3 = q2 then Gate.Cnot (q, q2) else Gate.Ccx (q, q2, q3)
    in
    gates := g :: !gates
  done;
  Circuit.of_gates n ([ Gate.H 0; Gate.H 1 ] @ List.rev !gates)

let prop_shard_diag =
  Helpers.prop "sharded = flat on diagonal-heavy circuits" ~count:40
    (seeded_circuit_gen (fun st -> diag_heavy st 5 60))
    shard_equiv

let prop_shard_perm =
  Helpers.prop "sharded = flat on permutation-heavy circuits" ~count:40
    (seeded_circuit_gen (fun st -> perm_heavy st 5 60))
    shard_equiv

let prop_shard_general =
  Helpers.prop "sharded = flat on general Clifford+T circuits" ~count:40
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      Helpers.qcircuit_gen ~diagonals:(seed mod 2 = 0) 4 50)
    shard_equiv

(* --- bit-identity across jobs × shard-bits --- *)

(* 15 qubits puts the state (2^15) above par_threshold (2^14), so the
   parallel kernels, cross-slab passes and chunked reductions engage.
   The trailing H block touches only qubits 0-5: it fuses into its own
   butterfly kernel whose bits sit below every shard-bits setting used
   here, keeping at least one slab-local kernel in the schedule. *)
let wide_circuit =
  lazy
    (Circuit.of_gates 15
       (List.init 15 (fun q -> Gate.H q)
       @ List.concat
           (List.init 2 (fun _ ->
                List.init 15 (fun q -> Gate.T q)
                @ List.init 14 (fun q -> Gate.Cnot (q, q + 1))))
       @ List.init 6 (fun q -> Gate.H q)))

let bit_identical s1 s2 =
  let identical = ref true in
  for x = 0 to Statevector.size s1 - 1 do
    let a = Statevector.amplitude s1 x and b = Statevector.amplitude s2 x in
    if not (a.re = b.re && a.im = b.im) then identical := false
  done;
  !identical

let run_config ~jobs ~shard c =
  Statevector.clear_plan_cache ();
  with_jobs jobs (fun () -> with_shard shard (fun () -> Statevector.run c))

let test_bit_identity_matrix () =
  let c = Lazy.force wide_circuit in
  let reference = run_config ~jobs:1 ~shard:None c in
  List.iter
    (fun jobs ->
      List.iter
        (fun shard ->
          let s = run_config ~jobs ~shard c in
          Alcotest.(check bool)
            (Printf.sprintf "bit-identical at jobs=%d shard=%s" jobs
               (match shard with None -> "auto" | Some b -> string_of_int b))
            true
            (bit_identical reference s))
        [ None; Some 8; Some 11; Some 14 ])
    [ 1; 2; 4 ]

let test_sampler_across_configs () =
  let c = Lazy.force wide_circuit in
  let reference = run_config ~jobs:1 ~shard:None c in
  let smp_ref = Statevector.sampler reference in
  List.iter
    (fun (jobs, shard) ->
      let s = run_config ~jobs ~shard c in
      let smp = with_jobs jobs (fun () -> Statevector.sampler s) in
      for seed = 0 to 20 do
        Alcotest.(check int) "sampler draw identical"
          (Statevector.sample_with smp_ref (Helpers.rng seed))
          (Statevector.sample_with smp (Helpers.rng seed))
      done;
      (* slab-ordered reductions are bit-identical too *)
      Alcotest.(check bool) "norm2 identical" true
        (Statevector.norm2 reference = Statevector.norm2 s);
      Alcotest.(check bool) "prob_of_qubit identical" true
        (Statevector.prob_of_qubit reference 7 = Statevector.prob_of_qubit s 7))
    [ (1, Some 8); (2, Some 11); (4, Some 8); (4, None) ]

let counter_totals_for ~jobs ~shard c =
  let m = Obs.Memory.create () in
  Obs.reset ();
  Obs.set_sink (Some (Obs.Memory.sink m));
  Fun.protect
    ~finally:(fun () -> Obs.set_sink None)
    (fun () -> ignore (run_config ~jobs ~shard c));
  Obs.Summary.counter_totals (Obs.Memory.events m)

let test_obs_totals_across_configs () =
  let c = Lazy.force wide_circuit in
  (* across jobs at a fixed shard setting: every counter total matches,
     including the sv.shard.* ones *)
  let t1 = counter_totals_for ~jobs:1 ~shard:(Some 11) c in
  let t4 = counter_totals_for ~jobs:4 ~shard:(Some 11) c in
  Alcotest.(check (list (pair string int)))
    "telemetry totals identical across --jobs" t1 t4;
  Alcotest.(check bool) "slabs counted" true
    (match List.assoc_opt "sv.shard.slabs" t1 with
    | Some n -> n = 16 (* 2^(15-11) *)
    | None -> false);
  Alcotest.(check bool) "local blocks counted" true
    (List.assoc_opt "sv.shard.local_blocks" t1 <> None);
  (* across shard settings only the shard-layout counters may differ *)
  let strip =
    List.filter (fun (k, _) -> not (Helpers.contains ~needle:"sv.shard." k))
  in
  let tflat = counter_totals_for ~jobs:2 ~shard:None c in
  Alcotest.(check (list (pair string int)))
    "non-shard totals identical across shard-bits" (strip tflat) (strip t4)

(* --- peephole: reorder preserves the unitary --- *)

let prop_peephole_unitary =
  Helpers.prop "peephole preserves the circuit unitary" ~count:60
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      Helpers.qcircuit_gen ~diagonals:(seed mod 2 = 0) 4 30)
    (fun c ->
      let n = Circuit.num_qubits c in
      let gates = Circuit.to_array c in
      let reordered = Statevector.Plan.peephole gates in
      Unitary.equal
        (Unitary.of_gates n (Array.to_list gates))
        (Unitary.of_gates n (Array.to_list reordered)))

let test_peephole_widens_runs () =
  (* H layers interleaved with disjoint CNOTs: the peephole defers the
     H's so the classical gates fuse into one monomial block *)
  let c =
    Circuit.of_gates 4
      [ Gate.X 0; Gate.H 2; Gate.Cnot (0, 1); Gate.H 3; Gate.Cnot (1, 0) ]
  in
  let st = Statevector.Plan.stats (Statevector.Plan.build c) in
  Alcotest.(check int) "one monomial block" 1 st.Statevector.Plan.perm;
  Alcotest.(check int) "one fused H block" 1 st.Statevector.Plan.had;
  Alcotest.(check int) "no dense blocks" 0 st.Statevector.Plan.dense;
  Alcotest.(check bool) "replay agrees with unfused" true
    (same_amplitudes (run_planned c) (Statevector.run ~fuse:false c))

(* --- memory guard --- *)

let test_alloc_guard () =
  Unix.putenv "DAUTOQ_SV_MAX_QUBITS" "10";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "DAUTOQ_SV_MAX_QUBITS" "")
    (fun () ->
      (match Statevector.init 10 with
      | s -> Alcotest.(check int) "cap width allocates" 10 (Statevector.num_qubits s)
      | exception _ -> Alcotest.fail "within-cap allocation refused");
      match Statevector.init 11 with
      | exception Statevector.Unsupported msg ->
          Alcotest.(check bool) "token-named message" true
            (Helpers.contains ~needle:"sv.alloc:" msg);
          Alcotest.(check bool) "suggests the stabilizer backend" true
            (Helpers.contains ~needle:"stabilizer" msg)
      | _ -> Alcotest.fail "over-cap allocation accepted")

(* --- LRU plan cache --- *)

let cache_circuit tag =
  (* distinct structural keys at planner width (>= fuse_min_qubits) *)
  Circuit.of_gates 10
    (List.init 10 (fun q -> Gate.H q)
    @ List.init tag (fun i -> Gate.T (i mod 10))
    @ List.init 9 (fun q -> Gate.Cnot (q, q + 1)))

let test_lru_eviction () =
  Unix.putenv "DAUTOQ_PLAN_CACHE" "2";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "DAUTOQ_PLAN_CACHE" "")
    (fun () ->
      let m = Obs.Memory.create () in
      Obs.reset ();
      Obs.set_sink (Some (Obs.Memory.sink m));
      Fun.protect
        ~finally:(fun () -> Obs.set_sink None)
        (fun () ->
          Statevector.clear_plan_cache ();
          let run tag = ignore (Statevector.run (cache_circuit tag)) in
          run 1;
          run 2;
          run 1 (* hit: refreshes 1's recency *);
          run 3 (* evicts 2, the least recently used *);
          run 1 (* still cached: hit, no rebuild *);
          run 2 (* rebuilt: was evicted *));
      let totals = Obs.Summary.counter_totals (Obs.Memory.events m) in
      Alcotest.(check (option int)) "replays: the two hits on circuit 1"
        (Some 2)
        (List.assoc_opt "sv.plan.replay" totals);
      Alcotest.(check bool) "evictions counted" true
        (match List.assoc_opt "sv.plan.evict" totals with
        | Some n -> n >= 2 (* circuit 2 evicted, then 1 or 3 for 2's rebuild *)
        | None -> false);
      let size, cap, evictions = Statevector.plan_cache_stats () in
      Alcotest.(check int) "capacity from env" 2 cap;
      Alcotest.(check bool) "size within capacity" true (size <= 2);
      Alcotest.(check bool) "stats report evictions" true (evictions >= 2);
      Statevector.clear_plan_cache ();
      let size', _, evictions' = Statevector.plan_cache_stats () in
      Alcotest.(check int) "clear empties the cache" 0 size';
      Alcotest.(check int) "clear resets evictions" 0 evictions')

let () =
  Alcotest.run "shard"
    [ ( "shard-equivalence",
        [ prop_shard_diag; prop_shard_perm; prop_shard_general ] );
      ( "bit-identity",
        [ Alcotest.test_case "amplitudes across jobs x shard-bits" `Quick
            test_bit_identity_matrix;
          Alcotest.test_case "sampler draws and reductions" `Quick
            test_sampler_across_configs;
          Alcotest.test_case "telemetry totals" `Quick
            test_obs_totals_across_configs ] );
      ( "peephole",
        [ prop_peephole_unitary;
          Alcotest.test_case "widens monomial runs" `Quick
            test_peephole_widens_runs ] );
      ( "guards",
        [ Alcotest.test_case "allocation cap" `Quick test_alloc_guard;
          Alcotest.test_case "LRU plan cache" `Quick test_lru_eviction ] ) ]
