(* Failure injection: every public entry point must reject malformed input
   with a clean [Invalid_argument] (or its documented exception) instead of
   crashing or silently mis-computing. *)

let rejects name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | exception e ->
          Alcotest.failf "%s: expected Invalid_argument, got %s" name (Printexc.to_string e)
      | _ -> Alcotest.failf "%s: malformed input accepted" name)

let logic_cases =
  [ rejects "truth table: negative arity" (fun () -> Logic.Truth_table.create (-1));
    rejects "truth table: oversized arity" (fun () -> Logic.Truth_table.create 25);
    rejects "truth table: bad string char" (fun () -> Logic.Truth_table.of_string "01x0");
    rejects "truth table: arity mismatch in xor" (fun () ->
        Logic.Truth_table.xor (Logic.Truth_table.create 2) (Logic.Truth_table.create 3));
    rejects "truth table: cofactor out of range" (fun () ->
        Logic.Truth_table.cofactor (Logic.Truth_table.create 2) 5 true);
    rejects "perm: not a bijection" (fun () -> Logic.Perm.of_list [ 0; 0 ]);
    rejects "perm: bad length" (fun () -> Logic.Perm.of_list [ 0; 1; 2 ]);
    rejects "perm: compose arity mismatch" (fun () ->
        Logic.Perm.compose (Logic.Perm.identity 2) (Logic.Perm.identity 3));
    rejects "perm: xor_shift out of range" (fun () -> Logic.Perm.xor_shift 2 9);
    rejects "bdd: var out of range" (fun () -> Logic.Bdd.var (Logic.Bdd.create 3) 3);
    rejects "bdd: table larger than manager" (fun () ->
        Logic.Bdd.of_truth_table (Logic.Bdd.create 2) (Logic.Truth_table.create 3));
    rejects "cube: contradictory literals" (fun () ->
        Logic.Cube.of_literals [ (0, true); (0, false) ]);
    rejects "pkrm: too many variables" (fun () ->
        Logic.Esop_opt.pkrm (Logic.Truth_table.create 14));
    rejects "walsh: dual of non-bent" (fun () -> Logic.Walsh.dual (Logic.Funcgen.parity 4));
    rejects "bexpr: negative var" (fun () -> Logic.Bexpr.var (-1));
    rejects "bent: h arity mismatch" (fun () ->
        Logic.Bent.mm ~h:(Logic.Truth_table.create 3) (Logic.Perm.identity 2)) ]

let rev_cases =
  [ rejects "mct: target as control" (fun () -> Rev.Mct.make ~target:0 ~pos:1 ~neg:0);
    rejects "mct: polarity overlap" (fun () -> Rev.Mct.make ~target:2 ~pos:1 ~neg:1);
    rejects "rcircuit: zero lines" (fun () -> Rev.Rcircuit.empty 0);
    rejects "rcircuit: too many lines" (fun () -> Rev.Rcircuit.empty 63);
    rejects "rcircuit: gate off the end" (fun () ->
        Rev.Rcircuit.add (Rev.Rcircuit.empty 2) (Rev.Mct.cnot 0 3));
    rejects "rcircuit: append width mismatch" (fun () ->
        Rev.Rcircuit.append (Rev.Rcircuit.empty 2) (Rev.Rcircuit.empty 3));
    rejects "esop synth: no outputs" (fun () -> Rev.Esop_synth.synth []);
    rejects "esop synth: arity mismatch" (fun () ->
        Rev.Esop_synth.synth [ Logic.Funcgen.parity 2; Logic.Funcgen.parity 3 ]);
    rejects "embed: no outputs" (fun () -> Rev.Embed.output_multiplicity []);
    rejects "exact: too wide" (fun () -> Rev.Exact_synth.synth (Logic.Perm.identity 4));
    rejects "hier: zero batch" (fun () ->
        Rev.Hier_synth.output_batched ~batch:0 (Rev.Xag.ripple_adder 2));
    rejects "lut: k too small" (fun () ->
        Rev.Lut_synth.map_luts ~k:1 (Rev.Xag.ripple_adder 2));
    rejects "pebble: zero segments" (fun () -> Rev.Pebble.bennett ~segments:0 ~fanout:2);
    rejects "pebble: fanout 1" (fun () -> Rev.Pebble.bennett ~segments:4 ~fanout:1);
    rejects "pebble: invalid schedule" (fun () ->
        Rev.Pebble.simulate ~segments:3 [ Rev.Pebble.Compute 2 ]);
    rejects "arith: adder size" (fun () -> Rev.Arith.cuccaro_adder 0);
    rejects "arith: modulus too large" (fun () -> Rev.Arith.mod_add_const 2 ~m:9 ~k:1);
    rejects "arith: non-invertible multiplier" (fun () ->
        Rev.Arith.mod_mult_const 4 ~m:12 ~c:4);
    rejects "xag: input out of range" (fun () -> Rev.Xag.input (Rev.Xag.create 2) 2) ]

let qc_cases =
  [ rejects "circuit: zero qubits" (fun () -> Qc.Circuit.empty 0);
    rejects "circuit: qubit out of range" (fun () ->
        Qc.Circuit.add (Qc.Circuit.empty 2) (Qc.Gate.H 2));
    rejects "circuit: append mismatch" (fun () ->
        Qc.Circuit.append (Qc.Circuit.empty 2) (Qc.Circuit.empty 3));
    rejects "statevector: zero qubits" (fun () -> Qc.Statevector.init 0);
    Alcotest.test_case "statevector: too wide" `Quick (fun () ->
        (* past the amplitude cap the guard refuses before allocating *)
        match Qc.Statevector.init 29 with
        | exception Qc.Statevector.Unsupported _ -> ()
        | _ -> Alcotest.fail "statevector cap not enforced");
    rejects "unitary: too wide" (fun () -> Qc.Unitary.of_circuit (Qc.Circuit.empty 13));
    rejects "tpar: too wide" (fun () -> Qc.Tpar.optimize (Qc.Circuit.empty 62));
    rejects "qft: bad width" (fun () -> Qc.Qft.qft 0);
    rejects "qpe: no counting qubits" (fun () -> Qc.Qpe.circuit ~t:0 ~phi:0.5);
    Alcotest.test_case "qasm: unsupported gate" `Quick (fun () ->
        match Qc.Qasm.to_string (Qc.Circuit.of_gates 4 [ Qc.Gate.Mcx ([ 0; 1; 2 ], 3) ]) with
        | exception Qc.Qasm.Unsupported _ -> ()
        | _ -> Alcotest.fail "unsupported gate accepted");
    Alcotest.test_case "route: 3-qubit gate" `Quick (fun () ->
        match Qc.Route.lnn (Qc.Circuit.of_gates 3 [ Qc.Gate.Ccz (0, 1, 2) ]) with
        | exception Qc.Route.Not_two_qubit _ -> ()
        | _ -> Alcotest.fail "3q gate accepted");
    Alcotest.test_case "stabilizer: T gate" `Quick (fun () ->
        match Qc.Stabilizer.apply (Qc.Stabilizer.create 1) (Qc.Gate.T 0) with
        | exception Qc.Stabilizer.Not_clifford _ -> ()
        | _ -> Alcotest.fail "T accepted") ]

let engine_core_cases =
  [ rejects "engine: gate before allocation" (fun () ->
        let eng = Pq.Engine.create () in
        Pq.Engine.h eng 0);
    rejects "engine: flush with no qubits" (fun () -> Pq.Engine.flush (Pq.Engine.create ()));
    rejects "engine: zero-size register" (fun () ->
        Pq.Engine.allocate_qureg (Pq.Engine.create ()) 0);
    rejects "oracles: register mismatch" (fun () ->
        let eng = Pq.Engine.create () in
        let qs = Pq.Engine.allocate_qureg eng 2 in
        Pq.Oracles.phase_oracle_tt eng (Logic.Funcgen.parity 3) qs);
    rejects "oracles: permutation mismatch" (fun () ->
        let eng = Pq.Engine.create () in
        let qs = Pq.Engine.allocate_qureg eng 2 in
        Pq.Oracles.permutation_oracle eng (Logic.Perm.identity 3) qs);
    rejects "hidden shift: non-bent generic" (fun () ->
        Core.Hidden_shift.build
          (Core.Hidden_shift.Generic { f = Logic.Funcgen.majority 4; s = 0 }));
    rejects "grover: unsatisfiable" (fun () -> Core.Grover.circuit (Logic.Truth_table.create 2));
    rejects "flow: esop on a permutation" (fun () ->
        Core.Flow.compile_perm
          ~options:{ Core.Flow.default with Core.Flow.synth = Core.Flow.Esop }
          (Logic.Perm.identity 2));
    rejects "dj: promise violation" (fun () ->
        Core.Oracle_algorithms.deutsch_jozsa (Logic.Funcgen.majority 4));
    Alcotest.test_case "shell: errors surface as Shell.Error" `Quick (fun () ->
        List.iter
          (fun script ->
            match Core.Shell.run_script script with
            | exception Core.Shell.Error _ -> ()
            | out -> Alcotest.failf "script %S succeeded: %s" script out)
          [ "perm 1 0 0 1"; "tt abc"; "exact"; "lut"; "revgen hwb 4; tbs; cliffordt; stabsim" ]) ]

let () =
  Alcotest.run "failure_modes"
    [ ("logic", logic_cases); ("rev", rev_cases); ("qc", qc_cases);
      ("engine_core", engine_core_cases) ]
