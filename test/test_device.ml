(* The resilient device layer: fault-profile parsing, the deterministic
   fault stream, histogram validation and drift scoring, shot
   apportionment, the retrying executor (breaker, fallback chain,
   partial-result salvage, verdicts), bit-reproducibility of faulted
   jobs, --jobs invariance, and the Obs counters the executor emits. *)

open Qc

let bell = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ]
let x1 = Circuit.of_gates 2 [ Gate.X 1 ]

(* custom targets let the executor be driven without any simulation *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let always_fail name =
  { Device.t_name = name;
    run_batch = (fun ~drift:_ ~seed:_ ~shots:_ _ -> failwith (name ^ " is down")) }

let always_zero name =
  { Device.t_name = name;
    run_batch = (fun ~drift:_ ~seed:_ ~shots _ -> [ (0, shots) ]) }

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_presets () =
  let h = Device.profile_of_spec "hostile" in
  Alcotest.(check (float 1e-9)) "submit" 0.15 h.Device.submit_fail;
  Alcotest.(check (float 1e-9)) "loss" 0.05 h.Device.shot_loss;
  Alcotest.(check bool) "outage window" true (h.Device.outage = Some (2, 4));
  let n = Device.profile_of_spec "none" in
  Alcotest.(check (float 1e-9)) "none injects nothing" 0. n.Device.submit_fail

let test_profile_overrides () =
  let p = Device.profile_of_spec "hostile,loss=0.2,outage=off" in
  Alcotest.(check (float 1e-9)) "preset kept" 0.15 p.Device.submit_fail;
  Alcotest.(check (float 1e-9)) "override applied" 0.2 p.Device.shot_loss;
  Alcotest.(check bool) "outage cleared" true (p.Device.outage = None);
  let q = Device.profile_of_spec "submit=0.3,outage=4@7,seed=99" in
  Alcotest.(check (float 1e-9)) "bare kv base is none" 0.3 q.Device.submit_fail;
  Alcotest.(check bool) "outage parsed LEN@START" true (q.Device.outage = Some (7, 4));
  Alcotest.(check int) "seed" 99 q.Device.fault_seed

let test_profile_errors () =
  let bad spec =
    Alcotest.(check bool)
      (spec ^ " rejected") true
      (match Device.profile_of_spec spec with
      | exception Device.Bad_profile _ -> true
      | _ -> false)
  in
  bad "";
  bad "bogus";
  bad "frob=1";
  bad "submit=1.7";
  bad "submit=x";
  bad "outage=whenever";
  bad "seed=-3"

(* ------------------------------------------------------------------ *)
(* The fault stream                                                    *)
(* ------------------------------------------------------------------ *)

let test_roll_deterministic () =
  let p = Device.profile_of_spec "hostile" in
  for a = 0 to 50 do
    for salt = 0 to 6 do
      let r1 = Device.roll p ~attempt:a ~salt and r2 = Device.roll p ~attempt:a ~salt in
      Alcotest.(check (float 0.)) "pure in (attempt, salt)" r1 r2;
      Alcotest.(check bool) "in [0,1)" true (r1 >= 0. && r1 < 1.)
    done
  done;
  (* distinct salts decorrelate the decisions of one attempt *)
  Alcotest.(check bool) "salts differ" true
    (Device.roll p ~attempt:3 ~salt:0 <> Device.roll p ~attempt:3 ~salt:1)

(* ------------------------------------------------------------------ *)
(* Validation, drift, apportionment                                    *)
(* ------------------------------------------------------------------ *)

let test_validate () =
  let ok = Device.validate ~domain:4 ~shots:10 in
  Alcotest.(check bool) "well-formed" true (ok [ (0, 6); (3, 4) ]);
  Alcotest.(check bool) "short is fine (loss)" true (ok [ (1, 3) ]);
  Alcotest.(check bool) "out of domain" false (ok [ (4, 1) ]);
  Alcotest.(check bool) "negative outcome" false (ok [ (-1, 1) ]);
  Alcotest.(check bool) "zero count" false (ok [ (0, 0) ]);
  Alcotest.(check bool) "over total" false (ok [ (0, 11) ])

let test_drift_score () =
  let running = [ (0, 500); (1, 500) ] in
  let same = Device.drift_score ~running ~batch:[ (0, 52); (1, 48) ] in
  let far = Device.drift_score ~running ~batch:[ (0, 2); (1, 98) ] in
  Alcotest.(check bool) "same distribution scores low" true
    (same < Device.drift_threshold);
  Alcotest.(check bool) "shifted distribution flags" true
    (far > Device.drift_threshold);
  Alcotest.(check (float 0.)) "empty scores zero" 0.
    (Device.drift_score ~running:[] ~batch:[ (0, 1) ])

let test_apportion () =
  let h = Device.apportion 100 [ (0, 0.5); (1, 0.25); (2, 0.25) ] in
  Alcotest.(check (list (pair int int))) "exact thirds" [ (0, 50); (1, 25); (2, 25) ] h;
  let total l = List.fold_left (fun acc (_, k) -> acc + k) 0 l in
  (* remainders: total is always exactly the requested shots *)
  let h7 = Device.apportion 7 [ (0, 1. /. 3.); (1, 1. /. 3.); (2, 1. /. 3.) ] in
  Alcotest.(check int) "totals conserved" 7 (total h7);
  Alcotest.(check (list (pair int int)))
    "deterministic (replayed)" h7
    (Device.apportion 7 [ (0, 1. /. 3.); (1, 1. /. 3.); (2, 1. /. 3.) ])

(* ------------------------------------------------------------------ *)
(* The executor                                                        *)
(* ------------------------------------------------------------------ *)

let test_clean_device_validates () =
  (* a measured backend puts every shot on its outcome: |10> = 2 *)
  let d = Device.create Device.statevector in
  let j = Device.submit ~shots:512 d x1 in
  Alcotest.(check int) "all shots delivered" 512 j.Device.delivered;
  Alcotest.(check int) "requested recorded" 512 j.Device.requested;
  Alcotest.(check int) "no retries" 0 j.Device.retries;
  Alcotest.(check bool) "validated" true (j.Device.verdict = Backend.Validated);
  Alcotest.(check (list (pair int int)))
    "all shots on |10>" [ (2, 512) ] j.Device.counts;
  Alcotest.(check (option int)) "modal outcome" (Some 2) (Device.modal j)

let test_total_failure_is_a_verdict () =
  (* a primary that always rejects, no fallback: the job fails, the
     executor does not raise *)
  let profile = Device.profile_of_spec "submit=1.0" in
  let policy =
    { Device.default_policy with Device.max_retries = 2; deadline = 16; batches = 4 }
  in
  let d = Device.create ~policy ~profile Device.statevector in
  let j = Device.submit ~shots:64 d bell in
  Alcotest.(check int) "nothing delivered" 0 j.Device.delivered;
  Alcotest.(check (list (pair int int))) "empty histogram" [] j.Device.counts;
  Alcotest.(check bool) "failed verdict" true
    (match j.Device.verdict with Backend.Failed _ -> true | _ -> false);
  Alcotest.(check bool) "deadline respected" true
    (j.Device.attempts <= policy.Device.deadline);
  Alcotest.(check (option int)) "no modal outcome" None (Device.modal j)

let test_shot_loss_degrades () =
  let profile = Device.profile_of_spec "loss=1.0" in
  let d = Device.create ~profile Device.statevector in
  let j = Device.submit ~shots:512 d bell in
  Alcotest.(check bool) "shots lost" true (j.Device.lost > 0);
  Alcotest.(check int) "accounting balances" 512 (j.Device.delivered + j.Device.lost);
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 j.Device.counts in
  Alcotest.(check int) "histogram matches delivered" j.Device.delivered total;
  Alcotest.(check bool) "degraded verdict names the shortfall" true
    (match j.Device.verdict with
    | Backend.Degraded why ->
        (* e.g. "short 57 shots" *)
        String.length why >= 5 && String.sub why 0 5 = "short"
    | _ -> false)

let test_breaker_and_fallback () =
  let d =
    Device.create
      ~fallbacks:[ always_zero "backup" ]
      (always_fail "primary")
  in
  let j = Device.submit ~shots:256 d bell in
  Alcotest.(check int) "fallback salvages everything" 256 j.Device.delivered;
  Alcotest.(check (list (pair int int))) "all zeros" [ (0, 256) ] j.Device.counts;
  Alcotest.(check bool) "breaker tripped" true ((Device.stats d).Device.breaker_opens >= 1);
  Alcotest.(check bool) "fallback recorded" true
    (List.mem "backup" j.Device.backends_used);
  Alcotest.(check bool) "degraded, names the fallback" true
    (match j.Device.verdict with
    | Backend.Degraded why -> contains ~sub:"fallback backup" why
    | _ -> false)

let test_breaker_recloses () =
  (* a primary that fails exactly its first 3 attempts, then recovers:
     the breaker opens, cools down, half-opens, and the trial closes it *)
  let calls = ref 0 in
  let flaky_then_fine =
    { Device.t_name = "recovering";
      run_batch =
        (fun ~drift:_ ~seed:_ ~shots _ ->
          incr calls;
          if !calls <= 3 then failwith "still booting" else [ (1, shots) ]) }
  in
  let d = Device.create ~fallbacks:[ always_zero "backup" ] flaky_then_fine in
  let j = Device.submit ~shots:256 d bell in
  Alcotest.(check int) "everything delivered" 256 j.Device.delivered;
  Alcotest.(check bool) "breaker opened once" true
    ((Device.stats d).Device.breaker_opens = 1);
  Alcotest.(check bool) "breaker closed again" true (Device.breaker d = Device.Closed);
  Alcotest.(check bool) "primary back in use" true
    (List.mem "recovering" j.Device.backends_used)

let test_faulted_job_deterministic () =
  let mk () = Device.of_spec ~profile:(Device.profile_of_spec "hostile") "noisy:shots=256,seed=7" in
  let j1 = Device.submit (mk ()) x1 and j2 = Device.submit (mk ()) x1 in
  Alcotest.(check (list (pair int int))) "same histogram" j1.Device.counts j2.Device.counts;
  Alcotest.(check int) "same attempts" j1.Device.attempts j2.Device.attempts;
  Alcotest.(check int) "same retries" j1.Device.retries j2.Device.retries;
  Alcotest.(check int) "same losses" j1.Device.lost j2.Device.lost;
  Alcotest.(check string) "same verdict"
    (Backend.verdict_to_string j1.Device.verdict)
    (Backend.verdict_to_string j2.Device.verdict)

let test_jobs_invariance () =
  (* the fault stream is counter-based and the noisy target per-shot
     seeded: worker count cannot change the job *)
  let mk jobs =
    Device.create ~profile:(Device.profile_of_spec "flaky") ~seed:11
      (Device.noisy ~jobs Noise.ibm_qx2017)
  in
  let j1 = Device.submit ~shots:256 (mk 1) bell in
  let j4 = Device.submit ~shots:256 (mk 4) bell in
  Alcotest.(check (list (pair int int))) "--jobs invariant" j1.Device.counts j4.Device.counts;
  Alcotest.(check int) "same retries" j1.Device.retries j4.Device.retries

let test_outcome_projection () =
  let d = Device.create Device.statevector in
  let j = Device.submit ~shots:100 d x1 in
  match Device.outcome_of_job j with
  | Backend.Job { histogram; delivered; requested; verdict } ->
      Alcotest.(check int) "delivered" 100 delivered;
      Alcotest.(check int) "requested" 100 requested;
      Alcotest.(check bool) "validated" true (verdict = Backend.Validated);
      Alcotest.(check (list (pair int (float 1e-9))))
        "frequencies" [ (2, 1.0) ] histogram
  | _ -> Alcotest.fail "expected a Job outcome"

let test_budget_caps_elapsed () =
  (* a failing primary with a failing fallback burns attempts until the
     virtual wall-clock meter runs out; the overshoot past the budget is
     at most one attempt's worth, across the WHOLE chain *)
  let policy =
    { Device.default_policy with
      Device.max_retries = 50; deadline = 200; batches = 4;
      backoff_base_us = 100.; backoff_cap_us = 400.;
      attempt_us = 1_000.; stuck_us = 5_000. }
  in
  let budget_us = 3_000. in
  let d =
    Device.create ~policy
      ~fallbacks:[ always_fail "backup" ]
      (always_fail "primary")
  in
  let m = Obs.Memory.create () in
  Obs.reset ();
  Obs.set_sink (Some (Obs.Memory.sink m));
  let j =
    Fun.protect
      ~finally:(fun () -> Obs.set_sink None)
      (fun () -> Device.submit ~shots:64 ~budget_us d bell)
  in
  let worst_overshoot =
    policy.Device.stuck_us +. policy.Device.attempt_us
    +. (1.5 *. policy.Device.backoff_cap_us)
  in
  Alcotest.(check bool) "failed verdict" true
    (match j.Device.verdict with Backend.Failed _ -> true | _ -> false);
  Alcotest.(check bool) "meter exhausted" true (j.Device.elapsed_us >= budget_us);
  Alcotest.(check bool) "overshoot bounded by one attempt" true
    (j.Device.elapsed_us <= budget_us +. worst_overshoot);
  Alcotest.(check bool) "attempts stopped far below the attempt deadline" true
    (j.Device.attempts < policy.Device.deadline / 4);
  let totals = Obs.Summary.counter_totals (Obs.Memory.events m) in
  Alcotest.(check bool) "device.budget.stop emitted" true
    (Option.value ~default:0 (List.assoc_opt "device.budget.stop" totals) >= 1);
  (* same device, default (infinite) budget: the attempt deadline is the
     binding limit again, so the budgeted run was strictly shorter *)
  let d2 =
    Device.create ~policy ~fallbacks:[ always_fail "backup" ]
      (always_fail "primary")
  in
  let j2 = Device.submit ~shots:64 d2 bell in
  Alcotest.(check bool) "unbudgeted run burns more attempts" true
    (j2.Device.attempts > j.Device.attempts);
  Alcotest.(check bool) "elapsed is still metered" true
    (j2.Device.elapsed_us > j.Device.elapsed_us)

let test_obs_counters () =
  let m = Obs.Memory.create () in
  Obs.reset ();
  Obs.set_sink (Some (Obs.Memory.sink m));
  Fun.protect
    ~finally:(fun () -> Obs.set_sink None)
    (fun () ->
      let d =
        Device.of_spec ~profile:(Device.profile_of_spec "hostile,loss=0.9")
          "noisy:shots=256,seed=3"
      in
      ignore (Device.submit d x1));
  let totals = Obs.Summary.counter_totals (Obs.Memory.events m) in
  let total name = Option.value ~default:0 (List.assoc_opt name totals) in
  Alcotest.(check bool) "device.retry emitted" true (total "device.retry" > 0);
  Alcotest.(check bool) "device.breaker.open emitted" true
    (total "device.breaker.open" >= 1);
  Alcotest.(check bool) "device.shots.lost emitted" true
    (total "device.shots.lost" > 0)

let () =
  Alcotest.run "device"
    [ ( "profile",
        [ Alcotest.test_case "presets" `Quick test_profile_presets;
          Alcotest.test_case "overrides" `Quick test_profile_overrides;
          Alcotest.test_case "errors" `Quick test_profile_errors ] );
      ( "fault-stream",
        [ Alcotest.test_case "deterministic rolls" `Quick test_roll_deterministic ] );
      ( "checks",
        [ Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "drift score" `Quick test_drift_score;
          Alcotest.test_case "apportion" `Quick test_apportion ] );
      ( "executor",
        [ Alcotest.test_case "clean device validates" `Quick test_clean_device_validates;
          Alcotest.test_case "total failure is a verdict" `Quick
            test_total_failure_is_a_verdict;
          Alcotest.test_case "shot loss degrades" `Quick test_shot_loss_degrades;
          Alcotest.test_case "breaker routes to fallback" `Quick
            test_breaker_and_fallback;
          Alcotest.test_case "breaker re-closes after recovery" `Quick
            test_breaker_recloses;
          Alcotest.test_case "wall-clock budget bounds the chain" `Quick
            test_budget_caps_elapsed ] );
      ( "determinism",
        [ Alcotest.test_case "faulted job replays bit-identically" `Quick
            test_faulted_job_deterministic;
          Alcotest.test_case "--jobs invariance" `Quick test_jobs_invariance ] );
      ( "integration",
        [ Alcotest.test_case "outcome projection" `Quick test_outcome_projection;
          Alcotest.test_case "Obs counters" `Quick test_obs_counters ] ) ]
