(* The pass manager (Core.Pass) and the unified backends (Qc.Backend):
   pipeline validation, spec parsing, instrumentation-trace invariants,
   unitary equivalence of every registered pipeline permutation against
   the unoptimized lowering, and the options/spec round trip. *)

module Pass = Core.Pass
module Flow = Core.Flow
module Funcgen = Logic.Funcgen
module Perm = Logic.Perm

(* Widen [c] to [n] qubits (identity on the extra lines) so circuits whose
   lowerings added different ancilla counts stay comparable. *)
let widen n c =
  if Qc.Circuit.num_qubits c = n then c
  else Qc.Circuit.of_gates n (Qc.Circuit.gates c)

let equivalent a b =
  let n = max (Qc.Circuit.num_qubits a) (Qc.Circuit.num_qubits b) in
  Qc.Equiv.up_to_phase (widen n a) (widen n b) = Qc.Equiv.Equivalent

(* Every registered pipeline shape on small specs: reversible-layer
   subsets x lowering variants x quantum-layer permutations. *)
let rev_choices = [ []; [ "revsimp" ]; [ "resynth" ]; [ "revsimp"; "resynth" ] ]
let lower_choices = [ "cliffordt"; "cliffordt:no-rccx" ]
let qc_choices = [ []; [ "tpar" ]; [ "peephole" ]; [ "tpar"; "peephole" ]; [ "peephole"; "tpar" ] ]

let pipeline_specs =
  List.concat_map
    (fun rev ->
      List.concat_map
        (fun lower ->
          List.map (fun qc -> String.concat ";" (rev @ [ lower ] @ qc)) qc_choices)
        lower_choices)
    rev_choices

let check_trace_shape spec (res : Pass.result) =
  let pipeline = Pass.parse spec in
  let expected = List.map (fun (p : Pass.t) -> p.Pass.name) (Pass.passes pipeline) in
  Alcotest.(check (list string))
    (spec ^ ": one trace entry per pass, in order")
    expected
    (List.map (fun (e : Pass.entry) -> e.Pass.pass_name) res.Pass.trace);
  List.iter
    (fun (e : Pass.entry) ->
      Alcotest.(check bool) (spec ^ ": elapsed >= 0") true (e.Pass.elapsed >= 0.))
    res.Pass.trace;
  Alcotest.(check int)
    (spec ^ ": exactly one lowering entry")
    1
    (List.length
       (List.filter (fun (e : Pass.entry) -> e.Pass.layer = "lowering") res.Pass.trace));
  Alcotest.(check bool) (spec ^ ": ancillae >= 0") true (res.Pass.ancillae >= 0);
  (* snapshots chain: each pass's before is its predecessor's after *)
  ignore
    (List.fold_left
       (fun prev (e : Pass.entry) ->
         (match prev with
         | Some after ->
             Alcotest.(check bool)
               (spec ^ ": snapshots chain through " ^ e.Pass.pass_name)
               true
               (after = e.Pass.before)
         | None -> ());
         Some e.Pass.after)
       None res.Pass.trace)

let test_pipeline_permutations () =
  List.iter
    (fun p ->
      (* reference: bare lowering, no optimization anywhere *)
      let rc = Rev.Tbs.synth p in
      let baseline = Pass.run (Pass.parse "cliffordt") rc in
      List.iter
        (fun spec ->
          let res = Pass.run (Pass.parse spec) rc in
          check_trace_shape spec res;
          Alcotest.(check bool)
            (spec ^ ": equivalent to unoptimized lowering")
            true
            (equivalent res.Pass.circuit baseline.Pass.circuit))
        pipeline_specs)
    [ Funcgen.hwb 3; Funcgen.hwb 4; Perm.random (Helpers.rng 11) 3 ]

let test_route_pipeline () =
  let rc = Rev.Tbs.synth (Funcgen.hwb 3) in
  let res = Pass.run (Pass.parse "revsimp;cliffordt;tpar;route") rc in
  let route_entry =
    List.find (fun (e : Pass.entry) -> e.Pass.pass_name = "route") res.Pass.trace
  in
  (match route_entry.Pass.detail with
  | Some (Pass.Routed { swaps; final_placement }) ->
      Alcotest.(check bool) "swaps >= 0" true (swaps >= 0);
      Alcotest.(check int) "placement covers all qubits"
        (Qc.Circuit.num_qubits res.Pass.circuit)
        (Array.length final_placement)
  | _ -> Alcotest.fail "route left no Routed detail");
  Alcotest.(check bool) "routed circuit is LNN" true (Qc.Route.is_lnn res.Pass.circuit)

let all_option_records =
  let bools = [ true; false ] in
  List.concat_map
    (fun simplify_rev ->
      List.concat_map
        (fun rccx_ladder ->
          List.concat_map
            (fun tpar ->
              List.map
                (fun peephole ->
                  { Flow.default with simplify_rev; rccx_ladder; tpar; peephole })
                bools)
            bools)
        bools)
    bools

let test_spec_round_trip () =
  let p = Funcgen.hwb 4 in
  List.iter
    (fun options ->
      let spec = Flow.spec_of_options options in
      (* parse -> to_spec is the identity on canonical specs *)
      Alcotest.(check string) "spec round-trips" spec (Pass.to_spec (Pass.parse spec));
      let c_opts, r_opts = Flow.compile_perm ~options p in
      let c_spec, r_spec =
        Flow.compile_perm ~options ~pipeline:(Pass.parse spec) p
      in
      Alcotest.(check bool) (spec ^ ": identical circuit") true (c_opts = c_spec);
      Alcotest.(check bool)
        (spec ^ ": identical final resources")
        true
        (r_opts.Flow.resources_final = r_spec.Flow.resources_final))
    all_option_records

let test_flow_report_from_trace () =
  let _, report = Flow.compile_perm (Funcgen.hwb 4) in
  let trace = report.Flow.trace in
  Alcotest.(check (list string))
    "default pipeline trace"
    [ "revsimp"; "cliffordt"; "tpar"; "peephole" ]
    (List.map (fun (e : Pass.entry) -> e.Pass.pass_name) trace);
  let lower_entry =
    List.find (fun (e : Pass.entry) -> e.Pass.layer = "lowering") trace
  in
  (* the report is a projection of the trace *)
  Alcotest.(check bool) "rev_stats_simplified is the lowering's before" true
    (Pass.Rev_snap report.Flow.rev_stats_simplified = lower_entry.Pass.before);
  Alcotest.(check bool) "resources_mapped is the lowering's after" true
    (Pass.Qc_snap report.Flow.resources_mapped = lower_entry.Pass.after);
  let last = List.nth trace (List.length trace - 1) in
  Alcotest.(check bool) "resources_final is the last pass's after" true
    (Pass.Qc_snap report.Flow.resources_final = last.Pass.after);
  Alcotest.(check bool) "total elapsed >= 0" true (Pass.total_elapsed trace >= 0.)

let spec_error spec =
  match Pass.parse spec with
  | _ -> Alcotest.failf "%s: expected Spec_error" spec
  | exception Pass.Spec_error msg -> msg

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_spec_errors () =
  let check_msg spec fragment =
    let msg = spec_error spec in
    Alcotest.(check bool)
      (Printf.sprintf "%s: error %S names the token" spec msg)
      true (contains msg fragment)
  in
  check_msg "bogus" "bogus";
  check_msg "tpar;revsimp" "revsimp";
  check_msg "cliffordt;cliffordt" "second lowering";
  check_msg "tpar;cliffordt" "lowering boundary after a quantum-layer pass";
  check_msg "cliffordt:weird" "weird";
  check_msg "revsimp:arg" "takes no argument";
  check_msg "" "empty";
  (match Pass.parse_qc "revsimp" with
  | _ -> Alcotest.fail "parse_qc revsimp: expected Spec_error"
  | exception Pass.Spec_error msg ->
      Alcotest.(check bool) "parse_qc rejects rev passes" true (contains msg "revsimp"));
  match Pass.parse_qc "cliffordt" with
  | _ -> Alcotest.fail "parse_qc cliffordt: expected Spec_error"
  | exception Pass.Spec_error msg ->
      Alcotest.(check bool) "parse_qc rejects lowering" true (contains msg "cliffordt")

let test_separators_and_synonym () =
  let a = Pass.parse "revsimp;cliffordt;tpar" in
  let b = Pass.parse "revsimp, cliffordt, tpar" in
  Alcotest.(check string) "';' and ',' parse alike" (Pass.to_spec a) (Pass.to_spec b);
  let c = Pass.parse "clifford_t" in
  Alcotest.(check string) "clifford_t synonym" "cliffordt" (Pass.to_spec c);
  (* a lowering-less spec gets the default boundary inserted *)
  let d = Pass.parse "revsimp;tpar" in
  Alcotest.(check string) "default lowering inserted" "revsimp;cliffordt;tpar"
    (Pass.to_spec d)

let test_registry_catalog () =
  let names = Pass.names () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "revsimp"; "resynth"; "cliffordt"; "clifford_t"; "tpar"; "peephole"; "route" ];
  List.iter
    (fun (name, doc) ->
      Alcotest.(check bool) (name ^ " has doc") true (String.length doc > 0))
    (Pass.catalog ())

(* --- unified backends --- *)

let compiled_hwb3 =
  lazy (fst (Flow.compile_perm (Funcgen.hwb 3)))

let test_backend_statevector () =
  let c = Qc.Circuit.of_gates 2 [ Qc.Gate.X 0 ] in
  match (Qc.Backend.of_spec "statevector").Qc.Backend.run c with
  | Qc.Backend.Measured { outcome; deterministic } ->
      Alcotest.(check int) "X|00> = |01>" 1 outcome;
      Alcotest.(check bool) "deterministic" true deterministic
  | _ -> Alcotest.fail "expected Measured"

let test_backend_stabilizer () =
  let c = Qc.Circuit.of_gates 3 [ Qc.Gate.X 0; Qc.Gate.Cnot (0, 2) ] in
  match (Qc.Backend.of_spec "stabilizer").Qc.Backend.run c with
  | Qc.Backend.Measured { outcome; deterministic } ->
      Alcotest.(check int) "X;CNOT gives |101>" 5 outcome;
      Alcotest.(check bool) "deterministic" true deterministic
  | _ -> Alcotest.fail "expected Measured"

let test_backend_noisy () =
  let c = Lazy.force compiled_hwb3 in
  match (Qc.Backend.of_spec "noisy:shots=256,seed=7").Qc.Backend.run c with
  | Qc.Backend.Histogram h ->
      Alcotest.(check bool) "histogram non-empty" true (h <> []);
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. h in
      Alcotest.(check bool) "frequencies sum to 1" true (abs_float (total -. 1.) < 1e-9)
  | _ -> Alcotest.fail "expected Histogram"

let test_backend_exports () =
  let c = Lazy.force compiled_hwb3 in
  (match (Qc.Backend.of_spec "qasm").Qc.Backend.run c with
  | Qc.Backend.Exported s ->
      Alcotest.(check bool) "QASM header" true (contains s "OPENQASM 2.0")
  | _ -> Alcotest.fail "expected Exported");
  (match (Qc.Backend.of_spec "qsharp:Hwb3").Qc.Backend.run c with
  | Qc.Backend.Exported s ->
      Alcotest.(check bool) "Q# operation name" true (contains s "operation Hwb3")
  | _ -> Alcotest.fail "expected Exported");
  match (Qc.Backend.of_spec "draw").Qc.Backend.run c with
  | Qc.Backend.Exported s ->
      Alcotest.(check bool) "drawing non-empty" true (String.length s > 0)
  | _ -> Alcotest.fail "expected Exported"

let test_backend_errors () =
  (match Qc.Backend.of_spec "nosuch" with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Qc.Backend.Unsupported msg ->
      Alcotest.(check bool) "unknown backend names token" true (contains msg "nosuch"));
  (match Qc.Backend.of_spec "statevector:arg" with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Qc.Backend.Unsupported msg ->
      Alcotest.(check bool) "no-arg backend rejects arg" true (contains msg "statevector"));
  (* a T gate is not Clifford: the stabilizer backend must refuse it *)
  let non_clifford = Qc.Circuit.of_gates 1 [ Qc.Gate.T 0 ] in
  match (Qc.Backend.of_spec "stabilizer").Qc.Backend.run non_clifford with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Qc.Backend.Unsupported _ -> ()

let test_backend_catalog () =
  let names = List.map fst (Qc.Backend.catalog ()) in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " in catalog") true (List.mem n names))
    [ "statevector"; "stabilizer"; "noisy"; "qasm"; "qsharp"; "draw" ]

let test_flow_execute () =
  let p = Funcgen.hwb 3 in
  let circuit, _ = Flow.compile_perm p in
  match Flow.execute (Qc.Backend.of_spec "statevector") circuit with
  | Qc.Backend.Measured { outcome; deterministic } ->
      (* on |0...0> a permutation circuit computes p(0) on the spec lines *)
      Alcotest.(check bool) "deterministic" true deterministic;
      Alcotest.(check int) "computes p(0)" (Perm.apply p 0)
        (outcome land ((1 lsl Perm.num_vars p) - 1))
  | _ -> Alcotest.fail "expected Measured"

let () =
  Alcotest.run "pass"
    [ ( "pipelines",
        [ Alcotest.test_case "permutations equivalent + traced" `Slow
            test_pipeline_permutations;
          Alcotest.test_case "route pipeline" `Quick test_route_pipeline;
          Alcotest.test_case "spec round trip" `Slow test_spec_round_trip;
          Alcotest.test_case "report from trace" `Quick test_flow_report_from_trace;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "separators + synonym" `Quick test_separators_and_synonym;
          Alcotest.test_case "registry catalog" `Quick test_registry_catalog ] );
      ( "backends",
        [ Alcotest.test_case "statevector" `Quick test_backend_statevector;
          Alcotest.test_case "stabilizer" `Quick test_backend_stabilizer;
          Alcotest.test_case "noisy histogram" `Quick test_backend_noisy;
          Alcotest.test_case "exports" `Quick test_backend_exports;
          Alcotest.test_case "errors" `Quick test_backend_errors;
          Alcotest.test_case "catalog" `Quick test_backend_catalog;
          Alcotest.test_case "flow execute" `Quick test_flow_execute ] ) ]
