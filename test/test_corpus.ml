(* The workload corpus: entry grammar, the QASM interchange contract
   (every family emits OpenQASM that re-imports equivalent), snapshot
   persistence, and the regression-diff semantics bench_diff gates on. *)

let no_timings = { Corpus.default_config with Corpus.timings = false }

(* ---------------- entry grammar ---------------- *)

let test_parse_entries () =
  let e = Corpus.parse_entry "grover:5:3" in
  Alcotest.(check string) "name round-trips" "grover:5:3" (Corpus.entry_name e);
  Alcotest.(check string) "seed defaults to 0" "ghz:7"
    (Corpus.entry_name (Corpus.parse_entry "ghz:7"));
  List.iter
    (fun bad ->
      match Corpus.parse_entry bad with
      | _ -> Alcotest.failf "accepted bad spec %s" bad
      | exception Corpus.Bad_spec _ -> ())
    [ "nope:4"; "ghz"; "ghz:x"; "ghz:4:x"; "" ]

let test_manifests_parse () =
  List.iter
    (fun e -> ignore (Corpus.parse_entry (Corpus.entry_name e)))
    (Corpus.default_manifest @ Corpus.smoke_manifest)

(* ---------------- QASM interchange ---------------- *)

(* Every family's lowered circuit survives the OpenQASM round-trip
   equivalent — the property that makes the corpus meaningful to
   external toolchains. Sizes stay small enough for the exact or
   subspace checker to be decisive. *)
let qasm_roundtrip_gen =
  QCheck.make ~print:Corpus.entry_name
    QCheck.Gen.(
      let* family, lo, hi =
        oneofl
          [ ("dj", 2, 5); ("bv", 2, 5); ("ghz", 2, 6); ("qft", 2, 5);
            ("qpe", 2, 4); ("grover", 3, 4); ("adder", 2, 2); ("cmp", 2, 3);
            ("hwb", 3, 4); ("cliffordt", 2, 6) ]
      in
      let* size = int_range lo hi in
      let* seed = int_range 0 99 in
      return (Corpus.parse_entry (Printf.sprintf "%s:%d:%d" family size seed)))

let qasm_roundtrip =
  QCheck.Test.make ~name:"every family emits re-importable equivalent QASM"
    ~count:30 qasm_roundtrip_gen (fun e ->
      let raw, _ = Corpus.build e in
      let lowered, _ = Qc.Clifford_t.compile raw in
      let reimported = Qc.Qasm.parse (Qc.Qasm.to_string ~measure:false lowered) in
      match Qc.Equiv.check lowered reimported with
      | Qc.Equiv.Equivalent | Qc.Equiv.Probably_equivalent _ -> true
      | Qc.Equiv.Not_equivalent ->
          QCheck.Test.fail_reportf "%s: re-imported QASM not equivalent"
            (Corpus.entry_name e))

let test_to_qasm_parses () =
  List.iter
    (fun e ->
      let c = Qc.Qasm.parse (Corpus.to_qasm e) in
      Alcotest.(check bool)
        (Corpus.entry_name e ^ " emits nonempty QASM")
        true
        (Qc.Circuit.gates c <> []))
    Corpus.smoke_manifest

(* ---------------- running entries ---------------- *)

let test_run_entry_metrics () =
  let r, optimized =
    Corpus.run_entry ~config:no_timings (Corpus.parse_entry "grover:3:2")
  in
  Alcotest.(check int) "qubits match optimized circuit"
    (Qc.Circuit.num_qubits optimized) r.Corpus.qubits;
  Alcotest.(check int) "1q + 2q = gates" r.Corpus.gates
    (r.Corpus.gates_1q + r.Corpus.gates_2q);
  Alcotest.(check bool) "equivalence gate passed" true
    (r.Corpus.equiv = "equivalent" || r.Corpus.equiv = "equivalent-randomized");
  (match r.Corpus.fidelity with
  | Some f -> Alcotest.(check (float 1e-6)) "fidelity 1 from |0...0>" 1. f
  | None -> Alcotest.fail "small entry skipped the fidelity check");
  Alcotest.(check (float 0.)) "timings suppressed" 0. r.Corpus.compile_us

let test_run_deterministic () =
  let run () = Corpus.run ~config:no_timings Corpus.smoke_manifest in
  if run () <> run () then
    Alcotest.fail "two in-process corpus runs disagree"

(* the statevector kernel-plan layer and the worker count must never
   leak into corpus records: planned vs --no-plan and --jobs 1 vs 4
   produce byte-identical snapshots on the smoke slice *)
let test_run_plan_jobs_invariant () =
  let snap () =
    Obs.Json.to_string
      (Corpus.snapshot_to_json
         (Corpus.snapshot (Corpus.run ~config:no_timings Corpus.smoke_manifest)))
  in
  let with_setup ~plan ~jobs f =
    Qc.Statevector.set_plan_enabled plan;
    Par.set_default_jobs jobs;
    Fun.protect
      ~finally:(fun () ->
        Qc.Statevector.set_plan_enabled true;
        Par.set_default_jobs 1)
      f
  in
  let planned_j1 = with_setup ~plan:true ~jobs:1 snap in
  let planned_j4 = with_setup ~plan:true ~jobs:4 snap in
  let legacy_j1 = with_setup ~plan:false ~jobs:1 snap in
  Alcotest.(check string) "snapshot invariant under --jobs" planned_j1 planned_j4;
  Alcotest.(check string) "snapshot invariant under --no-plan" planned_j1 legacy_j1

(* ---------------- snapshot persistence ---------------- *)

let test_snapshot_roundtrip () =
  let s =
    Corpus.snapshot
      (Corpus.run ~config:no_timings
         [ Corpus.parse_entry "dj:4"; Corpus.parse_entry "cliffordt:4:1" ])
  in
  let back = Corpus.snapshot_of_json (Corpus.snapshot_to_json s) in
  if back <> s then Alcotest.fail "snapshot JSON round-trip changed records";
  (* the bench report wraps the snapshot as a "corpus" member *)
  let wrapped =
    Obs.Json.Obj [ ("pr", Obs.Json.Num 7.); ("corpus", Corpus.snapshot_to_json s) ]
  in
  if Corpus.snapshot_of_json wrapped <> s then
    Alcotest.fail "snapshot not found under the corpus member"

let test_snapshot_rejects_garbage () =
  List.iter
    (fun j ->
      match Corpus.snapshot_of_json (Obs.Json.parse j) with
      | _ -> Alcotest.failf "accepted %s" j
      | exception Corpus.Bad_snapshot _ -> ())
    [ "{}"; "{\"version\":1}"; "{\"version\":99,\"entries\":[]}";
      "{\"version\":1,\"entries\":[{\"name\":\"x\"}]}" ]

(* ---------------- diff semantics ---------------- *)

let record ?(name = "dj:4") ?(t_count = 10) ?(compile_us = 100.)
    ?(fidelity = Some 1.) ?(equiv = "equivalent") () =
  { Corpus.name; family = "dj"; size = 4; seed = 0; qubits = 4; gates = 20;
    gates_1q = 12; gates_2q = 8; t_count; depth = 15; t_depth = 4; ancillae = 0;
    compile_us; cache_hits = 1; cache_misses = 2; equiv; fidelity; tvd = None }

let snap rs = Corpus.snapshot rs

let regressions report = report.Corpus.Diff.regressions

let test_diff_identical () =
  let s = snap [ record () ] in
  let r = Corpus.Diff.diff s s in
  Alcotest.(check bool) "no regressions" false (Corpus.Diff.has_regressions r);
  Alcotest.(check int) "one common entry" 1 (List.length r.Corpus.Diff.common)

let test_diff_t_count_regression () =
  let r =
    Corpus.Diff.diff (snap [ record () ]) (snap [ record ~t_count:11 () ])
  in
  Alcotest.(check (list (pair string string)))
    "t_count regressed"
    [ ("dj:4", "t_count") ]
    (regressions r);
  (* improvements never regress *)
  let better =
    Corpus.Diff.diff (snap [ record () ]) (snap [ record ~t_count:9 () ])
  in
  Alcotest.(check bool) "improvement ok" false (Corpus.Diff.has_regressions better)

let test_diff_runtime_threshold () =
  (* compile_us default threshold is 0.5: +40% passes, +60% trips *)
  let old_s = snap [ record ~compile_us:100. () ] in
  let ok = Corpus.Diff.diff old_s (snap [ record ~compile_us:140. () ]) in
  Alcotest.(check bool) "+40%% under threshold" false (Corpus.Diff.has_regressions ok);
  let slow = Corpus.Diff.diff old_s (snap [ record ~compile_us:160. () ]) in
  Alcotest.(check (list (pair string string)))
    "+60%% trips"
    [ ("dj:4", "compile_us") ]
    (regressions slow)

let test_diff_fidelity_downward () =
  (* fidelity regresses downward (threshold 0.01) *)
  let old_s = snap [ record ~fidelity:(Some 1.) () ] in
  let drop = Corpus.Diff.diff old_s (snap [ record ~fidelity:(Some 0.95) () ]) in
  Alcotest.(check (list (pair string string)))
    "drop regresses"
    [ ("dj:4", "fidelity") ]
    (regressions drop);
  let rise =
    Corpus.Diff.diff (snap [ record ~fidelity:(Some 0.95) () ]) old_s
  in
  Alcotest.(check bool) "rise is fine" false (Corpus.Diff.has_regressions rise)

let test_diff_equiv_flip () =
  let r =
    Corpus.Diff.diff
      (snap [ record () ])
      (snap [ record ~equiv:"NOT-equivalent" () ])
  in
  Alcotest.(check (list (pair string string)))
    "equiv flip always regresses"
    [ ("dj:4", "equiv") ]
    (regressions r)

let test_diff_added_removed () =
  let r =
    Corpus.Diff.diff
      (snap [ record (); record ~name:"old-only" () ])
      (snap [ record (); record ~name:"new-only" () ])
  in
  Alcotest.(check (list string)) "added" [ "new-only" ] r.Corpus.Diff.added;
  Alcotest.(check (list string)) "removed" [ "old-only" ] r.Corpus.Diff.removed;
  Alcotest.(check bool) "membership churn is not a regression" false
    (Corpus.Diff.has_regressions r)

let test_diff_custom_thresholds () =
  let thresholds = Corpus.Diff.parse_thresholds "t_count=0.5" in
  let r =
    Corpus.Diff.diff ~thresholds
      (snap [ record ~t_count:10 () ])
      (snap [ record ~t_count:14 () ])
  in
  Alcotest.(check bool) "+40%% under a 0.5 threshold" false
    (Corpus.Diff.has_regressions r);
  List.iter
    (fun bad ->
      match Corpus.Diff.parse_thresholds bad with
      | _ -> Alcotest.failf "accepted %s" bad
      | exception Corpus.Diff.Bad_threshold _ -> ())
    [ "martian=0.1"; "t_count=x"; "t_count=-1"; "t_count" ]

let () =
  Alcotest.run "corpus"
    [ ( "grammar",
        [ Alcotest.test_case "parse entries" `Quick test_parse_entries;
          Alcotest.test_case "manifests parse" `Quick test_manifests_parse ] );
      ( "qasm",
        [ QCheck_alcotest.to_alcotest qasm_roundtrip;
          Alcotest.test_case "to_qasm parses" `Quick test_to_qasm_parses ] );
      ( "run",
        [ Alcotest.test_case "entry metrics" `Quick test_run_entry_metrics;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "plan/jobs invariant" `Quick
            test_run_plan_jobs_invariant ] );
      ( "snapshot",
        [ Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_snapshot_rejects_garbage ] );
      ( "diff",
        [ Alcotest.test_case "identical" `Quick test_diff_identical;
          Alcotest.test_case "t_count regression" `Quick test_diff_t_count_regression;
          Alcotest.test_case "runtime threshold" `Quick test_diff_runtime_threshold;
          Alcotest.test_case "fidelity downward" `Quick test_diff_fidelity_downward;
          Alcotest.test_case "equiv flip" `Quick test_diff_equiv_flip;
          Alcotest.test_case "added/removed" `Quick test_diff_added_removed;
          Alcotest.test_case "custom thresholds" `Quick test_diff_custom_thresholds ] ) ]
