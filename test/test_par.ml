(* The multicore execution runtime: pool primitives, the determinism
   contract (any jobs count = the ~jobs:1 reference, bit for bit), the
   gate-fusion prepass, the shared-CDF sampler and the sparse histogram
   representation. *)

open Qc

(* --- pool primitives --- *)

let with_temp_pool jobs f =
  let p = Par.create jobs in
  Fun.protect ~finally:(fun () -> Par.shutdown p) (fun () -> f p)

let test_parallel_for_covers () =
  with_temp_pool 4 (fun p ->
      let a = Array.make 1000 (-1) in
      Par.parallel_for p ~start:0 ~stop:1000 (fun lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- 2 * i
          done);
      Array.iteri (fun i v -> Alcotest.(check int) "covered" (2 * i) v) a)

let test_parallel_for_chunks () =
  with_temp_pool 3 (fun p ->
      let a = Array.make 100 0 in
      Par.parallel_for p ~chunks:17 ~start:0 ~stop:100 (fun lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- a.(i) + 1
          done);
      Alcotest.(check int) "each index exactly once" 100 (Array.fold_left ( + ) 0 a))

let test_map_reduce_order () =
  with_temp_pool 4 (fun p ->
      let r =
        Par.map_reduce p ~tasks:16 ~map:(fun i -> [ i ]) ~reduce:( @ ) ~init:[]
      in
      Alcotest.(check (list int)) "index order" (List.init 16 Fun.id) r)

let test_exception_propagates () =
  with_temp_pool 4 (fun p ->
      Alcotest.check_raises "task exception re-raised" (Failure "boom") (fun () ->
          Par.run_tasks p
            (Array.init 8 (fun i () -> if i = 5 then failwith "boom"))))

let test_pool_reusable_after_raise () =
  (* the Par.run_tasks exception contract: a raising task drains the
     batch and re-raises, leaving the pool fully reusable *)
  with_temp_pool 4 (fun p ->
      (try
         Par.parallel_for p ~start:0 ~stop:100 (fun lo _ ->
             if lo >= 0 then failwith "kaboom")
       with Failure _ -> ());
      let a = Array.make 100 (-1) in
      Par.parallel_for p ~start:0 ~stop:100 (fun lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- i
          done);
      Array.iteri (fun i v -> Alcotest.(check int) "pool still covers" i v) a;
      let sum =
        Par.map_reduce p ~tasks:8 ~map:Fun.id ~reduce:( + ) ~init:0
      in
      Alcotest.(check int) "map_reduce still works" 28 sum)

let test_nested_calls_run () =
  (* a body that re-enters the pool runs sequentially, not deadlocking *)
  with_temp_pool 4 (fun p ->
      let a = Array.make 64 0 in
      Par.parallel_for p ~start:0 ~stop:8 (fun lo hi ->
          for i = lo to hi - 1 do
            Par.parallel_for p ~start:(8 * i) ~stop:(8 * (i + 1)) (fun lo2 hi2 ->
                for j = lo2 to hi2 - 1 do
                  a.(j) <- j + 1
                done)
          done);
      Array.iteri (fun i v -> Alcotest.(check int) "nested covered" (i + 1) v) a)

let test_with_pool_width () =
  Par.with_pool ~jobs:4 (fun p ->
      Alcotest.(check bool) "at least requested width" true (Par.size p >= 4))

(* --- checked cancellation (run_tasks_cancellable contract) --- *)

let test_cancel_before_submit () =
  (* a token set before submission skips every task, at any pool width *)
  List.iter
    (fun jobs ->
      with_temp_pool jobs (fun p ->
          let token = Par.cancel_token () in
          Par.cancel token;
          let hits = Atomic.make 0 in
          let ran =
            Par.run_tasks_cancellable p token
              (Array.init 16 (fun _ () -> Atomic.incr hits))
          in
          Alcotest.(check int) "no task body ran" 0 (Atomic.get hits);
          Alcotest.(check int) "ran count is zero" 0 ran))
    [ 1; 4 ]

let test_cancel_mid_run () =
  (* at jobs:1 tasks run in index order, so a token set by task k stops
     every later task deterministically *)
  with_temp_pool 1 (fun p ->
      let token = Par.cancel_token () in
      let hits = ref [] in
      let ran =
        Par.run_tasks_cancellable p token
          (Array.init 8 (fun i () ->
               hits := i :: !hits;
               if i = 2 then Par.cancel token))
      in
      Alcotest.(check (list int)) "tasks after the cancel skipped" [ 2; 1; 0 ]
        !hits;
      Alcotest.(check int) "ran count matches" 3 ran;
      Alcotest.(check bool) "token reads cancelled" true (Par.cancelled token))

let test_cancel_pool_reusable () =
  (* cancellation is per-token: the pool and a fresh token run normally *)
  with_temp_pool 4 (fun p ->
      let dead = Par.cancel_token () in
      Par.cancel dead;
      let _ = Par.run_tasks_cancellable p dead (Array.make 8 (fun () -> ())) in
      let live = Par.cancel_token () in
      let hits = Atomic.make 0 in
      let ran =
        Par.run_tasks_cancellable p live
          (Array.init 8 (fun _ () -> Atomic.incr hits))
      in
      Alcotest.(check int) "all tasks ran" 8 (Atomic.get hits);
      Alcotest.(check int) "ran count full" 8 ran)

(* --- determinism: any jobs count reproduces the ~jobs:1 reference --- *)

let bell3 =
  Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1); Gate.T 1; Gate.Cnot (1, 2) ]

let test_shots_jobs_invariant () =
  let reference = Noise.run_shots ~seed:11 ~jobs:1 Noise.ibm_qx2017 bell3 ~shots:300 in
  List.iter
    (fun jobs ->
      let c = Noise.run_shots ~seed:11 ~jobs Noise.ibm_qx2017 bell3 ~shots:300 in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        true
        (Noise.counts_equal reference c))
    [ 2; 3; 4 ]

let test_shots_jobs_invariant_noiseless () =
  (* the shared-sampler fast path must honour the same contract *)
  let params = { Noise.noiseless with Noise.readout = 0.1 } in
  let reference = Noise.run_shots ~seed:5 ~jobs:1 params bell3 ~shots:200 in
  let c4 = Noise.run_shots ~seed:5 ~jobs:4 params bell3 ~shots:200 in
  Alcotest.(check bool) "noiseless path invariant" true (Noise.counts_equal reference c4)

let test_runs_statistics_jobs_invariant () =
  let m1, s1 = Noise.runs_statistics ~jobs:1 Noise.ibm_qx2017 bell3 ~shots:128 ~runs:2 in
  let m4, s4 = Noise.runs_statistics ~jobs:4 Noise.ibm_qx2017 bell3 ~shots:128 ~runs:2 in
  Alcotest.(check bool) "means identical" true (m1 = m4);
  Alcotest.(check bool) "stddevs identical" true (s1 = s4)

let test_obs_totals_under_jobs () =
  (* the per-domain accumulate + single flush must preserve counter totals *)
  let totals jobs =
    let m = Obs.Memory.create () in
    Obs.reset ();
    Obs.set_sink (Some (Obs.Memory.sink m));
    let (_ : Noise.counts) =
      Noise.run_shots ~seed:3 ~jobs Noise.ibm_qx2017 bell3 ~shots:100
    in
    Obs.set_sink None;
    Obs.Summary.counter_totals (Obs.Memory.events m)
  in
  Alcotest.(check bool) "counter totals jobs-invariant" true (totals 1 = totals 4)

(* --- gate fusion --- *)

let amp_close a b =
  let d = Complex.norm (Complex.sub a b) in
  d < 1e-9

let same_amplitudes s1 s2 =
  Statevector.size s1 = Statevector.size s2
  && (let ok = ref true in
      for x = 0 to Statevector.size s1 - 1 do
        if not (amp_close (Statevector.amplitude s1 x) (Statevector.amplitude s2 x))
        then ok := false
      done;
      !ok)

(* [run ~fuse:true] skips the prepass below [fuse_min_qubits], so force
   it through the prepass entry points to keep small circuits covered. *)
let run_fused c =
  let s = Statevector.init (Circuit.num_qubits c) in
  List.iter (Statevector.apply_op s)
    (Statevector.fuse_gates (Circuit.to_array c));
  s

let fusion_equiv =
  Helpers.prop "fused = unfused on random Clifford+T" ~count:60
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      Helpers.qcircuit_gen ~diagonals:(seed mod 2 = 0) 4 40)
    (fun c -> same_amplitudes (run_fused c) (Statevector.run ~fuse:false c))

let test_fusion_rz_swap () =
  (* gates the random generator never emits: Rz runs, Swap barriers, Mcz *)
  let c =
    Circuit.of_gates 4
      [ Gate.H 0; Gate.Rz (0.3, 0); Gate.Rz (-1.1, 0); Gate.T 0; Gate.Z 0;
        Gate.Cz (0, 1); Gate.Swap (1, 2); Gate.H 2; Gate.S 2; Gate.Sdg 2;
        Gate.Mcz [ 0; 1; 2; 3 ]; Gate.Ccz (0, 1, 3); Gate.Rz (0.7, 3);
        Gate.T 1; Gate.Sdg 2 ]
  in
  Alcotest.(check bool) "equivalent" true
    (same_amplitudes (run_fused c) (Statevector.run ~fuse:false c))

let test_fusion_preserves_exact_basis () =
  (* X-only runs fuse to an exact permutation: amplitudes stay 0/1 *)
  let c = Circuit.of_gates 2 [ Gate.X 0; Gate.X 0; Gate.X 0; Gate.X 1 ] in
  let s = run_fused c in
  Alcotest.(check bool) "exactly |11>" true (Statevector.prob s 0b11 = 1.)

(* --- sampler: binary search = linear scan --- *)

let test_sampler_matches_sample () =
  let s = Statevector.run bell3 in
  let smp = Statevector.sampler s in
  for seed = 0 to 50 do
    let st1 = Helpers.rng seed and st2 = Helpers.rng seed in
    Alcotest.(check int) "same draw"
      (Statevector.sample st1 s) (Statevector.sample_with smp st2)
  done

(* --- sparse histograms --- *)

let test_sparse_counts_api () =
  let c = Noise.counts_make 21 in
  (match c with
  | Noise.Sparse _ -> ()
  | Noise.Dense _ -> Alcotest.fail "expected sparse above 20 qubits");
  Noise.counts_add c 5 2;
  Noise.counts_add c (1 lsl 20) 1;
  Noise.counts_add c 5 1;
  Alcotest.(check int) "count" 3 (Noise.count c 5);
  Alcotest.(check int) "count" 1 (Noise.count c (1 lsl 20));
  Alcotest.(check int) "absent" 0 (Noise.count c 7);
  Alcotest.(check int) "total" 4 (Noise.total_counts c);
  Alcotest.(check int) "size" (1 lsl 21) (Noise.counts_size c);
  Alcotest.(check (list (pair int int))) "alist sorted"
    [ (5, 3); (1 lsl 20, 1) ]
    (Noise.counts_to_alist c)

let test_sparse_run_shots () =
  (* a 21-qubit noiseless run: the histogram must not allocate 2^21 ints *)
  let c = Circuit.of_gates 21 [ Gate.X 20 ] in
  let counts = Noise.run_shots ~seed:1 Noise.noiseless c ~shots:5 in
  (match counts with
  | Noise.Sparse _ -> ()
  | Noise.Dense _ -> Alcotest.fail "expected sparse at 21 qubits");
  Alcotest.(check int) "all shots on |1…0>" 5 (Noise.count counts (1 lsl 20))

(* --- run_on telemetry (satellite: same span/counters as run) --- *)

let test_run_on_telemetry () =
  let m = Obs.Memory.create () in
  Obs.set_sink (Some (Obs.Memory.sink m));
  let s = Statevector.init 3 in
  Statevector.run_on s bell3;
  Obs.set_sink None;
  let events = Obs.Memory.events m in
  let spans = Obs.Summary.span_totals events in
  Alcotest.(check bool) "span emitted" true
    (List.mem_assoc "qc.statevector.run" spans);
  let counters = Obs.Summary.counter_totals events in
  Alcotest.(check (option int)) "gates counted"
    (Some (Circuit.num_gates bell3))
    (List.assoc_opt "qc.statevector.gates_applied" counters)

(* --- the CLI surface --- *)

let test_shell_jobs_command () =
  let out = Core.Shell.run_script "jobs 3; jobs" in
  Alcotest.(check bool) "set" true (Helpers.contains ~needle:"jobs set to 3" out);
  Alcotest.(check bool) "query" true (Helpers.contains ~needle:"jobs: 3" out);
  Par.set_default_jobs 1

let test_backend_jobs_spec () =
  let b = Backend.of_spec "noisy:shots=64,jobs=2" in
  (match b.Backend.run bell3 with
  | Backend.Histogram freqs ->
      let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. freqs in
      Alcotest.(check (float 1e-9)) "frequencies sum to 1" 1. total
  | _ -> Alcotest.fail "expected a histogram");
  Alcotest.check_raises "bad jobs rejected"
    (Backend.Unsupported "noisy:jobs: expected a positive integer, got x")
    (fun () -> ignore (Backend.of_spec "noisy:jobs=x"))

let () =
  Alcotest.run "par"
    [ ( "pool",
        [ Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers;
          Alcotest.test_case "explicit chunk counts" `Quick test_parallel_for_chunks;
          Alcotest.test_case "map_reduce index order" `Quick test_map_reduce_order;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "pool reusable after raise" `Quick
            test_pool_reusable_after_raise;
          Alcotest.test_case "nested calls degrade" `Quick test_nested_calls_run;
          Alcotest.test_case "with_pool width" `Quick test_with_pool_width ] );
      ( "cancellation",
        [ Alcotest.test_case "pre-cancelled token skips all" `Quick
            test_cancel_before_submit;
          Alcotest.test_case "mid-run cancel at jobs 1" `Quick test_cancel_mid_run;
          Alcotest.test_case "pool reusable after cancel" `Quick
            test_cancel_pool_reusable ] );
      ( "determinism",
        [ Alcotest.test_case "run_shots jobs 1/2/3/4" `Quick test_shots_jobs_invariant;
          Alcotest.test_case "noiseless fast path" `Quick test_shots_jobs_invariant_noiseless;
          Alcotest.test_case "runs_statistics" `Quick test_runs_statistics_jobs_invariant;
          Alcotest.test_case "telemetry totals" `Quick test_obs_totals_under_jobs ] );
      ( "fusion",
        [ fusion_equiv;
          Alcotest.test_case "rz/swap/mcz circuit" `Quick test_fusion_rz_swap;
          Alcotest.test_case "exact basis preserved" `Quick test_fusion_preserves_exact_basis ] );
      ( "sampling",
        [ Alcotest.test_case "binary search = linear scan" `Quick test_sampler_matches_sample;
          Alcotest.test_case "sparse counts api" `Quick test_sparse_counts_api;
          Alcotest.test_case "sparse run_shots at 21q" `Quick test_sparse_run_shots ] );
      ( "integration",
        [ Alcotest.test_case "run_on telemetry" `Quick test_run_on_telemetry;
          Alcotest.test_case "shell jobs command" `Quick test_shell_jobs_command;
          Alcotest.test_case "backend noisy:jobs" `Quick test_backend_jobs_spec ] ) ]
