open Qc

let bell = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ]

let test_noiseless_params () =
  (* with the zero channel, a basis-state circuit gives one outcome *)
  let c = Circuit.of_gates 2 [ Gate.X 1 ] in
  let counts = Noise.run_shots Noise.noiseless c ~shots:200 in
  Alcotest.(check int) "all shots on |10>" 200 (Noise.count counts 0b10);
  Alcotest.(check int) "nothing elsewhere" 0 (Noise.count counts 0)

let test_noiseless_bell () =
  let counts = Noise.run_shots Noise.noiseless bell ~shots:2000 in
  Alcotest.(check int) "no |01>" 0 (Noise.count counts 1);
  Alcotest.(check int) "no |10>" 0 (Noise.count counts 2);
  let f = Float.of_int (Noise.count counts 0) /. 2000. in
  Alcotest.(check bool) "balanced" true (f > 0.43 && f < 0.57)

let test_shots_conserved () =
  let counts = Noise.run_shots Noise.ibm_qx2017 bell ~shots:512 in
  Alcotest.(check int) "histogram sums to shots" 512 (Noise.total_counts counts)

let test_determinism_by_seed () =
  let a = Noise.run_shots ~seed:11 Noise.ibm_qx2017 bell ~shots:256 in
  let b = Noise.run_shots ~seed:11 Noise.ibm_qx2017 bell ~shots:256 in
  let c = Noise.run_shots ~seed:12 Noise.ibm_qx2017 bell ~shots:256 in
  Alcotest.(check bool) "same seed, same histogram" true (Noise.counts_equal a b);
  Alcotest.(check bool) "different seed differs" true (not (Noise.counts_equal a c))

let test_noise_degrades () =
  (* readout-only noise flips some outcomes of a deterministic circuit *)
  let c = Circuit.of_gates 3 [ Gate.X 0; Gate.X 1; Gate.X 2 ] in
  let params = { Noise.noiseless with Noise.readout = 0.2 } in
  let counts = Noise.run_shots params c ~shots:2000 in
  let correct = Float.of_int (Noise.count counts 7) /. 2000. in
  (* expect (1-0.2)^3 = 0.512 *)
  Alcotest.(check bool) "readout errors visible" true (correct > 0.42 && correct < 0.6)

let test_gate_noise_scales_with_depth () =
  (* more gates, lower success: compare 2 vs 20 identity-equivalent X pairs *)
  let params = { Noise.noiseless with Noise.p1 = 0.02 } in
  let mk reps = Circuit.of_gates 1 (List.concat (List.init reps (fun _ -> [ Gate.X 0; Gate.X 0 ]))) in
  let p_of reps =
    let counts = Noise.run_shots ~seed:5 params (mk reps) ~shots:3000 in
    Float.of_int (Noise.count counts 0) /. 3000.
  in
  Alcotest.(check bool) "deeper circuit is noisier" true (p_of 20 < p_of 2)

let test_success_probability () =
  let counts = Noise.counts_of_array [| 10; 70; 20; 0 |] in
  Alcotest.(check (float 1e-12)) "success prob" 0.7 (Noise.success_probability counts 1)

let test_runs_statistics_shape () =
  let mean, std = Noise.runs_statistics Noise.ibm_qx2017 bell ~shots:256 ~runs:3 in
  Alcotest.(check int) "mean size" 4 (Array.length mean);
  Alcotest.(check int) "std size" 4 (Array.length std);
  let total = Array.fold_left ( +. ) 0. mean in
  Alcotest.(check (float 1e-9)) "means sum to 1" 1. total;
  Array.iter (fun s -> Alcotest.(check bool) "std nonnegative" true (s >= 0.)) std

let test_amplitude_damping_rate () =
  (* one X gate with damping γ: P(decay back to 0) ≈ γ *)
  let gamma = 0.3 in
  let params = { Noise.noiseless with Noise.gamma } in
  let c = Circuit.of_gates 1 [ Gate.X 0 ] in
  let counts = Noise.run_shots ~seed:2 params c ~shots:5000 in
  let p0 = Float.of_int (Noise.count counts 0) /. 5000. in
  Alcotest.(check bool) "decay rate ~ gamma" true (Float.abs (p0 -. gamma) < 0.03)

let test_amplitude_damping_accumulates () =
  (* deeper circuits relax more: |1> through k waiting gates *)
  let params = { Noise.noiseless with Noise.gamma = 0.05 } in
  let mk k =
    Circuit.of_gates 2 (Gate.X 0 :: List.concat (List.init k (fun _ -> [ Gate.Z 0; Gate.Z 0 ])))
  in
  let survival k =
    let counts = Noise.run_shots ~seed:3 params (mk k) ~shots:3000 in
    Float.of_int (Noise.count counts 1) /. 3000.
  in
  Alcotest.(check bool) "more depth, more decay" true (survival 20 < survival 2)

let test_amplitude_damping_fixes_ground_state () =
  (* |0> is a fixed point of the T1 channel *)
  let params = { Noise.noiseless with Noise.gamma = 0.5 } in
  let c = Circuit.of_gates 1 [ Gate.Z 0; Gate.Z 0 ] in
  let counts = Noise.run_shots params c ~shots:500 in
  Alcotest.(check int) "ground state untouched" 500 (Noise.count counts 0)

let test_damping_preserves_norm () =
  let st = Helpers.rng 9 in
  for _ = 1 to 30 do
    let s = Statevector.run (Circuit.of_gates 3 [ Gate.H 0; Gate.Cnot (0, 1); Gate.T 1; Gate.H 2 ]) in
    let q = Random.State.int st 3 in
    let gamma = 0.2 +. Random.State.float st 0.5 in
    let p_jump = gamma *. Statevector.prob_of_qubit s q in
    let jump = Random.State.float st 1. < p_jump in
    Statevector.amplitude_damp s q ~gamma ~jump;
    Alcotest.(check (float 1e-9)) "norm 1" 1. (Statevector.norm2 s)
  done

let test_counts_repr_boundary () =
  (* exactly at sparse_threshold qubits the histogram is still dense;
     merge and equality must work across the Dense/Sparse divide for
     the same outcome space *)
  let n = Noise.sparse_threshold in
  let dense = Noise.counts_make n in
  Alcotest.(check bool) "threshold width is dense" true
    (match dense with Noise.Dense _ -> true | Noise.Sparse _ -> false);
  Alcotest.(check bool) "one more qubit is sparse" true
    (match Noise.counts_make (n + 1) with
    | Noise.Sparse _ -> true
    | Noise.Dense _ -> false);
  (* a sparse histogram over the same 2^n outcome space *)
  let sparse () = Noise.Sparse { size = 1 lsl n; tbl = Hashtbl.create 8 } in
  let fill c = List.iter (fun (x, k) -> Noise.counts_add c x k) in
  let content = [ (0, 3); (7, 2); ((1 lsl n) - 1, 5) ] in
  let d = dense and s = sparse () in
  fill d content;
  fill s content;
  Alcotest.(check bool) "equal across representations" true (Noise.counts_equal d s);
  Alcotest.(check bool) "equal is symmetric" true (Noise.counts_equal s d);
  (* merge dense <- sparse *)
  let d2 = Noise.counts_make n in
  fill d2 [ (7, 1) ];
  let m = Noise.counts_merge d2 s in
  Alcotest.(check int) "merged count" 3 (Noise.count m 7);
  Alcotest.(check int) "merged tail" 5 (Noise.count m ((1 lsl n) - 1));
  Alcotest.(check int) "merged total" 11 (Noise.total_counts m);
  (* merge sparse <- dense *)
  let s2 = sparse () in
  fill s2 [ (0, 1) ];
  let m2 = Noise.counts_merge s2 d in
  Alcotest.(check int) "merged count" 4 (Noise.count m2 0);
  Alcotest.(check int) "merged total" 11 (Noise.total_counts m2);
  (* alists agree regardless of representation *)
  Alcotest.(check (list (pair int int)))
    "ascending alist across representations"
    (Noise.counts_to_alist d) (Noise.counts_to_alist s);
  (* different outcome-space sizes never compare equal *)
  let wider = Noise.Sparse { size = 1 lsl (n + 1); tbl = Hashtbl.create 8 } in
  fill wider content;
  Alcotest.(check bool) "size mismatch differs" false (Noise.counts_equal d wider)

let test_e2_shape () =
  (* the Fig. 6 shape: correct shift dominates but is well below 1 *)
  let inst = Core.Hidden_shift.Inner_product { n = 2; s = 1 } in
  let mean, _ = Core.Hidden_shift.run_noisy ~seed:3 Noise.ibm_qx2017 inst ~shots:1024 ~runs:3 in
  let best = ref 0 in
  Array.iteri (fun x m -> if m > mean.(!best) then best := x) mean;
  Alcotest.(check int) "mode is the planted shift" 1 !best;
  Alcotest.(check bool) "success in the paper's band" true (mean.(1) > 0.45 && mean.(1) < 0.85)

let () =
  Alcotest.run "noise"
    [ ( "noise",
        [ Alcotest.test_case "noiseless params" `Quick test_noiseless_params;
          Alcotest.test_case "noiseless bell" `Quick test_noiseless_bell;
          Alcotest.test_case "shots conserved" `Quick test_shots_conserved;
          Alcotest.test_case "seed determinism" `Quick test_determinism_by_seed;
          Alcotest.test_case "readout errors" `Quick test_noise_degrades;
          Alcotest.test_case "noise scales with depth" `Quick test_gate_noise_scales_with_depth;
          Alcotest.test_case "success probability" `Quick test_success_probability;
          Alcotest.test_case "runs statistics" `Quick test_runs_statistics_shape;
          Alcotest.test_case "T1 decay rate" `Quick test_amplitude_damping_rate;
          Alcotest.test_case "T1 accumulates" `Quick test_amplitude_damping_accumulates;
          Alcotest.test_case "T1 fixes ground state" `Quick test_amplitude_damping_fixes_ground_state;
          Alcotest.test_case "damping preserves norm" `Quick test_damping_preserves_norm;
          Alcotest.test_case "counts repr boundary" `Quick test_counts_repr_boundary;
          Alcotest.test_case "Fig. 6 shape" `Quick test_e2_shape ] ) ]
