open Rev
module Truth_table = Logic.Truth_table
module Funcgen = Logic.Funcgen

let test_constant_folding () =
  let g = Xag.create 2 in
  let a = Xag.input g 0 in
  Alcotest.(check int) "a AND 0" Xag.const_false (Xag.and_ g a Xag.const_false);
  Alcotest.(check int) "a AND 1" a (Xag.and_ g a Xag.const_true);
  Alcotest.(check int) "a AND a" a (Xag.and_ g a a);
  Alcotest.(check int) "a AND !a" Xag.const_false (Xag.and_ g a (Xag.complement a));
  Alcotest.(check int) "a XOR a" Xag.const_false (Xag.xor g a a);
  Alcotest.(check int) "a XOR 0" a (Xag.xor g a Xag.const_false);
  Alcotest.(check int) "a XOR 1" (Xag.complement a) (Xag.xor g a Xag.const_true)

let test_structural_hashing () =
  let g = Xag.create 2 in
  let a = Xag.input g 0 and b = Xag.input g 1 in
  let x1 = Xag.and_ g a b and x2 = Xag.and_ g b a in
  Alcotest.(check int) "shared node" x1 x2;
  Alcotest.(check int) "one internal node" 1 (Xag.num_nodes g)

let test_of_bexpr_eval () =
  let e = Logic.Bexpr.parse "(a & b) ^ (c | !d)" in
  let g = Xag.of_bexpr 4 e in
  let tt = Logic.Bexpr.to_truth_table ~n:4 e in
  List.iteri
    (fun _ out -> Helpers.check_tt_eq "xag evaluates the expression" tt out)
    (Xag.to_truth_tables g)

let test_of_esops () =
  let f = Funcgen.majority 5 in
  let g = Xag.of_esops 5 [ Logic.Esop_opt.minimize f ] in
  Helpers.check_tt_eq "xag of esop" f (List.hd (Xag.to_truth_tables g))

let test_ripple_adder () =
  for n = 1 to 4 do
    let g = Xag.ripple_adder n in
    for a = 0 to (1 lsl n) - 1 do
      for b = 0 to (1 lsl n) - 1 do
        let z = a lor (b lsl n) in
        Alcotest.(check int) "ripple adder" (a + b) (Xag.eval g z)
      done
    done;
    (* structural adder is small: ~5 nodes per bit *)
    Alcotest.(check bool) "compact" true (Xag.num_nodes g <= (5 * n) + 1)
  done

let test_cone () =
  let g = Xag.ripple_adder 3 in
  let outs = Xag.outputs g in
  (* cone of the LSB sum is much smaller than the full network *)
  let c0 = Xag.cone g [ List.hd outs ] in
  let call = Xag.cone g outs in
  Alcotest.(check bool) "lsb cone smaller" true (List.length c0 < List.length call);
  Alcotest.(check int) "full cone covers all nodes" (Xag.num_nodes g) (List.length call)

(* ---- rewriting ---- *)

let prop_rewrite_bexpr =
  Helpers.prop "rewrite preserves Bexpr semantics and never grows" ~count:60
    (Helpers.bexpr_gen ~vars:5 ())
    (fun e ->
      let g = Xag.of_bexpr 5 e in
      let g' = Xag.rewrite g in
      let tt = Logic.Bexpr.to_truth_table ~n:5 e in
      Truth_table.equal tt (List.hd (Xag.to_truth_tables g'))
      && Xag.num_nodes g' <= Xag.num_nodes g)

let prop_of_truth_table =
  Helpers.prop "of_truth_table tabulates back, before and after rewrite" ~count:40
    (Helpers.tt_gen 5)
    (fun f ->
      let g = Xag.of_truth_table f in
      Truth_table.equal f (List.hd (Xag.to_truth_tables g))
      && Truth_table.equal f (List.hd (Xag.to_truth_tables (Xag.rewrite g))))

let test_rewrite_cleanups () =
  (* duplicate XOR operands cancel; contradictory AND trees fold *)
  let g = Xag.create 3 in
  let a = Xag.input g 0 and b = Xag.input g 1 and c = Xag.input g 2 in
  let chain = Xag.xor g (Xag.xor g a b) (Xag.xor g b c) in
  Xag.add_output g chain;
  let g' = Xag.rewrite g in
  (* a ⊕ b ⊕ b ⊕ c = a ⊕ c: one surviving XOR node *)
  Alcotest.(check int) "xor chain cancelled" 1 (Xag.num_nodes g');
  let h = Xag.create 2 in
  let x = Xag.input h 0 and y = Xag.input h 1 in
  let t1 = Xag.and_ h x y in
  let t2 = Xag.and_ h t1 (Xag.complement (Xag.and_ h x y)) in
  Xag.add_output h t2;
  (* the AND tree contains both t and ¬t at construction already *)
  Alcotest.(check int) "contradiction folds" Xag.const_false t2;
  ignore (Xag.rewrite h)

(* ---- structural keys ---- *)

let test_structural_key () =
  let g1 = Rev.Arith.xag_less_than_const 8 ~k:100 in
  let g2 = Rev.Arith.xag_less_than_const 8 ~k:100 in
  let g3 = Rev.Arith.xag_less_than_const 8 ~k:101 in
  Alcotest.(check string) "same construction, same key" (Xag.structural_key g1)
    (Xag.structural_key g2);
  Alcotest.(check bool) "different constant, different key" true
    (Xag.structural_key g1 <> Xag.structural_key g3)

(* ---- native arithmetic builders ---- *)

let test_xag_subtractor () =
  for n = 1 to 4 do
    let g = Rev.Arith.xag_subtractor n in
    for a = 0 to (1 lsl n) - 1 do
      for b = 0 to (1 lsl n) - 1 do
        let expect =
          ((a - b) land Logic.Bitops.mask n) lor (if b > a then 1 lsl n else 0)
        in
        Alcotest.(check int) "a - b with borrow" expect
          (Xag.eval g (a lor (b lsl n)))
      done
    done
  done

let test_xag_less_than () =
  for n = 1 to 4 do
    let g = Rev.Arith.xag_less_than n in
    for a = 0 to (1 lsl n) - 1 do
      for b = 0 to (1 lsl n) - 1 do
        Alcotest.(check int) "a < b" (if a < b then 1 else 0)
          (Xag.eval g (a lor (b lsl n)))
      done
    done
  done

let test_xag_less_than_const () =
  List.iter
    (fun k ->
      let g = Rev.Arith.xag_less_than_const 8 ~k in
      (* two nodes per bit at most, constants folded *)
      Alcotest.(check bool) "compact" true (Xag.num_nodes g <= 16);
      for x = 0 to 255 do
        Alcotest.(check int)
          (Printf.sprintf "x<%d at %d" k x)
          (if x < k then 1 else 0)
          (Xag.eval g x)
      done)
    [ 0; 1; 100; 128; 255; 256 ]

let test_xag_equals_const () =
  List.iter
    (fun k ->
      let g = Rev.Arith.xag_equals_const 6 ~k in
      for x = 0 to 63 do
        Alcotest.(check int) "x = k" (if x = k then 1 else 0) (Xag.eval g x)
      done)
    [ 0; 17; 63 ]

let test_xag_add_equals () =
  let n = 2 in
  let g = Rev.Arith.xag_add_equals n in
  for a = 0 to 3 do
    for b = 0 to 3 do
      for c = 0 to 3 do
        let x = a lor (b lsl n) lor (c lsl (2 * n)) in
        Alcotest.(check int) "a+b=c" (if a + b = c then 1 else 0) (Xag.eval g x)
      done
    done
  done

let test_xag_multiplier () =
  for n = 1 to 3 do
    let g = Rev.Arith.xag_multiplier n in
    for a = 0 to (1 lsl n) - 1 do
      for b = 0 to (1 lsl n) - 1 do
        Alcotest.(check int) "a * b" (a * b) (Xag.eval g (a lor (b lsl n)))
      done
    done
  done

(* ---- hierarchical synthesis ---- *)

let test_bennett_adder () =
  let g = Xag.ripple_adder 3 in
  let c, layout = Hier_synth.bennett g in
  Alcotest.(check bool) "Eq. (4) contract" true
    (Hier_synth.check (c, layout) (Xag.to_truth_tables g));
  Alcotest.(check int) "ancillae = nodes" (Xag.num_nodes g) layout.Hier_synth.ancillae

let test_batched_tradeoff () =
  let g = Xag.ripple_adder 4 in
  let fs = Xag.to_truth_tables g in
  let _, lay_all = Hier_synth.bennett g in
  let prev_gates = ref 0 in
  List.iter
    (fun batch ->
      let c, lay = Hier_synth.output_batched ~batch g in
      Alcotest.(check bool) (Printf.sprintf "batch %d correct" batch) true
        (Hier_synth.check (c, lay) fs);
      Alcotest.(check bool) "fewer or equal ancillae than keep-all" true
        (lay.Hier_synth.ancillae <= lay_all.Hier_synth.ancillae);
      (* smaller batches cost at least as many gates *)
      if !prev_gates > 0 then
        Alcotest.(check bool) "monotone gate cost" true
          (Rcircuit.num_gates c >= !prev_gates);
      prev_gates := Rcircuit.num_gates c)
    [ 5; 2; 1 ]

let test_synth_tables_front_end () =
  let fs = [ Funcgen.majority 3; Funcgen.parity 3 ] in
  let c, lay = Hier_synth.synth_tables fs in
  Alcotest.(check bool) "table front end" true (Hier_synth.check (c, lay) fs)

let prop_hier_random =
  Helpers.prop "hierarchical synthesis realizes random functions" ~count:40
    (Helpers.tt_gen 4)
    (fun f ->
      let c, lay = Hier_synth.synth_tables [ f ] in
      Hier_synth.check (c, lay) [ f ])

let prop_hier_batched_random =
  Helpers.prop "batched hierarchical synthesis is correct" ~count:30
    QCheck2.Gen.(pair (Helpers.tt_gen 4) (Helpers.tt_gen 4))
    (fun (f, g) ->
      let c, lay = Hier_synth.synth_tables ~batch:1 [ f; g ] in
      Hier_synth.check (c, lay) [ f; g ])

(* ---- pebbling ---- *)

let test_bennett_full_fanout () =
  (* fanout = segments: one forward sweep keeping everything (peak = s
     pebbles), then the s-1 intermediate segments are uncomputed *)
  let c = Pebble.strategy_cost ~segments:8 ~fanout:8 in
  Alcotest.(check int) "pebbles" 8 c.Pebble.pebbles;
  Alcotest.(check int) "moves" 15 c.Pebble.moves

let test_bennett_binary () =
  (* fanout 2 on a chain of 2^k: pebbles ~ k+1, moves = 3^k *)
  let c = Pebble.strategy_cost ~segments:16 ~fanout:2 in
  Alcotest.(check bool) "few pebbles" true (c.Pebble.pebbles <= 5);
  Alcotest.(check int) "3^4 moves" 81 c.Pebble.moves

let test_schedule_validity () =
  List.iter
    (fun (segments, fanout) ->
      (* simulate raises on invalid schedules *)
      ignore (Pebble.simulate ~segments (Pebble.bennett ~segments ~fanout)))
    [ (1, 2); (2, 2); (7, 2); (13, 3); (16, 4); (33, 5); (40, 2) ]

let test_invalid_schedule_rejected () =
  (match Pebble.simulate ~segments:3 [ Pebble.Compute 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dependency violation accepted");
  (match Pebble.simulate ~segments:2 [ Pebble.Compute 0; Pebble.Compute 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double compute accepted");
  match Pebble.simulate ~segments:2 [ Pebble.Uncompute 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uncompute of clean segment accepted"

let test_tradeoff_monotone () =
  (* larger fanout: more pebbles, fewer moves (the E6 shape) *)
  let costs =
    List.map (fun f -> Pebble.strategy_cost ~segments:32 ~fanout:f) [ 2; 4; 8; 16; 32 ]
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "pebbles nondecreasing" true (a.Pebble.pebbles <= b.Pebble.pebbles);
        Alcotest.(check bool) "moves nonincreasing" true (a.Pebble.moves >= b.Pebble.moves);
        check rest
    | _ -> ()
  in
  check costs

(* ---- DAG pebbling ---- *)

let check_dag ~deps ~outputs ~budget =
  match Pebble.schedule_dag ~budget ~deps ~outputs with
  | exception Pebble.Infeasible _ -> None
  | _, steps ->
      let cost = Pebble.simulate_dag ~deps ~outputs steps in
      Alcotest.(check bool)
        (Printf.sprintf "peak %d within budget %d" cost.Pebble.pebbles budget)
        true
        (cost.Pebble.pebbles <= budget);
      Some cost

let test_dag_chain () =
  let deps = [| []; [ 0 ]; [ 1 ]; [ 2 ] |] in
  let outputs = [ Some 3 ] in
  (* generous budget: forward sweep *)
  (match check_dag ~deps ~outputs ~budget:4 with
  (* 4 computes + 4 uncomputes: every ancilla is returned clean *)
  | Some c -> Alcotest.(check int) "cheap at full budget" 8 c.Pebble.moves
  | None -> Alcotest.fail "budget 4 must be feasible");
  (* tight budget triggers the recursive chain strategy *)
  (match check_dag ~deps ~outputs ~budget:3 with
  | Some _ -> ()
  | None -> Alcotest.fail "budget 3 must be feasible");
  (* the reversible pebble game needs p pebbles for a 2^p - 1 chain *)
  match check_dag ~deps ~outputs ~budget:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "budget 2 on a 4-chain must be infeasible"

let test_dag_diamond () =
  let deps = [| []; [ 0 ]; [ 0 ]; [ 1; 2 ] |] in
  let outputs = [ Some 3 ] in
  (match check_dag ~deps ~outputs ~budget:4 with
  | Some _ -> ()
  | None -> Alcotest.fail "diamond at budget 4");
  match check_dag ~deps ~outputs ~budget:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "diamond needs its full 4-node cone"

let test_dag_multi_output () =
  let deps = [| []; [ 0 ]; [ 0 ] |] in
  let outputs = [ Some 1; Some 2 ] in
  match check_dag ~deps ~outputs ~budget:2 with
  | Some c ->
      (* node 0 is uncomputed once no later output needs it *)
      Alcotest.(check bool) "eager cleanup pays moves" true (c.Pebble.moves >= 4)
  | None -> Alcotest.fail "budget 2 covers each 2-node cone"

let test_dag_const_outputs () =
  let _, steps = Pebble.schedule_dag ~budget:0 ~deps:[||] ~outputs:[ None; None ] in
  let c = Pebble.simulate_dag ~deps:[||] ~outputs:[ None; None ] steps in
  Alcotest.(check int) "no pebbles for constant outputs" 0 c.Pebble.pebbles

let () =
  Alcotest.run "xag"
    [ ( "xag",
        [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
          Alcotest.test_case "of_bexpr" `Quick test_of_bexpr_eval;
          Alcotest.test_case "of_esops" `Quick test_of_esops;
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
          Alcotest.test_case "cones" `Quick test_cone;
          prop_rewrite_bexpr;
          prop_of_truth_table;
          Alcotest.test_case "rewrite cleanups" `Quick test_rewrite_cleanups;
          Alcotest.test_case "structural key" `Quick test_structural_key ] );
      ( "arith_xag",
        [ Alcotest.test_case "subtractor" `Quick test_xag_subtractor;
          Alcotest.test_case "less-than" `Quick test_xag_less_than;
          Alcotest.test_case "less-than-const" `Quick test_xag_less_than_const;
          Alcotest.test_case "equals-const" `Quick test_xag_equals_const;
          Alcotest.test_case "add-equals" `Quick test_xag_add_equals;
          Alcotest.test_case "multiplier" `Quick test_xag_multiplier ] );
      ( "hier_synth",
        [ Alcotest.test_case "bennett adder" `Quick test_bennett_adder;
          Alcotest.test_case "batched trade-off" `Quick test_batched_tradeoff;
          Alcotest.test_case "table front end" `Quick test_synth_tables_front_end;
          prop_hier_random;
          prop_hier_batched_random ] );
      ( "pebble",
        [ Alcotest.test_case "full fanout" `Quick test_bennett_full_fanout;
          Alcotest.test_case "binary recursion" `Quick test_bennett_binary;
          Alcotest.test_case "schedule validity" `Quick test_schedule_validity;
          Alcotest.test_case "invalid schedules rejected" `Quick test_invalid_schedule_rejected;
          Alcotest.test_case "trade-off monotone" `Quick test_tradeoff_monotone ] );
      ( "pebble_dag",
        [ Alcotest.test_case "chain budgets" `Quick test_dag_chain;
          Alcotest.test_case "diamond" `Quick test_dag_diamond;
          Alcotest.test_case "multi-output cleanup" `Quick test_dag_multi_output;
          Alcotest.test_case "constant outputs" `Quick test_dag_const_outputs ] ) ]
