(* The compilation cache: NPN replay correctness, cache-on/off and
   parallel-jobs invariance, and the persistent layer's round-trip and
   corruption tolerance. *)

module Truth_table = Logic.Truth_table
module Esop = Logic.Esop
module Esop_opt = Logic.Esop_opt

let fresh () =
  Cache.set_dir None;
  Cache.set_enabled true;
  Cache.clear_memory ()

let tt_gen_sized =
  QCheck2.Gen.bind (QCheck2.Gen.int_range 3 5) Helpers.tt_gen

(* --- NPN replay: covers --- *)

let prop_cover_minimize =
  Helpers.prop "Cover.minimize cover still evaluates to the function" ~count:200
    tt_gen_sized (fun tt ->
      fresh ();
      let n = Truth_table.num_vars tt in
      (* twice: the second call replays a cache hit *)
      let miss = Cache.Cover.minimize tt in
      let hit = Cache.Cover.minimize tt in
      Truth_table.equal (Esop.to_truth_table n miss) tt
      && Truth_table.equal (Esop.to_truth_table n hit) tt)

let prop_cover_matches_uncached =
  Helpers.prop "Cover.minimize equals Esop_opt.minimize extensionally" ~count:200
    tt_gen_sized (fun tt ->
      fresh ();
      let n = Truth_table.num_vars tt in
      Truth_table.equal
        (Esop.to_truth_table n (Cache.Cover.minimize tt))
        (Esop.to_truth_table n (Esop_opt.minimize tt)))

(* --- NPN replay: cascades --- *)

(* The qcheck acceptance property: a cache-hit replay simulates identically
   to fresh synthesis on every basis state. *)
let prop_esop1_replay =
  Helpers.prop "esop1 replay simulates identically to fresh synthesis" ~count:150
    tt_gen_sized (fun tt ->
      fresh ();
      let n = Truth_table.num_vars tt in
      let reference = Rev.Esop_synth.synth1 tt in
      let first = Rev.Synth_cache.esop1 tt in
      let replayed = Rev.Synth_cache.esop1 tt (* second call is a hit *) in
      let agree a b =
        let ok = ref true in
        for x = 0 to (1 lsl (n + 1)) - 1 do
          if Rev.Rsim.run a x <> Rev.Rsim.run b x then ok := false
        done;
        !ok
      in
      agree reference first && agree reference replayed
      && Rev.Rsim.realizes_function replayed
           ~inputs:(List.init n Fun.id) ~outputs:[ n ] [ tt ])

let prop_esop1_on_off_identical =
  Helpers.prop "esop1 is bit-identical with the cache on or off" ~count:150
    tt_gen_sized (fun tt ->
      fresh ();
      let on_cold = Rev.Synth_cache.esop1 tt in
      let on_warm = Rev.Synth_cache.esop1 tt in
      Cache.set_enabled false;
      let off = Rev.Synth_cache.esop1 tt in
      Cache.set_enabled true;
      let key = Rev.Rcircuit.structural_key in
      key on_cold = key off && key on_warm = key off)

(* --- hit accounting --- *)

let test_counters () =
  fresh ();
  Cache.reset_stats ();
  let tt = Logic.Funcgen.majority 5 in
  ignore (Rev.Synth_cache.esop1 tt);
  ignore (Rev.Synth_cache.esop1 tt);
  let npn_hits, npn_misses =
    match List.assoc_opt "npn" (Cache.counters ()) with
    | Some hm -> hm
    | None -> Alcotest.fail "no npn counter group"
  in
  Alcotest.(check bool) "one miss" true (npn_misses >= 1);
  Alcotest.(check bool) "one hit" true (npn_hits >= 1);
  Alcotest.(check bool) "summary mentions npn"
    true
    (Helpers.contains ~needle:"npn.hit=" (Cache.summary_string ()))

(* --- the pass-manager result cache --- *)

let test_pass_result_cached () =
  fresh ();
  let rc = Rev.Tbs.synth (Logic.Funcgen.hwb 4) in
  let pipeline = Core.Pass.parse "revsimp;cliffordt;tpar;peephole" in
  let r1 = Core.Pass.run pipeline rc in
  let r2 = Core.Pass.run pipeline rc in
  Alcotest.(check string) "same circuit"
    (Qc.Circuit.structural_key r1.Core.Pass.circuit)
    (Qc.Circuit.structural_key r2.Core.Pass.circuit);
  Cache.set_enabled false;
  let r3 = Core.Pass.run pipeline rc in
  Cache.set_enabled true;
  Alcotest.(check string) "cache off agrees"
    (Qc.Circuit.structural_key r3.Core.Pass.circuit)
    (Qc.Circuit.structural_key r1.Core.Pass.circuit);
  let lower_hits =
    match List.assoc_opt "lower" (Cache.counters ()) with
    | Some (h, _) -> h
    | None -> 0
  in
  Alcotest.(check bool) "lowering cache hit" true (lower_hits >= 1)

(* --- parallel batch compilation --- *)

let test_batch_jobs_invariance () =
  fresh ();
  let st = Random.State.make [| 4; 0xCAFE |] in
  let specs =
    List.init 6 (fun _ ->
        Core.Flow.Fn_spec [ Logic.Bent.mm_function (Logic.Bent.random_mm st 2) ])
  in
  let keys jobs =
    Cache.clear_memory ();
    List.map
      (fun (c, _) -> Qc.Circuit.structural_key c)
      (Core.Flow.compile_batch
         ~options:{ Core.Flow.default with synth = Core.Flow.Esop }
         ~jobs specs)
  in
  let seq = keys 1 in
  Alcotest.(check (list string)) "jobs=4 identical to jobs=1" seq (keys 4);
  (* and a warm in-order rerun serves the same circuits from the cache *)
  let warm =
    List.map
      (fun (c, _) -> Qc.Circuit.structural_key c)
      (Core.Flow.compile_batch
         ~options:{ Core.Flow.default with synth = Core.Flow.Esop }
         ~jobs:2 specs)
  in
  Alcotest.(check (list string)) "warm rerun identical" seq warm

(* --- persistence --- *)

let with_tmp_dir f =
  let dir = Filename.temp_file "dautoq_cache_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_dir None;
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_persistence_round_trip () =
  fresh ();
  with_tmp_dir (fun dir ->
      Cache.set_dir (Some dir);
      let tt = Logic.Funcgen.majority 5 in
      let written = Rev.Synth_cache.esop1 tt in
      Alcotest.(check bool) "bytes persisted" true (Cache.bytes_persisted () > 0);
      (* drop memory, re-attach the directory: the store must reload *)
      Cache.clear_memory ();
      Cache.set_dir (Some dir);
      Cache.reset_stats ();
      let reloaded = Rev.Synth_cache.esop1 tt in
      Alcotest.(check string) "reloaded cascade identical"
        (Rev.Rcircuit.structural_key written)
        (Rev.Rcircuit.structural_key reloaded);
      let hits =
        match List.assoc_opt "npn" (Cache.counters ()) with
        | Some (h, _) -> h
        | None -> 0
      in
      Alcotest.(check bool) "reload served from disk" true (hits >= 1))

(* An unusable cache directory must degrade to in-memory caching with a
   warning, never raise. (chmod-based read-only checks are useless under
   root, so the unusable path is a regular file: opening file/cache.bin
   fails with ENOTDIR for any uid.) *)
let test_persistence_unwritable_dir () =
  fresh ();
  let file = Filename.temp_file "dautoq_cache_notadir" "" in
  Fun.protect
    ~finally:(fun () ->
      Cache.set_dir None;
      try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let before = Cache.bytes_persisted () in
      Cache.set_dir (Some file);
      (* persistence silently off: lookups and inserts still work *)
      let tt = Logic.Funcgen.majority 5 in
      let a = Rev.Synth_cache.esop1 tt in
      let b = Rev.Synth_cache.esop1 tt in
      Alcotest.(check string) "in-memory cache still serves"
        (Rev.Rcircuit.structural_key a)
        (Rev.Rcircuit.structural_key b);
      Alcotest.(check int) "nothing persisted" before (Cache.bytes_persisted ());
      Alcotest.(check bool) "directory deactivated" true (Cache.dir () = None);
      (* clear () with no active dir must not resurrect the bad path *)
      Cache.clear ();
      Alcotest.(check int) "still nothing persisted" before (Cache.bytes_persisted ()))

let test_persistence_corrupt_file () =
  fresh ();
  with_tmp_dir (fun dir ->
      Cache.set_dir (Some dir);
      let tt = Logic.Funcgen.majority 5 in
      let written = Rev.Synth_cache.esop1 tt in
      Cache.set_dir None;
      (* truncate mid-record: the valid prefix must still load *)
      let path = Filename.concat dir "cache.bin" in
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      let junk = "garbage tail \x00\x01\x02" in
      ignore (Unix.write_substring fd junk 0 (String.length junk));
      Unix.close fd;
      Cache.clear_memory ();
      Cache.set_dir (Some dir);
      let reloaded = Rev.Synth_cache.esop1 tt in
      Alcotest.(check string) "valid prefix survives a corrupt tail"
        (Rev.Rcircuit.structural_key written)
        (Rev.Rcircuit.structural_key reloaded);
      ignore len;
      Cache.set_dir None;
      (* stale/garbage header: whole file ignored, no exception, and the
         cache keeps working (the file is restarted with a fresh header) *)
      let oc = open_out_bin path in
      output_string oc "dautoq-cache v0 something-else\njunk";
      close_out oc;
      Cache.clear_memory ();
      Cache.set_dir (Some dir);
      let rebuilt = Rev.Synth_cache.esop1 tt in
      Alcotest.(check string) "stale header tolerated"
        (Rev.Rcircuit.structural_key written)
        (Rev.Rcircuit.structural_key rebuilt))

let () =
  Alcotest.run "cache"
    [ ( "npn-replay",
        [ prop_cover_minimize; prop_cover_matches_uncached; prop_esop1_replay;
          prop_esop1_on_off_identical ] );
      ("accounting", [ Alcotest.test_case "hit/miss counters" `Quick test_counters ]);
      ( "pass-cache",
        [ Alcotest.test_case "pipeline results memoized" `Quick test_pass_result_cached ] );
      ( "parallel",
        [ Alcotest.test_case "compile_batch jobs invariance" `Quick
            test_batch_jobs_invariance ] );
      ( "persistence",
        [ Alcotest.test_case "round trip" `Quick test_persistence_round_trip;
          Alcotest.test_case "unwritable dir degrades in-memory" `Quick
            test_persistence_unwritable_dir;
          Alcotest.test_case "corrupt and stale files" `Quick
            test_persistence_corrupt_file ] ) ]
