open Rev
module Funcgen = Logic.Funcgen
module Truth_table = Logic.Truth_table

let test_map_luts_covers_outputs () =
  let g = Xag.ripple_adder 3 in
  let luts = Lut_synth.map_luts ~k:3 g in
  (* every non-trivial output root is some LUT's root *)
  List.iter
    (fun s ->
      let id = Xag.node_of_signal s in
      match Xag.node g id with
      | Xag.Input _ | Xag.Const -> ()
      | _ ->
          Alcotest.(check bool) "output covered" true
            (List.exists (fun l -> l.Lut_synth.root = id) luts))
    (Xag.outputs g)

let test_lut_leaf_bound () =
  let g = Xag.ripple_adder 4 in
  List.iter
    (fun k ->
      List.iter
        (fun l ->
          Alcotest.(check bool)
            (Printf.sprintf "k=%d bound" k)
            true
            (List.length l.Lut_synth.leaves <= k))
        (Lut_synth.map_luts ~k g))
    [ 2; 3; 4; 6 ]

let test_dependency_order () =
  let g = Xag.ripple_adder 4 in
  let luts = Lut_synth.map_luts ~k:4 g in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      List.iter
        (fun leaf ->
          match Xag.node g leaf with
          | Xag.Input _ | Xag.Const -> ()
          | _ ->
              Alcotest.(check bool) "leaf LUT precedes user" true (Hashtbl.mem seen leaf))
        l.Lut_synth.leaves;
      Hashtbl.add seen l.Lut_synth.root ())
    luts

let test_adder_k_sweep () =
  let g = Xag.ripple_adder 4 in
  let fs = Xag.to_truth_tables g in
  let prev_anc = ref max_int in
  List.iter
    (fun k ->
      let c, lay = Lut_synth.synth ~k g in
      Alcotest.(check bool) (Printf.sprintf "k=%d correct" k) true
        (Lut_synth.check (c, lay) fs);
      (* larger k never needs more ancillae (greedy cuts only merge) *)
      Alcotest.(check bool) "ancillae nonincreasing in k" true
        (lay.Lut_synth.ancillae <= !prev_anc);
      prev_anc := lay.Lut_synth.ancillae)
    [ 2; 3; 4; 5; 6 ]

let test_fewer_ancillae_than_gate_level () =
  (* LUT granularity beats one-ancilla-per-gate hierarchical synthesis *)
  let g = Xag.ripple_adder 4 in
  let _, gate_level = Hier_synth.bennett g in
  let _, lut_level = Lut_synth.synth ~k:4 g in
  Alcotest.(check bool) "fewer ancillae" true
    (lut_level.Lut_synth.ancillae < gate_level.Hier_synth.ancillae)

let test_single_lut_when_function_fits () =
  (* a 4-input function with k=4 needs exactly one LUT *)
  let f = Funcgen.majority 3 in
  let c, lay = Lut_synth.synth_tables ~k:4 [ f ] in
  Alcotest.(check int) "one ancilla" 1 lay.Lut_synth.ancillae;
  Alcotest.(check bool) "correct" true (Lut_synth.check (c, lay) [ f ])

let test_constant_and_complement_outputs () =
  let fs = [ Truth_table.const 3 true; Truth_table.not_ (Funcgen.majority 3) ] in
  let c, lay = Lut_synth.synth_tables ~k:3 fs in
  Alcotest.(check bool) "constants and complements" true (Lut_synth.check (c, lay) fs)

let prop_lut_roundtrip k =
  Helpers.prop
    (Printf.sprintf "LUT synthesis (k=%d) realizes random functions" k)
    ~count:40 (Helpers.tt_gen 4)
    (fun f ->
      let c, lay = Lut_synth.synth_tables ~k [ f ] in
      Lut_synth.check (c, lay) [ f ])

let prop_lut_multi_output =
  Helpers.prop "LUT synthesis on 2-output functions" ~count:25
    QCheck2.Gen.(pair (Helpers.tt_gen 4) (Helpers.tt_gen 4))
    (fun (f, g) ->
      let c, lay = Lut_synth.synth_tables ~k:3 [ f; g ] in
      Lut_synth.check (c, lay) [ f; g ])

(* ---- cut-cover re-evaluation ----

   Evaluate the mapped LUT network directly (each LUT's table over its
   leaf values) and compare with the XAG's own evaluation — exercises
   the mapper independently of reversible synthesis. *)

let eval_lut_network g luts x =
  let values = Hashtbl.create 64 in
  let value_of id =
    match Xag.node g id with
    | Xag.Const -> false
    | Xag.Input i -> Logic.Bitops.bit x i
    | _ -> Hashtbl.find values id
  in
  List.iter
    (fun l ->
      let idx = ref 0 in
      List.iteri
        (fun j leaf -> if value_of leaf then idx := !idx lor (1 lsl j))
        l.Lut_synth.leaves;
      Hashtbl.replace values l.Lut_synth.root (Truth_table.get l.Lut_synth.table !idx))
    luts;
  let z = ref 0 in
  List.iteri
    (fun j s ->
      let v = value_of (Xag.node_of_signal s) <> Xag.is_complemented s in
      if v then z := !z lor (1 lsl j))
    (Xag.outputs g);
  !z

let prop_cut_cover_reeval =
  Helpers.prop "cut cover evaluates like the XAG" ~count:40 (Helpers.tt_gen 4)
    (fun f ->
      let g = Xag.of_truth_table f in
      List.for_all
        (fun k ->
          let luts = Lut_synth.map_luts ~k g in
          List.for_all
            (fun x -> eval_lut_network g luts x = Xag.eval g x)
            (List.init 16 Fun.id))
        [ 2; 3; 4 ])

let test_cut_cover_arith () =
  List.iter
    (fun g ->
      let n = Xag.num_inputs g in
      List.iter
        (fun k ->
          let luts = Lut_synth.map_luts ~k g in
          for x = 0 to (1 lsl n) - 1 do
            Alcotest.(check int)
              (Printf.sprintf "k=%d x=%d" k x)
              (Xag.eval g x) (eval_lut_network g luts x)
          done)
        [ 2; 4; 6 ])
    [ Xag.ripple_adder 3; Rev.Arith.xag_less_than 3; Rev.Arith.xag_multiplier 2 ]

(* ---- pebbled synthesis ---- *)

let check_pebbled g ~k ~budget =
  match Lut_synth.synth_pebbled ~k ~budget g with
  | exception Pebble.Infeasible _ -> ()
  | c, lay ->
      Alcotest.(check bool)
        (Printf.sprintf "ancillae %d within budget %d" lay.Lut_synth.ancillae budget)
        true
        (lay.Lut_synth.ancillae <= budget);
      Alcotest.(check bool)
        (Printf.sprintf "k=%d budget=%d correct" k budget)
        true
        (Lut_synth.check (c, lay) (Xag.to_truth_tables g))

let test_pebbled_ltconst () =
  let g = Rev.Arith.xag_less_than_const 8 ~k:100 in
  List.iter (fun budget -> check_pebbled g ~k:4 ~budget) [ 1; 2; 3; 4; 8 ]

let test_pebbled_adder () =
  let g = Xag.ripple_adder 3 in
  List.iter (fun budget -> check_pebbled g ~k:3 ~budget) [ 2; 4; 6; 12 ]

let test_pebbled_infeasible_raises () =
  let g = Rev.Arith.xag_multiplier 4 in
  match Lut_synth.synth_pebbled ~k:6 ~budget:1 g with
  | exception Pebble.Infeasible { budget; required } ->
      Alcotest.(check int) "reported budget" 1 budget;
      Alcotest.(check bool) "required exceeds budget" true (required > 1)
  | _ -> Alcotest.fail "budget 1 on a 4-bit multiplier must be infeasible"

let prop_pebbled_random =
  Helpers.prop "pebbled synthesis realizes random functions" ~count:25
    (Helpers.tt_gen 4)
    (fun f ->
      let g = Xag.of_truth_table f in
      List.for_all
        (fun budget ->
          match Lut_synth.synth_pebbled ~k:3 ~budget g with
          | exception Pebble.Infeasible _ -> true
          | c, lay ->
              lay.Lut_synth.ancillae <= budget
              && Lut_synth.check (c, lay) [ f ])
        [ 1; 2; 4 ])

let () =
  Alcotest.run "lut_synth"
    [ ( "mapping",
        [ Alcotest.test_case "covers outputs" `Quick test_map_luts_covers_outputs;
          Alcotest.test_case "leaf bound" `Quick test_lut_leaf_bound;
          Alcotest.test_case "dependency order" `Quick test_dependency_order ] );
      ( "synthesis",
        [ Alcotest.test_case "adder k sweep" `Quick test_adder_k_sweep;
          Alcotest.test_case "beats gate-level ancillae" `Quick test_fewer_ancillae_than_gate_level;
          Alcotest.test_case "single LUT" `Quick test_single_lut_when_function_fits;
          Alcotest.test_case "constants/complements" `Quick test_constant_and_complement_outputs;
          prop_lut_roundtrip 2;
          prop_lut_roundtrip 4;
          prop_lut_multi_output ] );
      ( "cut_cover",
        [ prop_cut_cover_reeval;
          Alcotest.test_case "arithmetic networks" `Quick test_cut_cover_arith ] );
      ( "pebbled",
        [ Alcotest.test_case "less-than-const budgets" `Quick test_pebbled_ltconst;
          Alcotest.test_case "adder budgets" `Quick test_pebbled_adder;
          Alcotest.test_case "infeasible raises" `Quick test_pebbled_infeasible_raises;
          prop_pebbled_random ] ) ]
