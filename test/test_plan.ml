(* Statevector kernel-plan layer: replay equivalence against the unfused
   reference, block classification, deterministic parallel reductions,
   jobs-invariance, and the plan/sampler reuse counters. *)

open Qc

(* run/run_on only engage the planner at >= fuse_min_qubits, so small
   property circuits drive Plan.build/Plan.execute directly. *)
let run_planned c =
  let s = Statevector.init (Circuit.num_qubits c) in
  Statevector.Plan.execute (Statevector.Plan.build c) s;
  s

let amp_close (a : Complex.t) (b : Complex.t) =
  Float.abs (a.re -. b.re) < 1e-9 && Float.abs (a.im -. b.im) < 1e-9

let same_amplitudes s1 s2 =
  Statevector.size s1 = Statevector.size s2
  && (let ok = ref true in
      for x = 0 to Statevector.size s1 - 1 do
        if not (amp_close (Statevector.amplitude s1 x) (Statevector.amplitude s2 x))
        then ok := false
      done;
      !ok)

let plan_equiv c = same_amplitudes (run_planned c) (Statevector.run ~fuse:false c)

(* --- qcheck: planned = unfused on three circuit families --- *)

let seeded_circuit_gen mk =
  QCheck2.Gen.map
    (fun seed -> mk (Helpers.rng seed))
    QCheck2.Gen.(int_bound 1_000_000)

(* H layer then only diagonal gates: exercises sweeps, K_diag and
   build-time sweep folding into full-width blocks. *)
let diag_heavy st n len =
  let gates = ref [] in
  for _ = 1 to len do
    let q = Random.State.int st n in
    let g =
      match Random.State.int st 7 with
      | 0 -> Gate.T q
      | 1 -> Gate.Tdg q
      | 2 -> Gate.S q
      | 3 -> Gate.Sdg q
      | 4 -> Gate.Z q
      | 5 -> Gate.Rz (Random.State.float st 6.28 -. 3.14, q)
      | _ ->
          let q2 = (q + 1 + Random.State.int st (n - 1)) mod n in
          Gate.Cz (q, q2)
    in
    gates := g :: !gates
  done;
  Circuit.of_gates n (List.init n (fun q -> Gate.H q) @ List.rev !gates)

(* H on a couple of qubits then classical gates only: exercises K_perm /
   K_perm_full scatter kernels including the unit-phase move-only path. *)
let perm_heavy st n len =
  let gates = ref [] in
  for _ = 1 to len do
    let q = Random.State.int st n in
    let q2 = (q + 1 + Random.State.int st (n - 1)) mod n in
    let g =
      match Random.State.int st 4 with
      | 0 -> Gate.X q
      | 1 -> Gate.Cnot (q, q2)
      | 2 -> Gate.Swap (q, q2)
      | _ ->
          let q3 = (max q q2 + 1) mod n in
          if q3 = q || q3 = q2 then Gate.Cnot (q, q2) else Gate.Ccx (q, q2, q3)
    in
    gates := g :: !gates
  done;
  Circuit.of_gates n ([ Gate.H 0; Gate.H 1 ] @ List.rev !gates)

let prop_diag_heavy =
  Helpers.prop "plan = unfused on diagonal-heavy circuits" ~count:50
    (seeded_circuit_gen (fun st -> diag_heavy st 5 60))
    plan_equiv

let prop_perm_heavy =
  Helpers.prop "plan = unfused on permutation-heavy circuits" ~count:50
    (seeded_circuit_gen (fun st -> perm_heavy st 5 60))
    plan_equiv

(* Mixed H/T/CNOT on overlapping supports: forms genuinely dense 2-3q
   blocks alongside Hadamard and monomial ones. *)
let prop_general_dense =
  Helpers.prop "plan = unfused on general Clifford+T circuits" ~count:50
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      Helpers.qcircuit_gen ~diagonals:(seed mod 2 = 0) 4 50)
    plan_equiv

(* --- classification: stats match the circuit's structure --- *)

let test_stats_diag () =
  let c = diag_heavy (Helpers.rng 3) 4 40 in
  let st = Statevector.Plan.stats (Statevector.Plan.build c) in
  Alcotest.(check bool) "diagonal work planned" true
    (st.Statevector.Plan.diag + st.Statevector.Plan.sweeps
     + st.Statevector.Plan.perm
     > 0);
  Alcotest.(check int) "no dense blocks" 0 st.Statevector.Plan.dense;
  Alcotest.(check bool) "H layer fused" true (st.Statevector.Plan.had >= 1)

let test_stats_perm () =
  let c =
    Circuit.of_gates 4
      [ Gate.X 0; Gate.Cnot (0, 1); Gate.Swap (1, 2); Gate.Ccx (0, 1, 3) ]
  in
  let p = Statevector.Plan.build c in
  let st = Statevector.Plan.stats p in
  Alcotest.(check int) "one block" 1 st.Statevector.Plan.blocks;
  Alcotest.(check int) "classified as permutation" 1 st.Statevector.Plan.perm;
  Alcotest.(check int) "no dense" 0 st.Statevector.Plan.dense;
  (* cross-check at the matrix level: the block really is a permutation *)
  match Unitary.is_permutation (Unitary.of_circuit c) with
  | Some _ -> ()
  | None -> Alcotest.fail "circuit unitary is not a permutation"

let test_stats_dense () =
  (* H sandwiched between non-commuting gates on one support: dense block *)
  let c =
    Circuit.of_gates 4
      [ Gate.T 0; Gate.H 0; Gate.T 0; Gate.Cnot (0, 1); Gate.H 0; Gate.T 1 ]
  in
  let st = Statevector.Plan.stats (Statevector.Plan.build c) in
  Alcotest.(check bool) "dense block formed" true (st.Statevector.Plan.dense >= 1)

let test_diag_block_is_diagonal () =
  (* matrix-level cross-check of the diagonal classification *)
  let c =
    Circuit.of_gates 3
      [ Gate.T 0; Gate.S 1; Gate.Cz (0, 1); Gate.Ccz (0, 1, 2); Gate.Tdg 2 ]
  in
  Alcotest.(check bool) "unitary is diagonal" true
    (Unitary.is_diagonal (Unitary.of_circuit c));
  Alcotest.(check bool) "planned replay agrees" true (plan_equiv c)

let test_identity_elimination () =
  (* classical gates composing to the identity vanish from the schedule *)
  let c =
    Circuit.of_gates 4
      [ Gate.X 0; Gate.Cnot (0, 1); Gate.Cnot (0, 1); Gate.X 0;
        Gate.Swap (2, 3); Gate.Swap (2, 3) ]
  in
  let st = Statevector.Plan.stats (Statevector.Plan.build c) in
  Alcotest.(check int) "identity block dropped" 0 st.Statevector.Plan.ops;
  Alcotest.(check bool) "still correct" true (plan_equiv c)

(* --- jobs-invariance: bit-identical amplitudes and reductions --- *)

let with_jobs jobs f =
  Par.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Par.set_default_jobs 1) f

(* 15 qubits puts the state (2^15) above par_threshold (2^14), so the
   parallel kernels and chunked reductions actually engage. *)
let wide_circuit =
  lazy
    (Circuit.of_gates 15
       (List.init 15 (fun q -> Gate.H q)
       @ List.concat
           (List.init 2 (fun _ ->
                List.init 15 (fun q -> Gate.T q)
                @ List.init 14 (fun q -> Gate.Cnot (q, q + 1))))))

let test_jobs_invariance () =
  let c = Lazy.force wide_circuit in
  Statevector.clear_plan_cache ();
  let s1 = with_jobs 1 (fun () -> Statevector.run c) in
  Statevector.clear_plan_cache ();
  let s4 = with_jobs 4 (fun () -> Statevector.run c) in
  let identical = ref true in
  for x = 0 to Statevector.size s1 - 1 do
    let a = Statevector.amplitude s1 x and b = Statevector.amplitude s4 x in
    if not (a.re = b.re && a.im = b.im) then identical := false
  done;
  Alcotest.(check bool) "amplitudes bit-identical across --jobs" true !identical

let test_reduction_determinism () =
  let c = Lazy.force wide_circuit in
  let s = Statevector.run c in
  let n1, p1, smp1 =
    with_jobs 1 (fun () ->
        (Statevector.norm2 s, Statevector.prob_of_qubit s 7, Statevector.sampler s))
  in
  let n4, p4, smp4 =
    with_jobs 4 (fun () ->
        (Statevector.norm2 s, Statevector.prob_of_qubit s 7, Statevector.sampler s))
  in
  Alcotest.(check bool) "norm2 bit-identical" true (n1 = n4);
  Alcotest.(check bool) "prob_of_qubit bit-identical" true (p1 = p4);
  for seed = 0 to 20 do
    Alcotest.(check int) "sampler draws identical"
      (Statevector.sample_with smp1 (Helpers.rng seed))
      (Statevector.sample_with smp4 (Helpers.rng seed))
  done

let test_obs_totals_jobs_invariant () =
  let c = Lazy.force wide_circuit in
  let totals jobs =
    let m = Obs.Memory.create () in
    Obs.reset ();
    Obs.set_sink (Some (Obs.Memory.sink m));
    Fun.protect
      ~finally:(fun () -> Obs.set_sink None)
      (fun () ->
        Statevector.clear_plan_cache ();
        with_jobs jobs (fun () -> ignore (Statevector.run c)));
    Obs.Summary.counter_totals (Obs.Memory.events m)
  in
  let t1 = totals 1 and t4 = totals 4 in
  Alcotest.(check (list (pair string int)))
    "telemetry counter totals identical across --jobs" t1 t4;
  Alcotest.(check bool) "plan blocks counted" true
    (match List.assoc_opt "sv.plan.blocks" t1 with Some n -> n > 0 | None -> false)

(* --- plan cache and sampler reuse across shots --- *)

let with_memory_sink f =
  let m = Obs.Memory.create () in
  Obs.reset ();
  Obs.set_sink (Some (Obs.Memory.sink m));
  Fun.protect ~finally:(fun () -> Obs.set_sink None) f;
  Obs.Summary.counter_totals (Obs.Memory.events m)

let test_plan_cache_replay () =
  let c = Lazy.force wide_circuit in
  let totals =
    with_memory_sink (fun () ->
        Statevector.clear_plan_cache ();
        ignore (Statevector.run c);
        ignore (Statevector.run c);
        ignore (Statevector.run c))
  in
  Alcotest.(check (option int)) "two cache replays"
    (Some 2)
    (List.assoc_opt "sv.plan.replay" totals)

let test_noise_sampler_reuse () =
  let c = Lazy.force wide_circuit in
  let totals =
    with_memory_sink (fun () ->
        Statevector.clear_plan_cache ();
        ignore (Noise.run_shots Noise.noiseless c ~shots:32);
        ignore (Noise.run_shots Noise.noiseless c ~shots:32))
  in
  (match List.assoc_opt "qc.noise.sampler_reuse" totals with
  | Some n when n >= 1 -> ()
  | _ -> Alcotest.fail "second noiseless run did not reuse the sampler");
  (* one plan build serves every shot of both runs *)
  match List.assoc_opt "sv.plan.blocks" totals with
  | Some _ -> ()
  | None -> Alcotest.fail "noiseless shots never built a plan"

let () =
  Alcotest.run "plan"
    [ ( "replay-equivalence",
        [ prop_diag_heavy; prop_perm_heavy; prop_general_dense ] );
      ( "classification",
        [ Alcotest.test_case "diag-heavy stats" `Quick test_stats_diag;
          Alcotest.test_case "perm block" `Quick test_stats_perm;
          Alcotest.test_case "dense block" `Quick test_stats_dense;
          Alcotest.test_case "diagonal matrix cross-check" `Quick
            test_diag_block_is_diagonal;
          Alcotest.test_case "identity elimination" `Quick
            test_identity_elimination ] );
      ( "determinism",
        [ Alcotest.test_case "jobs-invariant amplitudes" `Quick
            test_jobs_invariance;
          Alcotest.test_case "jobs-invariant reductions" `Quick
            test_reduction_determinism;
          Alcotest.test_case "jobs-invariant telemetry totals" `Quick
            test_obs_totals_jobs_invariant ] );
      ( "reuse",
        [ Alcotest.test_case "plan cache replay counter" `Quick
            test_plan_cache_replay;
          Alcotest.test_case "noiseless sampler reuse" `Quick
            test_noise_sampler_reuse ] ) ]
