(* The telemetry subsystem (Obs): span nesting invariants under the
   memory sink, counter totals, the null-sink contract, the JSONL
   round-trip, Chrome trace-event validity (ph/ts/dur), export format
   inference, and the cross-layer stream produced by a real compile. *)

(* Each test runs against a fresh recording epoch. *)
let record f =
  let m = Obs.Memory.create () in
  Obs.reset ();
  Obs.set_sink (Some (Obs.Memory.sink m));
  Fun.protect ~finally:(fun () -> Obs.set_sink None) f;
  Obs.Memory.events m

(* Walk the stream checking the nesting invariant: every Span_end matches
   the innermost open Span_begin (same name, same depth), and nothing is
   left open. Returns the number of completed spans. *)
let check_nesting events =
  let stack = ref [] and closed = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Obs.Span_begin { name; depth; _ } ->
          Alcotest.(check int) (name ^ ": open depth") (List.length !stack) depth;
          stack := name :: !stack
      | Obs.Span_end { name; depth; _ } -> (
          incr closed;
          match !stack with
          | top :: rest ->
              Alcotest.(check string) "end matches innermost open span" top name;
              Alcotest.(check int) (name ^ ": close depth") (List.length rest) depth;
              stack := rest
          | [] -> Alcotest.fail (name ^ ": span end with no open span"))
      | Obs.Counter _ | Obs.Sample _ -> ())
    events;
  Alcotest.(check int) "no spans left open" 0 (List.length !stack);
  !closed

let test_nesting () =
  let events =
    record (fun () ->
        Obs.with_span "a" (fun () ->
            Obs.with_span "a.b" (fun () -> Obs.count "k");
            Obs.with_span "a.c" (fun () -> ())))
  in
  Alcotest.(check int) "three spans closed" 3 (check_nesting events);
  (* ends arrive innermost-first *)
  let end_names =
    List.filter_map
      (function Obs.Span_end { name; _ } -> Some name | _ -> None)
      events
  in
  Alcotest.(check (list string)) "end order" [ "a.b"; "a.c"; "a" ] end_names

let test_nesting_on_exception () =
  let events =
    record (fun () ->
        try Obs.with_span "outer" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  Alcotest.(check int) "span closed despite exception" 1 (check_nesting events);
  match
    List.find_map
      (function Obs.Span_end { attrs; _ } -> Some attrs | _ -> None)
      events
  with
  | Some attrs ->
      Alcotest.(check bool) "error attribute recorded" true
        (List.mem_assoc "error" attrs)
  | None -> Alcotest.fail "no span end"

let test_counters () =
  let events =
    record (fun () ->
        Obs.count "x";
        Obs.count ~by:4 "x";
        Obs.count "y";
        Obs.observe "h" 2.;
        Obs.observe "h" 4.)
  in
  Alcotest.(check (list (pair string int)))
    "totals" [ ("x", 5); ("y", 1) ]
    (Obs.Summary.counter_totals events);
  match Obs.Summary.histogram_stats events with
  | [ ("h", s) ] ->
      Alcotest.(check int) "n" 2 s.Obs.Summary.n;
      Alcotest.(check (float 1e-9)) "mean" 3. s.Obs.Summary.mean;
      Alcotest.(check (float 1e-9)) "min" 2. s.Obs.Summary.min;
      Alcotest.(check (float 1e-9)) "max" 4. s.Obs.Summary.max
  | _ -> Alcotest.fail "expected one histogram"

let test_percentiles () =
  (* 1..100: nearest-rank percentiles land on the value itself *)
  let events =
    record (fun () ->
        for v = 1 to 100 do
          Obs.observe "p" (float_of_int v)
        done)
  in
  (match Obs.Summary.histogram_stats events with
  | [ ("p", s) ] ->
      Alcotest.(check int) "n" 100 s.Obs.Summary.n;
      (* index-based nearest rank: a.(int_of_float (p * n)) on 1..100 *)
      Alcotest.(check (float 1e-9)) "p50" 51. s.Obs.Summary.p50;
      Alcotest.(check (float 1e-9)) "p95" 96. s.Obs.Summary.p95;
      Alcotest.(check (float 1e-9)) "p99" 100. s.Obs.Summary.p99;
      Alcotest.(check (float 1e-9)) "max" 100. s.Obs.Summary.max
  | _ -> Alcotest.fail "expected one histogram");
  (* a single sample: every percentile is that sample *)
  let one = Obs.Summary.stats_of_samples [ 7. ] in
  Alcotest.(check (float 1e-9)) "single p95" 7. one.Obs.Summary.p95;
  Alcotest.(check (float 1e-9)) "single p99" 7. one.Obs.Summary.p99

let test_json_non_finite () =
  let render f = Obs.Json.to_string (Obs.Json.Num f) in
  Alcotest.(check string) "nan -> null" "null" (render Float.nan);
  Alcotest.(check string) "inf -> null" "null" (render Float.infinity);
  Alcotest.(check string) "-inf -> null" "null" (render Float.neg_infinity);
  Alcotest.(check string) "finite untouched" "2.5" (render 2.5);
  (* a document carrying a poisoned number still parses back *)
  let doc = Obs.Json.Obj [ ("ok", Obs.Json.Num 1.); ("bad", Obs.Json.Num Float.nan) ] in
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Obs.Json.Obj kvs ->
      Alcotest.(check bool) "nan field became null" true
        (List.assoc_opt "bad" kvs = Some Obs.Json.Null)
  | _ -> Alcotest.fail "document did not parse back"

let test_null_sink () =
  Obs.set_sink None;
  (* no sink: with_span is transparent, count/observe are no-ops *)
  Alcotest.(check int) "value passes through" 42
    (Obs.with_span "nope" (fun () ->
         Obs.count "nope";
         Obs.observe "nope" 1.;
         42));
  Alcotest.(check bool) "disabled" false (Obs.enabled ())

let test_jsonl_roundtrip () =
  let events =
    record (fun () ->
        Obs.with_span "rt.span" (fun () ->
            if Obs.enabled () then
              Obs.add_attrs
                [ ("i", Obs.Int 7); ("f", Obs.Float 2.5); ("s", Obs.Str "hi \"q\"") ];
            Obs.count ~by:3 "rt.counter";
            Obs.observe "rt.sample" 1.25))
  in
  let text = Obs.Export.jsonl events in
  let parsed = Obs.Export.parse_jsonl text in
  Alcotest.(check int) "event count survives" (List.length events) (List.length parsed);
  if parsed <> events then Alcotest.fail "JSONL round-trip changed the events"

let test_jsonl_rejects_garbage () =
  (match Obs.Export.parse_jsonl "{\"type\":" with
  | _ -> Alcotest.fail "truncated JSON accepted"
  | exception Obs.Json.Parse_error _ -> ());
  (match Obs.Export.parse_jsonl "{\"type\":\"martian\"}" with
  | _ -> Alcotest.fail "unknown event type accepted"
  | exception Obs.Json.Parse_error _ -> ());
  match Obs.Export.parse_jsonl "{\"type\":\"counter\",\"name\":\"x\"}" with
  | _ -> Alcotest.fail "missing fields accepted"
  | exception Obs.Json.Parse_error _ -> ()

let test_chrome_trace () =
  let events =
    record (fun () ->
        Obs.with_span "c.outer" (fun () ->
            Obs.count "c.counter";
            Obs.with_span "c.inner" (fun () -> Obs.observe "c.sample" 9.)))
  in
  let doc = Obs.Json.parse (Obs.Export.chrome events) in
  let trace_events =
    match Obs.Json.member "traceEvents" doc with
    | Some (Obs.Json.Arr items) -> items
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (trace_events <> []);
  let str_field j k =
    match Obs.Json.member k j with Some (Obs.Json.String s) -> s | _ -> Alcotest.fail ("missing " ^ k)
  in
  let num_field j k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Num f) -> f
    | _ -> Alcotest.fail ("missing numeric " ^ k)
  in
  let phases =
    List.map
      (fun ev ->
        let ph = str_field ev "ph" in
        Alcotest.(check bool) "ts >= 0" true (num_field ev "ts" >= 0.);
        if ph = "X" then
          Alcotest.(check bool) "dur >= 0" true (num_field ev "dur" >= 0.);
        ph)
      trace_events
  in
  Alcotest.(check int) "two complete spans" 2
    (List.length (List.filter (( = ) "X") phases));
  Alcotest.(check int) "counter + sample tracks" 2
    (List.length (List.filter (( = ) "C") phases))

let test_format_inference () =
  let open Obs.Export in
  Alcotest.(check bool) "jsonl" true (format_of_filename "t.jsonl" = Jsonl);
  Alcotest.(check bool) "json -> chrome" true (format_of_filename "t.json" = Chrome);
  Alcotest.(check bool) "txt -> table" true (format_of_filename "t.txt" = Table);
  let events = record (fun () -> Obs.count "w") in
  let tmp = Filename.temp_file "obs_test" ".jsonl" in
  write_file tmp events;
  let ic = open_in tmp in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  Alcotest.(check int) "written file parses back" 1
    (List.length (parse_jsonl text))

(* A real compile produces a coherent cross-layer stream: pass spans from
   the pass manager, synthesis spans below them, T-count counters from
   the lowering, and the exporters accept all of it. *)
let test_cross_layer_stream () =
  let events =
    record (fun () -> ignore (Core.Flow.compile_perm (Logic.Funcgen.hwb 4)))
  in
  ignore (check_nesting events);
  let span_names =
    List.filter_map
      (function Obs.Span_end { name; _ } -> Some name | _ -> None)
      events
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("stream has span " ^ expected) true
        (List.mem expected span_names))
    [ "core.flow.compile_perm"; "core.pipeline.run"; "rev.tbs.synth";
      "core.pass.revsimp"; "core.pass.cliffordt"; "core.pass.tpar";
      "qc.cliffordt.compile"; "qc.tpar.optimize" ];
  let totals = Obs.Summary.counter_totals events in
  List.iter
    (fun key ->
      match List.assoc_opt key totals with
      | Some v -> Alcotest.(check bool) (key ^ " > 0") true (v > 0)
      | None -> Alcotest.fail ("missing counter " ^ key))
    [ "qc.cliffordt.gates"; "qc.cliffordt.t_count"; "core.pass.executed" ];
  (* both machine exports ingest the stream *)
  Alcotest.(check int) "jsonl round-trips the full stream"
    (List.length events)
    (List.length (Obs.Export.parse_jsonl (Obs.Export.jsonl events)));
  match Obs.Json.parse (Obs.Export.chrome events) with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "chrome export is not a JSON object"

let test_shots_counter () =
  let events =
    record (fun () ->
        let c = Qc.Circuit.of_gates 2 [ Qc.Gate.H 0; Qc.Gate.Cnot (0, 1) ] in
        ignore (Qc.Noise.run_shots ~seed:1 Qc.Noise.ibm_qx2017 c ~shots:20))
  in
  Alcotest.(check (option int)) "shots counted" (Some 20)
    (List.assoc_opt "qc.noise.shots" (Obs.Summary.counter_totals events))

let () =
  Alcotest.run "obs"
    [ ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "nesting on exception" `Quick test_nesting_on_exception;
          Alcotest.test_case "null sink" `Quick test_null_sink ] );
      ( "counters",
        [ Alcotest.test_case "totals and histograms" `Quick test_counters;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "noisy shots" `Quick test_shots_counter ] );
      ( "json",
        [ Alcotest.test_case "non-finite numbers" `Quick test_json_non_finite ] );
      ( "export",
        [ Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl rejects garbage" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
          Alcotest.test_case "format inference" `Quick test_format_inference ] );
      ( "integration",
        [ Alcotest.test_case "cross-layer stream" `Quick test_cross_layer_stream ] ) ]
