(* The multi-tenant compile service: tenant-roster parsing, admission
   and shedding, deadline handling, request coalescing, the DRR
   starvation bound, and the pool-width determinism contract (verdicts
   and payloads are virtual-clock functions of the trace, identical at
   any --jobs). *)

let check_bad name spec =
  Alcotest.(check bool)
    (name ^ " rejected") true
    (match Serve.tenants_of_spec spec with
    | exception Serve.Bad_tenant _ -> true
    | _ -> false)

let test_tenant_spec_parse () =
  let ts = Serve.tenants_of_spec "alpha:w=4,cap=48; beta:w=2 ;gamma" in
  Alcotest.(check (list string))
    "names" [ "alpha"; "beta"; "gamma" ]
    (List.map (fun t -> t.Serve.name) ts);
  Alcotest.(check (list int))
    "weights" [ 4; 2; 1 ]
    (List.map (fun t -> t.Serve.weight) ts);
  Alcotest.(check (list int))
    "capacities" [ 48; 32; 32 ]
    (List.map (fun t -> t.Serve.capacity) ts);
  Alcotest.(check string) "roundtrip" "alpha:w=4,cap=48"
    (Serve.tenant_to_string (List.hd ts))

let test_tenant_spec_errors () =
  check_bad "empty spec" "";
  check_bad "duplicate name" "a;a";
  check_bad "zero weight" "x:w=0";
  check_bad "non-numeric capacity" "x:cap=nope";
  check_bad "unknown parameter" "x:zap=1"

(* a small overload profile: cheap shots keep the test fast, rate 3x
   keeps the scheduler in the shedding regime *)
let small ?(seed = 5) ?(requests = 48) () =
  { Serve.Load.default with Serve.Load.requests; seed; shots = 6 }

let one_tenant = [ Serve.tenant ~weight:2 ~capacity:8 "solo" ]

let quick_req ?(tenant = "solo") ?(deadline_us = 50_000.) () =
  { Serve.tenant; spec = Core.Flow.Perm_spec (Logic.Funcgen.hwb 3);
    pipeline = None; backend = "statevector"; shots = 1; deadline_us }

let test_every_request_settles () =
  (* tight caps force the backpressure path even at this trace size *)
  let t =
    { (small ~requests:60 ()) with
      Serve.Load.tenants = Serve.tenants_of_spec "a:w=2,cap=6;b:w=1,cap=4" }
  in
  let s = Serve.Load.run ~jobs:1 t in
  Alcotest.(check int) "one record per request" 60 (Array.length s.Serve.results);
  Alcotest.(check int) "verdict classes partition the trace" 60
    (s.Serve.n_validated + s.Serve.n_degraded + s.Serve.n_shed
   + s.Serve.n_deadline);
  Alcotest.(check bool) "overload sheds" true (s.Serve.n_shed > 0);
  Alcotest.(check bool) "still delivers" true
    (s.Serve.n_validated + s.Serve.n_degraded > 0)

let test_unknown_tenant_shed () =
  let cfg = Serve.default_config ~tenants:one_tenant in
  let s =
    Serve.run ~jobs:1 cfg
      [ { Serve.at_us = 0.; req = quick_req () };
        { Serve.at_us = 1.; req = quick_req ~tenant:"ghost" () } ]
  in
  let ghost = s.Serve.results.(1) in
  Alcotest.(check bool) "shed as unknown" true
    (ghost.Serve.verdict = Serve.Shed "unknown_tenant");
  Alcotest.(check int) "counted" 1 s.Serve.shed_unknown;
  Alcotest.(check bool) "the known tenant's request survives" true
    (s.Serve.results.(0).Serve.verdict = Serve.Validated)

let test_deadline_verdicts () =
  let cfg = Serve.default_config ~tenants:one_tenant in
  let s =
    Serve.run ~jobs:1 cfg
      [ { Serve.at_us = 0.; req = quick_req ~deadline_us:1. () };
        { Serve.at_us = 0.5; req = quick_req () } ]
  in
  let dead = s.Serve.results.(0) and live = s.Serve.results.(1) in
  Alcotest.(check bool) "hopeless deadline named" true
    (dead.Serve.verdict = Serve.Deadline_exceeded);
  Alcotest.(check string) "expired requests carry no payload" ""
    dead.Serve.payload;
  Alcotest.(check bool) "generous deadline validates" true
    (live.Serve.verdict = Serve.Validated);
  Alcotest.(check bool) "delivered within its deadline" true
    (live.Serve.latency_us <= (quick_req ()).Serve.deadline_us)

let test_overload_sheds_min_weight () =
  (* drive aggregate depth past the level-3 watermark (0.9 of total
     capacity): the next arrival from a minimum-weight tenant is shed as
     "overload" even though its own queue has room *)
  let tenants = Serve.tenants_of_spec "big:w=2,cap=190;small:w=1,cap=10" in
  let cfg = Serve.default_config ~tenants in
  let flood =
    List.init 185 (fun _ -> { Serve.at_us = 0.; req = quick_req ~tenant:"big" () })
  in
  let arrivals =
    flood @ [ { Serve.at_us = 0.; req = quick_req ~tenant:"small" () } ]
  in
  let s = Serve.run ~jobs:1 cfg arrivals in
  let last = s.Serve.results.(185) in
  Alcotest.(check bool) "min-weight arrival shed as overload" true
    (last.Serve.verdict = Serve.Shed "overload");
  Alcotest.(check int) "counted as overload" 1 s.Serve.shed_overload;
  Alcotest.(check int) "nobody hit queue_full" 0 s.Serve.shed_queue_full

let test_coalesce_unit () =
  (* coalescing is batch-scoped: both requests must be queued before the
     first scheduler round picks them up together *)
  let cfg = Serve.default_config ~tenants:one_tenant in
  let s =
    Serve.run ~jobs:1 cfg
      [ { Serve.at_us = 0.; req = quick_req () };
        { Serve.at_us = 0.; req = quick_req () } ]
  in
  let a = s.Serve.results.(0) and b = s.Serve.results.(1) in
  Alcotest.(check int) "one execution" 1 s.Serve.compiles;
  Alcotest.(check int) "one coalesce hit" 1 s.Serve.coalesce_hits;
  Alcotest.(check int) "subscriber names the leader" a.Serve.jid b.Serve.leader;
  Alcotest.(check string) "identical payloads" a.Serve.payload b.Serve.payload;
  Alcotest.(check bool) "payload is real" true (String.length a.Serve.payload > 0)

(* --- properties --- *)

let seed_gen = QCheck2.Gen.int_bound 1000

(* (a) all delivered subscribers of a coalescing group observe the exact
   same payload and verdict — result sharing is all-or-nothing. (The
   leader's own record may legitimately read Deadline_exceeded while a
   longer-deadline subscriber still collects the shared result, so the
   comparison is pairwise within the delivered set, not against the
   leader's record.) *)
let prop_coalesced_identical =
  Helpers.prop "coalesced subscribers share payload+verdict" ~count:4 seed_gen
    (fun seed ->
      let s = Serve.Load.run ~jobs:1 (small ~seed ()) in
      let by_leader : (int, Serve.job_result list) Hashtbl.t =
        Hashtbl.create 32
      in
      Array.iter
        (fun (r : Serve.job_result) ->
          match r.Serve.verdict with
          | Serve.Validated | Serve.Degraded _ ->
              let prev =
                Option.value ~default:[]
                  (Hashtbl.find_opt by_leader r.Serve.leader)
              in
              Hashtbl.replace by_leader r.Serve.leader (r :: prev)
          | _ -> ())
        s.Serve.results;
      Hashtbl.fold
        (fun _ group ok ->
          match group with
          | [] -> ok
          | (first : Serve.job_result) :: rest ->
              ok
              && List.for_all
                   (fun (r : Serve.job_result) ->
                     r.Serve.payload = first.Serve.payload
                     && String.length r.Serve.payload > 0
                     && Serve.verdict_to_string r.Serve.verdict
                        = Serve.verdict_to_string first.Serve.verdict)
                   rest)
        by_leader true)

(* (b) DRR never starves a backlogged tenant. Derivation of the bound:
   while job j is queued its tenant stays backlogged, so every round
   adds quantum * weight of credit and the deficit never resets; credit
   is spent only on same-tenant jobs the EDF order puts before j. With
   S(j) = total cost of every same-tenant job EDF-before j in the whole
   trace (a superset of the jobs actually dispatched while j waited),
   R rounds of waiting give R * credit < cost(j) + S(j), hence
   head_rounds <= R <= ceil((cost(j) + S(j)) / credit). A nonzero
   weight therefore implies a finite wait — the starvation bound. *)
let prop_drr_starvation_bound =
  Helpers.prop "DRR head wait is bounded" ~count:4 seed_gen (fun seed ->
      let t = small ~seed ~requests:64 () in
      let cfg = Serve.default_config ~tenants:t.Serve.Load.tenants in
      let arrivals = Array.of_list (Serve.Load.trace t) in
      let s = Serve.run ~jobs:1 cfg (Array.to_list arrivals) in
      let weight_of name =
        (List.find (fun tn -> tn.Serve.name = name) cfg.Serve.tenants)
          .Serve.weight
      in
      let due i =
        arrivals.(i).Serve.at_us +. arrivals.(i).Serve.req.Serve.deadline_us
      in
      let edf_before p j = due p < due j || (due p = due j && p < j) in
      Array.for_all
        (fun (r : Serve.job_result) ->
          match r.Serve.admission with
          | Serve.Admission.Shed _ -> true
          | _ ->
              let j = r.Serve.jid in
              let cost i = Serve.request_cost arrivals.(i).Serve.req in
              let ahead = ref 0. in
              Array.iteri
                (fun p (a : Serve.arrival) ->
                  if
                    p <> j
                    && a.Serve.req.Serve.tenant = r.Serve.tenant
                    && edf_before p j
                  then ahead := !ahead +. cost p)
                arrivals;
              let credit =
                cfg.Serve.quantum_us *. float_of_int (weight_of r.Serve.tenant)
              in
              r.Serve.head_rounds
              <= int_of_float (ceil ((cost j +. !ahead) /. credit)) + 1)
        s.Serve.results)

(* (c) pool width is invisible: the per-request records digest and the
   rendered summary are bit-identical at --jobs 1 and 4 *)
let prop_jobs_invariant =
  Helpers.prop "verdicts identical across jobs 1/4" ~count:3 seed_gen
    (fun seed ->
      let t = small ~seed ~requests:40 () in
      let s1 = Serve.Load.run ~jobs:1 t in
      let s4 = Serve.Load.run ~jobs:4 t in
      Serve.results_digest s1 = Serve.results_digest s4
      && Serve.summary_lines s1 = Serve.summary_lines s4)

let () =
  Alcotest.run "serve"
    [ ( "tenants",
        [ Alcotest.test_case "spec parses" `Quick test_tenant_spec_parse;
          Alcotest.test_case "bad specs raise Bad_tenant" `Quick
            test_tenant_spec_errors ] );
      ( "scheduler",
        [ Alcotest.test_case "every request settles" `Quick
            test_every_request_settles;
          Alcotest.test_case "unknown tenant sheds" `Quick
            test_unknown_tenant_shed;
          Alcotest.test_case "deadline verdicts" `Quick test_deadline_verdicts;
          Alcotest.test_case "ladder level 3 sheds min-weight" `Quick
            test_overload_sheds_min_weight;
          Alcotest.test_case "identical requests coalesce" `Quick
            test_coalesce_unit ] );
      ( "properties",
        [ prop_coalesced_identical; prop_drr_starvation_bound;
          prop_jobs_invariant ] ) ]
