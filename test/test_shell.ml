module Shell = Core.Shell

let run script = Shell.run_script script

let test_eq5_script () =
  (* the paper's Eq. (5) command sequence *)
  let out = run "revgen hwb 4; tbs; revsimp; cliffordt; tpar; ps" in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (Helpers.contains ~needle out))
    [ "loaded hwb(4)"; "tbs:"; "revsimp:"; "cliffordt:"; "T-count"; "tpar:";
      "reversible:"; "quantum:" ]

let test_verify_command () =
  let out = run "revgen hwb 4; tbs; verify" in
  Alcotest.(check bool) "reversible verify" true
    (Helpers.contains ~needle:"verify: reversible circuit OK" out);
  let out = run "revgen hwb 4; tbs; cliffordt; verify" in
  Alcotest.(check bool) "quantum verify" true
    (Helpers.contains ~needle:"verify: quantum circuit OK" out)

let test_dbs_and_perm_literal () =
  let out = run "perm 0 2 3 5 7 1 4 6; dbs; verify" in
  Alcotest.(check bool) "dbs on paper pi" true
    (Helpers.contains ~needle:"verify: reversible circuit OK" out)

let test_expr_esop_flow () =
  let out = run "expr (a & b) ^ (c & d); esop; ps" in
  Alcotest.(check bool) "loaded" true (Helpers.contains ~needle:"loaded expression on 4" out);
  Alcotest.(check bool) "esop ran" true (Helpers.contains ~needle:"esop:" out)

let test_tt_command () =
  let out = run "tt 0110; esop" in
  Alcotest.(check bool) "loaded tt" true
    (Helpers.contains ~needle:"loaded truth table on 2 variables" out)

let test_embed_command () =
  let out = run "revgen maj 3; embed; tbs; verify" in
  Alcotest.(check bool) "embed reports mu" true (Helpers.contains ~needle:"mu = " out);
  Alcotest.(check bool) "synthesized embedding" true
    (Helpers.contains ~needle:"verify: reversible circuit OK" out)

let test_hier_command () =
  let out = run "revgen parity 4; hier; ps" in
  Alcotest.(check bool) "ancillae reported" true (Helpers.contains ~needle:"ancillae" out)

let test_simulate_command () =
  (* hwb(4) maps 0b0011 to 0b1100 = 12 *)
  let out = run "revgen hwb 4; tbs; simulate 3" in
  Alcotest.(check bool) "simulation value" true (Helpers.contains ~needle:"f(3) = 12" out)

let test_draw_and_qasm () =
  let out = run "perm 0 1 3 2; tbs; cliffordt; draw" in
  Alcotest.(check bool) "drawing present" true (Helpers.contains ~needle:"q0 :" out);
  let out = run "perm 0 1 3 2; tbs; cliffordt; write_qasm -" in
  Alcotest.(check bool) "qasm header" true (Helpers.contains ~needle:"OPENQASM 2.0" out)

let test_qsharp_command () =
  let out = run "perm 0 2 3 5 7 1 4 6; tbs; cliffordt; qsharp PermutationOracle" in
  Alcotest.(check bool) "Q# operation" true
    (Helpers.contains ~needle:"operation PermutationOracle" out)

let test_random_perm_seeded () =
  let a = run "random_perm 4 7; tbs; ps" and b = run "random_perm 4 7; tbs; ps" in
  Alcotest.(check string) "deterministic by seed" a b

let test_errors () =
  List.iter
    (fun (script, fragment) ->
      match run script with
      | exception Shell.Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s -> %s" script fragment)
            true (Helpers.contains ~needle:fragment msg)
      | out -> Alcotest.failf "expected error for %s, got %s" script out)
    [ ("tbs", "no permutation");
      ("esop", "no function");
      ("revsimp", "no reversible circuit");
      ("tpar", "no quantum circuit");
      ("revgen nosuch 4", "unknown generator");
      ("frobnicate", "unknown command");
      ("perm 0 0", "not injective");
      ("revgen hwb", "missing argument");
      ("expr a &", "expr:") ]

let test_help () =
  Alcotest.(check bool) "help lists commands" true (Helpers.contains ~needle:"revgen" (run "help"))

let test_tbs_basic_flag () =
  let out = run "revgen hwb 4; tbs -b; verify" in
  Alcotest.(check bool) "basic variant works" true
    (Helpers.contains ~needle:"verify: reversible circuit OK" out)

let test_no_rccx_flag () =
  let with_rccx = run "revgen hwb 5; tbs; cliffordt" in
  let without = run "revgen hwb 5; tbs; cliffordt --no-rccx" in
  let t_of out =
    (* parse "T-count <n>" *)
    let words = String.split_on_char ' ' out in
    let rec find = function
      | "T-count" :: n :: _ -> int_of_string (String.trim (List.hd (String.split_on_char ',' n)))
      | _ :: rest -> find rest
      | [] -> -1
    in
    find words
  in
  Alcotest.(check bool) "rccx ladder lowers T-count" true (t_of with_rccx <= t_of without)

let test_cycle_exact_commands () =
  let out = run "perm 0 2 3 5 7 1 4 6; cycle; verify" in
  Alcotest.(check bool) "cycle verifies" true
    (Helpers.contains ~needle:"verify: reversible circuit OK" out);
  let out = run "perm 0 2 3 5 7 1 4 6; exact; verify" in
  Alcotest.(check bool) "exact verifies" true
    (Helpers.contains ~needle:"verify: reversible circuit OK" out);
  Alcotest.(check bool) "minimality reported" true
    (Helpers.contains ~needle:"provably minimal" out)

let test_bdd_lut_commands () =
  let out = run "revgen maj 5; bdd; ps" in
  Alcotest.(check bool) "bdd ancillae" true (Helpers.contains ~needle:"ancillae" out);
  let out = run "revgen maj 5; lut 4; ps" in
  Alcotest.(check bool) "lut header" true (Helpers.contains ~needle:"lut(k=4):" out)

let test_adder_command () =
  (* Cuccaro layout: carry on line 0, a on lines 1-2, b on lines 3-4.
     Input word 10 = 0b01010 encodes a = 1, b = 1; the sum replaces b,
     so the output is 0b10010 = 18. *)
  let out = run "adder 2; simulate 10" in
  Alcotest.(check bool) "adder simulate" true (Helpers.contains ~needle:"f(10) = 18" out)

let test_route_command () =
  let out = run "perm 0 2 3 5 7 1 4 6; tbs; cliffordt; route; ps" in
  Alcotest.(check bool) "route reports swaps" true (Helpers.contains ~needle:"SWAPs" out)

let test_pipeline_command () =
  (* pass specs inside a shell line use ',' because ';' separates commands *)
  let out = run "revgen hwb 4; tbs; pipeline revsimp,cliffordt,tpar,peephole; ps" in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (Helpers.contains ~needle out))
    [ "revsimp:"; "cliffordt:"; "tpar:"; "peephole:"; "pipeline: 4 passes" ];
  (* a lowering-less spec gets the default boundary inserted *)
  let out = run "revgen hwb 4; tbs; pipeline tpar" in
  Alcotest.(check bool) "default lowering inserted" true
    (Helpers.contains ~needle:"cliffordt:" out)

let test_passes_and_backends_commands () =
  let out = run "passes" in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (Helpers.contains ~needle out))
    [ "revsimp"; "cliffordt"; "tpar"; "peephole"; "route" ];
  let out = run "backends" in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (Helpers.contains ~needle out))
    [ "statevector"; "stabilizer"; "noisy"; "qasm"; "qsharp" ]

let test_trace_command () =
  let out = run "revgen hwb 4; tbs; pipeline revsimp,cliffordt,tpar; trace" in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (Helpers.contains ~needle out))
    [ "pass"; "layer"; "time"; "lowering"; "quantum" ]

let test_run_command () =
  let out = run "perm 0 1 3 2; tbs; cliffordt; run statevector" in
  Alcotest.(check bool) "statevector outcome" true
    (Helpers.contains ~needle:"deterministic" out);
  let out = run "perm 0 1 3 2; tbs; cliffordt; run qasm" in
  Alcotest.(check bool) "qasm export" true (Helpers.contains ~needle:"OPENQASM 2.0" out)

let test_pass_manager_errors () =
  List.iter
    (fun (script, fragment) ->
      match run script with
      | exception Shell.Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s -> %s" script fragment)
            true (Helpers.contains ~needle:fragment msg)
      | out -> Alcotest.failf "expected error for %s, got %s" script out)
    [ ("revgen hwb 4; tbs; pipeline bogus", "unknown pass bogus");
      ("revgen hwb 4; tbs; pipeline tpar,revsimp", "revsimp");
      ("pipeline tpar", "no reversible circuit");
      ("perm 0 1 3 2; tbs; cliffordt; run nosuch", "unknown backend nosuch");
      ("trace", "no pipeline has run");
      ("run statevector", "no quantum circuit") ]

let test_stabsim_command () =
  (* a Clifford-only reversible circuit (CNOT chain) can be stab-simulated *)
  let out = run "perm 0 1 3 2; tbs; cliffordt; stabsim" in
  Alcotest.(check bool) "stabsim deterministic" true
    (Helpers.contains ~needle:"deterministic" out)

let () =
  Alcotest.run "shell"
    [ ( "shell",
        [ Alcotest.test_case "Eq. 5 script" `Quick test_eq5_script;
          Alcotest.test_case "verify" `Quick test_verify_command;
          Alcotest.test_case "dbs + literal perm" `Quick test_dbs_and_perm_literal;
          Alcotest.test_case "expr + esop" `Quick test_expr_esop_flow;
          Alcotest.test_case "tt" `Quick test_tt_command;
          Alcotest.test_case "embed" `Quick test_embed_command;
          Alcotest.test_case "hier" `Quick test_hier_command;
          Alcotest.test_case "simulate" `Quick test_simulate_command;
          Alcotest.test_case "draw + qasm" `Quick test_draw_and_qasm;
          Alcotest.test_case "qsharp" `Quick test_qsharp_command;
          Alcotest.test_case "seeded random_perm" `Quick test_random_perm_seeded;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "help" `Quick test_help;
          Alcotest.test_case "tbs -b" `Quick test_tbs_basic_flag;
          Alcotest.test_case "--no-rccx" `Quick test_no_rccx_flag;
          Alcotest.test_case "cycle and exact" `Quick test_cycle_exact_commands;
          Alcotest.test_case "bdd and lut" `Quick test_bdd_lut_commands;
          Alcotest.test_case "adder" `Quick test_adder_command;
          Alcotest.test_case "route" `Quick test_route_command;
          Alcotest.test_case "pipeline" `Quick test_pipeline_command;
          Alcotest.test_case "passes + backends" `Quick test_passes_and_backends_commands;
          Alcotest.test_case "trace" `Quick test_trace_command;
          Alcotest.test_case "run" `Quick test_run_command;
          Alcotest.test_case "pass-manager errors" `Quick test_pass_manager_errors;
          Alcotest.test_case "stabsim" `Quick test_stabsim_command ] ) ]
