open Logic

let test_create_const () =
  let t = Truth_table.create 3 in
  Alcotest.(check bool) "all false" true (Truth_table.is_const t false);
  Alcotest.(check bool) "not all true" false (Truth_table.is_const t true);
  let t1 = Truth_table.const 3 true in
  Alcotest.(check bool) "const true" true (Truth_table.is_const t1 true);
  Alcotest.(check int) "count_ones" 8 (Truth_table.count_ones t1)

let test_set_get () =
  let t = Truth_table.create 4 in
  Truth_table.set t 5 true;
  Truth_table.set t 11 true;
  Alcotest.(check bool) "get 5" true (Truth_table.get t 5);
  Alcotest.(check bool) "get 6" false (Truth_table.get t 6);
  Alcotest.(check int) "count" 2 (Truth_table.count_ones t);
  Truth_table.set t 5 false;
  Alcotest.(check bool) "cleared" false (Truth_table.get t 5)

let test_var () =
  let v1 = Truth_table.var 3 1 in
  for x = 0 to 7 do
    Alcotest.(check bool) "projection" (Bitops.bit x 1) (Truth_table.get v1 x)
  done

let test_large_tables () =
  (* exercise the multi-word path (n > 6) *)
  let t = Truth_table.of_fun 10 (fun x -> x mod 3 = 0) in
  Alcotest.(check int) "count n=10" 342 (Truth_table.count_ones t);
  let nt = Truth_table.not_ t in
  Alcotest.(check int) "complement count" (1024 - 342) (Truth_table.count_ones nt);
  Alcotest.(check bool) "xor with self is zero" true
    (Truth_table.is_const (Truth_table.xor t t) false)

let test_bool_algebra () =
  let a = Truth_table.var 3 0 and b = Truth_table.var 3 1 in
  let ab = Truth_table.and_ a b in
  let a_or_b = Truth_table.or_ a b in
  let axb = Truth_table.xor a b in
  for x = 0 to 7 do
    let va = Bitops.bit x 0 and vb = Bitops.bit x 1 in
    Alcotest.(check bool) "and" (va && vb) (Truth_table.get ab x);
    Alcotest.(check bool) "or" (va || vb) (Truth_table.get a_or_b x);
    Alcotest.(check bool) "xor" (va <> vb) (Truth_table.get axb x)
  done

let test_cofactor () =
  let f = Truth_table.of_fun 4 (fun x -> Bitops.popcount x >= 2) in
  let f0 = Truth_table.cofactor f 2 false and f1 = Truth_table.cofactor f 2 true in
  for y = 0 to 7 do
    Alcotest.(check bool) "cofactor 0" (Truth_table.get f (Bitops.insert_bit y 2 false))
      (Truth_table.get f0 y);
    Alcotest.(check bool) "cofactor 1" (Truth_table.get f (Bitops.insert_bit y 2 true))
      (Truth_table.get f1 y)
  done

let test_depends_on () =
  let f = Truth_table.of_fun 4 (fun x -> Bitops.bit x 0 <> Bitops.bit x 2) in
  Alcotest.(check bool) "depends 0" true (Truth_table.depends_on f 0);
  Alcotest.(check bool) "ignores 1" false (Truth_table.depends_on f 1);
  Alcotest.(check bool) "depends 2" true (Truth_table.depends_on f 2);
  Alcotest.(check bool) "ignores 3" false (Truth_table.depends_on f 3)

let test_shift_inputs () =
  let f = Truth_table.of_fun 4 (fun x -> x = 3) in
  let g = Truth_table.shift_inputs f 5 in
  for x = 0 to 15 do
    Alcotest.(check bool) "shifted" (Truth_table.get f (x lxor 5)) (Truth_table.get g x)
  done

let test_string_roundtrip () =
  Alcotest.(check string) "xor string" "0110" (Truth_table.to_string (Truth_table.of_string "0110"));
  let t = Truth_table.of_string "10010110" in
  Alcotest.(check int) "arity from length" 3 (Truth_table.num_vars t);
  Alcotest.(check bool) "msb is x=7" true (Truth_table.get t 7);
  Alcotest.(check bool) "x=0 false" false (Truth_table.get t 0)

let test_extend () =
  let f = Truth_table.of_fun 2 (fun x -> x = 3) in
  let g = Truth_table.extend f 4 in
  for x = 0 to 15 do
    Alcotest.(check bool) "extend ignores high vars" (x land 3 = 3) (Truth_table.get g x)
  done

let test_bad_inputs () =
  Alcotest.check_raises "n too large"
    (Invalid_argument "Truth_table: n = 30 out of range [0,24]") (fun () ->
      ignore (Truth_table.create 30));
  Alcotest.check_raises "bad string length"
    (Invalid_argument "Truth_table.of_string: length not a power of 2") (fun () ->
      ignore (Truth_table.of_string "011"))

let prop_string_roundtrip =
  Helpers.prop "to_string/of_string roundtrip" (Helpers.tt_gen 5) (fun t ->
      Truth_table.equal t (Truth_table.of_string (Truth_table.to_string t)))

let prop_double_shift =
  Helpers.prop "shift twice is identity"
    QCheck2.Gen.(pair (Helpers.tt_gen 6) (int_bound 63))
    (fun (t, s) -> Truth_table.equal t (Truth_table.shift_inputs (Truth_table.shift_inputs t s) s))

let prop_demorgan =
  Helpers.prop "De Morgan on tables"
    QCheck2.Gen.(pair (Helpers.tt_gen 5) (Helpers.tt_gen 5))
    (fun (a, b) ->
      Truth_table.equal
        (Truth_table.not_ (Truth_table.and_ a b))
        (Truth_table.or_ (Truth_table.not_ a) (Truth_table.not_ b)))

let prop_shannon =
  Helpers.prop "Shannon expansion rebuilds the function" (Helpers.tt_gen 5) (fun f ->
      let v = 2 in
      let f0 = Truth_table.cofactor f v false and f1 = Truth_table.cofactor f v true in
      let rebuilt =
        Truth_table.of_fun 5 (fun x ->
            let y = Bitops.remove_bit x v in
            if Bitops.bit x v then Truth_table.get f1 y else Truth_table.get f0 y)
      in
      Truth_table.equal f rebuilt)

let prop_hash_consistent =
  Helpers.prop "equal tables hash equally"
    (Helpers.tt_gen 4)
    (fun t -> Truth_table.hash t = Truth_table.hash (Truth_table.copy t))

(* the word-level flip must agree with the bit-by-bit definition
   g(x) = f(x xor 2^j), both below and above the intra-word boundary *)
let prop_flip_input_reference =
  Helpers.prop "flip_input agrees with per-bit reference"
    QCheck2.Gen.(pair (QCheck2.Gen.bind (int_range 3 8) Helpers.tt_gen) (int_bound 63))
    (fun (t, j) ->
      let n = Truth_table.num_vars t in
      let j = j mod n in
      let reference =
        Truth_table.of_fun n (fun x -> Truth_table.get t (x lxor (1 lsl j)))
      in
      Truth_table.equal (Truth_table.flip_input t j) reference)

let prop_flip_inputs_involution =
  Helpers.prop "flip_inputs is an involution"
    QCheck2.Gen.(pair (Helpers.tt_gen 7) (int_bound 127))
    (fun (t, mask) ->
      Truth_table.equal t (Truth_table.flip_inputs (Truth_table.flip_inputs t mask) mask))

let prop_compare_matches_strings =
  Helpers.prop "compare orders like to_string"
    QCheck2.Gen.(pair (Helpers.tt_gen 7) (Helpers.tt_gen 7))
    (fun (a, b) ->
      Int.compare (Truth_table.compare a b) 0
      = Int.compare (String.compare (Truth_table.to_string a) (Truth_table.to_string b)) 0)

let () =
  Alcotest.run "truth_table"
    [ ( "truth_table",
        [ Alcotest.test_case "create/const" `Quick test_create_const;
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "var projection" `Quick test_var;
          Alcotest.test_case "multi-word tables" `Quick test_large_tables;
          Alcotest.test_case "boolean algebra" `Quick test_bool_algebra;
          Alcotest.test_case "cofactors" `Quick test_cofactor;
          Alcotest.test_case "depends_on" `Quick test_depends_on;
          Alcotest.test_case "shift_inputs" `Quick test_shift_inputs;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
          prop_string_roundtrip;
          prop_double_shift;
          prop_demorgan;
          prop_shannon;
          prop_hash_consistent;
          prop_flip_input_reference;
          prop_flip_inputs_involution;
          prop_compare_matches_strings ] ) ]
