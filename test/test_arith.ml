open Rev
module Perm = Logic.Perm

let test_cuccaro_exhaustive () =
  for n = 1 to 4 do
    let adder = Arith.cuccaro_adder n in
    Alcotest.(check bool) (Printf.sprintf "adder %d" n) true (Arith.check_adder adder n)
  done

let test_cuccaro_no_carry () =
  for n = 1 to 4 do
    let adder = Arith.cuccaro_adder ~with_carry:false n in
    Alcotest.(check bool) (Printf.sprintf "mod-2^%d adder" n) true (Arith.check_adder adder n)
  done

let test_gate_counts () =
  (* 2n Toffolis + carry CNOT: linear scaling, the CDKM signature *)
  let c, _ = Arith.cuccaro_adder 8 in
  let s = Rcircuit.stats c in
  Alcotest.(check int) "toffolis" 16 s.Rcircuit.toffoli_count;
  Alcotest.(check int) "no larger gates" 0 s.Rcircuit.larger_count

let test_subtractor_inverts () =
  for n = 1 to 4 do
    let add, _ = Arith.cuccaro_adder ~with_carry:false n in
    let sub, _ = Arith.subtractor n in
    Alcotest.(check bool) "add then sub" true
      (Perm.is_identity (Rsim.to_perm (Rcircuit.append add sub)))
  done

let test_subtractor_values () =
  let sub, lay = Arith.subtractor 3 in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let input = ref 0 in
      Array.iteri (fun i l -> if Logic.Bitops.bit a i then input := !input lor (1 lsl l)) lay.Arith.a;
      Array.iteri (fun i l -> if Logic.Bitops.bit b i then input := !input lor (1 lsl l)) lay.Arith.b;
      let out = Rsim.run sub !input in
      let b' = ref 0 in
      Array.iteri (fun i l -> if Logic.Bitops.bit out l then b' := !b' lor (1 lsl i)) lay.Arith.b;
      Alcotest.(check int) "b - a" ((b - a) land 7) !b'
    done
  done

let test_incrementer () =
  for n = 1 to 5 do
    let p = Rsim.to_perm (Arith.incrementer n) in
    for x = 0 to (1 lsl n) - 1 do
      Alcotest.(check int) "increment" ((x + 1) land Logic.Bitops.mask n) (Perm.apply p x)
    done
  done

let test_decrementer () =
  let p = Rsim.to_perm (Arith.decrementer 4) in
  for x = 0 to 15 do
    Alcotest.(check int) "decrement" ((x - 1) land 15) (Perm.apply p x)
  done

let test_controlled_incrementer () =
  let p = Rsim.to_perm (Arith.controlled_incrementer 3) in
  for x = 0 to 15 do
    let ctrl = x land 1 and v = x lsr 1 in
    let expect = if ctrl = 1 then (((v + 1) land 7) lsl 1) lor 1 else x in
    Alcotest.(check int) "controlled" expect (Perm.apply p x)
  done

let test_incrementer_equals_cycle_shift () =
  (* the structural incrementer equals the Funcgen specification *)
  for n = 1 to 5 do
    Helpers.check_perm_eq "inc = cycle_shift" (Logic.Funcgen.cycle_shift n)
      (Rsim.to_perm (Arith.incrementer n))
  done

let test_mod_add_const () =
  let p = Arith.mod_add_const 4 ~m:13 ~k:5 in
  for x = 0 to 12 do
    Alcotest.(check int) "residues" ((x + 5) mod 13) (Perm.apply p x)
  done;
  for x = 13 to 15 do
    Alcotest.(check int) "identity above m" x (Perm.apply p x)
  done;
  (* negative constants normalize *)
  let q = Arith.mod_add_const 4 ~m:13 ~k:(-8) in
  Helpers.check_perm_eq "negative k" p q

let test_mod_mult_const () =
  let p = Arith.mod_mult_const 4 ~m:15 ~c:7 in
  for x = 0 to 14 do
    Alcotest.(check int) "7x mod 15" (7 * x mod 15) (Perm.apply p x)
  done;
  match Arith.mod_mult_const 4 ~m:15 ~c:5 with
  | exception Invalid_argument _ -> () (* gcd(5,15) != 1 *)
  | _ -> Alcotest.fail "non-invertible multiplier accepted"

let test_mod_exp_step_composition () =
  (* composing e steps of x -> 2x mod 13 equals x -> 2^e x mod 13 *)
  let step = Arith.mod_exp_step 4 ~m:13 ~base:2 in
  let four = Perm.compose step (Perm.compose step (Perm.compose step step)) in
  let direct = Arith.mod_mult_const 4 ~m:13 ~c:16 in
  Helpers.check_perm_eq "2^4 = 16 mod 13" direct four

let test_modular_through_flow () =
  (* the paper's pitch: modular arithmetic compiles automatically *)
  let p = Arith.mod_add_const 3 ~m:5 ~k:3 in
  let circuit, _ = Core.Flow.compile_perm p in
  Alcotest.(check bool) "mod-adder compiled and verified" true
    (Core.Flow.verify_perm p circuit);
  let q = Arith.mod_mult_const 3 ~m:7 ~c:3 in
  let circuit, _ = Core.Flow.compile_perm ~options:{ Core.Flow.default with synth = Core.Flow.Dbs } q in
  Alcotest.(check bool) "mod-multiplier compiled and verified" true
    (Core.Flow.verify_perm q circuit)

let prop_adder_via_tbs =
  (* synthesizing the adder's permutation from scratch matches the
     structural circuit *)
  Helpers.prop "structural adder equals resynthesized permutation" ~count:4
    (QCheck2.Gen.int_range 1 3)
    (fun n ->
      let c, _ = Arith.cuccaro_adder ~with_carry:false n in
      let p = Rsim.to_perm c in
      Rsim.realizes (Tbs.synth p) p)

let test_borrow_subtractor () =
  for n = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "borrow subtractor n=%d" n)
      true
      (Arith.check_subtractor (Arith.borrow_subtractor n) n)
  done

let test_less_than_comparator () =
  for n = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "less-than n=%d" n)
      true
      (Arith.check_less_than (Arith.less_than n) n)
  done

let () =
  Alcotest.run "arith"
    [ ( "adder",
        [ Alcotest.test_case "cuccaro exhaustive" `Quick test_cuccaro_exhaustive;
          Alcotest.test_case "no-carry variant" `Quick test_cuccaro_no_carry;
          Alcotest.test_case "gate counts" `Quick test_gate_counts;
          Alcotest.test_case "subtractor inverts" `Quick test_subtractor_inverts;
          Alcotest.test_case "subtractor values" `Quick test_subtractor_values;
          Alcotest.test_case "borrow subtractor" `Quick test_borrow_subtractor;
          Alcotest.test_case "less-than comparator" `Quick test_less_than_comparator;
          prop_adder_via_tbs ] );
      ( "counters",
        [ Alcotest.test_case "incrementer" `Quick test_incrementer;
          Alcotest.test_case "decrementer" `Quick test_decrementer;
          Alcotest.test_case "controlled incrementer" `Quick test_controlled_incrementer;
          Alcotest.test_case "equals cycle_shift spec" `Quick test_incrementer_equals_cycle_shift ] );
      ( "modular",
        [ Alcotest.test_case "mod add const" `Quick test_mod_add_const;
          Alcotest.test_case "mod mult const" `Quick test_mod_mult_const;
          Alcotest.test_case "mod exp composition" `Quick test_mod_exp_step_composition;
          Alcotest.test_case "through the flow" `Quick test_modular_through_flow ] ) ]
