(** The paper's headline contribution: the fully automatic compilation flow
    of Fig. 2 / Eq. (5).

    A classical combinational specification (permutation, truth tables, or
    Boolean expression) is taken through

      reversible synthesis → [revsimp] → Clifford+T mapping → T-par

    and handed to a target (state-vector simulation, noisy backend, QASM,
    Q# source, ASCII drawing). Every stage is a registered {!Pass}; this
    module only picks the synthesis front end, assembles the pass
    pipeline, and derives the per-stage {!report} from the pass manager's
    instrumentation trace. *)

module Perm = Logic.Perm
module Truth_table = Logic.Truth_table

(** Reversible-synthesis method selection (the [tbs] / [dbs] / [esop] /
    hierarchical commands). *)
type synth_method =
  | Tbs
  | Tbs_basic
  | Dbs
  | Cycle (* cycle-based synthesis, ref [48] *)
  | Exact (* provably minimal MCT cascade; <= 3 variables *)
  | Esop (* irreversible specs only: Bennett-embedded ESOP synthesis *)
  | Hier of int option (* hierarchical with optional output batch size *)
  | Bdd_hier (* irreversible specs: BDD-based hierarchical synthesis [45] *)
  | Lut of int (* irreversible specs: LUT-based hierarchical synthesis [65] *)

type options = {
  synth : synth_method;
  simplify_rev : bool; (* run [revsimp] on the MCT cascade *)
  rccx_ladder : bool; (* use relative-phase Toffolis when lowering *)
  tpar : bool; (* run the T-par phase folding *)
  peephole : bool; (* final adjacent-gate cleanup *)
}

let default = { synth = Tbs; simplify_rev = true; rccx_ladder = true; tpar = true;
                peephole = true }

(** [pipeline_of_options o] is the pass pipeline the option record
    denotes — the [options] API is nothing but pipeline construction. *)
let pipeline_of_options o =
  Pass.of_passes
    ((if o.simplify_rev then [ Pass.find "revsimp" ] else [])
    @ [ Pass.find ?arg:(if o.rccx_ladder then None else Some "no-rccx") "cliffordt" ]
    @ (if o.tpar then [ Pass.find "tpar" ] else [])
    @ if o.peephole then [ Pass.find "peephole" ] else [])

(** [spec_of_options o] renders the equivalent pipeline-spec string;
    [Pass.parse (spec_of_options o)] rebuilds the same pipeline. *)
let spec_of_options o = Pass.to_spec (pipeline_of_options o)

(** Per-stage statistics of one run of the flow, derived from the pass
    trace. *)
type report = {
  rev_stats : Rev.Rcircuit.stats; (* after synthesis *)
  rev_stats_simplified : Rev.Rcircuit.stats; (* after the reversible layer *)
  ancillae : int; (* added by Clifford+T lowering *)
  resources_mapped : Qc.Resource.t; (* after Clifford+T mapping *)
  resources_final : Qc.Resource.t; (* after the full quantum layer *)
  tpar : Qc.Tpar.report option;
  trace : Pass.trace; (* the full per-pass instrumentation record *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>reversible:  %a@ simplified:  %a@ ancillae:    %d@ Clifford+T:  %a@ final:       %a%a@]"
    Rev.Rcircuit.pp_stats r.rev_stats Rev.Rcircuit.pp_stats r.rev_stats_simplified
    r.ancillae
    Fmt.(hbox Qc.Resource.pp) r.resources_mapped
    Fmt.(hbox Qc.Resource.pp) r.resources_final
    Fmt.(option (fun ppf (t : Qc.Tpar.report) ->
        Fmt.pf ppf "@ T-par:       T %d -> %d, T-depth %d -> %d" t.Qc.Tpar.t_before
          t.Qc.Tpar.t_after t.Qc.Tpar.t_depth_before t.Qc.Tpar.t_depth_after))
    r.tpar

(* The report is a projection of the trace: the lowering entry separates
   the reversible layer (Rev snapshots) from the quantum layer (Qc
   snapshots). *)
let report_of_result (res : Pass.result) =
  let lower_entry =
    List.find
      (fun (e : Pass.entry) ->
        match (e.Pass.before, e.Pass.after) with
        | Pass.Rev_snap _, Pass.Qc_snap _ -> true
        | _ -> false)
      res.Pass.trace
  in
  let first_entry = List.hd res.Pass.trace in
  let last_entry = List.nth res.Pass.trace (List.length res.Pass.trace - 1) in
  let rev_of = function Pass.Rev_snap s -> s | Pass.Qc_snap _ -> assert false in
  let qc_of = function Pass.Qc_snap r -> r | Pass.Rev_snap _ -> assert false in
  { rev_stats = rev_of first_entry.Pass.before;
    rev_stats_simplified = rev_of lower_entry.Pass.before;
    ancillae = res.Pass.ancillae;
    resources_mapped = qc_of lower_entry.Pass.after;
    resources_final = qc_of last_entry.Pass.after;
    tpar = Pass.tpar_report res.Pass.trace;
    trace = res.Pass.trace }

(** [finish_pipeline pipeline rc] runs a pass pipeline on a synthesized
    reversible circuit and projects the report out of the trace. *)
let finish_pipeline pipeline rc =
  let res = Pass.run pipeline rc in
  (res.Pass.circuit, report_of_result res)

let finish options rc = finish_pipeline (pipeline_of_options options) rc

(* Permutation synthesis goes through the per-method cache: a repeated
   permutation (the same oracle compiled again, or shared across a batch)
   costs one lookup instead of a fresh synthesis run. *)
let synthesize_perm options p =
  match options.synth with
  | Tbs -> Rev.Synth_cache.perm ~name:"tbs" Rev.Tbs.synth p
  | Tbs_basic -> Rev.Synth_cache.perm ~name:"tbs-basic" Rev.Tbs.basic p
  | Dbs -> Rev.Synth_cache.perm ~name:"dbs" Rev.Dbs.synth p
  | Cycle -> Rev.Synth_cache.perm ~name:"cycle" Rev.Cycle_synth.synth p
  | Exact -> Rev.Synth_cache.perm ~name:"exact" Rev.Exact_synth.synth p
  | Esop | Hier _ | Bdd_hier | Lut _ ->
      invalid_arg "Flow.compile_perm: pick a reversible method (Tbs/Dbs/Cycle/Exact)"

(** [compile_perm ?options ?pipeline p] runs the full flow on a reversible
    specification. The result acts on [num_vars p] qubits plus the reported
    ancillae (all returned clean). [pipeline] overrides the pass sequence
    the [options] toggles denote (the synthesis front end still comes from
    [options.synth]). *)
let compile_perm ?(options = default) ?pipeline p =
  Obs.with_span "core.flow.compile_perm" @@ fun () ->
  let rc = synthesize_perm options p in
  let pipeline =
    match pipeline with Some pl -> pl | None -> pipeline_of_options options
  in
  finish_pipeline pipeline rc

(** [compile_function ?options ?pipeline fs] runs the flow on an
    irreversible multi-output specification (Bennett convention of
    Eq. (4): inputs on the low lines, outputs above, ancillae above
    that). *)
let compile_function ?(options = { default with synth = Esop }) ?pipeline fs =
  Obs.with_span "core.flow.compile_function" @@ fun () ->
  let rc =
    match options.synth with
    | Esop -> Rev.Synth_cache.esop fs
    | Hier batch -> fst (Rev.Hier_synth.synth_tables ?batch fs)
    | Bdd_hier -> fst (Rev.Bdd_synth.synth fs)
    | Lut k -> fst (Rev.Lut_synth.synth_tables ~k fs)
    | Tbs | Tbs_basic | Dbs | Cycle | Exact ->
        (* explicit embedding first (Eq. (2)), then reversible synthesis
           (through the same per-method cache as compile_perm) *)
        let e = Rev.Embed.embed fs in
        synthesize_perm options e.Rev.Embed.perm
  in
  let pipeline =
    match pipeline with Some pl -> pl | None -> pipeline_of_options options
  in
  finish_pipeline pipeline rc

(** [compile_expr ?options ?n e] compiles a Boolean expression (single
    output). *)
let compile_expr ?options ?n e =
  compile_function ?options [ Logic.Bexpr.to_truth_table ?n e ]

(** [compile_xag ?options ?pipeline ?lut_k ?ancilla_budget g] runs the
    flow on an XAG oracle — the scalable front end for wide arithmetic
    specifications that never materializes a 2^n table. The XAG is covered
    with [lut_k]-input LUTs (priority cuts); without a budget every LUT
    gets its own ancilla (Bennett), with [ancilla_budget] the LUT
    schedule is pebbled so peak ancilla usage fits the budget (see
    {!Rev.Lut_synth.synth_pebbled}). The reversible result is memoized
    by graph structure and parameters, and cut functions share the NPN
    cover store across oracles — output is bit-identical cache on or
    off. *)
let compile_xag ?(options = default) ?pipeline ?(lut_k = 4) ?ancilla_budget g =
  Obs.with_span "core.flow.compile_xag" @@ fun () ->
  if Obs.enabled () then
    Obs.add_attrs
      [ ("inputs", Obs.Int (Rev.Xag.num_inputs g));
        ("nodes", Obs.Int (Rev.Xag.num_nodes g));
        ("ands", Obs.Int (Rev.Xag.num_ands g)) ];
  let rc =
    Rev.Synth_cache.xag ~k:lut_k ?budget:ancilla_budget
      (fun g ->
        match ancilla_budget with
        | None -> fst (Rev.Lut_synth.synth ~k:lut_k g)
        | Some b -> fst (Rev.Lut_synth.synth_pebbled ~k:lut_k ~budget:b g))
      g
  in
  let pipeline =
    match pipeline with Some pl -> pl | None -> pipeline_of_options options
  in
  finish_pipeline pipeline rc

(** [xag_ancillae g report] recovers the LUT-layer ancilla count of a
    {!compile_xag} run from the synthesized line count (lines = inputs +
    outputs + ancillae). *)
let xag_ancillae g (r : report) =
  r.rev_stats.Rev.Rcircuit.lines - Rev.Xag.num_inputs g
  - List.length (Rev.Xag.outputs g)

(** [xag_of_spec s] builds a named arithmetic oracle XAG from a compact
    description — the [--oracle-xag] grammar of the CLIs:
    [adder:N] | [sub:N] | [lt:N] | [ltconst:N:K] | [eqconst:N:K] |
    [addeq:N] | [mult:N] (K accepts any [int_of_string] literal,
    e.g. 0x… hex). *)
let xag_of_spec s =
  let fail () =
    invalid_arg
      ("Flow.xag_of_spec: bad oracle spec '" ^ s
     ^ "' (expected adder:N | sub:N | lt:N | ltconst:N:K | eqconst:N:K | addeq:N \
        | mult:N)")
  in
  let int v = match int_of_string_opt v with Some i -> i | None -> fail () in
  match String.split_on_char ':' (String.trim s) with
  | [ "adder"; n ] -> Rev.Arith.xag_adder (int n)
  | [ "sub"; n ] -> Rev.Arith.xag_subtractor (int n)
  | [ "lt"; n ] -> Rev.Arith.xag_less_than (int n)
  | [ "ltconst"; n; k ] -> Rev.Arith.xag_less_than_const (int n) ~k:(int k)
  | [ "eqconst"; n; k ] -> Rev.Arith.xag_equals_const (int n) ~k:(int k)
  | [ "addeq"; n ] -> Rev.Arith.xag_add_equals (int n)
  | [ "mult"; n ] -> Rev.Arith.xag_multiplier (int n)
  | _ -> fail ()

(** One job of a {!compile_batch}: a reversible specification, an
    irreversible multi-output one, or an XAG oracle. *)
type spec = Perm_spec of Perm.t | Fn_spec of Truth_table.t list | Xag_spec of Rev.Xag.t

(** [spec_key s] is a compact string identifying a spec up to structural
    equality — two specs with equal keys synthesize identical circuits
    under the same pipeline. The serve layer coalesces concurrent
    requests on this key (and the NPN/XAG caches dedupe the synthesis
    work behind it). *)
let spec_key = function
  | Perm_spec p ->
      "p:"
      ^ String.concat ","
          (Array.to_list (Array.map string_of_int (Perm.to_array p)))
  | Fn_spec fs -> "f:" ^ String.concat ";" (List.map Truth_table.to_string fs)
  | Xag_spec g -> "x:" ^ Rev.Xag.structural_key g

(** [compile_batch ?options ?pipeline ?jobs specs] compiles independent
    oracles, fanning the jobs out over the {!Par} domain pool (width
    [jobs], default {!Par.default_jobs}). The shared compilation cache is
    mutex-guarded and only memoizes pure synthesis results, and results
    come back in input order, so the output is bit-identical for any
    [jobs] value. When a telemetry sink is attached the batch degrades to
    sequential execution (the Obs recorder is not domain-safe) — same
    results, richer trace. *)
let compile_batch ?options ?pipeline ?lut_k ?ancilla_budget ?jobs specs =
  Obs.with_span "core.flow.compile_batch" @@ fun () ->
  let compile_one = function
    | Perm_spec p -> compile_perm ?options ?pipeline p
    | Fn_spec fs -> compile_function ?options ?pipeline fs
    | Xag_spec g -> compile_xag ?options ?pipeline ?lut_k ?ancilla_budget g
  in
  let jobs = match jobs with Some j -> max 1 j | None -> Par.default_jobs () in
  let n = List.length specs in
  if jobs = 1 || n <= 1 || Obs.enabled () then List.map compile_one specs
  else begin
    let arr = Array.of_list specs in
    Par.with_pool ~jobs (fun pool ->
        List.rev
          (Par.map_reduce pool ~tasks:n
             ~map:(fun i -> compile_one arr.(i))
             ~reduce:(fun acc r -> r :: acc)
             ~init:[]))
  end

(** [execute backend circuit] hands a compiled circuit to any unified
    execution target — simulation, noisy sampling, or export. *)
let execute (backend : Qc.Backend.t) circuit = backend.Qc.Backend.run circuit

(** [execute_via device circuit] routes execution through the resilient
    device layer instead: shot batching, retries with backoff, circuit
    breaker and fallback chain per the device's policy and fault
    profile. The result is a {!Qc.Backend.Job} outcome carrying the
    salvaged histogram, the delivered/requested accounting and the
    validation verdict — injected faults degrade the job, they never
    raise. *)
let execute_via ?shots ?seed device circuit =
  Device.outcome_of_job (Device.submit ?shots ?seed device circuit)

(** [verify_perm p circuit] checks that the compiled circuit implements
    [|x⟩|0…0⟩ ↦ |p(x)⟩|0…0⟩] exactly (full unitary extraction; small
    [n] only). Post-optimization verification is the Sec. IX obligation. *)
let verify_perm p circuit =
  let n = Perm.num_vars p in
  match Qc.Unitary.is_permutation (Qc.Unitary.of_circuit circuit) with
  | None -> false
  | Some table ->
      let ok = ref true in
      for x = 0 to (1 lsl n) - 1 do
        if table.(x) <> Perm.apply p x then ok := false
      done;
      !ok
