(** Regeneration of every quantitative artifact of the paper's evaluation
    (the experiment ids E1–E9 are defined in DESIGN.md and recorded in
    EXPERIMENTS.md). Each function returns the rendered table/figure text;
    [bin/experiments] prints them, [bench/main] times their components. *)

module Perm = Logic.Perm
module Truth_table = Logic.Truth_table
module Bent = Logic.Bent
module Engine = Pq.Engine
module Oracles = Pq.Oracles

let buf_printf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* ------------------------------------------------------------------ *)
(* E1 — Fig. 4/5: inner-product hidden shift, f = x1x2 ⊕ x3x4, s = 1.  *)
(* ------------------------------------------------------------------ *)

let e1_instance = Hidden_shift.Inner_product { n = 2; s = 1 }

let e1 () =
  let buf = Buffer.create 512 in
  buf_printf buf "E1 (Fig. 4/5): hidden shift for f = x1x2 + x3x4, s = 1\n";
  let circuit = Hidden_shift.build e1_instance in
  buf_printf buf "%s" (Qc.Draw.to_string circuit);
  let r = Qc.Resource.count circuit in
  buf_printf buf "resources: %s\n" (Qc.Resource.to_string r);
  let found = Hidden_shift.solve e1_instance in
  buf_printf buf "measured shift: %d (planted 1) -> %s\n" found
    (if found = 1 then "OK, deterministic" else "MISMATCH");
  (* every shift, as the paper's 'Shift is …' printout *)
  for s = 0 to 15 do
    let found = Hidden_shift.solve (Hidden_shift.Inner_product { n = 2; s }) in
    if found <> s then buf_printf buf "shift %d FAILED (got %d)\n" s found
  done;
  buf_printf buf "all 16 shifts recovered deterministically\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E2 — Fig. 6: the same circuit on the noisy (IBM-substitute) backend. *)
(* ------------------------------------------------------------------ *)

let e2 ?(params = Qc.Noise.ibm_qx2017) ?(shots = 1024) ?(runs = 3) () =
  let buf = Buffer.create 512 in
  buf_printf buf
    "E2 (Fig. 6): %d runs x %d shots on the noisy backend (p1=%g p2=%g ro=%g)\n"
    runs shots params.Qc.Noise.p1 params.Qc.Noise.p2 params.Qc.Noise.readout;
  let mean, std = Hidden_shift.run_noisy params e1_instance ~shots ~runs in
  buf_printf buf "outcome  mean    stddev\n";
  Array.iteri
    (fun x m ->
      if m > 0.004 || x = 1 then buf_printf buf "%4d     %.4f  %.4f%s\n" x m std.(x)
        (if x = 1 then "   <- planted shift" else ""))
    mean;
  buf_printf buf "success probability: %.3f (paper measured ~0.63 on IBM QX)\n" mean.(1);
  let mean_t1, _ =
    Hidden_shift.run_noisy Qc.Noise.ibm_qx2017_t1 e1_instance ~shots ~runs
  in
  buf_printf buf "with T1 relaxation (gamma=%g): %.3f\n" Qc.Noise.ibm_qx2017_t1.Qc.Noise.gamma
    mean_t1.(1);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E3 — Fig. 7/8: Maiorana–McFarland instance.                         *)
(* ------------------------------------------------------------------ *)

let e3_pi = [ 0; 2; 3; 5; 7; 1; 4; 6 ]

let e3 () =
  let buf = Buffer.create 512 in
  buf_printf buf "E3 (Fig. 7/8): MM hidden shift, pi = [0,2,3,5,7,1,4,6], s = 5\n";
  let mm = Bent.mm (Perm.of_list e3_pi) in
  List.iter
    (fun (name, synth) ->
      let inst = Hidden_shift.Mm { mm; s = 5; synth } in
      let circuit = Hidden_shift.build inst in
      let found = Hidden_shift.solve inst in
      let r = Qc.Resource.count circuit in
      let compiled, _ = Hidden_shift.build_compiled inst in
      let rc = Qc.Resource.count compiled in
      buf_printf buf "%-22s measured shift %d (planted 5) | high-level: %s\n"
        (name ^ " synthesis:") found (Qc.Resource.to_string r);
      buf_printf buf "%-22s Clifford+T: %s\n" "" (Qc.Resource.to_string rc))
    [ ("transformation-based", Oracles.Tbs); ("decomposition-based", Oracles.Dbs) ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E4 — Eq. (5): the RevKit shell flow on hwb4.                        *)
(* ------------------------------------------------------------------ *)

let e4_script = "revgen hwb 4; tbs; revsimp; cliffordt; tpar; ps; verify"

let e4 () =
  let buf = Buffer.create 512 in
  buf_printf buf "E4 (Eq. 5): %s\n" e4_script;
  buf_printf buf "%s" (Shell.run_script e4_script);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E5 — Sec. V: synthesis-method comparison sweep.                     *)
(* ------------------------------------------------------------------ *)

let e5 ?(max_n = 8) () =
  let buf = Buffer.create 1024 in
  buf_printf buf "E5: reversible synthesis comparison on hwb(n) and random permutations\n";
  buf_printf buf
    "n   method        gates  qcost   time[ms]\n";
  let st = Random.State.make [| 2024 |] in
  let row name n c dt =
    let s = Rev.Rcircuit.stats c in
    buf_printf buf "%-3d %-12s %6d %6d %10.2f\n" n name s.Rev.Rcircuit.gate_count
      s.Rev.Rcircuit.quantum_cost (dt *. 1000.)
  in
  for n = 3 to max_n do
    let hwb = Logic.Funcgen.hwb n in
    let c, dt = time (fun () -> Rev.Tbs.synth hwb) in
    row "hwb/tbs" n c dt;
    let c, dt = time (fun () -> Rev.Dbs.synth hwb) in
    row "hwb/dbs" n c dt;
    let c, dt = time (fun () -> Rev.Cycle_synth.synth hwb) in
    row "hwb/cycle" n c dt;
    if n <= 3 then begin
      let c, dt = time (fun () -> Rev.Exact_synth.synth hwb) in
      row "hwb/exact" n c dt
    end;
    let p = Perm.random st n in
    let c, dt = time (fun () -> Rev.Tbs.synth p) in
    row "rand/tbs" n c dt;
    let c, dt = time (fun () -> Rev.Dbs.synth p) in
    row "rand/dbs" n c dt
  done;
  buf_printf buf
    "\nirreversible single-output benchmarks (Bennett-embedded ESOP vs hierarchical):\n";
  buf_printf buf "function   method  lines  gates  time[ms]\n";
  List.iter
    (fun (name, tt) ->
      let c, dt = time (fun () -> Rev.Esop_synth.synth1 tt) in
      buf_printf buf "%-10s esop   %5d %6d %9.2f\n" name (Rev.Rcircuit.num_lines c)
        (Rev.Rcircuit.num_gates c) (dt *. 1000.);
      let (c, _), dt = time (fun () -> Rev.Hier_synth.synth_tables [ tt ]) in
      buf_printf buf "%-10s hier   %5d %6d %9.2f\n" name (Rev.Rcircuit.num_lines c)
        (Rev.Rcircuit.num_gates c) (dt *. 1000.);
      let (c, _), dt = time (fun () -> Rev.Bdd_synth.synth [ tt ]) in
      buf_printf buf "%-10s bdd    %5d %6d %9.2f\n" name (Rev.Rcircuit.num_lines c)
        (Rev.Rcircuit.num_gates c) (dt *. 1000.))
    [ ("maj5", Logic.Funcgen.majority 5);
      ("parity8", Logic.Funcgen.parity 8);
      ("thresh5_3", Logic.Funcgen.threshold 5 3) ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E6 — pebbling / hierarchical qubit-vs-gate trade-off.                *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let buf = Buffer.create 1024 in
  buf_printf buf "E6: qubits vs gates trade-off (Sec. V / refs [66,67])\n";
  buf_printf buf "abstract Bennett pebbling of a 32-segment chain:\n";
  buf_printf buf "fanout  pebbles  segment-executions\n";
  List.iter
    (fun fanout ->
      let c = Rev.Pebble.strategy_cost ~segments:32 ~fanout in
      buf_printf buf "%6d  %7d  %8d\n" fanout c.Rev.Pebble.pebbles c.Rev.Pebble.moves)
    [ 2; 4; 8; 16; 32 ];
  buf_printf buf
    "\nhierarchical synthesis of the structural 4-bit ripple-carry adder (5 outputs):\n";
  buf_printf buf "batch   ancillae  gates\n";
  let g = Rev.Xag.ripple_adder 4 in
  List.iter
    (fun batch ->
      let c, layout =
        if batch = 0 then Rev.Hier_synth.bennett g
        else Rev.Hier_synth.output_batched ~batch g
      in
      buf_printf buf "%5s   %8d  %5d\n"
        (if batch = 0 then "all" else string_of_int batch)
        layout.Rev.Hier_synth.ancillae (Rev.Rcircuit.num_gates c))
    [ 0; 3; 2; 1 ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E7 — determinism & query complexity vs the classical baseline.      *)
(* ------------------------------------------------------------------ *)

let e7 ?(trials = 5) () =
  let buf = Buffer.create 1024 in
  buf_printf buf
    "E7: quantum determinism (1 query to Ug, 1 to Uf~) vs classical sampling baseline\n";
  buf_printf buf "2n  quantum-success  classical queries (mean / max over %d trials)\n" trials;
  let st = Random.State.make [| 99 |] in
  List.iter
    (fun n ->
      let successes = ref 0 in
      let qsum = ref 0 and qmax = ref 0 in
      for t = 1 to trials do
        let inst = Hidden_shift.random_mm_instance st n in
        if Hidden_shift.solve inst = Hidden_shift.shift inst then incr successes;
        let found, queries = Hidden_shift.classical_queries ~seed:t inst in
        assert (found = Hidden_shift.shift inst);
        qsum := !qsum + queries;
        qmax := max !qmax queries
      done;
      buf_printf buf "%2d  %d/%d              %6.1f / %d\n" (2 * n) !successes trials
        (Float.of_int !qsum /. Float.of_int trials)
        !qmax)
    [ 1; 2; 3; 4; 5 ];
  buf_printf buf "(quantum oracle queries are always exactly 2, independent of n)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E8 — Q# generation flow (Figs. 9/10).                               *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let buf = Buffer.create 1024 in
  buf_printf buf "E8 (Fig. 10): Q# source generated for the pi = [0,2,3,5,7,1,4,6] oracle\n";
  let pi = Perm.of_list e3_pi in
  let rc = Rev.Tbs.synth pi in
  let qc, _ = Qc.Clifford_t.compile_rcircuit rc in
  buf_printf buf "%s" (Qc.Qsharp_gen.operation ~name:"PermutationOracle" qc);
  buf_printf buf "(circuit verified to realize pi: %b)\n" (Flow.verify_perm pi qc);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E9 — simulator scaling.                                             *)
(* ------------------------------------------------------------------ *)

let e9 ?(max_n = 18) () =
  let buf = Buffer.create 512 in
  buf_printf buf "E9: state-vector simulator scaling (fixed-depth layered circuit)\n";
  buf_printf buf "qubits  time[ms]   ratio-to-previous\n";
  let prev = ref None in
  let n = ref 10 in
  while !n <= max_n do
    let m = !n in
    let gates =
      List.concat
        (List.init 4 (fun layer ->
             List.init m (fun q -> Qc.Gate.H q)
             @ List.init (m - 1) (fun q ->
                   if (q + layer) mod 2 = 0 then Qc.Gate.Cnot (q, q + 1)
                   else Qc.Gate.T q)))
    in
    let c = Qc.Circuit.of_gates m gates in
    let _, dt = time (fun () -> Qc.Statevector.run c) in
    buf_printf buf "%6d  %8.2f   %s\n" m (dt *. 1000.)
      (match !prev with
      | Some p when p > 1e-6 -> Printf.sprintf "%.2fx" (dt /. p)
      | _ -> "-");
    prev := Some dt;
    n := !n + 2
  done;
  buf_printf buf "(each +2 qubits should cost ~4x: exponential state growth)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E10 — extension: Clifford hidden shift beyond state-vector reach.   *)
(* ------------------------------------------------------------------ *)

let e10 ?(max_2n = 64) () =
  let buf = Buffer.create 512 in
  buf_printf buf
    "E10 (extension, ref [72]): inner-product hidden shift on the stabilizer backend\n";
  buf_printf buf "2n   shift recovered  deterministic  time[ms]\n";
  let st = Random.State.make [| 4242 |] in
  let n = ref 4 in
  while 2 * !n <= max_2n do
    let half = !n in
    let s = Random.State.int st (1 lsl min 29 (2 * half)) in
    let inst = Hidden_shift.Inner_product { n = half; s } in
    let found, dt = time (fun () -> Hidden_shift.solve_clifford inst) in
    buf_printf buf "%3d  %-15b  %-13b  %8.2f\n" (2 * half) (found = s) true (dt *. 1000.);
    n := !n * 2
  done;
  buf_printf buf
    "(the state-vector backend stops near 2n = 24; the tableau backend is polynomial)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E11 — ablation of the flow's optimization stages.                   *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let buf = Buffer.create 1024 in
  buf_printf buf "E11 (ablation): what each flow stage buys, on hwb(n) via TBS\n";
  buf_printf buf
    "n  configuration        rev-gates  qc-gates  T-count  T-depth  ancillae\n";
  let configs =
    [ ("full flow", Flow.default);
      ("no revsimp", { Flow.default with Flow.simplify_rev = false });
      ("no rccx ladder", { Flow.default with Flow.rccx_ladder = false });
      ("no tpar", { Flow.default with Flow.tpar = false });
      ("no peephole", { Flow.default with Flow.peephole = false }) ]
  in
  List.iter
    (fun n ->
      let p = Logic.Funcgen.hwb n in
      List.iter
        (fun (name, options) ->
          let _, r = Flow.compile_perm ~options p in
          buf_printf buf "%d  %-18s %10d %9d %8d %8d %9d\n" n name
            r.Flow.rev_stats_simplified.Rev.Rcircuit.gate_count
            r.Flow.resources_final.Qc.Resource.total_gates
            r.Flow.resources_final.Qc.Resource.t_count
            r.Flow.resources_final.Qc.Resource.t_depth r.Flow.ancillae)
        configs;
      buf_printf buf "\n")
    [ 4; 5; 6 ];
  buf_printf buf "phase-oracle ablation (two overlapping 3-cubes, where T-par folds):\n";
  let tt =
    Logic.Bexpr.to_truth_table ~n:4 (Logic.Bexpr.parse "(a&b&c) ^ (a&b&d)")
  in
  let eng = Engine.create () in
  let qs = Engine.allocate_qureg eng 4 in
  Oracles.phase_oracle_tt eng tt qs;
  let mapped, _ = Qc.Clifford_t.compile (Engine.flush eng) in
  let _, rep = Qc.Tpar.optimize_report mapped in
  buf_printf buf "  with tpar:    T = %d\n  without tpar: T = %d\n" rep.Qc.Tpar.t_after
    rep.Qc.Tpar.t_before;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E12 — hardware mapping: SWAP overhead of LNN routing.               *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let buf = Buffer.create 512 in
  buf_printf buf
    "E12 (extension, Sec. I/IV): linear-nearest-neighbour routing overhead\n";
  buf_printf buf "circuit                qubits  2q-gates  SWAPs  gate overhead\n";
  let row name circuit =
    let two_q =
      Qc.Circuit.count_matching (fun g -> List.length (Qc.Gate.qubits g) = 2) circuit
    in
    let r = Qc.Route.lnn circuit in
    buf_printf buf "%-22s %6d %9d %6d %9.1f%%\n" name (Qc.Circuit.num_qubits circuit)
      two_q r.Qc.Route.swaps_inserted
      (100.
      *. Float.of_int (Qc.Circuit.num_gates r.Qc.Route.circuit - Qc.Circuit.num_gates circuit)
      /. Float.of_int (Qc.Circuit.num_gates circuit))
  in
  List.iter
    (fun n ->
      let c, _ = Flow.compile_perm (Logic.Funcgen.hwb n) in
      row (Printf.sprintf "hwb%d (compiled)" n) c)
    [ 4; 5; 6 ];
  row "hidden shift E1" (fst (Hidden_shift.build_compiled e1_instance));
  let mm = Bent.mm (Perm.of_list e3_pi) in
  row "hidden shift E3 (mm)"
    (fst (Hidden_shift.build_compiled (Hidden_shift.Mm { mm; s = 5; synth = Oracles.Tbs })));
  buf_printf buf
    "(routed circuits verified equivalent up to the tracked output placement)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E13 — extension: the pass-manager trace of the unified pipeline.    *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let buf = Buffer.create 1024 in
  let spec = Flow.spec_of_options Flow.default in
  buf_printf buf "E13 (extension): per-pass instrumentation of the flow on hwb5\n";
  buf_printf buf "pipeline spec: %s\n" spec;
  let rc = Rev.Tbs.synth (Logic.Funcgen.hwb 5) in
  let res = Pass.run (Pass.parse spec) rc in
  buf_printf buf "%s\n" (Pass.trace_to_string res.Pass.trace);
  buf_printf buf "total: %d passes, %d ancillae, %.2fms wall clock\n"
    (List.length res.Pass.trace) res.Pass.ancillae
    (Pass.total_elapsed res.Pass.trace *. 1000.);
  buf_printf buf "registered passes: %s\n" (String.concat ", " (Pass.names ()));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E14 — extension: the compilation cache on an oracle-family sweep.   *)
(* ------------------------------------------------------------------ *)

let e14 () =
  let buf = Buffer.create 512 in
  buf_printf buf
    "E14 (extension): NPN-indexed compilation cache, bent-function family sweep\n";
  let st = Random.State.make [| 14 |] in
  let specs =
    List.init 12 (fun _ -> Flow.Fn_spec [ Bent.mm_function (Bent.random_mm st 3) ])
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let compile () =
    Flow.compile_batch ~options:{ Flow.default with synth = Flow.Esop } ~jobs:1 specs
  in
  let counters () =
    String.concat " "
      (List.map
         (fun (g, (h, m)) -> Printf.sprintf "%s %d/%d" g h m)
         (Cache.counters ()))
  in
  Cache.clear_memory ();
  let cold_res, cold = wall compile in
  buf_printf buf "cold sweep (12 members): %.2fms  hits/misses: %s\n" (cold *. 1000.)
    (counters ());
  Cache.reset_stats ();
  let warm_res, warm = wall compile in
  buf_printf buf "warm sweep (12 members): %.2fms  hits/misses: %s\n" (warm *. 1000.)
    (counters ());
  buf_printf buf "speedup: %.1fx\n" (cold /. Float.max warm 1e-9);
  let identical =
    List.for_all2
      (fun (a, _) (b, _) ->
        Qc.Circuit.structural_key a = Qc.Circuit.structural_key b)
      cold_res warm_res
  in
  buf_printf buf "cold and warm circuits bit-identical: %s\n"
    (if identical then "yes" else "NO — cache replay bug");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E15 — extension: E2 under a hostile device profile.                 *)
(* ------------------------------------------------------------------ *)

(* The resilient device layer survives the operational failure modes the
   paper's IBM backend exhibited (submit failures, an outage, lost
   shots, calibration drift). Every fault is injected deterministically
   from (profile seed, attempt), so this experiment is bit-reproducible
   at any --jobs. *)
let e15 () =
  let buf = Buffer.create 1024 in
  buf_printf buf
    "E15 (extension): E2 hidden shift re-run through the resilient device layer\n";
  let profile = Device.profile_of_spec "hostile" in
  let device =
    Device.create ~profile ~shots:1024 ~seed:0xD1CE
      ~fallbacks:[ Device.statevector ]
      (Device.noisy Qc.Noise.ibm_qx2017)
  in
  buf_printf buf "profile: %s\n" (Fmt.str "%a" Device.pp_profile profile);
  let circuit = Hidden_shift.build e1_instance in
  let job = Device.submit device circuit in
  List.iter
    (fun (x, k) ->
      let f = Float.of_int k /. Float.of_int (max 1 job.Device.delivered) in
      if f > 0.004 then buf_printf buf "  %4d  %.4f\n" x f)
    job.Device.counts;
  buf_printf buf "%s\n" (Device.job_summary job);
  buf_printf buf "breaker: %s\n" (Device.breaker_to_string device);
  let s = Hidden_shift.shift e1_instance in
  let m = Device.modal job in
  buf_printf buf "planted shift %d, modal outcome %s — %s\n" s
    (match m with Some x -> string_of_int x | None -> "none")
    (if m = Some s then "recovered despite the faults" else "NOT RECOVERED");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E16 — extension: a 32-bit arithmetic predicate through the XAG       *)
(* pipeline.                                                            *)
(* ------------------------------------------------------------------ *)

(* The scalability pitch of the XAG front end: a 32-bit comparator oracle
   has a 2^32-row truth table — unrepresentable in the table-driven flow —
   but its structural XAG has ~2 nodes per bit. Cut-based 4-LUT covering
   plus a pebbled schedule compile it end to end with a 6-ancilla peak,
   and the result is verified against the specification on random basis
   states (reversible layer at full width, statevector at small width). *)
let e16 () =
  let buf = Buffer.create 1024 in
  let n = 32 and k = 3_000_000_000 in
  buf_printf buf
    "E16 (extension): 32-bit arithmetic predicate (x < %d) via the XAG pipeline\n" k;
  let g = Rev.Arith.xag_less_than_const n ~k in
  buf_printf buf "XAG: %d inputs, %d nodes (%d AND) — no 2^%d table materialized\n"
    (Rev.Xag.num_inputs g) (Rev.Xag.num_nodes g) (Rev.Xag.num_ands g) n;
  let lut_k = 4 and budget = 6 in
  let circuit, report = Flow.compile_xag ~lut_k ~ancilla_budget:budget g in
  let anc = Flow.xag_ancillae g report in
  buf_printf buf
    "compiled with k=%d LUTs, ancilla budget %d: %d LUT ancillae (%s)\n" lut_k budget
    anc
    (if anc <= budget then "within budget" else "BUDGET EXCEEDED");
  buf_printf buf "final resources: %s\n"
    (Qc.Resource.to_string (report.Flow.resources_final));
  (* reversible-layer verification at full width, on random basis states *)
  let rc, _ = Rev.Lut_synth.synth_pebbled ~k:lut_k ~budget g in
  let st = Random.State.make [| 16 |] in
  let trials = 200 in
  let ok = ref 0 in
  for _ = 1 to trials do
    (* 30 PRNG bits + 2 more so the top bits of the comparison vary *)
    let x = Random.State.bits st lor (Random.State.int st 4 lsl 30) in
    let out = Rev.Rsim.run rc x in
    let expect = x lor (if x < k then 1 lsl n else 0) in
    if out land ((1 lsl (n + 1)) - 1) = expect then incr ok
  done;
  buf_printf buf "reversible oracle vs specification: %d/%d random 32-bit inputs agree\n"
    !ok trials;
  (* the same construction at small width, executed on the statevector *)
  let n8 = 8 and k8 = 100 in
  let g8 = Rev.Arith.xag_less_than_const n8 ~k:k8 in
  let c8, _ = Flow.compile_xag ~lut_k ~ancilla_budget:budget g8 in
  let sv_ok = ref 0 in
  let sv_trials = 16 in
  for _ = 1 to sv_trials do
    let x = Random.State.int st (1 lsl n8) in
    let s = Qc.Statevector.init c8.Qc.Circuit.n in
    for i = 0 to n8 - 1 do
      if Logic.Bitops.bit x i then Qc.Statevector.apply s (Qc.Gate.X i)
    done;
    Qc.Statevector.run_on s c8;
    let expect = x lor (if x < k8 then 1 lsl n8 else 0) in
    if Qc.Statevector.prob s expect > 0.999 then incr sv_ok
  done;
  buf_printf buf
    "statevector execution (8-bit instance): %d/%d basis states correct\n" !sv_ok
    sv_trials;
  (* determinism: cache on/off and any batch width give the same circuit *)
  let key = Qc.Circuit.structural_key in
  Cache.set_enabled false;
  let c_nocache, _ = Flow.compile_xag ~lut_k ~ancilla_budget:budget g in
  Cache.set_enabled true;
  Cache.clear_memory ();
  let batch j =
    List.map
      (fun (c, _) -> key c)
      (Flow.compile_batch ~lut_k ~ancilla_budget:budget ~jobs:j
         [ Flow.Xag_spec g; Flow.Xag_spec g8 ])
  in
  let b1 = batch 1 and b4 = batch 4 in
  buf_printf buf "deterministic: cache on/off %s, jobs 1 vs 4 %s\n"
    (if key circuit = key c_nocache then "bit-identical" else "DIFFER")
    (if b1 = b4 then "bit-identical" else "DIFFER");
  Buffer.contents buf

(** [all ()] runs every experiment in order; the output of this function is
    what EXPERIMENTS.md records. *)
let all () =
  String.concat "\n"
    [ e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 (); e11 ();
      e12 (); e13 (); e14 (); e15 (); e16 () ]
