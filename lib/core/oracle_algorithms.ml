(** Two more oracle algorithms on the automatic compilation flow:
    Bernstein–Vazirani and Deutsch–Jozsa.

    Both share the hidden-shift algorithm's skeleton — Hadamards, one
    compiled phase oracle, Hadamards, measure — and both get their oracles
    from the same ESOP compiler the paper routes through RevKit. They make
    good smoke tests for the whole stack because their answers are
    deterministic and known in closed form. *)

module Engine = Pq.Engine
module Oracles = Pq.Oracles
module Truth_table = Logic.Truth_table
module Bitops = Logic.Bitops

let hadamard_sandwich n oracle =
  let eng = Engine.create () in
  let qs = Engine.allocate_qureg eng n in
  Engine.all Engine.h eng qs;
  oracle eng qs;
  Engine.all Engine.h eng qs;
  Engine.flush eng

(* --- Bernstein–Vazirani --- *)

(** [bv_circuit ~n ~a ~b] builds the Bernstein–Vazirani circuit for the
    affine function [f(x) = ⟨a, x⟩ ⊕ b], with the oracle compiled from the
    function's truth table (it lowers to a layer of Z gates on the bits of
    [a], as expected). *)
let bv_circuit ~n ~a ~b =
  if a < 0 || a >= 1 lsl n then invalid_arg "bv_circuit";
  let f = Truth_table.of_fun n (fun x -> Bitops.parity (x land a) = 1 <> b) in
  hadamard_sandwich n (fun eng qs -> Oracles.phase_oracle_tt eng f qs)

(** [bernstein_vazirani ~n ~a ~b] recovers the hidden string [a] with a
    single oracle query; deterministic. *)
let bernstein_vazirani ~n ~a ~b =
  let sv = Qc.Statevector.run (bv_circuit ~n ~a ~b) in
  let outcome = Qc.Statevector.most_likely sv in
  if not (Qc.Statevector.is_basis_state ~eps:1e-6 sv outcome) then
    failwith "bernstein_vazirani: outcome not deterministic";
  outcome

(* --- Deutsch–Jozsa --- *)

(** The promise: [f] is either constant or balanced. *)
type dj_answer = Constant | Balanced

(** [dj_circuit f] is the Deutsch–Jozsa circuit for [f]: Hadamards, the
    compiled phase oracle, Hadamards (no promise check — callers that
    only want the circuit, e.g. the workload corpus, pass any [f]). *)
let dj_circuit f =
  hadamard_sandwich (Truth_table.num_vars f) (fun eng qs ->
      Oracles.phase_oracle_tt eng f qs)

(** [deutsch_jozsa f] decides the promise with one compiled oracle query:
    outcome 0 ⇔ constant. Raises [Invalid_argument] when [f] satisfies
    neither promise. *)
let deutsch_jozsa f =
  let n = Truth_table.num_vars f in
  let ones = Truth_table.count_ones f in
  if ones <> 0 && ones <> 1 lsl n && 2 * ones <> 1 lsl n then
    invalid_arg "deutsch_jozsa: function is neither constant nor balanced";
  let circuit = dj_circuit f in
  let sv = Qc.Statevector.run circuit in
  (* amplitude of |0…0⟩ is ±1 for constant f, 0 for balanced f *)
  if Qc.Statevector.prob sv 0 > 0.5 then Constant else Balanced
