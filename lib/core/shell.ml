(** The RevKit-style command shell (paper Sec. VI, Eq. (5)).

    A tiny interpreter over a state holding the current specification
    (permutation or multi-output function), the current reversible circuit
    and the current quantum circuit. The command vocabulary mirrors the
    paper's example

      revgen hwb 4 ; tbs ; revsimp ; cliffordt ; tpar ; ps

    [bin/revkit] wraps this module as an interactive shell / script
    runner; keeping the interpreter in the library makes it testable. *)

module Perm = Logic.Perm
module Truth_table = Logic.Truth_table

type state = {
  perm : Perm.t option;
  func : Truth_table.t list option;
  xag : Rev.Xag.t option; (* the scalable oracle front end *)
  rev : Rev.Rcircuit.t option;
  qc : Qc.Circuit.t option;
  trace : Pass.trace option; (* instrumentation of the last [pipeline] run *)
  recorder : Obs.Memory.t; (* cross-layer telemetry of the whole session *)
  fault_profile : Device.profile; (* applied to devices created by [device run] *)
  device : Device.t option; (* the session's resilient device, if any *)
  device_spec : string option; (* the target spec the device was built from *)
  out : Buffer.t;
}

let init () =
  { perm = None; func = None; xag = None; rev = None; qc = None; trace = None;
    recorder = Obs.Memory.create (); fault_profile = Device.none; device = None;
    device_spec = None; out = Buffer.create 256 }

exception Error of string

let failf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let say st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.out s;
      Buffer.add_char st.out '\n')
    fmt

let need_perm st = match st.perm with Some p -> p | None -> failf "no permutation loaded (use revgen/random_perm/perm)"
let need_func st = match st.func with Some f -> f | None -> failf "no function loaded (use expr/tt)"
let need_rev st = match st.rev with Some c -> c | None -> failf "no reversible circuit (use tbs/dbs/esop/hier)"
let need_xag st = match st.xag with Some g -> g | None -> failf "no XAG loaded (use xag)"
let need_qc st = match st.qc with Some c -> c | None -> failf "no quantum circuit (use cliffordt)"

let int_arg name = function
  | Some s -> (
      match int_of_string_opt s with Some i -> i | None -> failf "%s: expected integer, got %s" name s)
  | None -> failf "%s: missing argument" name

(* ------------------------------------------------------------------ *)
(* Extension commands                                                  *)
(* ------------------------------------------------------------------ *)

(* Higher layers (lib/corpus today) plug their own commands in without
   the core library depending on them: [register_command] installs a
   handler that gets the state and the argument words and returns the new
   state, exactly like a built-in. Built-ins win on a name clash; [help]
   and the unknown-command path consult the registry. *)
let extensions : (string, string * (state -> string list -> state)) Hashtbl.t =
  Hashtbl.create 8

(** [register_command name ~doc f] installs (or replaces) the extension
    command [name]. [doc] is the one-line help text. *)
let register_command name ~doc f = Hashtbl.replace extensions name (doc, f)

let extension_catalog () =
  List.sort compare
    (Hashtbl.fold (fun name (doc, _) acc -> (name, doc) :: acc) extensions [])

(* One command, given as argv-style words. Returns the new state. *)
let exec_cmd st words =
  match words with
  | [] -> st
  | cmd :: args -> (
      let arg i = List.nth_opt args i in
      match cmd with
      | "revgen" -> (
          let name = match arg 0 with Some n -> n | None -> failf "revgen: missing name" in
          let n = int_arg "revgen" (arg 1) in
          match Logic.Funcgen.named_reversible name with
          | Some gen ->
              let p = gen n in
              say st "loaded %s(%d): permutation on %d points" name n (Perm.size p);
              { st with perm = Some p }
          | None -> (
              match Logic.Funcgen.named_function name with
              | Some gen ->
                  say st "loaded %s(%d): single-output function" name n;
                  { st with func = Some [ gen n ] }
              | None -> failf "revgen: unknown generator %s" name))
      | "random_perm" ->
          let n = int_arg "random_perm" (arg 0) in
          let seed = match arg 1 with Some s -> int_arg "seed" (Some s) | None -> 42 in
          let p = Perm.random (Random.State.make [| seed |]) n in
          say st "loaded random permutation on %d variables (seed %d)" n seed;
          { st with perm = Some p }
      | "perm" ->
          (* literal permutation: perm 0 2 3 1 ... *)
          let points = List.map (fun s -> int_arg "perm" (Some s)) args in
          let p = Perm.of_array (Array.of_list points) in
          say st "loaded permutation on %d variables" (Perm.num_vars p);
          { st with perm = Some p }
      | "expr" ->
          let text = String.concat " " args in
          (match Logic.Bexpr.parse text with
          | e ->
              let tt = Logic.Bexpr.to_truth_table e in
              say st "loaded expression on %d variables" (Truth_table.num_vars tt);
              { st with func = Some [ tt ] }
          | exception Logic.Bexpr.Parse_error m -> failf "expr: %s" m)
      | "tt" ->
          let bits = match arg 0 with Some b -> b | None -> failf "tt: missing bits" in
          (match Truth_table.of_string bits with
          | tt ->
              say st "loaded truth table on %d variables" (Truth_table.num_vars tt);
              { st with func = Some [ tt ] }
          | exception Invalid_argument m -> failf "tt: %s" m)
      | "tbs" ->
          let p = need_perm st in
          let c = if args = [ "-b" ] then Rev.Tbs.basic p else Rev.Tbs.synth p in
          say st "tbs: %d gates" (Rev.Rcircuit.num_gates c);
          { st with rev = Some c }
      | "dbs" ->
          let c = Rev.Dbs.synth (need_perm st) in
          say st "dbs: %d gates" (Rev.Rcircuit.num_gates c);
          { st with rev = Some c }
      | "cycle" ->
          let c = Rev.Cycle_synth.synth (need_perm st) in
          say st "cycle: %d gates" (Rev.Rcircuit.num_gates c);
          { st with rev = Some c }
      | "exact" ->
          let p = need_perm st in
          if Perm.num_vars p > 3 then failf "exact: at most 3 variables";
          let c = Rev.Exact_synth.synth p in
          say st "exact: %d gates (provably minimal)" (Rev.Rcircuit.num_gates c);
          { st with rev = Some c }
      | "bdd" ->
          let c, layout = Rev.Bdd_synth.synth (need_func st) in
          say st "bdd: %d gates, %d ancillae" (Rev.Rcircuit.num_gates c)
            layout.Rev.Bdd_synth.ancillae;
          { st with rev = Some c }
      | "lut" ->
          let k = match arg 0 with Some s -> int_arg "lut" (Some s) | None -> 4 in
          let c, layout = Rev.Lut_synth.synth_tables ~k (need_func st) in
          say st "lut(k=%d): %d gates, %d ancillae" k (Rev.Rcircuit.num_gates c)
            layout.Rev.Lut_synth.ancillae;
          { st with rev = Some c }
      | "xag" -> (
          (* xag ltconst 16 1234 | xag adder 8 | xag expr a&b^c |
             xag stats | xag rewrite *)
          match args with
          | [ "stats" ] ->
              let g = need_xag st in
              say st "xag: %d inputs, %d outputs, %d nodes (%d AND)"
                (Rev.Xag.num_inputs g)
                (List.length (Rev.Xag.outputs g))
                (Rev.Xag.num_nodes g) (Rev.Xag.num_ands g);
              st
          | [ "rewrite" ] ->
              let g = need_xag st in
              let before = Rev.Xag.num_nodes g in
              let g' = Rev.Xag.rewrite g in
              say st "xag rewrite: %d -> %d nodes" before (Rev.Xag.num_nodes g');
              { st with xag = Some g' }
          | "expr" :: rest -> (
              let text = String.concat " " rest in
              match Logic.Bexpr.parse text with
              | e ->
                  let n = Logic.Bexpr.max_var e + 1 in
                  let g = Rev.Xag.of_bexpr n e in
                  say st "xag: expression on %d inputs, %d nodes" n
                    (Rev.Xag.num_nodes g);
                  { st with xag = Some g }
              | exception Logic.Bexpr.Parse_error m -> failf "xag expr: %s" m)
          | _ :: _ ->
              let g = Flow.xag_of_spec (String.concat ":" args) in
              say st "xag: %d inputs, %d outputs, %d nodes (%d AND)"
                (Rev.Xag.num_inputs g)
                (List.length (Rev.Xag.outputs g))
                (Rev.Xag.num_nodes g) (Rev.Xag.num_ands g);
              { st with xag = Some g }
          | [] ->
              failf
                "xag: expected a spec (adder <n> | sub <n> | lt <n> | ltconst <n> \
                 <k> | eqconst <n> <k> | addeq <n> | mult <n>), expr <e>, stats or \
                 rewrite")
      | "xagsynth" ->
          let g = need_xag st in
          let k = match arg 0 with Some s -> int_arg "xagsynth" (Some s) | None -> 4 in
          let budget = Option.map (fun s -> int_arg "xagsynth" (Some s)) (arg 1) in
          let c, layout =
            match budget with
            | None -> Rev.Lut_synth.synth ~k g
            | Some b -> (
                try Rev.Lut_synth.synth_pebbled ~k ~budget:b g
                with Rev.Pebble.Infeasible { budget; required } ->
                  failf "xagsynth: ancilla budget %d infeasible (needs >= %d)" budget
                    required)
          in
          say st "xagsynth(k=%d%s): %d gates, %d lines, %d ancillae" k
            (match budget with Some b -> Printf.sprintf ", budget=%d" b | None -> "")
            (Rev.Rcircuit.num_gates c) layout.Rev.Lut_synth.total_lines
            layout.Rev.Lut_synth.ancillae;
          { st with rev = Some c }
      | "adder" ->
          let n = int_arg "adder" (arg 0) in
          let c, _ = Rev.Arith.cuccaro_adder n in
          say st "loaded Cuccaro adder on %d-bit operands (%d lines, %d gates)" n
            (Rev.Rcircuit.num_lines c) (Rev.Rcircuit.num_gates c);
          { st with rev = Some c }
      | "route" ->
          let c = need_qc st in
          let r = Qc.Route.lnn c in
          say st "route: %d SWAPs inserted for the linear chain (%d -> %d gates)"
            r.Qc.Route.swaps_inserted (Qc.Circuit.num_gates c)
            (Qc.Circuit.num_gates r.Qc.Route.circuit);
          { st with qc = Some r.Qc.Route.circuit }
      | "stabsim" ->
          let c = need_qc st in
          if not (Qc.Stabilizer.is_clifford_circuit c) then
            failf "stabsim: circuit contains non-Clifford gates";
          let outcome, det = Qc.Stabilizer.measure_all (Qc.Stabilizer.run c) in
          say st "stabsim: measured %d (%s)" outcome
            (if det then "deterministic" else "one random branch");
          st
      | "esop" ->
          let c = Rev.Esop_synth.synth (need_func st) in
          say st "esop: %d gates on %d lines" (Rev.Rcircuit.num_gates c) (Rev.Rcircuit.num_lines c);
          { st with rev = Some c }
      | "hier" ->
          let batch = Option.map (fun s -> int_arg "hier" (Some s)) (arg 0) in
          let c, layout = Rev.Hier_synth.synth_tables ?batch (need_func st) in
          say st "hier: %d gates, %d ancillae" (Rev.Rcircuit.num_gates c)
            layout.Rev.Hier_synth.ancillae;
          { st with rev = Some c }
      | "embed" ->
          let fs = need_func st in
          let e = Rev.Embed.embed fs in
          say st "embed: %d -> %d lines (mu = %d)" (Truth_table.num_vars (List.hd fs))
            e.Rev.Embed.r
            (Rev.Embed.output_multiplicity fs);
          { st with perm = Some e.Rev.Embed.perm }
      | "revsimp" ->
          let c = need_rev st in
          let c' = Rev.Rsimp.simplify c in
          say st "revsimp: %d -> %d gates" (Rev.Rcircuit.num_gates c) (Rev.Rcircuit.num_gates c');
          { st with rev = Some c' }
      | "resynth" ->
          let c = need_rev st in
          let c' = Rev.Resynth.optimize c in
          say st "resynth: %d -> %d gates" (Rev.Rcircuit.num_gates c) (Rev.Rcircuit.num_gates c');
          { st with rev = Some c' }
      | "cliffordt" ->
          let rc = need_rev st in
          let options =
            { Qc.Clifford_t.default_options with rccx_ladder = args <> [ "--no-rccx" ] }
          in
          let c, anc = Qc.Clifford_t.compile_rcircuit ~options rc in
          say st "cliffordt: %d gates, T-count %d, %d ancillae" (Qc.Circuit.num_gates c)
            (Qc.Circuit.t_count c) anc;
          { st with qc = Some c }
      | "tpar" ->
          let c = need_qc st in
          let c', rep = Qc.Tpar.optimize_report c in
          say st "tpar: T-count %d -> %d, T-depth %d -> %d" rep.Qc.Tpar.t_before
            rep.Qc.Tpar.t_after rep.Qc.Tpar.t_depth_before rep.Qc.Tpar.t_depth_after;
          { st with qc = Some c' }
      | "peephole" ->
          let c = need_qc st in
          let c' = Qc.Opt.simplify c in
          say st "peephole: %d -> %d gates" (Qc.Circuit.num_gates c) (Qc.Circuit.num_gates c');
          { st with qc = Some c' }
      | "pipeline" ->
          (* pass-manager pipeline on the current reversible circuit, e.g.
             [pipeline revsimp,cliffordt,tpar,peephole] (commas, because
             ';' separates shell commands) *)
          let rc = need_rev st in
          let spec = String.concat " " args in
          if String.trim spec = "" then
            failf "pipeline: missing spec (e.g. pipeline revsimp,cliffordt,tpar)";
          let pipeline = Pass.parse spec in
          let res = Pass.run pipeline rc in
          List.iter
            (fun (e : Pass.entry) ->
              say st "%s: gates %d -> %d (%.2fms)%s" e.Pass.pass_name
                (Pass.snapshot_gates e.Pass.before) (Pass.snapshot_gates e.Pass.after)
                (e.Pass.elapsed *. 1000.)
                (match e.Pass.detail with
                | None -> ""
                | Some d -> Fmt.str " [%a]" Pass.pp_detail d))
            res.Pass.trace;
          say st "pipeline: %d passes, %d ancillae, %.2fms total"
            (List.length res.Pass.trace) res.Pass.ancillae
            (Pass.total_elapsed res.Pass.trace *. 1000.);
          { st with rev = Some res.Pass.rev; qc = Some res.Pass.circuit;
            trace = Some res.Pass.trace }
      | "passes" ->
          List.iter (fun (name, doc) -> say st "%-12s %s" name doc) (Pass.catalog ());
          st
      | "trace" -> (
          match arg 0 with
          | Some "export" ->
              (* telemetry stream of the whole session, format by extension:
                 .jsonl event log | .json Chrome trace | anything else table *)
              let file =
                match arg 1 with
                | Some f -> f
                | None -> failf "trace export: missing file"
              in
              let events = Obs.Memory.events st.recorder in
              if events = [] then failf "trace export: no telemetry recorded yet";
              Obs.Export.write_file file events;
              say st "wrote %d events to %s" (List.length events) file;
              st
          | Some other -> failf "trace: unknown subcommand %s (try: trace export <file>)" other
          | None -> (
              match st.trace with
              | Some trace -> say st "%s" (Pass.trace_to_string trace); st
              | None -> failf "trace: no pipeline has run yet (use pipeline)"))
      | "stats" ->
          (* cross-layer telemetry summary: counters and histograms of
             everything executed in this session *)
          let events = Obs.Memory.events st.recorder in
          let counters = Obs.Summary.counter_totals events in
          let hists = Obs.Summary.histogram_stats events in
          let spans = Obs.Summary.span_totals events in
          if counters = [] && hists = [] && spans = [] then
            say st "no telemetry recorded yet"
          else begin
            List.iter
              (fun (name, (dur, k)) ->
                say st "span     %-36s %4dx %10.2fms" name k (dur /. 1e3))
              spans;
            List.iter (fun (name, total) -> say st "counter  %-36s %12d" name total) counters;
            List.iter
              (fun (name, (s : Obs.Summary.hist_stats)) ->
                say st "hist     %-36s n=%d mean=%.2f p50=%.1f p95=%.1f p99=%.1f max=%.1f"
                  name s.Obs.Summary.n s.Obs.Summary.mean s.Obs.Summary.p50
                  s.Obs.Summary.p95 s.Obs.Summary.p99 s.Obs.Summary.max)
              hists
          end;
          let size, cap, evictions = Qc.Statevector.plan_cache_stats () in
          say st "plan cache: %d/%d entries, %d evictions (capacity via DAUTOQ_PLAN_CACHE)"
            size cap evictions;
          st
      | "run" ->
          let c = need_qc st in
          let spec = match arg 0 with Some s -> s | None -> failf "run: missing target" in
          let backend = Qc.Backend.of_spec spec in
          say st "%s" (Qc.Backend.outcome_to_string (backend.Qc.Backend.run c));
          st
      | "backends" ->
          List.iter (fun (name, doc) -> say st "%-18s %s" name doc) (Qc.Backend.catalog ());
          st
      | "device" -> (
          (* the resilient device layer: [device] / [device stats] reports
             the profile, breaker and fault tallies; [device profile
             <spec>] sets the fault profile for subsequent runs; [device
             breaker] shows the state machine; [device run <target>
             [shots]] executes the current circuit through a device *)
          match arg 0 with
          | None | Some "stats" ->
              say st "profile: %s" (Fmt.str "%a" Device.pp_profile st.fault_profile);
              (match st.device with
              | None -> say st "no device yet (use device run <target> [shots])"
              | Some d -> List.iter (fun l -> say st "%s" l) (Device.stats_lines d));
              st
          | Some "profile" -> (
              match arg 1 with
              | None ->
                  say st "profile: %s" (Fmt.str "%a" Device.pp_profile st.fault_profile);
                  st
              | Some spec ->
                  let p = Device.profile_of_spec spec in
                  say st "fault profile set to %s" p.Device.label;
                  (* drop the device so the new profile takes effect *)
                  { st with fault_profile = p; device = None; device_spec = None })
          | Some "breaker" -> (
              match st.device with
              | None -> failf "device breaker: no device yet (use device run)"
              | Some d ->
                  say st "breaker: %s" (Device.breaker_to_string d);
                  st)
          | Some "run" ->
              let c = need_qc st in
              let target =
                match arg 1 with
                | Some t -> t
                | None -> failf "device run: missing target (e.g. device run noisy)"
              in
              let shots = Option.map (fun s -> int_arg "shots" (Some s)) (arg 2) in
              let d =
                match st.device with
                | Some d when st.device_spec = Some target -> d
                | _ -> Device.of_spec ~profile:st.fault_profile target
              in
              let job = Device.submit ?shots d c in
              say st "%s" (Qc.Backend.outcome_to_string (Device.outcome_of_job job));
              say st "%s" (Device.job_summary job);
              { st with device = Some d; device_spec = Some target }
          | Some other ->
              failf
                "device: unknown subcommand %s (try: device [stats|profile \
                 <spec>|breaker|run <target> [shots]])"
                other)
      | "jobs" -> (
          (* the multicore knob: [jobs] prints the pool width, [jobs N]
             pins it (the statevector kernels and noisy shots use it) *)
          match arg 0 with
          | None ->
              say st "jobs: %d (recommended for this machine: %d)" (Par.default_jobs ())
                (Par.recommended ());
              st
          | Some v ->
              let n = int_arg "jobs" (Some v) in
              if n < 1 then failf "jobs: expected a positive worker count, got %d" n;
              Par.set_default_jobs n;
              say st "jobs set to %d" (Par.default_jobs ());
              st)
      | "cache" -> (
          (* the compilation cache: [cache] / [cache stats] reports per
             store, [cache clear] empties it, [cache on|off] toggles
             memoization, [cache dir <path>] attaches persistence *)
          match arg 0 with
          | None | Some "stats" ->
              say st "cache: %s%s" (if Cache.enabled () then "on" else "off")
                (match Cache.dir () with
                | Some d -> Printf.sprintf ", dir %s" d
                | None -> ", in-memory only");
              List.iter
                (fun (r : Cache.stats_row) ->
                  say st "  %-16s hits %5d  misses %5d  entries %5d" r.Cache.store
                    r.Cache.hits r.Cache.misses r.Cache.entries)
                (Cache.stats ());
              say st "  persisted: %dB" (Cache.bytes_persisted ());
              st
          | Some "clear" ->
              Cache.clear ();
              say st "cache cleared";
              st
          | Some "on" ->
              Cache.set_enabled true;
              say st "cache on";
              st
          | Some "off" ->
              Cache.set_enabled false;
              say st "cache off";
              st
          | Some "dir" -> (
              match arg 1 with
              | Some d ->
                  Cache.set_dir (Some d);
                  say st "cache dir %s" d;
                  st
              | None -> failf "cache dir: missing path")
          | Some other -> failf "cache: unknown subcommand %s" other)
      | "ps" ->
          (match st.rev with
          | Some c -> say st "reversible: %s" (Fmt.str "%a" Rev.Rcircuit.pp_stats (Rev.Rcircuit.stats c))
          | None -> ());
          (match st.qc with
          | Some c -> say st "quantum: %s" (Qc.Resource.to_string (Qc.Resource.count c))
          | None -> ());
          if st.rev = None && st.qc = None then say st "nothing to print";
          st
      | "print_rev" ->
          say st "%s" (Fmt.str "%a" Rev.Rcircuit.pp (need_rev st));
          st
      | "draw" ->
          say st "%s" (Qc.Draw.to_string (need_qc st));
          st
      | "write_qasm" ->
          let text = Qc.Qasm.to_string ~measure:false (need_qc st) in
          (match arg 0 with
          | Some file when file <> "-" ->
              let oc = open_out file in
              output_string oc text;
              close_out oc;
              say st "wrote %s" file
          | _ -> say st "%s" text);
          st
      | "qsharp" ->
          let name = Option.value ~default:"GeneratedOracle" (arg 0) in
          say st "%s" (Qc.Qsharp_gen.operation ~name (need_qc st));
          st
      | "simulate" ->
          let x = int_arg "simulate" (arg 0) in
          let c = need_rev st in
          say st "f(%d) = %d" x (Rev.Rsim.run c x);
          st
      | "verify" ->
          let p = need_perm st in
          (match st.qc with
          | Some c ->
              if Qc.Circuit.num_qubits c > 12 then failf "verify: circuit too wide"
              else if Flow.verify_perm p c then say st "verify: quantum circuit OK"
              else failf "verify: quantum circuit does NOT realize the permutation"
          | None ->
              let c = need_rev st in
              if Rev.Rsim.realizes c p then say st "verify: reversible circuit OK"
              else failf "verify: reversible circuit does NOT realize the permutation");
          st
      | "help" ->
          say st
            "commands: revgen <name> <n> | random_perm <n> [seed] | perm <pts…> | expr <e> | tt <bits> | adder <n> |\n\
            \  xag <spec|expr <e>|stats|rewrite> | xagsynth [k] [budget] |\n\
            \  tbs [-b] | dbs | cycle | exact | esop | hier [batch] | bdd | lut [k] | embed | revsimp | resynth |\n\
            \  cliffordt [--no-rccx] | tpar | peephole | route |\n\
            \  pipeline <p1,p2,…> | passes | trace | trace export <file> | stats | run <target> | backends | jobs [n] |\n\
            \  cache [stats|clear|on|off|dir <path>] | device [stats|profile <spec>|breaker|run <target> [shots]] |\n\
            \  ps | print_rev | draw | write_qasm [file] | qsharp [name] |\n\
            \  simulate <x> | stabsim | verify | help";
          List.iter
            (fun (name, doc) -> say st "extension: %-8s %s" name doc)
            (extension_catalog ());
          st
      | other -> (
          match Hashtbl.find_opt extensions other with
          | Some (_doc, f) -> f st args
          | None -> failf "unknown command %s (try help)" other))

(* Every failure surfaces as [Error] with the offending command named —
   no silent drops, no bare exceptions escaping to the REPL. Each command
   executes with the session's telemetry recorder installed as the global
   sink (restored afterwards), so [stats] / [trace export] see everything
   the session did. *)
let exec st words =
  match words with
  | [] -> st
  | cmd :: _ ->
      let saved = Obs.sink () in
      Obs.set_sink (Some (Obs.Memory.sink st.recorder));
      Fun.protect
        ~finally:(fun () -> Obs.set_sink saved)
        (fun () ->
          try exec_cmd st words with
          | Error _ as e -> raise e
          | Invalid_argument msg | Failure msg -> failf "%s: %s" cmd msg
          | Pass.Spec_error msg | Qc.Backend.Unsupported msg
          | Device.Bad_profile msg ->
              failf "%s: %s" cmd msg
          | Not_found -> failf "%s: internal lookup failed" cmd)

(** [run_line st line] splits on [';'] and executes each command; output
    accumulates in [st.out]. *)
let run_line st line =
  List.fold_left
    (fun st chunk ->
      let words =
        String.split_on_char ' ' (String.trim chunk) |> List.filter (fun w -> w <> "")
      in
      exec st words)
    st
    (String.split_on_char ';' line)

(** [run_script text] executes a whole script (newlines and semicolons both
    separate commands) and returns the accumulated output. *)
let run_script text =
  let st =
    List.fold_left
      (fun st line -> run_line st line)
      (init ())
      (String.split_on_char '\n' text)
  in
  Buffer.contents st.out

(** [output st] drains the accumulated output. *)
let output st =
  let s = Buffer.contents st.out in
  Buffer.clear st.out;
  s
