(** The pass-manager IR behind the compile flow.

    Real design-automation stacks (RevKit, the MQT family) are organized
    as {e pass pipelines} over a common IR rather than hand-wired call
    sequences. This module provides that architecture for the paper's
    Fig. 2 flow:

    - a {!t} ("pass") is a named circuit transformation of one of three
      typed kinds: reversible-layer ([Rcircuit -> Rcircuit]),
      quantum-layer ([Circuit -> Circuit]), or the Clifford+T {e lowering}
      boundary between the two;
    - a {!pipeline} is a validated sequence [rev passes; lowering;
      qc passes];
    - a global {e registry} maps pass names (with optional [name:arg]
      parameters) to implementations, so pipelines are describable as
      spec strings like ["revsimp;cliffordt;tpar;peephole"];
    - {!run} executes a pipeline with built-in instrumentation: per-pass
      wall-clock time and before/after gate statistics are recorded into
      a structured {!trace}.

    {!Flow} builds its public report from the trace; the shell and the
    [bin/] CLIs parse spec strings; new optimizations become drop-in
    [register] calls instead of flow surgery. *)

exception Spec_error of string
(** Malformed pipeline spec; the message names the offending token. *)

let failf fmt = Printf.ksprintf (fun s -> raise (Spec_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Passes                                                              *)
(* ------------------------------------------------------------------ *)

(** Before/after measurement of the circuit a pass saw: reversible-layer
    passes snapshot MCT statistics, quantum-layer passes snapshot
    Clifford+T resources. The lowering entry has a [Rev_snap] before and
    a [Qc_snap] after. *)
type snapshot =
  | Rev_snap of Rev.Rcircuit.stats
  | Qc_snap of Qc.Resource.t

(** Structured pass-specific findings, beyond the generic snapshots. *)
type detail =
  | Tpar of Qc.Tpar.report
  | Routed of { swaps : int; final_placement : int array }
  | Note of string

type kind =
  | Rev_pass of (Rev.Rcircuit.t -> Rev.Rcircuit.t * detail option)
  | Lower of (Rev.Rcircuit.t -> (Qc.Circuit.t * int) * detail option)
      (** the typed stage boundary; the [int] is the ancilla count added *)
  | Qc_pass of (Qc.Circuit.t -> Qc.Circuit.t * detail option)

type t = { name : string; doc : string; kind : kind }

let layer_of = function
  | Rev_pass _ -> "reversible"
  | Lower _ -> "lowering"
  | Qc_pass _ -> "quantum"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(* name -> (doc, constructor taking the optional ":arg" parameter) *)
let registry : (string, string * (string option -> t)) Hashtbl.t = Hashtbl.create 16

(** [register ~name ~doc make] puts a pass constructor in the registry.
    [make] receives the optional argument of a [name:arg] spec token. *)
let register ~name ~doc make = Hashtbl.replace registry name (doc, make)

let names () =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

(** [catalog ()] lists [(name, doc)] pairs, for help screens. *)
let catalog () =
  List.map (fun name -> (name, fst (Hashtbl.find registry name))) (names ())

let no_arg name = function
  | None -> ()
  | Some a -> failf "pass %s takes no argument (got %s)" name a

(** [find ?arg name] instantiates the registered pass [name]. Raises
    {!Spec_error} naming the token if unknown or misparametrized. *)
let find ?arg name =
  match Hashtbl.find_opt registry name with
  | Some (_, make) -> make arg
  | None -> failf "unknown pass %s (known: %s)" name (String.concat ", " (names ()))

(* --- built-in passes: the existing transforms, wrapped --- *)

let simple_rev ~name ~doc f =
  register ~name ~doc (fun arg ->
      no_arg name arg;
      { name; doc; kind = Rev_pass (fun rc -> (f rc, None)) })

let simple_qc ~name ~doc f =
  register ~name ~doc (fun arg ->
      no_arg name arg;
      { name; doc; kind = Qc_pass (fun c -> (f c, None)) })

let () =
  simple_rev ~name:"revsimp" ~doc:"MCT-cascade rewriting to a fixpoint (adjacent merge/cancel)"
    Rev.Rsimp.simplify;
  simple_rev ~name:"resynth" ~doc:"window resynthesis of the MCT cascade" Rev.Resynth.optimize;
  let cliffordt_doc =
    "lower MCT to Clifford+T (the stage boundary); cliffordt:no-rccx disables \
     relative-phase Toffolis"
  in
  let make_cliffordt arg =
    let rccx =
      match arg with
      | None | Some "rccx" -> true
      | Some "no-rccx" -> false
      | Some other -> failf "cliffordt: unknown argument %s (expected rccx | no-rccx)" other
    in
    let options = { Qc.Clifford_t.default_options with rccx_ladder = rccx } in
    { name = (if rccx then "cliffordt" else "cliffordt:no-rccx");
      doc = cliffordt_doc;
      kind = Lower (fun rc -> (Qc.Clifford_t.compile_rcircuit ~options rc, None)) }
  in
  register ~name:"cliffordt" ~doc:cliffordt_doc make_cliffordt;
  (* the paper-facing synonym used in prose and in the MQT-style spelling *)
  register ~name:"clifford_t" ~doc:cliffordt_doc make_cliffordt;
  register ~name:"tpar" ~doc:"T-par phase folding (T-count / T-depth reduction)" (fun arg ->
      no_arg "tpar" arg;
      { name = "tpar";
        doc = "T-par phase folding";
        kind =
          Qc_pass
            (fun c ->
              let c', rep = Qc.Tpar.optimize_report c in
              (c', Some (Tpar rep))) });
  simple_qc ~name:"peephole" ~doc:"adjacent-gate cancellation and rotation fusion to a fixpoint"
    Qc.Opt.simplify;
  register ~name:"route" ~doc:"linear-nearest-neighbour SWAP insertion" (fun arg ->
      no_arg "route" arg;
      { name = "route";
        doc = "LNN routing";
        kind =
          Qc_pass
            (fun c ->
              let r = Qc.Route.lnn c in
              ( r.Qc.Route.circuit,
                Some
                  (Routed
                     { swaps = r.Qc.Route.swaps_inserted;
                       final_placement = r.Qc.Route.final_placement }) )) })

(* ------------------------------------------------------------------ *)
(* Pipelines                                                           *)
(* ------------------------------------------------------------------ *)

type pipeline = {
  rev_passes : t list; (* all [Rev_pass] *)
  lower : t; (* the single [Lower] boundary *)
  qc_passes : t list; (* all [Qc_pass] *)
}

let default_lower () = find "cliffordt"

(** [of_passes ps] validates the stage ordering [rev*; lower?; qc*] and
    assembles a pipeline; a missing lowering gets the default [cliffordt]
    boundary inserted. Raises {!Spec_error} naming the out-of-place
    pass. *)
let of_passes passes =
  let rev_ps, lower, qc_ps =
    List.fold_left
      (fun (rev_ps, lower, qc_ps) p ->
        match (p.kind, lower, qc_ps) with
        | Rev_pass _, None, [] -> (p :: rev_ps, lower, qc_ps)
        | Rev_pass _, _, _ ->
            failf "%s: reversible-layer pass after the lowering boundary" p.name
        | Lower _, Some l, _ ->
            failf "%s: second lowering boundary (already have %s)" p.name l.name
        | Lower _, None, _ :: _ ->
            failf "%s: lowering boundary after a quantum-layer pass" p.name
        | Lower _, None, [] -> (rev_ps, Some p, qc_ps)
        | Qc_pass _, _, _ -> (rev_ps, lower, p :: qc_ps))
      ([], None, []) passes
  in
  { rev_passes = List.rev rev_ps;
    lower = (match lower with Some l -> l | None -> default_lower ());
    qc_passes = List.rev qc_ps }

let passes p = p.rev_passes @ (p.lower :: p.qc_passes)

(** [to_spec p] renders the pipeline back to its spec string;
    [parse (to_spec p)] reconstructs [p]. *)
let to_spec p = String.concat ";" (List.map (fun pass -> pass.name) (passes p))

let pass_of_token tok =
  match String.index_opt tok ':' with
  | None -> find tok
  | Some i ->
      find
        ~arg:(String.sub tok (i + 1) (String.length tok - i - 1))
        (String.sub tok 0 i)

(* Spec tokens: pass names separated by ';' or ',' — commas let specs live
   inside shell command lines where ';' separates commands. *)
let tokens_of_spec spec =
  String.split_on_char ';' spec
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun t -> t <> "")

(** [parse spec] reads a pipeline spec string: pass tokens (optionally
    parametrized as [name:arg]) separated by [';'] or [',']. Raises
    {!Spec_error} naming the offending token. *)
let parse spec =
  match tokens_of_spec spec with
  | [] -> failf "empty pipeline spec"
  | tokens -> of_passes (List.map pass_of_token tokens)

(** [parse_qc spec] parses a quantum-layer-only pass list (no lowering,
    no reversible passes) — the form [qasm-tool] and the hidden-shift CLI
    apply to circuits that are already Clifford+T. *)
let parse_qc spec =
  match tokens_of_spec spec with
  | [] -> failf "empty pipeline spec"
  | tokens ->
      List.map
        (fun tok ->
          let p = pass_of_token tok in
          match p.kind with
          | Qc_pass _ -> p
          | Rev_pass _ ->
              failf "%s: reversible-layer pass cannot run on a quantum circuit" p.name
          | Lower _ -> failf "%s: lowering cannot run on an already-lowered circuit" p.name)
        tokens

(* ------------------------------------------------------------------ *)
(* Instrumented execution                                              *)
(* ------------------------------------------------------------------ *)

(** One trace entry per executed pass. *)
type entry = {
  pass_name : string;
  layer : string; (* "reversible" | "lowering" | "quantum" *)
  elapsed : float; (* wall-clock seconds *)
  before : snapshot;
  after : snapshot;
  ancillae_added : int; (* nonzero only at the lowering boundary *)
  detail : detail option;
}

type trace = entry list
(** In execution order. *)

type result = {
  rev : Rev.Rcircuit.t; (* after the reversible layer *)
  circuit : Qc.Circuit.t; (* after the full pipeline *)
  ancillae : int;
  trace : trace;
}

let now () = Unix.gettimeofday ()
let rev_snap rc = Rev_snap (Rev.Rcircuit.stats rc)
let qc_snap c = Qc_snap (Qc.Resource.count c)

let snapshot_gates = function
  | Rev_snap s -> s.Rev.Rcircuit.gate_count
  | Qc_snap r -> r.Qc.Resource.total_gates

(* Telemetry: every executed pass is a span in the cross-layer stream
   (taxonomy [core.pass.<name>]), so the pass-manager trace and the
   synthesis/simulation internals land in one exportable timeline. *)
let observe_entry (e : entry) =
  if Obs.enabled () then begin
    Obs.add_attrs
      [ ("layer", Obs.Str e.layer);
        ("gates_before", Obs.Int (snapshot_gates e.before));
        ("gates_after", Obs.Int (snapshot_gates e.after)) ];
    (match e.after with
    | Qc_snap r -> Obs.add_attrs [ ("t_count", Obs.Int r.Qc.Resource.t_count) ]
    | Rev_snap _ -> ());
    if e.ancillae_added > 0 then
      Obs.add_attrs [ ("ancillae_added", Obs.Int e.ancillae_added) ];
    Obs.count "core.pass.executed"
  end

let run_uncached pipeline rc0 =
  Obs.with_span "core.pipeline.run" @@ fun () ->
  let entries = ref [] in
  let record e =
    observe_entry e;
    entries := e :: !entries
  in
  let timed p before f =
    let t0 = now () in
    let out, detail = f () in
    let elapsed = now () -. t0 in
    (out, fun after ancillae_added ->
      record
        { pass_name = p.name; layer = layer_of p.kind; elapsed; before; after;
          ancillae_added; detail })
  in
  let rc =
    List.fold_left
      (fun rc p ->
        match p.kind with
        | Rev_pass f ->
            Obs.with_span ("core.pass." ^ p.name) (fun () ->
                let rc', fin = timed p (rev_snap rc) (fun () -> f rc) in
                fin (rev_snap rc') 0;
                rc')
        | _ -> assert false)
      rc0 pipeline.rev_passes
  in
  let c0, ancillae =
    match pipeline.lower.kind with
    | Lower f ->
        Obs.with_span ("core.pass." ^ pipeline.lower.name) (fun () ->
            let (c0, ancillae), fin =
              timed pipeline.lower (rev_snap rc) (fun () -> f rc)
            in
            fin (qc_snap c0) ancillae;
            (c0, ancillae))
    | _ -> assert false
  in
  let c =
    List.fold_left
      (fun c p ->
        match p.kind with
        | Qc_pass f ->
            Obs.with_span ("core.pass." ^ p.name) (fun () ->
                let c', fin = timed p (qc_snap c) (fun () -> f c) in
                fin (qc_snap c') 0;
                c')
        | _ -> assert false)
      c0 pipeline.qc_passes
  in
  { rev = rc; circuit = c; ancillae; trace = List.rev !entries }

(* Second-level ("lowering") cache: the full instrumented result of a
   pipeline is memoized by (spec string, structural key of the input
   cascade), so repeated compilations of identical cascades — common when
   NPN replay maps a whole oracle family onto few distinct circuits —
   skip Clifford+T lowering and T-par entirely. Deterministic passes make
   the cached result indistinguishable from a fresh run; a hit re-serves
   the recorded trace (the per-pass timings of the original run). *)
let result_store : (string, result) Cache.store =
  Cache.create ~name:"pass.result" ~schema:"pass-result.v1" ~group:"lower"
    ~key_of:Fun.id

(** [run pipeline rc] executes every pass in order, recording one trace
    entry per pass. Each pass also opens a [core.pass.<name>] telemetry
    span (the whole pipeline is a [core.pipeline.run] span), so the
    existing trace entries and the cross-layer event stream tell one
    story. Results are memoized by (spec, input cascade) — see
    {!Cache}. *)
let run pipeline rc0 =
  let key = to_spec pipeline ^ "@" ^ Rev.Rcircuit.structural_key rc0 in
  Cache.find_or_add result_store key (fun () -> run_uncached pipeline rc0)

let run_qc_uncached passes c0 =
  Obs.with_span "core.pipeline.run_qc" @@ fun () ->
  let entries = ref [] in
  let c =
    List.fold_left
      (fun c p ->
        match p.kind with
        | Qc_pass f ->
            Obs.with_span ("core.pass." ^ p.name) (fun () ->
                let before = qc_snap c in
                let t0 = now () in
                let c', detail = f c in
                let e =
                  { pass_name = p.name; layer = "quantum"; elapsed = now () -. t0;
                    before; after = qc_snap c'; ancillae_added = 0; detail }
                in
                observe_entry e;
                entries := e :: !entries;
                c')
        | _ -> failf "%s: not a quantum-layer pass" p.name)
      c0 passes
  in
  (c, List.rev !entries)

let qc_result_store : (string, Qc.Circuit.t * trace) Cache.store =
  Cache.create ~name:"pass.qc_result" ~schema:"pass-qc.v1" ~group:"lower"
    ~key_of:Fun.id

(** [run_qc passes c] executes a quantum-layer pass list on an
    already-lowered circuit, with the same instrumentation (and the same
    result memoization as {!run}). *)
let run_qc passes c0 =
  let names = String.concat ";" (List.map (fun p -> p.name) passes) in
  let key = names ^ "@" ^ Qc.Circuit.structural_key c0 in
  Cache.find_or_add qc_result_store key (fun () -> run_qc_uncached passes c0)

(* ------------------------------------------------------------------ *)
(* Trace rendering                                                     *)
(* ------------------------------------------------------------------ *)

let pp_detail ppf = function
  | Tpar t ->
      Fmt.pf ppf "T %d -> %d, T-depth %d -> %d" t.Qc.Tpar.t_before t.Qc.Tpar.t_after
        t.Qc.Tpar.t_depth_before t.Qc.Tpar.t_depth_after
  | Routed { swaps; _ } -> Fmt.pf ppf "%d SWAPs inserted" swaps
  | Note s -> Fmt.string ppf s

let pp_entry ppf e =
  Fmt.pf ppf "%-20s %-10s %8.2fms  gates %5d -> %5d" e.pass_name e.layer
    (e.elapsed *. 1000.) (snapshot_gates e.before) (snapshot_gates e.after);
  (match e.after with
  | Qc_snap r -> Fmt.pf ppf "  T %4d  depth %5d" r.Qc.Resource.t_count r.Qc.Resource.depth
  | Rev_snap _ -> ());
  if e.ancillae_added > 0 then Fmt.pf ppf "  +%d ancillae" e.ancillae_added;
  match e.detail with None -> () | Some d -> Fmt.pf ppf "  [%a]" pp_detail d

(** [pp_trace ppf trace] prints the per-pass instrumentation table. *)
let pp_trace ppf trace =
  Fmt.pf ppf "@[<v>%-20s %-10s %10s  %s@ %a@]" "pass" "layer" "time" "effect"
    Fmt.(list ~sep:cut pp_entry)
    trace

let trace_to_string trace = Fmt.str "%a" pp_trace trace

(** [total_elapsed trace] sums the per-pass wall-clock times. *)
let total_elapsed trace = List.fold_left (fun acc e -> acc +. e.elapsed) 0. trace

(** [tpar_report trace] extracts the first T-par report, if that pass
    ran. *)
let tpar_report trace =
  List.find_map (function { detail = Some (Tpar t); _ } -> Some t | _ -> None) trace
