(** The Boolean hidden shift problem — the paper's algorithmic benchmark
    (Secs. VI–VIII).

    Given oracle access to [g(x) = f(x ⊕ s)] and to the dual bent function
    [f~], the quantum algorithm of Fig. 3

      H^⊗n · U_g · H^⊗n · U_{f~} · H^⊗n |0…0⟩  =  |s⟩

    finds the hidden shift [s] deterministically with one query to each
    oracle. This module builds the circuit for the paper's two instance
    families (inner product, Maiorana–McFarland) and for arbitrary bent
    functions, runs it on the noiseless and noisy backends, and provides
    the classical sampling baseline for comparison. *)

module Truth_table = Logic.Truth_table
module Bent = Logic.Bent
module Walsh = Logic.Walsh
module Bitops = Logic.Bitops
module Engine = Pq.Engine
module Oracles = Pq.Oracles

type instance =
  | Inner_product of { n : int; s : int }
      (** [f = x₁x₂ ⊕ x₃x₄ ⊕ …] on [2n] qubits with adjacent pairing
          (Fig. 4); self-dual. *)
  | Mm of { mm : Bent.mm; s : int; synth : Oracles.synth }
      (** Maiorana–McFarland on [2n] qubits, interleaved layout (Fig. 7:
          [xᵢ] on even lines, [yᵢ] on odd lines); [s] is in qubit-index
          encoding. *)
  | Generic of { f : Truth_table.t; s : int }
      (** Any bent function, via ESOP phase oracles for [f] and its Walsh
          dual. *)

(** [num_qubits i] is the circuit width (no ancillae are ever needed). *)
let num_qubits = function
  | Inner_product { n; _ } -> 2 * n
  | Mm { mm; _ } -> 2 * mm.Bent.n
  | Generic { f; _ } -> Truth_table.num_vars f

(** [shift i] is the planted shift — the expected measurement outcome. *)
let shift = function
  | Inner_product { s; _ } | Mm { s; _ } | Generic { s; _ } -> s

(** [function_table i] is [f] as a truth table over qubit-index
    assignments. *)
let function_table = function
  | Inner_product { n; _ } -> Bent.inner_product_adjacent n
  | Mm { mm; _ } ->
      Bent.interleave_table mm.Bent.n (Bent.mm_function mm)
  | Generic { f; _ } -> f

(* Emit X on the set bits of the shift. *)
let shift_gates eng qs s =
  Array.iteri (fun i q -> if Bitops.bit s i then Engine.x eng q) qs

(** [build i] constructs the hidden-shift circuit following the structure
    of the paper's Figs. 4 and 7: a Compute block (Hadamards, the shift,
    and any oracle-internal pre-processing), the phase oracle for [f], the
    Uncompute, the phase oracle for the dual, final Hadamards. *)
let build instance =
  let eng = Engine.create () in
  let m = num_qubits instance in
  let qs = Engine.allocate_qureg eng m in
  let s = shift instance in
  (match instance with
  | Inner_product { n; _ } ->
      (* the phase oracle of x₁x₂ ⊕ x₃x₄ ⊕ … is structurally the CZ pairs
         (exactly what the ESOP compiler produces), which keeps the builder
         usable far beyond the truth-table width limit *)
      let oracle () =
        for i = 0 to n - 1 do
          Engine.cz eng qs.(2 * i) qs.((2 * i) + 1)
        done
      in
      Engine.with_compute eng
        (fun () ->
          Engine.all Engine.h eng qs;
          shift_gates eng qs s)
        oracle;
      (* f is self-dual *)
      oracle ();
      Engine.all Engine.h eng qs
  | Mm { mm; s; synth } ->
      (* interleaved registers, as in Fig. 7 *)
      let xs = Array.init mm.Bent.n (fun i -> qs.(2 * i)) in
      let ys = Array.init mm.Bent.n (fun i -> qs.((2 * i) + 1)) in
      Engine.with_compute eng
        (fun () ->
          Engine.all Engine.h eng qs;
          shift_gates eng qs s)
        (fun () -> Oracles.mm_phase_oracle ~synth eng mm ~xs ~ys);
      Oracles.mm_dual_phase_oracle ~synth eng mm ~xs ~ys;
      Engine.all Engine.h eng qs
  | Generic { f; s } ->
      if not (Walsh.is_bent f) then invalid_arg "Hidden_shift: f is not bent";
      let dual = Walsh.dual f in
      Engine.with_compute eng
        (fun () ->
          Engine.all Engine.h eng qs;
          shift_gates eng qs s)
        (fun () -> Oracles.phase_oracle_tt eng f qs);
      Oracles.phase_oracle_tt eng dual qs;
      Engine.all Engine.h eng qs);
  Engine.flush eng

(** [build_compiled ?tpar ?passes i] is {!build} followed by Clifford+T
    lowering and the quantum-layer pass list (T-par by default; [passes]
    overrides with any registered passes) — the circuit a hardware backend
    would actually receive. Returns the circuit and the ancilla count the
    lowering added. *)
let build_compiled ?(tpar = true) ?passes instance =
  let c = build instance in
  let mapped, ancillae = Qc.Clifford_t.compile c in
  let passes =
    match passes with
    | Some ps -> ps
    | None -> if tpar then [ Pass.find "tpar" ] else []
  in
  let final, _trace = Pass.run_qc passes mapped in
  (final, ancillae)

(** [solve i] runs the noiseless simulation and returns the measured shift.
    On perfect gates the outcome is deterministic, so the most likely basis
    state {e is} the answer; [solve] additionally checks determinism and
    raises [Failure] if the final state is not a basis state. *)
let solve instance =
  let sv = Qc.Statevector.run (build instance) in
  let outcome = Qc.Statevector.most_likely sv in
  if not (Qc.Statevector.is_basis_state ~eps:1e-6 sv outcome) then
    failwith "Hidden_shift.solve: outcome not deterministic (compilation bug?)";
  outcome

(** [solve_clifford i] solves the instance on the stabilizer (CHP) backend,
    which handles register widths far beyond state vectors — but only for
    Clifford circuits. Inner-product instances always qualify (their phase
    oracles are CZ pairs); Maiorana–McFarland instances qualify exactly when
    the synthesized permutation oracle stays in {X, CNOT} ∪ Clifford. This
    is the Bravyi–Gosset [72] observation turned into a backend. Raises
    [Invalid_argument] on non-Clifford circuits and [Failure] if the
    outcome is not deterministic. *)
let solve_clifford instance =
  let c = build instance in
  if not (Qc.Stabilizer.is_clifford_circuit c) then
    invalid_arg "Hidden_shift.solve_clifford: circuit is not Clifford";
  let outcome, deterministic = Qc.Stabilizer.measure_all (Qc.Stabilizer.run c) in
  if not deterministic then failwith "Hidden_shift.solve_clifford: outcome not deterministic";
  outcome

(** [run_noisy ?seed params i ~shots ~runs] executes the circuit on the
    noisy backend — the Fig. 6 experiment. Returns per-outcome mean and
    standard deviation of the frequency across runs. *)
let run_noisy ?seed params instance ~shots ~runs =
  Qc.Noise.runs_statistics ?seed params (build instance) ~shots ~runs

(** Classical baseline: generic candidate-elimination with oracle access to
    [f] and [g] (both count as queries, memoized). Random probes eliminate
    inconsistent shift candidates until one remains. Query complexity grows
    as [Θ(2^n)] here — exponential in the input size, against the quantum
    algorithm's two oracle evaluations. *)
let classical_queries ?(seed = 1) instance =
  let f = function_table instance in
  let s = shift instance in
  let n = Truth_table.num_vars f in
  let g x = Truth_table.get f (x lxor s) in
  let st = Random.State.make [| seed |] in
  let queried_f = Hashtbl.create 64 and queried_g = Hashtbl.create 64 in
  let queries = ref 0 in
  let query tbl fn x =
    match Hashtbl.find_opt tbl x with
    | Some v -> v
    | None ->
        incr queries;
        let v = fn x in
        Hashtbl.add tbl x v;
        v
  in
  let qf x = query queried_f (Truth_table.get f) x in
  let qg x = query queried_g g x in
  let candidates = ref (List.init (1 lsl n) Fun.id) in
  while List.length !candidates > 1 do
    let probe = Random.State.int st (1 lsl n) in
    let gv = qg probe in
    candidates := List.filter (fun c -> qf (probe lxor c) = gv) !candidates
  done;
  (List.hd !candidates, !queries)

(** [random_mm_instance st n] draws a random Maiorana–McFarland instance
    with a random shift — the E7 workload generator. *)
let random_mm_instance ?(synth = Oracles.Tbs) st n =
  let mm = Bent.random_mm st n in
  let s = Random.State.int st (1 lsl (2 * n)) in
  Mm { mm; s; synth }
