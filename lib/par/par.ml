(** A reusable domain pool — the multicore execution runtime.

    OCaml 5 gives us true parallelism through [Domain], but domains are
    heavyweight (each carries a minor heap), so the hot paths must share a
    small, long-lived pool rather than spawning per call. This module
    hand-rolls that pool on [Domain]/[Mutex]/[Condition] — no external
    dependencies — and exposes the three primitives the simulators use:

    - {!run_tasks} — execute a batch of closures, caller participating;
    - {!parallel_for} — chunk an index range over the pool;
    - {!map_reduce} — map over task indices, reduce {e in index order}
      (so reductions are deterministic regardless of worker count).

    Determinism contract: none of these primitives reorder work
    observably. [parallel_for] is only handed bodies with disjoint
    writes, and [map_reduce] folds results left-to-right by task index,
    so a pool of any size computes bit-identical results to [jobs = 1].

    Nesting: a worker that calls back into the pool (e.g. a parallel
    shot whose state-vector kernel would also like to parallelize) runs
    the nested batch sequentially on its own domain — no deadlock, no
    oversubscription. *)

type pool = {
  jobs : int; (* total parallelism, caller included *)
  m : Mutex.t;
  cv : Condition.t; (* signalled when work arrives or on shutdown *)
  q : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Workers flip this flag in their domain-local storage; batch submission
   checks it to degrade to sequential execution inside a worker. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker p () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock p.m;
    while Queue.is_empty p.q && not p.stop do
      Condition.wait p.cv p.m
    done;
    if Queue.is_empty p.q then Mutex.unlock p.m (* stopping and drained *)
    else begin
      let task = Queue.pop p.q in
      Mutex.unlock p.m;
      task ();
      loop ()
    end
  in
  loop ()

(** [create jobs] builds a pool of total width [jobs] (clamped to ≥ 1):
    the calling domain plus [jobs - 1] spawned workers. *)
let create jobs =
  let jobs = max 1 jobs in
  let p =
    { jobs; m = Mutex.create (); cv = Condition.create (); q = Queue.create ();
      stop = false; workers = [] }
  in
  if jobs > 1 then p.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker p));
  p

(** [size p] is the pool's total parallelism (caller included). *)
let size p = p.jobs

(** [shutdown p] stops and joins every worker. Idempotent. *)
let shutdown p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.cv;
  Mutex.unlock p.m;
  List.iter Domain.join p.workers;
  p.workers <- []

(** [run_tasks p tasks] executes every closure, distributing them over the
    pool; the calling domain runs its share too. Returns when all tasks
    have finished.

    Exception contract: a raising task never aborts the batch. Every
    other task still runs to completion, the queue drains fully, and
    only then is the {e first} exception (in completion order; later
    ones are dropped) re-raised on the calling domain. Because the batch
    always drains, a raising batch leaves no task queued and no worker
    blocked — the pool stays fully reusable for subsequent batches
    ([parallel_for] and [map_reduce] inherit this). Called from inside a
    pool worker, the batch runs sequentially instead. *)
let run_tasks p (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else if n = 1 || p.jobs = 1 || Domain.DLS.get in_worker then
    Array.iter (fun t -> t ()) tasks
  else begin
    let bm = Mutex.create () and bcv = Condition.create () in
    let pending = ref n and first_exn = ref None in
    let wrap t () =
      (try t ()
       with e ->
         Mutex.lock bm;
         if !first_exn = None then first_exn := Some e;
         Mutex.unlock bm);
      Mutex.lock bm;
      decr pending;
      if !pending = 0 then Condition.signal bcv;
      Mutex.unlock bm
    in
    Mutex.lock p.m;
    for i = 1 to n - 1 do
      Queue.push (wrap tasks.(i)) p.q
    done;
    Condition.broadcast p.cv;
    Mutex.unlock p.m;
    wrap tasks.(0) ();
    (* help drain the queue rather than idling until the workers finish *)
    let rec help () =
      Mutex.lock p.m;
      if Queue.is_empty p.q then Mutex.unlock p.m
      else begin
        let task = Queue.pop p.q in
        Mutex.unlock p.m;
        task ();
        help ()
      end
    in
    help ();
    Mutex.lock bm;
    while !pending > 0 do
      Condition.wait bcv bm
    done;
    Mutex.unlock bm;
    match !first_exn with Some e -> raise e | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Cancellation                                                        *)
(* ------------------------------------------------------------------ *)

(** A cancellation token: a cross-domain flag consulted between task
    chunks. Cancellation is cooperative — a task that has already
    started always runs to completion (the pool never interrupts a
    domain); tasks that have not yet begun are skipped once the token
    is set. *)
type cancel = bool Atomic.t

let cancel_token () : cancel = Atomic.make false
let cancel (t : cancel) = Atomic.set t true
let cancelled (t : cancel) = Atomic.get t

(** [run_tasks_cancellable p token tasks] is {!run_tasks} with checked
    cancellation: the token is consulted immediately before each task
    starts, and once set every not-yet-started task is skipped. Returns
    the number of tasks that actually ran. The {!run_tasks} exception
    contract is unchanged — a raising task neither aborts nor cancels
    the batch; the queue still drains (running or skipping every
    remaining task) and the first exception re-raises afterwards, so
    the pool stays reusable. Determinism: a token set {e before}
    submission skips every task at any pool width; a token set
    concurrently races task starts, so the skipped set is only
    reproducible at [jobs = 1] (the serve layer cancels strictly before
    submission for exactly this reason). *)
let run_tasks_cancellable p (token : cancel) (tasks : (unit -> unit) array) =
  let ran = Atomic.make 0 in
  run_tasks p
    (Array.map
       (fun t () ->
         if not (Atomic.get token) then begin
           Atomic.incr ran;
           t ()
         end)
       tasks);
  Atomic.get ran

(** [parallel_for p ?chunks ~start ~stop body] runs [body lo hi] over a
    partition of [\[start, stop)] (default: one chunk per pool slot).
    The caller guarantees the chunks write disjoint locations; under that
    contract the result is identical for any pool size. *)
let parallel_for p ?chunks ~start ~stop body =
  let n = stop - start in
  if n > 0 then begin
    let k = max 1 (min n (match chunks with Some c -> c | None -> p.jobs)) in
    if k = 1 then body start stop
    else
      run_tasks p
        (Array.init k (fun i () ->
             let lo = start + (n * i / k) and hi = start + (n * (i + 1) / k) in
             if lo < hi then body lo hi))
  end

(** [map_floats p ~tasks f] fills a float array with [f i] for every task
    index, the tasks running over the pool. The partition is fixed by
    [tasks] (never by pool width), so callers that chunk a reduction into
    [tasks] blocks get the {e same} per-block partials — and therefore
    the same combined float sum — for any [--jobs] value. The result
    array is unboxed; each task writes one disjoint slot. *)
let map_floats p ~tasks f =
  if tasks <= 0 then [||]
  else begin
    let out = Array.make tasks 0. in
    run_tasks p (Array.init tasks (fun i () -> out.(i) <- f i));
    out
  end

(** [parallel_for_slabs p ~slabs f] runs [f slab] for every slab index in
    [\[0, slabs)], chunking contiguous slab ranges over the pool. This is
    the sharded statevector's workhorse: each slab owns a disjoint block
    of amplitudes, so slab-local kernels parallelize with zero locks and
    any pool width computes bit-identical results. *)
let parallel_for_slabs p ?chunks ~slabs f =
  parallel_for p ?chunks ~start:0 ~stop:slabs (fun lo hi ->
      for sl = lo to hi - 1 do
        f sl
      done)

(** [tree_sum parts] combines float partials in a fixed pairwise-tree
    order, in place (stride doubling:
    (((p0+p1)+(p2+p3))+((p4+p5)+(p6+p7)))+…). The summation order is a
    pure function of [Array.length parts], never of the pool width, so
    reductions built on it are bit-identical at any [--jobs]. *)
let tree_sum (parts : float array) =
  let n = Array.length parts in
  if n = 0 then 0.
  else begin
    let stride = ref 1 in
    while !stride < n do
      let i = ref 0 in
      while !i + !stride < n do
        parts.(!i) <- parts.(!i) +. parts.(!i + !stride);
        i := !i + (2 * !stride)
      done;
      stride := 2 * !stride
    done;
    parts.(0)
  end

(** [sum_blocks p ~blocks seg] is the deterministic parallel sum: [seg i]
    produces block [i]'s left-to-right partial (the caller fixes the
    block partition independently of pool width — e.g. the statevector's
    256 fixed global-index blocks, each walking its slabs in global
    order), and the partials combine via {!tree_sum}. *)
let sum_blocks p ~blocks seg =
  if blocks <= 0 then 0. else tree_sum (map_floats p ~tasks:blocks seg)

(** [map_reduce p ~tasks ~map ~reduce ~init] computes
    [reduce (… (reduce init (map 0)) …) (map (tasks - 1))] with the maps
    running in parallel and the reduction folded strictly in index order
    on the calling domain — deterministic for any pool size. *)
let map_reduce p ~tasks ~map ~reduce ~init =
  if tasks <= 0 then init
  else begin
    let results = Array.make tasks None in
    run_tasks p (Array.init tasks (fun i () -> results.(i) <- Some (map i)));
    Array.fold_left
      (fun acc r -> match r with Some v -> reduce acc v | None -> acc)
      init results
  end

(* ------------------------------------------------------------------ *)
(* The process-wide pool and the --jobs knob                           *)
(* ------------------------------------------------------------------ *)

(** [recommended ()] is the runtime's suggested domain count (#cores). *)
let recommended () = Domain.recommended_domain_count ()

let default_jobs_ref = ref 0 (* 0 = follow [recommended] *)

(** [default_jobs ()] is the process-wide worker count: the value of the
    last {!set_default_jobs} (the [--jobs] flag), else {!recommended}. *)
let default_jobs () = if !default_jobs_ref > 0 then !default_jobs_ref else recommended ()

let global_pool = ref None

let shutdown_global () =
  match !global_pool with
  | Some p ->
      global_pool := None;
      shutdown p
  | None -> ()

let () = at_exit shutdown_global

(** [global ()] is the shared lazily-created pool of {!default_jobs}
    width — the pool behind the state-vector kernels. Only the main
    domain may call it (workers never re-enter the pool). *)
let global () =
  match !global_pool with
  | Some p -> p
  | None ->
      let p = create (default_jobs ()) in
      global_pool := Some p;
      p

(** [set_default_jobs n] pins the process-wide worker count (the [--jobs]
    flag and the shell's [jobs] command land here) and recycles the
    global pool so the new width takes effect. *)
let set_default_jobs n =
  default_jobs_ref := max 1 n;
  shutdown_global ()

(** [with_pool ~jobs f] hands [f] a pool of at least width [jobs]: the
    global pool when it is already wide enough, otherwise a temporary
    pool that is shut down when [f] returns. *)
let with_pool ~jobs f =
  let jobs = max 1 jobs in
  let g = global () in
  if g.jobs >= jobs then f g
  else begin
    let p = create jobs in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
  end
