(** Gate kernels, reductions and the fusion prepass over the sharded
    state ({!Sv_shard}).

    Every primitive has two shapes with {e identical per-amplitude float
    arithmetic}: a flat fast path on single-slab states (the exact PR 8
    kernels) and a sharded path that dispatches on whether the touched
    qubits sit below the slab bit — slab-local work fans out over the
    {!Par} pool slab by slab, cross-slab pairs stream two slabs in
    lockstep. Reductions chunk the {e global} index space into a fixed
    block count and walk each block's slabs in ascending global order,
    so sums are bit-identical across every jobs × shard-bits setting. *)

include Sv_shard

(* States at or below this size run kernels sequentially: the per-batch
   synchronization (~µs) would dwarf the loop itself. 2^14 amplitudes ≈
   256 kB, roughly where one pass stops fitting in L2. *)
let par_threshold = 1 lsl 14

(* Below this many qubits the fusion prepass costs more than it saves:
   kernel passes over ≤ 2^9 amplitudes are already sub-µs, so the
   prepass's gate-array copy and op-list allocations dominate. The
   prepass itself is size-independent, so tests drive it directly via
   {!fuse_gates}/{!apply_op} on small circuits. *)
let fuse_min_qubits = 10

(* Run [f slab] for every slab, over the pool when the state is big
   enough to amortize it. Each slab-local task writes only its own
   slab(s), so any pool width is bit-identical. *)
let run_slabs s f =
  if size s <= par_threshold then
    for sl = 0 to slab_count s - 1 do
      f sl
    done
  else Par.parallel_for_slabs (Par.global ()) ~slabs:(slab_count s) f

(* Kernel bodies are top-level segment functions over [lo, hi): the
   sequential path calls them directly (a known call — loop locals stay
   in registers), and only the parallel path pays a closure. Wrapping
   the whole body in a [par_range (fun lo hi -> ...)] closure costs
   ~15% on kernel-bound circuits without flambda, because captured
   variables are re-read from the closure environment each iteration.
   Each segment writes a disjoint index slice, so any worker count
   computes bit-identical amplitudes (Par's contract). *)
let seg_1q re im bit (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) lo hi =
  let x = ref lo in
  while !x < hi do
    if !x land bit = 0 then begin
      let y = !x lor bit in
      let ar = re.(!x) and ai = im.(!x) and br = re.(y) and bi = im.(y) in
      re.(!x) <- (m00.re *. ar) -. (m00.im *. ai) +. (m01.re *. br) -. (m01.im *. bi);
      im.(!x) <- (m00.re *. ai) +. (m00.im *. ar) +. (m01.re *. bi) +. (m01.im *. br);
      re.(y) <- (m10.re *. ar) -. (m10.im *. ai) +. (m11.re *. br) -. (m11.im *. bi);
      im.(y) <- (m10.re *. ai) +. (m10.im *. ar) +. (m11.re *. bi) +. (m11.im *. br)
    end;
    incr x
  done

(* Cross-slab 1q kernel: the pair partner lives one high bit away, i.e.
   in another slab at the *same* local offset — stream both slabs in
   lockstep. Same four store expressions as {!seg_1q}. *)
let seg_1q_pair (are : float array) (aim : float array) (bre : float array)
    (bim : float array) (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) lo hi =
  for x = lo to hi - 1 do
    let ar = are.(x) and ai = aim.(x) and br = bre.(x) and bi = bim.(x) in
    are.(x) <- (m00.re *. ar) -. (m00.im *. ai) +. (m01.re *. br) -. (m01.im *. bi);
    aim.(x) <- (m00.re *. ai) +. (m00.im *. ar) +. (m01.re *. bi) +. (m01.im *. br);
    bre.(x) <- (m10.re *. ar) -. (m10.im *. ai) +. (m11.re *. br) -. (m11.im *. bi);
    bim.(x) <- (m10.re *. ai) +. (m10.im *. ar) +. (m11.re *. bi) +. (m11.im *. br)
  done

let apply_1q s q (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) =
  let bit = 1 lsl q in
  if not (sharded s) then begin
    let re = s.sl_re.(0) and im = s.sl_im.(0) in
    let sz = size s in
    if sz <= par_threshold then seg_1q re im bit m00 m01 m10 m11 0 sz
    else
      Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
          seg_1q re im bit m00 m01 m10 m11 lo hi)
  end
  else if q < s.sb then
    run_slabs s (fun sl ->
        seg_1q s.sl_re.(sl) s.sl_im.(sl) bit m00 m01 m10 m11 0 (slab_size s))
  else begin
    let hb = 1 lsl (q - s.sb) in
    run_slabs s (fun sl ->
        if sl land hb = 0 then
          seg_1q_pair s.sl_re.(sl) s.sl_im.(sl)
            s.sl_re.(sl lor hb) s.sl_im.(sl lor hb)
            m00 m01 m10 m11 0 (slab_size s))
  end

(* Pair kernels visit each (x, x lxor tbit) pair once via the tbit = 0
   representative; the tbit = 1 partner is never a representative itself,
   so chunking the full index range keeps writes disjoint. *)
(* The float array annotations matter: without them these move-only
   bodies generalize polymorphically and compile to generic (boxing)
   array accesses — ~2.5x slower. *)
let seg_swap (re : float array) (im : float array) mask want tbit lo hi =
  for x = lo to hi - 1 do
    if x land tbit = 0 && x land mask = want then begin
      let y = x lor tbit in
      let r = re.(x) and i = im.(x) in
      re.(x) <- re.(y);
      im.(x) <- im.(y);
      re.(y) <- r;
      im.(y) <- i
    end
  done

(* Cross-slab controlled-swap: the target bit selects the partner slab;
   any control bits split into a slab-index condition (checked once per
   pair of slabs) and a local mask. Pure moves — exact. *)
let seg_swap_pair (are : float array) (aim : float array) (bre : float array)
    (bim : float array) mask want lo hi =
  for x = lo to hi - 1 do
    if x land mask = want then begin
      let r = are.(x) and i = aim.(x) in
      are.(x) <- bre.(x);
      aim.(x) <- bim.(x);
      bre.(x) <- r;
      bim.(x) <- i
    end
  done

let swap_pairs s ~mask ~want ~tbit =
  if not (sharded s) then begin
    let re = s.sl_re.(0) and im = s.sl_im.(0) in
    let sz = size s in
    if sz <= par_threshold then seg_swap re im mask want tbit 0 sz
    else
      Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
          seg_swap re im mask want tbit lo hi)
  end
  else begin
    let mlo = mask land s.smask and mhi = mask lsr s.sb in
    let wlo = want land s.smask and whi = want lsr s.sb in
    if tbit <= s.smask then
      run_slabs s (fun sl ->
          if sl land mhi = whi then
            seg_swap s.sl_re.(sl) s.sl_im.(sl) mlo wlo tbit 0 (slab_size s))
    else begin
      let hb = tbit lsr s.sb in
      run_slabs s (fun sl ->
          if sl land hb = 0 && sl land mhi = whi then
            seg_swap_pair s.sl_re.(sl) s.sl_im.(sl)
              s.sl_re.(sl lor hb) s.sl_im.(sl lor hb)
              mlo wlo 0 (slab_size s))
    end
  end

let seg_phase re im mask want pre pim lo hi =
  for x = lo to hi - 1 do
    if x land mask = want then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pre *. r) -. (pim *. i);
      im.(x) <- (pre *. i) +. (pim *. r)
    end
  done

let phase_on s ~mask ~want (p : Complex.t) =
  if not (sharded s) then begin
    let re = s.sl_re.(0) and im = s.sl_im.(0) in
    let sz = size s in
    if sz <= par_threshold then seg_phase re im mask want p.re p.im 0 sz
    else
      Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
          seg_phase re im mask want p.re p.im lo hi)
  end
  else begin
    (* diagonal: never crosses slabs — the slab-index half of the mask
       just gates which slabs are touched at all *)
    let mlo = mask land s.smask and mhi = mask lsr s.sb in
    let wlo = want land s.smask and whi = want lsr s.sb in
    run_slabs s (fun sl ->
        if sl land mhi = whi then
          seg_phase s.sl_re.(sl) s.sl_im.(sl) mlo wlo p.re p.im 0 (slab_size s))
  end

(* Swap = visit the (a=1, b=0) pattern once, exchange with (a=0, b=1). *)
let seg_swap2 (re : float array) (im : float array) ab bb lo hi =
  for x = lo to hi - 1 do
    if x land ab <> 0 && x land bb = 0 then begin
      let y = (x lxor ab) lor bb in
      let r = re.(x) and i = im.(x) in
      re.(x) <- re.(y);
      im.(x) <- im.(y);
      re.(y) <- r;
      im.(y) <- i
    end
  done

(* Sharded SWAP with at least one high qubit: rare enough (plans fuse
   SWAPs into permutation blocks) that a generic global-index walk via
   the accessors is fine. Pure moves — exact, and pairs are disjoint so
   chunking stays deterministic. *)
let seg_swap2_g s ab bb lo hi =
  for x = lo to hi - 1 do
    if x land ab <> 0 && x land bb = 0 then begin
      let y = (x lxor ab) lor bb in
      let r = get_re s x and i = get_im s x in
      set_re s x (get_re s y);
      set_im s x (get_im s y);
      set_re s y r;
      set_im s y i
    end
  done

let apply_swap s a b =
  let ab = 1 lsl a and bb = 1 lsl b in
  let sz = size s in
  if not (sharded s) then begin
    let re = s.sl_re.(0) and im = s.sl_im.(0) in
    if sz <= par_threshold then seg_swap2 re im ab bb 0 sz
    else
      Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
          seg_swap2 re im ab bb lo hi)
  end
  else if ab <= s.smask && bb <= s.smask then
    run_slabs s (fun sl ->
        seg_swap2 s.sl_re.(sl) s.sl_im.(sl) ab bb 0 (slab_size s))
  else if sz <= par_threshold then seg_swap2_g s ab bb 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_swap2_g s ab bb lo hi)

let c0 = Complex.zero
let c1 = Complex.one
let ci = Complex.i
let cm1 = Complex.{ re = -1.; im = 0. }
let cmi = Complex.{ re = 0.; im = -1. }
let sqrt2inv = 1. /. sqrt 2.
let ch = Complex.{ re = sqrt2inv; im = 0. }
let chm = Complex.{ re = -.sqrt2inv; im = 0. }
let omega = Complex.{ re = sqrt2inv; im = sqrt2inv } (* e^{iπ/4} *)
let omega_bar = Complex.{ re = sqrt2inv; im = -.sqrt2inv }

let mask_of qs = List.fold_left (fun m q -> m lor (1 lsl q)) 0 qs

(** [apply s g] applies one gate in place. *)
let apply s (g : Gate.t) =
  match g with
  | Gate.X q -> swap_pairs s ~mask:0 ~want:0 ~tbit:(1 lsl q)
  | Gate.Y q ->
      apply_1q s q c0 cmi ci c0
  | Gate.Z q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cm1
  | Gate.S q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) ci
  | Gate.Sdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cmi
  | Gate.T q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega
  | Gate.Tdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega_bar
  | Gate.Rz (a, q) ->
      (* rz(θ) = diag(e^{-iθ/2}, e^{iθ/2}) *)
      let h = a /. 2. in
      let bit = 1 lsl q in
      phase_on s ~mask:bit ~want:0 Complex.{ re = cos h; im = -.sin h };
      phase_on s ~mask:bit ~want:bit Complex.{ re = cos h; im = sin h }
  | Gate.H q -> apply_1q s q ch ch ch chm
  | Gate.Cnot (c, t) -> swap_pairs s ~mask:(1 lsl c) ~want:(1 lsl c) ~tbit:(1 lsl t)
  | Gate.Cz (a, b) ->
      let m = (1 lsl a) lor (1 lsl b) in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Swap (a, b) -> apply_swap s a b
  | Gate.Ccx (a, b, t) ->
      let m = (1 lsl a) lor (1 lsl b) in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Ccz (a, b, c) ->
      let m = mask_of [ a; b; c ] in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Mcx (cs, t) ->
      let m = mask_of cs in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Mcz qs ->
      let m = mask_of qs in
      phase_on s ~mask:m ~want:m cm1

(* --- deterministic parallel reductions --- *)

(* Reductions chunk the *global* index space into a fixed number of
   blocks (independent of pool width and shard layout), sum each block
   left-to-right — walking its slab pieces in ascending global order —
   and combine the per-block partials in Par's fixed pairwise-tree
   order. The float summation order is therefore a pure function of the
   state size: any jobs × shard-bits combination produces bit-identical
   sums. *)
let reduce_blocks = 256

let tree_sum = Par.tree_sum

(* 1-slot accumulator arrays, not refs: float ref stores box per
   iteration. *)
let seg_sum2 (re : float array) (im : float array) lo hi =
  let acc = [| 0. |] in
  for x = lo to hi - 1 do
    acc.(0) <- acc.(0) +. (re.(x) *. re.(x)) +. (im.(x) *. im.(x))
  done;
  acc.(0)

let seg_sum2_bit (re : float array) (im : float array) bit lo hi =
  let acc = [| 0. |] in
  for x = lo to hi - 1 do
    if x land bit <> 0 then
      acc.(0) <- acc.(0) +. (re.(x) *. re.(x)) +. (im.(x) *. im.(x))
  done;
  acc.(0)

(* Sharded block partials: one running accumulator carried across the
   block's slab pieces in global order — the same addition sequence as
   the flat kernels, so the sums match bit for bit. *)
let seg_sum2_sh s lo hi =
  let acc = [| 0. |] in
  iter_pieces s lo hi (fun sl _base lo_l hi_l ->
      let re = s.sl_re.(sl) and im = s.sl_im.(sl) in
      for x = lo_l to hi_l - 1 do
        acc.(0) <- acc.(0) +. (re.(x) *. re.(x)) +. (im.(x) *. im.(x))
      done);
  acc.(0)

let seg_sum2_bit_sh s bit lo hi =
  let acc = [| 0. |] in
  iter_pieces s lo hi (fun sl base lo_l hi_l ->
      let re = s.sl_re.(sl) and im = s.sl_im.(sl) in
      for x = lo_l to hi_l - 1 do
        if (base lor x) land bit <> 0 then
          acc.(0) <- acc.(0) +. (re.(x) *. re.(x)) +. (im.(x) *. im.(x))
      done);
  acc.(0)

(* Fixed-chunk parallel sum of [seg lo hi] over [0, sz). Small states
   keep the plain sequential scan (also the exact historical order). *)
let reduce_sum sz (seg : int -> int -> float) =
  if sz <= par_threshold then seg 0 sz
  else
    let k = reduce_blocks in
    Par.sum_blocks (Par.global ()) ~blocks:k (fun i ->
        seg (sz * i / k) (sz * (i + 1) / k))

(** [norm2 s] is the total probability (should stay 1 within rounding).
    Chunked tree sum above {!par_threshold}; bit-identical at any
    [--jobs] and any shard-bits setting. *)
let norm2 s =
  if not (sharded s) then
    reduce_sum (size s) (seg_sum2 s.sl_re.(0) s.sl_im.(0))
  else reduce_sum (size s) (seg_sum2_sh s)

(** [prob_of_qubit s q] is the probability of reading 1 on qubit [q]. *)
let prob_of_qubit s q =
  if not (sharded s) then
    reduce_sum (size s) (seg_sum2_bit s.sl_re.(0) s.sl_im.(0) (1 lsl q))
  else reduce_sum (size s) (seg_sum2_bit_sh s (1 lsl q))

(* --- gate fusion prepass --- *)

(* A 2×2 unitary, row-major. *)
type m2 = { m00 : Complex.t; m01 : Complex.t; m10 : Complex.t; m11 : Complex.t }

(* [m2_after g f] is the matrix of "apply f, then g": the product g·f. *)
let m2_after g f =
  let open Complex in
  { m00 = add (mul g.m00 f.m00) (mul g.m01 f.m10);
    m01 = add (mul g.m00 f.m01) (mul g.m01 f.m11);
    m10 = add (mul g.m10 f.m00) (mul g.m11 f.m10);
    m11 = add (mul g.m10 f.m01) (mul g.m11 f.m11) }

(* The 2×2 matrix of a 1-qubit gate, with its qubit. *)
let m2_of_gate = function
  | Gate.X q -> Some (q, { m00 = c0; m01 = c1; m10 = c1; m11 = c0 })
  | Gate.Y q -> Some (q, { m00 = c0; m01 = cmi; m10 = ci; m11 = c0 })
  | Gate.Z q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = cm1 })
  | Gate.H q -> Some (q, { m00 = ch; m01 = ch; m10 = ch; m11 = chm })
  | Gate.S q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = ci })
  | Gate.Sdg q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = cmi })
  | Gate.T q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = omega })
  | Gate.Tdg q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = omega_bar })
  | Gate.Rz (a, q) ->
      let h = a /. 2. in
      Some
        ( q,
          { m00 = Complex.{ re = cos h; im = -.sin h }; m01 = c0; m10 = c0;
            m11 = Complex.{ re = cos h; im = sin h } } )
  | _ -> None

(* One multiplicative term of a diagonal gate: amplitudes whose index
   matches [want] on [mask] pick up the phase (pre + i·pim). *)
type dterm = { mask : int; want : int; pre : float; pim : float }

let dterm mask want (p : Complex.t) = { mask; want; pre = p.re; pim = p.im }

(* The phase terms of a diagonal gate (diagonal gates all commute, so any
   run of them coalesces into one sweep over these terms). *)
let dterms_of_gate g =
  let one_hot q p = [ dterm (1 lsl q) (1 lsl q) p ] in
  match g with
  | Gate.Z q -> Some (one_hot q cm1)
  | Gate.S q -> Some (one_hot q ci)
  | Gate.Sdg q -> Some (one_hot q cmi)
  | Gate.T q -> Some (one_hot q omega)
  | Gate.Tdg q -> Some (one_hot q omega_bar)
  | Gate.Rz (a, q) ->
      let h = a /. 2. in
      let bit = 1 lsl q in
      Some
        [ dterm bit 0 Complex.{ re = cos h; im = -.sin h };
          dterm bit bit Complex.{ re = cos h; im = sin h } ]
  | Gate.Cz (a, b) ->
      let m = (1 lsl a) lor (1 lsl b) in
      Some [ dterm m m cm1 ]
  | Gate.Ccz (a, b, c) ->
      let m = mask_of [ a; b; c ] in
      Some [ dterm m m cm1 ]
  | Gate.Mcz qs ->
      let m = mask_of qs in
      Some [ dterm m m cm1 ]
  | _ -> None

(* One sweep applying a whole run of diagonal gates. The combined phase of
   index [x] is a product over matching terms; terms whose mask lies
   entirely in the low or high half of the index bits are precomputed
   into per-half lookup tables of size O(√2^n), so the sweep itself is
   phase(x) = lo[x low bits] · hi[x high bits] · (rare straddling terms)
   — two complex multiplies per amplitude however long the run is, and
   one memory pass instead of one per gate. Amplitudes whose combined
   phase is exactly 1 are not written, so untouched entries keep their
   exact values (basis states stay exact). All arithmetic is on unboxed
   floats — no [Complex.t] in the inner loop. *)
let seg_phase_sweep re im lo_re lo_im hi_re hi_im half_mask h
    (straddling : dterm array) lo hi =
  let ns = Array.length straddling in
  (* 2-slot float array, not refs: ref assignment would box per store *)
  let acc = [| 1.; 0. |] in
  for x = lo to hi - 1 do
    let l = x land half_mask and g = x lsr h in
    let ar = Array.unsafe_get lo_re l and ai = Array.unsafe_get lo_im l in
    let br = Array.unsafe_get hi_re g and bi = Array.unsafe_get hi_im g in
    acc.(0) <- (ar *. br) -. (ai *. bi);
    acc.(1) <- (ar *. bi) +. (ai *. br);
    for t = 0 to ns - 1 do
      let tm = Array.unsafe_get straddling t in
      if x land tm.mask = tm.want then begin
        let r = acc.(0) and i = acc.(1) in
        acc.(0) <- (r *. tm.pre) -. (i *. tm.pim);
        acc.(1) <- (r *. tm.pim) +. (i *. tm.pre)
      end
    done;
    let pr = acc.(0) and pi = acc.(1) in
    if not (pr = 1. && pi = 0.) then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pr *. r) -. (pi *. i);
      im.(x) <- (pr *. i) +. (pi *. r)
    end
  done

(* Sharded sweep segment: local writes, global indices into the phase
   tables ([gx = base lor x]). Same arithmetic and same skip-when-unit
   rule as {!seg_phase_sweep}. *)
let seg_phase_sweep_base (re : float array) (im : float array) lo_re lo_im
    hi_re hi_im half_mask h (straddling : dterm array) base lo hi =
  let ns = Array.length straddling in
  let acc = [| 1.; 0. |] in
  for x = lo to hi - 1 do
    let gx = base lor x in
    let l = gx land half_mask and g = gx lsr h in
    let ar = Array.unsafe_get lo_re l and ai = Array.unsafe_get lo_im l in
    let br = Array.unsafe_get hi_re g and bi = Array.unsafe_get hi_im g in
    acc.(0) <- (ar *. br) -. (ai *. bi);
    acc.(1) <- (ar *. bi) +. (ai *. br);
    for t = 0 to ns - 1 do
      let tm = Array.unsafe_get straddling t in
      if gx land tm.mask = tm.want then begin
        let r = acc.(0) and i = acc.(1) in
        acc.(0) <- (r *. tm.pre) -. (i *. tm.pim);
        acc.(1) <- (r *. tm.pim) +. (i *. tm.pre)
      end
    done;
    let pr = acc.(0) and pi = acc.(1) in
    if not (pr = 1. && pi = 0.) then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pr *. r) -. (pi *. i);
      im.(x) <- (pr *. i) +. (pi *. r)
    end
  done

(* A fully prepared diagonal sweep: the per-half phase tables plus any
   straddling terms. Building one is O(√2^n · terms); the plan layer
   builds each sweep once and replays it across shots, where the old
   path rebuilt the tables on every execution. *)
type sweep = {
  lo_re : float array;
  lo_im : float array;
  hi_re : float array;
  hi_im : float array;
  half_mask : int;
  h : int;
  straddling : dterm array;
}

let sweep_of_terms n (terms : dterm array) =
  let h = (n + 1) / 2 in
  let lo_sz = 1 lsl h and hi_sz = 1 lsl (n - h) in
  let half_mask = lo_sz - 1 in
  let lo_re = Array.make lo_sz 1. and lo_im = Array.make lo_sz 0. in
  let hi_re = Array.make hi_sz 1. and hi_im = Array.make hi_sz 0. in
  let fold_into tre tim tsz mask want pre pim =
    for i = 0 to tsz - 1 do
      if i land mask = want then begin
        let r = tre.(i) and j = tim.(i) in
        tre.(i) <- (r *. pre) -. (j *. pim);
        tim.(i) <- (r *. pim) +. (j *. pre)
      end
    done
  in
  let straddling = ref [] in
  Array.iter
    (fun t ->
      if t.mask land half_mask = t.mask then
        fold_into lo_re lo_im lo_sz t.mask t.want t.pre t.pim
      else if t.mask land lnot half_mask = t.mask then
        fold_into hi_re hi_im hi_sz (t.mask lsr h) (t.want lsr h) t.pre t.pim
      else straddling := t :: !straddling)
    (* multi-qubit masks spanning both halves (a CZ across the midline)
       stay as per-index checks; they are rare and few *)
    terms;
  { lo_re; lo_im; hi_re; hi_im; half_mask; h;
    straddling = Array.of_list (List.rev !straddling) }

let apply_sweep s sw =
  if not (sharded s) then begin
    let re = s.sl_re.(0) and im = s.sl_im.(0) in
    let sz = size s in
    if sz <= par_threshold then
      seg_phase_sweep re im sw.lo_re sw.lo_im sw.hi_re sw.hi_im sw.half_mask
        sw.h sw.straddling 0 sz
    else
      Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
          seg_phase_sweep re im sw.lo_re sw.lo_im sw.hi_re sw.hi_im
            sw.half_mask sw.h sw.straddling lo hi)
  end
  else
    run_slabs s (fun sl ->
        seg_phase_sweep_base s.sl_re.(sl) s.sl_im.(sl) sw.lo_re sw.lo_im
          sw.hi_re sw.hi_im sw.half_mask sw.h sw.straddling (sl lsl s.sb) 0
          (slab_size s))

let apply_phase_terms s (terms : dterm array) =
  apply_sweep s (sweep_of_terms s.n terms)

type op =
  | Op_gate of Gate.t
  | Op_fused1q of int * m2 (* a run of 1q gates on one qubit, multiplied out *)
  | Op_phases of dterm array (* a run of diagonal gates, one sweep *)

type pending =
  | P_none
  | P_1q of { q : int; m : m2; count : int; first : Gate.t }
  | P_diag of {
      rev_terms : dterm list list;
      ones : int; (* 1-qubit diag gates in the run *)
      rev_gates : Gate.t list;
    }

(* Qubit of a 1-qubit gate, or -1 for multi-qubit gates. *)
let q1_of = function
  | Gate.X q | Gate.Y q | Gate.Z q | Gate.H q | Gate.S q | Gate.Sdg q | Gate.T q
  | Gate.Tdg q
  | Gate.Rz (_, q) ->
      q
  | _ -> -1

(* A diagonal run re-emits its original gates unless it contains at
   least this many 1-qubit phase gates. Those are the passes a sweep
   collapses; multi-qubit CZ/CCZ/MCZ kernels already touch only a
   2^-k subset of amplitudes, so a run of bare CZs (hidden-shift
   oracles) or QFT's length-2 Rz runs is cheaper unfused. *)
let min_diag_run = 3

(* Greedy single-pass fusion. Runs of length 1 re-emit the original gate:
   the specialized kernels (swap_pairs for X, phase_on for Z/S/T) beat a
   generic 2×2 multiply, and exact integer kernels stay exact. *)
let fuse_gates (gates : Gate.t array) =
  let ops = ref [] in
  let emit o = ops := o :: !ops in
  let flush = function
    | P_none -> ()
    | P_1q { m; q; count; first } ->
        if count = 1 then emit (Op_gate first) else emit (Op_fused1q (q, m))
    | P_diag { rev_terms; ones; rev_gates } ->
        if ones < min_diag_run then
          List.iter (fun g -> emit (Op_gate g)) (List.rev rev_gates)
        else emit (Op_phases (Array.of_list (List.concat (List.rev rev_terms))))
  in
  let one_of g = if q1_of g >= 0 then 1 else 0 in
  let step pending g =
    match (pending, m2_of_gate g, dterms_of_gate g) with
    | P_1q p, Some (q, m), _ when q = p.q ->
        P_1q { p with m = m2_after m p.m; count = p.count + 1 }
    | P_diag p, _, Some ts ->
        P_diag
          { rev_terms = ts :: p.rev_terms; ones = p.ones + one_of g;
            rev_gates = g :: p.rev_gates }
    | _, _, Some ts ->
        flush pending;
        P_diag { rev_terms = [ ts ]; ones = one_of g; rev_gates = [ g ] }
    | _, Some (q, m), None ->
        flush pending;
        P_1q { q; m; count = 1; first = g }
    | _, None, None ->
        flush pending;
        emit (Op_gate g);
        P_none
  in
  flush (Array.fold_left step P_none gates);
  List.rev !ops

let apply_op s = function
  | Op_gate g -> apply s g
  | Op_fused1q (q, m) -> apply_1q s q m.m00 m.m01 m.m10 m.m11
  | Op_phases terms -> apply_phase_terms s terms

(* Cheap pre-scan deciding whether the prepass can fuse anything at all:
   a diagonal run with ≥ [min_diag_run] 1-qubit phase gates, or a
   non-diagonal 1-qubit gate directly followed by a 1-qubit gate on the
   same qubit (the [P_1q] seed). Circuits with no such adjacency
   (H/CNOT-mix layers, QFT's Rz/CNOT interleaving, bare-CZ oracles)
   skip the prepass and its allocations — false negatives only skip an
   optimization, never change results. *)
let is_diag = function
  | Gate.Z _ | Gate.S _ | Gate.Sdg _ | Gate.T _ | Gate.Tdg _ | Gate.Rz _ | Gate.Cz _
  | Gate.Ccz _ | Gate.Mcz _ ->
      true
  | _ -> false

let has_fusable (gates : Gate.t array) =
  let n = Array.length gates in
  let found = ref false in
  let diag_run = ref 0 in
  let i = ref 0 in
  while (not !found) && !i < n do
    let g = gates.(!i) in
    if is_diag g then begin
      if q1_of g >= 0 then incr diag_run;
      if !diag_run >= min_diag_run then found := true
    end
    else begin
      diag_run := 0;
      let q = q1_of g in
      if q >= 0 && !i + 1 < n && q1_of gates.(!i + 1) = q then found := true
    end;
    incr i
  done;
  !found

(** [amplitude_damp s q ~gamma ~jump] applies one quantum-trajectory branch
    of the amplitude-damping (T1) channel on qubit [q]:
    with [jump] the excitation decays ([K1 = √γ |0⟩⟨1|]), otherwise the
    no-jump Kraus operator is applied; either way the state is
    renormalized. The caller samples [jump] with probability
    [γ · prob_of_qubit s q]. Cold path (noisy trajectories run at small
    widths), so it walks global indices through the accessors — the
    arithmetic is layout-independent. *)
let amplitude_damp s q ~gamma ~jump =
  let bit = 1 lsl q in
  let p1 = prob_of_qubit s q in
  if jump then begin
    let norm = sqrt (gamma *. p1) in
    if norm < 1e-300 then invalid_arg "Statevector.amplitude_damp: impossible jump";
    for x = 0 to size s - 1 do
      if x land bit = 0 then begin
        let y = x lor bit in
        set_re s x (sqrt gamma *. get_re s y /. norm);
        set_im s x (sqrt gamma *. get_im s y /. norm);
        set_re s y 0.;
        set_im s y 0.
      end
    done
  end
  else begin
    let keep = sqrt (1. -. gamma) in
    let norm = sqrt (1. -. (gamma *. p1)) in
    for x = 0 to size s - 1 do
      if x land bit <> 0 then begin
        set_re s x (keep *. get_re s x /. norm);
        set_im s x (keep *. get_im s x /. norm)
      end
      else begin
        set_re s x (get_re s x /. norm);
        set_im s x (get_im s x /. norm)
      end
    done
  end
