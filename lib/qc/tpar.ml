(** T-count optimization by phase folding over phase polynomials.

    Within every region of the circuit built from {CNOT, X} plus the
    diagonal phase gates {Z, S, S†, T, T†, Rz}, each qubit carries an affine
    function (a {e parity}) of the region's input values. A phase gate
    contributes a rotation on its qubit's current parity, and rotations on
    the {e same} parity merge: [T·T = S], [T·T† = 1], etc. This is the
    merging step at the core of the T-par algorithm (paper ref [69],
    Amy–Maslov–Mosca); we re-emit each merged rotation at the first point
    where its parity occurs, which preserves the unitary up to global
    phase. Gates outside the region alphabet (H, Toffoli, …) act as
    barriers that flush the region. *)

open Gate

(* Parity encoding: bit q (q < n) = input variable of qubit q for the
   current region; bit n = the constant 1. *)

type pending = {
  mutable eighths : int; (* multiples of π/4, mod 8 (T = 1) *)
  mutable angle : float; (* accumulated Rz angle *)
  position : int; (* skeleton index where this parity first appeared *)
  qubit : int; (* a qubit holding the parity at that position *)
  neg_at_first : bool; (* constant bit of the parity at first sight *)
}

let phase_gates_of ~eighths ~angle q =
  let k = ((eighths mod 8) + 8) mod 8 in
  let cliffordish =
    match k with
    | 0 -> []
    | 1 -> [ T q ]
    | 2 -> [ S q ]
    | 3 -> [ S q; T q ]
    | 4 -> [ Z q ]
    | 5 -> [ Z q; T q ]
    | 6 -> [ Sdg q ]
    | 7 -> [ Tdg q ]
    | _ -> assert false
  in
  if Float.abs angle > 1e-12 then cliffordish @ [ Rz (angle, q) ] else cliffordish

(** [optimize c] returns a circuit computing the same unitary as [c] up to
    global phase, with phase rotations on equal parities merged. *)
let optimize c =
  Obs.with_span "qc.tpar.optimize" @@ fun () ->
  let n = Circuit.num_qubits c in
  if n > 61 then invalid_arg "Tpar.optimize: parity bitmasks support at most 61 qubits";
  let const_bit = 1 lsl n in
  let out = ref [] in
  (* region state *)
  let parity = Array.init n (fun q -> 1 lsl q) in
  let skeleton = ref [] (* region CNOT/X gates, reversed *) in
  let skeleton_len = ref 0 in
  let pend : (int, pending) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] (* linear parts in first-seen order, reversed *) in
  let note_parity q =
    let p = parity.(q) in
    let linear = p land lnot const_bit in
    if linear <> 0 && not (Hashtbl.mem pend linear) then begin
      Hashtbl.add pend linear
        { eighths = 0; angle = 0.; position = !skeleton_len; qubit = q;
          neg_at_first = p land const_bit <> 0 };
      order := linear :: !order
    end
  in
  let reset_region () =
    Array.iteri (fun q _ -> parity.(q) <- 1 lsl q) parity;
    skeleton := [];
    skeleton_len := 0;
    Hashtbl.reset pend;
    order := [];
    Array.iteri (fun q _ -> note_parity q) parity
  in
  let flush () =
    (* interleave pending phase gates into the skeleton at their recorded
       positions *)
    if Obs.enabled () && Hashtbl.length pend > 0 then begin
      (* one phase-polynomial region: its partition size is the number of
         distinct parities carrying rotations *)
      Obs.observe "qc.tpar.partition_size" (float_of_int (Hashtbl.length pend));
      Obs.count "qc.tpar.regions"
    end;
    let inserts = Array.make (!skeleton_len + 1) [] in
    List.iter
      (fun linear ->
        let p = Hashtbl.find pend linear in
        let eighths = if p.neg_at_first then -p.eighths else p.eighths in
        let angle = if p.neg_at_first then -.p.angle else p.angle in
        let gs = phase_gates_of ~eighths ~angle p.qubit in
        if gs <> [] then inserts.(p.position) <- inserts.(p.position) @ gs)
      (List.rev !order);
    let skel = Array.of_list (List.rev !skeleton) in
    for i = 0 to !skeleton_len do
      List.iter (fun g -> out := g :: !out) inserts.(i);
      if i < !skeleton_len then out := skel.(i) :: !out
    done
  in
  let add_phase q ~eighths ~angle =
    let p = parity.(q) in
    let linear = p land lnot const_bit in
    if linear = 0 then begin
      (* parity is a constant: the rotation is a global phase (constant 1)
         or identity (constant 0); either way nothing to emit. *)
      ()
    end
    else begin
      note_parity q;
      let entry = Hashtbl.find pend linear in
      (* contribution on the linear part flips sign with the constant *)
      let sign = if p land const_bit <> 0 then -1 else 1 in
      entry.eighths <- entry.eighths + (sign * eighths);
      entry.angle <- entry.angle +. (Float.of_int sign *. angle)
    end
  in
  reset_region ();
  Circuit.iter
    (fun g ->
      match g with
      | Cnot (cq, t) ->
          parity.(t) <- parity.(t) lxor parity.(cq);
          skeleton := g :: !skeleton;
          incr skeleton_len;
          note_parity t
      | X q ->
          parity.(q) <- parity.(q) lxor const_bit;
          skeleton := g :: !skeleton;
          incr skeleton_len;
          note_parity q
      | Z q -> add_phase q ~eighths:4 ~angle:0.
      | S q -> add_phase q ~eighths:2 ~angle:0.
      | Sdg q -> add_phase q ~eighths:(-2) ~angle:0.
      | T q -> add_phase q ~eighths:1 ~angle:0.
      | Tdg q -> add_phase q ~eighths:(-1) ~angle:0.
      | Rz (a, q) -> add_phase q ~eighths:0 ~angle:a
      | Cz _ | Ccz _ | Mcz _ ->
          (* diagonal gates do not change any parity and commute with the
             folded phase rotations: pass through as skeleton *)
          skeleton := g :: !skeleton;
          incr skeleton_len
      | g ->
          (* barrier: flush the region, emit the gate, start fresh *)
          flush ();
          out := g :: !out;
          reset_region ())
    c;
  flush ();
  Circuit.of_rev_gates n !out

(** Summary of what {!optimize} achieved. *)
type report = {
  t_before : int;
  t_after : int;
  gates_before : int;
  gates_after : int;
  t_depth_before : int;
  t_depth_after : int;
}

(** [optimize_report c] runs {!optimize} and reports the T-count / T-depth
    deltas (the numbers the paper's Eq. (5) [tpar] step prints). *)
let optimize_report c =
  let c' = optimize c in
  if Obs.enabled () then begin
    Obs.count ~by:(Circuit.t_count c) "qc.tpar.t_before";
    Obs.count ~by:(Circuit.t_count c') "qc.tpar.t_after"
  end;
  ( c',
    { t_before = Circuit.t_count c;
      t_after = Circuit.t_count c';
      gates_before = Circuit.num_gates c;
      gates_after = Circuit.num_gates c';
      t_depth_before = Circuit.t_depth c;
      t_depth_after = Circuit.t_depth c' } )
