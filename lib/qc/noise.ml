(** Monte-Carlo noisy execution — the stand-in for the paper's IBM Quantum
    Experience backend (Fig. 6).

    Pauli-twirled circuit noise: after every gate each touched qubit
    suffers a uniformly random Pauli error with a gate-class-dependent
    probability, and each final readout bit flips independently. The
    default parameters are calibrated to published 2017-era IBM QX
    numbers (≈0.1% single-qubit gate error, ≈2–4% CNOT error, ≈3–8%
    readout error), which suffices to reproduce the {e shape} of Fig. 6:
    the correct hidden shift dominates the histogram at p ≈ 0.6 rather
    than p = 1. *)

type params = {
  p1 : float; (* error probability per 1-qubit gate, per qubit *)
  p2 : float; (* error probability per 2+-qubit gate, per involved qubit *)
  readout : float; (* bit-flip probability per measured qubit *)
  gamma : float; (* amplitude-damping (T1 relaxation) per gate, per qubit *)
}

(** Calibrated to the IBM QX4/QX5 generation the paper used (within the
    published ranges; chosen so the E2 reproduction lands near the paper's
    measured success probability of ≈0.63 on the Fig. 4 circuit). *)
let ibm_qx2017 = { p1 = 0.001; p2 = 0.032; readout = 0.055; gamma = 0. }

(** [ibm_qx2017_t1] additionally models T1 relaxation between gates
    (trajectory method): a slightly more pessimistic backend. *)
let ibm_qx2017_t1 = { ibm_qx2017 with gamma = 0.004 }

(** [noiseless] turns the channel off (for testing the harness itself). *)
let noiseless = { p1 = 0.; p2 = 0.; readout = 0.; gamma = 0. }

let random_pauli st q =
  match Random.State.int st 3 with
  | 0 -> Gate.X q
  | 1 -> Gate.Y q
  | _ -> Gate.Z q

(** [run_shot st params circuit] simulates one noisy execution and returns
    the measured basis state (all qubits, readout errors included). *)
let run_shot st params circuit =
  let s = Statevector.init (Circuit.num_qubits circuit) in
  let errors = ref 0 in
  Circuit.iter
    (fun g ->
      Statevector.apply s g;
      let qs = Gate.qubits g in
      let p = if List.length qs = 1 then params.p1 else params.p2 in
      List.iter
        (fun q ->
          if Random.State.float st 1. < p then begin
            incr errors;
            Statevector.apply s (random_pauli st q)
          end;
          if params.gamma > 0. then begin
            (* quantum-trajectory amplitude damping *)
            let p_jump = params.gamma *. Statevector.prob_of_qubit s q in
            let jump = Random.State.float st 1. < p_jump in
            Statevector.amplitude_damp s q ~gamma:params.gamma ~jump
          end)
        qs)
    circuit;
  let outcome = Statevector.sample st s in
  (* readout flips *)
  let rec flip q acc =
    if q >= Circuit.num_qubits circuit then acc
    else
      flip (q + 1)
        (if Random.State.float st 1. < params.readout then acc lxor (1 lsl q) else acc)
  in
  let result = flip 0 outcome in
  if Obs.enabled () then begin
    Obs.count "qc.noise.shots";
    if !errors > 0 then Obs.count ~by:!errors "qc.noise.errors_injected";
    Obs.observe "qc.noise.errors_per_shot" (float_of_int !errors)
  end;
  result

(** [run_shots ?seed params circuit ~shots] returns the histogram of
    measured basis states over [shots] executions. *)
let run_shots ?(seed = 0xC0FFEE) params circuit ~shots =
  Obs.with_span "qc.noise.run_shots" @@ fun () ->
  if Obs.enabled () then
    Obs.add_attrs
      [ ("shots", Obs.Int shots); ("qubits", Obs.Int (Circuit.num_qubits circuit)) ];
  let st = Random.State.make [| seed |] in
  let counts = Array.make (1 lsl Circuit.num_qubits circuit) 0 in
  for _ = 1 to shots do
    let x = run_shot st params circuit in
    counts.(x) <- counts.(x) + 1
  done;
  counts

(** [success_probability counts target] is the empirical probability of the
    outcome [target]. *)
let success_probability counts target =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0. else Float.of_int counts.(target) /. Float.of_int total

(** [runs_statistics ?seed params circuit ~shots ~runs] repeats
    {!run_shots} and reports, per basis state, the mean and standard
    deviation of the outcome frequency across runs — exactly the averaged
    histogram of the paper's Fig. 6 (3 runs × 1024 shots). *)
let runs_statistics ?(seed = 7) params circuit ~shots ~runs =
  let size = 1 lsl Circuit.num_qubits circuit in
  let freqs = Array.make_matrix runs size 0. in
  for r = 0 to runs - 1 do
    let counts = run_shots ~seed:(seed + (r * 7919)) params circuit ~shots in
    for x = 0 to size - 1 do
      freqs.(r).(x) <- Float.of_int counts.(x) /. Float.of_int shots
    done
  done;
  let mean = Array.make size 0. and stddev = Array.make size 0. in
  for x = 0 to size - 1 do
    let m = Array.fold_left (fun acc row -> acc +. row.(x)) 0. freqs /. Float.of_int runs in
    mean.(x) <- m;
    let v =
      Array.fold_left (fun acc row -> acc +. ((row.(x) -. m) ** 2.)) 0. freqs
      /. Float.of_int runs
    in
    stddev.(x) <- sqrt v
  done;
  (mean, stddev)
