(** Monte-Carlo noisy execution — the stand-in for the paper's IBM Quantum
    Experience backend (Fig. 6).

    Pauli-twirled circuit noise: after every gate each touched qubit
    suffers a uniformly random Pauli error with a gate-class-dependent
    probability, and each final readout bit flips independently. The
    default parameters are calibrated to published 2017-era IBM QX
    numbers (≈0.1% single-qubit gate error, ≈2–4% CNOT error, ≈3–8%
    readout error), which suffices to reproduce the {e shape} of Fig. 6:
    the correct hidden shift dominates the histogram at p ≈ 0.6 rather
    than p = 1.

    Shots are embarrassingly parallel, and {!run_shots} fans them out
    over the {!Par} domain pool. Determinism is by construction: shot
    [i]'s PRNG state derives from [(seed, i)] through a splitmix64-style
    hash (never from how shots are scheduled), per-domain histograms
    merge by integer addition, and telemetry accumulates per domain and
    flushes once from the caller — so any [jobs] count is bit-identical
    to the [~jobs:1] reference. *)

type params = {
  p1 : float; (* error probability per 1-qubit gate, per qubit *)
  p2 : float; (* error probability per 2+-qubit gate, per involved qubit *)
  readout : float; (* bit-flip probability per measured qubit *)
  gamma : float; (* amplitude-damping (T1 relaxation) per gate, per qubit *)
}

(** Calibrated to the IBM QX4/QX5 generation the paper used (within the
    published ranges; chosen so the E2 reproduction lands near the paper's
    measured success probability of ≈0.63 on the Fig. 4 circuit). *)
let ibm_qx2017 = { p1 = 0.001; p2 = 0.032; readout = 0.055; gamma = 0. }

(** [ibm_qx2017_t1] additionally models T1 relaxation between gates
    (trajectory method): a slightly more pessimistic backend. *)
let ibm_qx2017_t1 = { ibm_qx2017 with gamma = 0.004 }

(** [noiseless] turns the channel off (for testing the harness itself). *)
let noiseless = { p1 = 0.; p2 = 0.; readout = 0.; gamma = 0. }

(** [scale_params f p] multiplies every channel strength by [f], clamped
    into [0, 0.95] — the device layer's calibration-drift model (error
    rates slowly wander as the simulated calibration ages). *)
let scale_params f p =
  let c x = Float.max 0. (Float.min 0.95 (x *. f)) in
  { p1 = c p.p1; p2 = c p.p2; readout = c p.readout; gamma = c p.gamma }

(* ------------------------------------------------------------------ *)
(* Outcome histograms                                                  *)
(* ------------------------------------------------------------------ *)

(** An outcome histogram. Dense [int array] up to {!sparse_threshold}
    qubits; above that a hashtable keyed by outcome — shots ≪ 2^n there,
    and the dense array alone would cost [2^n] words per run. *)
type counts =
  | Dense of int array
  | Sparse of { size : int; tbl : (int, int) Hashtbl.t }

(** Widths above this store counts sparsely (2^20 ints = 8 MB). *)
let sparse_threshold = 20

let counts_make n =
  if n <= sparse_threshold then Dense (Array.make (1 lsl n) 0)
  else Sparse { size = 1 lsl n; tbl = Hashtbl.create 256 }

let counts_add c x k =
  match c with
  | Dense a -> a.(x) <- a.(x) + k
  | Sparse { tbl; _ } ->
      Hashtbl.replace tbl x (k + Option.value ~default:0 (Hashtbl.find_opt tbl x))

(** [count c x] is the number of shots that measured outcome [x]. *)
let count c x =
  match c with
  | Dense a -> a.(x)
  | Sparse { tbl; _ } -> Option.value ~default:0 (Hashtbl.find_opt tbl x)

(** [counts_size c] is the outcome-space size [2^n]. *)
let counts_size = function Dense a -> Array.length a | Sparse { size; _ } -> size

(** [counts_to_alist c] lists the nonzero [(outcome, count)] pairs in
    ascending outcome order (deterministic for either representation). *)
let counts_to_alist c =
  match c with
  | Dense a ->
      let acc = ref [] in
      for x = Array.length a - 1 downto 0 do
        if a.(x) > 0 then acc := (x, a.(x)) :: !acc
      done;
      !acc
  | Sparse { tbl; _ } ->
      List.sort compare (Hashtbl.fold (fun x k acc -> (x, k) :: acc) tbl [])

(** [iter_counts f c] applies [f outcome count] to every nonzero entry in
    ascending outcome order. *)
let iter_counts f c = List.iter (fun (x, k) -> f x k) (counts_to_alist c)

(** [total_counts c] sums the histogram (= the shot count). *)
let total_counts c =
  List.fold_left (fun acc (_, k) -> acc + k) 0 (counts_to_alist c)

(** [counts_of_array a] wraps a dense histogram (handy in tests). *)
let counts_of_array a = Dense (Array.copy a)

(** [counts_equal a b] compares histograms by content. *)
let counts_equal a b =
  counts_size a = counts_size b && counts_to_alist a = counts_to_alist b

(* Merge [src] into [dst] (in place) and return [dst]. Integer addition
   commutes, so merge order cannot affect the result. *)
let counts_merge dst src =
  iter_counts (fun x k -> counts_add dst x k) src;
  dst

(* ------------------------------------------------------------------ *)
(* Counter-based per-shot seeding                                      *)
(* ------------------------------------------------------------------ *)

(* splitmix64 finalizer: the standard 64-bit avalanche (Steele et al.),
   here used to turn (seed, shot index) into an independent PRNG seed per
   shot. Counter-based seeding is what makes parallel shots
   deterministic: shot i's stream never depends on which domain runs it
   or on how many shots ran before it. *)
let splitmix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let shot_state ~seed shot =
  let open Int64 in
  let x = add (mul (of_int seed) golden) (of_int shot) in
  let a = splitmix64 x in
  let b = splitmix64 (add x golden) in
  Random.State.make [| to_int a; to_int b; seed; shot |]

(* ------------------------------------------------------------------ *)
(* Single shots                                                        *)
(* ------------------------------------------------------------------ *)

(* One noisy execution; returns (measured outcome, injected error count).
   No telemetry — safe to call from pool workers. *)
let run_shot_raw st params circuit =
  let s = Statevector.init (Circuit.num_qubits circuit) in
  let errors = ref 0 in
  let random_pauli st q =
    match Random.State.int st 3 with
    | 0 -> Gate.X q
    | 1 -> Gate.Y q
    | _ -> Gate.Z q
  in
  Circuit.iter
    (fun g ->
      Statevector.apply s g;
      let qs = Gate.qubits g in
      let p = if List.length qs = 1 then params.p1 else params.p2 in
      List.iter
        (fun q ->
          if Random.State.float st 1. < p then begin
            incr errors;
            Statevector.apply s (random_pauli st q)
          end;
          if params.gamma > 0. then begin
            (* quantum-trajectory amplitude damping *)
            let p_jump = params.gamma *. Statevector.prob_of_qubit s q in
            let jump = Random.State.float st 1. < p_jump in
            Statevector.amplitude_damp s q ~gamma:params.gamma ~jump
          end)
        qs)
    circuit;
  let outcome = Statevector.sample st s in
  (* readout flips *)
  let rec flip q acc =
    if q >= Circuit.num_qubits circuit then acc
    else
      flip (q + 1)
        (if Random.State.float st 1. < params.readout then acc lxor (1 lsl q) else acc)
  in
  (flip 0 outcome, !errors)

(** [run_shot st params circuit] simulates one noisy execution and returns
    the measured basis state (all qubits, readout errors included). *)
let run_shot st params circuit =
  let result, errors = run_shot_raw st params circuit in
  if Obs.enabled () then begin
    Obs.count "qc.noise.shots";
    if errors > 0 then Obs.count ~by:errors "qc.noise.errors_injected";
    Obs.observe "qc.noise.errors_per_shot" (float_of_int errors)
  end;
  result

(* ------------------------------------------------------------------ *)
(* Shot batches                                                        *)
(* ------------------------------------------------------------------ *)

(* One-slot memo for the noiseless fast path: [runs_statistics], device
   retries and repeated shell/CLI invocations re-sample the same compiled
   circuit, and the simulated state plus its CDF are pure functions of
   that circuit. The statevector's plan cache already makes the
   re-simulation itself cheap — this skips the whole 2^n simulation and
   CDF rebuild. The sampler CDF shares the state's slab layout, so the
   memo never pins a single contiguous 2^n array on wide sharded runs,
   and draws are bit-identical for any shard-bits setting. Main-domain
   only (like Obs); workers never call run_shots. *)
let sampler_memo : (string * Statevector.sampler) option ref = ref None

let sampler_for circuit =
  let key = Circuit.structural_key circuit in
  match !sampler_memo with
  | Some (k, smp) when String.equal k key ->
      if Obs.enabled () then Obs.count "qc.noise.sampler_reuse";
      smp
  | _ ->
      let smp = Statevector.sampler (Statevector.run circuit) in
      sampler_memo := Some (key, smp);
      smp

(** [run_shots ?seed ?jobs params circuit ~shots] returns the histogram of
    measured basis states over [shots] executions, fanned out over [jobs]
    worker domains (default {!Par.default_jobs}). The histogram is
    bit-identical for every [jobs] value: [~jobs:1] defines the reference
    result. *)
let run_shots ?(seed = 0xC0FFEE) ?jobs params circuit ~shots =
  Obs.with_span "qc.noise.run_shots" @@ fun () ->
  let n = Circuit.num_qubits circuit in
  let jobs =
    let j = match jobs with Some j -> max 1 j | None -> Par.default_jobs () in
    min j (max 1 shots)
  in
  if Obs.enabled () then
    Obs.add_attrs
      [ ("shots", Obs.Int shots); ("qubits", Obs.Int n); ("jobs", Obs.Int jobs) ];
  let errors = Array.make (max 1 shots) 0 in
  let counts =
    if params.p1 = 0. && params.p2 = 0. && params.gamma = 0. then begin
      (* Without gate noise every shot runs the same circuit: simulate
         once (memoized across calls — one plan, one sampler CDF), then
         draw each readout from the shared cumulative table (binary
         search instead of a 2^n scan per shot). Still seeded per shot,
         so the result is jobs-independent like the general path. *)
      let smp = sampler_for circuit in
      let c = counts_make n in
      for shot = 0 to shots - 1 do
        let st = shot_state ~seed shot in
        let x = Statevector.sample_with smp st in
        let x = ref x in
        for q = 0 to n - 1 do
          if Random.State.float st 1. < params.readout then x := !x lxor (1 lsl q)
        done;
        counts_add c !x 1
      done;
      c
    end
    else if jobs = 1 then begin
      let c = counts_make n in
      for shot = 0 to shots - 1 do
        let x, e = run_shot_raw (shot_state ~seed shot) params circuit in
        counts_add c x 1;
        errors.(shot) <- e
      done;
      c
    end
    else
      (* Chunk the shot range; each task accumulates a private histogram
         (and per-shot error counts at disjoint indices), then the chunks
         merge in index order on the calling domain. *)
      Par.with_pool ~jobs (fun pool ->
          Par.map_reduce pool ~tasks:jobs
            ~map:(fun i ->
              let lo = shots * i / jobs and hi = shots * (i + 1) / jobs in
              let local = counts_make n in
              for shot = lo to hi - 1 do
                let x, e = run_shot_raw (shot_state ~seed shot) params circuit in
                counts_add local x 1;
                errors.(shot) <- e
              done;
              local)
            ~reduce:counts_merge ~init:(counts_make n))
  in
  (* telemetry accumulated above, flushed once from the calling domain —
     workers never touch the (single-domain) Obs state *)
  if Obs.enabled () then begin
    Obs.count ~by:shots "qc.noise.shots";
    let total_errors = Array.fold_left ( + ) 0 errors in
    if total_errors > 0 then Obs.count ~by:total_errors "qc.noise.errors_injected";
    for shot = 0 to shots - 1 do
      Obs.observe "qc.noise.errors_per_shot" (float_of_int errors.(shot))
    done
  end;
  counts

(** [success_probability counts target] is the empirical probability of the
    outcome [target]. *)
let success_probability counts target =
  let total = total_counts counts in
  if total = 0 then 0. else Float.of_int (count counts target) /. Float.of_int total

(** [runs_statistics ?seed ?jobs params circuit ~shots ~runs] repeats
    {!run_shots} and reports, per basis state, the mean and standard
    deviation of the outcome frequency across runs — exactly the averaged
    histogram of the paper's Fig. 6 (3 runs × 1024 shots). *)
let runs_statistics ?(seed = 7) ?jobs params circuit ~shots ~runs =
  let size = 1 lsl Circuit.num_qubits circuit in
  let freqs = Array.make_matrix runs size 0. in
  for r = 0 to runs - 1 do
    let counts = run_shots ~seed:(seed + (r * 7919)) ?jobs params circuit ~shots in
    for x = 0 to size - 1 do
      freqs.(r).(x) <- Float.of_int (count counts x) /. Float.of_int shots
    done
  done;
  let mean = Array.make size 0. and stddev = Array.make size 0. in
  for x = 0 to size - 1 do
    let m = Array.fold_left (fun acc row -> acc +. row.(x)) 0. freqs /. Float.of_int runs in
    mean.(x) <- m;
    let v =
      Array.fold_left (fun acc row -> acc +. ((row.(x) -. m) ** 2.)) 0. freqs
      /. Float.of_int runs
    in
    stddev.(x) <- sqrt v
  done;
  (mean, stddev)
