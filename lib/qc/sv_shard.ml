(** Sharded amplitude storage for the dense statevector.

    The state of [n] qubits is split into [2^(n-sb)] {e slabs} of [2^sb]
    amplitudes each (split unboxed re/im float arrays per slab); basis
    index bit [q] is the value of qubit [q], and global index [x] lives
    in slab [x lsr sb] at local offset [x land smask]. States of at most
    {!single_slab_max} qubits keep a single slab — exactly the flat
    PR 8 layout, byte for byte — while wider states shard so that

    - allocation stays incremental: hundreds of ~512 kB slabs are far
      cheaper to allocate and collect than two multi-hundred-MB arrays
      (measured ~13x at 24 qubits), which is most of a cold run's cost;
    - kernels whose touched qubits all sit below the slab bit run
      slab-by-slab over the domain pool with zero cross-slab traffic
      and zero locks;
    - cross-slab passes (high-bit permutations and butterflies) stream
      whole slabs in lockstep with sequential slab-local writes.

    The slab size never changes results: every kernel performs the same
    per-amplitude float arithmetic in the same order for any shard-bits
    setting, so amplitudes are bit-identical across configurations —
    the shard analogue of the PR 3/PR 8 [--jobs] determinism contract. *)

(** Raised (instead of dying with [Out_of_memory]) when a requested
    statevector exceeds the configured amplitude cap. The message is a
    single [sv.alloc:]-tagged line; both CLIs print it to stderr and
    exit 2. *)
exception Unsupported of string

(* Default amplitude cap: 2^28 amplitudes = 4 GB of state. Raisable via
   the environment because the right cap is a property of the machine,
   not the build. *)
let default_max_qubits = 28

(** [max_qubits ()] is the widest statevector {!init} will allocate:
    [DAUTOQ_SV_MAX_QUBITS] when set to a positive integer, else
    {!default_max_qubits}. Read dynamically so tests and long-lived
    services can adjust it. *)
let max_qubits () =
  match Sys.getenv_opt "DAUTOQ_SV_MAX_QUBITS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> n
      | _ -> default_max_qubits)
  | None -> default_max_qubits

(* --- shard-bits selection --- *)

(* Below this width a single slab wins: the flat layout has no indirection
   and every historical test/bench regime (≤ 20q) keeps its exact code
   path. 2^20 amplitudes = 16 MB of state, still a cheap allocation. *)
let single_slab_max = 20

(* Auto-sharded slabs cap at 2^16 amplitudes (two 512 kB arrays): big
   enough that slab dispatch is noise, small enough that a slab pass is
   cache-friendly and allocation never triggers a huge contiguous
   request. *)
let max_auto_slab_bits = 16

let shard_override = ref None

(** [set_shard_bits (Some s)] forces every subsequently allocated state
    to slabs of [2^s] amplitudes (clamped to the state's width); [None]
    restores the automatic heuristic. The CLIs' [--shard-bits] flag. *)
let set_shard_bits v =
  shard_override := (match v with Some s when s >= 1 -> Some s | _ -> None)

(** [shard_bits_setting ()] is the current override, if any. *)
let shard_bits_setting () = !shard_override

let ceil_log2 v =
  let b = ref 0 in
  while 1 lsl !b < v do
    incr b
  done;
  !b

(* Heuristic: keep slabs at 2^16 unless spreading the domain pool needs
   more of them — at least 4 slabs per pool slot so slab-local kernels
   load-balance, never fewer than 2 slabs once sharding at all. *)
let auto_slab_bits n =
  if n <= single_slab_max then n
  else
    let spread = ceil_log2 (4 * Par.default_jobs ()) in
    max 1 (min max_auto_slab_bits (n - max 4 spread))

let slab_bits_for n =
  match !shard_override with
  | Some s -> max 1 (min s n)
  | None -> auto_slab_bits n

(* [sl_re]/[sl_im] are mutable so full-width permutation kernels can
   ping-pong into a scratch slab set and swap, instead of copying back.
   Nothing outside the statevector modules holds an alias to the arrays
   across a run. *)
type t = {
  n : int;
  sb : int; (* slab bits: each slab holds 2^sb amplitudes *)
  smask : int; (* (1 lsl sb) - 1 *)
  mutable sl_re : float array array;
  mutable sl_im : float array array;
}

let alloc_slabs ~slabs ~slab_size =
  Array.init slabs (fun _ -> Array.make slab_size 0.)

(** [init n] is |0…0⟩, sharded per {!slab_bits_for}. Raises {!Unsupported}
    past {!max_qubits} — a one-line, catchable refusal instead of an
    allocation crash. *)
let init n =
  if n < 1 then invalid_arg "Statevector.init: bad qubit count";
  let cap = max_qubits () in
  if n > cap then
    raise
      (Unsupported
         (Printf.sprintf
            "sv.alloc: %d qubits (2^%d amplitudes) exceed the statevector \
             cap of %d qubits; raise DAUTOQ_SV_MAX_QUBITS, or use the \
             stabilizer backend (Clifford circuits) / the noisy backend's \
             sparse histograms for wider runs"
            n n cap));
  let sb = slab_bits_for n in
  let slabs = 1 lsl (n - sb) and slab_size = 1 lsl sb in
  let s =
    { n; sb; smask = slab_size - 1;
      sl_re = alloc_slabs ~slabs ~slab_size;
      sl_im = alloc_slabs ~slabs ~slab_size }
  in
  s.sl_re.(0).(0) <- 1.;
  if slabs > 1 && Obs.enabled () then Obs.count ~by:slabs "sv.shard.slabs";
  s

(* All-zero flat scratch state (single slab regardless of the override):
   the plan builder simulates tiny basis columns on these. *)
let make_flat n =
  let size = 1 lsl n in
  { n; sb = n; smask = size - 1;
    sl_re = [| Array.make size 0. |];
    sl_im = [| Array.make size 0. |] }

let num_qubits s = s.n
let size s = 1 lsl s.n
let slab_count s = Array.length s.sl_re
let slab_size s = s.smask + 1

(** [sharded s] holds when the state spans more than one slab (the flat
    fast paths apply otherwise). *)
let sharded s = s.sb < s.n

(* Global-index accessors. Hot loops use the slab arrays directly; these
   serve cold paths (amplitude readout, trajectory channels) and the
   generic cross-slab fallbacks. *)
let get_re s x = (s.sl_re.(x lsr s.sb)).(x land s.smask)
let get_im s x = (s.sl_im.(x lsr s.sb)).(x land s.smask)
let set_re s x v = (s.sl_re.(x lsr s.sb)).(x land s.smask) <- v
let set_im s x v = (s.sl_im.(x lsr s.sb)).(x land s.smask) <- v

(** [amplitude s x] is the complex amplitude of basis state [x]. *)
let amplitude s x = { Complex.re = get_re s x; im = get_im s x }

(** [prob s x] is the outcome probability of basis state [x]. *)
let prob s x =
  let r = get_re s x and i = get_im s x in
  (r *. r) +. (i *. i)

(* Iterate the slab-aligned pieces of global range [lo, hi):
   [f slab base lo_local hi_local], with [base = slab lsl sb]. Reductions
   use this to walk slabs in ascending global order, which keeps their
   float summation order identical to the flat layout's. *)
let iter_pieces s lo hi f =
  let i = ref lo in
  while !i < hi do
    let sl = !i lsr s.sb in
    let base = sl lsl s.sb in
    let lo_l = !i - base in
    let hi_l = min (hi - base) (s.smask + 1) in
    f sl base lo_l hi_l;
    i := base + hi_l
  done
