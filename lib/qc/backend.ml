(** Unified execution targets — the interchangeable "backends" of the
    paper's Sec. VI ProjectQ discussion, behind one signature.

    A backend consumes a compiled Clifford+T circuit and produces an
    {!outcome}: a measured basis state (simulators), an outcome histogram
    (the noisy Monte-Carlo backend), or exported text (QASM, Q#, ASCII
    drawing). The flow, the shell ([run <target>]) and the CLIs
    ([--target]) all hand circuits to backends uniformly; adding a target
    means adding one value of type {!t}, not editing the flow. *)

exception Unsupported of string
(** The circuit cannot run on this backend (too wide, non-Clifford, …) or
    the backend spec is malformed; the message names the offender. *)

let failf fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(** Result-validation verdict of a resilient device job (the device
    layer feeds it back through {!outcome}): [Validated] — all requested
    shots delivered by the primary backend with a consistent histogram;
    [Degraded] — usable but imperfect (short delivery, fallback backend,
    distribution drift), with the reasons; [Failed] — nothing usable. *)
type verdict = Validated | Degraded of string | Failed of string

let verdict_to_string = function
  | Validated -> "validated"
  | Degraded why -> "degraded: " ^ why
  | Failed why -> "failed: " ^ why

type outcome =
  | Measured of { outcome : int; deterministic : bool }
      (** a single computational-basis readout of every qubit *)
  | Histogram of (int * float) list
      (** empirical outcome frequencies, most frequent first *)
  | Job of {
      histogram : (int * float) list; (* frequencies of delivered shots *)
      delivered : int;
      requested : int;
      verdict : verdict;
    }  (** a resilient device job: salvaged histogram plus accounting *)
  | Exported of string  (** rendered text: QASM, Q# source, drawing *)

type t = {
  name : string;
  doc : string;
  run : Circuit.t -> outcome;
}

let pp_outcome ppf = function
  | Measured { outcome; deterministic } ->
      Fmt.pf ppf "measured %d (%s)" outcome
        (if deterministic then "deterministic" else "one random branch")
  | Histogram freqs ->
      Fmt.pf ppf "@[<v>%a@]"
        Fmt.(
          list ~sep:cut (fun ppf (x, f) -> Fmt.pf ppf "%6d  %.4f" x f))
        freqs
  | Job { histogram; delivered; requested; verdict } ->
      Fmt.pf ppf "@[<v>%adelivered %d/%d shots, %s@]"
        Fmt.(list ~sep:nop (fun ppf (x, f) -> Fmt.pf ppf "%6d  %.4f@ " x f))
        histogram delivered requested (verdict_to_string verdict)
  | Exported text -> Fmt.string ppf text

let outcome_to_string o = Fmt.str "%a" pp_outcome o

(* --- the built-in targets --- *)

(* Every backend execution is a telemetry span named after the family. *)
let make ~name ~doc run =
  { name; doc; run = (fun c -> Obs.with_span ("qc.backend." ^ name) (fun () -> run c)) }

let statevector =
  make ~name:"statevector"
    ~doc:"dense noiseless simulation; reports the most likely outcome"
    (fun c ->
        (* width is bounded by the statevector's own allocation guard
           (DAUTOQ_SV_MAX_QUBITS); refusing here keeps the error a
           Backend.Unsupported like every other target mismatch *)
        let cap = Statevector.max_qubits () in
        if Circuit.num_qubits c > cap then
          failf "statevector: %d qubits exceed the dense cap of %d" (Circuit.num_qubits c)
            cap;
        let sv = Statevector.run c in
        let x = Statevector.most_likely sv in
        Measured { outcome = x; deterministic = Statevector.is_basis_state ~eps:1e-6 sv x })

let stabilizer =
  make ~name:"stabilizer"
    ~doc:"CHP tableau simulation; Clifford circuits only, polynomial in width"
    (fun c ->
      if not (Stabilizer.is_clifford_circuit c) then
        failf "stabilizer: circuit contains non-Clifford gates";
      let outcome, deterministic = Stabilizer.measure_all (Stabilizer.run c) in
      Measured { outcome; deterministic })

(* The backend is named by its family ("noisy", matching the catalog and
   error messages); the instance parameters live in [doc]. *)
let noisy ?(seed = 0xC0FFEE) ?(shots = 1024) ?jobs params =
  make ~name:"noisy"
    ~doc:
      (Printf.sprintf
         "Monte-Carlo shots with depolarizing + readout noise (IBM-QX-style); \
          shots=%d, seed=%d%s"
         shots seed
         (match jobs with None -> "" | Some j -> Printf.sprintf ", jobs=%d" j))
    (fun c ->
      let counts = Noise.run_shots ~seed ?jobs params c ~shots in
      let freqs = ref [] in
      Noise.iter_counts
        (fun x k -> freqs := (x, Float.of_int k /. Float.of_int shots) :: !freqs)
        counts;
      Histogram (List.sort (fun (_, a) (_, b) -> Float.compare b a) !freqs))

let qasm =
  make ~name:"qasm" ~doc:"OpenQASM 2.0 export" (fun c ->
      Exported (Qasm.to_string ~measure:false c))

let qsharp ?(operation = "GeneratedOracle") () =
  make ~name:"qsharp" ~doc:"Q# operation source export" (fun c ->
      Exported (Qsharp_gen.operation ~name:operation c))

let draw =
  make ~name:"draw" ~doc:"ASCII circuit rendering" (fun c ->
      Exported (Draw.to_string c))

(* --- spec parsing: "name" or "name:arg[,arg…]" --- *)

let known = [ "statevector"; "stabilizer"; "noisy"; "qasm"; "qsharp"; "draw" ]

(** [catalog ()] lists [(family-name, doc)] pairs for help screens. Every
    instance reports its family name; instance parameters (e.g. the noisy
    backend's shot count) appear in [doc]. *)
let catalog () =
  List.map
    (fun b -> (b.name, b.doc))
    [ statevector; stabilizer; noisy Noise.ibm_qx2017; qasm; qsharp (); draw ]

let int_param name value =
  match int_of_string_opt value with
  | Some i when i > 0 -> i
  | _ -> failf "%s: expected a positive integer, got %s" name value

(** [of_spec spec] resolves a backend spec string:
    [statevector | stabilizer | noisy[:shots=N[,seed=N]] | qasm |
     qsharp[:OperationName] | draw]. Raises {!Unsupported} naming the
    offending token. *)
let of_spec spec =
  let name, arg =
    match String.index_opt spec ':' with
    | None -> (String.trim spec, None)
    | Some i ->
        ( String.trim (String.sub spec 0 i),
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let no_arg () =
    match arg with
    | None -> ()
    | Some a -> failf "backend %s takes no argument (got %s)" name a
  in
  match name with
  | "statevector" | "sv" ->
      no_arg ();
      statevector
  | "stabilizer" | "stabsim" | "chp" ->
      no_arg ();
      stabilizer
  | "noisy" ->
      let shots = ref 1024 and seed = ref 0xC0FFEE and jobs = ref None in
      Option.iter
        (fun a ->
          List.iter
            (fun kv ->
              match String.split_on_char '=' kv with
              | [ "shots"; v ] -> shots := int_param "noisy:shots" v
              | [ "seed"; v ] -> seed := int_param "noisy:seed" v
              | [ "jobs"; v ] -> jobs := Some (int_param "noisy:jobs" v)
              | _ ->
                  failf "noisy: unknown parameter %s (expected shots=N, seed=N or jobs=N)"
                    kv)
            (String.split_on_char ',' a))
        arg;
      noisy ~seed:!seed ~shots:!shots ?jobs:!jobs Noise.ibm_qx2017
  | "qasm" ->
      no_arg ();
      qasm
  | "qsharp" -> qsharp ?operation:arg ()
  | "draw" ->
      no_arg ();
      draw
  | other -> failf "unknown backend %s (known: %s)" other (String.concat ", " known)
