(** Quantum circuits: ordered gate cascades on a fixed qubit count. *)

type t = { n : int; len : int; rev_gates : Gate.t list }

(** [empty n] is the identity circuit on [n] qubits. The container itself
    scales to large registers (the stabilizer backend consumes wide
    Clifford circuits); the dense backends impose their own width caps. *)
let empty n =
  if n < 1 || n > 4096 then invalid_arg "Circuit.empty: bad qubit count";
  { n; len = 0; rev_gates = [] }

let check c g =
  List.iter
    (fun q -> if q < 0 || q >= c.n then invalid_arg "Circuit: qubit out of range")
    (Gate.qubits g)

(** [add c g] appends [g]. *)
let add c g =
  check c g;
  { c with len = c.len + 1; rev_gates = g :: c.rev_gates }

let add_list c gs = List.fold_left add c gs
let of_gates n gs = add_list (empty n) gs

(** [of_rev_gates n gs] builds a circuit from a {e reversed} gate list
    (last-applied gate first) — the natural accumulator shape, so callers
    that build gate lists by consing need not reverse before handing
    over. *)
let of_rev_gates n rev_gates =
  let c = { (empty n) with len = List.length rev_gates; rev_gates } in
  List.iter (check c) rev_gates;
  c

(** [gates c] lists gates in application order. *)
let gates c = List.rev c.rev_gates

let num_qubits c = c.n
let num_gates c = c.len

(** [iter f c] applies [f] to every gate in application order. Unlike
    [List.iter f (gates c)] this allocates a single scratch array instead
    of a reversed list — the form the hot simulator/export loops use. *)
let iter f c =
  let a = Array.of_list c.rev_gates in
  for i = Array.length a - 1 downto 0 do
    f (Array.unsafe_get a i)
  done

(** [fold f init c] folds over the gates in application order, with the
    same single-array allocation as {!iter}. *)
let fold f init c =
  let a = Array.of_list c.rev_gates in
  let acc = ref init in
  for i = Array.length a - 1 downto 0 do
    acc := f !acc (Array.unsafe_get a i)
  done;
  !acc

(** [to_array c] is the gates in application order as a fresh array. *)
let to_array c =
  let a = Array.of_list c.rev_gates in
  let len = Array.length a in
  for i = 0 to (len / 2) - 1 do
    let tmp = a.(i) in
    a.(i) <- a.(len - 1 - i);
    a.(len - 1 - i) <- tmp
  done;
  a

(** [append a b] runs [a] then [b]. *)
let append a b =
  if a.n <> b.n then invalid_arg "Circuit.append: qubit mismatch";
  { a with len = a.len + b.len; rev_gates = b.rev_gates @ a.rev_gates }

(** [dagger c] is the adjoint circuit: each gate inverted, order
    reversed. *)
let dagger c = { c with rev_gates = List.rev_map Gate.adjoint c.rev_gates }

(** [widen c n] reinterprets [c] on [n >= num_qubits c] qubits. *)
let widen c n =
  if n < c.n then invalid_arg "Circuit.widen: shrinking";
  { c with n }

(** [map_qubits ~n f c] relabels qubits through [f]. *)
let map_qubits ~n f c =
  let remap g =
    let open Gate in
    match g with
    | X q -> X (f q)
    | Y q -> Y (f q)
    | Z q -> Z (f q)
    | H q -> H (f q)
    | S q -> S (f q)
    | Sdg q -> Sdg (f q)
    | T q -> T (f q)
    | Tdg q -> Tdg (f q)
    | Rz (a, q) -> Rz (a, f q)
    | Cnot (a, b) -> Cnot (f a, f b)
    | Cz (a, b) -> Cz (f a, f b)
    | Swap (a, b) -> Swap (f a, f b)
    | Ccx (a, b, c) -> Ccx (f a, f b, f c)
    | Ccz (a, b, c) -> Ccz (f a, f b, f c)
    | Mcx (cs, t) -> Mcx (List.map f cs, f t)
    | Mcz qs -> Mcz (List.map f qs)
  in
  of_rev_gates n (List.map remap c.rev_gates)

(** [structural_key c] is a compact string identifying [c] up to exact
    structural equality (qubit count plus every gate in application
    order; [Rz] angles rendered losslessly with [%h]) — the index used by
    the pass-manager's circuit-level result cache. *)
let structural_key c =
  let buf = Buffer.create (16 + (8 * c.len)) in
  Buffer.add_string buf (string_of_int c.n);
  let q i = Buffer.add_string buf (string_of_int i) in
  let qs l = List.iteri (fun i x -> if i > 0 then Buffer.add_char buf ','; q x) l in
  let add (g : Gate.t) =
    Buffer.add_char buf ';';
    Buffer.add_string buf (Gate.name g);
    Buffer.add_char buf ' ';
    let open Gate in
    match g with
    | X a | Y a | Z a | H a | S a | Sdg a | T a | Tdg a -> q a
    | Rz (angle, a) ->
        Buffer.add_string buf (Printf.sprintf "%h@" angle);
        q a
    | Cnot (a, b) | Cz (a, b) | Swap (a, b) -> qs [ a; b ]
    | Ccx (a, b, t) | Ccz (a, b, t) -> qs [ a; b; t ]
    | Mcx (cs, t) -> qs (cs @ [ t ])
    | Mcz l -> qs l
  in
  List.iter add (List.rev c.rev_gates);
  Buffer.contents buf

(** [t_count c] counts T and T† gates. *)
let t_count c =
  List.fold_left (fun acc g -> if Gate.is_t g then acc + 1 else acc) 0 c.rev_gates

(** [count_matching p c] counts gates satisfying [p]. *)
let count_matching p c =
  List.fold_left (fun acc g -> if p g then acc + 1 else acc) 0 c.rev_gates

(* Greedy layering: a gate goes into the earliest layer after the busiest of
   its qubits. [weight] selects which gates advance the depth counter. *)
let depth_by weight c =
  let avail = Array.make c.n 0 in
  fold
    (fun acc g ->
      let qs = Gate.qubits g in
      let start = List.fold_left (fun m q -> max m avail.(q)) 0 qs in
      let d = start + weight g in
      List.iter (fun q -> avail.(q) <- d) qs;
      max acc d)
    0 c

(** [depth c] is the circuit depth under greedy ASAP layering. *)
let depth c = depth_by (fun _ -> 1) c

(** [t_depth c] is the number of T-layers (only T/T† advance the count) —
    the latency measure the T-par paper optimizes. *)
let t_depth c = depth_by (fun g -> if Gate.is_t g then 1 else 0) c

let pp ppf c =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Gate.pp) (gates c)
