(** Q# code generation (the paper's Sec. VIII flow: RevKit runs as a
    pre-processor that emits the synthesized oracle as a native Q#
    operation — Fig. 10). *)

open Gate

let gate_stmt g =
  let q i = Printf.sprintf "qubits[%d]" i in
  match g with
  | X a -> Printf.sprintf "X(%s);" (q a)
  | Y a -> Printf.sprintf "Y(%s);" (q a)
  | Z a -> Printf.sprintf "Z(%s);" (q a)
  | H a -> Printf.sprintf "H(%s);" (q a)
  | S a -> Printf.sprintf "S(%s);" (q a)
  | Sdg a -> Printf.sprintf "(Adjoint S)(%s);" (q a)
  | T a -> Printf.sprintf "T(%s);" (q a)
  | Tdg a -> Printf.sprintf "(Adjoint T)(%s);" (q a)
  | Rz (x, a) -> Printf.sprintf "Rz(%.17g, %s);" x (q a)
  | Cnot (a, b) -> Printf.sprintf "CNOT(%s, %s);" (q a) (q b)
  | Cz (a, b) -> Printf.sprintf "(Controlled Z)([%s], %s);" (q a) (q b)
  | Swap (a, b) -> Printf.sprintf "SWAP(%s, %s);" (q a) (q b)
  | Ccx (a, b, c) -> Printf.sprintf "CCNOT(%s, %s, %s);" (q a) (q b) (q c)
  | Ccz (a, b, c) -> Printf.sprintf "(Controlled Z)([%s, %s], %s);" (q a) (q b) (q c)
  | Mcx (cs, t) ->
      Printf.sprintf "(Controlled X)([%s], %s);" (String.concat ", " (List.map q cs)) (q t)
  | Mcz qs -> (
      match List.rev qs with
      | t :: cs ->
          Printf.sprintf "(Controlled Z)([%s], %s);"
            (String.concat ", " (List.map q (List.rev cs)))
            (q t)
      | [] -> invalid_arg "Qsharp_gen: empty Mcz")

(** [operation ~namespace ~name circuit] renders the circuit as a Q#
    operation with auto-generated adjoint and controlled variants, in the
    style of the paper's Fig. 10 [PermutationOracle]. *)
let operation ?(namespace = "Repro.Quantum.PermOracle") ~name circuit =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "namespace %s {" namespace;
  add "    open Microsoft.Quantum.Primitive;";
  add "";
  add "    operation %s (qubits : Qubit[]) : ()" name;
  add "    {";
  add "        body {";
  Circuit.iter (fun g -> add "            %s" (gate_stmt g)) circuit;
  add "        }";
  add "        adjoint auto";
  add "        controlled auto";
  add "        controlled adjoint auto";
  add "    }";
  add "}";
  Buffer.contents buf
