(** Peephole optimization on quantum circuits.

    Complements {!Tpar}: cancels adjacent inverse pairs (H·H, X·X,
    CNOT·CNOT, S·S†, …), fuses adjacent rotations on the same qubit
    (T·T = S, S·S = Z, Rz·Rz), and lets gates commute across gates acting
    on disjoint qubits to meet their partners. Applied to a fixpoint. *)

open Gate

let disjoint a b =
  let qa = qubits a and qb = qubits b in
  not (List.exists (fun q -> List.mem q qb) qa)

(* Diagonal single-qubit phase gates commute with each other on the same
   qubit and with controls; we only use same-qubit fusion. *)
let eighths_of = function
  | Z _ -> Some 4
  | S _ -> Some 2
  | Sdg _ -> Some 6
  | T _ -> Some 1
  | Tdg _ -> Some 7
  | _ -> None

let target_of_phase = function
  | Z q | S q | Sdg q | T q | Tdg q | Rz (_, q) -> Some q
  | _ -> None

(* Try to fuse gates a and b (adjacent after commuting); result is the
   replacement list, or None if not fusable. *)
let fuse a b =
  if a = adjoint b then Some []
  else
    match (target_of_phase a, target_of_phase b) with
    | Some qa, Some qb when qa = qb -> (
        match (eighths_of a, eighths_of b) with
        | Some ka, Some kb -> Some (Tpar.phase_gates_of ~eighths:(ka + kb) ~angle:0. qa)
        | _ -> (
            match (a, b) with
            | Rz (x, _), Rz (y, _) ->
                if Float.abs (x +. y) < 1e-12 then Some [] else Some [ Rz (x +. y, qa) ]
            | _ -> None))
    | _ -> None

let rewrite_once gates =
  let n = Array.length gates in
  let result = ref None in
  (try
     for i = 0 to n - 2 do
       let rec probe j =
         if j >= n then ()
         else
           match fuse gates.(i) gates.(j) with
           | Some replacement ->
               (* gates i and j fuse; since everything in between is
                  disjoint from gate i, the replacement stays at j. *)
               let out = ref [] in
               for k = n - 1 downto 0 do
                 if k = j then out := replacement @ !out
                 else if k <> i then out := gates.(k) :: !out
               done;
               result := Some (Array.of_list !out);
               raise Exit
           | None ->
               (* phase gates on the same qubit commute with each other even
                  when not fusable with the scan gate *)
               let commutes =
                 disjoint gates.(i) gates.(j)
                 ||
                 match (target_of_phase gates.(i), target_of_phase gates.(j)) with
                 | Some qa, Some qb -> qa = qb
                 | _ -> false
               in
               if commutes then probe (j + 1) else ()
       in
       probe (i + 1)
     done
   with Exit -> ());
  !result

(** [simplify c] applies cancellation/fusion to a fixpoint. The unitary is
    preserved exactly. *)
let simplify c =
  let gates = ref (Circuit.to_array c) in
  let budget = ref ((Array.length !gates * 8) + 64) in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    decr budget;
    match rewrite_once !gates with
    | Some g -> gates := g
    | None -> continue_ := false
  done;
  Circuit.of_gates (Circuit.num_qubits c) (Array.to_list !gates)
