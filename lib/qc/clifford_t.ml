(** Mapping reversible circuits into the Clifford+T gate set (the paper's
    refs [40, 41, 42] and its [cliffordt] command).

    Toffoli gates expand into the standard 7-T network; gates with three or
    more controls are lowered with a Barenco-style V-chain over clean
    ancilla qubits, using Maslov's {e relative-phase} Toffoli (4 T gates)
    for the compute/uncompute ladder — the optimization of ref [42].
    Negative controls are absorbed by conjugation with X. *)

module Bitops = Logic.Bitops
open Gate

(** [of_rcircuit rc] converts an MCT cascade into a quantum circuit of
    {e high-level} X/CNOT/Toffoli/Mcx gates (negative controls conjugated
    away). No ancillae are introduced at this stage. *)
let of_rcircuit rc =
  let n = Rev.Rcircuit.num_lines rc in
  let gates =
    List.concat_map
      (fun (g : Rev.Mct.t) ->
        let negs = Bitops.bits_of g.Rev.Mct.neg n in
        let flips = List.map (fun q -> X q) negs in
        let ctrls = Bitops.bits_of (g.Rev.Mct.pos lor g.Rev.Mct.neg) n in
        let core =
          match ctrls with
          | [] -> X g.Rev.Mct.target
          | [ c ] -> Cnot (c, g.Rev.Mct.target)
          | [ c1; c2 ] -> Ccx (c1, c2, g.Rev.Mct.target)
          | cs -> Mcx (cs, g.Rev.Mct.target)
        in
        flips @ (core :: flips))
      (Rev.Rcircuit.gates rc)
  in
  Circuit.of_gates n gates

(** The canonical 7-T Clifford+T realization of CCZ(a,b,c). *)
let ccz_7t a b c =
  [ Cnot (b, c); Tdg c; Cnot (a, c); T c; Cnot (b, c); Tdg c; Cnot (a, c);
    T b; T c; Cnot (a, b); T a; Tdg b; Cnot (a, b) ]

(** Toffoli = H-conjugated CCZ. *)
let toffoli_7t a b t = (H t :: ccz_7t a b t) @ [ H t ]

(** Maslov's relative-phase Toffoli (RCCX, 4 T): implements
    |a,b,t⟩ ↦ |a,b,t⊕ab⟩ up to relative phases that cancel when the gate is
    used in compute/uncompute pairs around operations that do not touch
    a, b or t. *)
let rccx a b t =
  [ H t; T t; Cnot (b, t); Tdg t; Cnot (a, t); T t; Cnot (b, t); Tdg t; H t ]

let rccx_dag a b t = List.rev_map Gate.adjoint (rccx a b t)

(* Lower one Mcx with k >= 3 positive controls using clean ancillae
   [anc.(0) .. anc.(k-3)]. The ladder computes prefix conjunctions with
   relative-phase Toffolis; the middle gate is a true Toffoli. *)
let lower_mcx ~rccx_ladder cs t anc =
  let k = List.length cs in
  assert (k >= 3);
  let cs = Array.of_list cs in
  let pair = if rccx_ladder then rccx else fun a b t -> toffoli_7t a b t in
  let unpair = if rccx_ladder then rccx_dag else fun a b t -> List.rev_map Gate.adjoint (toffoli_7t a b t) in
  (* compute: anc.(0) = c0 ∧ c1; anc.(i) = anc.(i-1) ∧ c(i+1) *)
  let compute = ref [] in
  let uncompute = ref [] in
  for i = 0 to k - 3 do
    let a = if i = 0 then cs.(0) else anc.(i - 1) in
    let b = cs.(i + 1) in
    compute := !compute @ pair a b anc.(i);
    uncompute := unpair a b anc.(i) @ !uncompute
  done;
  !compute @ toffoli_7t anc.(k - 3) cs.(k - 1) t @ !uncompute

(** Options for {!compile}. [rccx_ladder] (default true) uses relative-phase
    Toffolis in the ancilla ladder; [keep_rz] (default true) passes Rz
    through unchanged (set false to reject non-Clifford+T rotations). *)
type options = { rccx_ladder : bool; keep_rz : bool }

let default_options = { rccx_ladder = true; keep_rz = true }

(** [compile ?options c] rewrites every gate of [c] into
    {X, Y, Z, H, S, S†, T, T†, CNOT} (plus Rz if allowed). Multiply
    controlled gates draw from a shared block of clean ancilla qubits
    appended above the original register; the result returns them to |0⟩.
    Returns the compiled circuit together with the number of ancillae
    added. *)
let compile ?(options = default_options) c =
  Obs.with_span "qc.cliffordt.compile" @@ fun () ->
  let n = Circuit.num_qubits c in
  let max_anc =
    Circuit.fold
      (fun acc g ->
        match g with
        | Mcx (cs, _) -> max acc (List.length cs - 2)
        | Mcz qs -> max acc (List.length qs - 3)
        | _ -> acc)
      0 c
  in
  let total = n + max_anc in
  let anc = Array.init max_anc (fun i -> n + i) in
  let rec split_last = function
    | [ t ] -> ([], t)
    | q :: rest ->
        let cs, t = split_last rest in
        (q :: cs, t)
    | [] -> invalid_arg "Clifford_t.compile: empty Mcz"
  in
  let rec lower g =
    match g with
    | X _ | Y _ | Z _ | H _ | S _ | Sdg _ | T _ | Tdg _ | Cnot _ -> [ g ]
    | Rz _ ->
        if options.keep_rz then [ g ]
        else invalid_arg "Clifford_t.compile: Rz not allowed by options"
    | Cz _ -> [ g ] (* CZ is Clifford and diagonal: keep it native *)
    | Swap (a, b) -> [ Cnot (a, b); Cnot (b, a); Cnot (a, b) ]
    | Ccx (a, b, t) -> toffoli_7t a b t
    | Ccz (a, b, t) -> ccz_7t a b t
    | Mcx ([], t) -> [ X t ]
    | Mcx ([ a ], t) -> [ Cnot (a, t) ]
    | Mcx ([ a; b ], t) -> toffoli_7t a b t
    | Mcx (cs, t) -> lower_mcx ~rccx_ladder:options.rccx_ladder cs t anc
    | Mcz [ a ] -> [ Z a ]
    | Mcz [ a; b ] -> [ Cz (a, b) ]
    | Mcz [ a; b; c ] -> ccz_7t a b c (* pure {CNOT, T}: T-par can fold *)
    | Mcz qs ->
        (* conjugate the last qubit with H and treat as Mcx *)
        let cs, t = split_last qs in
        (H t :: lower (Mcx (cs, t))) @ [ H t ]
  in
  let gates = List.concat_map lower (Circuit.gates c) in
  let compiled = Circuit.of_gates total gates in
  if Obs.enabled () then begin
    let t_count = Circuit.t_count compiled in
    Obs.count ~by:(Circuit.num_gates compiled) "qc.cliffordt.gates";
    Obs.count ~by:t_count "qc.cliffordt.t_count";
    if max_anc > 0 then Obs.count ~by:max_anc "qc.cliffordt.ancillae";
    Obs.add_attrs
      [ ("gates", Obs.Int (Circuit.num_gates compiled));
        ("t_count", Obs.Int t_count); ("ancillae", Obs.Int max_anc) ]
  end;
  (compiled, max_anc)

(** [compile_rcircuit ?options rc] is the full [cliffordt] flow:
    {!of_rcircuit} followed by {!compile}. *)
let compile_rcircuit ?options rc = compile ?options (of_rcircuit rc)
