(** Dense unitary extraction for small circuits — the verification back end
    (the paper's Sec. IX discusses exactly this equivalence-checking
    obligation for post-optimization). *)

(** A [2^n × 2^n] complex matrix, row-major: [m.(row).(col)]. *)
type t = Complex.t array array

(** [of_circuit c] extracts the unitary by simulating every basis column.
    Exponential; intended for [n <= 10]. *)
let of_circuit c =
  let n = Circuit.num_qubits c in
  if n > 12 then invalid_arg "Unitary.of_circuit: too many qubits";
  let sz = 1 lsl n in
  let m = Array.make_matrix sz sz Complex.zero in
  for col = 0 to sz - 1 do
    let s = Statevector.init n in
    (* prepare |col⟩ *)
    for q = 0 to n - 1 do
      if Logic.Bitops.bit col q then Statevector.apply s (Gate.X q)
    done;
    Statevector.run_on s c;
    for row = 0 to sz - 1 do
      m.(row).(col) <- Statevector.amplitude s row
    done
  done;
  m

(** [of_gates n gs] is the unitary of the gate list applied in order on
    [n] qubits. *)
let of_gates n gs = of_circuit (Circuit.of_gates n gs)

(** [mul a b] is the matrix product [a·b] — the unitary of "apply [b],
    then [a]" (composition in circuit order is [mul later earlier]).
    Tests use this to cross-check the statevector plan layer's fused
    block matrices against explicit products. *)
let mul (a : t) (b : t) : t =
  let sz = Array.length a in
  if sz <> Array.length b then invalid_arg "Unitary.mul: size mismatch";
  Array.init sz (fun r ->
      Array.init sz (fun c ->
          let acc = ref Complex.zero in
          for k = 0 to sz - 1 do
            acc := Complex.add !acc (Complex.mul a.(r).(k) b.(k).(c))
          done;
          !acc))

let cnorm (z : Complex.t) = (z.re *. z.re) +. (z.im *. z.im)

(** [is_diagonal ?eps u] holds when every off-diagonal entry is ≈ 0 —
    the matrix-level counterpart of the plan layer's diagonal-block
    class. *)
let is_diagonal ?(eps = 1e-9) (u : t) =
  let sz = Array.length u in
  let ok = ref true in
  for r = 0 to sz - 1 do
    for c = 0 to sz - 1 do
      if r <> c && cnorm u.(r).(c) > eps *. eps then ok := false
    done
  done;
  !ok

(** [equal ?eps a b] is entrywise equality within [eps]. *)
let equal ?(eps = 1e-9) (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.for_all2 (fun x y -> cnorm Complex.(sub x y) < eps *. eps) ra rb)
       a b

(** [equal_up_to_phase ?eps a b] tests [a = e^{iφ} b] for some global phase
    [φ]. *)
let equal_up_to_phase ?(eps = 1e-9) (a : t) (b : t) =
  let sz = Array.length a in
  if sz <> Array.length b then false
  else begin
    (* find the largest entry of b to fix the phase *)
    let best = ref (0, 0) in
    for r = 0 to sz - 1 do
      for c = 0 to sz - 1 do
        let pr, pc = !best in
        if cnorm b.(r).(c) > cnorm b.(pr).(pc) then best := (r, c)
      done
    done;
    let pr, pc = !best in
    if cnorm b.(pr).(pc) < eps *. eps then equal ~eps a b
    else
      let phase = Complex.div a.(pr).(pc) b.(pr).(pc) in
      if Float.abs (cnorm phase -. 1.) > eps then false
      else
        let scaled = Array.map (Array.map (Complex.mul phase)) b in
        equal ~eps a scaled
  end

(** [is_permutation ?eps u] returns [Some p] when [u] is a permutation
    matrix up to per-column phases — i.e. the circuit implements a classical
    reversible function possibly with relative phases; [p.(col)] is the row
    of the nonzero entry. *)
let is_permutation ?(eps = 1e-9) (u : t) =
  let sz = Array.length u in
  let p = Array.make sz (-1) in
  let ok = ref true in
  for col = 0 to sz - 1 do
    for row = 0 to sz - 1 do
      let m = cnorm u.(row).(col) in
      if m > 0.5 then
        if Float.abs (m -. 1.) < eps then p.(col) <- row else ok := false
      else if m > eps *. eps then ok := false
    done;
    if p.(col) < 0 then ok := false
  done;
  if !ok then Some p else None
