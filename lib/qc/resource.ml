(** Resource estimation — the ProjectQ "resource counter" backend of the
    paper's Sec. VI: gate-class counts, T-count, T-depth and depth of a
    circuit, with a printable report. *)

type t = {
  qubits : int;
  total_gates : int;
  h_count : int;
  x_count : int;
  cnot_count : int;
  t_count : int; (* T and T† *)
  s_count : int; (* S and S† *)
  z_count : int;
  other_count : int;
  depth : int;
  t_depth : int;
}

let count circuit =
  let h = ref 0 and x = ref 0 and cx = ref 0 and t = ref 0 and s = ref 0
  and z = ref 0 and other = ref 0 in
  Circuit.iter
    (fun g ->
      match (g : Gate.t) with
      | Gate.H _ -> incr h
      | Gate.X _ -> incr x
      | Gate.Cnot _ -> incr cx
      | Gate.T _ | Gate.Tdg _ -> incr t
      | Gate.S _ | Gate.Sdg _ -> incr s
      | Gate.Z _ -> incr z
      | _ -> incr other)
    circuit;
  { qubits = Circuit.num_qubits circuit;
    total_gates = Circuit.num_gates circuit;
    h_count = !h; x_count = !x; cnot_count = !cx; t_count = !t; s_count = !s;
    z_count = !z; other_count = !other;
    depth = Circuit.depth circuit;
    t_depth = Circuit.t_depth circuit }

let pp ppf r =
  Fmt.pf ppf
    "qubits: %d@ gates: %d (H %d, X %d, CNOT %d, T %d, S %d, Z %d, other %d)@ depth: %d@ T-depth: %d"
    r.qubits r.total_gates r.h_count r.x_count r.cnot_count r.t_count r.s_count
    r.z_count r.other_count r.depth r.t_depth

(** [to_string r] is a one-line rendering, for table rows. *)
let to_string r = Fmt.str "@[<h>%a@]" pp r

(** [to_string_v r] is the multi-line rendering, for standalone reports. *)
let to_string_v r = Fmt.str "@[<v>%a@]" pp r
