(** Compile-once execution plans (exposed as [Statevector.Plan]).

    {!build} walks a circuit once and emits a flat schedule of kernel
    ops:

    - runs of {e monomial} gates (one nonzero per unitary column:
      X/CNOT/Toffoli/SWAP and every phase gate — everything but H) fuse
      into one permutation-with-phases block of up to
      {!max_mono_qubits} qubits, built {e symbolically} as a basis-state
      table with exact integer/constant arithmetic — classical gates get
      exactly unit phases, and the replay kernel then skips the phase
      multiply entirely. Full-width blocks replay as one out-of-place
      scatter through a precomputed inverse map with sequential writes
      (the state slabs ping-pong with a scratch set); narrower blocks
      gather/scatter disjoint 2^k-amplitude groups in place. Blocks that
      compose to the identity are dropped from the schedule;
    - runs of H on distinct qubits fuse into one gather / k-butterfly /
      scatter pass ({!max_kron_qubits} wide) — same arithmetic as the
      individual passes, k× fewer memory sweeps;
    - only when supports genuinely overlap across kinds does a block
      fall back to a general dense unitary, capped at
      {!max_dense_qubits} (8×8, extracted by simulating basis columns —
      the extraction [Unitary.of_circuit] performs, inlined here because
      [Unitary] sits above this module), past which the matvec turns
      compute-bound;
    - long diagonal runs become one separable-table phase sweep with the
      tables prebuilt at plan time; a pending sweep is {e folded into}
      the gather of the next block — or, for a full-width monomial
      block, folded into its phase table {e at build time}, so the
      sweep's memory pass disappears from the schedule entirely;
    - dense-matrix entries within 1e-12 of 0/±1 are snapped exact, so
      classical blocks replay with exact arithmetic like the specialized
      kernels they replace.

    Two commuting-block peepholes run at build time (both exact
    commutations, so plans stay within rounding of the unfused
    reference, and plans are pure functions of the circuit, so every
    jobs × shard-bits configuration replays the identical schedule):

    - {!peephole} defers pending Hadamards past monomial gates on
      disjoint qubits, widening monomial runs and merging H layers;
    - a kernel-level clustering pass bubbles commuting kernels into
      ascending highest-touched-bit order, so slab-local kernels group
      together between cross-slab exchange rounds.

    Replay classifies each kernel against the state's shard layout
    ({!Sv_shard}): {e slab-local} kernels (all touched qubits below the
    slab bit, plus every diagonal) fan out per slab over the pool with
    zero cross-slab traffic; {e cross-slab} kernels stream slabs in
    lockstep (high-bit butterflies), scatter through the global
    accessors (rare narrow high-bit blocks), or rebuild the state
    slab-sequentially through the inverse map (full-width
    permutations). Groups and slabs are disjoint, so any [--jobs] and
    any shard-bits value is bit-identical. *)

open Sv_kernels

(* Dense blocks cap at 8×8: per amplitude a 2^k-wide matvec costs
   O(2^k) complex multiplies, so k = 3 roughly matches the arithmetic
   of the 1q passes it replaces while making 3x fewer memory passes;
   k = 4 already triples the arithmetic. Dense blocks only form when
   gates actually share qubits — fusing disjoint 1q gates into a
   Kronecker product would multiply arithmetic for nothing. *)
let max_dense_qubits = 3

(* Monomial blocks (one nonzero per matrix column) gather, phase and
   scatter — O(1) per amplitude whatever the width — so CNOT chains
   and similar classical runs fuse very wide. 16 caps the basis table
   at 2^16 entries (512 kB per array). *)
let max_mono_qubits = 16

(* Hadamard runs on distinct qubits fuse into one gather / k-butterfly
   / scatter pass; arithmetic matches the individual passes, so the cap
   only bounds the scratch group (2^16 amplitudes, 512 kB per array —
   matching {!max_mono_qubits}). Wide caps matter: every extra block is
   a full read+write sweep of the state, and at 24+ qubits those sweeps
   dominate the runtime. *)
let max_kron_qubits = 16

(* Building a monomial block costs gates × 2^k basis updates; this
   bounds that product so plan compilation stays a small multiple of
   one unfused execution even for deep circuits. *)
let max_block_work = 1 lsl 22

type kernel =
  | K_gate of Gate.t (* pass-through: single gates, wide MCX/MCZ *)
  | K_sweep of sweep (* long diagonal run, prebuilt half tables *)
  | K_diag of { bits : int array; ph_re : float array; ph_im : float array }
  | K_perm of {
      pre : sweep option; (* diagonal sweep folded into the gather *)
      bits : int array;
      offs : int array;
      perm : int array; (* column -> row of the single nonzero entry *)
      ph : (float array * float array) option; (* per-column phase; None = all 1 *)
    }
  | K_perm_full of {
      (* a monomial block spanning every qubit: one out-of-place pass,
         sequential writes through the inverse map, then slab swap *)
      inv : int array; (* output index -> input index *)
      ph : (float array * float array) option; (* input-indexed phase *)
    }
  | K_had of {
      (* Hadamards on distinct qubits: butterflies in scratch registers *)
      pre : sweep option;
      bits : int array;
      offs : int array;
    }
  | K_dense of {
      pre : sweep option;
      bits : int array;
      offs : int array;
      u_re : float array; (* 2^k × 2^k, row-major *)
      u_im : float array;
    }

type t = {
  n : int;
  ops : kernel array;
  blocks : int; (* fused kernels (dense + diag + perm + sweeps) *)
  fused_gates : int; (* source gates absorbed into fused kernels *)
  source_gates : int;
}

(* Everything except H is monomial in our gate set (diagonal gates
   trivially, X/Y/CNOT/SWAP/CCX/MCX as permutations with phases). *)
let is_monomial = function Gate.H _ -> false | _ -> true

let gate_mask g = mask_of (Gate.qubits g)

let popcount m =
  let c = ref 0 and x = ref m in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let bits_of_mask m =
  let bits = Array.make (popcount m) 0 in
  let i = ref 0 and b = ref 0 and x = ref m in
  while !x <> 0 do
    if !x land 1 <> 0 then begin
      bits.(!i) <- !b;
      incr i
    end;
    incr b;
    x := !x lsr 1
  done;
  bits

(* offs.(j) scatters local index j back to the global bit positions. *)
let offs_of (bits : int array) =
  let k = Array.length bits in
  Array.init (1 lsl k) (fun j ->
      let o = ref 0 in
      for b = 0 to k - 1 do
        if j land (1 lsl b) <> 0 then o := !o lor (1 lsl bits.(b))
      done;
      !o)

let snap v =
  if Float.abs v < 1e-12 then 0.
  else if Float.abs (v -. 1.) < 1e-12 then 1.
  else if Float.abs (v +. 1.) < 1e-12 then -1.
  else v

(* The block's matrix on its local qubits, by basis-column simulation
   of the remapped gate list. [rev_gates] is in reverse application
   order (the builder's accumulator shape). *)
let block_matrix n (bits : int array) rev_gates =
  let k = Array.length bits in
  let dim = 1 lsl k in
  let local q =
    let r = ref 0 in
    for b = 0 to k - 1 do
      if bits.(b) = q then r := b
    done;
    !r
  in
  let c = Circuit.map_qubits ~n:k local (Circuit.of_rev_gates n rev_gates) in
  let u_re = Array.make (dim * dim) 0. and u_im = Array.make (dim * dim) 0. in
  for col = 0 to dim - 1 do
    let s = make_flat k in
    s.sl_re.(0).(col) <- 1.;
    Circuit.iter (apply s) c;
    for row = 0 to dim - 1 do
      u_re.((row * dim) + col) <- snap s.sl_re.(0).(row);
      u_im.((row * dim) + col) <- snap s.sl_im.(0).(row)
    done
  done;
  (u_re, u_im)

(* Diagonal / permutation / general, from the matrix itself (robust to
   cancellations the gate list hides: H;Z;H classifies as the X-type
   permutation it is). Off-diagonal zeros are exact after snapping;
   permutation entries are unit-magnitude within 1e-9. *)
type block_class =
  | B_diag of float array * float array
  | B_perm of int array * float array * float array
  | B_dense

let classify dim (u_re : float array) (u_im : float array) =
  let diagonal = ref true in
  (try
     for row = 0 to dim - 1 do
       for col = 0 to dim - 1 do
         if row <> col then begin
           let idx = (row * dim) + col in
           if u_re.(idx) <> 0. || u_im.(idx) <> 0. then begin
             diagonal := false;
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  if !diagonal then
    B_diag
      ( Array.init dim (fun j -> u_re.((j * dim) + j)),
        Array.init dim (fun j -> u_im.((j * dim) + j)) )
  else begin
    let perm = Array.make dim (-1) in
    let ph_re = Array.make dim 0. and ph_im = Array.make dim 0. in
    let ok = ref true in
    for col = 0 to dim - 1 do
      for row = 0 to dim - 1 do
        let idx = (row * dim) + col in
        let m = (u_re.(idx) *. u_re.(idx)) +. (u_im.(idx) *. u_im.(idx)) in
        if m > 0.5 then begin
          if Float.abs (m -. 1.) < 1e-9 then begin
            perm.(col) <- row;
            ph_re.(col) <- u_re.(idx);
            ph_im.(col) <- u_im.(idx)
          end
          else ok := false
        end
        else if m > 1e-18 then ok := false
      done;
      if perm.(col) < 0 then ok := false
    done;
    if !ok then B_perm (perm, ph_re, ph_im) else B_dense
  end

(* Symbolic product of a monomial gate run on the block's local basis:
   row.(b) is the output basis state of local input b, (pr, pi).(b) its
   phase. O(2^k) per gate, no dense matrix — this is what lets monomial
   blocks span 16 qubits. All updates are exact integer/constant
   arithmetic, so classical blocks (CNOT chains, Toffoli cascades)
   come out with exactly unit phases. *)
let mono_block n (bits : int array) rev_gates =
  let k = Array.length bits in
  let dim = 1 lsl k in
  let local q =
    let r = ref 0 in
    for b = 0 to k - 1 do
      if bits.(b) = q then r := b
    done;
    !r
  in
  let c = Circuit.map_qubits ~n:k local (Circuit.of_rev_gates n rev_gates) in
  let row = Array.init dim Fun.id in
  let pr = Array.make dim 1. and pi = Array.make dim 0. in
  let phase_if mask want (p : Complex.t) =
    for b = 0 to dim - 1 do
      if Array.unsafe_get row b land mask = want then begin
        let r = Array.unsafe_get pr b and i = Array.unsafe_get pi b in
        Array.unsafe_set pr b ((r *. p.re) -. (i *. p.im));
        Array.unsafe_set pi b ((r *. p.im) +. (i *. p.re))
      end
    done
  in
  let flip_if mask want tbit =
    for b = 0 to dim - 1 do
      let r = Array.unsafe_get row b in
      if r land mask = want then Array.unsafe_set row b (r lxor tbit)
    done
  in
  Circuit.iter
    (fun g ->
      match g with
      | Gate.X q -> flip_if 0 0 (1 lsl q)
      | Gate.Y q ->
          (* Y|0⟩ = i|1⟩, Y|1⟩ = -i|0⟩ *)
          let bit = 1 lsl q in
          for b = 0 to dim - 1 do
            let r = row.(b) in
            row.(b) <- r lxor bit;
            let rr = pr.(b) and ii = pi.(b) in
            if r land bit = 0 then begin
              pr.(b) <- -.ii;
              pi.(b) <- rr
            end
            else begin
              pr.(b) <- ii;
              pi.(b) <- -.rr
            end
          done
      | Gate.Z q ->
          let b = 1 lsl q in
          phase_if b b cm1
      | Gate.S q ->
          let b = 1 lsl q in
          phase_if b b ci
      | Gate.Sdg q ->
          let b = 1 lsl q in
          phase_if b b cmi
      | Gate.T q ->
          let b = 1 lsl q in
          phase_if b b omega
      | Gate.Tdg q ->
          let b = 1 lsl q in
          phase_if b b omega_bar
      | Gate.Rz (a, q) ->
          let h = a /. 2. in
          let bit = 1 lsl q in
          phase_if bit 0 Complex.{ re = cos h; im = -.sin h };
          phase_if bit bit Complex.{ re = cos h; im = sin h }
      | Gate.Cnot (cq, t) ->
          let cb = 1 lsl cq in
          flip_if cb cb (1 lsl t)
      | Gate.Cz (a, b) ->
          let m = (1 lsl a) lor (1 lsl b) in
          phase_if m m cm1
      | Gate.Swap (a, b) ->
          let ab = 1 lsl a and bb = 1 lsl b in
          let both = ab lor bb in
          for x = 0 to dim - 1 do
            let r = row.(x) in
            let v = r land both in
            if v = ab || v = bb then row.(x) <- r lxor both
          done
      | Gate.Ccx (a, b, t) ->
          let m = (1 lsl a) lor (1 lsl b) in
          flip_if m m (1 lsl t)
      | Gate.Ccz (a, b, cq) ->
          let m = mask_of [ a; b; cq ] in
          phase_if m m cm1
      | Gate.Mcx (cs, t) ->
          let m = mask_of cs in
          flip_if m m (1 lsl t)
      | Gate.Mcz qs ->
          let m = mask_of qs in
          phase_if m m cm1
      | Gate.H _ -> assert false (* monomial blocks never contain H *))
    c;
  (row, pr, pi)

(* The phase a sweep applies at global index [x] — used to fold a
   pending sweep into a full-width block's phase table at build time,
   which removes the sweep's memory pass from the schedule entirely. *)
let sweep_phase_at sw x =
  let l = x land sw.half_mask and g = x lsr sw.h in
  let ar = sw.lo_re.(l) and ai = sw.lo_im.(l) in
  let br = sw.hi_re.(g) and bi = sw.hi_im.(g) in
  let rr = ref ((ar *. br) -. (ai *. bi))
  and ri = ref ((ar *. bi) +. (ai *. br)) in
  Array.iter
    (fun tm ->
      if x land tm.mask = tm.want then begin
        let r = !rr and i = !ri in
        rr := (r *. tm.pre) -. (i *. tm.pim);
        ri := (r *. tm.pim) +. (i *. tm.pre)
      end)
    sw.straddling;
  (!rr, !ri)

let all_unit (pr : float array) (pi : float array) =
  let ok = ref true in
  for b = 0 to Array.length pr - 1 do
    if pr.(b) <> 1. || pi.(b) <> 0. then ok := false
  done;
  !ok

(* --- commuting-block peepholes --- *)

(** [peephole gates] defers pending Hadamards: a monomial gate whose
    support is disjoint from every deferred H commutes with them exactly
    (they act on different tensor factors), so it is emitted first. This
    widens monomial runs across H layers and merges H gates on distinct
    qubits into one butterfly block. Any overlap flushes the deferred
    H's in order, so the result is always unitarily equal to the input
    (the test suite cross-checks via [Unitary.of_gates]). *)
let peephole (gates : Gate.t array) =
  let out = ref [] in
  let pend_h = ref [] and pend_mask = ref 0 in
  let flush () =
    List.iter (fun g -> out := g :: !out) (List.rev !pend_h);
    pend_h := [];
    pend_mask := 0
  in
  Array.iter
    (fun g ->
      match g with
      | Gate.H q ->
          let bit = 1 lsl q in
          if bit land !pend_mask <> 0 then flush ();
          pend_h := g :: !pend_h;
          pend_mask := !pend_mask lor bit
      | g when is_monomial g && gate_mask g land !pend_mask = 0 ->
          out := g :: !out
      | g ->
          flush ();
          out := g :: !out)
    gates;
  flush ();
  Array.of_list (List.rev !out)

(* Conservative commutation data for the kernel clustering pass:
   (diagonal, touched-qubit mask if known, movable). Kernels carrying a
   folded pre-sweep act as barriers — moving them would reorder the
   sweep too. *)
let kernel_traits = function
  | K_gate g -> (is_diag g, Some (gate_mask g), true)
  | K_sweep _ -> (true, None, true)
  | K_diag { bits; _ } ->
      (true, Some (Array.fold_left (fun m b -> m lor (1 lsl b)) 0 bits), true)
  | K_perm { pre = None; bits; _ }
  | K_had { pre = None; bits; _ }
  | K_dense { pre = None; bits; _ } ->
      (false, Some (Array.fold_left (fun m b -> m lor (1 lsl b)) 0 bits), true)
  | K_perm _ | K_had _ | K_dense _ | K_perm_full _ -> (false, None, false)

(* Two kernels commute exactly when both are diagonal (diagonal matrices
   always commute) or their supports are disjoint (different tensor
   factors). Only exact commutations qualify, so clustering never moves
   the plan outside rounding distance of the unfused reference. *)
let kernels_commute a b =
  let da, ma, va = kernel_traits a and db, mb, vb = kernel_traits b in
  va && vb
  && ((da && db)
     ||
     match (ma, mb) with
     | Some x, Some y -> x land y = 0
     | _ -> false)

let highest_bit m =
  let b = ref (-1) and x = ref m in
  while !x <> 0 do
    incr b;
    x := !x lsr 1
  done;
  !b

(* Bubble commuting neighbours into ascending highest-touched-bit order
   (diagonals sort lowest: they are slab-local at any layout). Low-bit
   kernels cluster together between high-bit/cross-slab ones, so sharded
   replay runs fewer exchange rounds. O(ops²) worst case on a schedule
   that is already short. *)
let cluster_ops (ops : kernel array) =
  let n = Array.length ops in
  if n < 2 then ops
  else begin
    let ops = Array.copy ops in
    let key k =
      let d, m, _ = kernel_traits k in
      if d then -1
      else match m with Some m -> highest_bit m | None -> max_int
    in
    let changed = ref true and rounds = ref 0 in
    while !changed && !rounds < n do
      changed := false;
      incr rounds;
      for i = 0 to n - 2 do
        let a = ops.(i) and b = ops.(i + 1) in
        if key b < key a && kernels_commute a b then begin
          ops.(i) <- b;
          ops.(i + 1) <- a;
          changed := true
        end
      done
    done;
    ops
  end

(* --- building --- *)

let build circuit =
  Obs.with_span "sv.plan.build" @@ fun () ->
  let n = Circuit.num_qubits circuit in
  let gates = peephole (Circuit.to_array circuit) in
  let ng = Array.length gates in
  (* pass 1: mark the maximal diagonal runs worth a separable sweep
     (same profitability rule as the legacy prepass) *)
  let in_sweep = Array.make (max 1 ng) false in
  let i = ref 0 in
  while !i < ng do
    if is_diag gates.(!i) then begin
      let j = ref !i and ones = ref 0 in
      while !j < ng && is_diag gates.(!j) do
        if q1_of gates.(!j) >= 0 then incr ones;
        incr j
      done;
      if !ones >= min_diag_run then
        for x = !i to !j - 1 do
          in_sweep.(x) <- true
        done;
      i := !j
    end
    else incr i
  done;
  (* pass 2: greedy block grouping of everything else, folding each
     pending sweep into the next dense/permutation block *)
  let ops = ref [] and blocks = ref 0 and fused = ref 0 in
  let emit k = ops := k :: !ops in
  let pending_sweep = ref None in
  let take_sweep () =
    let sw = !pending_sweep in
    pending_sweep := None;
    sw
  in
  let emit_sweep_if_pending () =
    match take_sweep () with Some sw -> emit (K_sweep sw) | None -> ()
  in
  (* Pending block kinds: [P_mono] — monomial gates only, realized by a
     symbolic basis table (wide); [P_had] — Hadamards on distinct
     qubits, realized by in-register butterflies; [P_dense] — mixed
     support on ≤ max_dense_qubits, realized by a dense matrix. *)
  let pend_rev = ref [] and pend_mask = ref 0 in
  let pend_n = ref 0 and pend_kind = ref `Mono in
  let reset_pend () =
    pend_rev := [];
    pend_mask := 0;
    pend_n := 0;
    pend_kind := `Mono
  in
  let flush_block () =
    (match !pend_rev with
    | [] -> ()
    | [ g ] ->
        (* singletons re-emit the original gate: the specialized
           kernels beat a generic block and stay exact *)
        emit_sweep_if_pending ();
        emit (K_gate g)
    | revs -> (
        let bits = bits_of_mask !pend_mask in
        let k = Array.length bits in
        let dim = 1 lsl k in
        incr blocks;
        fused := !fused + !pend_n;
        match !pend_kind with
        | `Had -> emit (K_had { pre = take_sweep (); bits; offs = offs_of bits })
        | `Mono ->
            let row, pr, pi = mono_block n bits revs in
            (* full-width blocks fold the pending sweep into the phase
               table now — its memory pass disappears entirely *)
            if k = n then (
              match take_sweep () with
              | Some sw ->
                  for b = 0 to dim - 1 do
                    let sr, si = sweep_phase_at sw b in
                    let r = pr.(b) and i = pi.(b) in
                    pr.(b) <- (r *. sr) -. (i *. si);
                    pi.(b) <- (r *. si) +. (i *. sr)
                  done
              | None -> ());
            let identity = ref true in
            for b = 0 to dim - 1 do
              if row.(b) <> b then identity := false
            done;
            let unit = all_unit pr pi in
            if !identity && unit then () (* block collapsed to identity *)
            else if !identity then begin
              emit_sweep_if_pending ();
              emit (K_diag { bits; ph_re = pr; ph_im = pi })
            end
            else if k = n then begin
              let inv = Array.make dim 0 in
              for b = 0 to dim - 1 do
                inv.(row.(b)) <- b
              done;
              emit
                (K_perm_full { inv; ph = (if unit then None else Some (pr, pi)) })
            end
            else
              emit
                (K_perm
                   { pre = take_sweep (); bits; offs = offs_of bits; perm = row;
                     ph = (if unit then None else Some (pr, pi)) })
        | `Dense -> (
            let u_re, u_im = block_matrix n bits revs in
            match classify dim u_re u_im with
            | B_diag (ph_re, ph_im) ->
                emit_sweep_if_pending ();
                emit (K_diag { bits; ph_re; ph_im })
            | B_perm (perm, ph_re, ph_im) ->
                emit
                  (K_perm
                     { pre = take_sweep (); bits; offs = offs_of bits; perm;
                       ph =
                         (if all_unit ph_re ph_im then None
                          else Some (ph_re, ph_im)) })
            | B_dense ->
                emit
                  (K_dense
                     { pre = take_sweep (); bits; offs = offs_of bits; u_re;
                       u_im }))));
    reset_pend ()
  in
  let start_pend g gm kind =
    pend_rev := [ g ];
    pend_mask := gm;
    pend_n := 1;
    pend_kind := kind
  in
  let merge g u kind =
    pend_rev := g :: !pend_rev;
    pend_mask := u;
    pend_n := !pend_n + 1;
    pend_kind := kind
  in
  (* Monomial merges are bounded by width and by build work
     (gates × 2^k); Hadamard runs by scratch width; dense blocks form
     only when supports genuinely overlap (fusing disjoint gates into a
     Kronecker product multiplies arithmetic for nothing). *)
  let mono_fits u extra =
    let pc = popcount u in
    pc <= max_mono_qubits && (!pend_n + extra) lsl pc <= max_block_work
  in
  Array.iteri
    (fun idx g ->
      if in_sweep.(idx) then begin
        if idx = 0 || not in_sweep.(idx - 1) then begin
          (* run start: collect the whole run into one sweep *)
          flush_block ();
          emit_sweep_if_pending ();
          let terms = ref [] and j = ref idx and count = ref 0 in
          while !j < ng && in_sweep.(!j) do
            (match dterms_of_gate gates.(!j) with
            | Some ts -> terms := ts :: !terms
            | None -> assert false);
            incr count;
            incr j
          done;
          incr blocks;
          fused := !fused + !count;
          pending_sweep :=
            Some
              (sweep_of_terms n
                 (Array.of_list (List.concat (List.rev !terms))))
        end
      end
      else begin
        let gm = gate_mask g and gmono = is_monomial g in
        if gmono && popcount gm > max_mono_qubits then begin
          (* wide MCX/MCZ: straight through the specialized kernel *)
          flush_block ();
          emit_sweep_if_pending ();
          emit (K_gate g)
        end
        else if !pend_n = 0 then start_pend g gm (if gmono then `Mono else `Had)
        else begin
          let u = !pend_mask lor gm in
          let overlap = !pend_mask land gm <> 0 in
          match !pend_kind with
          | `Mono ->
              if gmono && mono_fits u 1 then merge g u `Mono
              else if (not gmono) && overlap && popcount u <= max_dense_qubits
              then merge g u `Dense
              else begin
                flush_block ();
                start_pend g gm (if gmono then `Mono else `Had)
              end
          | `Had ->
              if (not gmono) && (not overlap) && popcount u <= max_kron_qubits
              then merge g u `Had
              else if overlap && popcount u <= max_dense_qubits then
                merge g u `Dense
              else begin
                flush_block ();
                start_pend g gm (if gmono then `Mono else `Had)
              end
          | `Dense ->
              if popcount u <= max_dense_qubits then merge g u `Dense
              else begin
                flush_block ();
                start_pend g gm (if gmono then `Mono else `Had)
              end
        end
      end)
    gates;
  flush_block ();
  emit_sweep_if_pending ();
  let p =
    { n; ops = cluster_ops (Array.of_list (List.rev !ops)); blocks = !blocks;
      fused_gates = !fused; source_gates = ng }
  in
  if Obs.enabled () then begin
    if p.blocks > 0 then begin
      Obs.count ~by:p.blocks "sv.plan.blocks";
      Obs.count ~by:p.fused_gates "sv.plan.fused_gates"
    end;
    Obs.add_attrs
      [ ("ops", Obs.Int (Array.length p.ops)); ("gates", Obs.Int ng);
        ("qubits", Obs.Int n) ]
  end;
  p

(* --- replay kernels --- *)

(* Expand a compressed group index by inserting a zero at each block
   bit, ascending — bits.(b) is the bit's final position, valid
   because all lower block bits are already inserted. *)
let expand (bits : int array) i =
  let x = ref i in
  for b = 0 to Array.length bits - 1 do
    let low = (1 lsl Array.unsafe_get bits b) - 1 in
    x := ((!x land lnot low) lsl 1) lor (!x land low)
  done;
  !x

(* Gather one group into scratch, optionally folding a diagonal
   sweep's phase into each amplitude as it is read. *)
let gather_plain (re : float array) (im : float array) (offs : int array)
    (ar : float array) (ai : float array) base =
  for j = 0 to Array.length offs - 1 do
    let idx = base lor Array.unsafe_get offs j in
    Array.unsafe_set ar j (Array.unsafe_get re idx);
    Array.unsafe_set ai j (Array.unsafe_get im idx)
  done

(* The sweep phase at global index [idx], written into acc — shared by
   every pre-folding gather so the arithmetic (and thus the floats) is
   identical on all of them. *)
let sweep_phase_acc (sw : sweep) (acc : float array) idx =
  let l = idx land sw.half_mask and g = idx lsr sw.h in
  let pr0 = Array.unsafe_get sw.lo_re l and pi0 = Array.unsafe_get sw.lo_im l in
  let qr = Array.unsafe_get sw.hi_re g and qi = Array.unsafe_get sw.hi_im g in
  acc.(0) <- (pr0 *. qr) -. (pi0 *. qi);
  acc.(1) <- (pr0 *. qi) +. (pi0 *. qr);
  let straddling = sw.straddling in
  for t = 0 to Array.length straddling - 1 do
    let tm = Array.unsafe_get straddling t in
    if idx land tm.mask = tm.want then begin
      let r = acc.(0) and i = acc.(1) in
      acc.(0) <- (r *. tm.pre) -. (i *. tm.pim);
      acc.(1) <- (r *. tm.pim) +. (i *. tm.pre)
    end
  done

let gather_pre (re : float array) (im : float array) (offs : int array)
    (ar : float array) (ai : float array) (sw : sweep) base =
  let acc = [| 1.; 0. |] in
  for j = 0 to Array.length offs - 1 do
    let idx = base lor Array.unsafe_get offs j in
    sweep_phase_acc sw acc idx;
    let pr = acc.(0) and pi = acc.(1) in
    let vr = Array.unsafe_get re idx and vi = Array.unsafe_get im idx in
    Array.unsafe_set ar j ((pr *. vr) -. (pi *. vi));
    Array.unsafe_set ai j ((pr *. vi) +. (pi *. vr))
  done

(* Slab-local gather with a pre-sweep: values live at local offsets
   ([lbase]), the sweep tables want the global index ([gbase]). Same
   float expressions as {!gather_pre}. *)
let gather_pre_sl (re : float array) (im : float array) (offs : int array)
    (ar : float array) (ai : float array) (sw : sweep) gbase lbase =
  let acc = [| 1.; 0. |] in
  for j = 0 to Array.length offs - 1 do
    let off = Array.unsafe_get offs j in
    sweep_phase_acc sw acc (gbase lor off);
    let pr = acc.(0) and pi = acc.(1) in
    let idx = lbase lor off in
    let vr = Array.unsafe_get re idx and vi = Array.unsafe_get im idx in
    Array.unsafe_set ar j ((pr *. vr) -. (pi *. vi));
    Array.unsafe_set ai j ((pr *. vi) +. (pi *. vr))
  done

(* Global-accessor gathers for the rare cross-slab narrow blocks. *)
let gather_plain_g s (offs : int array) (ar : float array) (ai : float array)
    base =
  for j = 0 to Array.length offs - 1 do
    let idx = base lor Array.unsafe_get offs j in
    Array.unsafe_set ar j (get_re s idx);
    Array.unsafe_set ai j (get_im s idx)
  done

let gather_pre_g s (offs : int array) (ar : float array) (ai : float array)
    (sw : sweep) base =
  let acc = [| 1.; 0. |] in
  for j = 0 to Array.length offs - 1 do
    let idx = base lor Array.unsafe_get offs j in
    sweep_phase_acc sw acc idx;
    let pr = acc.(0) and pi = acc.(1) in
    let vr = get_re s idx and vi = get_im s idx in
    Array.unsafe_set ar j ((pr *. vr) -. (pi *. vi));
    Array.unsafe_set ai j ((pr *. vi) +. (pi *. vr))
  done

let seg_dense (re : float array) (im : float array) (bits : int array)
    (offs : int array) (u_re : float array) (u_im : float array)
    (pre : sweep option) lo hi =
  let dim = Array.length offs in
  let ar = Array.make dim 0. and ai = Array.make dim 0. in
  let br = Array.make dim 0. and bi = Array.make dim 0. in
  for i = lo to hi - 1 do
    let base = expand bits i in
    (match pre with
    | None -> gather_plain re im offs ar ai base
    | Some sw -> gather_pre re im offs ar ai sw base);
    for row = 0 to dim - 1 do
      let rb = row * dim in
      Array.unsafe_set br row 0.;
      Array.unsafe_set bi row 0.;
      for c = 0 to dim - 1 do
        let ur = Array.unsafe_get u_re (rb + c)
        and ui = Array.unsafe_get u_im (rb + c) in
        let xr = Array.unsafe_get ar c and xi = Array.unsafe_get ai c in
        Array.unsafe_set br row
          (Array.unsafe_get br row +. ((ur *. xr) -. (ui *. xi)));
        Array.unsafe_set bi row
          (Array.unsafe_get bi row +. ((ur *. xi) +. (ui *. xr)))
      done
    done;
    for j = 0 to dim - 1 do
      let idx = base lor Array.unsafe_get offs j in
      Array.unsafe_set re idx (Array.unsafe_get br j);
      Array.unsafe_set im idx (Array.unsafe_get bi j)
    done
  done

(* The dense matvec on a gathered group — shared by the flat and
   cross-slab dense kernels (identical arithmetic). *)
let dense_matvec dim (u_re : float array) (u_im : float array)
    (ar : float array) (ai : float array) (br : float array) (bi : float array)
    =
  for row = 0 to dim - 1 do
    let rb = row * dim in
    Array.unsafe_set br row 0.;
    Array.unsafe_set bi row 0.;
    for c = 0 to dim - 1 do
      let ur = Array.unsafe_get u_re (rb + c)
      and ui = Array.unsafe_get u_im (rb + c) in
      let xr = Array.unsafe_get ar c and xi = Array.unsafe_get ai c in
      Array.unsafe_set br row
        (Array.unsafe_get br row +. ((ur *. xr) -. (ui *. xi)));
      Array.unsafe_set bi row
        (Array.unsafe_get bi row +. ((ur *. xi) +. (ui *. xr)))
    done
  done

(* Sharded slab-local dense kernel: compressed indices range over the
   slab; [sbase] recovers global indices for the pre-sweep tables.
   Caller-provided scratch, as in {!seg_perm_sl}. *)
let seg_dense_sl (re : float array) (im : float array) (bits : int array)
    (offs : int array) (u_re : float array) (u_im : float array)
    (pre : sweep option) (ar : float array) (ai : float array)
    (br : float array) (bi : float array) sbase lo hi =
  let dim = Array.length offs in
  for i = lo to hi - 1 do
    let lbase = expand bits i in
    (match pre with
    | None -> gather_plain re im offs ar ai lbase
    | Some sw -> gather_pre_sl re im offs ar ai sw (sbase lor lbase) lbase);
    dense_matvec dim u_re u_im ar ai br bi;
    for j = 0 to dim - 1 do
      let idx = lbase lor Array.unsafe_get offs j in
      Array.unsafe_set re idx (Array.unsafe_get br j);
      Array.unsafe_set im idx (Array.unsafe_get bi j)
    done
  done

(* Cross-slab dense kernel through the global accessors. *)
let seg_dense_g s (bits : int array) (offs : int array) (u_re : float array)
    (u_im : float array) (pre : sweep option) lo hi =
  let dim = Array.length offs in
  let ar = Array.make dim 0. and ai = Array.make dim 0. in
  let br = Array.make dim 0. and bi = Array.make dim 0. in
  for i = lo to hi - 1 do
    let base = expand bits i in
    (match pre with
    | None -> gather_plain_g s offs ar ai base
    | Some sw -> gather_pre_g s offs ar ai sw base);
    dense_matvec dim u_re u_im ar ai br bi;
    for j = 0 to dim - 1 do
      let idx = base lor Array.unsafe_get offs j in
      set_re s idx (Array.unsafe_get br j);
      set_im s idx (Array.unsafe_get bi j)
    done
  done

let seg_perm (re : float array) (im : float array) (bits : int array)
    (offs : int array) (perm : int array)
    (ph : (float array * float array) option) (pre : sweep option) lo hi =
  let dim = Array.length offs in
  let ar = Array.make dim 0. and ai = Array.make dim 0. in
  match ph with
  | None ->
      (* all phases exactly 1 (pure classical block): move-only scatter *)
      for i = lo to hi - 1 do
        let base = expand bits i in
        (match pre with
        | None -> gather_plain re im offs ar ai base
        | Some sw -> gather_pre re im offs ar ai sw base);
        for c = 0 to dim - 1 do
          let row = Array.unsafe_get perm c in
          let idx = base lor Array.unsafe_get offs row in
          Array.unsafe_set re idx (Array.unsafe_get ar c);
          Array.unsafe_set im idx (Array.unsafe_get ai c)
        done
      done
  | Some (ph_re, ph_im) ->
      for i = lo to hi - 1 do
        let base = expand bits i in
        (match pre with
        | None -> gather_plain re im offs ar ai base
        | Some sw -> gather_pre re im offs ar ai sw base);
        for c = 0 to dim - 1 do
          let row = Array.unsafe_get perm c in
          let pr = Array.unsafe_get ph_re c and pi = Array.unsafe_get ph_im c in
          let xr = Array.unsafe_get ar c and xi = Array.unsafe_get ai c in
          let idx = base lor Array.unsafe_get offs row in
          Array.unsafe_set re idx ((pr *. xr) -. (pi *. xi));
          Array.unsafe_set im idx ((pr *. xi) +. (pi *. xr))
        done
      done

(* Sharded slab-local permutation kernel (all block bits below the slab
   bit): group indices and offsets are slab-local, [sbase] recovers the
   global index for the pre-sweep. Scratch ([ar]/[ai], group-sized)
   comes from the caller so one allocation serves a whole slab range —
   wide blocks would otherwise churn megabytes of garbage per slab. *)
let seg_perm_sl (re : float array) (im : float array) (bits : int array)
    (offs : int array) (perm : int array)
    (ph : (float array * float array) option) (pre : sweep option)
    (ar : float array) (ai : float array) sbase lo hi =
  let dim = Array.length offs in
  for i = lo to hi - 1 do
    let lbase = expand bits i in
    (match pre with
    | None -> gather_plain re im offs ar ai lbase
    | Some sw -> gather_pre_sl re im offs ar ai sw (sbase lor lbase) lbase);
    (match ph with
    | None ->
        for c = 0 to dim - 1 do
          let row = Array.unsafe_get perm c in
          let idx = lbase lor Array.unsafe_get offs row in
          Array.unsafe_set re idx (Array.unsafe_get ar c);
          Array.unsafe_set im idx (Array.unsafe_get ai c)
        done
    | Some (ph_re, ph_im) ->
        for c = 0 to dim - 1 do
          let row = Array.unsafe_get perm c in
          let pr = Array.unsafe_get ph_re c and pi = Array.unsafe_get ph_im c in
          let xr = Array.unsafe_get ar c and xi = Array.unsafe_get ai c in
          let idx = lbase lor Array.unsafe_get offs row in
          Array.unsafe_set re idx ((pr *. xr) -. (pi *. xi));
          Array.unsafe_set im idx ((pr *. xi) +. (pi *. xr))
        done)
  done

(* Cross-slab narrow permutation, destination-major: out-of-place
   through the ping-pong scratch. Within an aligned run of 2^bits.(0)
   destinations every block bit is constant, so the block row — and
   with it the source base and phase — is fixed, and both sides stream
   contiguously (clamped to slab boundaries when a run is wider than a
   slab). Group-major gather/scatter walks dim strided locations per
   group; this order is a sequence of straight copies. The arithmetic
   per amplitude is exactly {!seg_perm}'s — the pre-sweep multiply at
   the source index, then the block phase — and each destination is
   written once, so chunking the run range is bit-identical. [t]
   indexes runs: run t covers global indices [t·2^bits.(0),
   (t+1)·2^bits.(0)). *)
let seg_perm_stream s (out_re : float array array)
    (out_im : float array array) (bits : int array) (offs : int array)
    (pinv : int array) (ph : (float array * float array) option)
    (pre : sweep option) tlo thi =
  let k = Array.length bits in
  let b0 = Array.unsafe_get bits 0 in
  let run = 1 lsl b0 in
  let bmask = ref 0 in
  for b = 0 to k - 1 do
    bmask := !bmask lor (1 lsl Array.unsafe_get bits b)
  done;
  let bmask = !bmask in
  let sb = s.sb and smask = s.smask in
  let acc = [| 1.; 0. |] in
  for t = tlo to thi - 1 do
    let d0 = t lsl b0 in
    let r = ref 0 in
    for b = 0 to k - 1 do
      if d0 land (1 lsl Array.unsafe_get bits b) <> 0 then
        r := !r lor (1 lsl b)
    done;
    let c = Array.unsafe_get pinv !r in
    let src0 = (d0 land lnot bmask) lor Array.unsafe_get offs c in
    let j = ref 0 in
    while !j < run do
      let d = d0 lor !j and x = src0 lor !j in
      let dof = d land smask and sof = x land smask in
      let len = min (run - !j) (min (smask + 1 - dof) (smask + 1 - sof)) in
      let dre = Array.unsafe_get out_re (d lsr sb)
      and dim_ = Array.unsafe_get out_im (d lsr sb) in
      let sre = Array.unsafe_get s.sl_re (x lsr sb)
      and sim = Array.unsafe_get s.sl_im (x lsr sb) in
      (match (pre, ph) with
      | None, None ->
          for e = 0 to len - 1 do
            Array.unsafe_set dre (dof + e) (Array.unsafe_get sre (sof + e));
            Array.unsafe_set dim_ (dof + e) (Array.unsafe_get sim (sof + e))
          done
      | None, Some (ph_re, ph_im) ->
          let pr = Array.unsafe_get ph_re c and pi = Array.unsafe_get ph_im c in
          for e = 0 to len - 1 do
            let vr = Array.unsafe_get sre (sof + e)
            and vi = Array.unsafe_get sim (sof + e) in
            Array.unsafe_set dre (dof + e) ((pr *. vr) -. (pi *. vi));
            Array.unsafe_set dim_ (dof + e) ((pr *. vi) +. (pi *. vr))
          done
      | Some sw, None ->
          for e = 0 to len - 1 do
            sweep_phase_acc sw acc (x + e);
            let spr = acc.(0) and spi = acc.(1) in
            let vr = Array.unsafe_get sre (sof + e)
            and vi = Array.unsafe_get sim (sof + e) in
            Array.unsafe_set dre (dof + e) ((spr *. vr) -. (spi *. vi));
            Array.unsafe_set dim_ (dof + e) ((spr *. vi) +. (spi *. vr))
          done
      | Some sw, Some (ph_re, ph_im) ->
          let pr = Array.unsafe_get ph_re c and pi = Array.unsafe_get ph_im c in
          for e = 0 to len - 1 do
            sweep_phase_acc sw acc (x + e);
            let spr = acc.(0) and spi = acc.(1) in
            let vr = Array.unsafe_get sre (sof + e)
            and vi = Array.unsafe_get sim (sof + e) in
            let gr = (spr *. vr) -. (spi *. vi)
            and gi = (spr *. vi) +. (spi *. vr) in
            Array.unsafe_set dre (dof + e) ((pr *. gr) -. (pi *. gi));
            Array.unsafe_set dim_ (dof + e) ((pr *. gi) +. (pi *. gr))
          done);
      j := !j + len
    done
  done

(* Full-width permutation: out-of-place through the inverse map, so
   writes are sequential (reads scatter, which caches better than
   scattered writes) and chunks write disjoint output slices. *)
let seg_perm_full (re : float array) (im : float array) (out_re : float array)
    (out_im : float array) (inv : int array)
    (ph : (float array * float array) option) lo hi =
  match ph with
  | None ->
      for y = lo to hi - 1 do
        let x = Array.unsafe_get inv y in
        Array.unsafe_set out_re y (Array.unsafe_get re x);
        Array.unsafe_set out_im y (Array.unsafe_get im x)
      done
  | Some (ph_re, ph_im) ->
      for y = lo to hi - 1 do
        let x = Array.unsafe_get inv y in
        let pr = Array.unsafe_get ph_re x and pi = Array.unsafe_get ph_im x in
        let vr = Array.unsafe_get re x and vi = Array.unsafe_get im x in
        Array.unsafe_set out_re y ((pr *. vr) -. (pi *. vi));
        Array.unsafe_set out_im y ((pr *. vi) +. (pi *. vr))
      done

(* Sharded full-width permutation, the pair-exchange schedule's general
   case: each destination slab is written sequentially (y ascending),
   reads go through the global accessors via the inverse map. One task
   per output slab — no locks, disjoint writes, and the same per-
   amplitude move/phase expressions as {!seg_perm_full}. *)
let seg_perm_full_sh s (out_re : float array) (out_im : float array)
    (inv : int array) (ph : (float array * float array) option) sbase ssz =
  match ph with
  | None ->
      for y = 0 to ssz - 1 do
        let x = Array.unsafe_get inv (sbase lor y) in
        Array.unsafe_set out_re y (get_re s x);
        Array.unsafe_set out_im y (get_im s x)
      done
  | Some (ph_re, ph_im) ->
      for y = 0 to ssz - 1 do
        let x = Array.unsafe_get inv (sbase lor y) in
        let pr = Array.unsafe_get ph_re x and pi = Array.unsafe_get ph_im x in
        let vr = get_re s x and vi = get_im s x in
        Array.unsafe_set out_re y ((pr *. vr) -. (pi *. vi));
        Array.unsafe_set out_im y ((pr *. vi) +. (pi *. vr))
      done

(* Hadamards on the block's k distinct qubits: gather a group, run one
   in-scratch butterfly round per qubit, scatter. Arithmetic per
   amplitude matches the k separate passes it replaces — the win is
   k memory passes collapsing into one. *)
let seg_had (re : float array) (im : float array) (bits : int array)
    (offs : int array) (pre : sweep option) lo hi =
  let dim = Array.length offs in
  let k = Array.length bits in
  let ar = Array.make dim 0. and ai = Array.make dim 0. in
  for i = lo to hi - 1 do
    let base = expand bits i in
    (match pre with
    | None -> gather_plain re im offs ar ai base
    | Some sw -> gather_pre re im offs ar ai sw base);
    for b = 0 to k - 1 do
      let st = 1 lsl b in
      for x = 0 to dim - 1 do
        if x land st = 0 then begin
          let y = x lor st in
          let xr = Array.unsafe_get ar x and xi = Array.unsafe_get ai x in
          let yr = Array.unsafe_get ar y and yi = Array.unsafe_get ai y in
          Array.unsafe_set ar x (sqrt2inv *. (xr +. yr));
          Array.unsafe_set ai x (sqrt2inv *. (xi +. yi));
          Array.unsafe_set ar y (sqrt2inv *. (xr -. yr));
          Array.unsafe_set ai y (sqrt2inv *. (xi -. yi))
        end
      done
    done;
    for j = 0 to dim - 1 do
      let idx = base lor Array.unsafe_get offs j in
      Array.unsafe_set re idx (Array.unsafe_get ar j);
      Array.unsafe_set im idx (Array.unsafe_get ai j)
    done
  done

(* Slab-local Hadamard kernel (all block bits below the slab bit).
   Caller-provided scratch, as in {!seg_perm_sl}. *)
let seg_had_sl (re : float array) (im : float array) (bits : int array)
    (offs : int array) (pre : sweep option) (ar : float array)
    (ai : float array) sbase lo hi =
  let dim = Array.length offs in
  let k = Array.length bits in
  for i = lo to hi - 1 do
    let lbase = expand bits i in
    (match pre with
    | None -> gather_plain re im offs ar ai lbase
    | Some sw -> gather_pre_sl re im offs ar ai sw (sbase lor lbase) lbase);
    for b = 0 to k - 1 do
      let st = 1 lsl b in
      for x = 0 to dim - 1 do
        if x land st = 0 then begin
          let y = x lor st in
          let xr = Array.unsafe_get ar x and xi = Array.unsafe_get ai x in
          let yr = Array.unsafe_get ar y and yi = Array.unsafe_get ai y in
          Array.unsafe_set ar x (sqrt2inv *. (xr +. yr));
          Array.unsafe_set ai x (sqrt2inv *. (xi +. yi));
          Array.unsafe_set ar y (sqrt2inv *. (xr -. yr));
          Array.unsafe_set ai y (sqrt2inv *. (xi -. yi))
        end
      done
    done;
    for j = 0 to dim - 1 do
      let idx = lbase lor Array.unsafe_get offs j in
      Array.unsafe_set re idx (Array.unsafe_get ar j);
      Array.unsafe_set im idx (Array.unsafe_get ai j)
    done
  done

(* Unconditional sweep-multiply pass: a pre-sweep that could not fold
   into a gather (the block's bits are all cross-slab) applies to every
   amplitude with the exact {!gather_pre} arithmetic — unconditional
   multiply, no skip-when-unit, so the floats match the folded form. *)
let seg_sweep_mul (re : float array) (im : float array) (sw : sweep) sbase lo
    hi =
  let acc = [| 1.; 0. |] in
  for x = lo to hi - 1 do
    sweep_phase_acc sw acc (sbase lor x);
    let pr = acc.(0) and pi = acc.(1) in
    let vr = re.(x) and vi = im.(x) in
    re.(x) <- (pr *. vr) -. (pi *. vi);
    im.(x) <- (pr *. vi) +. (pi *. vr)
  done

(* Cross-slab butterfly: the high block bits address whole slabs, so the
   pair partners sit at the *same* local offset of 2^kh slabs — stream
   those slabs in lockstep, one column of scratch registers per local
   index. Rounds run in ascending bit order after the slab-local rounds,
   exactly the order {!seg_had} uses, so every amplitude sees the
   identical operation sequence. Chunks split the local index range:
   each chunk owns columns [lo, hi) of every slab — disjoint writes. *)
let seg_had_high (sl_re : float array array) (sl_im : float array array)
    (hoffs : int array) hmask kh nslabs lo hi =
  let dim = Array.length hoffs in
  let ar = Array.make dim 0. and ai = Array.make dim 0. in
  let rr = Array.make dim [||] and ri = Array.make dim [||] in
  for g = 0 to nslabs - 1 do
    if g land hmask = 0 then begin
      for j = 0 to dim - 1 do
        rr.(j) <- sl_re.(g lor Array.unsafe_get hoffs j);
        ri.(j) <- sl_im.(g lor Array.unsafe_get hoffs j)
      done;
      for i = lo to hi - 1 do
        for j = 0 to dim - 1 do
          Array.unsafe_set ar j (Array.unsafe_get (Array.unsafe_get rr j) i);
          Array.unsafe_set ai j (Array.unsafe_get (Array.unsafe_get ri j) i)
        done;
        for b = 0 to kh - 1 do
          let st = 1 lsl b in
          for x = 0 to dim - 1 do
            if x land st = 0 then begin
              let y = x lor st in
              let xr = Array.unsafe_get ar x and xi = Array.unsafe_get ai x in
              let yr = Array.unsafe_get ar y and yi = Array.unsafe_get ai y in
              Array.unsafe_set ar x (sqrt2inv *. (xr +. yr));
              Array.unsafe_set ai x (sqrt2inv *. (xi +. yi));
              Array.unsafe_set ar y (sqrt2inv *. (xr -. yr));
              Array.unsafe_set ai y (sqrt2inv *. (xi -. yi))
            end
          done
        done;
        for j = 0 to dim - 1 do
          Array.unsafe_set (Array.unsafe_get rr j) i (Array.unsafe_get ar j);
          Array.unsafe_set (Array.unsafe_get ri j) i (Array.unsafe_get ai j)
        done
      done
    end
  done

let seg_diag_block (re : float array) (im : float array) (bits : int array)
    (ph_re : float array) (ph_im : float array) lo hi =
  let k = Array.length bits in
  for x = lo to hi - 1 do
    let j = ref 0 in
    for b = 0 to k - 1 do
      if x land (1 lsl Array.unsafe_get bits b) <> 0 then
        j := !j lor (1 lsl b)
    done;
    let pr = Array.unsafe_get ph_re !j and pi = Array.unsafe_get ph_im !j in
    if not (pr = 1. && pi = 0.) then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pr *. r) -. (pi *. i);
      im.(x) <- (pr *. i) +. (pi *. r)
    end
  done

(* Sharded diagonal block: local writes, bit tests on the global index.
   Diagonals never cross slabs whatever their bits. *)
let seg_diag_block_sl (re : float array) (im : float array) (bits : int array)
    (ph_re : float array) (ph_im : float array) sbase lo hi =
  let k = Array.length bits in
  for x = lo to hi - 1 do
    let gx = sbase lor x in
    let j = ref 0 in
    for b = 0 to k - 1 do
      if gx land (1 lsl Array.unsafe_get bits b) <> 0 then
        j := !j lor (1 lsl b)
    done;
    let pr = Array.unsafe_get ph_re !j and pi = Array.unsafe_get ph_im !j in
    if not (pr = 1. && pi = 0.) then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pr *. r) -. (pi *. i);
      im.(x) <- (pr *. i) +. (pi *. r)
    end
  done

(* Chunk a kernel's index range over the pool when the *state* (not
   the compressed range) is big enough to amortize the pool. *)
let run_seg s stop seg =
  if size s <= par_threshold then seg 0 stop
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop (fun lo hi -> seg lo hi)

(* Slab-range driver: one call per pool chunk over a contiguous slab
   range, so kernels can allocate group scratch once per chunk instead
   of once per slab (a wide block's scratch times hundreds of slabs is
   real GC pressure). Slabs hold disjoint amplitudes, so any chunking
   is bit-identical. *)
let run_slab_ranges s f =
  if size s <= par_threshold then f 0 (slab_count s)
  else Par.parallel_for (Par.global ()) ~start:0 ~stop:(slab_count s) f

(* The ping-pong scratch slab set shared by the out-of-place kernels of
   one [execute] (allocated on first use, then recycled: the state's
   old slabs become the next kernel's scratch). Uninitialized on
   purpose — every out-of-place kernel writes every destination before
   the swap, and pre-zeroing would cost a full extra memory pass. *)
let acquire_scratch s scratch =
  match !scratch with
  | Some pair -> pair
  | None ->
      let slabs = slab_count s and ssz = slab_size s in
      let pair =
        ( Array.init slabs (fun _ -> Array.create_float ssz),
          Array.init slabs (fun _ -> Array.create_float ssz) )
      in
      scratch := Some pair;
      pair

(* All block bits below the slab bit → slab-local replay. [bits] is
   ascending (built by {!bits_of_mask}). *)
let bits_local s (bits : int array) =
  let k = Array.length bits in
  k = 0 || bits.(k - 1) < s.sb

let exec_kernel s scratch = function
  | K_gate g -> apply s g
  | K_sweep sw -> apply_sweep s sw
  | K_diag { bits; ph_re; ph_im } ->
      if not (sharded s) then
        run_seg s (size s)
          (seg_diag_block s.sl_re.(0) s.sl_im.(0) bits ph_re ph_im)
      else
        run_slabs s (fun sl ->
            seg_diag_block_sl s.sl_re.(sl) s.sl_im.(sl) bits ph_re ph_im
              (sl lsl s.sb) 0 (slab_size s))
  | K_perm { pre; bits; offs; perm; ph } ->
      let k = Array.length bits in
      if not (sharded s) then
        run_seg s
          (size s lsr k)
          (seg_perm s.sl_re.(0) s.sl_im.(0) bits offs perm ph pre)
      else if bits_local s bits then begin
        let groups = slab_size s lsr k in
        let dim = Array.length offs in
        run_slab_ranges s (fun slo shi ->
            let ar = Array.make dim 0. and ai = Array.make dim 0. in
            for sl = slo to shi - 1 do
              seg_perm_sl s.sl_re.(sl) s.sl_im.(sl) bits offs perm ph pre ar
                ai (sl lsl s.sb) 0 groups
            done)
      end
      else begin
        (* cross-slab: destination-major streaming, out-of-place *)
        let pinv = Array.make (Array.length perm) 0 in
        Array.iteri (fun c r -> Array.unsafe_set pinv r c) perm;
        let out_re, out_im = acquire_scratch s scratch in
        let runs = size s lsr bits.(0) in
        (if size s <= par_threshold then
           seg_perm_stream s out_re out_im bits offs pinv ph pre 0 runs
         else
           Par.parallel_for (Par.global ()) ~start:0 ~stop:runs (fun lo hi ->
               seg_perm_stream s out_re out_im bits offs pinv ph pre lo hi));
        scratch := Some (s.sl_re, s.sl_im);
        s.sl_re <- out_re;
        s.sl_im <- out_im
      end
  | K_perm_full { inv; ph } ->
      let ssz = slab_size s in
      let out_re, out_im = acquire_scratch s scratch in
      if not (sharded s) then
        run_seg s (size s)
          (seg_perm_full s.sl_re.(0) s.sl_im.(0) out_re.(0) out_im.(0) inv ph)
      else
        run_slabs s (fun sl ->
            seg_perm_full_sh s out_re.(sl) out_im.(sl) inv ph (sl lsl s.sb) ssz);
      (* ping-pong: the old slabs become the next op's scratch *)
      scratch := Some (s.sl_re, s.sl_im);
      s.sl_re <- out_re;
      s.sl_im <- out_im
  | K_had { pre; bits; offs } ->
      let k = Array.length bits in
      if not (sharded s) then
        run_seg s (size s lsr k) (seg_had s.sl_re.(0) s.sl_im.(0) bits offs pre)
      else if bits_local s bits then begin
        let groups = slab_size s lsr k in
        let dim = Array.length offs in
        run_slab_ranges s (fun slo shi ->
            let ar = Array.make dim 0. and ai = Array.make dim 0. in
            for sl = slo to shi - 1 do
              seg_had_sl s.sl_re.(sl) s.sl_im.(sl) bits offs pre ar ai
                (sl lsl s.sb) 0 groups
            done)
      end
      else begin
        (* split: slab-local butterfly rounds first (with the pre-sweep
           folded into their gather), then the cross-slab rounds stream
           slab tuples in lockstep — same ascending-bit round order and
           identical per-amplitude arithmetic as the one-pass kernel *)
        let nlow = ref 0 in
        while !nlow < k && bits.(!nlow) < s.sb do
          incr nlow
        done;
        let nlow = !nlow in
        (if nlow > 0 then begin
           let lbits = Array.sub bits 0 nlow in
           let loffs = offs_of lbits in
           let groups = slab_size s lsr nlow in
           let ldim = Array.length loffs in
           run_slab_ranges s (fun slo shi ->
               let ar = Array.make ldim 0. and ai = Array.make ldim 0. in
               for sl = slo to shi - 1 do
                 seg_had_sl s.sl_re.(sl) s.sl_im.(sl) lbits loffs pre ar ai
                   (sl lsl s.sb) 0 groups
               done)
         end
         else
           match pre with
           | Some sw ->
               run_slabs s (fun sl ->
                   seg_sweep_mul s.sl_re.(sl) s.sl_im.(sl) sw (sl lsl s.sb) 0
                     (slab_size s))
           | None -> ());
        let kh = k - nlow in
        let hoffs = offs_of (Array.init kh (fun i -> bits.(nlow + i) - s.sb)) in
        let hmask =
          let m = ref 0 in
          for i = nlow to k - 1 do
            m := !m lor (1 lsl (bits.(i) - s.sb))
          done;
          !m
        in
        let sl_re = s.sl_re and sl_im = s.sl_im in
        let slabs = slab_count s in
        let body lo hi = seg_had_high sl_re sl_im hoffs hmask kh slabs lo hi in
        if size s <= par_threshold then body 0 (slab_size s)
        else
          Par.parallel_for (Par.global ()) ~start:0 ~stop:(slab_size s) body
      end
  | K_dense { pre; bits; offs; u_re; u_im } ->
      let k = Array.length bits in
      if not (sharded s) then
        run_seg s
          (size s lsr k)
          (seg_dense s.sl_re.(0) s.sl_im.(0) bits offs u_re u_im pre)
      else if bits_local s bits then begin
        let groups = slab_size s lsr k in
        let dim = Array.length offs in
        run_slab_ranges s (fun slo shi ->
            let ar = Array.make dim 0. and ai = Array.make dim 0. in
            let br = Array.make dim 0. and bi = Array.make dim 0. in
            for sl = slo to shi - 1 do
              seg_dense_sl s.sl_re.(sl) s.sl_im.(sl) bits offs u_re u_im pre
                ar ai br bi (sl lsl s.sb) 0 groups
            done)
      end
      else run_seg s (size s lsr k) (seg_dense_g s bits offs u_re u_im pre)

(* Shard classification for telemetry: slab-local kernels touch no
   amplitude outside their slab (diagonals qualify at any layout). *)
let kernel_local s = function
  | K_sweep _ | K_diag _ -> true
  | K_gate g -> is_diag g || gate_mask g land lnot s.smask = 0
  | K_perm { bits; _ } | K_had { bits; _ } | K_dense { bits; _ } ->
      bits_local s bits
  | K_perm_full _ -> false

(** [execute p s] replays the schedule on [s] in place. On sharded
    states it also counts slab-local vs cross-slab kernels and the
    number of exchange rounds (maximal runs of consecutive cross-slab
    kernels) into the [sv.shard.*] counters. *)
let execute p s =
  if p.n <> num_qubits s then
    invalid_arg "Statevector.Plan.execute: qubit mismatch";
  let scratch = ref None in
  if not (sharded s) then Array.iter (exec_kernel s scratch) p.ops
  else begin
    let locals = ref 0 and exch = ref 0 and rounds = ref 0 in
    let in_exchange = ref false in
    Array.iter
      (fun k ->
        (if kernel_local s k then begin
           incr locals;
           in_exchange := false
         end
         else begin
           incr exch;
           if not !in_exchange then begin
             incr rounds;
             in_exchange := true
           end
         end);
        exec_kernel s scratch k)
      p.ops;
    if Obs.enabled () then begin
      if !locals > 0 then Obs.count ~by:!locals "sv.shard.local_blocks";
      if !exch > 0 then Obs.count ~by:!exch "sv.shard.exchange_blocks";
      if !rounds > 0 then Obs.count ~by:!rounds "sv.shard.exchange_rounds"
    end
  end

type stats = {
  ops : int;
  blocks : int;
  fused_gates : int;
  source_gates : int;
  dense : int;
  perm : int; (* narrow + full-width permutation blocks *)
  diag : int;
  had : int; (* fused Hadamard (Kronecker) blocks *)
  sweeps : int; (* standalone + folded (build-folded sweeps vanish) *)
  passthrough : int;
}

(** [stats p] summarizes the schedule (tests and CLIs read this). *)
let stats (p : t) =
  let dense = ref 0 and perm = ref 0 and diag = ref 0 in
  let had = ref 0 and sweeps = ref 0 and passthrough = ref 0 in
  Array.iter
    (function
      | K_gate _ -> incr passthrough
      | K_sweep _ -> incr sweeps
      | K_diag _ -> incr diag
      | K_perm { pre; _ } ->
          incr perm;
          if pre <> None then incr sweeps
      | K_perm_full _ -> incr perm
      | K_had { pre; _ } ->
          incr had;
          if pre <> None then incr sweeps
      | K_dense { pre; _ } ->
          incr dense;
          if pre <> None then incr sweeps)
    p.ops;
  { ops = Array.length p.ops; blocks = p.blocks; fused_gates = p.fused_gates;
    source_gates = p.source_gates; dense = !dense; perm = !perm;
    diag = !diag; had = !had; sweeps = !sweeps; passthrough = !passthrough }
