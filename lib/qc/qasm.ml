(** OpenQASM 2.0 interchange (paper ref [37]).

    {!to_string} emits any circuit whose gates exist in the OpenQASM
    standard header (high-level Mcx/Mcz must be compiled away first,
    except ccx which qelib provides). {!parse} reads back the same
    subset — enough for round-tripping our own output and for exporting to
    IBM-style toolchains. *)

open Gate

exception Unsupported of string

let gate_line g =
  match g with
  | X q -> Printf.sprintf "x q[%d];" q
  | Y q -> Printf.sprintf "y q[%d];" q
  | Z q -> Printf.sprintf "z q[%d];" q
  | H q -> Printf.sprintf "h q[%d];" q
  | S q -> Printf.sprintf "s q[%d];" q
  | Sdg q -> Printf.sprintf "sdg q[%d];" q
  | T q -> Printf.sprintf "t q[%d];" q
  | Tdg q -> Printf.sprintf "tdg q[%d];" q
  | Rz (a, q) -> Printf.sprintf "rz(%.17g) q[%d];" a q
  | Cnot (a, b) -> Printf.sprintf "cx q[%d],q[%d];" a b
  | Cz (a, b) -> Printf.sprintf "cz q[%d],q[%d];" a b
  | Swap (a, b) -> Printf.sprintf "swap q[%d],q[%d];" a b
  | Ccx (a, b, c) -> Printf.sprintf "ccx q[%d],q[%d],q[%d];" a b c
  | Ccz _ | Mcx _ | Mcz _ ->
      raise (Unsupported (Printf.sprintf "Qasm: no OpenQASM equivalent for %s" (name g)))

(** [to_string ?measure circuit] renders OpenQASM 2.0; with
    [measure = true] (default) all qubits are measured into a classical
    register at the end. *)
let to_string ?(measure = true) circuit =
  let n = Circuit.num_qubits circuit in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" n);
  if measure then Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" n);
  Circuit.iter
    (fun g ->
      Buffer.add_string buf (gate_line g);
      Buffer.add_char buf '\n')
    circuit;
  if measure then
    for q = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "measure q[%d] -> c[%d];\n" q q)
    done;
  Buffer.contents buf

exception Parse_error of string

let parse_qubit tok =
  try Scanf.sscanf tok "q[%d]" (fun i -> i)
  with _ -> raise (Parse_error (Printf.sprintf "bad qubit operand %S" tok))

(** [parse text] reads the subset emitted by {!to_string} and returns the
    circuit (measurements are recognized and dropped — our backends measure
    everything at the end anyway). *)
let parse text =
  let lines = String.split_on_char '\n' text in
  let n = ref 0 in
  let gates = ref [] in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      let line =
        match String.index_opt line '/' with
        | Some i when i + 1 < String.length line && line.[i + 1] = '/' ->
            String.trim (String.sub line 0 i)
        | _ -> line
      in
      if line = "" || String.length line < 2 then ()
      else if String.length line >= 8 && String.sub line 0 8 = "OPENQASM" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "include" then ()
      else if String.length line >= 4 && String.sub line 0 4 = "creg" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "measure" then ()
      else if String.length line >= 4 && String.sub line 0 4 = "qreg" then
        (try Scanf.sscanf line "qreg q[%d];" (fun k -> n := k)
         with _ -> raise (Parse_error ("bad qreg: " ^ line)))
      else begin
        let line = String.sub line 0 (String.length line - 1) in
        (* strip ';' *)
        let opname, rest =
          match String.index_opt line ' ' with
          | Some i ->
              (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
          | None -> raise (Parse_error ("bad statement: " ^ line))
        in
        let args = String.split_on_char ',' (String.trim rest) |> List.map String.trim in
        let q i = parse_qubit (List.nth args i) in
        let g =
          match opname with
          | "x" -> X (q 0)
          | "y" -> Y (q 0)
          | "z" -> Z (q 0)
          | "h" -> H (q 0)
          | "s" -> S (q 0)
          | "sdg" -> Sdg (q 0)
          | "t" -> T (q 0)
          | "tdg" -> Tdg (q 0)
          | "cx" -> Cnot (q 0, q 1)
          | "cz" -> Cz (q 0, q 1)
          | "swap" -> Swap (q 0, q 1)
          | "ccx" -> Ccx (q 0, q 1, q 2)
          | op when String.length op > 3 && String.sub op 0 3 = "rz(" ->
              let angle =
                try Scanf.sscanf op "rz(%f)" (fun a -> a)
                with _ -> raise (Parse_error ("bad rz: " ^ op))
              in
              Rz (angle, q 0)
          | op -> raise (Parse_error ("unknown gate: " ^ op))
        in
        gates := g :: !gates
      end)
    lines;
  Circuit.of_gates !n (List.rev !gates)
