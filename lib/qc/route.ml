(** Qubit routing for linear-nearest-neighbour (LNN) architectures.

    The paper's Sec. I/IV frame compilation as mapping to {e hardware-
    specific} operations; 2017-era devices (IBM QX included) only coupled
    neighbouring qubits. This pass takes a compiled circuit whose gates
    touch at most two qubits and inserts SWAPs so that every two-qubit gate
    acts on adjacent lines of a 1-D chain. The logical-to-physical mapping
    is {e not} undone at the end (cheaper); the final placement is returned
    so results can be read out correctly. *)

exception Not_two_qubit of Gate.t

type result = {
  circuit : Circuit.t;
  swaps_inserted : int;
  (* physical line of each logical qubit at the end *)
  final_placement : int array;
}

(** [lnn circuit] routes to the chain [0 — 1 — … — n−1] with greedy
    move-together SWAP insertion. Raises {!Not_two_qubit} if a gate with
    three or more qubits is present (compile first). *)
let lnn circuit =
  let n = Circuit.num_qubits circuit in
  (* phys.(logical) = physical position; log.(physical) = logical qubit *)
  let phys = Array.init n Fun.id in
  let log_ = Array.init n Fun.id in
  let out = ref [] in
  let swaps = ref 0 in
  let emit g = out := g :: !out in
  let swap_phys p =
    (* swap physical positions p and p+1 *)
    emit (Gate.Swap (p, p + 1));
    incr swaps;
    let a = log_.(p) and b = log_.(p + 1) in
    log_.(p) <- b;
    log_.(p + 1) <- a;
    phys.(a) <- p + 1;
    phys.(b) <- p
  in
  let remap1 g q =
    let p = phys.(q) in
    match (g : Gate.t) with
    | Gate.X _ -> Gate.X p
    | Gate.Y _ -> Gate.Y p
    | Gate.Z _ -> Gate.Z p
    | Gate.H _ -> Gate.H p
    | Gate.S _ -> Gate.S p
    | Gate.Sdg _ -> Gate.Sdg p
    | Gate.T _ -> Gate.T p
    | Gate.Tdg _ -> Gate.Tdg p
    | Gate.Rz (a, _) -> Gate.Rz (a, p)
    | g -> raise (Not_two_qubit g)
  in
  let adjacentize a b =
    (* move logical a and b together; returns their physical positions *)
    while abs (phys.(a) - phys.(b)) > 1 do
      (* move the outer one toward the other *)
      if phys.(a) < phys.(b) then swap_phys phys.(a) else swap_phys phys.(b)
    done;
    (phys.(a), phys.(b))
  in
  Circuit.iter
    (fun g ->
      match (g : Gate.t) with
      | Gate.Cnot (a, b) ->
          let pa, pb = adjacentize a b in
          emit (Gate.Cnot (pa, pb))
      | Gate.Cz (a, b) ->
          let pa, pb = adjacentize a b in
          emit (Gate.Cz (pa, pb))
      | Gate.Swap (a, b) ->
          let pa, pb = adjacentize a b in
          emit (Gate.Swap (pa, pb))
      | Gate.Ccx _ | Gate.Ccz _ | Gate.Mcx _ | Gate.Mcz _ -> raise (Not_two_qubit g)
      | g1 ->
          let q = List.hd (Gate.qubits g1) in
          emit (remap1 g1 q))
    circuit;
  { circuit = Circuit.of_rev_gates n !out;
    swaps_inserted = !swaps;
    final_placement = Array.copy phys }

(** [is_lnn circuit] holds when every multi-qubit gate already acts on
    adjacent lines. *)
let is_lnn circuit =
  Circuit.fold
    (fun acc g ->
      acc
      && match Gate.qubits g with
         | [ a; b ] -> abs (a - b) = 1
         | [ _ ] -> true
         | _ -> false)
    true circuit

(** [verify ~original r] checks semantic equivalence on small circuits:
    simulating the routed circuit and permuting the qubits back by the
    final placement must reproduce the original state for a basket of
    random product inputs (exact unitary check when narrow enough). *)
let verify ~original r =
  let n = Circuit.num_qubits original in
  if n > 10 then invalid_arg "Route.verify: too wide";
  (* undo the placement with explicit SWAP gates appended to the routed
     circuit, then compare unitaries *)
  let undo = ref [] in
  let placement = Array.copy r.final_placement in
  (* selection sort with swaps on physical lines *)
  let log_ = Array.make n 0 in
  Array.iteri (fun l p -> log_.(p) <- l) placement;
  for target = 0 to n - 1 do
    (* bring logical [target] to physical [target] with adjacent swaps *)
    let p = ref placement.(target) in
    while !p > target do
      undo := Gate.Swap (!p - 1, !p) :: !undo;
      let other = log_.(!p - 1) in
      log_.(!p - 1) <- target;
      log_.(!p) <- other;
      placement.(other) <- !p;
      placement.(target) <- !p - 1;
      decr p
    done
  done;
  let undone = Circuit.add_list r.circuit (List.rev !undo) in
  Unitary.equal (Unitary.of_circuit original) (Unitary.of_circuit undone)
