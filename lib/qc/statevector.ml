(** Dense state-vector simulation.

    The state of [n] qubits is stored as two unboxed float arrays (real and
    imaginary parts) of length [2^n]; basis index bit [q] is the value of
    qubit [q]. Practical up to n ≈ 22 on a laptop — the same regime the
    paper quotes for the QDK simulator backend (Sec. VIII).

    Three throughput features live here (see DESIGN.md, "Parallel
    execution" and "Kernel plans"):

    - {e parallel kernels}: above {!par_threshold} amplitudes, every gate
      kernel chunks its index space over the shared {!Par} domain pool.
      Each chunk writes a disjoint slice, so the result is bit-identical
      for any worker count; small states stay sequential to avoid pool
      overhead. Reductions (norm2, prob_of_qubit, sampler) chunk into a
      {e fixed} block count and combine partials in a fixed tree order,
      so they too are bit-identical at any [--jobs].
    - {e gate fusion}: the legacy prepass collapses runs of 1-qubit
      gates on the same qubit into a single 2×2 matrix and coalesces
      consecutive diagonal gates (Z/S/T/Rz/CZ/CCZ/MCZ) into one phase
      sweep — one memory pass instead of one per gate.
    - {e kernel plans}: {!run}/{!run_on} compile the circuit once into a
      flat schedule of classified block kernels ({!Plan}), cache it by
      structural key, and replay it across shots — dense 4×4/8×8 blocks,
      permutation blocks, diagonal sweeps with precomputed half tables,
      each one cache-blocked memory pass. [--no-plan]
      ({!set_plan_enabled}) falls back to the legacy prepass. *)

(* [re]/[im] are mutable so full-width permutation kernels can ping-pong
   into a scratch pair and swap, instead of copying back. Nothing outside
   this module holds an alias to the arrays across a run. *)
type t = { n : int; mutable re : float array; mutable im : float array }

(** [init n] is |0…0⟩. *)
let init n =
  if n < 1 || n > 26 then invalid_arg "Statevector.init: bad qubit count";
  let size = 1 lsl n in
  let re = Array.make size 0. and im = Array.make size 0. in
  re.(0) <- 1.;
  { n; re; im }

let num_qubits s = s.n
let size s = 1 lsl s.n

(** [amplitude s x] is the complex amplitude of basis state [x]. *)
let amplitude s x =
  let r = s.re.(x) and j = s.im.(x) in
  { Complex.re = r; im = j }

(** [prob s x] is the outcome probability of basis state [x]. *)
let prob s x = (s.re.(x) *. s.re.(x)) +. (s.im.(x) *. s.im.(x))

(* --- gate kernels --- *)

(* States at or below this size run kernels sequentially: the per-batch
   synchronization (~µs) would dwarf the loop itself. 2^14 amplitudes ≈
   256 kB, roughly where one pass stops fitting in L2. *)
let par_threshold = 1 lsl 14

(* Below this many qubits the fusion prepass costs more than it saves:
   kernel passes over ≤ 2^9 amplitudes are already sub-µs, so the
   prepass's gate-array copy and op-list allocations dominate. The
   prepass itself is size-independent, so tests drive it directly via
   {!fuse_gates}/{!apply_op} on small circuits. *)
let fuse_min_qubits = 10

(* Kernel bodies are top-level segment functions over [lo, hi): the
   sequential path calls them directly (a known call — loop locals stay
   in registers), and only the parallel path pays a closure. Wrapping
   the whole body in a [par_range (fun lo hi -> ...)] closure costs
   ~15% on kernel-bound circuits without flambda, because captured
   variables are re-read from the closure environment each iteration.
   Each segment writes a disjoint index slice, so any worker count
   computes bit-identical amplitudes (Par's contract). *)
let seg_1q re im bit (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) lo hi =
  let x = ref lo in
  while !x < hi do
    if !x land bit = 0 then begin
      let y = !x lor bit in
      let ar = re.(!x) and ai = im.(!x) and br = re.(y) and bi = im.(y) in
      re.(!x) <- (m00.re *. ar) -. (m00.im *. ai) +. (m01.re *. br) -. (m01.im *. bi);
      im.(!x) <- (m00.re *. ai) +. (m00.im *. ar) +. (m01.re *. bi) +. (m01.im *. br);
      re.(y) <- (m10.re *. ar) -. (m10.im *. ai) +. (m11.re *. br) -. (m11.im *. bi);
      im.(y) <- (m10.re *. ai) +. (m10.im *. ar) +. (m11.re *. bi) +. (m11.im *. br)
    end;
    incr x
  done

let apply_1q s q (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) =
  let bit = 1 lsl q in
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then seg_1q re im bit m00 m01 m10 m11 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_1q re im bit m00 m01 m10 m11 lo hi)

(* Pair kernels visit each (x, x lxor tbit) pair once via the tbit = 0
   representative; the tbit = 1 partner is never a representative itself,
   so chunking the full index range keeps writes disjoint. *)
(* The float array annotations matter: without them these move-only
   bodies generalize polymorphically and compile to generic (boxing)
   array accesses — ~2.5x slower. *)
let seg_swap (re : float array) (im : float array) mask want tbit lo hi =
  for x = lo to hi - 1 do
    if x land tbit = 0 && x land mask = want then begin
      let y = x lor tbit in
      let r = re.(x) and i = im.(x) in
      re.(x) <- re.(y);
      im.(x) <- im.(y);
      re.(y) <- r;
      im.(y) <- i
    end
  done

let swap_pairs s ~mask ~want ~tbit =
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then seg_swap re im mask want tbit 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_swap re im mask want tbit lo hi)

let seg_phase re im mask want pre pim lo hi =
  for x = lo to hi - 1 do
    if x land mask = want then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pre *. r) -. (pim *. i);
      im.(x) <- (pre *. i) +. (pim *. r)
    end
  done

let phase_on s ~mask ~want (p : Complex.t) =
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then seg_phase re im mask want p.re p.im 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_phase re im mask want p.re p.im lo hi)

(* Swap = visit the (a=1, b=0) pattern once, exchange with (a=0, b=1). *)
let seg_swap2 (re : float array) (im : float array) ab bb lo hi =
  for x = lo to hi - 1 do
    if x land ab <> 0 && x land bb = 0 then begin
      let y = (x lxor ab) lor bb in
      let r = re.(x) and i = im.(x) in
      re.(x) <- re.(y);
      im.(x) <- im.(y);
      re.(y) <- r;
      im.(y) <- i
    end
  done

let c0 = Complex.zero
let c1 = Complex.one
let ci = Complex.i
let cm1 = Complex.{ re = -1.; im = 0. }
let cmi = Complex.{ re = 0.; im = -1. }
let sqrt2inv = 1. /. sqrt 2.
let ch = Complex.{ re = sqrt2inv; im = 0. }
let chm = Complex.{ re = -.sqrt2inv; im = 0. }
let omega = Complex.{ re = sqrt2inv; im = sqrt2inv } (* e^{iπ/4} *)
let omega_bar = Complex.{ re = sqrt2inv; im = -.sqrt2inv }

let mask_of qs = List.fold_left (fun m q -> m lor (1 lsl q)) 0 qs

(** [apply s g] applies one gate in place. *)
let apply s (g : Gate.t) =
  match g with
  | Gate.X q -> swap_pairs s ~mask:0 ~want:0 ~tbit:(1 lsl q)
  | Gate.Y q ->
      apply_1q s q c0 cmi ci c0
  | Gate.Z q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cm1
  | Gate.S q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) ci
  | Gate.Sdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cmi
  | Gate.T q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega
  | Gate.Tdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega_bar
  | Gate.Rz (a, q) ->
      (* rz(θ) = diag(e^{-iθ/2}, e^{iθ/2}) *)
      let h = a /. 2. in
      let bit = 1 lsl q in
      phase_on s ~mask:bit ~want:0 Complex.{ re = cos h; im = -.sin h };
      phase_on s ~mask:bit ~want:bit Complex.{ re = cos h; im = sin h }
  | Gate.H q -> apply_1q s q ch ch ch chm
  | Gate.Cnot (c, t) -> swap_pairs s ~mask:(1 lsl c) ~want:(1 lsl c) ~tbit:(1 lsl t)
  | Gate.Cz (a, b) ->
      let m = (1 lsl a) lor (1 lsl b) in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Swap (a, b) ->
      let ab = 1 lsl a and bb = 1 lsl b in
      let re = s.re and im = s.im in
      let sz = size s in
      if sz <= par_threshold then seg_swap2 re im ab bb 0 sz
      else
        Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
            seg_swap2 re im ab bb lo hi)
  | Gate.Ccx (a, b, t) ->
      let m = (1 lsl a) lor (1 lsl b) in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Ccz (a, b, c) ->
      let m = mask_of [ a; b; c ] in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Mcx (cs, t) ->
      let m = mask_of cs in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Mcz qs ->
      let m = mask_of qs in
      phase_on s ~mask:m ~want:m cm1

(* --- deterministic parallel reductions --- *)

(* Reductions chunk the index space into a *fixed* number of blocks
   (independent of pool width), sum each block left-to-right, and
   combine the per-block partials in a fixed pairwise-tree order. The
   float summation order is therefore a pure function of the state
   size — any [--jobs] value produces bit-identical sums, which is what
   lets norm2/prob_of_qubit/sampler parallelize at all (an
   unconstrained chunked sum would change with the worker count). *)
let reduce_blocks = 256

(* Pairwise tree sum over the partials, in place: stride doubling,
   (((p0+p1)+(p2+p3))+((p4+p5)+(p6+p7)))+… *)
let tree_sum (parts : float array) =
  let n = Array.length parts in
  if n = 0 then 0.
  else begin
    let stride = ref 1 in
    while !stride < n do
      let i = ref 0 in
      while !i + !stride < n do
        parts.(!i) <- parts.(!i) +. parts.(!i + !stride);
        i := !i + (2 * !stride)
      done;
      stride := 2 * !stride
    done;
    parts.(0)
  end

(* 1-slot accumulator arrays, not refs: float ref stores box per
   iteration. *)
let seg_sum2 (re : float array) (im : float array) lo hi =
  let acc = [| 0. |] in
  for x = lo to hi - 1 do
    acc.(0) <- acc.(0) +. (re.(x) *. re.(x)) +. (im.(x) *. im.(x))
  done;
  acc.(0)

let seg_sum2_bit (re : float array) (im : float array) bit lo hi =
  let acc = [| 0. |] in
  for x = lo to hi - 1 do
    if x land bit <> 0 then
      acc.(0) <- acc.(0) +. (re.(x) *. re.(x)) +. (im.(x) *. im.(x))
  done;
  acc.(0)

(* Fixed-chunk parallel sum of [seg lo hi] over [0, sz). Small states
   keep the plain sequential scan (also the exact historical order). *)
let reduce_sum sz (seg : int -> int -> float) =
  if sz <= par_threshold then seg 0 sz
  else begin
    let k = reduce_blocks in
    let parts =
      Par.map_floats (Par.global ()) ~tasks:k (fun i ->
          seg (sz * i / k) (sz * (i + 1) / k))
    in
    tree_sum parts
  end

(** [norm2 s] is the total probability (should stay 1 within rounding).
    Chunked tree sum above {!par_threshold}; bit-identical at any
    [--jobs]. *)
let norm2 s = reduce_sum (size s) (seg_sum2 s.re s.im)

(** [prob_of_qubit s q] is the probability of reading 1 on qubit [q]. *)
let prob_of_qubit s q = reduce_sum (size s) (seg_sum2_bit s.re s.im (1 lsl q))

(* --- gate fusion prepass --- *)

(* A 2×2 unitary, row-major. *)
type m2 = { m00 : Complex.t; m01 : Complex.t; m10 : Complex.t; m11 : Complex.t }

(* [m2_after g f] is the matrix of "apply f, then g": the product g·f. *)
let m2_after g f =
  let open Complex in
  { m00 = add (mul g.m00 f.m00) (mul g.m01 f.m10);
    m01 = add (mul g.m00 f.m01) (mul g.m01 f.m11);
    m10 = add (mul g.m10 f.m00) (mul g.m11 f.m10);
    m11 = add (mul g.m10 f.m01) (mul g.m11 f.m11) }

(* The 2×2 matrix of a 1-qubit gate, with its qubit. *)
let m2_of_gate = function
  | Gate.X q -> Some (q, { m00 = c0; m01 = c1; m10 = c1; m11 = c0 })
  | Gate.Y q -> Some (q, { m00 = c0; m01 = cmi; m10 = ci; m11 = c0 })
  | Gate.Z q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = cm1 })
  | Gate.H q -> Some (q, { m00 = ch; m01 = ch; m10 = ch; m11 = chm })
  | Gate.S q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = ci })
  | Gate.Sdg q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = cmi })
  | Gate.T q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = omega })
  | Gate.Tdg q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = omega_bar })
  | Gate.Rz (a, q) ->
      let h = a /. 2. in
      Some
        ( q,
          { m00 = Complex.{ re = cos h; im = -.sin h }; m01 = c0; m10 = c0;
            m11 = Complex.{ re = cos h; im = sin h } } )
  | _ -> None

(* One multiplicative term of a diagonal gate: amplitudes whose index
   matches [want] on [mask] pick up the phase (pre + i·pim). *)
type dterm = { mask : int; want : int; pre : float; pim : float }

let dterm mask want (p : Complex.t) = { mask; want; pre = p.re; pim = p.im }

(* The phase terms of a diagonal gate (diagonal gates all commute, so any
   run of them coalesces into one sweep over these terms). *)
let dterms_of_gate g =
  let one_hot q p = [ dterm (1 lsl q) (1 lsl q) p ] in
  match g with
  | Gate.Z q -> Some (one_hot q cm1)
  | Gate.S q -> Some (one_hot q ci)
  | Gate.Sdg q -> Some (one_hot q cmi)
  | Gate.T q -> Some (one_hot q omega)
  | Gate.Tdg q -> Some (one_hot q omega_bar)
  | Gate.Rz (a, q) ->
      let h = a /. 2. in
      let bit = 1 lsl q in
      Some
        [ dterm bit 0 Complex.{ re = cos h; im = -.sin h };
          dterm bit bit Complex.{ re = cos h; im = sin h } ]
  | Gate.Cz (a, b) ->
      let m = (1 lsl a) lor (1 lsl b) in
      Some [ dterm m m cm1 ]
  | Gate.Ccz (a, b, c) ->
      let m = mask_of [ a; b; c ] in
      Some [ dterm m m cm1 ]
  | Gate.Mcz qs ->
      let m = mask_of qs in
      Some [ dterm m m cm1 ]
  | _ -> None

(* One sweep applying a whole run of diagonal gates. The combined phase of
   index [x] is a product over matching terms; terms whose mask lies
   entirely in the low or high half of the index bits are precomputed
   into per-half lookup tables of size O(√2^n), so the sweep itself is
   phase(x) = lo[x low bits] · hi[x high bits] · (rare straddling terms)
   — two complex multiplies per amplitude however long the run is, and
   one memory pass instead of one per gate. Amplitudes whose combined
   phase is exactly 1 are not written, so untouched entries keep their
   exact values (basis states stay exact). All arithmetic is on unboxed
   floats — no [Complex.t] in the inner loop. *)
let seg_phase_sweep re im lo_re lo_im hi_re hi_im half_mask h
    (straddling : dterm array) lo hi =
  let ns = Array.length straddling in
  (* 2-slot float array, not refs: ref assignment would box per store *)
  let acc = [| 1.; 0. |] in
  for x = lo to hi - 1 do
    let l = x land half_mask and g = x lsr h in
    let ar = Array.unsafe_get lo_re l and ai = Array.unsafe_get lo_im l in
    let br = Array.unsafe_get hi_re g and bi = Array.unsafe_get hi_im g in
    acc.(0) <- (ar *. br) -. (ai *. bi);
    acc.(1) <- (ar *. bi) +. (ai *. br);
    for t = 0 to ns - 1 do
      let tm = Array.unsafe_get straddling t in
      if x land tm.mask = tm.want then begin
        let r = acc.(0) and i = acc.(1) in
        acc.(0) <- (r *. tm.pre) -. (i *. tm.pim);
        acc.(1) <- (r *. tm.pim) +. (i *. tm.pre)
      end
    done;
    let pr = acc.(0) and pi = acc.(1) in
    if not (pr = 1. && pi = 0.) then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pr *. r) -. (pi *. i);
      im.(x) <- (pr *. i) +. (pi *. r)
    end
  done

(* A fully prepared diagonal sweep: the per-half phase tables plus any
   straddling terms. Building one is O(√2^n · terms); the plan layer
   builds each sweep once and replays it across shots, where the old
   path rebuilt the tables on every execution. *)
type sweep = {
  lo_re : float array;
  lo_im : float array;
  hi_re : float array;
  hi_im : float array;
  half_mask : int;
  h : int;
  straddling : dterm array;
}

let sweep_of_terms n (terms : dterm array) =
  let h = (n + 1) / 2 in
  let lo_sz = 1 lsl h and hi_sz = 1 lsl (n - h) in
  let half_mask = lo_sz - 1 in
  let lo_re = Array.make lo_sz 1. and lo_im = Array.make lo_sz 0. in
  let hi_re = Array.make hi_sz 1. and hi_im = Array.make hi_sz 0. in
  let fold_into tre tim tsz mask want pre pim =
    for i = 0 to tsz - 1 do
      if i land mask = want then begin
        let r = tre.(i) and j = tim.(i) in
        tre.(i) <- (r *. pre) -. (j *. pim);
        tim.(i) <- (r *. pim) +. (j *. pre)
      end
    done
  in
  let straddling = ref [] in
  Array.iter
    (fun t ->
      if t.mask land half_mask = t.mask then
        fold_into lo_re lo_im lo_sz t.mask t.want t.pre t.pim
      else if t.mask land lnot half_mask = t.mask then
        fold_into hi_re hi_im hi_sz (t.mask lsr h) (t.want lsr h) t.pre t.pim
      else straddling := t :: !straddling)
    (* multi-qubit masks spanning both halves (a CZ across the midline)
       stay as per-index checks; they are rare and few *)
    terms;
  { lo_re; lo_im; hi_re; hi_im; half_mask; h;
    straddling = Array.of_list (List.rev !straddling) }

let apply_sweep s sw =
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then
    seg_phase_sweep re im sw.lo_re sw.lo_im sw.hi_re sw.hi_im sw.half_mask sw.h
      sw.straddling 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_phase_sweep re im sw.lo_re sw.lo_im sw.hi_re sw.hi_im sw.half_mask
          sw.h sw.straddling lo hi)

let apply_phase_terms s (terms : dterm array) =
  apply_sweep s (sweep_of_terms s.n terms)

type op =
  | Op_gate of Gate.t
  | Op_fused1q of int * m2 (* a run of 1q gates on one qubit, multiplied out *)
  | Op_phases of dterm array (* a run of diagonal gates, one sweep *)

type pending =
  | P_none
  | P_1q of { q : int; m : m2; count : int; first : Gate.t }
  | P_diag of {
      rev_terms : dterm list list;
      ones : int; (* 1-qubit diag gates in the run *)
      rev_gates : Gate.t list;
    }

(* Qubit of a 1-qubit gate, or -1 for multi-qubit gates. *)
let q1_of = function
  | Gate.X q | Gate.Y q | Gate.Z q | Gate.H q | Gate.S q | Gate.Sdg q | Gate.T q
  | Gate.Tdg q
  | Gate.Rz (_, q) ->
      q
  | _ -> -1

(* A diagonal run re-emits its original gates unless it contains at
   least this many 1-qubit phase gates. Those are the passes a sweep
   collapses; multi-qubit CZ/CCZ/MCZ kernels already touch only a
   2^-k subset of amplitudes, so a run of bare CZs (hidden-shift
   oracles) or QFT's length-2 Rz runs is cheaper unfused. *)
let min_diag_run = 3

(* Greedy single-pass fusion. Runs of length 1 re-emit the original gate:
   the specialized kernels (swap_pairs for X, phase_on for Z/S/T) beat a
   generic 2×2 multiply, and exact integer kernels stay exact. *)
let fuse_gates (gates : Gate.t array) =
  let ops = ref [] in
  let emit o = ops := o :: !ops in
  let flush = function
    | P_none -> ()
    | P_1q { m; q; count; first } ->
        if count = 1 then emit (Op_gate first) else emit (Op_fused1q (q, m))
    | P_diag { rev_terms; ones; rev_gates } ->
        if ones < min_diag_run then
          List.iter (fun g -> emit (Op_gate g)) (List.rev rev_gates)
        else emit (Op_phases (Array.of_list (List.concat (List.rev rev_terms))))
  in
  let one_of g = if q1_of g >= 0 then 1 else 0 in
  let step pending g =
    match (pending, m2_of_gate g, dterms_of_gate g) with
    | P_1q p, Some (q, m), _ when q = p.q ->
        P_1q { p with m = m2_after m p.m; count = p.count + 1 }
    | P_diag p, _, Some ts ->
        P_diag
          { rev_terms = ts :: p.rev_terms; ones = p.ones + one_of g;
            rev_gates = g :: p.rev_gates }
    | _, _, Some ts ->
        flush pending;
        P_diag { rev_terms = [ ts ]; ones = one_of g; rev_gates = [ g ] }
    | _, Some (q, m), None ->
        flush pending;
        P_1q { q; m; count = 1; first = g }
    | _, None, None ->
        flush pending;
        emit (Op_gate g);
        P_none
  in
  flush (Array.fold_left step P_none gates);
  List.rev !ops

let apply_op s = function
  | Op_gate g -> apply s g
  | Op_fused1q (q, m) -> apply_1q s q m.m00 m.m01 m.m10 m.m11
  | Op_phases terms -> apply_phase_terms s terms

(* Cheap pre-scan deciding whether the prepass can fuse anything at all:
   a diagonal run with ≥ [min_diag_run] 1-qubit phase gates, or a
   non-diagonal 1-qubit gate directly followed by a 1-qubit gate on the
   same qubit (the [P_1q] seed). Circuits with no such adjacency
   (H/CNOT-mix layers, QFT's Rz/CNOT interleaving, bare-CZ oracles)
   skip the prepass and its allocations — false negatives only skip an
   optimization, never change results. *)
let is_diag = function
  | Gate.Z _ | Gate.S _ | Gate.Sdg _ | Gate.T _ | Gate.Tdg _ | Gate.Rz _ | Gate.Cz _
  | Gate.Ccz _ | Gate.Mcz _ ->
      true
  | _ -> false

let has_fusable (gates : Gate.t array) =
  let n = Array.length gates in
  let found = ref false in
  let diag_run = ref 0 in
  let i = ref 0 in
  while (not !found) && !i < n do
    let g = gates.(!i) in
    if is_diag g then begin
      if q1_of g >= 0 then incr diag_run;
      if !diag_run >= min_diag_run then found := true
    end
    else begin
      diag_run := 0;
      let q = q1_of g in
      if q >= 0 && !i + 1 < n && q1_of gates.(!i + 1) = q then found := true
    end;
    incr i
  done;
  !found

(* --- kernel plans --- *)

(** Compile-once execution plans.

    {!Plan.build} walks a circuit once and emits a flat schedule of
    kernel ops:

    - runs of {e monomial} gates (one nonzero per unitary column:
      X/CNOT/Toffoli/SWAP and every phase gate — everything but H) fuse
      into one permutation-with-phases block of up to
      {!max_mono_qubits} qubits, built {e symbolically} as a basis-state
      table with exact integer/constant arithmetic — classical gates get
      exactly unit phases, and the replay kernel then skips the phase
      multiply entirely. Full-width blocks replay as one out-of-place
      scatter through a precomputed inverse map with sequential writes
      (the state buffers ping-pong with a scratch pair); narrower blocks
      gather/scatter disjoint 2^k-amplitude groups in place. Blocks that
      compose to the identity are dropped from the schedule;
    - runs of H on distinct qubits fuse into one gather / k-butterfly /
      scatter pass ({!max_kron_qubits} wide) — same arithmetic as the
      individual passes, k× fewer memory sweeps;
    - only when supports genuinely overlap across kinds does a block
      fall back to a general dense unitary, capped at
      {!max_dense_qubits} (8×8, extracted by simulating basis columns —
      the extraction [Unitary.of_circuit] performs, inlined here because
      [Unitary] sits above this module), past which the matvec turns
      compute-bound;
    - long diagonal runs become one separable-table phase sweep with the
      tables prebuilt at plan time; a pending sweep is {e folded into}
      the gather of the next block — or, for a full-width monomial
      block, folded into its phase table {e at build time}, so the
      sweep's memory pass disappears from the schedule entirely;
    - dense-matrix entries within 1e-12 of 0/±1 are snapped exact, so
      classical blocks replay with exact arithmetic like the specialized
      kernels they replace.

    Replay makes one cache-blocked pass per op: the compressed index
    space (one index per 2^k-amplitude group) is chunked over the {!Par}
    pool, each group gathered into scratch, transformed, written back.
    Groups are disjoint, so any [--jobs] value is bit-identical.
    {!plan_of_circuit} caches plans by structural key; multi-shot and
    multi-run callers build once and replay ([sv.plan.replay]). *)
module Plan = struct
  (* Dense blocks cap at 8×8: per amplitude a 2^k-wide matvec costs
     O(2^k) complex multiplies, so k = 3 roughly matches the arithmetic
     of the 1q passes it replaces while making 3x fewer memory passes;
     k = 4 already triples the arithmetic. Dense blocks only form when
     gates actually share qubits — fusing disjoint 1q gates into a
     Kronecker product would multiply arithmetic for nothing. *)
  let max_dense_qubits = 3

  (* Monomial blocks (one nonzero per matrix column) gather, phase and
     scatter — O(1) per amplitude whatever the width — so CNOT chains
     and similar classical runs fuse very wide. 16 caps the basis table
     at 2^16 entries (512 kB per array). *)
  let max_mono_qubits = 16

  (* Hadamard runs on distinct qubits fuse into one gather / k-butterfly
     / scatter pass; arithmetic matches the individual passes, so the cap
     only bounds the scratch group (2^6 = 64 amplitudes). *)
  let max_kron_qubits = 6

  (* Building a monomial block costs gates × 2^k basis updates; this
     bounds that product so plan compilation stays a small multiple of
     one unfused execution even for deep circuits. *)
  let max_block_work = 1 lsl 22

  type kernel =
    | K_gate of Gate.t (* pass-through: single gates, wide MCX/MCZ *)
    | K_sweep of sweep (* long diagonal run, prebuilt half tables *)
    | K_diag of { bits : int array; ph_re : float array; ph_im : float array }
    | K_perm of {
        pre : sweep option; (* diagonal sweep folded into the gather *)
        bits : int array;
        offs : int array;
        perm : int array; (* column -> row of the single nonzero entry *)
        ph : (float array * float array) option; (* per-column phase; None = all 1 *)
      }
    | K_perm_full of {
        (* a monomial block spanning every qubit: one out-of-place pass,
           sequential writes through the inverse map, then buffer swap *)
        inv : int array; (* output index -> input index *)
        ph : (float array * float array) option; (* input-indexed phase *)
      }
    | K_had of {
        (* Hadamards on distinct qubits: butterflies in scratch registers *)
        pre : sweep option;
        bits : int array;
        offs : int array;
      }
    | K_dense of {
        pre : sweep option;
        bits : int array;
        offs : int array;
        u_re : float array; (* 2^k × 2^k, row-major *)
        u_im : float array;
      }

  type t = {
    n : int;
    ops : kernel array;
    blocks : int; (* fused kernels (dense + diag + perm + sweeps) *)
    fused_gates : int; (* source gates absorbed into fused kernels *)
    source_gates : int;
  }

  (* Everything except H is monomial in our gate set (diagonal gates
     trivially, X/Y/CNOT/SWAP/CCX/MCX as permutations with phases). *)
  let is_monomial = function Gate.H _ -> false | _ -> true

  let gate_mask g = mask_of (Gate.qubits g)

  let popcount m =
    let c = ref 0 and x = ref m in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr c
    done;
    !c

  let bits_of_mask m =
    let bits = Array.make (popcount m) 0 in
    let i = ref 0 and b = ref 0 and x = ref m in
    while !x <> 0 do
      if !x land 1 <> 0 then begin
        bits.(!i) <- !b;
        incr i
      end;
      incr b;
      x := !x lsr 1
    done;
    bits

  (* offs.(j) scatters local index j back to the global bit positions. *)
  let offs_of (bits : int array) =
    let k = Array.length bits in
    Array.init (1 lsl k) (fun j ->
        let o = ref 0 in
        for b = 0 to k - 1 do
          if j land (1 lsl b) <> 0 then o := !o lor (1 lsl bits.(b))
        done;
        !o)

  let snap v =
    if Float.abs v < 1e-12 then 0.
    else if Float.abs (v -. 1.) < 1e-12 then 1.
    else if Float.abs (v +. 1.) < 1e-12 then -1.
    else v

  (* The block's matrix on its local qubits, by basis-column simulation
     of the remapped gate list. [rev_gates] is in reverse application
     order (the builder's accumulator shape). *)
  let block_matrix n (bits : int array) rev_gates =
    let k = Array.length bits in
    let dim = 1 lsl k in
    let local q =
      let r = ref 0 in
      for b = 0 to k - 1 do
        if bits.(b) = q then r := b
      done;
      !r
    in
    let c = Circuit.map_qubits ~n:k local (Circuit.of_rev_gates n rev_gates) in
    let u_re = Array.make (dim * dim) 0. and u_im = Array.make (dim * dim) 0. in
    for col = 0 to dim - 1 do
      let s = { n = k; re = Array.make dim 0.; im = Array.make dim 0. } in
      s.re.(col) <- 1.;
      Circuit.iter (apply s) c;
      for row = 0 to dim - 1 do
        u_re.((row * dim) + col) <- snap s.re.(row);
        u_im.((row * dim) + col) <- snap s.im.(row)
      done
    done;
    (u_re, u_im)

  (* Diagonal / permutation / general, from the matrix itself (robust to
     cancellations the gate list hides: H;Z;H classifies as the X-type
     permutation it is). Off-diagonal zeros are exact after snapping;
     permutation entries are unit-magnitude within 1e-9. *)
  type block_class =
    | B_diag of float array * float array
    | B_perm of int array * float array * float array
    | B_dense

  let classify dim (u_re : float array) (u_im : float array) =
    let diagonal = ref true in
    (try
       for row = 0 to dim - 1 do
         for col = 0 to dim - 1 do
           if row <> col then begin
             let idx = (row * dim) + col in
             if u_re.(idx) <> 0. || u_im.(idx) <> 0. then begin
               diagonal := false;
               raise Exit
             end
           end
         done
       done
     with Exit -> ());
    if !diagonal then
      B_diag
        ( Array.init dim (fun j -> u_re.((j * dim) + j)),
          Array.init dim (fun j -> u_im.((j * dim) + j)) )
    else begin
      let perm = Array.make dim (-1) in
      let ph_re = Array.make dim 0. and ph_im = Array.make dim 0. in
      let ok = ref true in
      for col = 0 to dim - 1 do
        for row = 0 to dim - 1 do
          let idx = (row * dim) + col in
          let m = (u_re.(idx) *. u_re.(idx)) +. (u_im.(idx) *. u_im.(idx)) in
          if m > 0.5 then begin
            if Float.abs (m -. 1.) < 1e-9 then begin
              perm.(col) <- row;
              ph_re.(col) <- u_re.(idx);
              ph_im.(col) <- u_im.(idx)
            end
            else ok := false
          end
          else if m > 1e-18 then ok := false
        done;
        if perm.(col) < 0 then ok := false
      done;
      if !ok then B_perm (perm, ph_re, ph_im) else B_dense
    end

  (* Symbolic product of a monomial gate run on the block's local basis:
     row.(b) is the output basis state of local input b, (pr, pi).(b) its
     phase. O(2^k) per gate, no dense matrix — this is what lets monomial
     blocks span 16 qubits. All updates are exact integer/constant
     arithmetic, so classical blocks (CNOT chains, Toffoli cascades)
     come out with exactly unit phases. *)
  let mono_block n (bits : int array) rev_gates =
    let k = Array.length bits in
    let dim = 1 lsl k in
    let local q =
      let r = ref 0 in
      for b = 0 to k - 1 do
        if bits.(b) = q then r := b
      done;
      !r
    in
    let c = Circuit.map_qubits ~n:k local (Circuit.of_rev_gates n rev_gates) in
    let row = Array.init dim Fun.id in
    let pr = Array.make dim 1. and pi = Array.make dim 0. in
    let phase_if mask want (p : Complex.t) =
      for b = 0 to dim - 1 do
        if Array.unsafe_get row b land mask = want then begin
          let r = Array.unsafe_get pr b and i = Array.unsafe_get pi b in
          Array.unsafe_set pr b ((r *. p.re) -. (i *. p.im));
          Array.unsafe_set pi b ((r *. p.im) +. (i *. p.re))
        end
      done
    in
    let flip_if mask want tbit =
      for b = 0 to dim - 1 do
        let r = Array.unsafe_get row b in
        if r land mask = want then Array.unsafe_set row b (r lxor tbit)
      done
    in
    Circuit.iter
      (fun g ->
        match g with
        | Gate.X q -> flip_if 0 0 (1 lsl q)
        | Gate.Y q ->
            (* Y|0⟩ = i|1⟩, Y|1⟩ = -i|0⟩ *)
            let bit = 1 lsl q in
            for b = 0 to dim - 1 do
              let r = row.(b) in
              row.(b) <- r lxor bit;
              let rr = pr.(b) and ii = pi.(b) in
              if r land bit = 0 then begin
                pr.(b) <- -.ii;
                pi.(b) <- rr
              end
              else begin
                pr.(b) <- ii;
                pi.(b) <- -.rr
              end
            done
        | Gate.Z q ->
            let b = 1 lsl q in
            phase_if b b cm1
        | Gate.S q ->
            let b = 1 lsl q in
            phase_if b b ci
        | Gate.Sdg q ->
            let b = 1 lsl q in
            phase_if b b cmi
        | Gate.T q ->
            let b = 1 lsl q in
            phase_if b b omega
        | Gate.Tdg q ->
            let b = 1 lsl q in
            phase_if b b omega_bar
        | Gate.Rz (a, q) ->
            let h = a /. 2. in
            let bit = 1 lsl q in
            phase_if bit 0 Complex.{ re = cos h; im = -.sin h };
            phase_if bit bit Complex.{ re = cos h; im = sin h }
        | Gate.Cnot (cq, t) ->
            let cb = 1 lsl cq in
            flip_if cb cb (1 lsl t)
        | Gate.Cz (a, b) ->
            let m = (1 lsl a) lor (1 lsl b) in
            phase_if m m cm1
        | Gate.Swap (a, b) ->
            let ab = 1 lsl a and bb = 1 lsl b in
            let both = ab lor bb in
            for x = 0 to dim - 1 do
              let r = row.(x) in
              let v = r land both in
              if v = ab || v = bb then row.(x) <- r lxor both
            done
        | Gate.Ccx (a, b, t) ->
            let m = (1 lsl a) lor (1 lsl b) in
            flip_if m m (1 lsl t)
        | Gate.Ccz (a, b, cq) ->
            let m = mask_of [ a; b; cq ] in
            phase_if m m cm1
        | Gate.Mcx (cs, t) ->
            let m = mask_of cs in
            flip_if m m (1 lsl t)
        | Gate.Mcz qs ->
            let m = mask_of qs in
            phase_if m m cm1
        | Gate.H _ -> assert false (* monomial blocks never contain H *))
      c;
    (row, pr, pi)

  (* The phase a sweep applies at global index [x] — used to fold a
     pending sweep into a full-width block's phase table at build time,
     which removes the sweep's memory pass from the schedule entirely. *)
  let sweep_phase_at sw x =
    let l = x land sw.half_mask and g = x lsr sw.h in
    let ar = sw.lo_re.(l) and ai = sw.lo_im.(l) in
    let br = sw.hi_re.(g) and bi = sw.hi_im.(g) in
    let rr = ref ((ar *. br) -. (ai *. bi))
    and ri = ref ((ar *. bi) +. (ai *. br)) in
    Array.iter
      (fun tm ->
        if x land tm.mask = tm.want then begin
          let r = !rr and i = !ri in
          rr := (r *. tm.pre) -. (i *. tm.pim);
          ri := (r *. tm.pim) +. (i *. tm.pre)
        end)
      sw.straddling;
    (!rr, !ri)

  let all_unit (pr : float array) (pi : float array) =
    let ok = ref true in
    for b = 0 to Array.length pr - 1 do
      if pr.(b) <> 1. || pi.(b) <> 0. then ok := false
    done;
    !ok

  (* --- building --- *)

  let build circuit =
    Obs.with_span "sv.plan.build" @@ fun () ->
    let n = Circuit.num_qubits circuit in
    let gates = Circuit.to_array circuit in
    let ng = Array.length gates in
    (* pass 1: mark the maximal diagonal runs worth a separable sweep
       (same profitability rule as the legacy prepass) *)
    let in_sweep = Array.make (max 1 ng) false in
    let i = ref 0 in
    while !i < ng do
      if is_diag gates.(!i) then begin
        let j = ref !i and ones = ref 0 in
        while !j < ng && is_diag gates.(!j) do
          if q1_of gates.(!j) >= 0 then incr ones;
          incr j
        done;
        if !ones >= min_diag_run then
          for x = !i to !j - 1 do
            in_sweep.(x) <- true
          done;
        i := !j
      end
      else incr i
    done;
    (* pass 2: greedy block grouping of everything else, folding each
       pending sweep into the next dense/permutation block *)
    let ops = ref [] and blocks = ref 0 and fused = ref 0 in
    let emit k = ops := k :: !ops in
    let pending_sweep = ref None in
    let take_sweep () =
      let sw = !pending_sweep in
      pending_sweep := None;
      sw
    in
    let emit_sweep_if_pending () =
      match take_sweep () with Some sw -> emit (K_sweep sw) | None -> ()
    in
    (* Pending block kinds: [P_mono] — monomial gates only, realized by a
       symbolic basis table (wide); [P_had] — Hadamards on distinct
       qubits, realized by in-register butterflies; [P_dense] — mixed
       support on ≤ max_dense_qubits, realized by a dense matrix. *)
    let pend_rev = ref [] and pend_mask = ref 0 in
    let pend_n = ref 0 and pend_kind = ref `Mono in
    let reset_pend () =
      pend_rev := [];
      pend_mask := 0;
      pend_n := 0;
      pend_kind := `Mono
    in
    let flush_block () =
      (match !pend_rev with
      | [] -> ()
      | [ g ] ->
          (* singletons re-emit the original gate: the specialized
             kernels beat a generic block and stay exact *)
          emit_sweep_if_pending ();
          emit (K_gate g)
      | revs -> (
          let bits = bits_of_mask !pend_mask in
          let k = Array.length bits in
          let dim = 1 lsl k in
          incr blocks;
          fused := !fused + !pend_n;
          match !pend_kind with
          | `Had -> emit (K_had { pre = take_sweep (); bits; offs = offs_of bits })
          | `Mono ->
              let row, pr, pi = mono_block n bits revs in
              (* full-width blocks fold the pending sweep into the phase
                 table now — its memory pass disappears entirely *)
              if k = n then (
                match take_sweep () with
                | Some sw ->
                    for b = 0 to dim - 1 do
                      let sr, si = sweep_phase_at sw b in
                      let r = pr.(b) and i = pi.(b) in
                      pr.(b) <- (r *. sr) -. (i *. si);
                      pi.(b) <- (r *. si) +. (i *. sr)
                    done
                | None -> ());
              let identity = ref true in
              for b = 0 to dim - 1 do
                if row.(b) <> b then identity := false
              done;
              let unit = all_unit pr pi in
              if !identity && unit then () (* block collapsed to identity *)
              else if !identity then begin
                emit_sweep_if_pending ();
                emit (K_diag { bits; ph_re = pr; ph_im = pi })
              end
              else if k = n then begin
                let inv = Array.make dim 0 in
                for b = 0 to dim - 1 do
                  inv.(row.(b)) <- b
                done;
                emit
                  (K_perm_full { inv; ph = (if unit then None else Some (pr, pi)) })
              end
              else
                emit
                  (K_perm
                     { pre = take_sweep (); bits; offs = offs_of bits; perm = row;
                       ph = (if unit then None else Some (pr, pi)) })
          | `Dense -> (
              let u_re, u_im = block_matrix n bits revs in
              match classify dim u_re u_im with
              | B_diag (ph_re, ph_im) ->
                  emit_sweep_if_pending ();
                  emit (K_diag { bits; ph_re; ph_im })
              | B_perm (perm, ph_re, ph_im) ->
                  emit
                    (K_perm
                       { pre = take_sweep (); bits; offs = offs_of bits; perm;
                         ph =
                           (if all_unit ph_re ph_im then None
                            else Some (ph_re, ph_im)) })
              | B_dense ->
                  emit
                    (K_dense
                       { pre = take_sweep (); bits; offs = offs_of bits; u_re;
                         u_im }))));
      reset_pend ()
    in
    let start_pend g gm kind =
      pend_rev := [ g ];
      pend_mask := gm;
      pend_n := 1;
      pend_kind := kind
    in
    let merge g u kind =
      pend_rev := g :: !pend_rev;
      pend_mask := u;
      pend_n := !pend_n + 1;
      pend_kind := kind
    in
    (* Monomial merges are bounded by width and by build work
       (gates × 2^k); Hadamard runs by scratch width; dense blocks form
       only when supports genuinely overlap (fusing disjoint gates into a
       Kronecker product multiplies arithmetic for nothing). *)
    let mono_fits u extra =
      let pc = popcount u in
      pc <= max_mono_qubits && (!pend_n + extra) lsl pc <= max_block_work
    in
    Array.iteri
      (fun idx g ->
        if in_sweep.(idx) then begin
          if idx = 0 || not in_sweep.(idx - 1) then begin
            (* run start: collect the whole run into one sweep *)
            flush_block ();
            emit_sweep_if_pending ();
            let terms = ref [] and j = ref idx and count = ref 0 in
            while !j < ng && in_sweep.(!j) do
              (match dterms_of_gate gates.(!j) with
              | Some ts -> terms := ts :: !terms
              | None -> assert false);
              incr count;
              incr j
            done;
            incr blocks;
            fused := !fused + !count;
            pending_sweep :=
              Some
                (sweep_of_terms n
                   (Array.of_list (List.concat (List.rev !terms))))
          end
        end
        else begin
          let gm = gate_mask g and gmono = is_monomial g in
          if gmono && popcount gm > max_mono_qubits then begin
            (* wide MCX/MCZ: straight through the specialized kernel *)
            flush_block ();
            emit_sweep_if_pending ();
            emit (K_gate g)
          end
          else if !pend_n = 0 then start_pend g gm (if gmono then `Mono else `Had)
          else begin
            let u = !pend_mask lor gm in
            let overlap = !pend_mask land gm <> 0 in
            match !pend_kind with
            | `Mono ->
                if gmono && mono_fits u 1 then merge g u `Mono
                else if (not gmono) && popcount u <= max_dense_qubits then
                  merge g u `Dense
                else begin
                  flush_block ();
                  start_pend g gm (if gmono then `Mono else `Had)
                end
            | `Had ->
                if (not gmono) && (not overlap) && popcount u <= max_kron_qubits
                then merge g u `Had
                else if overlap && popcount u <= max_dense_qubits then
                  merge g u `Dense
                else begin
                  flush_block ();
                  start_pend g gm (if gmono then `Mono else `Had)
                end
            | `Dense ->
                if popcount u <= max_dense_qubits then merge g u `Dense
                else begin
                  flush_block ();
                  start_pend g gm (if gmono then `Mono else `Had)
                end
          end
        end)
      gates;
    flush_block ();
    emit_sweep_if_pending ();
    let p =
      { n; ops = Array.of_list (List.rev !ops); blocks = !blocks;
        fused_gates = !fused; source_gates = ng }
    in
    if Obs.enabled () then begin
      if p.blocks > 0 then begin
        Obs.count ~by:p.blocks "sv.plan.blocks";
        Obs.count ~by:p.fused_gates "sv.plan.fused_gates"
      end;
      Obs.add_attrs
        [ ("ops", Obs.Int (Array.length p.ops)); ("gates", Obs.Int ng);
          ("qubits", Obs.Int n) ]
    end;
    p

  (* --- replay kernels --- *)

  (* Expand a compressed group index by inserting a zero at each block
     bit, ascending — bits.(b) is the bit's final position, valid
     because all lower block bits are already inserted. *)
  let expand (bits : int array) i =
    let x = ref i in
    for b = 0 to Array.length bits - 1 do
      let low = (1 lsl Array.unsafe_get bits b) - 1 in
      x := ((!x land lnot low) lsl 1) lor (!x land low)
    done;
    !x

  (* Gather one group into scratch, optionally folding a diagonal
     sweep's phase into each amplitude as it is read. *)
  let gather_plain (re : float array) (im : float array) (offs : int array)
      (ar : float array) (ai : float array) base =
    for j = 0 to Array.length offs - 1 do
      let idx = base lor Array.unsafe_get offs j in
      Array.unsafe_set ar j (Array.unsafe_get re idx);
      Array.unsafe_set ai j (Array.unsafe_get im idx)
    done

  let gather_pre (re : float array) (im : float array) (offs : int array)
      (ar : float array) (ai : float array) (sw : sweep) base =
    let lo_re = sw.lo_re and lo_im = sw.lo_im in
    let hi_re = sw.hi_re and hi_im = sw.hi_im in
    let half_mask = sw.half_mask and h = sw.h in
    let straddling = sw.straddling in
    let ns = Array.length straddling in
    let acc = [| 1.; 0. |] in
    for j = 0 to Array.length offs - 1 do
      let idx = base lor Array.unsafe_get offs j in
      let l = idx land half_mask and g = idx lsr h in
      let pr0 = Array.unsafe_get lo_re l and pi0 = Array.unsafe_get lo_im l in
      let qr = Array.unsafe_get hi_re g and qi = Array.unsafe_get hi_im g in
      acc.(0) <- (pr0 *. qr) -. (pi0 *. qi);
      acc.(1) <- (pr0 *. qi) +. (pi0 *. qr);
      for t = 0 to ns - 1 do
        let tm = Array.unsafe_get straddling t in
        if idx land tm.mask = tm.want then begin
          let r = acc.(0) and i = acc.(1) in
          acc.(0) <- (r *. tm.pre) -. (i *. tm.pim);
          acc.(1) <- (r *. tm.pim) +. (i *. tm.pre)
        end
      done;
      let pr = acc.(0) and pi = acc.(1) in
      let vr = Array.unsafe_get re idx and vi = Array.unsafe_get im idx in
      Array.unsafe_set ar j ((pr *. vr) -. (pi *. vi));
      Array.unsafe_set ai j ((pr *. vi) +. (pi *. vr))
    done

  let seg_dense (re : float array) (im : float array) (bits : int array)
      (offs : int array) (u_re : float array) (u_im : float array)
      (pre : sweep option) lo hi =
    let dim = Array.length offs in
    let ar = Array.make dim 0. and ai = Array.make dim 0. in
    let br = Array.make dim 0. and bi = Array.make dim 0. in
    for i = lo to hi - 1 do
      let base = expand bits i in
      (match pre with
      | None -> gather_plain re im offs ar ai base
      | Some sw -> gather_pre re im offs ar ai sw base);
      for row = 0 to dim - 1 do
        let rb = row * dim in
        Array.unsafe_set br row 0.;
        Array.unsafe_set bi row 0.;
        for c = 0 to dim - 1 do
          let ur = Array.unsafe_get u_re (rb + c)
          and ui = Array.unsafe_get u_im (rb + c) in
          let xr = Array.unsafe_get ar c and xi = Array.unsafe_get ai c in
          Array.unsafe_set br row
            (Array.unsafe_get br row +. ((ur *. xr) -. (ui *. xi)));
          Array.unsafe_set bi row
            (Array.unsafe_get bi row +. ((ur *. xi) +. (ui *. xr)))
        done
      done;
      for j = 0 to dim - 1 do
        let idx = base lor Array.unsafe_get offs j in
        Array.unsafe_set re idx (Array.unsafe_get br j);
        Array.unsafe_set im idx (Array.unsafe_get bi j)
      done
    done

  let seg_perm (re : float array) (im : float array) (bits : int array)
      (offs : int array) (perm : int array)
      (ph : (float array * float array) option) (pre : sweep option) lo hi =
    let dim = Array.length offs in
    let ar = Array.make dim 0. and ai = Array.make dim 0. in
    match ph with
    | None ->
        (* all phases exactly 1 (pure classical block): move-only scatter *)
        for i = lo to hi - 1 do
          let base = expand bits i in
          (match pre with
          | None -> gather_plain re im offs ar ai base
          | Some sw -> gather_pre re im offs ar ai sw base);
          for c = 0 to dim - 1 do
            let row = Array.unsafe_get perm c in
            let idx = base lor Array.unsafe_get offs row in
            Array.unsafe_set re idx (Array.unsafe_get ar c);
            Array.unsafe_set im idx (Array.unsafe_get ai c)
          done
        done
    | Some (ph_re, ph_im) ->
        for i = lo to hi - 1 do
          let base = expand bits i in
          (match pre with
          | None -> gather_plain re im offs ar ai base
          | Some sw -> gather_pre re im offs ar ai sw base);
          for c = 0 to dim - 1 do
            let row = Array.unsafe_get perm c in
            let pr = Array.unsafe_get ph_re c and pi = Array.unsafe_get ph_im c in
            let xr = Array.unsafe_get ar c and xi = Array.unsafe_get ai c in
            let idx = base lor Array.unsafe_get offs row in
            Array.unsafe_set re idx ((pr *. xr) -. (pi *. xi));
            Array.unsafe_set im idx ((pr *. xi) +. (pi *. xr))
          done
        done

  (* Full-width permutation: out-of-place through the inverse map, so
     writes are sequential (reads scatter, which caches better than
     scattered writes) and chunks write disjoint output slices. *)
  let seg_perm_full (re : float array) (im : float array) (out_re : float array)
      (out_im : float array) (inv : int array)
      (ph : (float array * float array) option) lo hi =
    match ph with
    | None ->
        for y = lo to hi - 1 do
          let x = Array.unsafe_get inv y in
          Array.unsafe_set out_re y (Array.unsafe_get re x);
          Array.unsafe_set out_im y (Array.unsafe_get im x)
        done
    | Some (ph_re, ph_im) ->
        for y = lo to hi - 1 do
          let x = Array.unsafe_get inv y in
          let pr = Array.unsafe_get ph_re x and pi = Array.unsafe_get ph_im x in
          let vr = Array.unsafe_get re x and vi = Array.unsafe_get im x in
          Array.unsafe_set out_re y ((pr *. vr) -. (pi *. vi));
          Array.unsafe_set out_im y ((pr *. vi) +. (pi *. vr))
        done

  (* Hadamards on the block's k distinct qubits: gather a group, run one
     in-scratch butterfly round per qubit, scatter. Arithmetic per
     amplitude matches the k separate passes it replaces — the win is
     k memory passes collapsing into one. *)
  let seg_had (re : float array) (im : float array) (bits : int array)
      (offs : int array) (pre : sweep option) lo hi =
    let dim = Array.length offs in
    let k = Array.length bits in
    let ar = Array.make dim 0. and ai = Array.make dim 0. in
    for i = lo to hi - 1 do
      let base = expand bits i in
      (match pre with
      | None -> gather_plain re im offs ar ai base
      | Some sw -> gather_pre re im offs ar ai sw base);
      for b = 0 to k - 1 do
        let st = 1 lsl b in
        for x = 0 to dim - 1 do
          if x land st = 0 then begin
            let y = x lor st in
            let xr = Array.unsafe_get ar x and xi = Array.unsafe_get ai x in
            let yr = Array.unsafe_get ar y and yi = Array.unsafe_get ai y in
            Array.unsafe_set ar x (sqrt2inv *. (xr +. yr));
            Array.unsafe_set ai x (sqrt2inv *. (xi +. yi));
            Array.unsafe_set ar y (sqrt2inv *. (xr -. yr));
            Array.unsafe_set ai y (sqrt2inv *. (xi -. yi))
          end
        done
      done;
      for j = 0 to dim - 1 do
        let idx = base lor Array.unsafe_get offs j in
        Array.unsafe_set re idx (Array.unsafe_get ar j);
        Array.unsafe_set im idx (Array.unsafe_get ai j)
      done
    done

  let seg_diag_block (re : float array) (im : float array) (bits : int array)
      (ph_re : float array) (ph_im : float array) lo hi =
    let k = Array.length bits in
    for x = lo to hi - 1 do
      let j = ref 0 in
      for b = 0 to k - 1 do
        if x land (1 lsl Array.unsafe_get bits b) <> 0 then
          j := !j lor (1 lsl b)
      done;
      let pr = Array.unsafe_get ph_re !j and pi = Array.unsafe_get ph_im !j in
      if not (pr = 1. && pi = 0.) then begin
        let r = re.(x) and i = im.(x) in
        re.(x) <- (pr *. r) -. (pi *. i);
        im.(x) <- (pr *. i) +. (pi *. r)
      end
    done

  (* Chunk a kernel's index range over the pool when the *state* (not
     the compressed range) is big enough to amortize the pool. *)
  let run_seg s stop seg =
    if size s <= par_threshold then seg 0 stop
    else
      Par.parallel_for (Par.global ()) ~start:0 ~stop (fun lo hi -> seg lo hi)

  let exec_kernel s scratch = function
    | K_gate g -> apply s g
    | K_sweep sw -> apply_sweep s sw
    | K_diag { bits; ph_re; ph_im } ->
        run_seg s (size s) (seg_diag_block s.re s.im bits ph_re ph_im)
    | K_perm { pre; bits; offs; perm; ph } ->
        run_seg s
          (size s lsr Array.length bits)
          (seg_perm s.re s.im bits offs perm ph pre)
    | K_perm_full { inv; ph } ->
        let out_re, out_im =
          match !scratch with
          | Some pair -> pair
          | None ->
              let pair = (Array.make (size s) 0., Array.make (size s) 0.) in
              scratch := Some pair;
              pair
        in
        run_seg s (size s) (seg_perm_full s.re s.im out_re out_im inv ph);
        (* ping-pong: the old arrays become the next op's scratch *)
        scratch := Some (s.re, s.im);
        s.re <- out_re;
        s.im <- out_im
    | K_had { pre; bits; offs } ->
        run_seg s
          (size s lsr Array.length bits)
          (seg_had s.re s.im bits offs pre)
    | K_dense { pre; bits; offs; u_re; u_im } ->
        run_seg s
          (size s lsr Array.length bits)
          (seg_dense s.re s.im bits offs u_re u_im pre)

  (** [execute p s] replays the schedule on [s] in place. *)
  let execute p s =
    if p.n <> num_qubits s then
      invalid_arg "Statevector.Plan.execute: qubit mismatch";
    let scratch = ref None in
    Array.iter (exec_kernel s scratch) p.ops

  type stats = {
    ops : int;
    blocks : int;
    fused_gates : int;
    source_gates : int;
    dense : int;
    perm : int; (* narrow + full-width permutation blocks *)
    diag : int;
    had : int; (* fused Hadamard (Kronecker) blocks *)
    sweeps : int; (* standalone + folded (build-folded sweeps vanish) *)
    passthrough : int;
  }

  (** [stats p] summarizes the schedule (tests and CLIs read this). *)
  let stats (p : t) =
    let dense = ref 0 and perm = ref 0 and diag = ref 0 in
    let had = ref 0 and sweeps = ref 0 and passthrough = ref 0 in
    Array.iter
      (function
        | K_gate _ -> incr passthrough
        | K_sweep _ -> incr sweeps
        | K_diag _ -> incr diag
        | K_perm { pre; _ } ->
            incr perm;
            if pre <> None then incr sweeps
        | K_perm_full _ -> incr perm
        | K_had { pre; _ } ->
            incr had;
            if pre <> None then incr sweeps
        | K_dense { pre; _ } ->
            incr dense;
            if pre <> None then incr sweeps)
      p.ops;
    { ops = Array.length p.ops; blocks = p.blocks; fused_gates = p.fused_gates;
      source_gates = p.source_gates; dense = !dense; perm = !perm;
      diag = !diag; had = !had; sweeps = !sweeps; passthrough = !passthrough }
end

(* --- plan cache and execution entry points --- *)

let plan_enabled_flag = ref true

(** [set_plan_enabled b] — the CLIs' [--no-plan] escape hatch. With
    planning off, {!run}/{!run_on} fall back to the legacy fusion
    prepass (1q-run and diagonal-run coalescing, gate-by-gate kernels).
    [~fuse:false] remains the fully unfused reference path. *)
let set_plan_enabled b = plan_enabled_flag := b

let plan_enabled () = !plan_enabled_flag

(* Plans are pure functions of the circuit, cached by structural key so
   multi-shot sampling, runs_statistics and device retries build once
   and replay. Bounded FIFO; mutex-guarded for safety if a worker-domain
   caller ever simulates. *)
let plan_cache_limit = 64
let plan_cache : (string, Plan.t) Hashtbl.t = Hashtbl.create 32
let plan_fifo : string Queue.t = Queue.create ()
let plan_mutex = Mutex.create ()

(** [clear_plan_cache ()] drops every cached plan (benchmarks use this to
    measure cold builds). *)
let clear_plan_cache () =
  Mutex.lock plan_mutex;
  Hashtbl.reset plan_cache;
  Queue.clear plan_fifo;
  Mutex.unlock plan_mutex

(** [plan_of_circuit circuit] returns the cached plan for [circuit],
    building (and caching) it on first sight. Cache hits count
    [sv.plan.replay]. *)
let plan_of_circuit circuit =
  let key = Circuit.structural_key circuit in
  Mutex.lock plan_mutex;
  let hit = Hashtbl.find_opt plan_cache key in
  Mutex.unlock plan_mutex;
  match hit with
  | Some p ->
      if Obs.enabled () then Obs.count "sv.plan.replay";
      p
  | None ->
      let p = Plan.build circuit in
      Mutex.lock plan_mutex;
      if not (Hashtbl.mem plan_cache key) then begin
        Hashtbl.add plan_cache key p;
        Queue.push key plan_fifo;
        if Queue.length plan_fifo > plan_cache_limit then
          Hashtbl.remove plan_cache (Queue.pop plan_fifo)
      end;
      Mutex.unlock plan_mutex;
      p

(* Shared by run/run_on: plan replay (default), the legacy fusion
   prepass (--no-plan), the unfused reference (~fuse:false), and the
   telemetry both entry points must emit — [run_on] used to bypass it,
   under-counting qc.statevector.gates_applied for engine-driven
   simulation. *)
let exec ~fuse s circuit =
  let fuse = fuse && s.n >= fuse_min_qubits in
  if fuse && !plan_enabled_flag then begin
    let p = plan_of_circuit circuit in
    Plan.execute p s;
    if Obs.enabled () then
      Obs.count ~by:(Array.length p.Plan.ops) "qc.statevector.fused_ops"
  end
  else begin
    let gates = if fuse then Circuit.to_array circuit else [||] in
    if fuse && has_fusable gates then begin
      let ops = fuse_gates gates in
      List.iter (apply_op s) ops;
      if Obs.enabled () then
        Obs.count ~by:(List.length ops) "qc.statevector.fused_ops"
    end
    else begin
      Circuit.iter (apply s) circuit;
      if fuse && Obs.enabled () then
        (* nothing fusable: op count = gate count *)
        Obs.count ~by:(Circuit.num_gates circuit) "qc.statevector.fused_ops"
    end
  end;
  if Obs.enabled () then begin
    Obs.count ~by:(Circuit.num_gates circuit) "qc.statevector.gates_applied";
    Obs.add_attrs [ ("qubits", Obs.Int s.n) ]
  end

(** [run ?fuse circuit] simulates [circuit] from |0…0⟩. [fuse] (default
    true) runs the gate-fusion prepass on states of ≥ {!fuse_min_qubits}
    qubits; the result is equal up to float rounding (≤ 1e-12 per
    amplitude in practice). *)
let run ?(fuse = true) circuit =
  Obs.with_span "qc.statevector.run" @@ fun () ->
  let s = init (Circuit.num_qubits circuit) in
  exec ~fuse s circuit;
  s

(** [run_on ?fuse s circuit] applies [circuit] to an existing state in
    place, with the same span and counters as {!run}. *)
let run_on ?(fuse = true) s circuit =
  if Circuit.num_qubits circuit <> s.n then invalid_arg "Statevector.run_on";
  Obs.with_span "qc.statevector.run" @@ fun () -> exec ~fuse s circuit

(** [amplitude_damp s q ~gamma ~jump] applies one quantum-trajectory branch
    of the amplitude-damping (T1) channel on qubit [q]:
    with [jump] the excitation decays ([K1 = √γ |0⟩⟨1|]), otherwise the
    no-jump Kraus operator is applied; either way the state is
    renormalized. The caller samples [jump] with probability
    [γ · prob_of_qubit s q]. *)
let amplitude_damp s q ~gamma ~jump =
  let bit = 1 lsl q in
  let p1 = prob_of_qubit s q in
  if jump then begin
    let norm = sqrt (gamma *. p1) in
    if norm < 1e-300 then invalid_arg "Statevector.amplitude_damp: impossible jump";
    for x = 0 to size s - 1 do
      if x land bit = 0 then begin
        let y = x lor bit in
        s.re.(x) <- sqrt gamma *. s.re.(y) /. norm;
        s.im.(x) <- sqrt gamma *. s.im.(y) /. norm;
        s.re.(y) <- 0.;
        s.im.(y) <- 0.
      end
    done
  end
  else begin
    let keep = sqrt (1. -. gamma) in
    let norm = sqrt (1. -. (gamma *. p1)) in
    for x = 0 to size s - 1 do
      if x land bit <> 0 then begin
        s.re.(x) <- keep *. s.re.(x) /. norm;
        s.im.(x) <- keep *. s.im.(x) /. norm
      end
      else begin
        s.re.(x) <- s.re.(x) /. norm;
        s.im.(x) <- s.im.(x) /. norm
      end
    done
  end

(** [probabilities s] is the outcome distribution over basis states. *)
let probabilities s = Array.init (size s) (prob s)

(* --- measurement sampling --- *)

(** A precomputed cumulative distribution for repeated sampling from one
    state: build once ([O(2^n)]), then each draw is a binary search
    ([O(n)]) instead of a linear scan — the shape a multi-shot noiseless
    sampling loop wants. *)
type sampler = { cdf : float array }

(* CDF fill over [lo, hi) starting from a known running total. *)
let seg_cdf (re : float array) (im : float array) (cdf : float array) off lo hi
    =
  let acc = [| off |] in
  for x = lo to hi - 1 do
    acc.(0) <- acc.(0) +. (re.(x) *. re.(x)) +. (im.(x) *. im.(x));
    cdf.(x) <- acc.(0)
  done

(** [sampler s] precomputes the cumulative distribution of [s]. Large
    states build it in parallel with the same fixed-block determinism as
    {!norm2}: per-block totals, a sequential exclusive prefix over the
    (fixed-count) blocks, then a parallel fill of each block from its
    offset — bit-identical at any [--jobs]. *)
let sampler s =
  let sz = size s in
  let cdf = Array.make sz 0. in
  let re = s.re and im = s.im in
  if sz <= par_threshold then seg_cdf re im cdf 0. 0 sz
  else begin
    let k = reduce_blocks in
    let parts =
      Par.map_floats (Par.global ()) ~tasks:k (fun i ->
          seg_sum2 re im (sz * i / k) (sz * (i + 1) / k))
    in
    let offs = Array.make k 0. in
    for i = 1 to k - 1 do
      offs.(i) <- offs.(i - 1) +. parts.(i - 1)
    done;
    Par.run_tasks (Par.global ())
      (Array.init k (fun i () ->
           seg_cdf re im cdf offs.(i) (sz * i / k) (sz * (i + 1) / k)))
  end;
  { cdf }

(** [sample_with smp st] draws one outcome: the first basis state whose
    cumulative probability exceeds the uniform draw — bit-identical to
    the linear scan of {!sample}, in [O(n)] per shot. *)
let sample_with smp st =
  let r = Random.State.float st 1. in
  let cdf = smp.cdf in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > r then hi := mid else lo := mid + 1
  done;
  !lo

(** [sample st s] draws one measurement outcome of all qubits using PRNG
    state [st]. One-shot form; for many draws from the same state build a
    {!sampler} once and use {!sample_with}. *)
let sample st s =
  let r = Random.State.float st 1. in
  let sz = size s in
  let acc = ref 0. and x = ref 0 and out = ref (sz - 1) in
  while !x < sz do
    acc := !acc +. prob s !x;
    if r < !acc then begin
      out := !x;
      x := sz
    end
    else incr x
  done;
  !out

(** [most_likely s] is the basis state with the largest probability. *)
let most_likely s =
  let best = ref 0 in
  for x = 1 to size s - 1 do
    if prob s x > prob s !best then best := x
  done;
  !best

(** [equal_up_to_phase ?eps a b] holds when the states differ by at most a
    global phase: |⟨a|b⟩| ≈ 1. *)
let equal_up_to_phase ?(eps = 1e-9) a b =
  if a.n <> b.n then false
  else begin
    let dot_re = ref 0. and dot_im = ref 0. in
    for x = 0 to size a - 1 do
      (* ⟨a|b⟩ = Σ conj(a_x) b_x *)
      dot_re := !dot_re +. (a.re.(x) *. b.re.(x)) +. (a.im.(x) *. b.im.(x));
      dot_im := !dot_im +. (a.re.(x) *. b.im.(x)) -. (a.im.(x) *. b.re.(x))
    done;
    let mag = sqrt ((!dot_re *. !dot_re) +. (!dot_im *. !dot_im)) in
    Float.abs (mag -. 1.) < eps
  end

(** [is_basis_state ?eps s x] holds when the state is (up to phase) exactly
    the computational basis state [x]. *)
let is_basis_state ?(eps = 1e-9) s x = Float.abs (prob s x -. 1.) < eps
