(** Dense state-vector simulator — the execution façade.

    The implementation is layered into three modules this file stitches
    together (all part of the wrapped [Qc] library, so external callers
    only ever see [Qc.Statevector]):

    - {!Sv_shard} — sharded amplitude storage: split re/im float slabs,
      the shard-bits heuristic and [--shard-bits] override, the
      allocation guard ({!Unsupported} + [DAUTOQ_SV_MAX_QUBITS]), and
      the global-index accessors;
    - {!Sv_kernels} — per-gate kernels (flat fast paths and their
      sharded counterparts), deterministic slab-ordered reductions, and
      the legacy gate-fusion prepass ([--no-plan]);
    - {!Sv_plan} (exposed as {!Plan}) — compile-once execution plans:
      block fusion, the commuting-block peepholes, and sharded replay
      with slab-local / cross-slab kernel classification.

    This file owns what sits above the kernels: the LRU plan cache
    (capacity via [DAUTOQ_PLAN_CACHE]), the [run]/[run_on] entry points
    with their telemetry, and measurement (sampling, CDF construction,
    state comparisons).

    Determinism contract (PR 3/PR 8, extended to shards): for a fixed
    circuit and seed, amplitudes, sampler draws and histograms are
    bit-identical for {e any} [--jobs] value and {e any} shard-bits
    setting. Parallel loops write disjoint slabs or disjoint index
    chunks; reductions sum in a fixed order that never depends on pool
    width or slab size. *)

include Sv_kernels
module Plan = Sv_plan

(* --- plan cache and execution entry points --- *)

let plan_enabled_flag = ref true

(** [set_plan_enabled b] — the CLIs' [--no-plan] escape hatch. With
    planning off, {!run}/{!run_on} fall back to the legacy fusion
    prepass (1q-run and diagonal-run coalescing, gate-by-gate kernels).
    [~fuse:false] remains the fully unfused reference path. *)
let set_plan_enabled b = plan_enabled_flag := b

let plan_enabled () = !plan_enabled_flag

(* Plans are pure functions of the circuit, cached by structural key so
   multi-shot sampling, runs_statistics and device retries build once
   and replay. Bounded LRU (a tick per entry, bumped on hit; eviction
   drops the smallest tick), mutex-guarded for safety if a
   worker-domain caller ever simulates. *)
let default_plan_cache_capacity = 64

(** [plan_cache_capacity ()] is the cache bound: [DAUTOQ_PLAN_CACHE]
    when set to a positive integer, else 64. Read dynamically so the
    shell and tests can adjust it without a rebuild. *)
let plan_cache_capacity () =
  match Sys.getenv_opt "DAUTOQ_PLAN_CACHE" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> n
      | _ -> default_plan_cache_capacity)
  | None -> default_plan_cache_capacity

let plan_cache : (string, Plan.t * int ref) Hashtbl.t = Hashtbl.create 32
let plan_tick = ref 0
let plan_evictions = ref 0
let plan_mutex = Mutex.create ()

(** [clear_plan_cache ()] drops every cached plan and resets the
    recency clock and eviction count (benchmarks use this to measure
    cold builds). *)
let clear_plan_cache () =
  Mutex.lock plan_mutex;
  Hashtbl.reset plan_cache;
  plan_tick := 0;
  plan_evictions := 0;
  Mutex.unlock plan_mutex

(** [plan_cache_stats ()] is [(size, capacity, evictions)] — surfaced
    by the shell's [stats] command. *)
let plan_cache_stats () =
  Mutex.lock plan_mutex;
  let r = (Hashtbl.length plan_cache, plan_cache_capacity (), !plan_evictions) in
  Mutex.unlock plan_mutex;
  r

(* Evict least-recently-used entries until one slot is free. O(size)
   scan per eviction — fine at a capacity of tens. *)
let evict_lru_locked cap =
  while Hashtbl.length plan_cache >= cap do
    let victim = ref None in
    Hashtbl.iter
      (fun key (_, tick) ->
        match !victim with
        | Some (_, t) when t <= !tick -> ()
        | _ -> victim := Some (key, !tick))
      plan_cache;
    match !victim with
    | Some (key, _) ->
        Hashtbl.remove plan_cache key;
        incr plan_evictions;
        if Obs.enabled () then Obs.count "sv.plan.evict"
    | None -> assert false (* length > 0 *)
  done

(** [plan_of_circuit circuit] returns the cached plan for [circuit],
    building (and caching) it on first sight. Cache hits count
    [sv.plan.replay] and refresh the entry's recency. *)
let plan_of_circuit circuit =
  let key = Circuit.structural_key circuit in
  Mutex.lock plan_mutex;
  let hit = Hashtbl.find_opt plan_cache key in
  (match hit with
  | Some (_, tick) ->
      incr plan_tick;
      tick := !plan_tick
  | None -> ());
  Mutex.unlock plan_mutex;
  match hit with
  | Some (p, _) ->
      if Obs.enabled () then Obs.count "sv.plan.replay";
      p
  | None ->
      let p = Plan.build circuit in
      Mutex.lock plan_mutex;
      if not (Hashtbl.mem plan_cache key) then begin
        evict_lru_locked (plan_cache_capacity ());
        incr plan_tick;
        Hashtbl.add plan_cache key (p, ref !plan_tick)
      end;
      Mutex.unlock plan_mutex;
      p

(* Shared by run/run_on: plan replay (default), the legacy fusion
   prepass (--no-plan), the unfused reference (~fuse:false), and the
   telemetry both entry points must emit — [run_on] used to bypass it,
   under-counting qc.statevector.gates_applied for engine-driven
   simulation. *)
let exec ~fuse s circuit =
  let fuse = fuse && s.n >= fuse_min_qubits in
  if fuse && !plan_enabled_flag then begin
    let p = plan_of_circuit circuit in
    Plan.execute p s;
    if Obs.enabled () then
      Obs.count ~by:(Array.length p.Plan.ops) "qc.statevector.fused_ops"
  end
  else begin
    let gates = if fuse then Circuit.to_array circuit else [||] in
    if fuse && has_fusable gates then begin
      let ops = fuse_gates gates in
      List.iter (apply_op s) ops;
      if Obs.enabled () then
        Obs.count ~by:(List.length ops) "qc.statevector.fused_ops"
    end
    else begin
      Circuit.iter (apply s) circuit;
      if fuse && Obs.enabled () then
        (* nothing fusable: op count = gate count *)
        Obs.count ~by:(Circuit.num_gates circuit) "qc.statevector.fused_ops"
    end
  end;
  if Obs.enabled () then begin
    Obs.count ~by:(Circuit.num_gates circuit) "qc.statevector.gates_applied";
    Obs.add_attrs [ ("qubits", Obs.Int s.n) ]
  end

(** [run ?fuse circuit] simulates [circuit] from |0…0⟩. [fuse] (default
    true) runs the gate-fusion prepass on states of ≥ {!fuse_min_qubits}
    qubits; the result is equal up to float rounding (≤ 1e-12 per
    amplitude in practice). *)
let run ?(fuse = true) circuit =
  Obs.with_span "qc.statevector.run" @@ fun () ->
  let s = init (Circuit.num_qubits circuit) in
  exec ~fuse s circuit;
  s

(** [run_on ?fuse s circuit] applies [circuit] to an existing state in
    place, with the same span and counters as {!run}. *)
let run_on ?(fuse = true) s circuit =
  if Circuit.num_qubits circuit <> s.n then invalid_arg "Statevector.run_on";
  Obs.with_span "qc.statevector.run" @@ fun () -> exec ~fuse s circuit

(** [probabilities s] is the outcome distribution over basis states.
    Materializes all [2^n] floats — callers that only need a few entries
    should stream {!prob} instead. *)
let probabilities s = Array.init (size s) (prob s)

(* --- measurement sampling --- *)

(** A precomputed cumulative distribution for repeated sampling from one
    state: build once ([O(2^n)]), then each draw is a binary search
    ([O(n)]) instead of a linear scan — the shape a multi-shot noiseless
    sampling loop wants. The CDF mirrors the state's slab layout so a
    26-qubit sampler never asks for a single contiguous GB. *)
type sampler = { sb : int; smask : int; cdf : float array array }

(* CDF fill over global range [lo, hi) starting from a known running
   total: one accumulator walks the slab pieces in ascending global
   order, so the summation order matches the flat layout exactly. *)
let seg_cdf_sh s (cdf : float array array) off lo hi =
  let acc = [| off |] in
  iter_pieces s lo hi (fun sl _base lo_l hi_l ->
      let re = s.sl_re.(sl) and im = s.sl_im.(sl) in
      let c = cdf.(sl) in
      for x = lo_l to hi_l - 1 do
        acc.(0) <-
          acc.(0)
          +. (Array.unsafe_get re x *. Array.unsafe_get re x)
          +. (Array.unsafe_get im x *. Array.unsafe_get im x);
        Array.unsafe_set c x acc.(0)
      done)

(** [sampler s] precomputes the cumulative distribution of [s]. Large
    states build it in parallel with the same fixed-block determinism as
    {!norm2}: per-block totals, a sequential exclusive prefix over the
    (fixed-count) blocks, then a parallel fill of each block from its
    offset — bit-identical at any [--jobs] and any shard layout. *)
let sampler s =
  let sz = size s in
  let cdf =
    Array.init (slab_count s) (fun _ -> Array.make (slab_size s) 0.)
  in
  if sz <= par_threshold then seg_cdf_sh s cdf 0. 0 sz
  else begin
    let k = reduce_blocks in
    let parts =
      Par.map_floats (Par.global ()) ~tasks:k (fun i ->
          seg_sum2_sh s (sz * i / k) (sz * (i + 1) / k))
    in
    let offs = Array.make k 0. in
    for i = 1 to k - 1 do
      offs.(i) <- offs.(i - 1) +. parts.(i - 1)
    done;
    Par.run_tasks (Par.global ())
      (Array.init k (fun i () ->
           seg_cdf_sh s cdf offs.(i) (sz * i / k) (sz * (i + 1) / k)))
  end;
  { sb = s.sb; smask = s.smask; cdf }

(** [sample_with smp st] draws one outcome: the first basis state whose
    cumulative probability exceeds the uniform draw — bit-identical to
    the linear scan of {!sample}, in [O(n)] per shot. *)
let sample_with smp st =
  let r = Random.State.float st 1. in
  let get x = smp.cdf.(x lsr smp.sb).(x land smp.smask) in
  let sz = Array.length smp.cdf * (smp.smask + 1) in
  let lo = ref 0 and hi = ref (sz - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if get mid > r then hi := mid else lo := mid + 1
  done;
  !lo

(** [sample st s] draws one measurement outcome of all qubits using PRNG
    state [st]. One-shot form; for many draws from the same state build a
    {!sampler} once and use {!sample_with}. *)
let sample st s =
  let r = Random.State.float st 1. in
  let sz = size s in
  let acc = ref 0. and x = ref 0 and out = ref (sz - 1) in
  while !x < sz do
    acc := !acc +. prob s !x;
    if r < !acc then begin
      out := !x;
      x := sz
    end
    else incr x
  done;
  !out

(** [most_likely s] is the basis state with the largest probability. *)
let most_likely s =
  let best = ref 0 in
  for x = 1 to size s - 1 do
    if prob s x > prob s !best then best := x
  done;
  !best

(** [equal_up_to_phase ?eps a b] holds when the states differ by at most a
    global phase: |⟨a|b⟩| ≈ 1. *)
let equal_up_to_phase ?(eps = 1e-9) a b =
  if a.n <> b.n then false
  else begin
    let dot_re = ref 0. and dot_im = ref 0. in
    for x = 0 to size a - 1 do
      (* ⟨a|b⟩ = Σ conj(a_x) b_x *)
      let ar = get_re a x and ai = get_im a x in
      let br = get_re b x and bi = get_im b x in
      dot_re := !dot_re +. (ar *. br) +. (ai *. bi);
      dot_im := !dot_im +. (ar *. bi) -. (ai *. br)
    done;
    let mag = sqrt ((!dot_re *. !dot_re) +. (!dot_im *. !dot_im)) in
    Float.abs (mag -. 1.) < eps
  end

(** [is_basis_state ?eps s x] holds when the state is (up to phase) exactly
    the computational basis state [x]. *)
let is_basis_state ?(eps = 1e-9) s x = Float.abs (prob s x -. 1.) < eps
