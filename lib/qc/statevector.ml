(** Dense state-vector simulation.

    The state of [n] qubits is stored as two unboxed float arrays (real and
    imaginary parts) of length [2^n]; basis index bit [q] is the value of
    qubit [q]. Practical up to n ≈ 22 on a laptop — the same regime the
    paper quotes for the QDK simulator backend (Sec. VIII). *)

type t = { n : int; re : float array; im : float array }

(** [init n] is |0…0⟩. *)
let init n =
  if n < 1 || n > 26 then invalid_arg "Statevector.init: bad qubit count";
  let size = 1 lsl n in
  let re = Array.make size 0. and im = Array.make size 0. in
  re.(0) <- 1.;
  { n; re; im }

let num_qubits s = s.n
let size s = 1 lsl s.n

(** [amplitude s x] is the complex amplitude of basis state [x]. *)
let amplitude s x =
  let r = s.re.(x) and j = s.im.(x) in
  { Complex.re = r; im = j }

(** [prob s x] is the outcome probability of basis state [x]. *)
let prob s x = (s.re.(x) *. s.re.(x)) +. (s.im.(x) *. s.im.(x))

(** [norm2 s] is the total probability (should stay 1 within rounding). *)
let norm2 s =
  let acc = ref 0. in
  for x = 0 to size s - 1 do
    acc := !acc +. prob s x
  done;
  !acc

(* --- gate kernels --- *)

let apply_1q s q (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) =
  let bit = 1 lsl q in
  let sz = size s in
  let re = s.re and im = s.im in
  let x = ref 0 in
  while !x < sz do
    if !x land bit = 0 then begin
      let y = !x lor bit in
      let ar = re.(!x) and ai = im.(!x) and br = re.(y) and bi = im.(y) in
      re.(!x) <- (m00.re *. ar) -. (m00.im *. ai) +. (m01.re *. br) -. (m01.im *. bi);
      im.(!x) <- (m00.re *. ai) +. (m00.im *. ar) +. (m01.re *. bi) +. (m01.im *. br);
      re.(y) <- (m10.re *. ar) -. (m10.im *. ai) +. (m11.re *. br) -. (m11.im *. bi);
      im.(y) <- (m10.re *. ai) +. (m10.im *. ar) +. (m11.re *. bi) +. (m11.im *. br)
    end;
    incr x
  done

let swap_pairs s ~mask ~want ~tbit =
  (* swap amplitudes of x and (x lxor tbit) for x matching the control
     pattern, visiting each pair once via the tbit = 0 representative *)
  let sz = size s in
  let re = s.re and im = s.im in
  for x = 0 to sz - 1 do
    if x land tbit = 0 && x land mask = want then begin
      let y = x lor tbit in
      let r = re.(x) and i = im.(x) in
      re.(x) <- re.(y);
      im.(x) <- im.(y);
      re.(y) <- r;
      im.(y) <- i
    end
  done

let phase_on s ~mask ~want (p : Complex.t) =
  let sz = size s in
  let re = s.re and im = s.im in
  for x = 0 to sz - 1 do
    if x land mask = want then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (p.re *. r) -. (p.im *. i);
      im.(x) <- (p.re *. i) +. (p.im *. r)
    end
  done

let c0 = Complex.zero
let c1 = Complex.one
let ci = Complex.i
let cm1 = Complex.{ re = -1.; im = 0. }
let cmi = Complex.{ re = 0.; im = -1. }
let sqrt2inv = 1. /. sqrt 2.
let ch = Complex.{ re = sqrt2inv; im = 0. }
let chm = Complex.{ re = -.sqrt2inv; im = 0. }
let omega = Complex.{ re = sqrt2inv; im = sqrt2inv } (* e^{iπ/4} *)
let omega_bar = Complex.{ re = sqrt2inv; im = -.sqrt2inv }

let mask_of qs = List.fold_left (fun m q -> m lor (1 lsl q)) 0 qs

(** [apply s g] applies one gate in place. *)
let apply s (g : Gate.t) =
  match g with
  | Gate.X q -> swap_pairs s ~mask:0 ~want:0 ~tbit:(1 lsl q)
  | Gate.Y q ->
      apply_1q s q c0 cmi ci c0
  | Gate.Z q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cm1
  | Gate.S q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) ci
  | Gate.Sdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cmi
  | Gate.T q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega
  | Gate.Tdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega_bar
  | Gate.Rz (a, q) ->
      (* rz(θ) = diag(e^{-iθ/2}, e^{iθ/2}) *)
      let h = a /. 2. in
      let bit = 1 lsl q in
      phase_on s ~mask:bit ~want:0 Complex.{ re = cos h; im = -.sin h };
      phase_on s ~mask:bit ~want:bit Complex.{ re = cos h; im = sin h }
  | Gate.H q -> apply_1q s q ch ch ch chm
  | Gate.Cnot (c, t) -> swap_pairs s ~mask:(1 lsl c) ~want:(1 lsl c) ~tbit:(1 lsl t)
  | Gate.Cz (a, b) ->
      let m = (1 lsl a) lor (1 lsl b) in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Swap (a, b) ->
      let ab = 1 lsl a and bb = 1 lsl b in
      let sz = size s in
      for x = 0 to sz - 1 do
        (* visit the (01) pattern once, swap with (10) *)
        if x land ab <> 0 && x land bb = 0 then begin
          let y = (x lxor ab) lor bb in
          let r = s.re.(x) and i = s.im.(x) in
          s.re.(x) <- s.re.(y);
          s.im.(x) <- s.im.(y);
          s.re.(y) <- r;
          s.im.(y) <- i
        end
      done
  | Gate.Ccx (a, b, t) ->
      let m = (1 lsl a) lor (1 lsl b) in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Ccz (a, b, c) ->
      let m = mask_of [ a; b; c ] in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Mcx (cs, t) ->
      let m = mask_of cs in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Mcz qs ->
      let m = mask_of qs in
      phase_on s ~mask:m ~want:m cm1

(** [run circuit] simulates [circuit] from |0…0⟩. *)
let run circuit =
  Obs.with_span "qc.statevector.run" @@ fun () ->
  let s = init (Circuit.num_qubits circuit) in
  Circuit.iter (apply s) circuit;
  if Obs.enabled () then begin
    Obs.count ~by:(Circuit.num_gates circuit) "qc.statevector.gates_applied";
    Obs.add_attrs [ ("qubits", Obs.Int s.n) ]
  end;
  s

(** [run_on s circuit] applies [circuit] to an existing state in place. *)
let run_on s circuit =
  if Circuit.num_qubits circuit <> s.n then invalid_arg "Statevector.run_on";
  Circuit.iter (apply s) circuit

(** [prob_of_qubit s q] is the probability of reading 1 on qubit [q]. *)
let prob_of_qubit s q =
  let bit = 1 lsl q in
  let acc = ref 0. in
  for x = 0 to size s - 1 do
    if x land bit <> 0 then acc := !acc +. prob s x
  done;
  !acc

(** [amplitude_damp s q ~gamma ~jump] applies one quantum-trajectory branch
    of the amplitude-damping (T1) channel on qubit [q]:
    with [jump] the excitation decays ([K1 = √γ |0⟩⟨1|]), otherwise the
    no-jump Kraus operator is applied; either way the state is
    renormalized. The caller samples [jump] with probability
    [γ · prob_of_qubit s q]. *)
let amplitude_damp s q ~gamma ~jump =
  let bit = 1 lsl q in
  let p1 = prob_of_qubit s q in
  if jump then begin
    let norm = sqrt (gamma *. p1) in
    if norm < 1e-300 then invalid_arg "Statevector.amplitude_damp: impossible jump";
    for x = 0 to size s - 1 do
      if x land bit = 0 then begin
        let y = x lor bit in
        s.re.(x) <- sqrt gamma *. s.re.(y) /. norm;
        s.im.(x) <- sqrt gamma *. s.im.(y) /. norm;
        s.re.(y) <- 0.;
        s.im.(y) <- 0.
      end
    done
  end
  else begin
    let keep = sqrt (1. -. gamma) in
    let norm = sqrt (1. -. (gamma *. p1)) in
    for x = 0 to size s - 1 do
      if x land bit <> 0 then begin
        s.re.(x) <- keep *. s.re.(x) /. norm;
        s.im.(x) <- keep *. s.im.(x) /. norm
      end
      else begin
        s.re.(x) <- s.re.(x) /. norm;
        s.im.(x) <- s.im.(x) /. norm
      end
    done
  end

(** [probabilities s] is the outcome distribution over basis states. *)
let probabilities s = Array.init (size s) (prob s)

(** [sample st s] draws one measurement outcome of all qubits using PRNG
    state [st]. *)
let sample st s =
  let r = Random.State.float st 1. in
  let acc = ref 0. and out = ref (size s - 1) in
  (try
     for x = 0 to size s - 1 do
       acc := !acc +. prob s x;
       if r < !acc then begin
         out := x;
         raise Exit
       end
     done
   with Exit -> ());
  !out

(** [most_likely s] is the basis state with the largest probability. *)
let most_likely s =
  let best = ref 0 in
  for x = 1 to size s - 1 do
    if prob s x > prob s !best then best := x
  done;
  !best

(** [equal_up_to_phase ?eps a b] holds when the states differ by at most a
    global phase: |⟨a|b⟩| ≈ 1. *)
let equal_up_to_phase ?(eps = 1e-9) a b =
  if a.n <> b.n then false
  else begin
    let dot_re = ref 0. and dot_im = ref 0. in
    for x = 0 to size a - 1 do
      (* ⟨a|b⟩ = Σ conj(a_x) b_x *)
      dot_re := !dot_re +. (a.re.(x) *. b.re.(x)) +. (a.im.(x) *. b.im.(x));
      dot_im := !dot_im +. (a.re.(x) *. b.im.(x)) -. (a.im.(x) *. b.re.(x))
    done;
    let mag = sqrt ((!dot_re *. !dot_re) +. (!dot_im *. !dot_im)) in
    Float.abs (mag -. 1.) < eps
  end

(** [is_basis_state ?eps s x] holds when the state is (up to phase) exactly
    the computational basis state [x]. *)
let is_basis_state ?(eps = 1e-9) s x = Float.abs (prob s x -. 1.) < eps
