(** Dense state-vector simulation.

    The state of [n] qubits is stored as two unboxed float arrays (real and
    imaginary parts) of length [2^n]; basis index bit [q] is the value of
    qubit [q]. Practical up to n ≈ 22 on a laptop — the same regime the
    paper quotes for the QDK simulator backend (Sec. VIII).

    Two throughput features live here (see DESIGN.md, "Parallel
    execution"):

    - {e parallel kernels}: above {!par_threshold} amplitudes, every gate
      kernel chunks its index space over the shared {!Par} domain pool.
      Each chunk writes a disjoint slice, so the result is bit-identical
      for any worker count; small states stay sequential to avoid pool
      overhead.
    - {e gate fusion}: {!run}/{!run_on} first collapse runs of 1-qubit
      gates on the same qubit into a single 2×2 matrix and coalesce
      consecutive diagonal gates (Z/S/T/Rz/CZ/CCZ/MCZ) into one phase
      sweep — one memory pass instead of one per gate, which is where
      T-heavy Clifford+T output spends its time. *)

type t = { n : int; re : float array; im : float array }

(** [init n] is |0…0⟩. *)
let init n =
  if n < 1 || n > 26 then invalid_arg "Statevector.init: bad qubit count";
  let size = 1 lsl n in
  let re = Array.make size 0. and im = Array.make size 0. in
  re.(0) <- 1.;
  { n; re; im }

let num_qubits s = s.n
let size s = 1 lsl s.n

(** [amplitude s x] is the complex amplitude of basis state [x]. *)
let amplitude s x =
  let r = s.re.(x) and j = s.im.(x) in
  { Complex.re = r; im = j }

(** [prob s x] is the outcome probability of basis state [x]. *)
let prob s x = (s.re.(x) *. s.re.(x)) +. (s.im.(x) *. s.im.(x))

(** [norm2 s] is the total probability (should stay 1 within rounding). *)
let norm2 s =
  let acc = ref 0. in
  for x = 0 to size s - 1 do
    acc := !acc +. prob s x
  done;
  !acc

(* --- gate kernels --- *)

(* States at or below this size run kernels sequentially: the per-batch
   synchronization (~µs) would dwarf the loop itself. 2^14 amplitudes ≈
   256 kB, roughly where one pass stops fitting in L2. *)
let par_threshold = 1 lsl 14

(* Below this many qubits the fusion prepass costs more than it saves:
   kernel passes over ≤ 2^9 amplitudes are already sub-µs, so the
   prepass's gate-array copy and op-list allocations dominate. The
   prepass itself is size-independent, so tests drive it directly via
   {!fuse_gates}/{!apply_op} on small circuits. *)
let fuse_min_qubits = 10

(* Kernel bodies are top-level segment functions over [lo, hi): the
   sequential path calls them directly (a known call — loop locals stay
   in registers), and only the parallel path pays a closure. Wrapping
   the whole body in a [par_range (fun lo hi -> ...)] closure costs
   ~15% on kernel-bound circuits without flambda, because captured
   variables are re-read from the closure environment each iteration.
   Each segment writes a disjoint index slice, so any worker count
   computes bit-identical amplitudes (Par's contract). Reductions
   (norm2, prob_of_qubit, sampler) stay sequential — chunked float sums
   would change with the chunk count. *)
let seg_1q re im bit (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) lo hi =
  let x = ref lo in
  while !x < hi do
    if !x land bit = 0 then begin
      let y = !x lor bit in
      let ar = re.(!x) and ai = im.(!x) and br = re.(y) and bi = im.(y) in
      re.(!x) <- (m00.re *. ar) -. (m00.im *. ai) +. (m01.re *. br) -. (m01.im *. bi);
      im.(!x) <- (m00.re *. ai) +. (m00.im *. ar) +. (m01.re *. bi) +. (m01.im *. br);
      re.(y) <- (m10.re *. ar) -. (m10.im *. ai) +. (m11.re *. br) -. (m11.im *. bi);
      im.(y) <- (m10.re *. ai) +. (m10.im *. ar) +. (m11.re *. bi) +. (m11.im *. br)
    end;
    incr x
  done

let apply_1q s q (m00 : Complex.t) (m01 : Complex.t) (m10 : Complex.t)
    (m11 : Complex.t) =
  let bit = 1 lsl q in
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then seg_1q re im bit m00 m01 m10 m11 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_1q re im bit m00 m01 m10 m11 lo hi)

(* Pair kernels visit each (x, x lxor tbit) pair once via the tbit = 0
   representative; the tbit = 1 partner is never a representative itself,
   so chunking the full index range keeps writes disjoint. *)
(* The float array annotations matter: without them these move-only
   bodies generalize polymorphically and compile to generic (boxing)
   array accesses — ~2.5x slower. *)
let seg_swap (re : float array) (im : float array) mask want tbit lo hi =
  for x = lo to hi - 1 do
    if x land tbit = 0 && x land mask = want then begin
      let y = x lor tbit in
      let r = re.(x) and i = im.(x) in
      re.(x) <- re.(y);
      im.(x) <- im.(y);
      re.(y) <- r;
      im.(y) <- i
    end
  done

let swap_pairs s ~mask ~want ~tbit =
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then seg_swap re im mask want tbit 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_swap re im mask want tbit lo hi)

let seg_phase re im mask want pre pim lo hi =
  for x = lo to hi - 1 do
    if x land mask = want then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pre *. r) -. (pim *. i);
      im.(x) <- (pre *. i) +. (pim *. r)
    end
  done

let phase_on s ~mask ~want (p : Complex.t) =
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then seg_phase re im mask want p.re p.im 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_phase re im mask want p.re p.im lo hi)

(* Swap = visit the (a=1, b=0) pattern once, exchange with (a=0, b=1). *)
let seg_swap2 (re : float array) (im : float array) ab bb lo hi =
  for x = lo to hi - 1 do
    if x land ab <> 0 && x land bb = 0 then begin
      let y = (x lxor ab) lor bb in
      let r = re.(x) and i = im.(x) in
      re.(x) <- re.(y);
      im.(x) <- im.(y);
      re.(y) <- r;
      im.(y) <- i
    end
  done

let c0 = Complex.zero
let c1 = Complex.one
let ci = Complex.i
let cm1 = Complex.{ re = -1.; im = 0. }
let cmi = Complex.{ re = 0.; im = -1. }
let sqrt2inv = 1. /. sqrt 2.
let ch = Complex.{ re = sqrt2inv; im = 0. }
let chm = Complex.{ re = -.sqrt2inv; im = 0. }
let omega = Complex.{ re = sqrt2inv; im = sqrt2inv } (* e^{iπ/4} *)
let omega_bar = Complex.{ re = sqrt2inv; im = -.sqrt2inv }

let mask_of qs = List.fold_left (fun m q -> m lor (1 lsl q)) 0 qs

(** [apply s g] applies one gate in place. *)
let apply s (g : Gate.t) =
  match g with
  | Gate.X q -> swap_pairs s ~mask:0 ~want:0 ~tbit:(1 lsl q)
  | Gate.Y q ->
      apply_1q s q c0 cmi ci c0
  | Gate.Z q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cm1
  | Gate.S q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) ci
  | Gate.Sdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) cmi
  | Gate.T q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega
  | Gate.Tdg q -> phase_on s ~mask:(1 lsl q) ~want:(1 lsl q) omega_bar
  | Gate.Rz (a, q) ->
      (* rz(θ) = diag(e^{-iθ/2}, e^{iθ/2}) *)
      let h = a /. 2. in
      let bit = 1 lsl q in
      phase_on s ~mask:bit ~want:0 Complex.{ re = cos h; im = -.sin h };
      phase_on s ~mask:bit ~want:bit Complex.{ re = cos h; im = sin h }
  | Gate.H q -> apply_1q s q ch ch ch chm
  | Gate.Cnot (c, t) -> swap_pairs s ~mask:(1 lsl c) ~want:(1 lsl c) ~tbit:(1 lsl t)
  | Gate.Cz (a, b) ->
      let m = (1 lsl a) lor (1 lsl b) in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Swap (a, b) ->
      let ab = 1 lsl a and bb = 1 lsl b in
      let re = s.re and im = s.im in
      let sz = size s in
      if sz <= par_threshold then seg_swap2 re im ab bb 0 sz
      else
        Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
            seg_swap2 re im ab bb lo hi)
  | Gate.Ccx (a, b, t) ->
      let m = (1 lsl a) lor (1 lsl b) in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Ccz (a, b, c) ->
      let m = mask_of [ a; b; c ] in
      phase_on s ~mask:m ~want:m cm1
  | Gate.Mcx (cs, t) ->
      let m = mask_of cs in
      swap_pairs s ~mask:m ~want:m ~tbit:(1 lsl t)
  | Gate.Mcz qs ->
      let m = mask_of qs in
      phase_on s ~mask:m ~want:m cm1

(* --- gate fusion prepass --- *)

(* A 2×2 unitary, row-major. *)
type m2 = { m00 : Complex.t; m01 : Complex.t; m10 : Complex.t; m11 : Complex.t }

(* [m2_after g f] is the matrix of "apply f, then g": the product g·f. *)
let m2_after g f =
  let open Complex in
  { m00 = add (mul g.m00 f.m00) (mul g.m01 f.m10);
    m01 = add (mul g.m00 f.m01) (mul g.m01 f.m11);
    m10 = add (mul g.m10 f.m00) (mul g.m11 f.m10);
    m11 = add (mul g.m10 f.m01) (mul g.m11 f.m11) }

(* The 2×2 matrix of a 1-qubit gate, with its qubit. *)
let m2_of_gate = function
  | Gate.X q -> Some (q, { m00 = c0; m01 = c1; m10 = c1; m11 = c0 })
  | Gate.Y q -> Some (q, { m00 = c0; m01 = cmi; m10 = ci; m11 = c0 })
  | Gate.Z q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = cm1 })
  | Gate.H q -> Some (q, { m00 = ch; m01 = ch; m10 = ch; m11 = chm })
  | Gate.S q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = ci })
  | Gate.Sdg q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = cmi })
  | Gate.T q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = omega })
  | Gate.Tdg q -> Some (q, { m00 = c1; m01 = c0; m10 = c0; m11 = omega_bar })
  | Gate.Rz (a, q) ->
      let h = a /. 2. in
      Some
        ( q,
          { m00 = Complex.{ re = cos h; im = -.sin h }; m01 = c0; m10 = c0;
            m11 = Complex.{ re = cos h; im = sin h } } )
  | _ -> None

(* One multiplicative term of a diagonal gate: amplitudes whose index
   matches [want] on [mask] pick up the phase (pre + i·pim). *)
type dterm = { mask : int; want : int; pre : float; pim : float }

let dterm mask want (p : Complex.t) = { mask; want; pre = p.re; pim = p.im }

(* The phase terms of a diagonal gate (diagonal gates all commute, so any
   run of them coalesces into one sweep over these terms). *)
let dterms_of_gate g =
  let one_hot q p = [ dterm (1 lsl q) (1 lsl q) p ] in
  match g with
  | Gate.Z q -> Some (one_hot q cm1)
  | Gate.S q -> Some (one_hot q ci)
  | Gate.Sdg q -> Some (one_hot q cmi)
  | Gate.T q -> Some (one_hot q omega)
  | Gate.Tdg q -> Some (one_hot q omega_bar)
  | Gate.Rz (a, q) ->
      let h = a /. 2. in
      let bit = 1 lsl q in
      Some
        [ dterm bit 0 Complex.{ re = cos h; im = -.sin h };
          dterm bit bit Complex.{ re = cos h; im = sin h } ]
  | Gate.Cz (a, b) ->
      let m = (1 lsl a) lor (1 lsl b) in
      Some [ dterm m m cm1 ]
  | Gate.Ccz (a, b, c) ->
      let m = mask_of [ a; b; c ] in
      Some [ dterm m m cm1 ]
  | Gate.Mcz qs ->
      let m = mask_of qs in
      Some [ dterm m m cm1 ]
  | _ -> None

(* One sweep applying a whole run of diagonal gates. The combined phase of
   index [x] is a product over matching terms; terms whose mask lies
   entirely in the low or high half of the index bits are precomputed
   into per-half lookup tables of size O(√2^n), so the sweep itself is
   phase(x) = lo[x low bits] · hi[x high bits] · (rare straddling terms)
   — two complex multiplies per amplitude however long the run is, and
   one memory pass instead of one per gate. Amplitudes whose combined
   phase is exactly 1 are not written, so untouched entries keep their
   exact values (basis states stay exact). All arithmetic is on unboxed
   floats — no [Complex.t] in the inner loop. *)
let seg_phase_sweep re im lo_re lo_im hi_re hi_im half_mask h
    (straddling : dterm array) lo hi =
  let ns = Array.length straddling in
  (* 2-slot float array, not refs: ref assignment would box per store *)
  let acc = [| 1.; 0. |] in
  for x = lo to hi - 1 do
    let l = x land half_mask and g = x lsr h in
    let ar = Array.unsafe_get lo_re l and ai = Array.unsafe_get lo_im l in
    let br = Array.unsafe_get hi_re g and bi = Array.unsafe_get hi_im g in
    acc.(0) <- (ar *. br) -. (ai *. bi);
    acc.(1) <- (ar *. bi) +. (ai *. br);
    for t = 0 to ns - 1 do
      let tm = Array.unsafe_get straddling t in
      if x land tm.mask = tm.want then begin
        let r = acc.(0) and i = acc.(1) in
        acc.(0) <- (r *. tm.pre) -. (i *. tm.pim);
        acc.(1) <- (r *. tm.pim) +. (i *. tm.pre)
      end
    done;
    let pr = acc.(0) and pi = acc.(1) in
    if not (pr = 1. && pi = 0.) then begin
      let r = re.(x) and i = im.(x) in
      re.(x) <- (pr *. r) -. (pi *. i);
      im.(x) <- (pr *. i) +. (pi *. r)
    end
  done

let apply_phase_terms s (terms : dterm array) =
  let n = s.n in
  let h = (n + 1) / 2 in
  let lo_sz = 1 lsl h and hi_sz = 1 lsl (n - h) in
  let half_mask = lo_sz - 1 in
  let lo_re = Array.make lo_sz 1. and lo_im = Array.make lo_sz 0. in
  let hi_re = Array.make hi_sz 1. and hi_im = Array.make hi_sz 0. in
  let fold_into tre tim tsz mask want pre pim =
    for i = 0 to tsz - 1 do
      if i land mask = want then begin
        let r = tre.(i) and j = tim.(i) in
        tre.(i) <- (r *. pre) -. (j *. pim);
        tim.(i) <- (r *. pim) +. (j *. pre)
      end
    done
  in
  let straddling = ref [] in
  Array.iter
    (fun t ->
      if t.mask land half_mask = t.mask then
        fold_into lo_re lo_im lo_sz t.mask t.want t.pre t.pim
      else if t.mask land lnot half_mask = t.mask then
        fold_into hi_re hi_im hi_sz (t.mask lsr h) (t.want lsr h) t.pre t.pim
      else straddling := t :: !straddling)
    (* multi-qubit masks spanning both halves (a CZ across the midline)
       stay as per-index checks; they are rare and few *)
    terms;
  let straddling = Array.of_list (List.rev !straddling) in
  let re = s.re and im = s.im in
  let sz = size s in
  if sz <= par_threshold then
    seg_phase_sweep re im lo_re lo_im hi_re hi_im half_mask h straddling 0 sz
  else
    Par.parallel_for (Par.global ()) ~start:0 ~stop:sz (fun lo hi ->
        seg_phase_sweep re im lo_re lo_im hi_re hi_im half_mask h straddling lo
          hi)

type op =
  | Op_gate of Gate.t
  | Op_fused1q of int * m2 (* a run of 1q gates on one qubit, multiplied out *)
  | Op_phases of dterm array (* a run of diagonal gates, one sweep *)

type pending =
  | P_none
  | P_1q of { q : int; m : m2; count : int; first : Gate.t }
  | P_diag of {
      rev_terms : dterm list list;
      ones : int; (* 1-qubit diag gates in the run *)
      rev_gates : Gate.t list;
    }

(* Qubit of a 1-qubit gate, or -1 for multi-qubit gates. *)
let q1_of = function
  | Gate.X q | Gate.Y q | Gate.Z q | Gate.H q | Gate.S q | Gate.Sdg q | Gate.T q
  | Gate.Tdg q
  | Gate.Rz (_, q) ->
      q
  | _ -> -1

(* A diagonal run re-emits its original gates unless it contains at
   least this many 1-qubit phase gates. Those are the passes a sweep
   collapses; multi-qubit CZ/CCZ/MCZ kernels already touch only a
   2^-k subset of amplitudes, so a run of bare CZs (hidden-shift
   oracles) or QFT's length-2 Rz runs is cheaper unfused. *)
let min_diag_run = 3

(* Greedy single-pass fusion. Runs of length 1 re-emit the original gate:
   the specialized kernels (swap_pairs for X, phase_on for Z/S/T) beat a
   generic 2×2 multiply, and exact integer kernels stay exact. *)
let fuse_gates (gates : Gate.t array) =
  let ops = ref [] in
  let emit o = ops := o :: !ops in
  let flush = function
    | P_none -> ()
    | P_1q { m; q; count; first } ->
        if count = 1 then emit (Op_gate first) else emit (Op_fused1q (q, m))
    | P_diag { rev_terms; ones; rev_gates } ->
        if ones < min_diag_run then
          List.iter (fun g -> emit (Op_gate g)) (List.rev rev_gates)
        else emit (Op_phases (Array.of_list (List.concat (List.rev rev_terms))))
  in
  let one_of g = if q1_of g >= 0 then 1 else 0 in
  let step pending g =
    match (pending, m2_of_gate g, dterms_of_gate g) with
    | P_1q p, Some (q, m), _ when q = p.q ->
        P_1q { p with m = m2_after m p.m; count = p.count + 1 }
    | P_diag p, _, Some ts ->
        P_diag
          { rev_terms = ts :: p.rev_terms; ones = p.ones + one_of g;
            rev_gates = g :: p.rev_gates }
    | _, _, Some ts ->
        flush pending;
        P_diag { rev_terms = [ ts ]; ones = one_of g; rev_gates = [ g ] }
    | _, Some (q, m), None ->
        flush pending;
        P_1q { q; m; count = 1; first = g }
    | _, None, None ->
        flush pending;
        emit (Op_gate g);
        P_none
  in
  flush (Array.fold_left step P_none gates);
  List.rev !ops

let apply_op s = function
  | Op_gate g -> apply s g
  | Op_fused1q (q, m) -> apply_1q s q m.m00 m.m01 m.m10 m.m11
  | Op_phases terms -> apply_phase_terms s terms

(* Cheap pre-scan deciding whether the prepass can fuse anything at all:
   a diagonal run with ≥ [min_diag_run] 1-qubit phase gates, or a
   non-diagonal 1-qubit gate directly followed by a 1-qubit gate on the
   same qubit (the [P_1q] seed). Circuits with no such adjacency
   (H/CNOT-mix layers, QFT's Rz/CNOT interleaving, bare-CZ oracles)
   skip the prepass and its allocations — false negatives only skip an
   optimization, never change results. *)
let is_diag = function
  | Gate.Z _ | Gate.S _ | Gate.Sdg _ | Gate.T _ | Gate.Tdg _ | Gate.Rz _ | Gate.Cz _
  | Gate.Ccz _ | Gate.Mcz _ ->
      true
  | _ -> false

let has_fusable (gates : Gate.t array) =
  let n = Array.length gates in
  let found = ref false in
  let diag_run = ref 0 in
  let i = ref 0 in
  while (not !found) && !i < n do
    let g = gates.(!i) in
    if is_diag g then begin
      if q1_of g >= 0 then incr diag_run;
      if !diag_run >= min_diag_run then found := true
    end
    else begin
      diag_run := 0;
      let q = q1_of g in
      if q >= 0 && !i + 1 < n && q1_of gates.(!i + 1) = q then found := true
    end;
    incr i
  done;
  !found

(* Shared by run/run_on: the fusion prepass (on by default), the kernel
   loop, and the telemetry both entry points must emit — [run_on] used to
   bypass it, under-counting qc.statevector.gates_applied for
   engine-driven simulation. *)
let exec ~fuse s circuit =
  let fuse = fuse && s.n >= fuse_min_qubits in
  let gates = if fuse then Circuit.to_array circuit else [||] in
  if fuse && has_fusable gates then begin
    let ops = fuse_gates gates in
    List.iter (apply_op s) ops;
    if Obs.enabled () then
      Obs.count ~by:(List.length ops) "qc.statevector.fused_ops"
  end
  else begin
    Circuit.iter (apply s) circuit;
    if fuse && Obs.enabled () then
      (* nothing fusable: op count = gate count *)
      Obs.count ~by:(Circuit.num_gates circuit) "qc.statevector.fused_ops"
  end;
  if Obs.enabled () then begin
    Obs.count ~by:(Circuit.num_gates circuit) "qc.statevector.gates_applied";
    Obs.add_attrs [ ("qubits", Obs.Int s.n) ]
  end

(** [run ?fuse circuit] simulates [circuit] from |0…0⟩. [fuse] (default
    true) runs the gate-fusion prepass on states of ≥ {!fuse_min_qubits}
    qubits; the result is equal up to float rounding (≤ 1e-12 per
    amplitude in practice). *)
let run ?(fuse = true) circuit =
  Obs.with_span "qc.statevector.run" @@ fun () ->
  let s = init (Circuit.num_qubits circuit) in
  exec ~fuse s circuit;
  s

(** [run_on ?fuse s circuit] applies [circuit] to an existing state in
    place, with the same span and counters as {!run}. *)
let run_on ?(fuse = true) s circuit =
  if Circuit.num_qubits circuit <> s.n then invalid_arg "Statevector.run_on";
  Obs.with_span "qc.statevector.run" @@ fun () -> exec ~fuse s circuit

(** [prob_of_qubit s q] is the probability of reading 1 on qubit [q]. *)
let prob_of_qubit s q =
  let bit = 1 lsl q in
  let acc = ref 0. in
  for x = 0 to size s - 1 do
    if x land bit <> 0 then acc := !acc +. prob s x
  done;
  !acc

(** [amplitude_damp s q ~gamma ~jump] applies one quantum-trajectory branch
    of the amplitude-damping (T1) channel on qubit [q]:
    with [jump] the excitation decays ([K1 = √γ |0⟩⟨1|]), otherwise the
    no-jump Kraus operator is applied; either way the state is
    renormalized. The caller samples [jump] with probability
    [γ · prob_of_qubit s q]. *)
let amplitude_damp s q ~gamma ~jump =
  let bit = 1 lsl q in
  let p1 = prob_of_qubit s q in
  if jump then begin
    let norm = sqrt (gamma *. p1) in
    if norm < 1e-300 then invalid_arg "Statevector.amplitude_damp: impossible jump";
    for x = 0 to size s - 1 do
      if x land bit = 0 then begin
        let y = x lor bit in
        s.re.(x) <- sqrt gamma *. s.re.(y) /. norm;
        s.im.(x) <- sqrt gamma *. s.im.(y) /. norm;
        s.re.(y) <- 0.;
        s.im.(y) <- 0.
      end
    done
  end
  else begin
    let keep = sqrt (1. -. gamma) in
    let norm = sqrt (1. -. (gamma *. p1)) in
    for x = 0 to size s - 1 do
      if x land bit <> 0 then begin
        s.re.(x) <- keep *. s.re.(x) /. norm;
        s.im.(x) <- keep *. s.im.(x) /. norm
      end
      else begin
        s.re.(x) <- s.re.(x) /. norm;
        s.im.(x) <- s.im.(x) /. norm
      end
    done
  end

(** [probabilities s] is the outcome distribution over basis states. *)
let probabilities s = Array.init (size s) (prob s)

(* --- measurement sampling --- *)

(** A precomputed cumulative distribution for repeated sampling from one
    state: build once ([O(2^n)]), then each draw is a binary search
    ([O(n)]) instead of a linear scan — the shape a multi-shot noiseless
    sampling loop wants. *)
type sampler = { cdf : float array }

(** [sampler s] precomputes the cumulative distribution of [s]. *)
let sampler s =
  let sz = size s in
  let cdf = Array.make sz 0. in
  let acc = ref 0. in
  for x = 0 to sz - 1 do
    acc := !acc +. prob s x;
    cdf.(x) <- !acc
  done;
  { cdf }

(** [sample_with smp st] draws one outcome: the first basis state whose
    cumulative probability exceeds the uniform draw — bit-identical to
    the linear scan of {!sample}, in [O(n)] per shot. *)
let sample_with smp st =
  let r = Random.State.float st 1. in
  let cdf = smp.cdf in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > r then hi := mid else lo := mid + 1
  done;
  !lo

(** [sample st s] draws one measurement outcome of all qubits using PRNG
    state [st]. One-shot form; for many draws from the same state build a
    {!sampler} once and use {!sample_with}. *)
let sample st s =
  let r = Random.State.float st 1. in
  let sz = size s in
  let acc = ref 0. and x = ref 0 and out = ref (sz - 1) in
  while !x < sz do
    acc := !acc +. prob s !x;
    if r < !acc then begin
      out := !x;
      x := sz
    end
    else incr x
  done;
  !out

(** [most_likely s] is the basis state with the largest probability. *)
let most_likely s =
  let best = ref 0 in
  for x = 1 to size s - 1 do
    if prob s x > prob s !best then best := x
  done;
  !best

(** [equal_up_to_phase ?eps a b] holds when the states differ by at most a
    global phase: |⟨a|b⟩| ≈ 1. *)
let equal_up_to_phase ?(eps = 1e-9) a b =
  if a.n <> b.n then false
  else begin
    let dot_re = ref 0. and dot_im = ref 0. in
    for x = 0 to size a - 1 do
      (* ⟨a|b⟩ = Σ conj(a_x) b_x *)
      dot_re := !dot_re +. (a.re.(x) *. b.re.(x)) +. (a.im.(x) *. b.im.(x));
      dot_im := !dot_im +. (a.re.(x) *. b.im.(x)) -. (a.im.(x) *. b.re.(x))
    done;
    let mag = sqrt ((!dot_re *. !dot_re) +. (!dot_im *. !dot_im)) in
    Float.abs (mag -. 1.) < eps
  end

(** [is_basis_state ?eps s x] holds when the state is (up to phase) exactly
    the computational basis state [x]. *)
let is_basis_state ?(eps = 1e-9) s x = Float.abs (prob s x -. 1.) < eps
