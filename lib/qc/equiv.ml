(** Equivalence checking of quantum circuits — the paper's closing
    challenge (Sec. IX): "when applying post-optimization, one needs to
    verify that the optimized circuit did not change the functionality,
    requiring to simulate complete quantum states in the worst-case."

    Three checkers with increasing reach:

    - {!exact} / {!up_to_phase}: full dense-unitary comparison, certain but
      exponential (n ≤ ~10);
    - {!classical}: for circuits meant to implement reversible functions,
      compare the induced permutations (still exponential in basis states
      but with no amplitude storage per column pair);
    - {!randomized}: the miter U·V† applied to random product states must
      return them unchanged — a one-sided Monte-Carlo test usable at
      state-vector widths (n ≤ ~20); inequivalent circuits are caught with
      probability growing rapidly in the number of trials. *)

type verdict = Equivalent | Not_equivalent | Probably_equivalent of int
(** [Probably_equivalent trials]: the randomized check passed [trials]
    independent trials without a discrepancy. *)

(** [exact a b] is dense-unitary equality (entrywise, eps 1e-9). *)
let exact a b =
  if Circuit.num_qubits a <> Circuit.num_qubits b then Not_equivalent
  else if Unitary.equal (Unitary.of_circuit a) (Unitary.of_circuit b) then Equivalent
  else Not_equivalent

(** [up_to_phase a b] ignores a global phase — the right notion after
    {!Tpar} or relative-phase lowering. *)
let up_to_phase a b =
  if Circuit.num_qubits a <> Circuit.num_qubits b then Not_equivalent
  else if Unitary.equal_up_to_phase (Unitary.of_circuit a) (Unitary.of_circuit b) then
    Equivalent
  else Not_equivalent

(** [classical a b] compares the permutations-with-phases the circuits
    induce on basis states; [Not_equivalent] also when either circuit is
    not classical. *)
let classical a b =
  if Circuit.num_qubits a <> Circuit.num_qubits b then Not_equivalent
  else
    match
      ( Unitary.is_permutation (Unitary.of_circuit a),
        Unitary.is_permutation (Unitary.of_circuit b) )
    with
    | Some pa, Some pb -> if pa = pb then Equivalent else Not_equivalent
    | _ -> Not_equivalent

(* A random product state: each qubit prepared with H/T-angle gates chosen
   from a small dense set, so discrepancies anywhere in the unitary are
   visible with good probability. *)
let random_preparation st n =
  List.concat
    (List.init n (fun q ->
         let base =
           match Random.State.int st 4 with
           | 0 -> []
           | 1 -> [ Gate.H q ]
           | 2 -> [ Gate.X q; Gate.H q ]
           | _ -> [ Gate.H q; Gate.T q; Gate.H q ]
         in
         base @ (if Random.State.bool st then [ Gate.Rz (Random.State.float st 6.28, q) ] else [])))

(** [randomized ?trials ?seed a b] runs the miter check: for random product
    states |ψ⟩, check ⟨ψ| V† U |ψ⟩ ≈ 1 (equivalence up to global phase is
    tolerated via the overlap magnitude). One-sided: [Not_equivalent] is
    definitive, [Probably_equivalent] is statistical. *)
let randomized ?(trials = 24) ?(seed = 0x5EED) a b =
  let n = Circuit.num_qubits a in
  if n <> Circuit.num_qubits b then Not_equivalent
  else begin
    let st = Random.State.make [| seed |] in
    let ok = ref true in
    let t = ref 0 in
    while !ok && !t < trials do
      incr t;
      let prep = random_preparation st n in
      let sa = Statevector.init n and sb = Statevector.init n in
      List.iter (Statevector.apply sa) prep;
      List.iter (Statevector.apply sb) prep;
      Statevector.run_on sa a;
      Statevector.run_on sb b;
      if not (Statevector.equal_up_to_phase ~eps:1e-7 sa sb) then ok := false
    done;
    if !ok then Probably_equivalent trials else Not_equivalent
  end

(** [check a b] picks the strongest affordable checker: exact unitaries up
    to 9 qubits, randomized above. *)
let check a b =
  if Circuit.num_qubits a <> Circuit.num_qubits b then Not_equivalent
  else if Circuit.num_qubits a <= 9 then up_to_phase a b
  else randomized a b

(** [randomized_zero_ancilla ?trials ?seed ~data a b] is the miter check
    restricted to the ancilla-clean subspace: random product states are
    prepared on the low [data] qubits only, every qubit above stays |0⟩.
    This is the right gate for circuits that allocate clean-returned
    ancillae — relative-phase lowerings (RCCX ladders) are equivalences
    {e only} on this subspace, so the full-unitary checkers reject them
    even though every legal execution agrees. One-sided like
    {!randomized}. *)
let randomized_zero_ancilla ?(trials = 24) ?(seed = 0x5EED) ~data a b =
  let n = Circuit.num_qubits a in
  if n <> Circuit.num_qubits b || data > n then Not_equivalent
  else begin
    let st = Random.State.make [| seed |] in
    let ok = ref true in
    let t = ref 0 in
    while !ok && !t < trials do
      incr t;
      let prep = random_preparation st data in
      let sa = Statevector.init n and sb = Statevector.init n in
      List.iter (Statevector.apply sa) prep;
      List.iter (Statevector.apply sb) prep;
      Statevector.run_on sa a;
      Statevector.run_on sb b;
      if not (Statevector.equal_up_to_phase ~eps:1e-7 sa sb) then ok := false
    done;
    if !ok then Probably_equivalent trials else Not_equivalent
  end

let pp_verdict ppf = function
  | Equivalent -> Fmt.pf ppf "equivalent"
  | Not_equivalent -> Fmt.pf ppf "NOT equivalent"
  | Probably_equivalent t -> Fmt.pf ppf "equivalent (randomized, %d trials)" t
