(** Stabilizer (CHP) simulation of Clifford circuits, after
    Aaronson–Gottesman.

    The paper's ref [72] (Bravyi–Gosset) observes that hidden-shift circuits
    for inner-product-like bent functions are dominated by Clifford gates;
    indeed our compiled inner-product instances are {e Clifford-only}, so a
    tableau simulator runs them in polynomial time at register widths far
    beyond any state-vector simulator. This backend accepts
    {H, S, S†, X, Y, Z, CNOT, CZ, SWAP} and measurement.

    The tableau keeps [2n] Pauli rows (destabilizers then stabilizers) over
    [n] qubits, bit-packed into 64-bit words. *)

type t = {
  n : int;
  words : int; (* words per x- or z- half row *)
  x : int64 array array; (* row -> packed x bits *)
  z : int64 array array;
  r : Bytes.t; (* row -> phase bit (0 or 1) *)
}

let get_bit row q = Int64.logand (Int64.shift_right_logical row.(q lsr 6) (q land 63)) 1L = 1L

let flip_bit row q =
  row.(q lsr 6) <- Int64.logxor row.(q lsr 6) (Int64.shift_left 1L (q land 63))

let get_r t i = Bytes.get_uint8 t.r i = 1
let set_r t i b = Bytes.set_uint8 t.r i (if b then 1 else 0)
let flip_r t i = Bytes.set_uint8 t.r i (1 - Bytes.get_uint8 t.r i)

(** [create n] is the tableau of |0…0⟩: destabilizer row [i] is X_i,
    stabilizer row [n+i] is Z_i. *)
let create n =
  if n < 1 then invalid_arg "Stabilizer.create";
  let words = (n + 63) / 64 in
  let t =
    { n; words;
      x = Array.init (2 * n) (fun _ -> Array.make words 0L);
      z = Array.init (2 * n) (fun _ -> Array.make words 0L);
      r = Bytes.make (2 * n) '\000' }
  in
  for i = 0 to n - 1 do
    flip_bit t.x.(i) i;
    flip_bit t.z.(n + i) i
  done;
  t

let num_qubits t = t.n

(* --- gate actions on every row --- *)

let h t q =
  for i = 0 to (2 * t.n) - 1 do
    let xb = get_bit t.x.(i) q and zb = get_bit t.z.(i) q in
    if xb && zb then flip_r t i;
    if xb <> zb then begin
      flip_bit t.x.(i) q;
      flip_bit t.z.(i) q
    end
  done

let s t q =
  for i = 0 to (2 * t.n) - 1 do
    let xb = get_bit t.x.(i) q and zb = get_bit t.z.(i) q in
    if xb && zb then flip_r t i;
    if xb then flip_bit t.z.(i) q
  done

let z t q =
  for i = 0 to (2 * t.n) - 1 do
    if get_bit t.x.(i) q then flip_r t i
  done

let x t q =
  for i = 0 to (2 * t.n) - 1 do
    if get_bit t.z.(i) q then flip_r t i
  done

let y t q =
  (* Y = iXZ: phases flip when exactly one of x, z is set *)
  for i = 0 to (2 * t.n) - 1 do
    if get_bit t.x.(i) q <> get_bit t.z.(i) q then flip_r t i
  done

let sdg t q =
  (* S† = S Z *)
  s t q;
  z t q

let cnot t a b =
  for i = 0 to (2 * t.n) - 1 do
    let xa = get_bit t.x.(i) a and zb = get_bit t.z.(i) b in
    let xb = get_bit t.x.(i) b and za = get_bit t.z.(i) a in
    if xa && zb && xb = za then flip_r t i;
    if xa then flip_bit t.x.(i) b;
    if zb then flip_bit t.z.(i) a
  done

let cz t a b =
  h t b;
  cnot t a b;
  h t b

let swap t a b =
  cnot t a b;
  cnot t b a;
  cnot t a b

exception Not_clifford of Gate.t

(** [apply t g] applies a Clifford gate. Raises {!Not_clifford} on T/T†/Rz
    and multiply-controlled gates. *)
let apply t (g : Gate.t) =
  match g with
  | Gate.H q -> h t q
  | Gate.S q -> s t q
  | Gate.Sdg q -> sdg t q
  | Gate.X q -> x t q
  | Gate.Y q -> y t q
  | Gate.Z q -> z t q
  | Gate.Cnot (a, b) -> cnot t a b
  | Gate.Cz (a, b) -> cz t a b
  | Gate.Swap (a, b) -> swap t a b
  | Gate.Mcz [ a ] -> z t a
  | Gate.Mcz [ a; b ] -> cz t a b
  | g -> raise (Not_clifford g)

(** [is_clifford_circuit c] holds when every gate is accepted by
    {!apply}. *)
let is_clifford_circuit c =
  Circuit.fold
    (fun acc g ->
      acc
      && match g with
         | Gate.H _ | Gate.S _ | Gate.Sdg _ | Gate.X _ | Gate.Y _ | Gate.Z _
         | Gate.Cnot _ | Gate.Cz _ | Gate.Swap _ | Gate.Mcz [ _ ] | Gate.Mcz [ _; _ ] ->
             true
         | _ -> false)
    true c

(* rowsum(h, i): row h := row h * row i, tracking the phase exponent mod 4
   (Aaronson-Gottesman's g function summed over qubits). *)
let rowsum t hrow irow =
  let g = ref 0 in
  for q = 0 to t.n - 1 do
    let x1 = get_bit t.x.(irow) q and z1 = get_bit t.z.(irow) q in
    let x2 = get_bit t.x.(hrow) q and z2 = get_bit t.z.(hrow) q in
    (* g(x1,z1,x2,z2) per the CHP paper *)
    let contribution =
      match (x1, z1) with
      | false, false -> 0
      | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
      | true, false -> if z2 && x2 then 1 else if z2 && not x2 then -1 else 0
      | false, true -> if x2 && not z2 then 1 else if x2 && z2 then -1 else 0
    in
    g := !g + contribution
  done;
  let phase =
    (2 * ((if get_r t hrow then 1 else 0) + if get_r t irow then 1 else 0)) + !g
  in
  set_r t hrow (((phase mod 4) + 4) mod 4 = 2);
  for w = 0 to t.words - 1 do
    t.x.(hrow).(w) <- Int64.logxor t.x.(hrow).(w) t.x.(irow).(w);
    t.z.(hrow).(w) <- Int64.logxor t.z.(hrow).(w) t.z.(irow).(w)
  done

(* copy row i into row h *)
let rowcopy t hrow irow =
  Array.blit t.x.(irow) 0 t.x.(hrow) 0 t.words;
  Array.blit t.z.(irow) 0 t.z.(hrow) 0 t.words;
  set_r t hrow (get_r t irow)

let rowclear t hrow =
  Array.fill t.x.(hrow) 0 t.words 0L;
  Array.fill t.z.(hrow) 0 t.words 0L;
  set_r t hrow false

(** [measure ?st t q] measures qubit [q] in the computational basis,
    collapsing the state. A PRNG state is needed only when the outcome is
    random; omitting it makes random outcomes 0.
    Returns [(outcome, was_deterministic)]. *)
let measure ?st t q =
  (* is there a stabilizer row with x bit set at q? *)
  let p = ref (-1) in
  (try
     for i = t.n to (2 * t.n) - 1 do
       if get_bit t.x.(i) q then begin
         p := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !p >= 0 then begin
    (* random outcome *)
    let p = !p in
    for i = 0 to (2 * t.n) - 1 do
      if i <> p && get_bit t.x.(i) q then rowsum t i p
    done;
    rowcopy t (p - t.n) p;
    rowclear t p;
    flip_bit t.z.(p) q;
    let outcome = match st with Some st -> Random.State.bool st | None -> false in
    set_r t p outcome;
    (outcome, false)
  end
  else begin
    (* deterministic: accumulate destabilizer products into a scratch row.
       We borrow an extra virtual row by simulating rowsum into explicit
       scratch arrays. *)
    let sx = Array.make t.words 0L and sz = Array.make t.words 0L in
    let sr = ref 0 in
    for i = 0 to t.n - 1 do
      if get_bit t.x.(i) q then begin
        (* scratch := scratch * stabilizer row (n + i) *)
        let irow = t.n + i in
        let g = ref 0 in
        for qq = 0 to t.n - 1 do
          let x1 = get_bit t.x.(irow) qq and z1 = get_bit t.z.(irow) qq in
          let x2 = get_bit sx qq and z2 = get_bit sz qq in
          let contribution =
            match (x1, z1) with
            | false, false -> 0
            | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
            | true, false -> if z2 && x2 then 1 else if z2 && not x2 then -1 else 0
            | false, true -> if x2 && not z2 then 1 else if x2 && z2 then -1 else 0
          in
          g := !g + contribution
        done;
        let phase = (2 * (!sr + if get_r t irow then 1 else 0)) + !g in
        sr := if ((phase mod 4) + 4) mod 4 = 2 then 1 else 0;
        for w = 0 to t.words - 1 do
          sx.(w) <- Int64.logxor sx.(w) t.x.(irow).(w);
          sz.(w) <- Int64.logxor sz.(w) t.z.(irow).(w)
        done
      end
    done;
    (!sr = 1, true)
  end

(** [run circuit] simulates a Clifford circuit from |0…0⟩.
    Raises {!Not_clifford} when a non-Clifford gate is hit. *)
let run circuit =
  let t = create (Circuit.num_qubits circuit) in
  Circuit.iter (apply t) circuit;
  t

(** [measure_all ?st t] measures every qubit in order and returns the packed
    outcome together with a flag telling whether {e all} outcomes were
    deterministic. Raises only if a measured 1 lands beyond bit 61 — wide
    registers whose outcome happens to fit an int (e.g. a small hidden
    shift on a 64-qubit circuit) are fine; use {!measure} otherwise. *)
let measure_all ?st t =
  let out = ref 0 and deterministic = ref true in
  for q = 0 to t.n - 1 do
    let bit, det = measure ?st t q in
    if bit then begin
      if q > 61 then
        invalid_arg "Stabilizer.measure_all: outcome does not fit an int (use measure)";
      out := !out lor (1 lsl q)
    end;
    if not det then deterministic := false
  done;
  (!out, !deterministic)
