(** ESOP-based reversible synthesis (the paper's Sec. V, refs [56–58]).

    Realizes an irreversible function [f : B^n -> B^m] under the Bennett
    embedding of Eq. (3)/(4) with [k = 0] ancillae: an [(n+m)]-line circuit
    computing [|x⟩|y⟩ ↦ |x⟩|y ⊕ f(x)⟩]. Each cube of a (minimized) ESOP
    cover of output [j] becomes one MCT gate with controls on the input
    lines and target on output line [n + j]. *)

module Cube = Logic.Cube
module Esop = Logic.Esop
module Esop_opt = Logic.Esop_opt
module Truth_table = Logic.Truth_table

(** [cube_gate ~n ~target cube] is the MCT gate of one cube, controls on
    lines [0..n-1]. *)
let cube_gate ~n ~target cube =
  Mct.of_controls (Cube.literals n cube) target

(** [of_esops ~n esops] builds the circuit from pre-computed covers (one per
    output, in order). *)
let of_esops ~n (esops : Esop.t list) =
  let m = List.length esops in
  let gates =
    List.concat
      (List.mapi
         (fun j esop ->
           Obs.count ~by:(List.length esop) "rev.esop.cubes";
           List.map (cube_gate ~n ~target:(n + j)) esop)
         esops)
  in
  Obs.count ~by:(List.length gates) "rev.esop.gates";
  Rcircuit.of_gates (n + m) gates

(** [synth fs] synthesizes the multi-output function given as one truth
    table per output (all on the same variable count), minimizing each
    cover with {!Logic.Esop_opt.minimize}. *)
let synth (fs : Truth_table.t list) =
  match fs with
  | [] -> invalid_arg "Esop_synth.synth: no outputs"
  | f0 :: rest ->
      Obs.with_span "rev.esop.synth" @@ fun () ->
      let n = Truth_table.num_vars f0 in
      if List.exists (fun f -> Truth_table.num_vars f <> n) rest then
        invalid_arg "Esop_synth.synth: arity mismatch";
      if Obs.enabled () then
        Obs.add_attrs [ ("vars", Obs.Int n); ("outputs", Obs.Int (List.length fs)) ];
      of_esops ~n (List.map Esop_opt.minimize fs)

(** [synth1 f] is {!synth} for a single output. *)
let synth1 f = synth [ f ]

(** [synth_expr ?n e] synthesizes a Boolean expression directly. *)
let synth_expr ?n e = synth1 (Logic.Bexpr.to_truth_table ?n e)
