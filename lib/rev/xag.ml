(** XOR-AND graphs (XAGs): multi-level logic networks with structural
    hashing, the representation behind hierarchical reversible synthesis
    (paper refs [55, 63]).

    Signals are node ids with an optional complement bit, encoded as
    [2*id + c]. Node 0 is the constant false, so signal 1 is constant
    true. *)

type node =
  | Const (* node 0 only *)
  | Input of int
  | And of int * int (* operand signals *)
  | Xor of int * int

type t = {
  mutable nodes : node array;
  mutable next : int;
  strash : (node, int) Hashtbl.t;
  num_inputs : int;
  mutable outputs : int list; (* output signals, in reverse insertion order *)
}

(* --- signals --- *)

let signal_of_node id = 2 * id
let node_of_signal s = s / 2
let is_complemented s = s land 1 = 1
let complement s = s lxor 1
let const_false = 0
let const_true = 1

let create num_inputs =
  let nodes = Array.make (max 16 (2 * num_inputs)) Const in
  for i = 0 to num_inputs - 1 do
    nodes.(i + 1) <- Input i
  done;
  { nodes; next = num_inputs + 1; strash = Hashtbl.create 256; num_inputs;
    outputs = [] }

(** [input g i] is the signal of primary input [i]. *)
let input g i =
  if i < 0 || i >= g.num_inputs then invalid_arg "Xag.input";
  signal_of_node (i + 1)

let alloc g n =
  match Hashtbl.find_opt g.strash n with
  | Some id -> signal_of_node id
  | None ->
      if g.next >= Array.length g.nodes then begin
        let bigger = Array.make (2 * Array.length g.nodes) Const in
        Array.blit g.nodes 0 bigger 0 g.next;
        g.nodes <- bigger
      end;
      let id = g.next in
      g.nodes.(id) <- n;
      g.next <- id + 1;
      Hashtbl.add g.strash n id;
      signal_of_node id

(** [and_ g a b] builds (or reuses) an AND node, with constant propagation
    and normalization of operand order. *)
let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = complement b then const_false
  else alloc g (And (a, b))

(** [xor g a b] builds (or reuses) an XOR node; complements are pulled out
    so stored operands are always uncomplemented. *)
let xor g a b =
  let c = (a land 1) lxor (b land 1) in
  let a = a land lnot 1 and b = b land lnot 1 in
  let a, b = if a <= b then (a, b) else (b, a) in
  let s =
    if a = const_false then b
    else if a = b then const_false
    else alloc g (Xor (a, b))
  in
  s lxor c

let not_ s = complement s
let or_ g a b = complement (and_ g (complement a) (complement b))

(** [add_output g s] registers [s] as the next primary output. *)
let add_output g s = g.outputs <- s :: g.outputs

(** [outputs g] lists output signals in registration order. *)
let outputs g = List.rev g.outputs

let num_inputs g = g.num_inputs

(** [num_nodes g] counts internal (And/Xor) nodes. *)
let num_nodes g =
  let c = ref 0 in
  for id = 0 to g.next - 1 do
    match g.nodes.(id) with And _ | Xor _ -> incr c | _ -> ()
  done;
  !c

(** [num_ands g] counts AND nodes (the multiplicative complexity proxy). *)
let num_ands g =
  let c = ref 0 in
  for id = 0 to g.next - 1 do
    match g.nodes.(id) with And _ -> incr c | _ -> ()
  done;
  !c

(** [of_bexpr n e] builds a single-output XAG from an expression on [n]
    inputs. *)
let of_bexpr n e =
  let g = create n in
  let rec go = function
    | Logic.Bexpr.Const b -> if b then const_true else const_false
    | Logic.Bexpr.Var i -> input g i
    | Logic.Bexpr.Not a -> complement (go a)
    | Logic.Bexpr.And (a, b) -> and_ g (go a) (go b)
    | Logic.Bexpr.Or (a, b) -> or_ g (go a) (go b)
    | Logic.Bexpr.Xor (a, b) -> xor g (go a) (go b)
  in
  add_output g (go e);
  g

(** [of_esops n esops] builds a multi-output XAG from ESOP covers: each
    cube is an AND tree, each cover an XOR chain. *)
let of_esops n (esops : Logic.Esop.t list) =
  let g = create n in
  List.iter
    (fun esop ->
      let cube_signal c =
        List.fold_left
          (fun acc (v, pol) ->
            let lit = if pol then input g v else complement (input g v) in
            and_ g acc lit)
          const_true
          (Logic.Cube.literals n c)
      in
      let s = List.fold_left (fun acc c -> xor g acc (cube_signal c)) const_false esop in
      add_output g s)
    esops;
  g

(** [ripple_adder n] builds the structural ripple-carry adder
    [(a, b) ↦ a + b] on two [n]-bit operands ([a] on inputs [0..n-1], [b]
    on [n..2n-1]; [n+1] sum outputs, LSB first). Unlike the ESOP route this
    is a genuinely multi-level network (≈ 5 nodes per bit), the natural
    workload for hierarchical synthesis and pebbling experiments. *)
let ripple_adder n =
  let g = create (2 * n) in
  let carry = ref const_false in
  for i = 0 to n - 1 do
    let a = input g i and b = input g (n + i) in
    let axb = xor g a b in
    let sum = xor g axb !carry in
    (* carry' = (a ∧ b) ⊕ (carry ∧ (a ⊕ b)) — the standard full adder *)
    carry := xor g (and_ g a b) (and_ g !carry axb);
    add_output g sum
  done;
  add_output g !carry;
  g

(** [eval g x] evaluates all outputs on assignment [x], packed as an
    integer (output [j] = bit [j]). *)
let eval g x =
  let values = Array.make g.next false in
  for id = 1 to g.next - 1 do
    values.(id) <-
      (match g.nodes.(id) with
      | Const -> false
      | Input i -> Logic.Bitops.bit x i
      | And (a, b) ->
          (values.(node_of_signal a) <> is_complemented a)
          && (values.(node_of_signal b) <> is_complemented b)
      | Xor (a, b) ->
          (values.(node_of_signal a) <> is_complemented a)
          <> (values.(node_of_signal b) <> is_complemented b))
  done;
  List.fold_left
    (fun (acc, j) s ->
      let v = values.(node_of_signal s) <> is_complemented s in
      ((if v then acc lor (1 lsl j) else acc), j + 1))
    (0, 0) (outputs g)
  |> fst

(** [to_truth_tables g] tabulates every output. *)
let to_truth_tables g =
  List.mapi
    (fun j _ -> Logic.Truth_table.of_fun g.num_inputs (fun x -> Logic.Bitops.bit (eval g x) j))
    (outputs g)

(** [internal_nodes_topological g] lists internal node ids in dependency
    order (operands before users — node ids are already topological by
    construction). *)
let internal_nodes_topological g =
  let out = ref [] in
  for id = g.next - 1 downto 1 do
    match g.nodes.(id) with And _ | Xor _ -> out := id :: !out | _ -> ()
  done;
  !out

(** [node g id] exposes the node for synthesis back ends. *)
let node g id = g.nodes.(id)

(** [levels g] is the logic level of every node (inputs and constants at
    0), indexed by node id — the depth metric of the cut mapper. *)
let levels g =
  let lv = Array.make g.next 0 in
  for id = 1 to g.next - 1 do
    match g.nodes.(id) with
    | And (a, b) | Xor (a, b) ->
        lv.(id) <- 1 + max lv.(node_of_signal a) lv.(node_of_signal b)
    | _ -> ()
  done;
  lv

(** [fanouts g] counts, per node id, how many internal nodes and primary
    outputs reference the node — the sharing estimate of area-flow
    mapping. *)
let fanouts g =
  let fo = Array.make g.next 0 in
  for id = 1 to g.next - 1 do
    match g.nodes.(id) with
    | And (a, b) | Xor (a, b) ->
        fo.(node_of_signal a) <- fo.(node_of_signal a) + 1;
        fo.(node_of_signal b) <- fo.(node_of_signal b) + 1
    | _ -> ()
  done;
  List.iter (fun s -> fo.(node_of_signal s) <- fo.(node_of_signal s) + 1) (outputs g);
  fo

(** [structural_key g] is a canonical string of the DAG structure and
    output list — equal keys mean identical graphs (same construction),
    the memoization key of the synthesis cache. *)
let structural_key g =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int g.num_inputs);
  for id = g.num_inputs + 1 to g.next - 1 do
    match g.nodes.(id) with
    | And (x, y) -> Buffer.add_string b (Printf.sprintf "A%d,%d" x y)
    | Xor (x, y) -> Buffer.add_string b (Printf.sprintf "X%d,%d" x y)
    | _ -> ()
  done;
  List.iter (fun s -> Buffer.add_string b (Printf.sprintf "o%d" s)) (outputs g);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- rewriting --- *)

(* Leaves of the maximal XOR tree rooted at [id]: stored XOR operands are
   uncomplemented by construction, so the expansion carries no parity. *)
let xor_leaves g id =
  let acc = ref [] in
  let rec go id =
    match g.nodes.(id) with
    | Xor (a, b) -> go (node_of_signal a); go (node_of_signal b)
    | _ -> acc := id :: !acc
  in
  go id;
  !acc

(* Leaves of the maximal AND tree rooted at [id], as signals: a
   complemented AND operand is a leaf (¬(x∧y) does not distribute). *)
let and_leaves g id =
  let acc = ref [] in
  let rec go s =
    match g.nodes.(node_of_signal s) with
    | And (a, b) when not (is_complemented s) -> go a; go b
    | _ -> acc := s :: !acc
  in
  (match g.nodes.(id) with
  | And (a, b) -> go a; go b
  | _ -> invalid_arg "Xag.and_leaves");
  !acc

(** [rewrite g] rebuilds the graph bottom-up with XOR-chain and AND-tree
    cleanup: XOR trees are flattened and pairwise-cancelled (x ⊕ x = 0),
    AND trees are flattened, deduplicated and contradiction-folded
    (x ∧ ¬x = 0), and only the output cones are copied, so dead and
    duplicate nodes vanish. Evaluation is preserved output-for-output. *)
let rewrite g =
  let g' = create g.num_inputs in
  let memo = Hashtbl.create 256 in
  let rec rebuild_signal s =
    let ns = rebuild_node (node_of_signal s) in
    if is_complemented s then complement ns else ns
  and rebuild_node id =
    match Hashtbl.find_opt memo id with
    | Some ns -> ns
    | None ->
        let ns =
          match g.nodes.(id) with
          | Const -> const_false
          | Input i -> input g' i
          | Xor _ ->
              (* flatten, rebuild the leaves, cancel duplicate pairs *)
              let leaves = List.map rebuild_node (xor_leaves g id) in
              let counted = Hashtbl.create 8 in
              List.iter
                (fun l ->
                  let c = Option.value ~default:0 (Hashtbl.find_opt counted l) in
                  Hashtbl.replace counted l (c + 1))
                leaves;
              let survivors =
                List.sort compare
                  (Hashtbl.fold
                     (fun l c acc -> if c land 1 = 1 then l :: acc else acc)
                     counted [])
              in
              List.fold_left (fun acc l -> xor g' acc l) const_false survivors
          | And _ ->
              let leaves =
                List.sort_uniq compare (List.map rebuild_signal (and_leaves g id))
              in
              let contradictory =
                List.exists (fun l -> List.mem (complement l) leaves) leaves
              in
              if contradictory then const_false
              else List.fold_left (fun acc l -> and_ g' acc l) const_true leaves
        in
        Hashtbl.add memo id ns;
        ns
  in
  List.iter (fun s -> add_output g' (rebuild_signal s)) (outputs g);
  g'

(* --- truth-table front end --- *)

(** [of_truth_tables fs] builds a multi-output XAG from truth tables via
    NPN-cached ESOP covers (see {!Cache.Cover}) — the bridge from the
    table-based flow into the XAG front end. *)
let of_truth_tables (fs : Logic.Truth_table.t list) =
  match fs with
  | [] -> invalid_arg "Xag.of_truth_tables: no outputs"
  | f0 :: _ ->
      let n = Logic.Truth_table.num_vars f0 in
      of_esops n (List.map Cache.Cover.minimize fs)

(** [of_truth_table f] is the single-output special case. *)
let of_truth_table f = of_truth_tables [ f ]

(** [cone g signals] is the set of internal node ids feeding the given
    signals, as a sorted list. *)
let cone g signals =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if id > 0 && not (Hashtbl.mem seen id) then
      match g.nodes.(id) with
      | And (a, b) | Xor (a, b) ->
          Hashtbl.add seen id ();
          go (node_of_signal a);
          go (node_of_signal b)
      | _ -> ()
  in
  List.iter (fun s -> go (node_of_signal s)) signals;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])
