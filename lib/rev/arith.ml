(** Reversible arithmetic circuits.

    The paper's Sec. III lists the combinational workloads quantum
    algorithms need — "factoring needs constant modular arithmetic [1],
    elliptic curve dlog needs generic modular arithmetic [4]". This module
    provides the standard building blocks, both {e structural} (the
    Cuccaro/CDKM ripple-carry adder, incrementers) and {e specification
    level} (modular add/multiply permutations to feed the automatic
    synthesis flow). *)

module Bitops = Logic.Bitops
module Perm = Logic.Perm

(** Line layout of the in-place adder [b := b + a]. *)
type adder_layout = {
  carry_in : int; (* ancilla, must be 0, returned to 0 *)
  a : int array; (* addend, preserved *)
  b : int array; (* accumulator, receives the sum *)
  carry_out : int option;
}

(* MAJ and UMA blocks of the Cuccaro-Draper-Kutin-Moulton adder. *)
let maj c b a = [ Mct.cnot a b; Mct.cnot a c; Mct.toffoli c b a ]
let uma c b a = [ Mct.toffoli c b a; Mct.cnot a c; Mct.cnot c b ]

(** [cuccaro_adder ?with_carry n] is the CDKM ripple-carry adder on [n]-bit
    operands: lines [1..n] hold [a] (preserved), lines [n+1..2n] hold [b]
    (replaced by [(a + b) mod 2^n]), line 0 is a clean carry ancilla, and
    with [with_carry] (default true) line [2n+1] receives the outgoing
    carry. One Toffoli per MAJ/UMA pair — 2n Toffolis total. *)
let cuccaro_adder ?(with_carry = true) n =
  if n < 1 then invalid_arg "Arith.cuccaro_adder";
  let carry_in = 0 in
  let a = Array.init n (fun i -> 1 + i) in
  let b = Array.init n (fun i -> 1 + n + i) in
  let carry_out = if with_carry then Some ((2 * n) + 1) else None in
  let lines = (2 * n) + 1 + if with_carry then 1 else 0 in
  let majs =
    List.concat
      (List.init n (fun i ->
           let c = if i = 0 then carry_in else a.(i - 1) in
           maj c b.(i) a.(i)))
  in
  let carry_gates =
    match carry_out with Some z -> [ Mct.cnot a.(n - 1) z ] | None -> []
  in
  let umas =
    List.concat
      (List.init n (fun j ->
           let i = n - 1 - j in
           let c = if i = 0 then carry_in else a.(i - 1) in
           uma c b.(i) a.(i)))
  in
  let circuit = Rcircuit.of_gates lines (majs @ carry_gates @ umas) in
  (circuit, { carry_in; a; b; carry_out })

(** [subtractor n] computes [b := b − a (mod 2^n)] — the reversed adder. *)
let subtractor n =
  let c, layout = cuccaro_adder ~with_carry:false n in
  (Rcircuit.reverse c, layout)

(** [incrementer n] maps [x ↦ x + 1 (mod 2^n)] in place on [n] lines,
    ancilla-free: an MCT staircase (bit [i] flips when all lower bits are
    1). [O(n)] gates but gates with up to [n−1] controls. *)
let incrementer n =
  if n < 1 then invalid_arg "Arith.incrementer";
  let gates =
    List.init n (fun j ->
        let i = n - 1 - j in
        Mct.make ~target:i ~pos:(Bitops.mask i) ~neg:0)
  in
  Rcircuit.of_gates n gates

(** [decrementer n] is the inverse staircase. *)
let decrementer n = Rcircuit.reverse (incrementer n)

(** [controlled_incrementer n] increments lines [1..n] when line 0 is 1. *)
let controlled_incrementer n =
  let gates =
    List.init n (fun j ->
        let i = n - 1 - j in
        Mct.make ~target:(i + 1) ~pos:((Bitops.mask i lsl 1) lor 1) ~neg:0)
  in
  Rcircuit.of_gates (n + 1) gates

(* --- specification-level modular arithmetic (for the synthesis flow) --- *)

(** [mod_add_const n ~m ~k] is the permutation of [B^n] computing
    [x ↦ (x + k) mod m] on the residues [x < m] and the identity above —
    the "constant modular adder" of Shor-style circuits, as a reversible
    specification ready for {!Tbs}/{!Dbs} or the {!Core.Flow} pipeline. *)
let mod_add_const n ~m ~k =
  if m < 1 || m > 1 lsl n then invalid_arg "Arith.mod_add_const";
  let k = ((k mod m) + m) mod m in
  Perm.of_array ~n
    (Array.init (1 lsl n) (fun x -> if x < m then (x + k) mod m else x))

(** [mod_mult_const n ~m ~c] is [x ↦ c·x mod m] on residues (identity
    above); requires [gcd(c, m) = 1] so the map is a bijection. *)
let mod_mult_const n ~m ~c =
  if m < 1 || m > 1 lsl n then invalid_arg "Arith.mod_mult_const";
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let c = ((c mod m) + m) mod m in
  if gcd c m <> 1 then invalid_arg "Arith.mod_mult_const: c not invertible";
  Perm.of_array ~n
    (Array.init (1 lsl n) (fun x -> if x < m then c * x mod m else x))

(** [mod_exp_step n ~m ~base] is one modular-exponentiation round
    [x ↦ base·x mod m] — composing [e] of these yields [base^e · x mod m],
    the core of Shor's order finding. *)
let mod_exp_step n ~m ~base = mod_mult_const n ~m ~c:base

(* --- structural subtract / compare (circuit level) --- *)

(** [borrow_subtractor n] is the ripple-borrow subtractor
    [b := b − a (mod 2^n)] with an explicit borrow-out line: the CDKM
    adder run on [(a, ¬b)] (X-conjugated accumulator), whose outgoing
    carry is exactly the borrow [a > b]. Same line layout as
    {!cuccaro_adder}; [layout.carry_out] holds the borrow. *)
let borrow_subtractor n =
  let c, layout = cuccaro_adder ~with_carry:true n in
  let flips = Array.to_list (Array.map Mct.not_ layout.b) in
  let gates = flips @ Rcircuit.gates c @ flips in
  (Rcircuit.of_gates (Rcircuit.num_lines c) gates, layout)

(** Line layout of the {!less_than} comparator. *)
type cmp_layout = {
  cmp_carry : int; (* clean ancilla, returned clean *)
  cmp_a : int array; (* preserved *)
  cmp_b : int array; (* preserved *)
  cmp_flag : int; (* flag ^= [a < b] *)
}

(** [less_than n] is the unsigned comparator: [flag ^= (a < b)], both
    operands preserved, the carry ancilla returned clean. It runs the MAJ
    half of the CDKM adder on [(¬a, b)] — the outgoing carry of [¬a + b]
    is [a < b] — copies it onto the flag and unwinds the MAJ chain. *)
let less_than n =
  if n < 1 then invalid_arg "Arith.less_than";
  let carry = 0 in
  let a = Array.init n (fun i -> 1 + i) in
  let b = Array.init n (fun i -> 1 + n + i) in
  let flag = (2 * n) + 1 in
  let majs =
    List.concat
      (List.init n (fun i ->
           let c = if i = 0 then carry else a.(i - 1) in
           maj c b.(i) a.(i)))
  in
  let flips = Array.to_list (Array.map Mct.not_ a) in
  let gates =
    flips @ majs @ [ Mct.cnot a.(n - 1) flag ] @ List.rev majs @ flips
  in
  ( Rcircuit.of_gates ((2 * n) + 2) gates,
    { cmp_carry = carry; cmp_a = a; cmp_b = b; cmp_flag = flag } )

(* --- native XAG builders (specification level, never 2^n tables) --- *)

(* One-bit full adder over signals: (sum, carry-out). *)
let xag_full_add g a b c =
  let axb = Xag.xor g a b in
  (Xag.xor g axb c, Xag.xor g (Xag.and_ g a b) (Xag.and_ g c axb))

(** [xag_adder n] is the structural ripple-carry adder XAG
    ([a] on inputs [0..n−1], [b] on [n..2n−1]; [n+1] outputs). *)
let xag_adder n = Xag.ripple_adder n

(** [xag_subtractor n] computes [a − b (mod 2^n)] plus a borrow-out
    output, as a ripple-borrow chain (≈ 5 nodes per bit):
    [borrow' = (¬a ∧ b) ⊕ (borrow ∧ ¬(a ⊕ b))]. *)
let xag_subtractor n =
  if n < 1 then invalid_arg "Arith.xag_subtractor";
  let g = Xag.create (2 * n) in
  let borrow = ref Xag.const_false in
  for i = 0 to n - 1 do
    let a = Xag.input g i and b = Xag.input g (n + i) in
    let axb = Xag.xor g a b in
    Xag.add_output g (Xag.xor g axb !borrow);
    borrow :=
      Xag.xor g
        (Xag.and_ g (Xag.complement a) b)
        (Xag.and_ g !borrow (Xag.complement axb))
  done;
  Xag.add_output g !borrow;
  g

(** [xag_less_than n] is the single-output unsigned comparator
    [a < b] — the final borrow of the subtraction chain. *)
let xag_less_than n =
  if n < 1 then invalid_arg "Arith.xag_less_than";
  let g = Xag.create (2 * n) in
  let borrow = ref Xag.const_false in
  for i = 0 to n - 1 do
    let a = Xag.input g i and b = Xag.input g (n + i) in
    let axb = Xag.xor g a b in
    borrow :=
      Xag.xor g
        (Xag.and_ g (Xag.complement a) b)
        (Xag.and_ g !borrow (Xag.complement axb))
  done;
  Xag.add_output g !borrow;
  g

(** [xag_less_than_const n ~k] is the predicate [x < k] on an [n]-bit
    input against a compile-time constant — constants fold, leaving at
    most two nodes per bit: scanning LSB→MSB,
    [lt ← ¬x_i ⊕ (x_i ∧ lt)] where [k_i = 1], [lt ← ¬x_i ∧ lt] where
    [k_i = 0]. *)
let xag_less_than_const n ~k =
  if n < 1 then invalid_arg "Arith.xag_less_than_const";
  let g = Xag.create n in
  if k lsr n <> 0 then
    (* k beyond the input range: the predicate is constant true *)
    Xag.add_output g Xag.const_true
  else begin
    let lt = ref Xag.const_false in
    for i = 0 to n - 1 do
      let x = Xag.input g i in
      lt :=
        if Bitops.bit k i then
          Xag.xor g (Xag.complement x) (Xag.and_ g x !lt)
        else Xag.and_ g (Xag.complement x) !lt
    done;
    Xag.add_output g !lt
  end;
  g

(** [xag_equals_const n ~k] is the predicate [x = k] — an AND tree of
    per-bit (anti-)literals. *)
let xag_equals_const n ~k =
  if n < 1 then invalid_arg "Arith.xag_equals_const";
  let g = Xag.create n in
  let eq = ref Xag.const_true in
  for i = 0 to n - 1 do
    let x = Xag.input g i in
    let lit = if Bitops.bit k i then x else Xag.complement x in
    eq := Xag.and_ g !eq lit
  done;
  Xag.add_output g !eq;
  g

(** [xag_add_equals n] is the [3n]-input predicate [a + b = c]
    ([a] on [0..n−1], [b] on [n..2n−1], [c] on [2n..3n−1]): a ripple sum
    compared bit-for-bit, with the outgoing carry required clear. *)
let xag_add_equals n =
  if n < 1 then invalid_arg "Arith.xag_add_equals";
  let g = Xag.create (3 * n) in
  let carry = ref Xag.const_false in
  let eq = ref Xag.const_true in
  for i = 0 to n - 1 do
    let a = Xag.input g i
    and b = Xag.input g (n + i)
    and c = Xag.input g ((2 * n) + i) in
    let sum, carry' = xag_full_add g a b !carry in
    carry := carry';
    eq := Xag.and_ g !eq (Xag.complement (Xag.xor g sum c))
  done;
  Xag.add_output g (Xag.and_ g !eq (Xag.complement !carry));
  g

(** [xag_multiplier n] is the [n×n → 2n]-bit shift-add array multiplier
    ([a] on inputs [0..n−1], [b] on [n..2n−1], product LSB first) —
    quadratic in nodes, never in table rows. *)
let xag_multiplier n =
  if n < 1 then invalid_arg "Arith.xag_multiplier";
  let g = Xag.create (2 * n) in
  let p = Array.make (2 * n) Xag.const_false in
  for i = 0 to n - 1 do
    let bi = Xag.input g (n + i) in
    let carry = ref Xag.const_false in
    for j = 0 to n - 1 do
      let pp = Xag.and_ g (Xag.input g j) bi in
      let sum, carry' = xag_full_add g p.(i + j) pp !carry in
      p.(i + j) <- sum;
      carry := carry'
    done;
    (* ripple the row carry into the high half *)
    let pos = ref (i + n) in
    while !carry <> Xag.const_false && !pos < 2 * n do
      let sum, carry' = xag_full_add g p.(!pos) !carry Xag.const_false in
      p.(!pos) <- sum;
      carry := carry';
      incr pos
    done
  done;
  Array.iter (Xag.add_output g) p;
  g

(* --- verification helpers --- *)

(** [check_adder (circuit, layout) n] exhaustively verifies
    [b := a + b] (and the outgoing carry when present). *)
let check_adder (circuit, layout) n =
  let ok = ref true in
  for a = 0 to (1 lsl n) - 1 do
    for b = 0 to (1 lsl n) - 1 do
      let input = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit a i then input := !input lor (1 lsl l)) layout.a;
      Array.iteri (fun i l -> if Bitops.bit b i then input := !input lor (1 lsl l)) layout.b;
      let out = Rsim.run circuit !input in
      let a' = ref 0 and b' = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit out l then a' := !a' lor (1 lsl i)) layout.a;
      Array.iteri (fun i l -> if Bitops.bit out l then b' := !b' lor (1 lsl i)) layout.b;
      if !a' <> a then ok := false;
      if !b' <> (a + b) land Bitops.mask n then ok := false;
      if Bitops.bit out layout.carry_in then ok := false;
      (match layout.carry_out with
      | Some z -> if Bitops.bit out z <> (a + b >= 1 lsl n) then ok := false
      | None -> ())
    done
  done;
  !ok

(** [check_subtractor (circuit, layout) n] exhaustively verifies
    [b := b − a (mod 2^n)] and the borrow-out. *)
let check_subtractor (circuit, layout) n =
  let ok = ref true in
  for a = 0 to (1 lsl n) - 1 do
    for b = 0 to (1 lsl n) - 1 do
      let input = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit a i then input := !input lor (1 lsl l)) layout.a;
      Array.iteri (fun i l -> if Bitops.bit b i then input := !input lor (1 lsl l)) layout.b;
      let out = Rsim.run circuit !input in
      let a' = ref 0 and b' = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit out l then a' := !a' lor (1 lsl i)) layout.a;
      Array.iteri (fun i l -> if Bitops.bit out l then b' := !b' lor (1 lsl i)) layout.b;
      if !a' <> a then ok := false;
      if !b' <> (b - a) land Bitops.mask n then ok := false;
      if Bitops.bit out layout.carry_in then ok := false;
      (match layout.carry_out with
      | Some z -> if Bitops.bit out z <> (a > b) then ok := false
      | None -> ())
    done
  done;
  !ok

(** [check_less_than (circuit, layout) n] exhaustively verifies
    [flag ^= (a < b)] with operands preserved and ancilla clean. *)
let check_less_than (circuit, (layout : cmp_layout)) n =
  let ok = ref true in
  for a = 0 to (1 lsl n) - 1 do
    for b = 0 to (1 lsl n) - 1 do
      let input = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit a i then input := !input lor (1 lsl l))
        layout.cmp_a;
      Array.iteri (fun i l -> if Bitops.bit b i then input := !input lor (1 lsl l))
        layout.cmp_b;
      let out = Rsim.run circuit !input in
      let a' = ref 0 and b' = ref 0 in
      Array.iteri (fun i l -> if Bitops.bit out l then a' := !a' lor (1 lsl i))
        layout.cmp_a;
      Array.iteri (fun i l -> if Bitops.bit out l then b' := !b' lor (1 lsl i))
        layout.cmp_b;
      if !a' <> a || !b' <> b then ok := false;
      if Bitops.bit out layout.cmp_carry then ok := false;
      if Bitops.bit out layout.cmp_flag <> (a < b) then ok := false
    done
  done;
  !ok
