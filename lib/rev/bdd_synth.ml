(** BDD-based reversible synthesis (Wille–Drechsler DAC'09, the paper's
    ref [45]).

    The outputs are built as a shared ROBDD; each internal node gets an
    ancilla line carrying its function value, computed from its cofactor
    lines by the Shannon gadget

      v  =  x̄·lo ⊕ x·hi
         →  MCT(¬x, lo_line ; v) · MCT(x, hi_line ; v)

    (with the obvious simplifications when a cofactor is a terminal).
    Outputs are copied off the root lines and the node cascade is
    uncomputed, giving the Eq. (4) Bennett form with one ancilla per shared
    BDD node — the hallmark of hierarchical synthesis on a {e canonical}
    data structure. *)

module Bdd = Logic.Bdd
module Bitops = Logic.Bitops
module Truth_table = Logic.Truth_table

type layout = { n : int; m : int; total_lines : int; ancillae : int }

(* Gates computing BDD node [id] (variable x, cofactors lo/hi) onto [line],
   given each cofactor's value line (terminals handled inline). *)
let node_gates man line_of id line =
  let node = Bdd.node man id in
  let xline = node.Bdd.var in
  let half child ~polarity =
    if child = Bdd.zero then []
    else if child = Bdd.one then [ Mct.of_controls [ (xline, polarity) ] line ]
    else [ Mct.of_controls [ (xline, polarity); (line_of child, true) ] line ]
  in
  half node.Bdd.lo ~polarity:false @ half node.Bdd.hi ~polarity:true

(** [synth fs] synthesizes the multi-output function [fs] (one truth table
    per output). Line layout: inputs [0..n-1], outputs [n..n+m-1], one
    ancilla per shared BDD node above. *)
let synth (fs : Truth_table.t list) =
  match fs with
  | [] -> invalid_arg "Bdd_synth.synth: no outputs"
  | f0 :: _ ->
      Obs.with_span "rev.bdd.synth" @@ fun () ->
      let n = Truth_table.num_vars f0 in
      let m = List.length fs in
      let man = Bdd.create n in
      let roots = List.map (Bdd.of_truth_table man) fs in
      (* the apply memos are only needed while the roots are built; drop
         them before the (potentially large) gate-emission phase *)
      Bdd.clear_caches man;
      (* union of the roots' cones in child-before-parent order *)
      let seen = Hashtbl.create 64 in
      let order = ref [] in
      let rec collect id =
        if (not (Bdd.is_terminal id)) && not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          let node = Bdd.node man id in
          collect node.Bdd.lo;
          collect node.Bdd.hi;
          order := id :: !order
        end
      in
      List.iter collect roots;
      let order = List.rev !order in
      let line_tbl = Hashtbl.create 64 in
      List.iteri (fun i id -> Hashtbl.add line_tbl id (n + m + i)) order;
      let line_of id = Hashtbl.find line_tbl id in
      let compute = List.concat_map (fun id -> node_gates man line_of id (line_of id)) order in
      let copies =
        List.concat
          (List.mapi
             (fun j root ->
               if root = Bdd.zero then []
               else if root = Bdd.one then [ Mct.not_ (n + j) ]
               else [ Mct.cnot (line_of root) (n + j) ])
             roots)
      in
      let total = n + m + List.length order in
      if total > 62 then invalid_arg "Bdd_synth.synth: too many lines (BDD too large)";
      let circuit = Rcircuit.of_gates total (compute @ copies @ List.rev compute) in
      if Obs.enabled () then begin
        Obs.count ~by:(List.length order) "rev.bdd.nodes";
        Obs.count ~by:(Rcircuit.num_gates circuit) "rev.bdd.gates";
        Obs.add_attrs
          [ ("nodes", Obs.Int (List.length order));
            ("ancillae", Obs.Int (List.length order));
            ("gates", Obs.Int (Rcircuit.num_gates circuit)) ]
      end;
      (circuit, { n; m; total_lines = total; ancillae = List.length order })

(** [check (circuit, layout) fs] verifies the Eq. (4) contract: inputs
    preserved, outputs on the output lines, ancillae restored to 0. *)
let check (circuit, layout) (fs : Truth_table.t list) =
  let ok = ref true in
  for x = 0 to (1 lsl layout.n) - 1 do
    let out = Rsim.run circuit x in
    if out land Bitops.mask layout.n <> x then ok := false;
    List.iteri
      (fun j f ->
        if Bitops.bit out (layout.n + j) <> Truth_table.get f x then ok := false)
      fs;
    if out lsr (layout.n + layout.m) <> 0 then ok := false
  done;
  !ok
