(** Cached entry points into the reversible-synthesis layer.

    These wrappers put {!Cache} in front of the synthesis routines:

    - {!esop1} memoizes single-output ESOP synthesis by NPN class — the
      cascade of the canonical representative is stored once and
      {e replayed} (controls permuted/re-polarized, an X absorbed for
      output negation) for every member of the class;
    - {!esop} routes multi-output covers through the NPN-indexed cover
      store;
    - {!perm} memoizes permutation synthesis by (method, permutation).

    Every wrapper is extensionally identical to its uncached counterpart
    and — for the NPN paths — produces {e bit-identical} circuits whether
    the cache is enabled or not, because canonization and replay always
    run; only the representative's synthesis is memoized. *)

module Truth_table = Logic.Truth_table
module Npn = Logic.Npn
module Bitops = Logic.Bitops

(* ------------------------------------------------------------------ *)
(* NPN-indexed cascade store (single-output ESOP synthesis)            *)
(* ------------------------------------------------------------------ *)

let cascade_store : (string, Rcircuit.t) Cache.store =
  Cache.create ~name:"npn.cascade" ~schema:"rcircuit.v1" ~group:"npn"
    ~key_of:Fun.id

(* Rewrite one gate of the representative's cascade back to the requested
   function: control on input [v] with polarity [pol] becomes a control on
   [perm v] with polarity [pol ⊕ neg_v]; the target (the output line) is
   untouched. *)
let replay_gate (t : Npn.transform) n (g : Mct.t) =
  let controls =
    List.map
      (fun (v, pol) -> (t.Npn.perm.(v), pol <> Bitops.bit t.Npn.input_neg v))
      (Mct.controls n g)
  in
  Mct.of_controls controls g.Mct.target

let is_x target (g : Mct.t) = g.Mct.target = target && g.Mct.pos = 0 && g.Mct.neg = 0

let rec drop_x target = function
  | [] -> []
  | g :: rest -> if is_x target g then rest else g :: drop_x target rest

(* Output negation XORs the constant 1 onto the target — one uncontrolled
   NOT, cancelled against an existing one when the cascade carries it. *)
let replay_cascade (t : Npn.transform) n cascade =
  let gates = List.map (replay_gate t n) (Rcircuit.gates cascade) in
  let gates =
    if not t.Npn.output_neg then gates
    else if List.exists (is_x n) gates then drop_x n gates
    else gates @ [ Mct.not_ n ]
  in
  Rcircuit.of_gates (Rcircuit.num_lines cascade) gates

(** [esop1 f] is extensionally {!Esop_synth.synth1}: an [(n+1)]-line
    Bennett cascade computing [|x⟩|y⟩ ↦ |x⟩|y ⊕ f(x)⟩]. For [n <= 6] the
    NPN-canonical representative is synthesized (at most once per class)
    and the transform replayed; wider functions fall back to the
    exact-key cover store. *)
let esop1 f =
  let n = Truth_table.num_vars f in
  if n <= 6 then begin
    let rep, t = Obs.with_span "cache.npn.lookup" (fun () -> Cache.canonical f) in
    let cascade =
      Cache.find_or_add cascade_store (Truth_table.to_string rep) (fun () ->
          Esop_synth.synth1 rep)
    in
    Obs.with_span "cache.npn.replay" (fun () -> replay_cascade t n cascade)
  end
  else Esop_synth.of_esops ~n [ Cache.Cover.minimize f ]

(** [esop fs] is extensionally {!Esop_synth.synth}, with every output's
    cover minimized through the NPN-indexed cover store. *)
let esop fs =
  match fs with
  | [] -> invalid_arg "Synth_cache.esop: no outputs"
  | f0 :: rest ->
      Obs.with_span "rev.esop.synth" @@ fun () ->
      let n = Truth_table.num_vars f0 in
      if List.exists (fun f -> Truth_table.num_vars f <> n) rest then
        invalid_arg "Synth_cache.esop: arity mismatch";
      if Obs.enabled () then
        Obs.add_attrs [ ("vars", Obs.Int n); ("outputs", Obs.Int (List.length fs)) ];
      Esop_synth.of_esops ~n (List.map Cache.Cover.minimize fs)

(* ------------------------------------------------------------------ *)
(* XAG-oracle store                                                    *)
(* ------------------------------------------------------------------ *)

let xag_store : (string, Rcircuit.t) Cache.store =
  Cache.create ~name:"xag" ~schema:"rcircuit.v1" ~group:"xag" ~key_of:Fun.id

(** [xag ~k ?budget synth g] memoizes a whole-oracle XAG synthesis run
    under the graph's {!Xag.structural_key} plus the mapping parameters.
    The synthesis routine is deterministic, so the result is bit-identical
    whether it is replayed from the store or recomputed — and the ≤6-input
    cut functions inside [synth] additionally share the NPN cover store
    across different oracles. *)
let xag ~k ?budget synth (g : Xag.t) =
  let key =
    Printf.sprintf "k%d:b%s:%s" k
      (match budget with None -> "-" | Some b -> string_of_int b)
      (Xag.structural_key g)
  in
  Cache.find_or_add xag_store key (fun () -> synth g)

(* ------------------------------------------------------------------ *)
(* Permutation-synthesis store                                         *)
(* ------------------------------------------------------------------ *)

let perm_store : (string, Rcircuit.t) Cache.store =
  Cache.create ~name:"perm" ~schema:"rcircuit.v1" ~group:"perm" ~key_of:Fun.id

(** [perm ~name synth p] memoizes [synth p] under the key
    [(name, p)] — [name] must identify the synthesis method (e.g.
    ["tbs"], ["dbs"]), since different methods give different cascades
    for the same permutation. *)
let perm ~name synth (p : Logic.Perm.t) =
  let key =
    name ^ ":"
    ^ String.concat ","
        (List.map string_of_int (Array.to_list (Logic.Perm.to_array p)))
  in
  Cache.find_or_add perm_store key (fun () -> synth p)
