(** LUT-based hierarchical reversible synthesis (Soeken–Roetteler–Wiebe–
    De Micheli DAC'17, the paper's ref [65]).

    The XAG is first mapped into a network of [k]-input lookup tables
    (greedy k-feasible cuts), then each LUT — rather than each gate — is
    computed onto one ancilla line as an ESOP cascade over its cut leaves.
    Larger [k] means {e fewer ancillae} but {e wider gates}: exactly the
    qubit/quality dial the paper's Sec. IX says synthesis needs to expose. *)

module Truth_table = Logic.Truth_table
module Bitops = Logic.Bitops

type lut = {
  root : int; (* XAG node id this LUT computes *)
  leaves : int list; (* XAG node ids (inputs or other LUT roots) *)
  table : Truth_table.t; (* local function over the leaves, in list order *)
}

type layout = { n : int; m : int; total_lines : int; ancillae : int; k : int }

(* --- priority-cut enumeration (area-flow / depth cost) ---

   Per node we enumerate k-feasible cuts by merging the children's cut
   sets (plus their trivial cuts), prune dominated cuts, and keep the
   [max_cuts] best by (area flow, depth, size). Area flow divides the
   estimated LUT count by the node's fanout so shared logic is not
   double-charged — the standard FPGA-mapping cost adapted to ancilla
   minimization. *)

type cut = {
  cut_leaves : int list; (* sorted node ids *)
  cut_depth : int;
  cut_aflow : float;
}

let max_cuts = 8

let cut_compare a b =
  match compare a.cut_aflow b.cut_aflow with
  | 0 -> (
      match compare a.cut_depth b.cut_depth with
      | 0 -> compare (List.length a.cut_leaves) (List.length b.cut_leaves)
      | c -> c)
  | c -> c

(* [a] dominates [b] when a's leaves are a subset and a costs no more. *)
let dominates a b =
  List.for_all (fun l -> List.mem l b.cut_leaves) a.cut_leaves && cut_compare a b <= 0

let merge_leaves k la lb =
  let rec go acc n la lb =
    if n > k then None
    else
      match (la, lb) with
      | [], rest | rest, [] ->
          if n + List.length rest > k then None
          else Some (List.rev_append acc rest)
      | x :: xs, y :: ys ->
          if x = y then go (x :: acc) (n + 1) xs ys
          else if x < y then go (x :: acc) (n + 1) xs lb
          else go (y :: acc) (n + 1) la ys
  in
  go [] 0 la lb

(* Enumerate priority cuts for every internal node; returns
   [best_cut id] (the covering choice) and the total number of cuts kept
   (an Obs statistic). *)
let enumerate_cuts g ~k =
  let fo = Xag.fanouts g in
  let cuts : (int, cut list) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 in
  let trivial id = { cut_leaves = [ id ]; cut_depth = 0; cut_aflow = 0. } in
  (* cuts used by parents: the node's own cuts plus its trivial cut *)
  let cuts_up id =
    match Xag.node g id with
    | Xag.Input _ | Xag.Const -> [ trivial id ]
    | _ -> trivial id :: Hashtbl.find cuts id
  in
  let best_aflow id =
    match Xag.node g id with
    | Xag.Input _ | Xag.Const -> 0.
    | _ -> (List.hd (Hashtbl.find cuts id)).cut_aflow
  in
  let best_depth id =
    match Xag.node g id with
    | Xag.Input _ | Xag.Const -> 0
    | _ -> (List.hd (Hashtbl.find cuts id)).cut_depth
  in
  List.iter
    (fun id ->
      match Xag.node g id with
      | Xag.And (a, b) | Xag.Xor (a, b) ->
          let ca = cuts_up (Xag.node_of_signal a)
          and cb = cuts_up (Xag.node_of_signal b) in
          let merged =
            List.concat_map
              (fun x ->
                List.filter_map
                  (fun y ->
                    match merge_leaves k x.cut_leaves y.cut_leaves with
                    | None -> None
                    | Some leaves ->
                        let depth =
                          1 + List.fold_left (fun d l -> max d (best_depth l)) 0 leaves
                        in
                        let area =
                          1. +. List.fold_left (fun s l -> s +. best_aflow l) 0. leaves
                        in
                        Some
                          { cut_leaves = leaves;
                            cut_depth = depth;
                            cut_aflow = area /. float_of_int (max 1 fo.(id)) })
                  cb)
              ca
          in
          let sorted = List.sort_uniq compare merged in
          let pruned =
            List.filter
              (fun c ->
                not
                  (List.exists (fun c' -> c' != c && dominates c' c) sorted))
              sorted
          in
          let kept =
            List.filteri (fun i _ -> i < max_cuts) (List.sort cut_compare pruned)
          in
          (* the pair cut {a, b} always fits (k >= 2), so [kept] is never
             empty *)
          total := !total + List.length kept;
          Hashtbl.add cuts id kept
      | _ -> ())
    (Xag.internal_nodes_topological g);
  let best id = (List.hd (Hashtbl.find cuts id)).cut_leaves in
  (best, !total)

(* Tabulate the cone of [root] over the ordered [leaves]. *)
let local_table g ~root ~leaves =
  let k = List.length leaves in
  Truth_table.of_fun k (fun assignment ->
      let values = Hashtbl.create 16 in
      List.iteri (fun i leaf -> Hashtbl.add values leaf (Bitops.bit assignment i)) leaves;
      let rec eval id =
        match Hashtbl.find_opt values id with
        | Some v -> v
        | None ->
            let v =
              match Xag.node g id with
              | Xag.Const -> false
              | Xag.Input _ ->
                  invalid_arg "Lut_synth: cut does not cover an input"
              | Xag.And (a, b) -> eval_signal a && eval_signal b
              | Xag.Xor (a, b) -> eval_signal a <> eval_signal b
            in
            Hashtbl.add values id v;
            v
      and eval_signal s =
        let v = eval (Xag.node_of_signal s) in
        if Xag.is_complemented s then not v else v
      in
      eval root)

(** [map_luts ~k g] covers the XAG with k-input LUTs using priority-cut
    enumeration: returns the selected LUTs in dependency order (leaves'
    LUTs before users'). *)
let map_luts ~k g =
  if k < 2 then invalid_arg "Lut_synth.map_luts: k >= 2";
  Obs.with_span "rev.xag.map" @@ fun () ->
  let cut_of, cuts_enumerated = enumerate_cuts g ~k in
  (* covering: walk back from the outputs *)
  let selected = Hashtbl.create 64 in
  let order = ref [] in
  let rec need id =
    match Xag.node g id with
    | Xag.Input _ | Xag.Const -> ()
    | _ ->
        if not (Hashtbl.mem selected id) then begin
          Hashtbl.add selected id ();
          let leaves = cut_of id in
          List.iter need leaves;
          order := { root = id; leaves; table = local_table g ~root:id ~leaves } :: !order
        end
  in
  List.iter (fun s -> need (Xag.node_of_signal s)) (Xag.outputs g);
  let luts = List.rev !order in
  Obs.count ~by:(List.length luts) "xag.luts";
  Obs.count ~by:cuts_enumerated "xag.map.cuts";
  luts

(** [synth ~k g] is the full flow: LUT mapping, one ancilla per LUT
    computed as an ESOP cascade, outputs copied off, Bennett uncompute.
    Line layout: inputs, outputs, LUT ancillae. *)
let synth ~k g =
  let n = Xag.num_inputs g in
  let outputs = Xag.outputs g in
  let m = List.length outputs in
  let luts = map_luts ~k g in
  let line_tbl = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.add line_tbl l.root (n + m + i)) luts;
  let line_of id =
    match Xag.node g id with
    | Xag.Input i -> i
    | _ -> Hashtbl.find line_tbl id
  in
  let lut_gates l =
    let target = line_of l.root in
    List.map
      (fun cube ->
        let controls =
          List.map
            (fun (v, pol) -> (line_of (List.nth l.leaves v), pol))
            (Logic.Cube.literals (List.length l.leaves) cube)
        in
        Mct.of_controls controls target)
      (Cache.Cover.minimize l.table)
  in
  let compute = List.concat_map lut_gates luts in
  let copies =
    List.concat
      (List.mapi
         (fun j s ->
           let id = Xag.node_of_signal s in
           let base =
             match Xag.node g id with
             | Xag.Const -> []
             | _ -> [ Mct.cnot (line_of id) (n + j) ]
           in
           if Xag.is_complemented s then base @ [ Mct.not_ (n + j) ] else base)
         outputs)
  in
  let total = n + m + List.length luts in
  if total > 62 then invalid_arg "Lut_synth.synth: too many lines";
  let circuit = Rcircuit.of_gates total (compute @ copies @ List.rev compute) in
  (circuit, { n; m; total_lines = total; ancillae = List.length luts; k })

(** [synth_pebbled ~k ~budget g] is the ancilla-bounded flow: priority-cut
    LUT mapping, then a {!Pebble.schedule_dag} compute/uncompute schedule
    whose peak pebble count fits [budget], each pebbled LUT landing on a
    reused ancilla line and each LUT function minimized through the
    NPN-indexed {!Cache.Cover} store. Line layout: inputs, outputs, then
    [ancillae = peak] reusable lines (all returned clean). Raises
    {!Pebble.Infeasible} when no strategy fits the budget. *)
let synth_pebbled ~k ~budget g =
  Obs.with_span "rev.xag.synth_pebbled" @@ fun () ->
  let n = Xag.num_inputs g in
  let outputs = Xag.outputs g in
  let m = List.length outputs in
  let luts = Array.of_list (map_luts ~k g) in
  let num = Array.length luts in
  let idx_of = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.add idx_of l.root i) luts;
  let deps =
    Array.map
      (fun (l : lut) ->
        List.filter_map (fun leaf -> Hashtbl.find_opt idx_of leaf) l.leaves)
      luts
  in
  let out_roots =
    List.map
      (fun s ->
        let id = Xag.node_of_signal s in
        match Xag.node g id with
        | Xag.Input _ | Xag.Const -> None
        | _ -> Some (Hashtbl.find idx_of id))
      outputs
  in
  let cost, steps = Pebble.schedule_dag ~budget ~deps ~outputs:out_roots in
  let ancillae = cost.Pebble.pebbles in
  let total = n + m + ancillae in
  if total > 62 then invalid_arg "Lut_synth.synth_pebbled: too many lines";
  Obs.observe "xag.pebble.peak" (float_of_int ancillae);
  Obs.observe "xag.pebble.moves" (float_of_int cost.Pebble.moves);
  (* ancilla lines are a free stack; the schedule bounds its depth *)
  let free = ref (List.init ancillae (fun i -> n + m + i)) in
  let assigned = Array.make num (-1) in
  let line_of id =
    match Xag.node g id with
    | Xag.Input i -> i
    | _ ->
        let l = assigned.(Hashtbl.find idx_of id) in
        if l < 0 then invalid_arg "Lut_synth.synth_pebbled: leaf not pebbled";
        l
  in
  let cascade i =
    let l = luts.(i) in
    let target = assigned.(i) in
    List.map
      (fun cube ->
        let controls =
          List.map
            (fun (v, pol) -> (line_of (List.nth l.leaves v), pol))
            (Logic.Cube.literals (List.length l.leaves) cube)
        in
        Mct.of_controls controls target)
      (Cache.Cover.minimize l.table)
  in
  let out_arr = Array.of_list outputs in
  let gates =
    List.concat_map
      (function
        | Pebble.Compute_lut i ->
            (match !free with
            | line :: rest ->
                free := rest;
                assigned.(i) <- line
            | [] -> invalid_arg "Lut_synth.synth_pebbled: schedule over budget");
            cascade i
        | Pebble.Uncompute_lut i ->
            let gs = List.rev (cascade i) in
            free := assigned.(i) :: !free;
            assigned.(i) <- -1;
            gs
        | Pebble.Emit_output j ->
            let s = out_arr.(j) in
            let id = Xag.node_of_signal s in
            let base =
              match Xag.node g id with
              | Xag.Const -> []
              | _ -> [ Mct.cnot (line_of id) (n + j) ]
            in
            if Xag.is_complemented s then base @ [ Mct.not_ (n + j) ] else base)
      steps
  in
  let circuit = Rcircuit.of_gates total gates in
  (circuit, { n; m; total_lines = total; ancillae; k })

(** [synth_tables ~k fs] is the truth-table front end (via ESOP → XAG). *)
let synth_tables ~k (fs : Truth_table.t list) =
  let n = Truth_table.num_vars (List.hd fs) in
  synth ~k (Xag.of_esops n (List.map Logic.Esop_opt.minimize fs))

(** [check (circuit, layout) fs] verifies the Eq. (4) contract. *)
let check (circuit, layout) (fs : Truth_table.t list) =
  let ok = ref true in
  for x = 0 to (1 lsl layout.n) - 1 do
    let out = Rsim.run circuit x in
    if out land Bitops.mask layout.n <> x then ok := false;
    List.iteri
      (fun j f -> if Bitops.bit out (layout.n + j) <> Truth_table.get f x then ok := false)
      fs;
    if out lsr (layout.n + layout.m) <> 0 then ok := false
  done;
  !ok
