(** Reversible circuits: cascades of MCT gates over a fixed set of lines. *)

module Bitops = Logic.Bitops

type t = { lines : int; gates : Mct.t list }

(** [empty lines] is the identity circuit on [lines] lines. *)
let empty lines =
  if lines < 1 || lines > 62 then invalid_arg "Rcircuit.empty: bad line count";
  { lines; gates = [] }

let check_gate c (g : Mct.t) =
  if Mct.lines g land lnot (Bitops.mask c.lines) <> 0 then
    invalid_arg "Rcircuit: gate exceeds line count"

(** [add c g] appends gate [g] at the output side. *)
let add c g =
  check_gate c g;
  { c with gates = g :: c.gates }

(** [add_list c gs] appends the gates in order. *)
let add_list c gs = List.fold_left add c gs

(** [gates c] lists gates in application order (input to output). *)
let gates c = List.rev c.gates

(** [of_gates lines gs] builds a circuit from an application-order list. *)
let of_gates lines gs = add_list (empty lines) gs

let num_lines c = c.lines
let num_gates c = List.length c.gates

(** [reverse c] is the inverse circuit (MCT gates are self-inverse, so the
    cascade is just reversed). *)
let reverse c = { c with gates = List.rev c.gates }

(** [append a b] runs [a] then [b]. *)
let append a b =
  if a.lines <> b.lines then invalid_arg "Rcircuit.append: line mismatch";
  { a with gates = b.gates @ a.gates }

(** [map_lines f c] relabels lines through [f] (which must be injective on
    the used lines and stay within [new_lines]). *)
let map_lines ~new_lines f c =
  let remap_mask m = Bitops.fold_bits (fun acc l -> acc lor (1 lsl f l)) 0 m in
  let gates =
    List.rev_map
      (fun (g : Mct.t) ->
        Mct.make ~target:(f g.Mct.target) ~pos:(remap_mask g.Mct.pos)
          ~neg:(remap_mask g.Mct.neg))
      c.gates
  in
  { lines = new_lines; gates = List.rev gates }

(** [widen c lines] reinterprets [c] on a larger line count. *)
let widen c lines =
  if lines < c.lines then invalid_arg "Rcircuit.widen: shrinking";
  { c with lines }

(** [structural_key c] is a compact string identifying [c] up to exact
    structural equality (line count plus every gate's target and control
    masks, in application order) — the index used by the pass-manager's
    lowering cache. *)
let structural_key c =
  let buf = Buffer.create (16 + (12 * List.length c.gates)) in
  Buffer.add_string buf (string_of_int c.lines);
  List.iter
    (fun (g : Mct.t) ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (string_of_int g.Mct.target);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int g.Mct.pos);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int g.Mct.neg))
    (List.rev c.gates);
  Buffer.contents buf

(** Gate-count statistics used by the [ps] shell command. *)
type stats = {
  lines : int;
  gate_count : int;
  not_count : int;
  cnot_count : int;
  toffoli_count : int;
  larger_count : int; (* gates with three or more controls *)
  quantum_cost : int;
}

let stats (c : t) =
  let init =
    { lines = c.lines; gate_count = 0; not_count = 0; cnot_count = 0;
      toffoli_count = 0; larger_count = 0; quantum_cost = 0 }
  in
  List.fold_left
    (fun s g ->
      let s = { s with gate_count = s.gate_count + 1;
                quantum_cost = s.quantum_cost + Mct.quantum_cost c.lines g } in
      match Mct.num_controls g with
      | 0 -> { s with not_count = s.not_count + 1 }
      | 1 -> { s with cnot_count = s.cnot_count + 1 }
      | 2 -> { s with toffoli_count = s.toffoli_count + 1 }
      | _ -> { s with larger_count = s.larger_count + 1 })
    init c.gates

let pp_stats ppf s =
  Fmt.pf ppf
    "lines: %d, gates: %d (NOT %d, CNOT %d, Toffoli %d, larger %d), quantum cost: %d"
    s.lines s.gate_count s.not_count s.cnot_count s.toffoli_count s.larger_count
    s.quantum_cost

let pp ppf c =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Mct.pp) (gates c)
