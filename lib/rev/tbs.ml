(** Transformation-based reversible synthesis (Miller–Maslov–Dueck, DAC'03 —
    the paper's reference [43] and its [tbs] shell command).

    The algorithm walks the truth table of the permutation in increasing
    input order and appends MCT gates that make each row a fixed point
    without disturbing the rows already fixed. The {e bidirectional} variant
    may instead prepend gates at the circuit input when that is cheaper. *)

module Bitops = Logic.Bitops
module Perm = Logic.Perm

(* Gates that transform value [v] into value [target] assuming every value
   < [row] is a fixed point that must not be disturbed. Preconditions
   maintained by the caller: [v > row], [target >= row], and either
   [target = row] (output side) or [v = row] (input side). Returns gates in
   the order they are applied to the truth table. *)
let steer ~row v target =
  let gates = ref [] in
  let cur = ref v in
  (* Set the bits missing from [cur]: controls on all current ones. *)
  let to_set = target land lnot !cur in
  Bitops.fold_bits
    (fun () j ->
      gates := Mct.make ~target:j ~pos:!cur ~neg:0 :: !gates;
      cur := !cur lor (1 lsl j))
    () to_set;
  (* Clear the extra bits: controls on the ones of [target], which the
     current value contains; never fires on fixed rows < row <= target. *)
  let to_clear = !cur land lnot target in
  Bitops.fold_bits
    (fun () j ->
      gates := Mct.make ~target:j ~pos:(target land lnot (1 lsl j)) ~neg:0 :: !gates;
      cur := !cur land lnot (1 lsl j))
    () to_clear;
  ignore row;
  List.rev !gates

let cost_of gates =
  List.fold_left (fun acc g -> acc + 1 + Mct.num_controls g) 0 gates

(* Common driver.  [bidi] enables the input-side option. *)
let synthesize ~bidi p =
  Obs.with_span "rev.tbs.synth" @@ fun () ->
  let n = Perm.num_vars p in
  let table = Perm.to_array p in
  let inv = Array.make (Array.length table) 0 in
  Array.iteri (fun x y -> inv.(y) <- x) table;
  let front = ref [] (* input-side gates, application order (reversed at end) *)
  and back = ref [] (* output-side gates, collection order *) in
  let apply_output g =
    (* t := g ∘ t *)
    Array.iteri
      (fun x y ->
        let y' = Mct.apply g y in
        if y' <> y then begin
          table.(x) <- y';
          inv.(y') <- x
        end)
      (Array.copy table);
    back := g :: !back
  in
  let apply_input g =
    (* t := t ∘ g; relabel the input rows *)
    let old = Array.copy table in
    Array.iteri
      (fun x _ ->
        let x' = Mct.apply g x in
        table.(x) <- old.(x');
        inv.(old.(x')) <- x)
      old;
    front := g :: !front
  in
  for row = 0 to Array.length table - 1 do
    let v = table.(row) in
    if v <> row then begin
      let out_gates = steer ~row v row in
      if not bidi then List.iter apply_output out_gates
      else begin
        let x = inv.(row) in
        (* input side: transform row -> x so that t(row) = old t(x) = row *)
        let in_gates = steer ~row row x in
        (* [apply_input] composes on the right (t := t ∘ h), so the gate
           applied first to the value must be passed last. *)
        if cost_of in_gates < cost_of out_gates then
          List.iter apply_input (List.rev in_gates)
        else List.iter apply_output out_gates
      end
    end
  done;
  (* Circuit order: front gates in collection order, then back gates
     reversed (see module tests for the algebra). *)
  if Obs.enabled () then begin
    Obs.count ~by:(List.length !front) "rev.tbs.gates_input_side";
    Obs.count ~by:(List.length !back) "rev.tbs.gates_output_side";
    Obs.add_attrs
      [ ("vars", Obs.Int n);
        ("gates", Obs.Int (List.length !front + List.length !back)) ]
  end;
  Rcircuit.of_gates n (List.rev !front @ !back)

(** [basic p] is unidirectional transformation-based synthesis. *)
let basic p = synthesize ~bidi:false p

(** [bidirectional p] additionally considers prepending gates at the circuit
    input when cheaper (the variant recommended in [43]). *)
let bidirectional p = synthesize ~bidi:true p

(** [synth p] is the library default ({!bidirectional}). *)
let synth p = bidirectional p
