(** Reversible pebbling strategies (paper refs [66, 67]).

    Abstract model: a chain of [s] segments where computing segment [i]
    requires segment [i−1] to be pebbled (present on ancilla qubits).
    Bennett's recursive strategy with fan-out [f] trades pebbles (qubits)
    for segment executions (gates): [f = s] is compute-everything
    (s pebbles, s moves); [f = 2] uses [O(log s)] pebbles and
    [O(s^{log₂ 3})] moves.

    The schedules produced here are used both for the E6 cost tables and to
    validate the strategy against the chain dependency rule. *)

type action = Compute of int | Uncompute of int

(* Reverse a schedule (compute <-> uncompute, reversed order). *)
let invert actions =
  List.rev_map (function Compute i -> Uncompute i | Uncompute i -> Compute i) actions

(** [bennett ~segments ~fanout] is the recursive Bennett schedule that
    leaves all of [0 .. segments-1]'s {e final} segment pebbled and all
    intermediate segments clean, assuming segment 0's input (the circuit
    inputs) is always available. All segments are left pebbled at the top
    level of each recursion frame except those explicitly uncomputed. The
    returned schedule leaves exactly the last segment pebbled. *)
let bennett ~segments ~fanout =
  if segments < 1 then invalid_arg "Pebble.bennett: segments";
  if fanout < 2 then invalid_arg "Pebble.bennett: fanout";
  (* compute_range lo hi: starting with segment lo-1 pebbled (or nothing if
     lo = 0), leave exactly segment hi-1 pebbled among [lo, hi). *)
  let rec compute_range lo hi =
    let len = hi - lo in
    if len = 1 then [ Compute lo ]
    else begin
      (* split into at most [fanout] nearly equal parts *)
      let parts = min fanout len in
      let bounds =
        List.init (parts + 1) (fun i -> lo + (len * i / parts))
      in
      let ranges =
        List.filteri (fun i _ -> i < parts) bounds
        |> List.mapi (fun i b -> (b, List.nth bounds (i + 1)))
      in
      let forward = List.concat_map (fun (a, b) -> compute_range a b) ranges in
      let backward =
        List.concat_map
          (fun (a, b) -> invert (compute_range a b))
          (List.rev (List.filteri (fun i _ -> i < parts - 1) ranges))
      in
      forward @ backward
    end
  in
  compute_range 0 segments

(** Cost summary of a schedule. *)
type cost = { pebbles : int; moves : int }

(** [simulate ~segments actions] validates [actions] against the chain
    rule — [Compute i] / [Uncompute i] require segment [i−1] pebbled and
    segment [i] in the complementary state — and returns the peak pebble
    count and total move count. Raises [Invalid_argument] on an illegal
    schedule. *)
let simulate ~segments actions =
  let pebbled = Array.make segments false in
  let peak = ref 0 and live = ref 0 and moves = ref 0 in
  List.iter
    (fun act ->
      incr moves;
      let need_prev i =
        if i > 0 && not pebbled.(i - 1) then
          invalid_arg (Printf.sprintf "Pebble.simulate: segment %d not ready" i)
      in
      match act with
      | Compute i ->
          need_prev i;
          if pebbled.(i) then invalid_arg "Pebble.simulate: double compute";
          pebbled.(i) <- true;
          incr live;
          peak := max !peak !live
      | Uncompute i ->
          need_prev i;
          if not pebbled.(i) then invalid_arg "Pebble.simulate: uncompute clean";
          pebbled.(i) <- false;
          decr live)
    actions;
  { pebbles = !peak; moves = !moves }

(** [strategy_cost ~segments ~fanout] is {!simulate} of {!bennett} — the
    row generator of the E6 trade-off table. *)
let strategy_cost ~segments ~fanout =
  simulate ~segments (bennett ~segments ~fanout)

(* ------------------------------------------------------------------ *)
(* DAG pebbling for LUT networks                                       *)
(* ------------------------------------------------------------------ *)

(** One step of a LUT-network schedule: (un)compute a LUT onto/off its
    ancilla, or copy a primary output while its root LUT is pebbled. *)
type step = Compute_lut of int | Uncompute_lut of int | Emit_output of int

exception Infeasible of { budget : int; required : int }
(** Raised by {!schedule_dag} when no strategy fits the ancilla budget;
    [required] is the smallest budget the available strategies can meet. *)

(* Transitive dependency cones as bitsets; [deps] must be in dependency
   order (every dependency index smaller than its user's). *)
let dag_cones deps =
  let num = Array.length deps in
  let cone = Array.init num (fun _ -> Bytes.empty) in
  for i = 0 to num - 1 do
    let c = Bytes.make num '\000' in
    Bytes.set c i '\001';
    List.iter
      (fun d ->
        if d < 0 || d >= i then invalid_arg "Pebble.schedule_dag: deps not in order";
        Bytes.iteri (fun j b -> if b = '\001' then Bytes.set c j '\001') cone.(d))
      deps.(i);
    cone.(i) <- c
  done;
  cone

let popcount bs =
  let c = ref 0 in
  Bytes.iter (fun b -> if b = '\001' then incr c) bs;
  !c

(* A chain: every LUT depends on at most its immediate predecessor and
   all pebbled output roots are the final LUT — the shape of ripple
   arithmetic predicates, where the recursive Bennett strategy applies. *)
let dag_is_chain deps outputs =
  let num = Array.length deps in
  let chain_deps =
    Array.for_all Fun.id
      (Array.mapi (fun i ds -> List.for_all (fun d -> d = i - 1) ds) deps)
  in
  chain_deps
  && List.for_all (function None -> true | Some r -> r = num - 1) outputs

(** [schedule_dag ~budget ~deps ~outputs] schedules a LUT network under
    an ancilla budget. [deps.(i)] lists the LUT indices LUT [i] reads
    (indices in dependency order); [outputs] gives, per primary output,
    the LUT index it copies from ([None] for constant/input outputs).

    Strategy selection:
    - when [budget] covers the largest output cone, LUTs shared between
      outputs stay pebbled across emissions and are uncomputed as soon as
      no later output needs them (eager cleanup); under budget pressure
      the live set is released wholesale between outputs, trading
      recomputation for ancillae;
    - when the network is a {e chain} (ripple predicates), the recursive
      Bennett strategy is used below that threshold, reaching
      O(log s) pebbles at O(s^log₂3) moves;
    - otherwise {!Infeasible} reports the smallest workable budget.

    All ancillae end clean; the returned cost counts peak pebbles and
    compute/uncompute moves. *)
let schedule_dag ~budget ~deps ~outputs =
  let num = Array.length deps in
  if num = 0 then
    ({ pebbles = 0; moves = 0 },
     List.mapi (fun j _ -> Emit_output j) outputs)
  else begin
    let cone = dag_cones deps in
    let max_cone =
      List.fold_left
        (fun acc -> function None -> acc | Some r -> max acc (popcount cone.(r)))
        0 outputs
    in
    if budget >= max_cone then begin
      (* shared-live scheduling with eager cleanup *)
      let live = Bytes.make num '\000' in
      let steps = ref [] and cur = ref 0 and peak = ref 0 and moves = ref 0 in
      let emit s = steps := s :: !steps in
      let compute i =
        emit (Compute_lut i); Bytes.set live i '\001';
        incr cur; incr moves; peak := max !peak !cur
      in
      let uncompute i =
        emit (Uncompute_lut i); Bytes.set live i '\000';
        decr cur; incr moves
      in
      let release_all () =
        for i = num - 1 downto 0 do
          if Bytes.get live i = '\001' then uncompute i
        done
      in
      (* suffix_use.(j) = union of cones of outputs after index j *)
      let outs = Array.of_list outputs in
      let m = Array.length outs in
      let suffix_use = Array.make (m + 1) (Bytes.make num '\000') in
      for j = m - 1 downto 0 do
        let u = Bytes.copy suffix_use.(j + 1) in
        (match outs.(j) with
        | Some r ->
            Bytes.iteri (fun i b -> if b = '\001' then Bytes.set u i '\001') cone.(r)
        | None -> ());
        suffix_use.(j) <- u
      done;
      Array.iteri
        (fun j root ->
          (match root with
          | Some r when Bytes.get live r = '\000' ->
              (* grow the live set by cone r; release first if that bursts
                 the budget *)
              let extra = ref 0 in
              Bytes.iteri
                (fun i b ->
                  if b = '\001' && Bytes.get live i = '\000' then incr extra)
                cone.(r);
              if !cur + !extra > budget then release_all ();
              Bytes.iteri
                (fun i b ->
                  if b = '\001' && Bytes.get live i = '\000' then compute i)
                cone.(r)
          | _ -> ());
          emit (Emit_output j);
          (* eager cleanup: uncompute whatever no later output reads *)
          for i = num - 1 downto 0 do
            if Bytes.get live i = '\001'
               && Bytes.get suffix_use.(j + 1) i = '\000'
            then uncompute i
          done)
        outs;
      ({ pebbles = !peak; moves = !moves }, List.rev !steps)
    end
    else if dag_is_chain deps outputs then begin
      (* recursive Bennett on the chain: largest fanout that fits *)
      let rec pick f =
        if f < 2 then None
        else
          let c = strategy_cost ~segments:num ~fanout:f in
          if c.pebbles <= budget then Some (f, c) else pick (f - 1)
      in
      match pick num with
      | None ->
          let floor = (strategy_cost ~segments:num ~fanout:2).pebbles in
          raise (Infeasible { budget; required = min floor max_cone })
      | Some (fanout, c) ->
          let forward = bennett ~segments:num ~fanout in
          let lift = function
            | Compute i -> Compute_lut i
            | Uncompute i -> Uncompute_lut i
          in
          let steps =
            List.map lift forward
            @ List.mapi (fun j _ -> Emit_output j) outputs
            @ List.map lift (invert forward)
          in
          ({ pebbles = c.pebbles; moves = 2 * c.moves }, steps)
    end
    else raise (Infeasible { budget; required = max_cone })
  end

(** [simulate_dag ~deps ~outputs steps] validates a DAG schedule —
    computing/uncomputing a LUT requires all its dependencies pebbled,
    emitting an output requires its root pebbled, outputs appear once
    each in order, and every ancilla ends clean — and returns its cost.
    Raises [Invalid_argument] on violations. *)
let simulate_dag ~deps ~outputs steps =
  let num = Array.length deps in
  let pebbled = Array.make num false in
  let peak = ref 0 and live = ref 0 and moves = ref 0 in
  let outs = Array.of_list outputs in
  let next_out = ref 0 in
  List.iter
    (fun step ->
      let need_deps i =
        List.iter
          (fun d ->
            if not pebbled.(d) then
              invalid_arg (Printf.sprintf "Pebble.simulate_dag: dep %d of %d clean" d i))
          deps.(i)
      in
      match step with
      | Compute_lut i ->
          need_deps i;
          if pebbled.(i) then invalid_arg "Pebble.simulate_dag: double compute";
          pebbled.(i) <- true;
          incr live; incr moves;
          peak := max !peak !live
      | Uncompute_lut i ->
          need_deps i;
          if not pebbled.(i) then invalid_arg "Pebble.simulate_dag: uncompute clean";
          pebbled.(i) <- false;
          decr live; incr moves
      | Emit_output j ->
          if j <> !next_out then invalid_arg "Pebble.simulate_dag: outputs out of order";
          (match outs.(j) with
          | Some r when not pebbled.(r) ->
              invalid_arg "Pebble.simulate_dag: emit from clean root"
          | _ -> ());
          incr next_out)
    steps;
  if !next_out <> Array.length outs then
    invalid_arg "Pebble.simulate_dag: missing outputs";
  if !live <> 0 then invalid_arg "Pebble.simulate_dag: ancillae left dirty";
  { pebbles = !peak; moves = !moves }
