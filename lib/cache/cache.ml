(** The compilation cache — canonical-form result reuse across the flow.

    Classical synthesis frameworks amortize repeated compilation with
    canonical-form result stores; this module is that subsystem for the
    whole compile flow:

    - {e typed stores}: string-keyed memo tables created with {!create};
      the reversible layer keys cascades by NPN-canonical truth table
      ({!Rev.Synth_cache}), the pass manager keys lowering/T-par results
      by a structural circuit hash ({!Core.Pass});
    - {e NPN indexing}: {!Cover.minimize} maps a function to its
      NPN-canonical representative, memoizes the representative's ESOP
      cover, and {e replays} the transform on the stored cover (input
      permutation/negation, output negation). Crucially the wrapper
      canonizes and replays {e whether or not the cache is enabled} — the
      cache only memoizes the representative's synthesis, a pure function
      of the class — so results are bit-identical with the cache on or
      off, for any job count, across runs;
    - {e persistence}: one append-only file ([cache.bin] under
      {!set_dir}'s directory, [$DAUTOQ_CACHE] by convention) with a
      versioned header; corrupt or stale entries are ignored on load;
    - {e concurrency}: one global mutex guards every store, so parallel
      oracle compilation over the {!Par} pool shares the tables safely.

    Telemetry: hits and misses are tallied per store (for [cache stats])
    and mirrored as Obs counters [cache.<group>.{hit,miss}] plus
    [cache.persist.bytes]. *)

module Truth_table = Logic.Truth_table
module Npn = Logic.Npn
module Cube = Logic.Cube
module Esop = Logic.Esop
module Esop_opt = Logic.Esop_opt
module Bitops = Logic.Bitops

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)
(* ------------------------------------------------------------------ *)

let mutex = Mutex.create ()
let enabled_ref = ref true

(** [enabled ()] — memoization on? (Replay-based wrappers behave
    identically either way; disabling only stops lookups and inserts.) *)
let enabled () = !enabled_ref

let set_enabled b = enabled_ref := b

(** [default_dir ()] is [$DAUTOQ_CACHE] when set, else ["_cache"]. *)
let default_dir () =
  match Sys.getenv_opt "DAUTOQ_CACHE" with
  | Some d when d <> "" -> d
  | _ -> "_cache"

type stat = { mutable hits : int; mutable misses : int }

(* One registered store, seen through monomorphic closures so the global
   registry and the persistence loader need not know the value type. *)
type reg = {
  r_name : string;
  r_schema : string;
  r_group : string;
  r_stat : stat;
  r_absorb : string -> string -> unit; (* key, marshaled payload *)
  r_clear : unit -> unit;
  r_entries : unit -> int;
}

let registry : reg list ref = ref []

(* ------------------------------------------------------------------ *)
(* Persistence: one append-only record file                            *)
(* ------------------------------------------------------------------ *)

let header = "dautoq-cache v1 " ^ Sys.ocaml_version

let dir_ref : string option ref = ref None
let out_ref : out_channel option ref = ref None
let bytes_persisted_ref = ref 0

(* Records on disk carry their own checksum so a torn append or bit rot
   is detected; reading stops at the first undecodable record (the
   append-only format gives no resynchronization point past it). *)
let record_digest name schema key payload =
  Digest.string (String.concat "\x00" [ name; schema; key; payload ])

let cache_file dir = Filename.concat dir "cache.bin"

let close_out_channel () =
  match !out_ref with
  | Some oc ->
      close_out_noerr oc;
      out_ref := None
  | None -> ()

(* Records of the last load, kept so stores created after [set_dir] can
   still absorb their entries. *)
let disk_records : (string * string * string * string) list ref = ref []

let absorb_into (r : reg) =
  List.iter
    (fun (name, schema, key, payload) ->
      if name = r.r_name && schema = r.r_schema then r.r_absorb key payload)
    !disk_records

(* Read every well-formed record; stale header -> whole file ignored,
   checksum mismatch -> record skipped, undecodable frame -> stop. *)
let load_file path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> []
        | first when first <> header -> [] (* other version: stale, ignored *)
        | _ ->
            let acc = ref [] in
            (try
               while true do
                 let name, schema, key, payload, digest =
                   (input_value ic
                     : string * string * string * string * string)
                 in
                 if record_digest name schema key payload = digest then
                   acc := (name, schema, key, payload) :: !acc
               done
             with _ -> ());
            List.rev !acc)

let open_for_append path =
  (* keep appending to a valid file; restart a stale or headerless one *)
  let valid =
    Sys.file_exists path
    && (try input_line (open_in_bin path) = header with _ -> false)
  in
  let oc =
    if valid then open_out_gen [ Open_append; Open_binary ] 0o644 path
    else begin
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
      output_string oc header;
      output_char oc '\n';
      flush oc;
      oc
    end
  in
  out_ref := Some oc

let mkdir_p dir = try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* Persistence I/O failures (unwritable directory, full disk, path that is
   a file, …) must never take down a computation whose results the cache
   merely memoizes: drop to in-memory-only caching, warn once on stderr. *)
let persist_warned = ref false

let disable_persistence reason =
  close_out_channel ();
  dir_ref := None;
  disk_records := [];
  if not !persist_warned then begin
    persist_warned := true;
    Printf.eprintf "cache: persistence disabled (%s); continuing in-memory\n%!" reason
  end

let unix_error_string e fn = Printf.sprintf "%s: %s" fn (Unix.error_message e)

(** [set_dir d] switches the persistent layer: [Some dir] loads
    [dir/cache.bin] into every store (creating the directory and file as
    needed) and appends every insert from now on; [None] turns
    persistence off (in-memory stores are kept). An unusable [dir]
    degrades to in-memory caching with a single stderr warning instead
    of raising. *)
let set_dir d =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      close_out_channel ();
      dir_ref := d;
      match d with
      | None -> disk_records := []
      | Some dir -> (
          persist_warned := false;
          try
            mkdir_p dir;
            let path = cache_file dir in
            disk_records := load_file path;
            List.iter absorb_into !registry;
            open_for_append path
          with
          | Sys_error m -> disable_persistence m
          | Unix.Unix_error (e, fn, _) -> disable_persistence (unix_error_string e fn)))

let dir () = !dir_ref

(* Append one record; caller holds the mutex. A write failure (disk
   full, channel gone stale) degrades to in-memory caching. *)
let persist name schema key payload =
  match !out_ref with
  | None -> ()
  | Some oc -> (
      try
        let before = pos_out oc in
        output_value oc
          (name, schema, key, payload, record_digest name schema key payload);
        flush oc;
        let written = pos_out oc - before in
        bytes_persisted_ref := !bytes_persisted_ref + written;
        Obs.count ~by:written "cache.persist.bytes"
      with Sys_error m -> disable_persistence m)

(** [bytes_persisted ()] — bytes appended to the on-disk layer by this
    process. *)
let bytes_persisted () = !bytes_persisted_ref

(* ------------------------------------------------------------------ *)
(* Stores                                                              *)
(* ------------------------------------------------------------------ *)

type ('k, 'v) store = {
  name : string;
  schema : string;
  group : string; (* Obs counter family: cache.<group>.{hit,miss} *)
  key_of : 'k -> string;
  tbl : (string, 'v) Hashtbl.t;
  stat : stat;
}

(** [create ~name ~schema ~group ~key_of] registers a store. [schema]
    versions the marshaled value representation — bump it when the value
    type changes and persisted entries of older builds are silently
    dropped on load. *)
let create ~name ~schema ~group ~key_of =
  let st = { name; schema; group; key_of; tbl = Hashtbl.create 64; stat = { hits = 0; misses = 0 } } in
  let r =
    { r_name = name;
      r_schema = schema;
      r_group = group;
      r_stat = st.stat;
      r_absorb =
        (fun key payload ->
          if not (Hashtbl.mem st.tbl key) then
            match (Marshal.from_string payload 0 : 'v) with
            | v -> Hashtbl.replace st.tbl key v
            | exception _ -> ());
      r_clear = (fun () -> Hashtbl.reset st.tbl);
      r_entries = (fun () -> Hashtbl.length st.tbl) }
  in
  Mutex.lock mutex;
  registry := !registry @ [ r ];
  absorb_into r;
  Mutex.unlock mutex;
  st

let count_hit st =
  st.stat.hits <- st.stat.hits + 1;
  Obs.count ("cache." ^ st.group ^ ".hit")

let count_miss st =
  st.stat.misses <- st.stat.misses + 1;
  Obs.count ("cache." ^ st.group ^ ".miss")

(** [find st k] looks the key up; [None] both on a genuine miss and when
    the cache is disabled. Tallies hit/miss. *)
let find st k =
  if not !enabled_ref then None
  else begin
    let key = st.key_of k in
    Mutex.lock mutex;
    let r = Hashtbl.find_opt st.tbl key in
    (match r with
    | Some _ -> st.stat.hits <- st.stat.hits + 1
    | None -> st.stat.misses <- st.stat.misses + 1);
    Mutex.unlock mutex;
    (match r with
    | Some _ -> Obs.count ("cache." ^ st.group ^ ".hit")
    | None -> Obs.count ("cache." ^ st.group ^ ".miss"));
    r
  end

(** [add st k v] inserts (and persists, when a directory is set). First
    writer wins on a race — every producer computes the same value. *)
let add st k v =
  if !enabled_ref then begin
    let key = st.key_of k in
    Mutex.lock mutex;
    if not (Hashtbl.mem st.tbl key) then begin
      Hashtbl.replace st.tbl key v;
      persist st.name st.schema key (Marshal.to_string v [])
    end;
    Mutex.unlock mutex
  end

(** [find_or_add st k compute] is the memoized [compute ()]. The mutex is
    {e not} held during [compute] (which may itself consult other
    stores); concurrent producers of the same key duplicate the work but
    agree on the value. *)
let find_or_add st k compute =
  match find st k with
  | Some v -> v
  | None ->
      let v = compute () in
      add st k v;
      v

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type stats_row = {
  store : string;
  group : string;
  hits : int;
  misses : int;
  entries : int;
}

(** [stats ()] — one row per registered store, registration order. *)
let stats () =
  Mutex.lock mutex;
  let rows =
    List.map
      (fun r ->
        { store = r.r_name; group = r.r_group; hits = r.r_stat.hits;
          misses = r.r_stat.misses; entries = r.r_entries () })
      !registry
  in
  Mutex.unlock mutex;
  rows

(** [counters ()] — [(group, (hits, misses))] aggregated over stores. *)
let counters () =
  let tally = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun row ->
      let h, m = Option.value ~default:(0, 0) (Hashtbl.find_opt tally row.group) in
      if not (Hashtbl.mem tally row.group) then order := row.group :: !order;
      Hashtbl.replace tally row.group (h + row.hits, m + row.misses))
    (stats ());
  List.rev_map (fun g -> (g, Hashtbl.find tally g)) !order

(** [summary_string ()] — the one-line report the CLIs print on stderr,
    e.g. ["cache: npn.hit=3 npn.miss=1 … persisted=210B"]. *)
let summary_string () =
  let parts =
    List.concat_map
      (fun (g, (h, m)) -> [ Printf.sprintf "%s.hit=%d" g h; Printf.sprintf "%s.miss=%d" g m ])
      (counters ())
  in
  Printf.sprintf "cache: %s persisted=%dB"
    (String.concat " " parts)
    !bytes_persisted_ref

let reset_stats () =
  Mutex.lock mutex;
  List.iter
    (fun r ->
      r.r_stat.hits <- 0;
      r.r_stat.misses <- 0)
    !registry;
  Mutex.unlock mutex

(** [clear_memory ()] empties every store (tallies included) but leaves
    the persistent file alone — [set_dir (Some dir)] reloads it. *)
let clear_memory () =
  Mutex.lock mutex;
  List.iter
    (fun r ->
      r.r_clear ();
      r.r_stat.hits <- 0;
      r.r_stat.misses <- 0)
    !registry;
  Mutex.unlock mutex

(** [clear ()] empties every store {e and} restarts the persistent file
    (fresh header) when a directory is active. *)
let clear () =
  clear_memory ();
  Mutex.lock mutex;
  disk_records := [];
  (match !dir_ref with
  | None -> ()
  | Some d -> (
      close_out_channel ();
      (try Sys.remove (cache_file d) with Sys_error _ -> ());
      try open_for_append (cache_file d) with
      | Sys_error m -> disable_persistence m
      | Unix.Unix_error (e, fn, _) -> disable_persistence (unix_error_string e fn)));
  Mutex.unlock mutex

(* ------------------------------------------------------------------ *)
(* Memoized NPN canonization                                           *)
(* ------------------------------------------------------------------ *)

(* The exhaustive canonical search (n!·2^(n+1) candidates at n = 6)
   dwarfs the synthesis it guards by orders of magnitude, so the
   (table -> representative, transform) map is itself a store. The
   search is pure; memoizing it can never change a result, it only
   makes warm lookups skip straight to replay. *)
let canon_store : (string, string * Npn.transform) store =
  create ~name:"npn.canon" ~schema:"canon.v1" ~group:"npn" ~key_of:Fun.id

(** [canonical tt] is {!Logic.Npn.canonical}, memoized by the exact
    table. *)
let canonical tt =
  let rep_s, t =
    find_or_add canon_store (Truth_table.to_string tt) (fun () ->
        let rep, t = Npn.canonical tt in
        (Truth_table.to_string rep, t))
  in
  (Truth_table.of_string rep_s, t)

(* ------------------------------------------------------------------ *)
(* The NPN-indexed ESOP cover store                                    *)
(* ------------------------------------------------------------------ *)

(** NPN-canonical memoization of {!Logic.Esop_opt.minimize}, the kernel
    behind every ESOP-based oracle/synthesis path. *)
module Cover = struct
  let store : (string, Esop.t) store =
    create ~name:"npn.cover" ~schema:"esop.v1" ~group:"npn" ~key_of:Fun.id

  (* Drop exactly one occurrence of the constant-1 cube. *)
  let rec drop_tautology = function
    | [] -> []
    | c :: rest -> if Cube.equal c Cube.tautology then rest else c :: drop_tautology rest

  (** [replay t cover] rewrites the canonical representative's cover back
      to the requested function: [rep = Npn.apply t f], so a literal
      [x_j = b] of [rep] becomes [y_{perm(j)} = b ⊕ neg_j] of [f], and an
      output negation XORs in the constant-1 cube (cancelling one if the
      cover already carries it). *)
  let replay (t : Npn.transform) cover =
    let n = Array.length t.perm in
    let rewritten =
      List.map
        (fun c ->
          Cube.of_literals
            (List.map
               (fun (v, pol) -> (t.perm.(v), pol <> Bitops.bit t.input_neg v))
               (Cube.literals n c)))
        cover
    in
    if not t.output_neg then rewritten
    else if List.exists (Cube.equal Cube.tautology) rewritten then
      drop_tautology rewritten
    else rewritten @ [ Cube.tautology ]

  (* NPN canonization is exhaustive (n <= 6); above that an exact-key
     memo still deduplicates identical tables, and very wide tables skip
     the cache (the key alone would be 2^n characters). *)
  let max_npn_vars = 6
  let max_exact_vars = 12

  (* The >12-var bypass used to be silent; now it counts and warns once
     per process so slow synthesis has a visible cause. *)
  let bypass_warned = ref false

  let note_bypass n =
    Obs.count "cache.npn.bypass";
    if not !bypass_warned then begin
      bypass_warned := true;
      Printf.eprintf
        "cache: %d-input cover exceeds the %d-var cache limit; minimizing uncached \
         (consider the XAG/LUT pipeline for wide oracles)\n%!"
        n max_exact_vars
    end

  (** [minimize tt] is extensionally {!Logic.Esop_opt.minimize} — for
      [n <= 6] it always routes through the NPN representative (canonize,
      minimize the representative, replay), cache on or off, so the
      produced cover never depends on cache state. *)
  let minimize tt =
    let n = Truth_table.num_vars tt in
    if n <= max_npn_vars then begin
      let rep, t = Obs.with_span "cache.npn.lookup" (fun () -> canonical tt) in
      let cover =
        find_or_add store (Truth_table.to_string rep) (fun () -> Esop_opt.minimize rep)
      in
      Obs.with_span "cache.npn.replay" (fun () -> replay t cover)
    end
    else if n <= max_exact_vars then
      find_or_add store ("=" ^ Truth_table.to_string tt) (fun () -> Esop_opt.minimize tt)
    else begin
      note_bypass n;
      Esop_opt.minimize tt
    end
end
